package samplealign

import (
	"strings"
	"testing"
)

func TestLoadAlignment(t *testing.T) {
	dir := t.TempDir()
	good := dir + "/good.fa"
	if err := WriteFASTAFile(good, []Sequence{
		NewSequence("a", "AC-EF"),
		NewSequence("b", "ACDEF"),
	}); err != nil {
		t.Fatal(err)
	}
	aln, err := LoadAlignment(good)
	if err != nil {
		t.Fatal(err)
	}
	if aln.NumSeqs() != 2 || aln.Width() != 5 {
		t.Fatalf("loaded %d×%d", aln.NumSeqs(), aln.Width())
	}

	bad := dir + "/bad.fa"
	if err := WriteFASTAFile(bad, []Sequence{
		NewSequence("a", "ACEF"),
		NewSequence("b", "ACDEF"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAlignment(bad); err == nil {
		t.Fatal("ragged file accepted as alignment")
	}
}

func TestWriteClustalPublic(t *testing.T) {
	seqs := testSeqs(t, 6)
	aln, _, err := Align(seqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteClustal(&b, aln); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "CLUSTAL W") {
		t.Fatalf("output: %.40q", b.String())
	}
}

func TestConservationPublic(t *testing.T) {
	aln := &Alignment{Seqs: []Sequence{
		NewSequence("a", "MMMMMWCY"),
		NewSequence("b", "MMMMMCWY"),
	}}
	cons := ColumnConservation(aln)
	if len(cons) != 8 {
		t.Fatalf("%d scores", len(cons))
	}
	blocks := ConservedBlocks(aln, 0.99, 5)
	if len(blocks) != 1 || blocks[0] != [2]int{0, 5} {
		t.Fatalf("blocks: %v", blocks)
	}
}
