// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md §5 and
// micro-benchmarks of the hot kernels.
//
// Real runs execute the actual distributed pipeline at laptop scale
// (hundreds of sequences); paper-scale numbers (N up to 20000, the
// 23-hour baseline) come from the calibrated cluster cost model and are
// emitted as custom metrics (suffix _sim). cmd/msabench prints the same
// experiments as human-readable tables; EXPERIMENTS.md records
// paper-vs-measured.
package samplealign

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bio"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dpkern"
	"repro/internal/kmer"
	"repro/internal/mafft"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/pairwise"
	"repro/internal/prefab"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/submat"
	"repro/internal/tree"
)

// ---- shared fixtures (built once) ----

var fixtures struct {
	once      sync.Once
	fam500    []bio.Sequence // Fig. 1 scale (N=500)
	fam1000   []bio.Sequence // Table 1 / Fig. 3 scale (laptop substitute for 5000)
	famBench  []bio.Sequence // Fig. 4/5 real-run scale
	genome160 []bio.Sequence // Fig. 6 real-run scale
	prefabS   []prefab.Set   // Table 2 sets
}

func loadFixtures(b *testing.B) {
	b.Helper()
	fixtures.once.Do(func() {
		// Phylogenetically diverse mixtures (many families of varied
		// divergence) — the workload the paper targets; single deep
		// families saturate every rank to the same value.
		f1, err := GenerateDiverseSet(500, 120, 101)
		if err != nil {
			panic(err)
		}
		fixtures.fam500 = f1
		f2, err := GenerateDiverseSet(1000, 120, 102)
		if err != nil {
			panic(err)
		}
		fixtures.fam1000 = f2
		f3, err := GenerateDiverseSet(256, 100, 103)
		if err != nil {
			panic(err)
		}
		fixtures.famBench = f3
		seqs, err := SampleGenomeProteins(GenomeConfig{TargetBP: 300000, MeanProteinLen: 110, Seed: 104}, 160, 105)
		if err != nil {
			panic(err)
		}
		fixtures.genome160 = seqs
		sets, err := prefab.Generate(prefab.Config{NumSets: 3, SeqsPerSet: 12, MeanLen: 110, Seed: 106})
		if err != nil {
			panic(err)
		}
		fixtures.prefabS = sets
	})
}

func centralAndGlobalRanks(seqs []bio.Sequence, p int) (central, global []float64) {
	counter := kmer.MustCounter(bio.Dayhoff6, kmer.DefaultK)
	profiles := counter.Profiles(seqs, 0)
	central = kmer.Ranks(profiles, profiles, kmer.DefaultRankScale, 0)
	// globalised: k·p regular samples, k = p−1 per "processor" block
	k := p - 1
	var samplePool []kmer.Profile
	n := len(seqs)
	for r := 0; r < p; r++ {
		lo, hi := r*n/p, (r+1)*n/p
		for i := 0; i < k; i++ {
			idx := lo + (i+1)*(hi-lo)/(k+1)
			if idx >= hi {
				idx = hi - 1
			}
			samplePool = append(samplePool, profiles[idx])
		}
	}
	global = kmer.Ranks(profiles, samplePool, kmer.DefaultRankScale, 0)
	return central, global
}

// ---- Fig. 1: centralised vs globalised rank distributions (N=500) ----

func BenchmarkFig1RankDistributions(b *testing.B) {
	loadFixtures(b)
	var central, global []float64
	for i := 0; i < b.N; i++ {
		central, global = centralAndGlobalRanks(fixtures.fam500, 16)
	}
	sc, sg := stats.Summarize(central), stats.Summarize(global)
	b.ReportMetric(sc.Mean, "centralMean")
	b.ReportMetric(sg.Mean, "globalMean")
	b.ReportMetric(sc.StdDev, "centralStdDev")
	b.ReportMetric(sg.StdDev, "globalStdDev")
}

// ---- Table 1: statistics of globalised vs centralised rank ----

func BenchmarkTable1GlobalizedVsCentralized(b *testing.B) {
	loadFixtures(b)
	var central, global []float64
	for i := 0; i < b.N; i++ {
		central, global = centralAndGlobalRanks(fixtures.fam1000, 16)
	}
	sc, sg := stats.Summarize(central), stats.Summarize(global)
	variance, stddev, err := stats.DiffStats(global, central)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(sc.Max, "centralMax")
	b.ReportMetric(sg.Max, "globalMax")
	b.ReportMetric(sc.Mean, "centralAvg")
	b.ReportMetric(sg.Mean, "globalAvg")
	b.ReportMetric(variance, "varianceWrtCentral")
	b.ReportMetric(stddev, "stdDevWrtCentral")
}

// ---- Fig. 3: input rank distribution (evenly spread) ----

func BenchmarkFig3InputRankDistribution(b *testing.B) {
	loadFixtures(b)
	counter := kmer.MustCounter(bio.Dayhoff6, kmer.DefaultK)
	var ranks []float64
	for i := 0; i < b.N; i++ {
		profiles := counter.Profiles(fixtures.fam1000, 0)
		ranks = kmer.Ranks(profiles, profiles, kmer.DefaultRankScale, 0)
	}
	s := stats.Summarize(ranks)
	h := stats.NewHistogram(ranks, 10)
	occupied := 0
	for _, c := range h.Counts {
		if c > 0 {
			occupied++
		}
	}
	b.ReportMetric(s.Mean, "rankMean")
	b.ReportMetric(s.Max-s.Min, "rankSpread")
	b.ReportMetric(float64(occupied), "occupiedBins10")
}

// ---- Fig. 4: execution time vs processors ----

func BenchmarkFig4ScalingTime(b *testing.B) {
	loadFixtures(b)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("real/N=256/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.AlignInproc(fixtures.famBench, p, core.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// paper-scale simulated series (one metric per point)
	cal := cluster.Synthetic()
	for _, n := range []int{5000, 10000, 20000} {
		for _, p := range []int{1, 4, 8, 12, 16} {
			b.Run(fmt.Sprintf("sim/N=%d/p=%d", n, p), func(b *testing.B) {
				var total float64
				for i := 0; i < b.N; i++ {
					ph, err := cal.SampleAlignD(n, 300, p)
					if err != nil {
						b.Fatal(err)
					}
					total = ph.Total
				}
				b.ReportMetric(total, "seconds_sim")
			})
		}
	}
}

// ---- Fig. 5: superlinear speedup ----

func BenchmarkFig5Speedup(b *testing.B) {
	loadFixtures(b)
	b.Run("real/N=256", func(b *testing.B) {
		var t1, t4 float64
		for i := 0; i < b.N; i++ {
			r1, err := core.AlignInproc(fixtures.famBench, 1, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			r4, err := core.AlignInproc(fixtures.famBench, 4, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			t1 = r1.Stats[0].Timings.Total.Seconds()
			t4 = r4.Stats[0].Timings.Total.Seconds()
		}
		if t4 > 0 {
			b.ReportMetric(t1/t4, "speedup_p4")
		}
	})
	cal := cluster.Synthetic()
	for _, n := range []int{5000, 10000, 20000} {
		b.Run(fmt.Sprintf("sim/N=%d", n), func(b *testing.B) {
			var s4, s16 float64
			for i := 0; i < b.N; i++ {
				var err error
				s4, err = cal.Speedup(n, 300, 4)
				if err != nil {
					b.Fatal(err)
				}
				s16, err = cal.Speedup(n, 300, 16)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(s4, "speedup_p4_sim")
			b.ReportMetric(s16, "speedup_p16_sim")
		})
	}
}

// ---- Fig. 6: genome proteins, sequential MUSCLE vs Sample-Align-D ----

func BenchmarkFig6GenomeAlignment(b *testing.B) {
	loadFixtures(b)
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("real/N=160/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.AlignInproc(fixtures.genome160, p, core.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("sim/paper-scale", func(b *testing.B) {
		cal := cluster.Genome()
		var seq, par float64
		for i := 0; i < b.N; i++ {
			seq = cal.SequentialMuscle(2000, 316)
			ph, err := cal.SampleAlignD(2000, 316, 16)
			if err != nil {
				b.Fatal(err)
			}
			par = ph.Total
		}
		b.ReportMetric(seq/3600, "seqMuscle_hours_sim")
		b.ReportMetric(par/60, "sampleAlignD16_minutes_sim")
		b.ReportMetric(seq/par, "speedup_sim")
	})
}

// ---- Table 2: PREFAB Q scores per method ----

func BenchmarkTable2PrefabQScores(b *testing.B) {
	loadFixtures(b)
	methods := []string{"muscle", "muscle-refined", "clustal", "tcoffee", "nwnsi", "fftnsi", "sample-align-d:4"}
	for _, name := range methods {
		b.Run(name, func(b *testing.B) {
			al, err := resolveAligner(name)
			if err != nil {
				b.Fatal(err)
			}
			var q float64
			for i := 0; i < b.N; i++ {
				q, _, err = prefab.Evaluate(al, fixtures.prefabS)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(q, "Q")
		})
	}
}

// ---- §3: communication-cost shares ----

func BenchmarkCommRounds(b *testing.B) {
	loadFixtures(b)
	var bytes int64
	for i := 0; i < b.N; i++ {
		res, err := core.AlignInproc(fixtures.famBench, 4, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		bytes = 0
		for _, s := range res.Stats {
			bytes += s.Comm.BytesSent
		}
	}
	b.ReportMetric(float64(bytes), "bytesExchanged")
}

// ---- ablations (DESIGN.md §5) ----

func BenchmarkAblationSampleSize(b *testing.B) {
	loadFixtures(b)
	for _, k := range []int{1, 3, 15} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var maxBucket int
			for i := 0; i < b.N; i++ {
				res, err := core.AlignInproc(fixtures.famBench, 4, core.Config{SampleSize: k})
				if err != nil {
					b.Fatal(err)
				}
				maxBucket = 0
				for _, sz := range res.Stats[0].BucketSizes {
					if sz > maxBucket {
						maxBucket = sz
					}
				}
			}
			b.ReportMetric(float64(maxBucket), "maxBucket")
		})
	}
}

func BenchmarkAblationSamplingStrategy(b *testing.B) {
	loadFixtures(b)
	for _, mode := range []struct {
		name string
		s    core.SamplingStrategy
	}{{"regular", core.RegularSampling}, {"random", core.RandomSampling}} {
		b.Run(mode.name, func(b *testing.B) {
			var maxBucket int
			for i := 0; i < b.N; i++ {
				res, err := core.AlignInproc(fixtures.famBench, 8, core.Config{Sampling: mode.s})
				if err != nil {
					b.Fatal(err)
				}
				maxBucket = 0
				for _, sz := range res.Stats[0].BucketSizes {
					if sz > maxBucket {
						maxBucket = sz
					}
				}
			}
			b.ReportMetric(float64(maxBucket), "maxBucket")
			b.ReportMetric(2*float64(len(fixtures.famBench))/8, "bound2NoverP")
		})
	}
}

func BenchmarkAblationFineTune(b *testing.B) {
	loadFixtures(b)
	for _, mode := range []struct {
		name string
		off  bool
	}{{"with-GA", false}, {"without-GA", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				res, err := core.AlignInproc(fixtures.famBench, 4, core.Config{NoFineTune: mode.off})
				if err != nil {
					b.Fatal(err)
				}
				sp = msa.SPScoreSampled(res.Alignment, submat.BLOSUM62, submat.DefaultProteinGap, 2000, 1)
			}
			b.ReportMetric(sp, "sampledSP")
		})
	}
}

func BenchmarkAblationLocalAligner(b *testing.B) {
	loadFixtures(b)
	for _, name := range []string{"muscle", "muscle-refined", "nwnsi"} {
		b.Run(name, func(b *testing.B) {
			cfg := core.Config{}
			al := name
			cfg.NewLocalAligner = func(workers int) msa.Aligner {
				a, _ := NewAligner(al, workers)
				return a
			}
			for i := 0; i < b.N; i++ {
				if _, err := core.AlignInproc(fixtures.famBench, 4, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationAlphabet(b *testing.B) {
	loadFixtures(b)
	configs := []struct {
		name string
		comp *bio.Compressed
		k    int
	}{
		{"dayhoff6-k6", bio.Dayhoff6, 6},
		{"seb14-k5", bio.SEB14, 5},
		{"full20-k4", bio.Identity(bio.AminoAcids), 4},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			counter := kmer.MustCounter(c.comp, c.k)
			for i := 0; i < b.N; i++ {
				profiles := counter.Profiles(fixtures.fam500, 0)
				kmer.DistanceMatrix(profiles, 0)
			}
		})
	}
}

// ---- intra-rank parallelism: task-parallel guide-tree merging ----

// BenchmarkProgressiveWorkers measures the wall-clock effect of running
// the guide-tree merges on the dependency-aware scheduler: MuscleLike
// over a 224-sequence input at increasing worker counts. Alignments are
// asserted byte-identical across all worker counts (the parallel
// schedule must never change the result). On a machine with >= 8 cores
// workers=8 should run >= 1.8x faster than workers=1; on fewer cores
// the speedup saturates at the core count.
func BenchmarkProgressiveWorkers(b *testing.B) {
	seqs, err := GenerateDiverseSet(224, 200, 107)
	if err != nil {
		b.Fatal(err)
	}
	var ref []byte
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var aln *msa.Alignment
			for i := 0; i < b.N; i++ {
				var err error
				aln, err = msa.MuscleLike(w).Align(seqs)
				if err != nil {
					b.Fatal(err)
				}
			}
			var flat []byte
			for _, s := range aln.Seqs {
				flat = append(flat, s.Data...)
				flat = append(flat, '\n')
			}
			if ref == nil {
				ref = flat
			} else if !bytes.Equal(ref, flat) {
				b.Fatal("alignment differs across worker counts")
			}
		})
	}
}

// BenchmarkMafftWorkers is the same sweep for the MAFFT-like banded
// engine, whose merges also run on the scheduler.
func BenchmarkMafftWorkers(b *testing.B) {
	seqs, err := GenerateDiverseSet(96, 150, 108)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mafft.NewFFTNSI(w).Align(seqs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- parallel guide-tree construction (tiled distance matrix + UPGMA/NJ) ----

// guideTreeFixture lazily builds the N=2000 profile set the
// construction benchmarks share (generation and counting are setup, not
// measured).
var guideTreeFixture struct {
	once     sync.Once
	profiles []kmer.Profile
	dist     *kmer.Matrix
	err      error
}

func loadGuideTreeFixture(b *testing.B) ([]kmer.Profile, *kmer.Matrix) {
	b.Helper()
	f := &guideTreeFixture
	f.once.Do(func() {
		seqs, err := GenerateDiverseSet(2000, 120, 109)
		if err != nil {
			f.err = err
			return
		}
		counter := kmer.MustCounter(bio.Dayhoff6, kmer.DefaultK)
		f.profiles = counter.Profiles(seqs, 0)
		f.dist = kmer.DistanceMatrix(f.profiles, 0)
	})
	if f.err != nil {
		b.Fatal(f.err)
	}
	return f.profiles, f.dist
}

// BenchmarkDistanceMatrixTiled sweeps worker counts over the tiled
// O(N²) k-mer distance matrix at N=2000 — the first half of guide-tree
// construction. workers=1 is the sequential baseline the BENCH_*.json
// speedup series is computed against; on a machine with >= 4 cores
// workers=4 should run >= 2x faster (this container may have fewer).
func BenchmarkDistanceMatrixTiled(b *testing.B) {
	profiles, _ := loadGuideTreeFixture(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("n=2000/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := kmer.DistanceMatrixTiled(b.Context(), profiles, w, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGuideTreeWorkers sweeps worker counts over tree building —
// the second half of guide-tree construction: UPGMA at N=2000 (its
// O(n²) scans parallelise) and NJ at N=600 (O(n³), the CLUSTALW-scale
// input class).
func BenchmarkGuideTreeWorkers(b *testing.B) {
	profiles, dist := loadGuideTreeFixture(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("upgma/n=2000/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tree.UPGMAWorkers(dist, nil, w)
			}
		})
	}
	njDist, err := kmer.DistanceMatrixTiled(b.Context(), profiles[:600], 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nj/n=600/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tree.NeighborJoiningWorkers(njDist, nil, w)
			}
		})
	}
}

// ---- micro-benchmarks of the hot kernels ----

func BenchmarkKmerProfile(b *testing.B) {
	loadFixtures(b)
	counter := kmer.MustCounter(bio.Dayhoff6, 6)
	data := fixtures.fam500[0].Data
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		counter.Profile(data)
	}
}

func BenchmarkKmerDistance(b *testing.B) {
	loadFixtures(b)
	counter := kmer.MustCounter(bio.Dayhoff6, 6)
	pa := counter.Profile(fixtures.fam500[0].Data)
	pb := counter.Profile(fixtures.fam500[1].Data)
	for i := 0; i < b.N; i++ {
		kmer.Distance(pa, pb)
	}
}

func BenchmarkPairwiseGlobal(b *testing.B) {
	loadFixtures(b)
	x := fixtures.fam500[0].Data
	y := fixtures.fam500[1].Data
	for _, k := range []dpkern.Kernel{dpkern.Scalar, dpkern.Striped} {
		b.Run("kernel="+k.String(), func(b *testing.B) {
			al := pairwise.NewProtein()
			al.Kernel = k
			b.SetBytes(int64(len(x) + len(y)))
			for i := 0; i < b.N; i++ {
				al.Global(x, y)
			}
		})
	}
}

// ---- striped DP kernels (internal/dpkern) ----

// BenchmarkProfilePSP measures the profile-profile PSP hot path on the
// unit-leaf pairs a guide tree's first merges are made of — exactly the
// shape the striped int16 kernel accelerates — comparing the scalar
// float64 reference against the striped kernel. Path and score are
// asserted identical in both sub-benches (the kernel's byte-identity
// contract); the BENCH_*.json kernel_speedup family tracks the ratio
// (>= 2x single-thread expected).
func BenchmarkProfilePSP(b *testing.B) {
	seqs, err := GenerateDiverseSet(2, 500, 110)
	if err != nil {
		b.Fatal(err)
	}
	sub := submat.BLOSUM62
	alpha := sub.Alphabet()
	pa := profile.FromSequence(alpha, bio.Ungap(seqs[0].Data))
	pb := profile.FromSequence(alpha, bio.Ungap(seqs[1].Data))
	ref := profile.NewAligner(sub, submat.DefaultProteinGap)
	ref.Kernel = dpkern.Scalar
	refPath, refScore := ref.Align(pa, pb)
	for _, k := range []dpkern.Kernel{dpkern.Scalar, dpkern.Striped} {
		b.Run("kernel="+k.String(), func(b *testing.B) {
			al := profile.NewAligner(sub, submat.DefaultProteinGap)
			al.Kernel = k
			var path profile.Path
			var score float64
			for i := 0; i < b.N; i++ {
				path, score = al.Align(pa, pb)
			}
			if score != refScore || len(path) != len(refPath) {
				b.Fatalf("kernel %v diverged: score %v vs %v, path %d vs %d ops",
					k, score, refScore, len(path), len(refPath))
			}
			for i := range path {
				if path[i] != refPath[i] {
					b.Fatalf("kernel %v: path op %d differs", k, i)
				}
			}
		})
	}
}

func BenchmarkProfileProfileAlign(b *testing.B) {
	loadFixtures(b)
	sub := submat.BLOSUM62
	a1, err := msa.MuscleLike(0).Align(fixtures.fam500[:8])
	if err != nil {
		b.Fatal(err)
	}
	a2, err := msa.MuscleLike(0).Align(fixtures.fam500[8:16])
	if err != nil {
		b.Fatal(err)
	}
	p1, _ := a1.Profile(sub.Alphabet())
	p2, _ := a2.Profile(sub.Alphabet())
	al := profile.NewAligner(sub, submat.DefaultProteinGap)
	for i := 0; i < b.N; i++ {
		al.Align(p1, p2)
	}
}

func BenchmarkUPGMA(b *testing.B) {
	loadFixtures(b)
	counter := kmer.MustCounter(bio.Dayhoff6, 6)
	profiles := counter.Profiles(fixtures.fam500, 0)
	d := kmer.DistanceMatrix(profiles, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.UPGMA(d, nil)
	}
}

func BenchmarkMuscleLikeEndToEnd(b *testing.B) {
	loadFixtures(b)
	seqs := fixtures.famBench[:64]
	for i := 0; i < b.N; i++ {
		if _, err := msa.MuscleLike(0).Align(seqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPIAllToAll(b *testing.B) {
	payload := make([]byte, 64*1024)
	for i := 0; i < b.N; i++ {
		err := mpi.Run(8, func(c mpi.Comm) error {
			parts := make([][]byte, 8)
			for q := range parts {
				parts[q] = payload
			}
			_, err := mpi.AllToAll(c, 1, parts)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8 * 7 * len(payload)))
}
