package samplealign

import (
	"fmt"
	"io"

	"repro/internal/msa"
)

// LoadAlignment reads an aligned FASTA file (rows of equal width, gaps
// as '-') and validates it as a multiple alignment.
func LoadAlignment(path string) (*Alignment, error) {
	seqs, err := ReadFASTAFile(path)
	if err != nil {
		return nil, err
	}
	aln := &Alignment{Seqs: seqs}
	if err := aln.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return aln, nil
}

// WriteClustal renders an alignment in CLUSTAL W (.aln) format with the
// standard conservation line ('*' identical, ':' strong group, '.' weak
// group).
func WriteClustal(w io.Writer, a *Alignment) error {
	return msa.WriteClustal(w, a)
}

// ColumnConservation returns a per-column conservation score in [0,1]
// (1 − normalised residue entropy, scaled by occupancy).
func ColumnConservation(a *Alignment) []float64 {
	return msa.ColumnConservation(a, aminoAlphabet())
}

// ConservedBlocks returns the column ranges [start,end) whose
// conservation is at least minScore over at least minLen columns.
func ConservedBlocks(a *Alignment, minScore float64, minLen int) [][2]int {
	return msa.ConservedBlocks(a, aminoAlphabet(), minScore, minLen)
}
