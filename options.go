package samplealign

import (
	"fmt"

	"repro/internal/bio"
	"repro/internal/cons"
	"repro/internal/core"
	"repro/internal/mafft"
	"repro/internal/msa"
)

// Option customises an Align run.
type Option func(*settings) error

type settings struct {
	cfg core.Config
}

func buildConfig(opts []Option) (core.Config, error) {
	var s settings
	for _, opt := range opts {
		if err := opt(&s); err != nil {
			return core.Config{}, err
		}
	}
	return s.cfg, nil
}

// WithWorkers bounds the shared-memory workers used inside each rank
// (default 1, modelling single-CPU cluster nodes).
func WithWorkers(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("samplealign: workers = %d", n)
		}
		s.cfg.Workers = n
		return nil
	}
}

// WithK sets the k-mer length used for ranking (default 6).
func WithK(k int) Option {
	return func(s *settings) error {
		if k < 1 {
			return fmt.Errorf("samplealign: k = %d", k)
		}
		s.cfg.K = k
		return nil
	}
}

// WithSampleSize sets k, the number of sample sequences each rank
// contributes to the globalised rank (default max(p−1, 4)).
func WithSampleSize(k int) Option {
	return func(s *settings) error {
		if k < 1 {
			return fmt.Errorf("samplealign: sample size = %d", k)
		}
		s.cfg.SampleSize = k
		return nil
	}
}

// WithoutFineTune disables the global-ancestor fine-tuning step
// (buckets are concatenated block-diagonally); exposed for ablation.
func WithoutFineTune() Option {
	return func(s *settings) error {
		s.cfg.NoFineTune = true
		return nil
	}
}

// WithRandomSampling switches pivot selection from the paper's regular
// sampling to uniform random sampling; exposed for ablation.
func WithRandomSampling() Option {
	return func(s *settings) error {
		s.cfg.Sampling = core.RandomSampling
		return nil
	}
}

// WithFullAlphabet computes k-mers over the full 20-letter amino-acid
// alphabet instead of the compressed Dayhoff classes; exposed for
// ablation.
func WithFullAlphabet() Option {
	return func(s *settings) error {
		s.cfg.Compress = bio.Identity(bio.AminoAcids)
		if s.cfg.K == 0 {
			s.cfg.K = 4 // 20^6 would overflow the code space
		}
		return nil
	}
}

// NewAligner builds one of the built-in sequential MSA pipelines by name
// (see SequentialAligners). Useful both standalone and via
// WithLocalAligner.
func NewAligner(name string, workers int) (msa.Aligner, error) {
	switch name {
	case "muscle":
		return msa.MuscleLike(workers), nil
	case "muscle-refined":
		return msa.MuscleLikeRefined(workers, 2), nil
	case "clustal":
		return msa.ClustalLike(workers), nil
	case "tcoffee":
		return cons.New(workers), nil
	case "fftnsi":
		return mafft.NewFFTNSI(workers), nil
	case "nwnsi":
		return mafft.NewNWNSI(workers), nil
	default:
		return nil, fmt.Errorf("samplealign: unknown aligner %q (have %v)",
			name, SequentialAligners())
	}
}

// WithLocalAligner selects the sequential MSA pipeline run inside each
// bucket by name (default "muscle").
func WithLocalAligner(name string) Option {
	return func(s *settings) error {
		if _, err := NewAligner(name, 1); err != nil {
			return err
		}
		s.cfg.NewLocalAligner = func(workers int) msa.Aligner {
			al, _ := NewAligner(name, workers)
			return al
		}
		return nil
	}
}
