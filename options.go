package samplealign

import (
	"fmt"

	"repro/internal/bio"
	"repro/internal/core"
	"repro/internal/dpkern"
	"repro/internal/engines"
	"repro/internal/kmer"
	"repro/internal/msa"
)

// Option customises an Align run.
type Option func(*settings) error

type settings struct {
	cfg  core.Config
	kSet bool // WithK was given explicitly
}

func buildConfig(opts []Option) (core.Config, error) {
	var s settings
	for _, opt := range opts {
		if err := opt(&s); err != nil {
			return core.Config{}, err
		}
	}
	// Validate the k-mer length against the (possibly compressed)
	// alphabet regardless of option order: k codes must fit the uint32
	// k-mer space. Without this, WithFullAlphabet combined with a large
	// WithK would only fail deep inside the run, on every rank at once.
	comp := s.cfg.Compress
	if comp == nil {
		comp = bio.Dayhoff6
	}
	k := s.cfg.K
	if k == 0 {
		k = kmer.DefaultK
	}
	if _, err := kmer.NewCounter(comp, k); err != nil {
		return core.Config{}, fmt.Errorf("samplealign: k = %d is too large for the %d-letter alphabet: %w",
			k, comp.Len(), err)
	}
	return s.cfg, nil
}

// WithWorkers bounds the shared-memory workers used inside each rank
// (default 1, modelling single-CPU cluster nodes). n == 0 means "all
// cores". Alignments are byte-identical for every worker count; workers
// only change wall-clock time.
func WithWorkers(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("samplealign: workers = %d", n)
		}
		if n == 0 {
			// core treats 0 as "apply the single-CPU default of 1", so
			// "all cores" travels as a negative sentinel, which every
			// engine resolves to par.DefaultWorkers().
			n = -1
		}
		s.cfg.Workers = n
		return nil
	}
}

// WithKernel selects the DP kernel: "auto" (default) or "striped" run
// the Farrar-style saturating int16 kernels wherever the inputs fit
// their value bounds, escaping to float64 otherwise; "scalar" forces
// the float64 reference DP everywhere. Output is byte-identical for
// every mode — the striped kernels replicate the scalar comparisons and
// tie-breaks exactly — so the knob only changes speed.
func WithKernel(mode string) Option {
	return func(s *settings) error {
		k, err := dpkern.Parse(mode)
		if err != nil {
			return fmt.Errorf("samplealign: %w", err)
		}
		s.cfg.Kernel = k
		return nil
	}
}

// WithK sets the k-mer length used for ranking (default 6, or 4 with
// WithFullAlphabet). buildConfig rejects combinations whose code space
// alphabet^k overflows, whatever order the options are given in.
func WithK(k int) Option {
	return func(s *settings) error {
		if k < 1 {
			return fmt.Errorf("samplealign: k = %d", k)
		}
		s.cfg.K = k
		s.kSet = true
		return nil
	}
}

// WithSampleSize sets k, the number of sample sequences each rank
// contributes to the globalised rank (default max(p−1, 4)).
func WithSampleSize(k int) Option {
	return func(s *settings) error {
		if k < 1 {
			return fmt.Errorf("samplealign: sample size = %d", k)
		}
		s.cfg.SampleSize = k
		return nil
	}
}

// WithoutFineTune disables the global-ancestor fine-tuning step
// (buckets are concatenated block-diagonally); exposed for ablation.
func WithoutFineTune() Option {
	return func(s *settings) error {
		s.cfg.NoFineTune = true
		return nil
	}
}

// WithRandomSampling switches pivot selection from the paper's regular
// sampling to uniform random sampling; exposed for ablation.
func WithRandomSampling() Option {
	return func(s *settings) error {
		s.cfg.Sampling = core.RandomSampling
		return nil
	}
}

// WithFullAlphabet computes k-mers over the full 20-letter amino-acid
// alphabet instead of the compressed Dayhoff classes; exposed for
// ablation. Unless WithK was given explicitly (in either order), k
// defaults to 4 to keep the 20^k code space small; explicit k values
// are validated against the alphabet in buildConfig.
func WithFullAlphabet() Option {
	return func(s *settings) error {
		s.cfg.Compress = bio.Identity(bio.AminoAcids)
		if !s.kSet {
			s.cfg.K = 4
		}
		return nil
	}
}

// NewAligner builds one of the built-in sequential MSA pipelines by name
// (see SequentialAligners). Useful both standalone and via
// WithLocalAligner. The registry itself lives in internal/engines so the
// job server can resolve request aligner names through the same table.
func NewAligner(name string, workers int) (msa.Aligner, error) {
	al, err := engines.New(name, workers)
	if err != nil {
		return nil, fmt.Errorf("samplealign: unknown aligner %q (have %v)",
			name, SequentialAligners())
	}
	return al, nil
}

// WithLocalAligner selects the sequential MSA pipeline run inside each
// bucket by name (default "muscle").
func WithLocalAligner(name string) Option {
	return func(s *settings) error {
		if _, err := NewAligner(name, 1); err != nil {
			return err
		}
		s.cfg.NewLocalAligner = func(workers int) msa.Aligner {
			al, _ := engines.New(name, workers)
			return al
		}
		return nil
	}
}
