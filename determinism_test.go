package samplealign

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/bio"
	"repro/internal/dpkern"
	"repro/internal/engines"
	"repro/internal/kmer"
	"repro/internal/obs"
	"repro/internal/tree"
)

// This file is the cross-engine determinism matrix for parallel
// guide-tree construction: whatever the worker count, the tile size or
// the transport, the guide tree — and therefore the final alignment —
// must be byte-identical to the sequential path. The tiled distance
// matrix writes every pair exactly once with the same float ops as the
// row loop, and UPGMA/NJ break score ties by the lower cluster index,
// so these are exact-equality assertions, not tolerances.

// TestGuideTreeConstructionDeterminism builds, from real k-mer
// distances over a realistic dataset, the UPGMA and NJ trees at
// Workers {1, 4, 8} on top of distance matrices tiled at {1, 7, 64, N}
// and asserts every combination yields the same Newick serialisation
// (topology, merge order and branch lengths).
func TestGuideTreeConstructionDeterminism(t *testing.T) {
	seqs, err := GenerateDiverseSet(120, 90, 2027)
	if err != nil {
		t.Fatal(err)
	}
	counter := kmer.MustCounter(bio.Dayhoff6, kmer.DefaultK)
	profiles := counter.Profiles(seqs, 0)
	names := bio.IDs(seqs)

	ref := kmer.DistanceMatrix(profiles, 1)
	upgmaRef := tree.UPGMAWorkers(ref, names, 1).Newick()
	njRef := tree.NeighborJoiningWorkers(ref, names, 1).Newick()
	for _, tile := range []int{1, 7, 64, len(profiles)} {
		for _, w := range []int{1, 4, 8} {
			d, err := kmer.DistanceMatrixTiled(t.Context(), profiles, w, tile)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < d.N; i++ {
				for j := i + 1; j < d.N; j++ {
					if d.At(i, j) != ref.At(i, j) {
						t.Fatalf("tile=%d workers=%d: distance (%d,%d) differs", tile, w, i, j)
					}
				}
			}
			if got := tree.UPGMAWorkers(d, names, w).Newick(); got != upgmaRef {
				t.Fatalf("tile=%d workers=%d: UPGMA tree differs", tile, w)
			}
			if got := tree.NeighborJoiningWorkers(d, names, w).Newick(); got != njRef {
				t.Fatalf("tile=%d workers=%d: NJ tree differs", tile, w)
			}
		}
	}
}

// matrixEngines are the three progressive engines of the determinism
// matrix: msa (k-mer + UPGMA), mafft (FFT bands + UPGMA) and cons
// (T-Coffee-like + NJ) — between them both tree builders and all three
// merge pipelines are exercised.
var matrixEngines = []string{"muscle", "fftnsi", "tcoffee"}

// TestEngineWorkersDeterminism: each sequential engine alone must be
// byte-identical across worker counts now that its guide-tree
// construction (not just its merging) is parallel.
func TestEngineWorkersDeterminism(t *testing.T) {
	seqs, err := GenerateDiverseSet(48, 80, 2028)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range matrixEngines {
		t.Run(eng, func(t *testing.T) {
			al, err := NewAligner(eng, 1)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := al.Align(seqs)
			if err != nil {
				t.Fatal(err)
			}
			refRows := renderRows(ref)
			for _, w := range []int{4, 8} {
				al, err := NewAligner(eng, w)
				if err != nil {
					t.Fatal(err)
				}
				aln, err := al.Align(seqs)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(renderRows(aln), refRows) {
					t.Fatalf("%s: workers=%d differs from workers=1", eng, w)
				}
			}
		})
	}
}

// TestKernelDeterminismMatrix extends the matrix with the DP kernel
// dimension: engines {msa, mafft, cons} × Workers {1, 4} × Kernel
// {auto, striped}, every cell compared byte-for-byte against the
// engine's scalar Workers=1 reference. The striped int16 kernels and
// the corridor-seeded refinement are exactness contracts with a scalar
// escape hatch, so this is exact equality, not a tolerance.
func TestKernelDeterminismMatrix(t *testing.T) {
	seqs, err := GenerateDiverseSet(48, 80, 2030)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range matrixEngines {
		t.Run(eng, func(t *testing.T) {
			ref, err := engines.NewWithKernel(eng, 1, dpkern.Scalar)
			if err != nil {
				t.Fatal(err)
			}
			refAln, err := ref.Align(seqs)
			if err != nil {
				t.Fatal(err)
			}
			refRows := renderRows(refAln)
			for _, k := range []dpkern.Kernel{dpkern.Auto, dpkern.Striped} {
				for _, w := range []int{1, 4} {
					al, err := engines.NewWithKernel(eng, w, k)
					if err != nil {
						t.Fatal(err)
					}
					aln, err := al.Align(seqs)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(renderRows(aln), refRows) {
						t.Fatalf("%s: kernel=%v workers=%d differs from scalar workers=1", eng, k, w)
					}
				}
			}
		})
	}
}

// TestKernelBackendDeterminism runs the kernel dimension through the
// distributed backends: the full pipeline at p=4 with the striped
// kernels, over both inproc and TCP transports, must match the scalar
// inproc reference byte for byte.
func TestKernelBackendDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp cluster matrix in -short mode")
	}
	seqs, err := GenerateDiverseSet(40, 70, 2031)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	ref, _, err := Align(seqs, p, WithLocalAligner("muscle"), WithKernel("scalar"))
	if err != nil {
		t.Fatal(err)
	}
	refRows := renderRows(ref)
	t.Run("inproc/striped", func(t *testing.T) {
		aln, _, err := Align(seqs, p, WithLocalAligner("muscle"), WithKernel("striped"), WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderRows(aln), refRows) {
			t.Fatal("inproc striped differs from inproc scalar")
		}
	})
	t.Run("tcp/striped", func(t *testing.T) {
		tcp := runTCPCluster(t, seqs, p, WithLocalAligner("muscle"), WithKernel("striped"), WithWorkers(4))
		if !bytes.Equal(renderRows(tcp), refRows) {
			t.Fatal("tcp striped differs from inproc scalar")
		}
	})
}

// TestCrossEngineBackendDeterminismMatrix is the full matrix: engines
// {msa, mafft, cons} × Workers {1, 4, 8} × backends {inproc, TCP p=4},
// each cell's final distributed alignment compared byte-for-byte
// against the engine's inproc Workers=1 reference.
func TestCrossEngineBackendDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp cluster matrix in -short mode")
	}
	seqs, err := GenerateDiverseSet(40, 70, 2029)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	for _, eng := range matrixEngines {
		t.Run(eng, func(t *testing.T) {
			ref, _, err := Align(seqs, p, WithLocalAligner(eng))
			if err != nil {
				t.Fatal(err)
			}
			refRows := renderRows(ref)
			for _, w := range []int{4, 8} {
				t.Run(fmt.Sprintf("inproc/workers=%d", w), func(t *testing.T) {
					aln, _, err := Align(seqs, p, WithLocalAligner(eng), WithWorkers(w))
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(renderRows(aln), refRows) {
						t.Fatalf("%s inproc workers=%d differs from workers=1", eng, w)
					}
				})
			}
			t.Run("tcp/workers=4", func(t *testing.T) {
				tcp := runTCPCluster(t, seqs, p, WithLocalAligner(eng), WithWorkers(4))
				if !bytes.Equal(renderRows(tcp), refRows) {
					t.Fatalf("%s tcp p=%d differs from inproc workers=1", eng, p)
				}
			})
		})
	}
}

// TestTracingDeterminismMatrix is the observability dimension of the
// matrix: pipeline tracing is pure instrumentation, so running the
// full pipeline with no tracer, a default tracer, an aggressively
// sampled tracer and a span-starved tracer must all produce
// byte-identical alignments. Span attributes carry counts and flags,
// never timing-derived decisions — the determinism lint analyzer
// enforces the read side (no obs.(*Span).Wall / obs.(*Tracer).Document
// in determinism-critical packages); this test pins the end-to-end
// byte contract.
func TestTracingDeterminismMatrix(t *testing.T) {
	seqs, err := GenerateDiverseSet(40, 70, 2031)
	if err != nil {
		t.Fatal(err)
	}
	const p = 3
	for _, eng := range matrixEngines {
		t.Run(eng, func(t *testing.T) {
			ref, _, err := AlignContext(context.Background(), seqs, p, WithLocalAligner(eng))
			if err != nil {
				t.Fatal(err)
			}
			refRows := renderRows(ref)
			tracers := []struct {
				name string
				opts obs.Options
			}{
				{"default", obs.Options{}},
				{"sample-everything", obs.Options{SampleDepth: 1 << 20}},
				{"sample-nothing", obs.Options{SampleDepth: -1}},
				{"span-starved", obs.Options{MaxSpans: 4}},
			}
			for _, tc := range tracers {
				t.Run(tc.name, func(t *testing.T) {
					tr := obs.New(tc.opts)
					ctx := obs.WithTracer(context.Background(), tr)
					aln, _, err := AlignContext(ctx, seqs, p, WithLocalAligner(eng))
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(renderRows(aln), refRows) {
						t.Fatalf("%s with tracer %s differs from untraced run", eng, tc.name)
					}
					if doc := tr.Document(); doc.SpanCount == 0 {
						t.Fatalf("%s tracer %s recorded no spans — the dimension is vacuous", eng, tc.name)
					}
				})
			}
			// The streaming variant exercises both span-finish hooks (the
			// metric feed and the live-event feed): firing synchronous
			// callbacks from every span close must not perturb output.
			t.Run("streaming", func(t *testing.T) {
				var ends, closes atomic.Int64
				tr := obs.New(obs.Options{
					OnSpanEnd:   func(string, float64) { ends.Add(1) },
					OnSpanClose: func(obs.SpanClose) { closes.Add(1) },
				})
				ctx := obs.WithTracer(context.Background(), tr)
				aln, _, err := AlignContext(ctx, seqs, p, WithLocalAligner(eng))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(renderRows(aln), refRows) {
					t.Fatalf("%s with streaming hooks differs from untraced run", eng)
				}
				if ends.Load() == 0 || closes.Load() == 0 {
					t.Fatalf("streaming hooks never fired (ends=%d closes=%d) — the dimension is vacuous",
						ends.Load(), closes.Load())
				}
			})
		})
	}
}
