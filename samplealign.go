// Package samplealign is the public API of the Sample-Align-D
// reproduction: a high-performance multiple sequence alignment system
// using phylogenetic sampling and domain decomposition (Saeed & Khokhar,
// IPDPS 2008).
//
// The package aligns large sets of homologous protein sequences by
// partitioning them across p ranks with a SampleSort-style k-mer-rank
// redistribution, aligning each bucket independently with a sequential
// MSA pipeline, and reconciling the buckets through a global ancestor
// profile. Ranks can be in-process goroutines (Align) or separate
// processes connected over TCP (AlignTCP / the samplealignd daemon).
// For continuous workloads the same pipeline runs behind a long-lived
// HTTP job service (NewServer / the samplealignsrv daemon) with
// queueing, backpressure and content-addressed result caching.
//
// Quick start:
//
//	seqs, _ := samplealign.ReadFASTAFile("input.fa")
//	aln, report, err := samplealign.Align(seqs, 8)
//	if err != nil { ... }
//	fmt.Println(report.Summary())
//	samplealign.WriteFASTAFile("aligned.fa", aln.Seqs)
package samplealign

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/bio"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/fasta"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/submat"
)

// Sequence is a named biological sequence (alias of the internal type so
// callers can construct inputs directly).
type Sequence = bio.Sequence

// Alignment is a multiple sequence alignment: equal-length gapped rows.
type Alignment = msa.Alignment

// NewSequence builds a sequence from an id and residue string.
func NewSequence(id, residues string) Sequence { return bio.NewSequence(id, residues) }

// RunReport summarises one distributed run: per-rank phase timings,
// communication counters and bucket sizes.
type RunReport struct {
	Procs       int
	BucketSizes []int
	Elapsed     time.Duration
	PerRank     []RankReport
}

// RankReport is the per-rank slice of a RunReport.
type RankReport struct {
	Rank       int
	BucketSize int
	BytesSent  int64
	BytesRecv  int64
	MsgsSent   int64
	LocalAlign time.Duration
	Total      time.Duration
}

// Summary renders a one-paragraph human-readable report.
func (r *RunReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sample-align-d: %d ranks, %v elapsed; buckets %v; ",
		r.Procs, r.Elapsed.Round(time.Millisecond), r.BucketSizes)
	var sent, recv int64
	for _, pr := range r.PerRank {
		sent += pr.BytesSent
		recv += pr.BytesRecv
	}
	fmt.Fprintf(&b, "%d bytes sent / %d bytes received", sent, recv)
	return b.String()
}

// Align aligns the sequences with Sample-Align-D over `procs` in-process
// ranks. Sequence IDs must be unique and sequences non-empty. The result
// rows come back in input order.
func Align(seqs []Sequence, procs int, opts ...Option) (*Alignment, *RunReport, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return AlignContext(context.Background(), seqs, procs, opts...)
}

// AlignContext is Align bound to a context: cancelling ctx (or passing
// one with an expired deadline) aborts the run on every rank — blocked
// collectives unblock, bucket aligners stop at their next merge, worker
// goroutines drain — and the call returns the context's error
// (context.Canceled / context.DeadlineExceeded).
func AlignContext(ctx context.Context, seqs []Sequence, procs int, opts ...Option) (*Alignment, *RunReport, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	res, err := core.AlignInprocContext(ctx, seqs, procs, cfg)
	if err != nil {
		return nil, nil, err
	}
	report := &RunReport{Procs: procs, Elapsed: time.Since(start)}
	if len(res.Stats) > 0 && res.Stats[0] != nil {
		report.BucketSizes = res.Stats[0].BucketSizes
	}
	for _, s := range res.Stats {
		if s == nil {
			continue
		}
		report.PerRank = append(report.PerRank, RankReport{
			Rank:       s.Rank,
			BucketSize: s.BucketSize,
			BytesSent:  s.Comm.BytesSent,
			BytesRecv:  s.Comm.BytesRecv,
			MsgsSent:   s.Comm.MsgsSent,
			LocalAlign: s.Timings.LocalAlign,
			Total:      s.Timings.Total,
		})
	}
	return res.Alignment, report, nil
}

// TCPRankConfig configures one rank of a multi-process TCP cluster run.
type TCPRankConfig struct {
	Rank  int      // this process's rank
	Addrs []string // listen address of every rank, indexed by rank
}

// AlignTCP participates in a distributed alignment as one rank of a TCP
// cluster: every rank calls AlignTCP with its local slice of sequences;
// rank 0 receives the full alignment (others get nil).
func AlignTCP(tcpCfg TCPRankConfig, local []Sequence, opts ...Option) (*Alignment, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return AlignTCPContext(context.Background(), tcpCfg, local, opts...)
}

// AlignTCPContext is AlignTCP bound to a context: cancelling ctx aborts
// the mesh setup or the run in progress on this rank — the communicator
// is closed so peer connections and reader goroutines shut down — and
// the call returns the context's error. A hung or oversized cluster job
// can thus be abandoned cleanly from any rank.
func AlignTCPContext(ctx context.Context, tcpCfg TCPRankConfig, local []Sequence, opts ...Option) (*Alignment, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	comm, err := mpi.DialTCPContext(ctx, mpi.TCPConfig{Rank: tcpCfg.Rank, Addrs: tcpCfg.Addrs})
	if err != nil {
		return nil, err
	}
	defer comm.Close()
	// Close the communicator as soon as ctx is cancelled so blocked
	// socket reads and peer reader goroutines unwind promptly.
	watch := make(chan struct{})
	defer close(watch)
	go func() {
		select {
		case <-ctx.Done():
			comm.Close()
		case <-watch:
		}
	}()
	aln, _, err := core.AlignContext(ctx, comm, local, cfg)
	return aln, err
}

// SequentialAligners lists the built-in sequential MSA pipelines by name,
// usable with WithLocalAligner, as standalone aligners via NewAligner,
// and as the "aligner" field of HTTP job requests (see NewServer).
func SequentialAligners() []string { return engines.Names() }

// QScore computes the PREFAB accuracy measure of a test alignment
// against a reference alignment (rows matched by ID; the reference may
// cover a subset of rows).
func QScore(test, ref *Alignment) (float64, error) { return msa.QScore(test, ref) }

// SPScore computes the affine-gap sum-of-pairs score of an alignment
// under BLOSUM62 (the paper's "score of the global map").
func SPScore(a *Alignment) float64 {
	return msa.SPScore(a, submat.BLOSUM62, submat.DefaultProteinGap, 0)
}

// ReadFASTA parses FASTA records from r.
func ReadFASTA(r io.Reader) ([]Sequence, error) { return fasta.Read(r) }

// ReadFASTAFile parses FASTA records from a file.
func ReadFASTAFile(path string) ([]Sequence, error) { return fasta.ReadFile(path) }

// WriteFASTA writes sequences (or alignment rows) to w in FASTA format.
func WriteFASTA(w io.Writer, seqs []Sequence) error { return fasta.Write(w, seqs) }

// WriteFASTAFile writes sequences to a file in FASTA format.
func WriteFASTAFile(path string, seqs []Sequence) error { return fasta.WriteFile(path, seqs) }
