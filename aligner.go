package samplealign

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bio"
	"repro/internal/core"
	"repro/internal/msa"
)

// aminoAlphabet exposes the standard alphabet to the public helpers
// without leaking the internal package into signatures.
func aminoAlphabet() *bio.Alphabet { return bio.AminoAcids }

// coreInprocAligner adapts the distributed aligner to msa.Aligner so the
// quality harness can evaluate it next to the sequential pipelines.
type coreInprocAligner struct {
	p   int
	cfg core.Config
}

func (a *coreInprocAligner) Name() string { return fmt.Sprintf("sample-align-d:%d", a.p) }

func (a *coreInprocAligner) Align(seqs []Sequence) (*msa.Alignment, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return a.AlignContext(context.Background(), seqs)
}

func (a *coreInprocAligner) AlignContext(ctx context.Context, seqs []Sequence) (*msa.Alignment, error) {
	res, err := core.AlignInprocContext(ctx, seqs, a.p, a.cfg)
	if err != nil {
		return nil, err
	}
	return res.Alignment, nil
}

// parseSampleAlignName recognises "sample-align-d:<p>" aligner names.
func parseSampleAlignName(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "sample-align-d:")
	if !ok {
		return 0, false
	}
	p, err := strconv.Atoi(rest)
	if err != nil || p < 1 {
		return 0, false
	}
	return p, true
}
