package samplealign

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"time"

	"repro/internal/dpkern"
	"repro/internal/serve"
)

// ServerConfig configures the alignment job service (see NewServer).
// The zero value serves in-process alignments with 2 concurrent jobs,
// a 64-job queue and a 256-entry / 64 MiB result cache.
type ServerConfig struct {
	// Default options applied to requests that omit them.
	DefaultProcs   int    // ranks per job (default 4)
	DefaultWorkers int    // shared-memory workers per rank (default 1)
	DefaultAligner string // bucket aligner name (default "muscle")
	DefaultKernel  string // DP kernel: auto|scalar|striped (default "auto"; never changes results)

	// Admission control and per-job resource bounds.
	MaxConcurrent int // jobs aligning at once (default 2)
	MaxQueued     int // jobs waiting beyond the running ones (default 64);
	//                   submissions past this get 429
	MaxProcs     int // reject requests asking for more ranks (0 = no cap)
	WorkerBudget int // clamp procs×workers per job (0 = no cap)

	// Content-addressed result cache (identical input + options are
	// answered without re-running the alignment).
	CacheEntries int   // entry bound (default 256; -1 disables)
	CacheBytes   int64 // byte bound (default 64 MiB; -1 unbounded)

	// DataDir enables durability: accepted jobs are journaled to a
	// write-ahead log before they can run (replayed on startup, so a
	// restart re-enqueues unfinished jobs and keeps finished ones
	// visible) and results are persisted content-addressed on disk,
	// backing the in-memory cache as a second tier and serving result
	// downloads as streams. Empty = fully in-memory, exactly the
	// pre-persistence behaviour.
	DataDir      string
	StoreEntries int   // disk store entry bound (default 4096; -1 disables the disk tier)
	StoreBytes   int64 // disk store byte bound (default 1 GiB; -1 unbounded)

	// Journal group commit: concurrent journal appends share one
	// write+fsync. JournalBatchBytes caps the framed bytes per commit
	// group (default 1 MiB); JournalBatchWait is how long a group
	// leader waits for followers before fsyncing (default 0 — groups
	// then form only from appenders arriving during an in-flight
	// flush, adding no latency when the journal is idle).
	JournalBatchBytes int
	JournalBatchWait  time.Duration

	// DrainTimeout bounds the graceful-shutdown drain: how long
	// ListenAndServe waits for queued and running jobs to finish after
	// its context is canceled before hard-canceling the rest (default
	// 30s; < 0 skips draining).
	DrainTimeout time.Duration

	// Logger receives structured operational logs (job lifecycle keyed
	// by job/trace IDs, journal I/O errors, recovery notes). When nil,
	// Logf is adapted; with neither, the server is silent.
	Logger *slog.Logger
	Logf   func(format string, args ...any) // legacy printf sink, used only when Logger is nil

	// NoTrace disables per-job span tracing: /v1/jobs/{id}/trace
	// answers 404 and the per-stage histograms on /metrics stay empty.
	// Alignment output is byte-identical with tracing on or off.
	NoTrace bool

	// Optional TCP rank cluster: when Workers lists samplealignd
	// worker daemons (their -worker-ctrl addresses), jobs fan out to
	// them with this server as rank 0, listening on ClusterSelf for
	// the per-job rank mesh.
	ClusterWorkers []string
	ClusterSelf    string
}

// Server is a long-running alignment job service: a bounded async
// queue with admission control in front of the Sample-Align-D
// pipeline, plus a content-addressed result cache. Obtain the HTTP API
// with Handler and serve it with any http.Server; Close drains it.
type Server struct {
	inner        *serve.Server
	drainTimeout time.Duration
}

// NewServer builds and starts a job service (its worker pool runs until
// Close). See ServerConfig for the knobs and Handler for the API.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.DefaultAligner != "" {
		if _, err := NewAligner(cfg.DefaultAligner, 1); err != nil {
			return nil, err
		}
	}
	if _, err := dpkern.Parse(cfg.DefaultKernel); err != nil {
		return nil, fmt.Errorf("samplealign: %w", err)
	}
	if len(cfg.ClusterWorkers) > 0 && cfg.ClusterSelf == "" {
		return nil, errors.New("samplealign: cluster mode needs a rank-0 mesh address (ClusterSelf)")
	}
	sc := serve.Config{
		Defaults: serve.Options{
			Procs:   cfg.DefaultProcs,
			Workers: cfg.DefaultWorkers,
			Aligner: cfg.DefaultAligner,
			Kernel:  cfg.DefaultKernel,
		},
		Limits: serve.Limits{
			MaxProcs:     cfg.MaxProcs,
			WorkerBudget: cfg.WorkerBudget,
		},
		MaxConcurrent:     cfg.MaxConcurrent,
		MaxQueued:         cfg.MaxQueued,
		CacheEntries:      cfg.CacheEntries,
		CacheBytes:        cfg.CacheBytes,
		DataDir:           cfg.DataDir,
		StoreEntries:      cfg.StoreEntries,
		StoreBytes:        cfg.StoreBytes,
		JournalBatchBytes: cfg.JournalBatchBytes,
		JournalBatchWait:  cfg.JournalBatchWait,
		Logger:            cfg.Logger,
		Logf:              cfg.Logf,
		NoTrace:           cfg.NoTrace,
	}
	if len(cfg.ClusterWorkers) > 0 {
		sc.Executor = &serve.Cluster{Workers: cfg.ClusterWorkers, SelfAddr: cfg.ClusterSelf}
		// Cluster jobs are serialized (fixed per-worker mesh ports), so
		// extra concurrency would only park jobs on the executor mutex.
		sc.MaxConcurrent = 1
	}
	inner, err := serve.New(sc)
	if err != nil {
		return nil, err
	}
	drain := cfg.DrainTimeout
	if drain == 0 {
		drain = 30 * time.Second
	}
	return &Server{inner: inner, drainTimeout: drain}, nil
}

// RecoveryInfo summarises what the write-ahead journal replay
// reconstructed at startup (see ServerConfig.DataDir).
type RecoveryInfo struct {
	Enabled        bool // a DataDir is configured
	JournalRecords int  // intact journal records replayed
	Finished       int  // terminal jobs restored to the job table
	Requeued       int  // unfinished jobs re-enqueued for execution
	Interrupted    int  // of Requeued: hard-canceled when the previous shutdown's drain window expired
	CleanShutdown  bool // the previous process closed cleanly
}

// Recovery reports what startup journal replay found; the zero value
// (Enabled false) without a DataDir.
func (s *Server) Recovery() RecoveryInfo {
	r := s.inner.Recovery()
	return RecoveryInfo{
		Enabled:        r.Enabled,
		JournalRecords: r.JournalRecords,
		Finished:       r.Finished,
		Requeued:       r.Requeued,
		Interrupted:    r.Interrupted,
		CleanShutdown:  r.CleanShutdown,
	}
}

// Drain stops admission (new submissions get 503 while status and
// result reads keep working) and waits up to timeout for queued and
// running jobs to finish; it reports whether the server drained fully.
func (s *Server) Drain(timeout time.Duration) bool { return s.inner.Drain(timeout) }

// Handler returns the HTTP API:
//
//	POST   /v1/jobs             submit (async) → 202 + job status JSON
//	POST   /v1/batch            submit many inputs in one request
//	                            (all-or-nothing admission, one journal
//	                            commit group) → per-input job statuses
//	GET    /v1/jobs/{id}        status
//	GET    /v1/jobs/{id}/result aligned FASTA
//	GET    /v1/jobs/{id}/trace  span-tree JSON of the finished run
//	DELETE /v1/jobs/{id}        cancel
//	POST   /v1/align            submit + wait; disconnect cancels the job
//	GET    /healthz             liveness + queue stats
//	GET    /metrics             Prometheus text metrics
//
// Submit bodies are raw FASTA (plain or gzip) with options as query
// parameters, or JSON {"fasta": "...", "options": {...}}.
func (s *Server) Handler() http.Handler { return s.inner.Handler() }

// Close cancels all queued and running jobs and waits for the pool to
// drain.
func (s *Server) Close() { s.inner.Close() }

// ListenAndServe runs the job service on addr until ctx is cancelled,
// then shuts down gracefully: new submissions are refused with 503
// while queued and running jobs drain (up to DrainTimeout; status and
// result reads keep being served), the HTTP listener closes, and the
// pool is torn down — with a DataDir, a clean-shutdown record is
// journaled last.
func ListenAndServe(ctx context.Context, addr string, cfg ServerConfig) error {
	srv, err := NewServer(cfg)
	if err != nil {
		return err
	}
	return srv.ListenAndServe(ctx, addr)
}

// ListenAndServe runs an already-constructed server on addr until ctx
// is cancelled (see the package-level ListenAndServe), then closes it.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	defer s.Close()
	hs := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return context.WithoutCancel(ctx) },
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case <-ctx.Done():
		// Refuse new work but keep the listener up while jobs drain, so
		// waiting clients can still poll status and fetch results.
		if s.drainTimeout >= 0 {
			s.Drain(s.drainTimeout)
		}
		//lint:allow ctxflow bounded graceful-shutdown timeout: the caller's ctx is already done here
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutCtx)
		<-errCh // always http.ErrServerClosed after Shutdown
		return nil
	case err := <-errCh:
		return err
	}
}
