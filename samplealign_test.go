package samplealign

import (
	"bytes"
	"strings"
	"testing"
)

func testSeqs(t *testing.T, n int) []Sequence {
	t.Helper()
	seqs, err := GenerateFamily(FamilyConfig{N: n, MeanLen: 70, Relatedness: 350, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return seqs
}

func TestAlignPublicAPI(t *testing.T) {
	seqs := testSeqs(t, 20)
	aln, report, err := Align(seqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := aln.Validate(); err != nil {
		t.Fatal(err)
	}
	if aln.NumSeqs() != len(seqs) {
		t.Fatalf("%d rows", aln.NumSeqs())
	}
	if report.Procs != 4 || len(report.PerRank) != 4 {
		t.Fatalf("report: %+v", report)
	}
	if !strings.Contains(report.Summary(), "4 ranks") {
		t.Fatalf("summary: %s", report.Summary())
	}
}

func TestAlignOptions(t *testing.T) {
	seqs := testSeqs(t, 12)
	aln, _, err := Align(seqs, 2,
		WithWorkers(2), WithK(5), WithSampleSize(3),
		WithRandomSampling(), WithLocalAligner("muscle-refined"))
	if err != nil {
		t.Fatal(err)
	}
	if err := aln.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAlignOptionValidation(t *testing.T) {
	seqs := testSeqs(t, 4)
	if _, _, err := Align(seqs, 2, WithWorkers(-1)); err == nil {
		t.Error("negative workers accepted")
	}
	if _, _, err := Align(seqs, 2, WithWorkers(0)); err != nil {
		t.Errorf("workers=0 (all cores) rejected: %v", err)
	}
	if _, _, err := Align(seqs, 2, WithK(0)); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Align(seqs, 2, WithSampleSize(0)); err == nil {
		t.Error("sample size 0 accepted")
	}
	if _, _, err := Align(seqs, 2, WithLocalAligner("nope")); err == nil {
		t.Error("unknown aligner accepted")
	}
}

func TestNewAlignerAllNames(t *testing.T) {
	seqs := testSeqs(t, 6)
	for _, name := range SequentialAligners() {
		al, err := NewAligner(name, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		aln, err := al.Align(seqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := aln.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFASTARoundTripPublic(t *testing.T) {
	seqs := []Sequence{NewSequence("a", "ACDEF"), NewSequence("b", "ACDF")}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, seqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].String() != "ACDEF" {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestQualityHelpers(t *testing.T) {
	seqs := testSeqs(t, 8)
	aln, _, err := Align(seqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp := SPScore(aln); sp == 0 {
		t.Error("SP score is zero for a family alignment")
	}
	q, err := QScore(aln, aln)
	if err != nil || q != 1 {
		t.Errorf("self Q = %g, err %v", q, err)
	}
}

func TestEvaluatePrefabPublic(t *testing.T) {
	sets, err := GeneratePrefab(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	qMuscle, err := EvaluatePrefab("muscle", sets)
	if err != nil {
		t.Fatal(err)
	}
	if qMuscle <= 0 || qMuscle > 1 {
		t.Fatalf("muscle Q = %g", qMuscle)
	}
	qDist, err := EvaluatePrefab("sample-align-d:2", sets)
	if err != nil {
		t.Fatal(err)
	}
	if qDist <= 0 || qDist > 1 {
		t.Fatalf("sample-align-d Q = %g", qDist)
	}
	if _, err := EvaluatePrefab("bogus", sets); err == nil {
		t.Error("bogus aligner accepted")
	}
}

func TestSampleGenomeProteinsPublic(t *testing.T) {
	seqs, err := SampleGenomeProteins(GenomeConfig{TargetBP: 50000, MeanProteinLen: 100, Seed: 1}, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 10 {
		t.Fatalf("%d proteins", len(seqs))
	}
}

func TestParseSampleAlignName(t *testing.T) {
	if p, ok := parseSampleAlignName("sample-align-d:8"); !ok || p != 8 {
		t.Fatalf("parse: %d %v", p, ok)
	}
	for _, bad := range []string{"sample-align-d:", "sample-align-d:0", "muscle", "sample-align-d:x"} {
		if _, ok := parseSampleAlignName(bad); ok {
			t.Errorf("%q parsed", bad)
		}
	}
}
