package samplealign

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func waitGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestAlignContextPreCancelled(t *testing.T) {
	seqs := testSeqs(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := AlignContext(ctx, seqs, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAlignContextDeadlineMidRun(t *testing.T) {
	// A large diverse set takes far longer than the deadline; the run
	// must unwind every rank and report the deadline error, leaking no
	// goroutines.
	seqs, err := GenerateDiverseSet(300, 200, 17)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	_, _, err = AlignContext(ctx, seqs, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	waitGoroutines(t, base, 2)
}

func TestAlignContextCompletesUncancelled(t *testing.T) {
	seqs := testSeqs(t, 12)
	aln, report, err := AlignContext(context.Background(), seqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if aln.NumSeqs() != len(seqs) {
		t.Fatalf("%d rows", aln.NumSeqs())
	}
	if report == nil || report.Procs != 2 {
		t.Fatalf("report: %+v", report)
	}
}

func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func TestAlignTCPContextCancelMidRun(t *testing.T) {
	// Two TCP ranks share a context that is cancelled while the (large)
	// alignment is in flight: both ranks must return context.Canceled and
	// all connection/reader goroutines must drain.
	seqs, err := GenerateDiverseSet(300, 200, 19)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	addrs := freeAddrs(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	half := len(seqs) / 2
	shards := [][]Sequence{seqs[:half], seqs[half:]}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			_, errs[rank] = AlignTCPContext(ctx,
				TCPRankConfig{Rank: rank, Addrs: addrs}, shards[rank])
		}(rank)
	}
	time.Sleep(150 * time.Millisecond) // let the mesh form and the run start
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("cancelled TCP ranks never returned")
	}
	for rank, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("rank %d err = %v, want context.Canceled", rank, err)
		}
	}
	waitGoroutines(t, base, 2)
}

func TestWithFullAlphabetKOrdering(t *testing.T) {
	seqs := testSeqs(t, 8)
	// An explicit k that overflows the 20-letter code space must be
	// rejected up front, in either option order.
	if _, _, err := Align(seqs, 1, WithFullAlphabet(), WithK(8)); err == nil {
		t.Fatal("WithFullAlphabet+WithK(8) accepted")
	}
	if _, _, err := Align(seqs, 1, WithK(8), WithFullAlphabet()); err == nil {
		t.Fatal("WithK(8)+WithFullAlphabet accepted")
	}
	// The compressed default alphabet still allows k=8.
	if _, _, err := Align(seqs, 1, WithK(8)); err != nil {
		t.Fatalf("WithK(8) over Dayhoff6: %v", err)
	}
	// WithFullAlphabet alone defaults k to 4 and must work.
	if _, _, err := Align(seqs, 1, WithFullAlphabet()); err != nil {
		t.Fatalf("WithFullAlphabet alone: %v", err)
	}
	// Explicit small k with the full alphabet works in either order.
	if _, _, err := Align(seqs, 1, WithK(3), WithFullAlphabet()); err != nil {
		t.Fatalf("WithK(3)+WithFullAlphabet: %v", err)
	}
}

func TestSummaryReportsBothDirections(t *testing.T) {
	seqs := testSeqs(t, 16)
	_, report, err := Align(seqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := report.Summary()
	if !strings.Contains(s, "bytes sent") || !strings.Contains(s, "bytes received") {
		t.Fatalf("summary missing traffic directions: %s", s)
	}
}
