#!/usr/bin/env bash
# lint.sh — run the project-invariant analyzer suite (internal/lint) over
# the whole module via `go vet -vettool`, exactly as CI does.
#
# Usage:
#   scripts/lint.sh                 # whole module
#   scripts/lint.sh ./internal/...  # any `go vet` package patterns
#
# The suite enforces (see TESTING.md for the full contract):
#   ctxflow        library code threads contexts, never originates them
#   determinism    no clocks/rand/map-order in the alignment pipeline
#   pooldiscipline every dp workspace acquired is released on all paths
#   durerr         store/serve never silently discard Sync/Close/Rename errors
#
# Findings are suppressed only by `//lint:allow <analyzer> <reason>` with a
# written reason; reasonless directives are themselves findings.
set -euo pipefail
cd "$(dirname "$0")/.."

tool_dir=$(mktemp -d)
trap 'rm -rf "$tool_dir"' EXIT

go build -o "$tool_dir/samplealignlint" ./cmd/samplealignlint
go vet -vettool="$tool_dir/samplealignlint" "${@:-./...}"
echo "lint: clean"
