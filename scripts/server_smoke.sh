#!/usr/bin/env bash
# End-to-end smoke of the HTTP job service: start samplealignsrv,
# submit a small FASTA over HTTP, poll to completion, fetch the result
# and diff it byte-for-byte against the samplealign batch CLI on the
# same input and options. Also checks the content-addressed cache
# (identical resubmission answered instantly) and restart recovery:
# the server is stopped and restarted on the same data directory, and
# the pre-restart result must be served from disk — byte-identical,
# with zero alignments recomputed (asserted via /metrics). Observability
# is smoked end-to-end too: the job's span tree at /v1/jobs/{id}/trace
# must cover all five pipeline stages with positive durations, the same
# stages must show up as samplealign_stage_seconds histograms on
# /metrics, and the persisted trace must survive the restart.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=${WORK:-$(mktemp -d)}
PORT=${PORT:-18080}
BASE="http://127.0.0.1:$PORT"

echo "== build =="
go build -o "$WORK/" ./cmd/samplealign ./cmd/samplealignsrv ./cmd/seqgen

echo "== input + batch reference =="
"$WORK/seqgen" -kind family -n 80 -len 100 -out "$WORK/in.fa"
"$WORK/samplealign" -in "$WORK/in.fa" -p 3 -out "$WORK/batch.fa"

echo "== start server =="
"$WORK/samplealignsrv" -addr "127.0.0.1:$PORT" -p 3 -data-dir "$WORK/data" 2>"$WORK/srv.log" &
SRV=$!
trap 'kill $SRV 2>/dev/null || true; wait $SRV 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

json_field() { # json_field <field> — first string value of "field"
  sed -n "s/.*\"$1\": *\"\([^\"]*\)\".*/\1/p" | head -1
}

echo "== submit =="
SUBMIT=$(curl -fsS --data-binary @"$WORK/in.fa" "$BASE/v1/jobs?procs=3")
ID=$(echo "$SUBMIT" | json_field id)
[ -n "$ID" ] || { echo "no job id in: $SUBMIT"; exit 1; }
echo "job $ID"

echo "== poll =="
for _ in $(seq 1 600); do
  STATE=$(curl -fsS "$BASE/v1/jobs/$ID" | json_field state)
  case "$STATE" in
    done) break ;;
    failed|canceled) echo "job ended $STATE"; curl -fsS "$BASE/v1/jobs/$ID"; exit 1 ;;
    *) sleep 0.1 ;;
  esac
done
[ "$STATE" = done ] || { echo "job stuck in $STATE"; exit 1; }

echo "== fetch + diff against batch CLI =="
curl -fsS "$BASE/v1/jobs/$ID/result" -o "$WORK/http.fa"
diff "$WORK/batch.fa" "$WORK/http.fa"
echo "byte-identical to samplealign output"

echo "== trace: span tree covers every pipeline stage =="
curl -fsS "$BASE/v1/jobs/$ID/trace" -o "$WORK/trace.json"
stage_duration() { # stage_duration <stage> — first duration_ns of the named span
  grep -A2 "\"name\": \"$1\"" "$WORK/trace.json" | sed -n 's/.*"duration_ns": \([0-9]*\).*/\1/p' | head -1
}
for STAGE in distmatrix guidetree decompose bucketalign merge; do
  D=$(stage_duration "$STAGE")
  [ -n "$D" ] || { echo "stage $STAGE missing from trace"; cat "$WORK/trace.json"; exit 1; }
  [ "$D" -gt 0 ] || { echo "stage $STAGE has non-positive duration ${D}ns"; exit 1; }
done
grep -q '"trace_id": "t' "$WORK/trace.json" || { echo "trace document has no trace id"; exit 1; }
TRACE_ID=$(curl -fsS "$BASE/v1/jobs/$ID" | json_field trace_id)
[ -n "$TRACE_ID" ] || { echo "job status carries no trace_id"; exit 1; }
echo "trace $TRACE_ID: all five stages present with positive durations"

echo "== cache: identical resubmission is served instantly =="
RESUBMIT=$(curl -fsS --data-binary @"$WORK/in.fa" "$BASE/v1/jobs?procs=3")
echo "$RESUBMIT" | grep -q '"cached": true' || { echo "resubmission missed the cache: $RESUBMIT"; exit 1; }
echo "$RESUBMIT" | grep -q '"state": "done"' || { echo "cached job not done: $RESUBMIT"; exit 1; }

echo "== sync endpoint =="
curl -fsS --data-binary @"$WORK/in.fa" "$BASE/v1/align?procs=3" -o "$WORK/sync.fa"
diff "$WORK/batch.fa" "$WORK/sync.fa"

echo "== metrics sanity =="
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^samplealign_cache_hits_total [1-9]' || { echo "no cache hits recorded"; exit 1; }
echo "$METRICS" | grep -q '^samplealign_jobs_completed_total' || { echo "no completion counter"; exit 1; }
echo "$METRICS" | grep -q '^samplealign_store_entries [1-9]' || { echo "result not persisted to the store"; exit 1; }
for STAGE in distmatrix guidetree decompose bucketalign merge; do
  echo "$METRICS" | grep -q "^samplealign_stage_seconds_count{stage=\"$STAGE\"} [1-9]" \
    || { echo "no samplealign_stage_seconds series for stage $STAGE"; exit 1; }
done
echo "$METRICS" | grep -q '^samplealign_comm_sent_bytes_total [0-9]' || { echo "no comm sent counter"; exit 1; }
echo "$METRICS" | grep -q '^samplealign_comm_recv_bytes_total [0-9]' || { echo "no comm recv counter"; exit 1; }

echo "== restart recovery: stop (SIGTERM drain), restart on the same data dir =="
kill -TERM $SRV
wait $SRV 2>/dev/null || true
"$WORK/samplealignsrv" -addr "127.0.0.1:$PORT" -p 3 -data-dir "$WORK/data" 2>"$WORK/srv2.log" &
SRV=$!
for _ in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null
grep -q 'journal recovery complete' "$WORK/srv2.log" || { echo "no recovery log line"; cat "$WORK/srv2.log"; exit 1; }
grep -q 'clean_shutdown=true' "$WORK/srv2.log" || { echo "shutdown was not journaled as clean"; cat "$WORK/srv2.log"; exit 1; }

echo "== pre-restart job is still visible; its result streams from disk =="
STATE2=$(curl -fsS "$BASE/v1/jobs/$ID" | json_field state)
[ "$STATE2" = done ] || { echo "recovered job state = $STATE2, want done"; exit 1; }
curl -fsS "$BASE/v1/jobs/$ID/result" -o "$WORK/recovered.fa"
diff "$WORK/batch.fa" "$WORK/recovered.fa"
echo "recovered result byte-identical to samplealign output"

echo "== persisted trace survives the restart =="
curl -fsS "$BASE/v1/jobs/$ID/trace" -o "$WORK/trace2.json"
for STAGE in distmatrix guidetree decompose bucketalign merge; do
  grep -q "\"name\": \"$STAGE\"" "$WORK/trace2.json" \
    || { echo "stage $STAGE missing from recovered trace"; cat "$WORK/trace2.json"; exit 1; }
done
diff "$WORK/trace.json" "$WORK/trace2.json" >/dev/null \
  || { echo "recovered trace differs from the original"; exit 1; }
echo "recovered trace byte-identical to the original"

echo "== identical resubmission after restart hits the disk store =="
RESUBMIT2=$(curl -fsS --data-binary @"$WORK/in.fa" "$BASE/v1/jobs?procs=3")
echo "$RESUBMIT2" | grep -q '"cached": true' || { echo "post-restart resubmission missed: $RESUBMIT2"; exit 1; }

echo "== metrics: zero alignments recomputed since restart =="
METRICS2=$(curl -fsS "$BASE/metrics")
echo "$METRICS2" | grep -q '^samplealign_cache_misses_total 0$' || { echo "restart recomputed an alignment"; echo "$METRICS2" | grep ^samplealign_cache; exit 1; }
echo "$METRICS2" | grep -q '^samplealign_results_streamed_total [1-9]' || { echo "recovered result was not streamed from disk"; exit 1; }
echo "$METRICS2" | grep -q '^samplealign_store_hits_total [1-9]' || { echo "resubmission did not hit the disk store"; exit 1; }

echo "server smoke OK"
