#!/usr/bin/env bash
# End-to-end smoke of the HTTP job service: start samplealignsrv,
# submit a small FASTA over HTTP, poll to completion, fetch the result
# and diff it byte-for-byte against the samplealign batch CLI on the
# same input and options. Also checks the content-addressed cache
# (identical resubmission answered instantly) and restart recovery:
# the server is stopped and restarted on the same data directory, and
# the pre-restart result must be served from disk — byte-identical,
# with zero alignments recomputed (asserted via /metrics). A batch pass
# POSTs two inputs (one already cached) to /v1/batch in a single
# request, checks the cached member is answered terminal immediately,
# diffs the fresh member against the batch CLI, and asserts the
# group-commit journal metrics (fsyncs, flushed records, group-size
# histogram) are live. Observability
# is smoked end-to-end too: the job's span tree at /v1/jobs/{id}/trace
# must cover all five pipeline stages with positive durations, the same
# stages must show up as samplealign_stage_seconds histograms on
# /metrics, the live SSE progress stream at /v1/jobs/{id}/events must
# deliver stage and terminal events, and the persisted trace must
# survive the restart. A final cluster-mode pass (3 samplealignd
# workers + coordinator, p=4) asserts the distributed trace covers
# every rank, the output stays byte-identical to the batch CLI, live
# events flow during the cluster run, and a worker's -metrics-addr
# listener serves its rank-local histograms.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=${WORK:-$(mktemp -d)}
PORT=${PORT:-18080}
BASE="http://127.0.0.1:$PORT"

echo "== build =="
go build -o "$WORK/" ./cmd/samplealign ./cmd/samplealignsrv ./cmd/samplealignd ./cmd/seqgen

echo "== input + batch reference =="
"$WORK/seqgen" -kind family -n 80 -len 100 -out "$WORK/in.fa"
"$WORK/samplealign" -in "$WORK/in.fa" -p 3 -out "$WORK/batch.fa"

echo "== start server =="
"$WORK/samplealignsrv" -addr "127.0.0.1:$PORT" -p 3 -data-dir "$WORK/data" 2>"$WORK/srv.log" &
SRV=$!
trap 'kill $SRV 2>/dev/null || true; wait $SRV 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

json_field() { # json_field <field> — first string value of "field"
  sed -n "s/.*\"$1\": *\"\([^\"]*\)\".*/\1/p" | head -1
}

echo "== submit =="
SUBMIT=$(curl -fsS --data-binary @"$WORK/in.fa" "$BASE/v1/jobs?procs=3")
ID=$(echo "$SUBMIT" | json_field id)
[ -n "$ID" ] || { echo "no job id in: $SUBMIT"; exit 1; }
echo "job $ID"

# Subscribe to the live event stream while the job runs; the stream
# replays history and ends itself on the job's terminal event.
curl -sN --max-time 30 "$BASE/v1/jobs/$ID/events" >"$WORK/events.txt" &
SSE=$!

echo "== poll =="
for _ in $(seq 1 600); do
  STATE=$(curl -fsS "$BASE/v1/jobs/$ID" | json_field state)
  case "$STATE" in
    done) break ;;
    failed|canceled) echo "job ended $STATE"; curl -fsS "$BASE/v1/jobs/$ID"; exit 1 ;;
    *) sleep 0.1 ;;
  esac
done
[ "$STATE" = done ] || { echo "job stuck in $STATE"; exit 1; }

echo "== fetch + diff against batch CLI =="
curl -fsS "$BASE/v1/jobs/$ID/result" -o "$WORK/http.fa"
diff "$WORK/batch.fa" "$WORK/http.fa"
echo "byte-identical to samplealign output"

echo "== live events: SSE stream carried the job to its terminal state =="
wait $SSE || true
grep -q '^event: stage' "$WORK/events.txt" || { echo "no stage event on the stream"; cat "$WORK/events.txt"; exit 1; }
grep -q '^event: rank' "$WORK/events.txt" || { echo "no rank event on the stream"; cat "$WORK/events.txt"; exit 1; }
grep -q '^event: done' "$WORK/events.txt" || { echo "no terminal event on the stream"; cat "$WORK/events.txt"; exit 1; }
grep -q "\"job\":\"$ID\"" "$WORK/events.txt" || { echo "stream events not tagged with job id"; exit 1; }
echo "SSE stream delivered stage, rank and terminal events"

echo "== trace: span tree covers every pipeline stage =="
curl -fsS "$BASE/v1/jobs/$ID/trace" -o "$WORK/trace.json"
stage_duration() { # stage_duration <stage> — first duration_ns of the named span
  grep -A2 "\"name\": \"$1\"" "$WORK/trace.json" | sed -n 's/.*"duration_ns": \([0-9]*\).*/\1/p' | head -1
}
for STAGE in distmatrix guidetree decompose bucketalign merge; do
  D=$(stage_duration "$STAGE")
  [ -n "$D" ] || { echo "stage $STAGE missing from trace"; cat "$WORK/trace.json"; exit 1; }
  [ "$D" -gt 0 ] || { echo "stage $STAGE has non-positive duration ${D}ns"; exit 1; }
done
grep -q '"trace_id": "t' "$WORK/trace.json" || { echo "trace document has no trace id"; exit 1; }
TRACE_ID=$(curl -fsS "$BASE/v1/jobs/$ID" | json_field trace_id)
[ -n "$TRACE_ID" ] || { echo "job status carries no trace_id"; exit 1; }
echo "trace $TRACE_ID: all five stages present with positive durations"

echo "== cache: identical resubmission is served instantly =="
RESUBMIT=$(curl -fsS --data-binary @"$WORK/in.fa" "$BASE/v1/jobs?procs=3")
echo "$RESUBMIT" | grep -q '"cached": true' || { echo "resubmission missed the cache: $RESUBMIT"; exit 1; }
echo "$RESUBMIT" | grep -q '"state": "done"' || { echo "cached job not done: $RESUBMIT"; exit 1; }

echo "== sync endpoint =="
curl -fsS --data-binary @"$WORK/in.fa" "$BASE/v1/align?procs=3" -o "$WORK/sync.fa"
diff "$WORK/batch.fa" "$WORK/sync.fa"

echo "== batch endpoint: many inputs in one request =="
# Two inputs: in.fa is already cached (a batch member may be served
# terminal straight from the cache) and in2.fa is fresh work. Both ride
# one POST and their submit records ride one journal commit group.
"$WORK/seqgen" -kind family -n 40 -len 80 -seed 7 -out "$WORK/in2.fa"
"$WORK/samplealign" -in "$WORK/in2.fa" -p 3 -out "$WORK/batch2.fa"
python3 - "$WORK/in.fa" "$WORK/in2.fa" >"$WORK/batchreq.json" <<'PY'
import json, sys
inputs = [{"fasta": open(p).read()} for p in sys.argv[1:]]
json.dump({"inputs": inputs}, sys.stdout)
PY
BATCH=$(curl -fsS -H 'Content-Type: application/json' \
  --data-binary @"$WORK/batchreq.json" "$BASE/v1/batch?procs=3")
mapfile -t BIDS < <(echo "$BATCH" | grep -o '"id": *"[^"]*"' | sed 's/.*"\(j[^"]*\)"/\1/')
[ "${#BIDS[@]}" -eq 2 ] || { echo "batch returned ${#BIDS[@]} job ids, want 2: $BATCH"; exit 1; }
echo "$BATCH" | grep -q '"cached": true' || { echo "cached member not served from cache: $BATCH"; exit 1; }
for _ in $(seq 1 600); do
  BSTATE=$(curl -fsS "$BASE/v1/jobs/${BIDS[1]}" | json_field state)
  case "$BSTATE" in
    done) break ;;
    failed|canceled) echo "batch member ended $BSTATE"; curl -fsS "$BASE/v1/jobs/${BIDS[1]}"; exit 1 ;;
    *) sleep 0.1 ;;
  esac
done
[ "$BSTATE" = done ] || { echo "batch member stuck in $BSTATE"; exit 1; }
curl -fsS "$BASE/v1/jobs/${BIDS[1]}/result" -o "$WORK/batchout.fa"
diff "$WORK/batch2.fa" "$WORK/batchout.fa"
echo "batch member byte-identical to samplealign output"

echo "== metrics sanity =="
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^samplealign_cache_hits_total [1-9]' || { echo "no cache hits recorded"; exit 1; }
echo "$METRICS" | grep -q '^samplealign_jobs_completed_total' || { echo "no completion counter"; exit 1; }
echo "$METRICS" | grep -q '^samplealign_store_entries [1-9]' || { echo "result not persisted to the store"; exit 1; }
for STAGE in distmatrix guidetree decompose bucketalign merge; do
  echo "$METRICS" | grep -q "^samplealign_stage_seconds_count{stage=\"$STAGE\"} [1-9]" \
    || { echo "no samplealign_stage_seconds series for stage $STAGE"; exit 1; }
done
echo "$METRICS" | grep -q '^samplealign_comm_sent_bytes_total [0-9]' || { echo "no comm sent counter"; exit 1; }
echo "$METRICS" | grep -q '^samplealign_comm_recv_bytes_total [0-9]' || { echo "no comm recv counter"; exit 1; }
echo "$METRICS" | grep -q '^samplealign_batch_requests_total [1-9]' || { echo "no batch request counter"; exit 1; }
echo "$METRICS" | grep -q '^samplealign_batch_jobs_total [2-9]' || { echo "batch jobs not counted"; exit 1; }
echo "$METRICS" | grep -q '^samplealign_journal_fsyncs_total [1-9]' || { echo "no journal fsync counter"; exit 1; }
echo "$METRICS" | grep -q '^samplealign_journal_flushed_records_total [1-9]' || { echo "no journal flushed-records counter"; exit 1; }
echo "$METRICS" | grep -q '^samplealign_journal_group_records_bucket' || { echo "no journal group-size histogram"; exit 1; }

echo "== restart recovery: stop (SIGTERM drain), restart on the same data dir =="
kill -TERM $SRV
wait $SRV 2>/dev/null || true
"$WORK/samplealignsrv" -addr "127.0.0.1:$PORT" -p 3 -data-dir "$WORK/data" 2>"$WORK/srv2.log" &
SRV=$!
for _ in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null
grep -q 'journal recovery complete' "$WORK/srv2.log" || { echo "no recovery log line"; cat "$WORK/srv2.log"; exit 1; }
grep -q 'clean_shutdown=true' "$WORK/srv2.log" || { echo "shutdown was not journaled as clean"; cat "$WORK/srv2.log"; exit 1; }

echo "== pre-restart job is still visible; its result streams from disk =="
STATE2=$(curl -fsS "$BASE/v1/jobs/$ID" | json_field state)
[ "$STATE2" = done ] || { echo "recovered job state = $STATE2, want done"; exit 1; }
curl -fsS "$BASE/v1/jobs/$ID/result" -o "$WORK/recovered.fa"
diff "$WORK/batch.fa" "$WORK/recovered.fa"
echo "recovered result byte-identical to samplealign output"

echo "== persisted trace survives the restart =="
curl -fsS "$BASE/v1/jobs/$ID/trace" -o "$WORK/trace2.json"
for STAGE in distmatrix guidetree decompose bucketalign merge; do
  grep -q "\"name\": \"$STAGE\"" "$WORK/trace2.json" \
    || { echo "stage $STAGE missing from recovered trace"; cat "$WORK/trace2.json"; exit 1; }
done
diff "$WORK/trace.json" "$WORK/trace2.json" >/dev/null \
  || { echo "recovered trace differs from the original"; exit 1; }
echo "recovered trace byte-identical to the original"

echo "== identical resubmission after restart hits the disk store =="
RESUBMIT2=$(curl -fsS --data-binary @"$WORK/in.fa" "$BASE/v1/jobs?procs=3")
echo "$RESUBMIT2" | grep -q '"cached": true' || { echo "post-restart resubmission missed: $RESUBMIT2"; exit 1; }

echo "== metrics: zero alignments recomputed since restart =="
METRICS2=$(curl -fsS "$BASE/metrics")
echo "$METRICS2" | grep -q '^samplealign_cache_misses_total 0$' || { echo "restart recomputed an alignment"; echo "$METRICS2" | grep ^samplealign_cache; exit 1; }
echo "$METRICS2" | grep -q '^samplealign_results_streamed_total [1-9]' || { echo "recovered result was not streamed from disk"; exit 1; }
echo "$METRICS2" | grep -q '^samplealign_store_hits_total [1-9]' || { echo "resubmission did not hit the disk store"; exit 1; }

echo "== cluster mode: 3 workers + coordinator (p=4) =="
"$WORK/samplealign" -in "$WORK/in.fa" -p 4 -out "$WORK/batch4.fa"
PORT2=$((PORT + 1))
BASE2="http://127.0.0.1:$PORT2"
WM_PORT=$((PORT + 9))
PIDS="$SRV"
trap 'kill $PIDS 2>/dev/null || true; wait 2>/dev/null || true' EXIT
CTRLS=""
for i in 1 2 3; do
  METRICS_FLAG=""
  [ "$i" = 1 ] && METRICS_FLAG="-metrics-addr 127.0.0.1:$WM_PORT"
  # shellcheck disable=SC2086  # METRICS_FLAG is two words on purpose
  "$WORK/samplealignd" -worker-ctrl "127.0.0.1:$((PORT + 10 + i))" \
    -worker-mesh "127.0.0.1:$((PORT + 20 + i))" $METRICS_FLAG 2>"$WORK/worker$i.log" &
  PIDS="$PIDS $!"
  CTRLS="$CTRLS,127.0.0.1:$((PORT + 10 + i))"
done
"$WORK/samplealignsrv" -addr "127.0.0.1:$PORT2" -cluster "${CTRLS#,}" \
  -cluster-self "127.0.0.1:$((PORT + 20))" 2>"$WORK/srv-cluster.log" &
PIDS="$PIDS $!"
for _ in $(seq 1 100); do
  curl -fsS "$BASE2/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$BASE2/healthz" >/dev/null

CSUBMIT=$(curl -fsS --data-binary @"$WORK/in.fa" "$BASE2/v1/jobs")
CID=$(echo "$CSUBMIT" | json_field id)
[ -n "$CID" ] || { echo "no cluster job id in: $CSUBMIT"; exit 1; }
echo "cluster job $CID"
curl -sN --max-time 60 "$BASE2/v1/jobs/$CID/events" >"$WORK/cevents.txt" &
CSSE=$!
for _ in $(seq 1 600); do
  CSTATE=$(curl -fsS "$BASE2/v1/jobs/$CID" | json_field state)
  case "$CSTATE" in
    done) break ;;
    failed | canceled)
      echo "cluster job ended $CSTATE"
      curl -fsS "$BASE2/v1/jobs/$CID"
      cat "$WORK/srv-cluster.log"
      exit 1
      ;;
    *) sleep 0.1 ;;
  esac
done
[ "$CSTATE" = done ] || { echo "cluster job stuck in $CSTATE"; exit 1; }
curl -fsS "$BASE2/v1/jobs/$CID/result" -o "$WORK/cluster.fa"
diff "$WORK/batch4.fa" "$WORK/cluster.fa"
echo "cluster output byte-identical to p=4 batch CLI"

echo "== cluster live events =="
wait $CSSE || true
grep -q '^event: stage' "$WORK/cevents.txt" || { echo "no stage event on the cluster stream"; cat "$WORK/cevents.txt"; exit 1; }
grep -q '^event: done' "$WORK/cevents.txt" || { echo "no terminal event on the cluster stream"; cat "$WORK/cevents.txt"; exit 1; }
grep -q "\"job\":\"$CID\"" "$WORK/cevents.txt" || { echo "cluster stream events not tagged with job id"; exit 1; }
echo "live SSE events captured during the cluster run"

echo "== distributed trace covers every rank =="
curl -fsS "$BASE2/v1/jobs/$CID/trace" -o "$WORK/ctrace.json"
for R in 0 1 2 3; do
  grep -A1 '"key": "rank"' "$WORK/ctrace.json" | grep -q "\"value\": \"$R\"" \
    || { echo "rank $R missing from the cluster trace"; exit 1; }
done
NWORKERS=$(grep -c '"name": "worker"' "$WORK/ctrace.json")
[ "$NWORKERS" -eq 3 ] || { echo "cluster trace has $NWORKERS worker spans, want 3"; exit 1; }
for STAGE in decompose bucketalign merge; do
  N=$(grep -c "\"name\": \"$STAGE\"" "$WORK/ctrace.json")
  [ "$N" -eq 4 ] || { echo "stage $STAGE appears $N times in the cluster trace, want one per rank"; exit 1; }
done
echo "one span tree over all 4 ranks (3 grafted worker subtrees)"

echo "== worker -metrics-addr listener =="
WMETRICS=$(curl -fsS "http://127.0.0.1:$WM_PORT/metrics")
echo "$WMETRICS" | grep -q '^samplealign_worker_jobs_total [1-9]' || { echo "worker served no jobs per its own metrics"; exit 1; }
echo "$WMETRICS" | grep -q '^samplealign_stage_seconds_count{stage="bucketalign"} [1-9]' \
  || { echo "no rank-local stage histogram on the worker"; exit 1; }
echo "$WMETRICS" | grep -q '^samplealign_kernel_striped_calls_total [0-9]' || { echo "no kernel tally on the worker"; exit 1; }
echo "worker exposes rank-local stage histograms and kernel tallies"

echo "server smoke OK"
