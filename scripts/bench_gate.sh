#!/usr/bin/env bash
# Bench regression gate: picks the two highest-numbered BENCH_<PR>.json
# perf-trajectory files in the repo root and runs cmd/benchgate on
# them, failing on >10% ns/op regressions in shared micro-benchmarks
# and on a profile-PSP kernel speedup below 2x. With a single file the
# ns/op diff is vacuous and only the kernel-speedup floor applies;
# files recorded on hosts with different core counts skip the ns/op
# diff with a warning (ratios within one file still hold).
#
#   bash scripts/bench_gate.sh
#
# Environment knobs (forwarded to benchgate):
#   MAX_REGRESS        percent ns/op growth tolerated (default 10)
#   MIN_PSP_SPEEDUP    ProfilePSP striped-vs-scalar floor (default 2.0)
#   MAX_JOURNAL_FSYNCS journal fsyncs-per-record ceiling at
#                      concurrency >= 8 (default 1.0: concurrent
#                      appends must share commit groups)
set -euo pipefail
cd "$(dirname "$0")/.."

mapfile -t files < <(
  for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    n=${f#BENCH_}
    n=${n%.json}
    case $n in (*[!0-9]*) continue ;; esac
    printf '%d %s\n' "$n" "$f"
  done | sort -n | awk '{print $2}'
)

if [ "${#files[@]}" -eq 0 ]; then
  echo "bench_gate: no BENCH_<PR>.json files found — run scripts/bench.sh first" >&2
  exit 1
fi

args=("${files[@]: -2}") # the two newest (or one, if only one exists)
echo "bench_gate: gating on ${args[*]}"
go run ./cmd/benchgate \
  -max-regress "${MAX_REGRESS:-10}" \
  -min-psp-speedup "${MIN_PSP_SPEEDUP:-2.0}" \
  -max-journal-fsyncs "${MAX_JOURNAL_FSYNCS:-1.0}" \
  "${args[@]}"
