#!/usr/bin/env bash
# Perf trajectory for the PR series: runs the real msabench experiments
# (machine-readable -json) plus the guide-tree construction
# micro-benchmarks (BenchmarkDistanceMatrixTiled, the tiled O(N²)
# distance matrix at N=2000, and BenchmarkGuideTreeWorkers, UPGMA/NJ at
# worker counts 1..8) and the DP-kernel micro-benchmarks
# (BenchmarkProfilePSP and BenchmarkPairwiseGlobal, scalar vs striped)
# and merges everything into one BENCH_<PR>.json.
# CI uploads the file as an artifact; diff the files across PRs to see
# the trajectory.
#
#   bash scripts/bench.sh [out.json]       # default out: BENCH_10.json
#
# Environment knobs:
#   BENCHTIME        go test -benchtime for the guide-tree micro-benchmarks
#                    (default 3x; each iteration is a full N=2000 matrix)
#   KERNEL_BENCHTIME -benchtime for the DP-kernel micro-benchmarks
#                    (default 300ms; time-based, because the scalar/striped
#                    ratio at a handful of iterations is warmup noise)
#   JOURNAL_BENCHTIME -benchtime for the journal group-commit benchmark
#                    (default 500ms; each op is a real fsync)
#   COUNT            -count: samples per benchmark; the JSON records the
#                    minimum ns/op across samples, the standard
#                    noise-robust statistic for shared hosts (default 3)
#   MSABENCH_EXP     msabench experiment set for the real runs (default fig4)
#
# The "journal_fsyncs_per_record" section records the group-commit
# benchmark's fsyncs/rec custom metric per concurrency level (worst
# sample across -count runs): conc=1 must stay 1.0 (every solo Append
# still fsyncs before returning) and conc=8 must drop below 1.0 —
# concurrent appenders sharing commit groups is the whole point.
#
# The "speedup" section divides each family's workers=1 ns/op by every
# other worker count's — on a host with >= 4 cores the distance-matrix
# and guide-tree families should show >= 2x at workers=4; on fewer
# cores the ratio saturates at the core count (a 1-core container
# reports ~1.0x). The "kernel_speedup" section divides each family's
# kernel=scalar ns/op by kernel=striped — single-thread, so >= 2x is
# expected on the profile-PSP family even on a 1-core host.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_10.json}
BENCHTIME=${BENCHTIME:-3x}
KERNEL_BENCHTIME=${KERNEL_BENCHTIME:-300ms}
JOURNAL_BENCHTIME=${JOURNAL_BENCHTIME:-500ms}
COUNT=${COUNT:-3}
MSABENCH_EXP=${MSABENCH_EXP:-fig4}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== real distributed runs (msabench -exp $MSABENCH_EXP -quick) =="
go run ./cmd/msabench -exp "$MSABENCH_EXP" -quick -json "$tmp/msabench.json"

echo "== guide-tree construction benchmarks (benchtime $BENCHTIME) =="
go test -run '^$' -bench 'BenchmarkDistanceMatrixTiled|BenchmarkGuideTreeWorkers' \
  -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$tmp/gobench.txt"

echo "== DP-kernel benchmarks (benchtime $KERNEL_BENCHTIME) =="
go test -run '^$' -bench 'BenchmarkProfilePSP|BenchmarkPairwiseGlobal' \
  -benchtime "$KERNEL_BENCHTIME" -count "$COUNT" . | tee -a "$tmp/gobench.txt"

echo "== journal group-commit benchmark (benchtime $JOURNAL_BENCHTIME) =="
go test -run '^$' -bench 'BenchmarkJournalAppendParallel' \
  -benchtime "$JOURNAL_BENCHTIME" -count "$COUNT" ./internal/store | tee -a "$tmp/gobench.txt"

CORES=$(nproc) GOVER=$(go version) \
python3 - "$tmp/msabench.json" "$tmp/gobench.txt" "$OUT" <<'PY'
import json, os, re, sys

msabench_path, gobench_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]

with open(msabench_path) as f:
    msabench = json.load(f)

# "BenchmarkFoo/sub-8   12   3456 ns/op   78 B/op   9 allocs/op"
# (the -8 GOMAXPROCS suffix is omitted when GOMAXPROCS is 1)
line_re = re.compile(
    r"^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op"
    r"(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?")
# -count > 1 repeats every benchmark; keep the fastest sample per name
# (min ns/op — robust against transient load on shared hosts) and the
# full sample list, so the regression gate can judge each benchmark's
# own noise floor before holding it to a percentage threshold.
best = {}
order = []
with open(gobench_path) as f:
    for line in f:
        m = line_re.match(line)
        if not m:
            continue
        name, iters, ns, bpo, allocs = m.groups()
        rec = {
            "name": name,
            "iterations": int(iters),
            "ns_per_op": float(ns),
            "b_per_op": float(bpo) if bpo else None,
            "allocs_per_op": int(allocs) if allocs else None,
            "samples": 1,
            "ns_samples": [float(ns)],
        }
        if name not in best:
            best[name] = rec
            order.append(name)
        else:
            prev = best[name]
            rec["samples"] = prev["samples"] + 1
            rec["ns_samples"] = prev["ns_samples"] + [rec["ns_per_op"]]
            if rec["ns_per_op"] > prev["ns_per_op"]:
                rec.update({k: prev[k] for k in
                            ("iterations", "ns_per_op", "b_per_op", "allocs_per_op")})
            best[name] = rec
gobench = [best[n] for n in order]

# Speedup of each workers=N variant against its family's workers=1.
families = {}
for b in gobench:
    m = re.match(r"(.*)/workers=(\d+)$", b["name"])
    if m:
        families.setdefault(m.group(1), {})[int(m.group(2))] = b["ns_per_op"]
speedup = {}
for fam, by_workers in sorted(families.items()):
    base = by_workers.get(1)
    if not base:
        continue
    speedup[fam] = {
        f"workers={w}": round(base / ns, 3)
        for w, ns in sorted(by_workers.items()) if w != 1 and ns > 0
    }

# Speedup of each kernel=striped variant against its family's
# kernel=scalar (single-thread; core count does not matter).
kern_families = {}
for b in gobench:
    m = re.match(r"(.*)/kernel=(scalar|striped)$", b["name"])
    if m:
        kern_families.setdefault(m.group(1), {})[m.group(2)] = b["ns_per_op"]
kernel_speedup = {}
for fam, by_kern in sorted(kern_families.items()):
    base, striped = by_kern.get("scalar"), by_kern.get("striped")
    if base and striped:
        kernel_speedup[fam] = round(base / striped, 3)

# Journal group-commit efficiency: the fsyncs/rec custom metric per
# concurrency level. Keep the WORST (max) sample per level — the gate
# enforces an upper bound, so the pessimistic sample is the honest one.
fsync_re = re.compile(
    r"^BenchmarkJournalAppendParallel/conc=(\d+)(?:-\d+)?\s.*?\s([\d.]+) fsyncs/rec")
journal_fsyncs = {}
with open(gobench_path) as f:
    for line in f:
        m = fsync_re.match(line)
        if not m:
            continue
        key, val = f"conc={m.group(1)}", float(m.group(2))
        journal_fsyncs[key] = max(val, journal_fsyncs.get(key, 0.0))

out = {
    "pr": 10,
    "generated_by": "scripts/bench.sh",
    "host": {"cores": int(os.environ.get("CORES", "0")),
             "go": os.environ.get("GOVER", "")},
    "msabench": msabench,
    "gobench": gobench,
    "speedup": speedup,
    "kernel_speedup": kernel_speedup,
    "journal_fsyncs_per_record": journal_fsyncs,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}: {len(msabench)} real runs, "
      f"{len(gobench)} micro-benchmarks, {len(speedup)} speedup families, "
      f"{len(kernel_speedup)} kernel-speedup families, "
      f"{len(journal_fsyncs)} journal fsync levels")
PY
