#!/usr/bin/env bash
# Perf trajectory for the PR series: runs the real msabench experiments
# (machine-readable -json) plus the guide-tree construction
# micro-benchmarks (BenchmarkDistanceMatrixTiled, the tiled O(N²)
# distance matrix at N=2000, and BenchmarkGuideTreeWorkers, UPGMA/NJ at
# worker counts 1..8) and merges everything into one BENCH_<PR>.json.
# CI uploads the file as an artifact; diff the files across PRs to see
# the trajectory.
#
#   bash scripts/bench.sh [out.json]       # default out: BENCH_5.json
#
# Environment knobs:
#   BENCHTIME     go test -benchtime for the micro-benchmarks (default 3x)
#   MSABENCH_EXP  msabench experiment set for the real runs (default fig4)
#
# The "speedup" section divides each family's workers=1 ns/op by every
# other worker count's — on a host with >= 4 cores the distance-matrix
# and guide-tree families should show >= 2x at workers=4; on fewer
# cores the ratio saturates at the core count (a 1-core container
# reports ~1.0x).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_5.json}
BENCHTIME=${BENCHTIME:-3x}
MSABENCH_EXP=${MSABENCH_EXP:-fig4}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== real distributed runs (msabench -exp $MSABENCH_EXP -quick) =="
go run ./cmd/msabench -exp "$MSABENCH_EXP" -quick -json "$tmp/msabench.json"

echo "== guide-tree construction benchmarks (benchtime $BENCHTIME) =="
go test -run '^$' -bench 'BenchmarkDistanceMatrixTiled|BenchmarkGuideTreeWorkers' \
  -benchtime "$BENCHTIME" -count 1 . | tee "$tmp/gobench.txt"

CORES=$(nproc) GOVER=$(go version) \
python3 - "$tmp/msabench.json" "$tmp/gobench.txt" "$OUT" <<'PY'
import json, os, re, sys

msabench_path, gobench_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]

with open(msabench_path) as f:
    msabench = json.load(f)

# "BenchmarkFoo/sub-8   12   3456 ns/op   78 B/op   9 allocs/op"
# (the -8 GOMAXPROCS suffix is omitted when GOMAXPROCS is 1)
line_re = re.compile(
    r"^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op"
    r"(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?")
gobench = []
with open(gobench_path) as f:
    for line in f:
        m = line_re.match(line)
        if not m:
            continue
        name, iters, ns, bpo, allocs = m.groups()
        gobench.append({
            "name": name,
            "iterations": int(iters),
            "ns_per_op": float(ns),
            "b_per_op": float(bpo) if bpo else None,
            "allocs_per_op": int(allocs) if allocs else None,
        })

# Speedup of each workers=N variant against its family's workers=1.
families = {}
for b in gobench:
    m = re.match(r"(.*)/workers=(\d+)$", b["name"])
    if m:
        families.setdefault(m.group(1), {})[int(m.group(2))] = b["ns_per_op"]
speedup = {}
for fam, by_workers in sorted(families.items()):
    base = by_workers.get(1)
    if not base:
        continue
    speedup[fam] = {
        f"workers={w}": round(base / ns, 3)
        for w, ns in sorted(by_workers.items()) if w != 1 and ns > 0
    }

out = {
    "pr": 5,
    "generated_by": "scripts/bench.sh",
    "host": {"cores": int(os.environ.get("CORES", "0")),
             "go": os.environ.get("GOVER", "")},
    "msabench": msabench,
    "gobench": gobench,
    "speedup": speedup,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}: {len(msabench)} real runs, "
      f"{len(gobench)} micro-benchmarks, {len(speedup)} speedup families")
PY
