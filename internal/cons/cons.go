// Package cons implements a T-Coffee-like consistency-based multiple
// aligner (Notredame, Higgins & Heringa 2000) for the paper's Table 2
// baseline: a library of weighted residue pairs is built from all global
// pairwise alignments, extended through third sequences (the consistency
// transform), and a progressive alignment then maximises library support
// instead of raw substitution scores.
//
// Consistency methods are accurate but expensive — O(N³·L) extension and
// a library of O(N²·L) pairs — which is exactly why T-Coffee "is reported
// to not able to handle more than 10² sequences" in the paper. Use on
// PREFAB-sized sets.
package cons

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/bio"
	"repro/internal/dp"
	"repro/internal/dpkern"
	"repro/internal/kmer"
	"repro/internal/msa"
	"repro/internal/obs"
	"repro/internal/pairwise"
	"repro/internal/par"
	"repro/internal/submat"
	"repro/internal/tree"
)

// Options configures the consistency aligner.
type Options struct {
	Sub     *submat.Matrix
	Gap     submat.Gap
	Extend  bool // apply the triplet consistency transform (default on via New)
	Workers int
	Kernel  dpkern.Kernel // DP kernel for the pairwise library build; byte-identical output
	// MaxSequences guards against accidental O(N³) blowups (default 200,
	// mirroring T-Coffee's practical limit the paper cites).
	MaxSequences int
}

// Aligner is the consistency-based aligner.
type Aligner struct {
	opts Options
}

// New returns a T-Coffee-like aligner with library extension enabled.
func New(workers int) *Aligner {
	return NewWithOptions(Options{Extend: true, Workers: workers})
}

// NewWithOptions builds an aligner with explicit options.
func NewWithOptions(opts Options) *Aligner {
	if opts.Sub == nil {
		opts.Sub = submat.BLOSUM62
	}
	if opts.Gap == (submat.Gap{}) {
		opts.Gap = submat.DefaultProteinGap
	}
	if opts.MaxSequences <= 0 {
		opts.MaxSequences = 200
	}
	return &Aligner{opts: opts}
}

// Name identifies the aligner.
func (a *Aligner) Name() string { return "tcoffee-like" }

// SetKernel selects the DP kernel for the pairwise library build. The
// consistency merge DP itself scores library support, not substitution
// scores, and always runs in float64.
func (a *Aligner) SetKernel(k dpkern.Kernel) { a.opts.Kernel = k }

// pairKey identifies an ordered residue pair between two sequences.
type pairKey struct {
	posI, posJ int32
}

// library holds, for every sequence pair (i<j), the weighted residue
// pairs supporting their alignment.
type library struct {
	n     int
	pairs []map[pairKey]float64 // indexed by pairIdx(i,j)
}

func newLibrary(n int) *library {
	return &library{n: n, pairs: make([]map[pairKey]float64, n*(n-1)/2)}
}

func (l *library) idx(i, j int) int {
	// caller guarantees i < j
	return i*(2*l.n-i-1)/2 + (j - i - 1)
}

func (l *library) get(i, j int) map[pairKey]float64 {
	if m := l.pairs[l.idx(i, j)]; m != nil {
		return m
	}
	m := map[pairKey]float64{}
	l.pairs[l.idx(i, j)] = m
	return m
}

// weight looks up the library weight of residue a of sequence i aligned
// to residue b of sequence j (any order).
func (l *library) weight(i int, a int, j int, b int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j, a, b = j, i, b, a
	}
	m := l.pairs[l.idx(i, j)]
	if m == nil {
		return 0
	}
	return m[pairKey{int32(a), int32(b)}]
}

// Align runs the full consistency pipeline.
func (a *Aligner) Align(seqs []bio.Sequence) (*msa.Alignment, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return a.AlignContext(context.Background(), seqs)
}

// AlignContext runs the full consistency pipeline under a context:
// cancellation is observed between the expensive phases (library build,
// consistency extension) and per guide-tree merge.
func (a *Aligner) AlignContext(ctx context.Context, seqs []bio.Sequence) (*msa.Alignment, error) {
	switch len(seqs) {
	case 0:
		return &msa.Alignment{}, nil
	case 1:
		return &msa.Alignment{Seqs: bio.CloneAll(seqs)}, nil
	}
	if len(seqs) > a.opts.MaxSequences {
		return nil, fmt.Errorf("cons: %d sequences exceed the consistency limit %d",
			len(seqs), a.opts.MaxSequences)
	}
	clean := make([][]byte, len(seqs))
	for i := range seqs {
		clean[i] = bio.Ungap(seqs[i].Data)
		if len(clean[i]) == 0 {
			return nil, fmt.Errorf("cons: sequence %q is empty", seqs[i].ID)
		}
	}

	// The pairwise library build doubles as the distance-matrix pass in
	// this engine (it returns 1-identity distances for the guide tree),
	// so the span carries both roles.
	_, lsp := obs.Start(ctx, "library")
	lsp.SetInt("n", int64(len(seqs)))
	lsp.SetInt("workers", int64(a.opts.Workers))
	lsp.SetBool("extend", a.opts.Extend)
	lib, dist := a.buildLibrary(clean)
	if err := ctx.Err(); err != nil {
		lsp.End()
		return nil, err
	}
	if a.opts.Extend {
		lib = a.extendLibrary(lib, clean)
	}
	lsp.End()
	_, gsp := obs.Start(ctx, "guidetree")
	gsp.SetStr("method", "nj")
	gsp.SetInt("n", int64(len(seqs)))
	gsp.SetInt("workers", int64(a.opts.Workers))
	gt := tree.NeighborJoiningWorkers(dist, bio.IDs(seqs), a.opts.Workers)
	gsp.End()
	rows, ids, err := a.progressive(ctx, clean, gt, lib)
	if err != nil {
		return nil, err
	}
	aln := &msa.Alignment{Seqs: make([]bio.Sequence, len(seqs))}
	for k, idx := range ids {
		aln.Seqs[idx] = bio.Sequence{ID: seqs[idx].ID, Desc: seqs[idx].Desc, Data: rows[k]}
	}
	aln.RemoveAllGapColumns()
	return aln, nil
}

// buildLibrary computes all global pairwise alignments; every aligned
// residue pair enters the library weighted by the alignment's fractional
// identity (T-Coffee's sequence weighting). Also returns the distance
// matrix (1 − identity) for the guide tree.
func (a *Aligner) buildLibrary(seqs [][]byte) (*library, *kmer.Matrix) {
	n := len(seqs)
	lib := newLibrary(n)
	dist := kmer.NewMatrix(n)
	pw := pairwise.Aligner{Sub: a.opts.Sub, Gap: a.opts.Gap, Kernel: a.opts.Kernel}

	type pairResult struct {
		i, j int
		id   float64
		keys []pairKey
	}
	var pairs [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	results := par.Map(len(pairs), a.opts.Workers, func(k int) pairResult {
		i, j := pairs[k][0], pairs[k][1]
		r := pw.Global(seqs[i], seqs[j])
		id := pairwise.Identity(r.A, r.B)
		var keys []pairKey
		pi, pj := 0, 0
		for c := range r.A {
			gi, gj := r.A[c] == bio.Gap, r.B[c] == bio.Gap
			if !gi && !gj {
				keys = append(keys, pairKey{int32(pi), int32(pj)})
			}
			if !gi {
				pi++
			}
			if !gj {
				pj++
			}
		}
		return pairResult{i: i, j: j, id: id, keys: keys}
	})
	for _, r := range results {
		dist.Set(r.i, r.j, 1-r.id)
		m := lib.get(r.i, r.j)
		w := r.id
		if w <= 0 {
			w = 0.01 // unrelated pairs still contribute minimal support
		}
		for _, k := range r.keys {
			m[k] += w
		}
	}
	return lib, dist
}

// extendLibrary applies the triplet consistency transform: the support
// for (i,a)↔(j,b) grows by min(w(i,a,k,c), w(k,c,j,b)) summed over all
// third sequences k that align both to the same residue c.
func (a *Aligner) extendLibrary(lib *library, seqs [][]byte) *library {
	n := len(seqs)
	out := newLibrary(n)
	// adjacency: for pair (x,k), map residue of x → (residue of k, w)
	type edge struct {
		to int32
		w  float64
	}
	adj := make([][]map[int32][]edge, n)
	for x := 0; x < n; x++ {
		adj[x] = make([]map[int32][]edge, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := lib.pairs[lib.idx(i, j)]
			if m == nil {
				continue
			}
			// Build the adjacency from sorted keys, not map order:
			// the extension below accumulates min-weights in edge-list
			// order, and float rounding makes that order visible in the
			// support values across runs.
			keys := make([]pairKey, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool {
				if keys[a].posI != keys[b].posI {
					return keys[a].posI < keys[b].posI
				}
				return keys[a].posJ < keys[b].posJ
			})
			fwd := map[int32][]edge{}
			rev := map[int32][]edge{}
			for _, k := range keys {
				w := m[k]
				fwd[k.posI] = append(fwd[k.posI], edge{to: k.posJ, w: w})
				rev[k.posJ] = append(rev[k.posJ], edge{to: k.posI, w: w})
			}
			adj[i][j] = fwd
			adj[j][i] = rev
		}
	}
	type job struct{ i, j int }
	var jobs []job
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			jobs = append(jobs, job{i, j})
		}
	}
	mats := par.Map(len(jobs), a.opts.Workers, func(t int) map[pairKey]float64 {
		i, j := jobs[t].i, jobs[t].j
		acc := map[pairKey]float64{}
		// direct support
		if m := lib.pairs[lib.idx(i, j)]; m != nil {
			for k, w := range m {
				acc[k] += w
			}
		}
		// support through every third sequence
		for k := 0; k < n; k++ {
			if k == i || k == j {
				continue
			}
			ik := adj[i][k]
			kj := adj[k][j]
			if ik == nil || kj == nil {
				continue
			}
			for ai, edges1 := range ik {
				for _, e1 := range edges1 {
					for _, e2 := range kj[e1.to] {
						w := math.Min(e1.w, e2.w)
						acc[pairKey{ai, e2.to}] += w
					}
				}
			}
		}
		return acc
	})
	for t, m := range mats {
		out.pairs[out.idx(jobs[t].i, jobs[t].j)] = m
	}
	return out
}

// group is a partially aligned set of rows. ords tracks, per row, the
// residue ordinal at every column (-1 for gap) so library lookups during
// the DP are O(1).
type group struct {
	ids  []int
	rows [][]byte
	ords [][]int32
}

// progressive merges groups up the guide tree, scoring columns by
// average library support. The merges run as a parallel post-order
// schedule (tree.ParallelReduce): disjoint subtrees merge concurrently
// on Workers workers against the read-only library; output is
// byte-identical for every Workers value.
func (a *Aligner) progressive(ctx context.Context, seqs [][]byte, gt *tree.Node, lib *library) ([][]byte, []int, error) {
	ctx, psp := obs.Start(ctx, "progressive")
	defer psp.End()
	psp.SetInt("n", int64(len(seqs)))
	psp.SetInt("workers", int64(a.opts.Workers))
	leaf := func(n *tree.Node) (*group, error) {
		if n.ID < 0 || n.ID >= len(seqs) {
			return nil, fmt.Errorf("cons: leaf id %d out of range", n.ID)
		}
		row := seqs[n.ID]
		ords := make([]int32, len(row))
		for i := range ords {
			ords[i] = int32(i)
		}
		return &group{ids: []int{n.ID}, rows: [][]byte{row}, ords: [][]int32{ords}}, nil
	}
	merge := func(mi tree.Merge, l, r *group) (*group, error) {
		_, msp := obs.StartDepth(ctx, "mergenode", mi.Depth)
		defer msp.End()
		msp.SetInt("depth", int64(mi.Depth))
		msp.SetInt("rows", int64(len(l.ids)+len(r.ids)))
		return a.mergeGroups(l, r, lib), nil
	}
	g, err := tree.ParallelReduce(ctx, gt, a.opts.Workers, leaf, merge)
	if err != nil {
		return nil, nil, err
	}
	if g == nil {
		return nil, nil, fmt.Errorf("cons: empty guide tree")
	}
	return g.rows, g.ids, nil
}

// mergeGroups aligns two groups with a linear-gap DP over average library
// support (T-Coffee's progressive stage runs with zero gap penalties: the
// extended library already encodes where gaps belong).
func (a *Aligner) mergeGroups(l, r *group, lib *library) *group {
	wa, wb := len(l.rows[0]), len(r.rows[0])
	score := func(ca, cb int) float64 {
		var s float64
		for x, idx := range l.ids {
			oa := l.ords[x][ca]
			if oa < 0 {
				continue
			}
			for y, idy := range r.ids {
				ob := r.ords[y][cb]
				if ob < 0 {
					continue
				}
				s += lib.weight(idx, int(oa), idy, int(ob))
			}
		}
		return s / float64(len(l.ids)*len(r.ids))
	}
	// NW with zero gap cost, maximising total support; the score plane
	// comes from the pooled DP workspace.
	w := dp.GetScore(wa+1, wb+1)
	defer dp.Put(w)
	mat := w.MP
	cols := wb + 1
	for j := 0; j <= wb; j++ {
		mat[j] = 0
	}
	for i := 1; i <= wa; i++ {
		row := i * cols
		prev := row - cols
		mat[row] = 0
		for j := 1; j <= wb; j++ {
			best := mat[prev+j-1] + score(i-1, j-1)
			if mat[prev+j] > best {
				best = mat[prev+j]
			}
			if mat[row+j-1] > best {
				best = mat[row+j-1]
			}
			mat[row+j] = best
		}
	}
	// traceback into a merge recipe
	type op byte
	const (
		opM, opA, opB op = 0, 1, 2
	)
	var rev []op
	i, j := wa, wb
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && mat[i*cols+j] == mat[(i-1)*cols+j-1]+score(i-1, j-1):
			rev = append(rev, opM)
			i--
			j--
		case i > 0 && mat[i*cols+j] == mat[(i-1)*cols+j]:
			rev = append(rev, opA)
			i--
		default:
			rev = append(rev, opB)
			j--
		}
	}
	width := len(rev)
	out := &group{ids: append(append([]int{}, l.ids...), r.ids...)}
	out.rows = make([][]byte, 0, len(out.ids))
	out.ords = make([][]int32, 0, len(out.ids))
	expand := func(g *group, takeA bool) {
		for x := range g.rows {
			row := make([]byte, 0, width)
			ord := make([]int32, 0, width)
			src := 0
			for k := width - 1; k >= 0; k-- {
				o := rev[k]
				consume := o == opM || (takeA && o == opA) || (!takeA && o == opB)
				if consume {
					row = append(row, g.rows[x][src])
					ord = append(ord, g.ords[x][src])
					src++
				} else {
					row = append(row, bio.Gap)
					ord = append(ord, -1)
				}
			}
			out.rows = append(out.rows, row)
			out.ords = append(out.ords, ord)
		}
	}
	expand(l, true)
	expand(r, false)
	return out
}
