package cons

import (
	"bytes"
	"testing"

	"repro/internal/bio"
	"repro/internal/msa"
	"repro/internal/rose"
)

func famSeqs(t *testing.T, n, l int, rel float64, seed int64) []bio.Sequence {
	t.Helper()
	f, err := rose.Evolve(rose.Config{N: n, MeanLen: l, Relatedness: rel, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f.Seqs()
}

func checkValid(t *testing.T, aln *msa.Alignment, seqs []bio.Sequence) {
	t.Helper()
	if err := aln.Validate(); err != nil {
		t.Fatal(err)
	}
	if aln.NumSeqs() != len(seqs) {
		t.Fatalf("%d rows for %d inputs", aln.NumSeqs(), len(seqs))
	}
	for i := range seqs {
		if !bytes.Equal(bio.Ungap(aln.Seqs[i].Data), bio.Ungap(seqs[i].Data)) {
			t.Fatalf("row %d does not ungap to input", i)
		}
	}
}

func TestConsBasicFamily(t *testing.T) {
	seqs := famSeqs(t, 8, 60, 250, 1)
	aln, err := New(0).Align(seqs)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, aln, seqs)
}

func TestConsIdenticalSequences(t *testing.T) {
	seq := []byte("MKVLWACDEFGHIK")
	seqs := []bio.Sequence{
		{ID: "a", Data: seq}, {ID: "b", Data: seq}, {ID: "c", Data: seq},
	}
	aln, err := New(0).Align(seqs)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, aln, seqs)
	if aln.Width() != len(seq) {
		t.Fatalf("identical sequences got width %d", aln.Width())
	}
}

func TestConsTrivial(t *testing.T) {
	al := New(0)
	empty, err := al.Align(nil)
	if err != nil || empty.NumSeqs() != 0 {
		t.Fatalf("empty: %v %v", empty, err)
	}
	one, err := al.Align([]bio.Sequence{{ID: "a", Data: []byte("ACD")}})
	if err != nil || one.NumSeqs() != 1 {
		t.Fatalf("single: %v %v", one, err)
	}
}

func TestConsRejectsHugeSets(t *testing.T) {
	seqs := make([]bio.Sequence, 300)
	for i := range seqs {
		seqs[i] = bio.Sequence{ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), Data: []byte("ACDEF")}
	}
	if _, err := New(0).Align(seqs); err == nil {
		t.Fatal("300 sequences accepted by consistency method")
	}
}

func TestConsRejectsEmptySequence(t *testing.T) {
	if _, err := New(0).Align([]bio.Sequence{
		{ID: "a", Data: []byte("ACD")},
		{ID: "b", Data: nil},
	}); err == nil {
		t.Fatal("empty sequence accepted")
	}
}

func TestExtensionImprovesOrMatchesQuality(t *testing.T) {
	// The consistency transform is the method's core claim; on a
	// divergent family extension should not hurt Q.
	f, err := rose.Evolve(rose.Config{N: 8, MeanLen: 70, Relatedness: 450, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := f.TrueAlignment([]int{0, 7})
	if err != nil {
		t.Fatal(err)
	}
	with, err := New(0).Align(f.Seqs())
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewWithOptions(Options{Extend: false}).Align(f.Seqs())
	if err != nil {
		t.Fatal(err)
	}
	qWith, err := msa.QScore(with, ref)
	if err != nil {
		t.Fatal(err)
	}
	qWithout, err := msa.QScore(without, ref)
	if err != nil {
		t.Fatal(err)
	}
	if qWith < qWithout-0.15 {
		t.Fatalf("extension hurt badly: %g vs %g", qWith, qWithout)
	}
}

func TestLibraryWeightSymmetry(t *testing.T) {
	seqs := [][]byte{[]byte("ACDEF"), []byte("ACDEF"), []byte("ACWEF")}
	a := New(0)
	lib, _ := a.buildLibrary(seqs)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			for p := 0; p < 5; p++ {
				if lib.weight(i, p, j, p) != lib.weight(j, p, i, p) {
					t.Fatalf("asymmetric library at (%d,%d,pos %d)", i, j, p)
				}
			}
		}
	}
	// identical sequences: residue p aligns to residue p with full weight
	if lib.weight(0, 2, 1, 2) <= 0 {
		t.Fatal("identical pair has zero library support")
	}
}

func TestConsQualityOnModerateFamily(t *testing.T) {
	f, err := rose.Evolve(rose.Config{N: 8, MeanLen: 80, Relatedness: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := f.TrueAlignment([]int{0, 7})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := New(0).Align(f.Seqs())
	if err != nil {
		t.Fatal(err)
	}
	q, err := msa.QScore(aln, ref)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.5 {
		t.Fatalf("Q = %g on a moderate family", q)
	}
}

// TestConsWorkersDeterminism pins the guarantee of the task-parallel
// consistency merge: the alignment is byte-identical for every Workers
// value (the library is read-only during the progressive stage).
func TestConsWorkersDeterminism(t *testing.T) {
	seqs := famSeqs(t, 14, 60, 300, 6)
	ref, err := New(1).Align(seqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 8} {
		got, err := New(w).Align(seqs)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range ref.Seqs {
			if !bytes.Equal(got.Seqs[i].Data, ref.Seqs[i].Data) {
				t.Fatalf("workers=%d row %d differs from workers=1", w, i)
			}
		}
	}
}
