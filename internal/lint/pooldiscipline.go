package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// dpPkg is the pooled-workspace package; its constructors are the
// acquisition points the discipline tracks.
const dpPkg = ModulePath + "/internal/dp"

// PoolDiscipline guards the PR 1 allocation-free kernels: a pooled DP
// workspace (dp.Get/GetScore/GetInt/GetRaw) or a raw sync.Pool Get must
// be released in the acquiring function —
//
//   - no release at all is a leak: the pool drains and every DP pass
//     allocates fresh planes again;
//   - a non-deferred release with a return statement between Get and
//     Put leaks on the early exit (and on panics); defer the Put;
//   - returning the workspace (or anything rooted at it — its planes
//     alias pooled backing arrays) publishes memory that the next
//     borrower will scribble over.
//
// The dp package itself is exempt: it implements the pool, so its
// constructors hand workspaces out by design.
var PoolDiscipline = &Analyzer{
	Name: "pooldiscipline",
	Doc:  "pooled workspaces must be released on every exit and must not escape the borrowing function",
	Applies: func(path string) bool {
		return libraryPackage(path) && path != dpPkg
	},
	Run: runPoolDiscipline,
}

func runPoolDiscipline(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolFunc(pass, fd)
		}
	}
}

type acquisition struct {
	call *ast.CallExpr
	obj  types.Object // variable bound to the workspace, if any
	what string
}

func checkPoolFunc(pass *Pass, fd *ast.FuncDecl) {
	var acqs []acquisition
	var deferredPut bool
	var putPositions []token.Pos

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isPoolGet(pass.Info, call) {
					continue
				}
				a := acquisition{call: call, what: callName(call)}
				if len(st.Lhs) == len(st.Rhs) {
					if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.Defs[id]; obj != nil {
							a.obj = obj
						} else if obj := pass.Info.Uses[id]; obj != nil {
							a.obj = obj
						}
					}
				}
				acqs = append(acqs, a)
			}
		case *ast.DeferStmt:
			if containsPoolPut(pass.Info, st.Call) {
				deferredPut = true
			}
			// defer func() { dp.Put(w) }() also counts.
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok && isPoolPut(pass.Info, c) {
						deferredPut = true
					}
					return true
				})
			}
		case *ast.CallExpr:
			if isPoolPut(pass.Info, st) {
				putPositions = append(putPositions, st.Pos())
			}
			if isPoolGet(pass.Info, st) {
				// A Get whose result is consumed by something other
				// than an assignment (returned, passed on) — record it
				// so the no-release check still fires; escape checks
				// below handle returns.
				parentTracked := false
				for _, a := range acqs {
					if a.call == st {
						parentTracked = true
					}
				}
				if !parentTracked {
					acqs = append(acqs, acquisition{call: st, what: callName(st)})
				}
			}
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}

	if !deferredPut && len(putPositions) == 0 {
		for _, a := range acqs {
			pass.Reportf(a.call.Pos(), "%s acquires a pooled workspace that this function never releases: add defer dp.Put (or Pool.Put)", a.what)
		}
		return
	}

	// Non-deferred release: a return between the acquisition and the
	// first subsequent Put leaks the workspace on that path.
	if !deferredPut {
		for _, a := range acqs {
			nextPut := token.Pos(-1)
			for _, p := range putPositions {
				if p > a.call.Pos() && (nextPut == -1 || p < nextPut) {
					nextPut = p
				}
			}
			if nextPut == -1 {
				continue // flagged patterns above cover the no-put case
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // returns inside closures are not this function's exits
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				if ret.Pos() > a.call.Pos() && ret.Pos() < nextPut {
					pass.Reportf(ret.Pos(), "return leaks the workspace from %s acquired at line %d: release is not deferred", a.what, pass.Fset.Position(a.call.Pos()).Line)
				}
				return true
			})
		}
	}

	// Escape: returning the workspace or memory rooted at it.
	objs := map[types.Object]bool{}
	for _, a := range acqs {
		if a.obj != nil {
			objs[a.obj] = true
		}
	}
	if len(objs) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			id := rootIdent(res)
			if id == nil || !objs[pass.Info.Uses[id]] {
				continue
			}
			// Only reference types alias pooled memory: returning
			// w.MP escapes the plane, returning w.MP[0] copies a
			// scalar out and is the documented pattern.
			switch typeOf(pass.Info, res).Underlying().(type) {
			case *types.Slice, *types.Pointer:
				pass.Reportf(res.Pos(), "pooled workspace memory escapes via return: the next borrower will overwrite it — copy the result out before dp.Put")
			}
		}
		return true
	})
}

func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	if _, ok := importedPkgFunc(info, call, dpPkg, "Get", "GetScore", "GetInt", "GetRaw"); ok {
		return true
	}
	return methodOn(info, call, "Get", "sync", "Pool")
}

func isPoolPut(info *types.Info, call *ast.CallExpr) bool {
	if _, ok := importedPkgFunc(info, call, dpPkg, "Put"); ok {
		return true
	}
	return methodOn(info, call, "Put", "sync", "Pool")
}

func containsPoolPut(info *types.Info, call *ast.CallExpr) bool {
	if isPoolPut(info, call) {
		return true
	}
	return false
}

func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	case *ast.Ident:
		return f.Name
	}
	return "pool acquisition"
}
