package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// LoadedPackage is one type-checked module package ready for Run.
type LoadedPackage struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// LoadModule lists the packages matching patterns in the module rooted
// at dir (with `go list -deps -export`, so every dependency arrives as
// compiled export data) and type-checks the module's own packages from
// source. Used by the driver's standalone mode and by the test
// harness; the `go vet -vettool` path gets the same inputs from vet's
// unitchecker config instead.
func LoadModule(dir string, patterns []string) ([]*LoadedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var loaded []*LoadedPackage
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Module == nil || p.Module.Path != ModulePath {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		lp, err := typeCheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, lp)
	}
	return loaded, nil
}

// ExportImporter returns a types.Importer resolving imports through
// compiled gc export data files (as produced by `go list -export` or
// handed over in a vet config's PackageFile map).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// typeCheck parses and type-checks one package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect best-effort; first hard error returned below
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &LoadedPackage{PkgPath: pkgPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
