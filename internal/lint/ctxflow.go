package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow guards the PR 1 cancellation plumbing: library packages must
// accept their caller's context, not originate one. Two rules:
//
//  1. No context.Background()/context.TODO() calls outside cmd/*,
//     examples/*, tests and main functions. Compatibility wrappers that
//     deliberately root a fresh context (Align -> AlignContext) carry a
//     //lint:allow ctxflow directive documenting why.
//  2. A function that declares a context.Context parameter must use
//     it. A named-but-unread ctx is a dropped cancellation chain: the
//     work it spawns can no longer be cancelled. Interface-satisfying
//     stubs rename the parameter to _ to state the drop explicitly.
var CtxFlow = &Analyzer{
	Name:    "ctxflow",
	Doc:     "library code must thread the incoming context, never originate or drop one",
	Applies: libraryPackage,
	Run:     runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// main functions may originate contexts (scoping already
			// excludes cmd/* and examples/*, but the rule is cheap and
			// keeps fixtures honest).
			isMain := fd.Name.Name == "main" && fd.Recv == nil && pass.Pkg.Name() == "main"
			if !isMain {
				checkNoContextOrigin(pass, fd.Body)
			}
			checkCtxParamUsed(pass, fd)
		}
	}
}

// checkNoContextOrigin flags context.Background()/context.TODO() calls.
func checkNoContextOrigin(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Function literals are part of the enclosing function's
		// context discipline — keep descending.
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := importedPkgFunc(pass.Info, call, "context", "Background", "TODO"); ok {
			pass.Reportf(call.Pos(), "library code must not call context.%s: thread the caller's ctx (see PR 1 cancellation plumbing)", name)
		}
		return true
	})
}

// checkCtxParamUsed flags named context.Context parameters that the
// body never reads.
func checkCtxParamUsed(pass *Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	var ctxParams []*ast.Ident
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			if namedIs(obj.Type(), "context", "Context") {
				ctxParams = append(ctxParams, name)
			}
		}
	}
	if len(ctxParams) == 0 {
		return
	}
	used := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil {
			used[obj] = true
		}
		return true
	})
	for _, p := range ctxParams {
		if !used[pass.Info.Defs[p]] {
			pass.Reportf(p.Pos(), "context parameter %s is dropped: pass it on or rename it to _ to state the drop", p.Name)
		}
	}
}
