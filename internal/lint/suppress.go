package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowPrefix is the suppression directive. A finding on line L of a
// file is suppressed when line L, or line L-1 as a standalone comment,
// carries
//
//	//lint:allow <analyzer> <reason>
//
// for the finding's analyzer. The reason is mandatory and is the
// audit trail: a directive without one is itself reported, as is a
// directive naming an analyzer that does not exist.
const AllowPrefix = "//lint:allow"

type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
	line     int
	file     string
}

// parseAllows collects every suppression directive in the files.
func parseAllows(fset *token.FileSet, files []*ast.File) []allowDirective {
	var out []allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, AllowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not ours
				}
				fields := strings.Fields(rest)
				d := allowDirective{
					pos:  c.Pos(),
					line: fset.Position(c.Pos()).Line,
					file: fset.Position(c.Pos()).Filename,
				}
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applySuppressions drops diagnostics covered by a well-formed allow
// directive and reports malformed directives.
func applySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	allows := parseAllows(fset, files)
	if len(allows) == 0 {
		return diags
	}
	// (file, line) -> analyzers allowed there. A directive covers its
	// own line and, when it is the sole content of its line (a comment
	// line above the code), the next line.
	type key struct {
		file string
		line int
	}
	covered := map[key]map[string]bool{}
	add := func(k key, analyzer string) {
		if covered[k] == nil {
			covered[k] = map[string]bool{}
		}
		covered[k][analyzer] = true
	}
	var out []Diagnostic
	for _, d := range allows {
		if d.analyzer == "" || ByName(d.analyzer) == nil {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "lintdirective",
				Message:  "lint:allow directive must name one of the suite's analyzers",
			})
			continue
		}
		if d.reason == "" {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "lintdirective",
				Message:  "lint:allow " + d.analyzer + " needs a written reason — suppressions without a justification are findings themselves",
			})
			continue
		}
		add(key{d.file, d.line}, d.analyzer)
		add(key{d.file, d.line + 1}, d.analyzer)
	}
	for _, diag := range diags {
		p := fset.Position(diag.Pos)
		if covered[key{p.Filename, p.Line}][diag.Analyzer] {
			continue
		}
		out = append(out, diag)
	}
	return out
}
