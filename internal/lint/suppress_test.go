package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestSuppressionCoversSameAndNextLine(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	//lint:allow ctxflow documented compat shim
	g()
	h() //lint:allow durerr audited discard, nothing was written
}

func g() {}
func h() {}
`)
	mk := func(line int, analyzer string) Diagnostic {
		var pos token.Pos
		fset.Iterate(func(f *token.File) bool {
			pos = f.LineStart(line)
			return false
		})
		return Diagnostic{Pos: pos, Analyzer: analyzer, Message: "x"}
	}
	out := applySuppressions(fset, files, []Diagnostic{
		mk(5, "ctxflow"),     // covered by the directive on line 4
		mk(6, "durerr"),      // covered by the same-line directive
		mk(5, "determinism"), // different analyzer: not covered
		mk(9, "ctxflow"),     // no directive near line 9
	})
	if len(out) != 2 {
		t.Fatalf("got %d surviving diagnostics, want 2: %+v", len(out), out)
	}
	for _, d := range out {
		if d.Analyzer != "determinism" && d.Analyzer != "ctxflow" {
			t.Errorf("unexpected survivor %+v", d)
		}
	}
}

func TestReasonlessDirectiveIsReported(t *testing.T) {
	fset, files := parseOne(t, `package p

//lint:allow ctxflow
func f() {}

//lint:allow nosuchanalyzer because reasons
func g() {}
`)
	out := applySuppressions(fset, files, nil)
	if len(out) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(out), out)
	}
	var sawReasonless, sawUnknown bool
	for _, d := range out {
		if d.Analyzer != "lintdirective" {
			t.Errorf("diagnostic has analyzer %q, want lintdirective", d.Analyzer)
		}
		if strings.Contains(d.Message, "needs a written reason") {
			sawReasonless = true
		}
		if strings.Contains(d.Message, "must name one of the suite's analyzers") {
			sawUnknown = true
		}
	}
	if !sawReasonless || !sawUnknown {
		t.Errorf("missing expected directive findings: %+v", out)
	}
}

func TestReasonlessDirectiveDoesNotSuppress(t *testing.T) {
	fset, files := parseOne(t, `package p

//lint:allow ctxflow
func f() {}
`)
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(4)
		return false
	})
	out := applySuppressions(fset, files, []Diagnostic{
		{Pos: pos, Analyzer: "ctxflow", Message: "finding"},
	})
	// The reasonless directive is reported AND the finding survives.
	if len(out) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (directive + unsuppressed finding): %+v", len(out), out)
	}
}
