// Package linttest is the fixture harness of the analyzer suite: the
// analysistest pattern (expected findings annotated in the fixture
// source with `// want "regexp"` comments) rebuilt on the standard
// library. Fixture packages live under internal/lint/testdata/src/<name>
// and are type-checked against real compiled export data obtained from
// one `go list -export` run, so fixtures may import the standard
// library and a few repro/internal packages (dp, obs).
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// fixtureImports are the packages fixtures may import; their full
// dependency closures are exported once per test process.
var fixtureImports = []string{
	"bytes", "context", "fmt", "io", "math/rand", "os", "sort",
	"strings", "sync", "time",
	"repro/internal/dp",
	"repro/internal/obs",
}

var (
	exportOnce sync.Once
	exportMap  map[string]string
	exportErr  error
)

// moduleRoot walks up from the current directory to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func exports(t *testing.T) map[string]string {
	t.Helper()
	exportOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			exportErr = err
			return
		}
		args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, fixtureImports...)
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			exportErr = fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
			return
		}
		exportMap = map[string]string{}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				exportErr = err
				return
			}
			if p.Export != "" {
				exportMap[p.ImportPath] = p.Export
			}
		}
	})
	if exportErr != nil {
		t.Fatalf("loading fixture export data: %v", exportErr)
	}
	return exportMap
}

// expectation is one `// want "rx"` annotation.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	met  bool
}

var wantRe = regexp.MustCompile("`([^`]+)`|\"([^\"]+)\"")

// parseWants extracts expectations from a file's comments. A comment
// of the form `// want "rx1" "rx2"` (or backquoted) expects one
// diagnostic per pattern on the comment's line.
func parseWants(fset *token.FileSet, f *ast.File) []*expectation {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					panic(fmt.Sprintf("%s: bad want pattern %q: %v", pos, pat, err))
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
			}
		}
	}
	return out
}

// Run analyzes the fixture package in testdata/src/<name> as if it had
// import path asPath, running only the named analyzer (plus the
// always-on suppression-directive validation), and compares
// diagnostics against the fixture's want annotations.
func Run(t *testing.T, analyzer, name, asPath string) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		wants = append(wants, parseWants(fset, f)...)
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: lint.ExportImporter(fset, exports(t))}
	pkg, err := conf.Check(asPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", name, err)
	}
	diags := lint.Run(fset, files, asPath, pkg, info, map[string]bool{analyzer: true})

	var problems []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s: %s [%s]", pos, d.Message, d.Analyzer))
		}
	}
	for _, w := range wants {
		if !w.met {
			problems = append(problems, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx))
		}
	}
	sort.Strings(problems)
	for _, p := range problems {
		t.Error(p)
	}
}
