package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// Determinism guards the byte-identical-output contract of the
// alignment pipeline (PR 2 aliasing fix, PR 5 tie-break rules, PR 6
// kernel equivalence): in the determinism-critical packages it flags
//
//   - time.Now / time.Since — wall-clock reads feeding the result path
//     (timing for reports is fine, but must be suppressed with a reason
//     stating the value never reaches the alignment);
//   - math/rand imports — randomness is only admissible behind a fixed
//     seed, which a suppression must state;
//   - range over a map whose body builds ordered output (appends,
//     counter-indexed writes, buffer writes, string concatenation,
//     order-sensitive float accumulation) or feeds an argmin/argmax
//     comparison — Go randomizes map iteration order per run, so such
//     loops are cross-run nondeterministic unless the output is sorted
//     afterwards (a sort call on the collected slice later in the same
//     block is recognized and silences the finding);
//   - obs span timing reads — obs.(*Span).Wall and
//     obs.(*Tracer).Document expose wall-clock durations (obs owns the
//     pipeline's only other audited clock besides core/clock.go), so
//     reading them inside a determinism-critical package is a clock
//     read by another name. Emitting spans (Start/StartDepth, the
//     Set* attribute setters, End) is write-only and stays allowed.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "determinism-critical packages must not read clocks, use math/rand, or depend on map iteration order",
	Applies: func(path string) bool {
		return determinismPackages[path]
	},
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "determinism-critical package imports %s: randomness must be fixed-seed and justified with a suppression", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if name, ok := importedPkgFunc(pass.Info, call, "time", "Now", "Since"); ok {
					pass.Reportf(call.Pos(), "determinism-critical package reads the wall clock via time.%s: clock values must never influence alignment bytes", name)
				}
				const obsPath = ModulePath + "/internal/obs"
				if methodOn(pass.Info, call, "Wall", obsPath, "Span") {
					pass.Reportf(call.Pos(), "determinism-critical package reads a span timing via obs.(*Span).Wall: trace durations must never influence alignment bytes")
				}
				if methodOn(pass.Info, call, "Document", obsPath, "Tracer") {
					pass.Reportf(call.Pos(), "determinism-critical package reads trace timings via obs.(*Tracer).Document: trace durations must never influence alignment bytes")
				}
			}
			return true
		})
		checkMapRanges(pass, f)
	}
}

// checkMapRanges walks every statement list so that the
// sorted-afterwards escape can see the statements following each range
// loop in its innermost block.
func checkMapRanges(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var stmts []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			stmts = b.List
		case *ast.CaseClause:
			stmts = b.Body
		case *ast.CommClause:
			stmts = b.Body
		default:
			return true
		}
		for i, s := range stmts {
			rs, ok := s.(*ast.RangeStmt)
			if !ok {
				continue
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				continue
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				continue
			}
			checkMapRangeBody(pass, rs, stmts[i+1:])
		}
		return true
	})
}

// checkMapRangeBody flags order-sensitive writes inside one
// map-iteration body. later are the statements following the loop in
// its innermost block, consulted for the collect-then-sort idiom.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, later []ast.Stmt) {
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
			if obj := pass.Info.Uses[id]; obj != nil { // `=` instead of `:=`
				loopVars[obj] = true
			}
		}
	}
	mentionsLoopVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[pass.Info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	sortedLater := func(target ast.Expr) bool {
		id := rootIdent(target)
		if id == nil {
			return false
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		if obj == nil {
			return false
		}
		for _, s := range later {
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
					if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
						for _, arg := range call.Args {
							aid := rootIdent(arg)
							if aid != nil && (pass.Info.Uses[aid] == obj || pass.Info.Defs[aid] == obj) {
								found = true
							}
						}
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
		return false
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass.Info, call) && i < len(st.Lhs) {
					if !sortedLater(st.Lhs[i]) {
						pass.Reportf(st.Pos(), "append inside map iteration builds output in map order (cross-run nondeterministic): iterate sorted keys or sort the result in this block")
					}
				}
			}
			for _, lhs := range st.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				tv, ok := pass.Info.Types[ix.X]
				if !ok {
					continue
				}
				if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
					continue
				}
				// out[k] for the map key k is deterministic; out[i]
				// with a loop-advanced counter records map order.
				if !mentionsLoopVar(ix.Index) && !isConstExpr(pass.Info, ix.Index) && !sortedLater(ix.X) {
					pass.Reportf(st.Pos(), "counter-indexed slice write inside map iteration records map order (cross-run nondeterministic): index by the key or sort afterwards")
				}
			}
			// += / -= / *= on floats accumulates in map order; float
			// addition does not commute under rounding. Keyed targets
			// (acc[k] += v) are touched once per key and stay exempt.
			if st.Tok == token.ADD_ASSIGN || st.Tok == token.SUB_ASSIGN || st.Tok == token.MUL_ASSIGN {
				lhs := st.Lhs[0]
				tv, ok := pass.Info.Types[lhs]
				if !ok {
					break
				}
				basic, isBasic := tv.Type.Underlying().(*types.Basic)
				if !isBasic {
					break
				}
				if basic.Info()&types.IsFloat != 0 && !mentionsLoopVar(lhs) {
					pass.Reportf(st.Pos(), "float accumulation inside map iteration rounds in map order (cross-run nondeterministic): accumulate over sorted keys")
				}
				if basic.Kind() == types.String && !mentionsLoopVar(lhs) {
					pass.Reportf(st.Pos(), "string concatenation inside map iteration emits map order (cross-run nondeterministic): collect and sort first")
				}
			}
		case *ast.CallExpr:
			if sel, ok := st.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Write", "WriteString", "WriteByte", "WriteRune":
					if namedIs(typeOf(pass.Info, sel.X), "bytes", "Buffer") || namedIs(typeOf(pass.Info, sel.X), "strings", "Builder") {
						pass.Reportf(st.Pos(), "buffer write inside map iteration emits map order (cross-run nondeterministic): collect and sort first")
					}
				}
			}
			if name, ok := importedPkgFunc(pass.Info, st, "fmt", "Fprint", "Fprintf", "Fprintln"); ok {
				pass.Reportf(st.Pos(), "fmt.%s inside map iteration emits map order (cross-run nondeterministic): collect and sort first", name)
			}
		case *ast.IfStmt:
			checkArgmax(pass, st, loopVars, mentionsLoopVar)
		}
		return true
	})
}

// checkArgmax flags the min/max-selection idiom over a map: a
// relational comparison on a loop variable guarding assignments to
// variables that outlive the loop. On ties, the winner is whichever key
// the runtime happened to yield first.
func checkArgmax(pass *Pass, ifs *ast.IfStmt, loopVars map[types.Object]bool, mentionsLoopVar func(ast.Expr) bool) {
	cond, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return
	}
	if !mentionsLoopVar(cond.X) && !mentionsLoopVar(cond.Y) {
		return
	}
	assignsOuter := false
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range as.Lhs {
			id := rootIdent(lhs)
			if id == nil {
				continue
			}
			obj := pass.Info.Uses[id]
			if obj != nil && !loopVars[obj] {
				assignsOuter = true
			}
		}
		return !assignsOuter
	})
	if assignsOuter {
		pass.Reportf(ifs.Pos(), "min/max selection over map iteration breaks ties in map order (cross-run nondeterministic): add a deterministic tie-break on the key, or iterate sorted keys")
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// rootIdent digs the base identifier out of expressions like x,
// x.f, x[i], *x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}
