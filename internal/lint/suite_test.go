package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each fixture package is type-checked as an import path inside the
// analyzer's real scope, so the scoping rules are exercised too.

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "ctxflow", "ctxflow", lint.ModulePath+"/internal/ctxfix")
}

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "determinism", "determinism", lint.ModulePath+"/internal/kmer")
}

func TestPoolDiscipline(t *testing.T) {
	linttest.Run(t, "pooldiscipline", "pooldiscipline", lint.ModulePath+"/internal/profile")
}

func TestDurErr(t *testing.T) {
	linttest.Run(t, "durerr", "durerr", lint.ModulePath+"/internal/store")
}

// Scoping: the same fixtures analyzed under out-of-scope import paths
// must produce nothing.
func TestScoping(t *testing.T) {
	cases := []struct{ analyzer, fixture, asPath string }{
		{"ctxflow", "ctxflow_clean", lint.ModulePath + "/cmd/samplealign"},
		{"determinism", "determinism_clean", lint.ModulePath + "/internal/serve"},
		{"durerr", "durerr_clean", lint.ModulePath + "/internal/kmer"},
	}
	for _, c := range cases {
		t.Run(c.analyzer, func(t *testing.T) {
			linttest.Run(t, c.analyzer, c.fixture, c.asPath)
		})
	}
}
