package lint

import (
	"go/ast"
	"go/types"
)

// storePkg/servePkg are the durability packages of the PR 4 contract:
// the write-ahead journal + content-addressed result store, and the
// HTTP service that persists through them.
const (
	storePkg = ModulePath + "/internal/store"
	servePkg = ModulePath + "/internal/serve"
)

// DurErr guards the PR 4 durability contract: in internal/store and
// internal/serve a silently discarded error from
//
//   - (*os.File).Sync — the fsync IS the durability guarantee,
//   - Close on any closer — on write paths Close flushes, and its error
//     is the last chance to learn the bytes never hit the disk,
//   - os.Rename / os.Remove / os.RemoveAll — the atomic-publish and
//     eviction primitives of the store,
//   - (*os.File).Chmod / os.Chmod — a dropped chmod before an atomic
//     rename publishes the file with the temp file's restrictive mode,
//   - any error-returning function or method declared in
//     internal/store — the CRC-framed write paths (Journal.Append,
//     Rewrite, Results.Put, ...),
//
// is an error. A deliberate, audited discard is written as an explicit
// `_ = call()` (ideally with a comment); the bare statement form and
// bare `defer call()` are flagged because they hide the decision.
var DurErr = &Analyzer{
	Name: "durerr",
	Doc:  "durability packages must not silently discard Sync/Close/Rename/store-write errors",
	Applies: func(path string) bool {
		return path == storePkg || path == servePkg
	},
	Run: runDurErr,
}

func runDurErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch st := n.(type) {
			case *ast.ExprStmt:
				if c, ok := st.X.(*ast.CallExpr); ok {
					call, how = c, "discarded"
				}
			case *ast.DeferStmt:
				call, how = st.Call, "discarded by defer"
			case *ast.GoStmt:
				call, how = st.Call, "discarded by go"
			}
			if call == nil {
				return true
			}
			if why, ok := durErrTarget(pass.Info, call); ok {
				pass.Reportf(call.Pos(), "%s error %s: handle it, or write an explicit `_ = ...` to mark an audited discard (PR 4 durability contract)", why, how)
			}
			return true
		})
	}
}

// durErrTarget reports whether call is one of the guarded calls and,
// if so, how to describe it. Only calls whose sole result is an error
// (or whose last result is an error for store-declared write paths)
// qualify — a call returning nothing has nothing to discard.
func durErrTarget(info *types.Info, call *ast.CallExpr) (string, bool) {
	results := resultTypes(info, call)
	if len(results) == 0 || !isErrorType(results[len(results)-1]) {
		return "", false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
			sig := fn.Type().(*types.Signature)
			if sig.Recv() != nil {
				switch fn.Name() {
				case "Sync":
					if namedIs(sig.Recv().Type(), "os", "File") {
						return "(*os.File).Sync", true
					}
				case "Chmod":
					// A dropped chmod on a temp file silently publishes a
					// compacted journal with the tmp file's 0600 mode.
					if namedIs(sig.Recv().Type(), "os", "File") {
						return "(*os.File).Chmod", true
					}
				case "Close":
					if len(results) == 1 {
						return recvTypeName(sig) + ".Close", true
					}
				}
				if fn.Pkg() != nil && fn.Pkg().Path() == storePkg {
					return "store write path " + recvTypeName(sig) + "." + fn.Name(), true
				}
				return "", false
			}
			if fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "os":
					switch fn.Name() {
					case "Rename", "Remove", "RemoveAll", "Chmod":
						return "os." + fn.Name(), true
					}
				case storePkg:
					return "store write path store." + fn.Name(), true
				}
			}
		}
	}
	// Unexported package-local helpers of the store package itself
	// (frame, replay, ...) called as plain identifiers.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if fn, ok := info.Uses[id].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == storePkg {
			return "store write path " + fn.Name(), true
		}
	}
	return "", false
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		if n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Name() + "." + n.Obj().Name()
		}
		return n.Obj().Name()
	}
	return t.String()
}
