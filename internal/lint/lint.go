// Package lint is the project-invariant analyzer suite: a small,
// dependency-free analysis framework (the container pins the module to
// the standard library, so golang.org/x/tools/go/analysis is
// re-implemented here in miniature) plus four analyzers encoding the
// invariants earlier PRs paid for at runtime:
//
//   - ctxflow: library code must thread the caller's context — no
//     context.Background()/TODO() origination, no silently dropped ctx
//     parameters (guards the PR 1 cancellation plumbing).
//   - determinism: the byte-identical-output packages must not consult
//     wall-clock time or math/rand, and must not build ordered output
//     from map-iteration order (guards the PR 2/5/6 determinism
//     matrix).
//   - pooldiscipline: every pooled DP workspace borrow has a release
//     reachable on all exits, preferably deferred, and pooled memory
//     must not escape the borrowing function (guards the PR 1
//     allocation-free kernels).
//   - durerr: in the durability packages, discarding the error of
//     Sync/Close/Flush/Rename or of a store write path is an error
//     (guards the PR 4 crash-safety contract).
//
// The driver is cmd/samplealignlint, runnable standalone or as a
// `go vet -vettool`. Findings are suppressed line-by-line with
//
//	//lint:allow <analyzer> <reason>
//
// where the reason is mandatory; a reasonless directive is itself
// reported. See suppress.go.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the import path of this module; analyzer scoping is
// expressed relative to it.
const ModulePath = "repro"

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File // non-test files of the package
	PkgPath string      // import path, test-variant suffix stripped
	Pkg     *types.Package
	Info    *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	// Applies reports whether the analyzer runs on the package with the
	// given import path (test-variant suffix already stripped).
	Applies func(pkgPath string) bool
	Run     func(*Pass)
}

// Analyzers returns the full suite in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{CtxFlow, Determinism, PoolDiscipline, DurErr}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// NewInfo returns a types.Info populated with every map the analyzers
// consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// StripTestVariant reduces a go/vet package ID to its import path:
// "p [p.test]" -> "p", "p.test" -> "p.test" (the synthesized test main,
// which no analyzer applies to).
func StripTestVariant(id string) string {
	if i := strings.Index(id, " ["); i >= 0 {
		return id[:i]
	}
	return id
}

// IsTestFile reports whether the file (by filename) is a _test.go file.
// The suite checks invariants of production code; tests may freely use
// context.Background, wall clocks and maps.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	name := fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// libraryPackage reports whether path is library code whose invariants
// the suite enforces: the module root package and everything under
// internal/, except internal/lint itself (the checker is not subject to
// the alignment pipeline's invariants) and fixture trees.
func libraryPackage(path string) bool {
	if path == ModulePath {
		return true
	}
	if !strings.HasPrefix(path, ModulePath+"/internal/") {
		return false
	}
	if path == ModulePath+"/internal/lint" || strings.HasPrefix(path, ModulePath+"/internal/lint/") {
		return false
	}
	return true
}

// determinismPackages are the packages whose output must be
// byte-identical across engines, worker counts, backends and kernels.
var determinismPackages = map[string]bool{}

func init() {
	for _, p := range []string{
		"msa", "mafft", "cons", "tree", "kmer", "par", "profile",
		"pairwise", "dpkern", "core",
	} {
		determinismPackages[ModulePath+"/internal/"+p] = true
	}
}

// Run executes every applicable analyzer of the suite over one
// type-checked package and returns the surviving diagnostics, sorted by
// position: suppressed findings are dropped, reasonless or unknown
// suppression directives are added. enabled selects analyzers by name;
// nil enables all.
func Run(fset *token.FileSet, files []*ast.File, pkgPath string, pkg *types.Package, info *types.Info, enabled map[string]bool) []Diagnostic {
	pkgPath = StripTestVariant(pkgPath)
	var src []*ast.File
	for _, f := range files {
		if !IsTestFile(fset, f) {
			src = append(src, f)
		}
	}
	var diags []Diagnostic
	for _, a := range Analyzers() {
		if enabled != nil && !enabled[a.Name] {
			continue
		}
		if !a.Applies(pkgPath) {
			continue
		}
		pass := &Pass{
			Fset:     fset,
			Files:    src,
			PkgPath:  pkgPath,
			Pkg:      pkg,
			Info:     info,
			analyzer: a,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = applySuppressions(fset, src, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// ---- shared type-query helpers ----

// importedPkgFunc reports whether call invokes the package-level
// function pkgPath.name, resolving import aliases through the type
// info.
func importedPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false
	}
	for _, n := range names {
		if fn.Name() == n {
			return n, true
		}
	}
	return "", false
}

// methodOn reports whether call invokes a method with the given name
// whose receiver's core named type is pkgPath.typeName (through
// pointers).
func methodOn(info *types.Info, call *ast.CallExpr, name, pkgPath, typeName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	return namedIs(s.Recv(), pkgPath, typeName)
}

func namedIs(t types.Type, pkgPath, typeName string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}

// resultTypes returns the result tuple of call's static type.
func resultTypes(info *types.Info, call *ast.CallExpr) []types.Type {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		if tv.IsVoid() {
			return nil
		}
		return []types.Type{t}
	}
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorType)
}
