// Fixture for the pooldiscipline analyzer: leaked, early-returning and
// escaping pooled workspaces, against the approved borrow patterns.
package pooldiscipline

import (
	"sync"

	"repro/internal/dp"
)

func deferred(n, m int) float64 {
	w := dp.Get(n, m)
	defer dp.Put(w)
	w.MP[0] = 1
	return w.MP[0]
}

func deferredInClosure(n, m int) float64 {
	w := dp.GetScore(n, m)
	defer func() { dp.Put(w) }()
	return w.MP[0]
}

func leaked(n, m int) {
	w := dp.Get(n, m) // want `never releases`
	w.MP[0] = 1
}

func leakedRaw() {
	w := dp.GetRaw() // want `never releases`
	w.Reserve(1, 1)
}

func earlyReturn(n, m int, bad bool) float64 {
	w := dp.Get(n, m)
	if bad {
		return 0 // want `return leaks the workspace`
	}
	s := w.MP[0]
	dp.Put(w)
	return s
}

func putOnEveryPath(n, m int) float64 {
	w := dp.Get(n, m)
	s := w.MP[0]
	dp.Put(w)
	return s
}

func escapesPlane(n, m int) []float64 {
	w := dp.Get(n, m)
	defer dp.Put(w)
	return w.MP // want `escapes via return`
}

func escapesWorkspace(n, m int) *dp.Workspace {
	w := dp.Get(n, m)
	defer dp.Put(w)
	return w // want `escapes via return`
}

func scalarCopyOut(n, m int) float64 {
	w := dp.GetScore(n, m)
	defer dp.Put(w)
	return w.MP[0]
}

func rawPoolLeaked(p *sync.Pool) any {
	buf := p.Get() // want `never releases`
	return buf
}

func rawPoolDeferred(p *sync.Pool) {
	buf := p.Get()
	defer p.Put(buf)
	_ = buf
}
