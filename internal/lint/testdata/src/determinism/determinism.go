// Fixture for the determinism analyzer: wall-clock reads, math/rand,
// and map-iteration order leaking into ordered output.
package determinism

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand" // want `imports math/rand`
	"sort"
	"time"

	"repro/internal/obs"
)

func clock() int64 {
	t := time.Now() // want `reads the wall clock via time\.Now`
	return t.Unix()
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `reads the wall clock via time\.Since`
}

func seeded() int {
	rng := rand.New(rand.NewSource(42))
	return rng.Int()
}

func mapAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append inside map iteration`
	}
	return keys
}

func mapAppendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func counterIndexed(m map[string]float64) []float64 {
	out := make([]float64, len(m))
	i := 0
	for _, v := range m {
		out[i] = v // want `counter-indexed slice write`
		i++
	}
	return out
}

func keyIndexed(m map[int]float64) []float64 {
	out := make([]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation inside map iteration`
	}
	return sum
}

func keyedAccum(m map[string]float64, acc map[string]float64) {
	for k, v := range m {
		acc[k] += v
	}
}

func intAccum(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v // integer addition commutes exactly
	}
	return n
}

func buffered(m map[string]string, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want `buffer write inside map iteration`
	}
}

func printed(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside map iteration`
	}
}

func argmax(m map[string]float64) string {
	var bestK string
	best := -1.0
	for k, v := range m {
		if v > best { // want `min/max selection over map iteration`
			best, bestK = v, k
		}
	}
	return bestK
}

func argmaxTieBroken(m map[string]float64) string {
	var bestK string
	best := -1.0
	for k, v := range m {
		if v > best || (v == best && k < bestK) {
			best, bestK = v, k
		}
	}
	return bestK
}

func sliceRangeFine(s []float64) float64 {
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum
}

func allowedClock() int64 {
	//lint:allow determinism fixture: timing for a progress report, never reaches alignment bytes
	t := time.Now()
	return t.UnixNano()
}

func spanWall(sp *obs.Span) time.Duration {
	return sp.Wall() // want `reads a span timing via obs\.\(\*Span\)\.Wall`
}

func traceDoc(tr *obs.Tracer) *obs.Document {
	return tr.Document() // want `reads trace timings via obs\.\(\*Tracer\)\.Document`
}

func spanWrites(ctx context.Context, depth int) {
	// Emitting spans is write-only instrumentation: Start, the attribute
	// setters and End never hand timing values back to the caller.
	ctx, sp := obs.Start(ctx, "phase")
	sp.SetInt("n", 1)
	sp.End()
	_, dsp := obs.StartDepth(ctx, "deep", depth)
	dsp.SetBool("sampled", true)
	dsp.End()
}
