// Scoping fixture: durerr is scoped to the durability packages; a
// discarded Close outside internal/store and internal/serve is the
// business of general code review, not of this analyzer.
package kmer

import "os"

func slurp(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return os.ReadFile(path)
}
