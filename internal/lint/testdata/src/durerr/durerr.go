// Fixture for the durerr analyzer: silently discarded durability
// errors in the store/serve packages. The fixture is type-checked as
// repro/internal/store, so its own error-returning helpers stand in
// for the CRC-framed write paths.
package durerr

import (
	"io"
	"os"
)

func syncDiscarded(f *os.File) {
	f.Sync() // want `\(\*os\.File\)\.Sync error discarded`
}

func closeDiscarded(f *os.File) {
	f.Close() // want `os\.File\.Close error discarded`
}

func closeDeferDiscarded(f *os.File) {
	defer f.Close() // want `discarded by defer`
}

func closerDiscarded(c io.Closer) {
	c.Close() // want `io\.Closer\.Close error discarded`
}

func renameDiscarded(a, b string) {
	os.Rename(a, b) // want `os\.Rename error discarded`
}

func chmodDiscarded(f *os.File) {
	f.Chmod(0o644) // want `\(\*os\.File\)\.Chmod error discarded`
}

func osChmodDiscarded(p string) {
	os.Chmod(p, 0o644) // want `os\.Chmod error discarded`
}

func chmodHandled(f *os.File) error {
	return f.Chmod(0o644)
}

func removeDiscarded(p string) {
	os.Remove(p) // want `os\.Remove error discarded`
}

func appendFrame() error { return nil }

func writePathDiscarded() {
	appendFrame() // want `store write path appendFrame`
}

func goDiscarded(f *os.File) {
	go f.Sync() // want `discarded by go`
}

func syncHandled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

func closeAudited(f *os.File) {
	// Read path: nothing was written, an audited discard is fine.
	_ = f.Close()
}

func deferAudited(f *os.File) {
	defer func() { _ = f.Close() }()
}

func renameHandled(a, b string) error {
	return os.Rename(a, b)
}

func writePathHandled() error {
	return appendFrame()
}

func allowedDiscard(f *os.File) {
	f.Sync() //lint:allow durerr fixture: best-effort sync on a scratch file
}

func noErrorResult() {}

func fineStatement() {
	noErrorResult()
}
