// Fixture for the ctxflow analyzer: context origination and dropped
// ctx parameters in library code, plus the suppression directive.
package ctxflow

import "context"

func origin() context.Context {
	ctx := context.Background() // want `must not call context\.Background`
	return ctx
}

func todo() context.Context {
	return context.TODO() // want `must not call context\.TODO`
}

func originInClosure() func() context.Context {
	return func() context.Context {
		return context.Background() // want `must not call context\.Background`
	}
}

func dropped(ctx context.Context, n int) int { // want `context parameter ctx is dropped`
	return n + 1
}

func droppedNamedOther(parent context.Context) { // want `context parameter parent is dropped`
}

func threaded(ctx context.Context) error {
	return work(ctx)
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// Stating the drop with _ is the approved form for interface stubs.
func explicitDrop(_ context.Context) {}

// A documented suppression silences the finding.
func allowedOrigin() context.Context {
	//lint:allow ctxflow fixture: compatibility wrapper roots a fresh context by design
	return context.Background()
}

func allowedSameLine() context.Context {
	return context.TODO() //lint:allow ctxflow fixture: sentinel context, never awaited
}
