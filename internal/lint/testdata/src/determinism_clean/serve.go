// Scoping fixture: internal/serve is not a determinism-critical
// package — wall clocks and map iteration are its daily business
// (deadlines, metrics), so the analyzer must stay silent here.
package serve

import "time"

func deadline(ms int64) time.Time {
	return time.Now().Add(time.Duration(ms) * time.Millisecond)
}

func snapshot(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
