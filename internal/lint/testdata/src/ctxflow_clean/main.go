// Scoping fixture: a cmd/* package may originate contexts freely —
// none of the calls below carry want annotations, so the test fails if
// ctxflow ever fires outside its library scope.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
	_ = context.TODO()
}

func run(ctx context.Context) error {
	return ctx.Err()
}
