package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/bio"
	"repro/internal/core"
	"repro/internal/fasta"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/obs"
)

// The cluster job protocol: one TCP control connection per worker per
// job, JSON messages both ways.
//
//	coordinator → worker : prepare{}            (claims the worker)
//	worker → coordinator : hello{mesh}          (the worker's rank mesh address)
//	coordinator → worker : jobSpec{rank, addrs, options, fasta-shard}
//	worker → coordinator : jobAck{ok, error}    (after the rank finishes)
//
// Between spec and ack, both sides participate in a normal
// mpi.DialTCPContext mesh; worker failure therefore surfaces twice —
// as a broken control connection and as mpi peer-death on rank 0 —
// and either one fails the job instead of hanging it. Closing the
// control connection mid-job cancels the worker's rank.

type prepareMsg struct {
	Proto int `json:"proto"` // protocol version, currently 1
}

type helloMsg struct {
	Mesh  string `json:"mesh"` // address this worker's rank will listen on
	Error string `json:"error,omitempty"`
}

type jobSpec struct {
	Rank    int        `json:"rank"`
	Addrs   []string   `json:"addrs"`
	Options Resolved   `json:"options"`
	Trace   *traceSpec `json:"trace,omitempty"` // nil = tracing off for this job
	FASTA   string     `json:"fasta"`           // this rank's input shard
}

// traceSpec propagates the coordinator's tracing configuration to one
// worker rank: the worker runs its own obs.Tracer under the same trace
// ID and bounds, and ships the finished span tree back in its ack. The
// whole job then renders as one tree — the coordinator grafts each
// remote tree under a per-rank child span (obs.Span.AttachRemote).
type traceSpec struct {
	ID          string `json:"id"`
	MaxSpans    int    `json:"max_spans"`
	SampleDepth int    `json:"sample_depth"`
}

type jobAck struct {
	OK    bool            `json:"ok"`
	Error string          `json:"error,omitempty"`
	Trace json.RawMessage `json:"trace,omitempty"` // the rank's obs.Document, when the spec asked for tracing
}

const clusterProto = 1

// Cluster executes jobs on a pre-connected set of samplealignd worker
// daemons (started with -worker-ctrl/-worker-mesh): the server itself
// is rank 0 and each worker one further rank. Jobs are serialized
// through the cluster (one at a time) because every worker has a single
// fixed mesh address; run several servers or worker sets for parallel
// cluster jobs.
type Cluster struct {
	Workers     []string      // worker control addresses (world size = len+1)
	SelfAddr    string        // rank-0 mesh listen address of this server
	DialTimeout time.Duration // control-connection dial timeout (default 5s)

	mu sync.Mutex // one job at a time: mesh ports are fixed per worker
}

// Name identifies the executor in /healthz.
func (c *Cluster) Name() string {
	return fmt.Sprintf("tcp-cluster(p=%d)", len(c.Workers)+1)
}

// FixedProcs is the cluster's world size: the set of connected workers,
// not the request, decides the rank count. Submit folds this into the
// resolved options before keying the cache, so every request for the
// same input shares one cache entry and reports the procs actually run.
func (c *Cluster) FixedProcs() int { return len(c.Workers) + 1 }

// Align satisfies Executor. opts.Procs is forced to the world size for
// direct callers; jobs coming through Submit already arrive normalized.
func (c *Cluster) Align(ctx context.Context, seqs []bio.Sequence, opts Resolved) (*msa.Alignment, ExecReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, ExecReport{}, err
	}

	p := len(c.Workers) + 1
	opts.Procs = p
	dialTimeout := c.DialTimeout
	if dialTimeout == 0 {
		dialTimeout = 5 * time.Second
	}

	// Distributed tracing: when the job context carries a tracer, every
	// worker runs its own under the same ID and bounds and ships its
	// span tree back in the ack; a per-rank "worker" span here covers
	// claim-to-ack and adopts the remote tree, so the job renders as one
	// tree over all p ranks. Span Start/End/AttachRemote are all nil-safe,
	// so the untraced path stays branch-free.
	tr := obs.FromContext(ctx)
	var tspec *traceSpec
	if tr != nil {
		maxSpans, sampleDepth := tr.Bounds()
		tspec = &traceSpec{ID: tr.ID(), MaxSpans: maxSpans, SampleDepth: sampleDepth}
	}
	wspans := make([]*obs.Span, len(c.Workers))
	defer func() {
		for _, sp := range wspans { // close spans left open by error paths (End is idempotent)
			sp.End()
		}
	}()

	// Phase 1: claim every worker and learn its mesh address. The
	// conn-closing watcher is armed before the first write so a job
	// cancel or deadline unwinds even a write stalled on a wedged
	// worker; per-operation I/O deadlines bound stalls that the
	// context never sees.
	var connsMu sync.Mutex
	conns := make([]net.Conn, len(c.Workers))
	closeConns := func() {
		connsMu.Lock()
		defer connsMu.Unlock()
		for _, conn := range conns {
			if conn != nil {
				_ = conn.Close()
			}
		}
	}
	defer closeConns()
	watch := make(chan struct{})
	defer close(watch)
	go func() {
		select {
		case <-ctx.Done():
			closeConns()
		case <-watch:
		}
	}()

	addrs := make([]string, p)
	addrs[0] = c.SelfAddr
	for i, ctrl := range c.Workers {
		d := net.Dialer{Timeout: dialTimeout}
		conn, err := d.DialContext(ctx, "tcp", ctrl)
		if err != nil {
			return nil, ExecReport{}, fmt.Errorf("serve: cluster worker %d (%s): %w", i+1, ctrl, err)
		}
		connsMu.Lock()
		conns[i] = conn
		connsMu.Unlock()
		conn.SetDeadline(time.Now().Add(dialTimeout))
		if err := json.NewEncoder(conn).Encode(prepareMsg{Proto: clusterProto}); err != nil {
			return nil, ExecReport{}, fmt.Errorf("serve: cluster worker %d (%s): prepare: %w", i+1, ctrl, err)
		}
		var hello helloMsg
		if err := json.NewDecoder(conn).Decode(&hello); err != nil {
			return nil, ExecReport{}, fmt.Errorf("serve: cluster worker %d (%s): hello: %w", i+1, ctrl, err)
		}
		conn.SetDeadline(time.Time{})
		if hello.Error != "" {
			return nil, ExecReport{}, fmt.Errorf("serve: cluster worker %d (%s): %s", i+1, ctrl, hello.Error)
		}
		addrs[i+1] = hello.Mesh
		_, wsp := obs.Start(ctx, "worker")
		wsp.SetInt("rank", int64(i+1))
		wsp.SetStr("ctrl", ctrl)
		wspans[i] = wsp
	}

	// Phase 2: ship each worker its rank, the mesh and its input shard.
	// The shard can be large; the write deadline matches the worker's
	// spec read deadline.
	shards, _ := core.SplitBlocks(seqs, p)
	for i, conn := range conns {
		spec := jobSpec{
			Rank:    i + 1,
			Addrs:   addrs,
			Options: opts,
			Trace:   tspec,
			FASTA:   fasta.FormatString(shards[i+1]),
		}
		conn.SetWriteDeadline(time.Now().Add(5 * time.Minute))
		if err := json.NewEncoder(conn).Encode(spec); err != nil {
			return nil, ExecReport{}, fmt.Errorf("serve: cluster worker %d: spec: %w", i+1, err)
		}
		conn.SetWriteDeadline(time.Time{})
	}

	// Phase 3: run rank 0 here while collecting worker acks. If ctx is
	// cancelled, closing the communicator and the control connections
	// unwinds everything (workers see EOF on control and cancel too).
	comm, err := mpi.DialTCPContext(ctx, mpi.TCPConfig{Rank: 0, Addrs: addrs})
	if err != nil {
		return nil, ExecReport{}, fmt.Errorf("serve: cluster mesh: %w", err)
	}
	defer func() { _ = comm.Close() }() // teardown; run errors surface from Align
	commWatch := make(chan struct{})
	defer close(commWatch)
	go func() {
		select {
		case <-ctx.Done():
			_ = comm.Close()
			closeConns()
		case <-commWatch:
		}
	}()

	ackCh := make(chan error, len(conns))
	for i, conn := range conns {
		go func(i int, conn net.Conn) {
			var ack jobAck
			if err := json.NewDecoder(conn).Decode(&ack); err != nil {
				wspans[i].End()
				ackCh <- fmt.Errorf("worker %d: control connection lost: %w", i+1, err)
				return
			}
			if !ack.OK {
				wspans[i].SetStr("error", ack.Error)
				wspans[i].End()
				ackCh <- fmt.Errorf("worker %d: %s", i+1, ack.Error)
				return
			}
			if len(ack.Trace) > 0 {
				var doc obs.Document
				if err := json.Unmarshal(ack.Trace, &doc); err == nil {
					wspans[i].SetInt("remote_spans", int64(doc.SpanCount))
					wspans[i].AttachRemote(&doc)
				} else {
					wspans[i].SetStr("trace_error", err.Error())
				}
			}
			wspans[i].End()
			ackCh <- nil
		}(i, conn)
	}

	aln, rankStats, err := core.AlignContext(ctx, comm, shards[0], opts.CoreConfig())
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ExecReport{}, ctxErr
		}
		return nil, ExecReport{}, fmt.Errorf("serve: cluster rank 0: %w", err)
	}
	// The glue already completed on rank 0; acks only confirm orderly
	// worker shutdown (and surface worker-side errors for the log).
	var ackErr error
	for range conns {
		select {
		case e := <-ackCh:
			if e != nil && ackErr == nil {
				ackErr = e
			}
		case <-ctx.Done():
			return nil, ExecReport{}, ctx.Err()
		}
	}
	if ackErr != nil {
		return nil, ExecReport{}, fmt.Errorf("serve: cluster: %w", ackErr)
	}
	rep := ExecReport{Procs: p}
	if rankStats != nil {
		rep.BytesSent = rankStats.Comm.BytesSent
		rep.BytesRecv = rankStats.Comm.BytesRecv
	}
	return aln, rep, nil
}
