package serve

import (
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Metrics are the service counters and latency histograms exposed at
// /metrics (Prometheus text format). All fields are goroutine-safe.
type Metrics struct {
	Submitted   stats.Counter // jobs accepted by Submit (incl. cache hits)
	Completed   stats.Counter // jobs finished successfully (incl. cache hits)
	Failed      stats.Counter
	Canceled    stats.Counter
	Rejected    stats.Counter // admission-control 429s
	CacheHits   stats.Counter
	CacheMisses stats.Counter

	QueueWait  *stats.LatencyHistogram // seconds from submit to execution start
	RunSeconds *stats.LatencyHistogram // execution wall-clock
}

// NewMetrics builds the metric set with the default latency bounds.
func NewMetrics() *Metrics {
	return &Metrics{
		QueueWait:  stats.MustLatencyHistogram(stats.DefaultLatencyBounds()),
		RunSeconds: stats.MustLatencyHistogram(stats.DefaultLatencyBounds()),
	}
}

// Render writes the Prometheus text exposition, folding in the queue
// and cache gauges sampled at call time.
func (m *Metrics) Render(q QueueStats, evictions int64) string {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		b.WriteString("# HELP " + name + " " + help + "\n")
		b.WriteString("# TYPE " + name + " counter\n")
		writeMetricLine(&b, name, v)
	}
	gauge := func(name, help string, v int64) {
		b.WriteString("# HELP " + name + " " + help + "\n")
		b.WriteString("# TYPE " + name + " gauge\n")
		writeMetricLine(&b, name, v)
	}
	counter("samplealign_jobs_submitted_total", "Jobs accepted by submit.", m.Submitted.Value())
	counter("samplealign_jobs_completed_total", "Jobs finished successfully.", m.Completed.Value())
	counter("samplealign_jobs_failed_total", "Jobs finished with an error.", m.Failed.Value())
	counter("samplealign_jobs_canceled_total", "Jobs canceled by caller, deadline or disconnect.", m.Canceled.Value())
	counter("samplealign_jobs_rejected_total", "Submissions rejected by admission control (429).", m.Rejected.Value())
	counter("samplealign_cache_hits_total", "Submissions answered from the result cache.", m.CacheHits.Value())
	counter("samplealign_cache_misses_total", "Submissions that had to run.", m.CacheMisses.Value())
	counter("samplealign_cache_evictions_total", "Results evicted from the cache.", evictions)
	gauge("samplealign_queue_depth", "Jobs admitted and waiting.", int64(q.Queued))
	gauge("samplealign_jobs_running", "Jobs currently executing.", int64(q.Active))
	gauge("samplealign_cache_entries", "Results held in the cache.", int64(q.CacheEntries))
	gauge("samplealign_cache_bytes", "FASTA bytes held in the cache.", q.CacheBytes)
	m.QueueWait.Snapshot().WritePrometheus(&b, "samplealign_job_queue_wait_seconds")
	m.RunSeconds.Snapshot().WritePrometheus(&b, "samplealign_job_run_seconds")
	return b.String()
}

func writeMetricLine(b *strings.Builder, name string, v int64) {
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(v, 10))
	b.WriteByte('\n')
}
