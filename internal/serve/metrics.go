package serve

import (
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Metrics are the service counters and latency histograms exposed at
// /metrics (Prometheus text format). All fields are goroutine-safe.
type Metrics struct {
	Submitted   stats.Counter // jobs accepted by Submit (incl. cache hits)
	Completed   stats.Counter // jobs finished successfully (incl. cache hits)
	Failed      stats.Counter
	Canceled    stats.Counter
	Rejected    stats.Counter // admission-control 429s
	CacheHits   stats.Counter // submissions answered from a cache tier
	CacheMisses stats.Counter // submissions that started a new computation
	Coalesced   stats.Counter // submissions attached to an identical in-flight job
	StoreHits   stats.Counter // cache hits served by the disk tier
	Streamed    stats.Counter // results streamed from the disk store
	Recovered   stats.Counter // jobs re-enqueued by journal replay at boot
	Interrupted stats.Counter // jobs hard-canceled by shutdown (journaled for requeue at next boot)
	Draining    stats.Gauge   // 1 while the server refuses new submissions to drain

	BatchSubmitted stats.Counter // POST /v1/batch requests admitted
	BatchJobs      stats.Counter // jobs admitted via batch requests
	BatchRejected  stats.Counter // batch requests rejected whole (all-or-nothing admission)

	CommSent stats.Counter // MPI payload bytes sent across all finished jobs
	CommRecv stats.Counter // MPI payload bytes received across all finished jobs

	TraceDropped  stats.Counter // spans dropped at the tracer's MaxSpans bound (remote drops folded in)
	EventsDropped stats.Counter // live-stream events dropped on slow subscribers

	QueueWait    *stats.LabeledHistograms // seconds from submit to leaving the queue, by outcome (dispatched/canceled/coalesced)
	RunSeconds   *stats.LatencyHistogram  // execution wall-clock
	Stages       *stats.LabeledHistograms // per-pipeline-stage wall-clock, fed by trace spans
	GroupRecords *stats.LatencyHistogram  // records per journal commit group, fed by the journal's flush hook
}

// NewMetrics builds the metric set with the default latency bounds.
func NewMetrics() *Metrics {
	return &Metrics{
		QueueWait:  stats.MustLabeledHistograms(stats.DefaultLatencyBounds()),
		RunSeconds: stats.MustLatencyHistogram(stats.DefaultLatencyBounds()),
		Stages:     stats.MustLabeledHistograms(stats.DefaultLatencyBounds()),
		// Power-of-two record counts: group commit is interesting in
		// exactly how far above 1 record per fsync it gets.
		GroupRecords: stats.MustLatencyHistogram([]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
	}
}

// pipelineStages is the canonical stage-name set fed into the Stages
// histogram family: only spans with these names become label values, so
// metric cardinality stays bounded no matter what the tracer records.
var pipelineStages = map[string]bool{
	"distmatrix":  true, // pairwise distance matrix (k-mer tiled or PID)
	"guidetree":   true, // UPGMA / neighbor-joining construction
	"decompose":   true, // sampling, pivot selection, all-to-all exchange
	"bucketalign": true, // local MSA of one rank's bucket
	"merge":       true, // ancestor alignment, fine-tune, glue
}

// ObserveStage feeds one finished span into the per-stage histograms if
// its name is a canonical pipeline stage. Shaped to plug directly into
// obs.Options.OnSpanEnd.
func (m *Metrics) ObserveStage(name string, seconds float64) {
	if pipelineStages[name] {
		m.Stages.Observe(name, seconds)
	}
}

// PersistGauges are the durability-layer gauges sampled at render time;
// nil sections are omitted from the exposition (no DataDir configured).
type PersistGauges struct {
	StoreEntries   int64
	StoreBytes     int64
	StoreEvictions int64
	JournalRecords int64
	JournalBytes   int64
	// Group-commit counters: fsyncs ÷ flushed records is the realized
	// fsyncs-per-record (1.0 means no batching is happening).
	JournalFsyncs         int64
	JournalFlushedRecords int64
}

// Render writes the Prometheus text exposition, folding in the queue,
// cache and persistence gauges sampled at call time.
func (m *Metrics) Render(q QueueStats, evictions int64, persist *PersistGauges) string {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		b.WriteString("# HELP " + name + " " + help + "\n")
		b.WriteString("# TYPE " + name + " counter\n")
		writeMetricLine(&b, name, v)
	}
	gauge := func(name, help string, v int64) {
		b.WriteString("# HELP " + name + " " + help + "\n")
		b.WriteString("# TYPE " + name + " gauge\n")
		writeMetricLine(&b, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		b.WriteString("# HELP " + name + " " + help + "\n")
		b.WriteString("# TYPE " + name + " gauge\n")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		b.WriteByte('\n')
	}
	counter("samplealign_jobs_submitted_total", "Jobs accepted by submit.", m.Submitted.Value())
	counter("samplealign_jobs_completed_total", "Jobs finished successfully.", m.Completed.Value())
	counter("samplealign_jobs_failed_total", "Jobs finished with an error.", m.Failed.Value())
	counter("samplealign_jobs_canceled_total", "Jobs canceled by caller, deadline or disconnect.", m.Canceled.Value())
	counter("samplealign_jobs_rejected_total", "Submissions rejected by admission control (429).", m.Rejected.Value())
	counter("samplealign_jobs_coalesced_total", "Submissions attached to an identical in-flight job.", m.Coalesced.Value())
	counter("samplealign_jobs_recovered_total", "Jobs re-enqueued by journal replay at startup.", m.Recovered.Value())
	counter("samplealign_jobs_interrupted_total", "Jobs hard-canceled by shutdown, journaled for requeue at next boot.", m.Interrupted.Value())
	counter("samplealign_batch_requests_total", "POST /v1/batch requests admitted.", m.BatchSubmitted.Value())
	counter("samplealign_batch_jobs_total", "Jobs admitted via batch requests.", m.BatchJobs.Value())
	counter("samplealign_batch_rejected_total", "Batch requests rejected whole by all-or-nothing admission.", m.BatchRejected.Value())
	counter("samplealign_cache_hits_total", "Submissions answered from the result cache tiers.", m.CacheHits.Value())
	counter("samplealign_cache_misses_total", "Submissions that started a new computation.", m.CacheMisses.Value())
	counter("samplealign_cache_evictions_total", "Results evicted from the in-memory cache.", evictions)
	counter("samplealign_store_hits_total", "Cache hits served by the on-disk result store.", m.StoreHits.Value())
	counter("samplealign_results_streamed_total", "Results streamed to clients from the on-disk store.", m.Streamed.Value())
	counter("samplealign_comm_sent_bytes_total", "MPI payload bytes sent across all finished jobs.", m.CommSent.Value())
	counter("samplealign_comm_recv_bytes_total", "MPI payload bytes received across all finished jobs.", m.CommRecv.Value())
	counter("samplealign_trace_dropped_spans_total", "Trace spans dropped at the tracer's MaxSpans bound.", m.TraceDropped.Value())
	counter("samplealign_events_dropped_total", "Live-stream events dropped on slow subscribers.", m.EventsDropped.Value())
	gauge("samplealign_queue_depth", "Flights admitted and waiting.", int64(q.Queued))
	gaugeF("samplealign_queue_oldest_age_seconds", "Seconds the head-of-line flight has waited; 0 with an empty queue.", q.OldestQueuedAge)
	gauge("samplealign_jobs_running", "Flights currently executing.", int64(q.Active))
	gauge("samplealign_draining", "1 while the server refuses new submissions to drain.", m.Draining.Value())
	gauge("samplealign_cache_entries", "Results held in the in-memory cache.", int64(q.CacheEntries))
	gauge("samplealign_cache_bytes", "FASTA bytes held in the in-memory cache.", q.CacheBytes)
	if persist != nil {
		gauge("samplealign_store_entries", "Results held in the on-disk store.", persist.StoreEntries)
		gauge("samplealign_store_bytes", "FASTA bytes held in the on-disk store.", persist.StoreBytes)
		counter("samplealign_store_evictions_total", "Results evicted from the on-disk store.", persist.StoreEvictions)
		gauge("samplealign_journal_records", "Records in the write-ahead journal.", persist.JournalRecords)
		gauge("samplealign_journal_bytes", "Size of the write-ahead journal.", persist.JournalBytes)
		counter("samplealign_journal_fsyncs_total", "Journal write+fsync cycles (one per commit group).", persist.JournalFsyncs)
		counter("samplealign_journal_flushed_records_total", "Journal records made durable by group commits.", persist.JournalFlushedRecords)
	}
	m.QueueWait.WritePrometheus(&b, "samplealign_job_queue_wait_seconds",
		"Seconds from submit to leaving the queue, by outcome (dispatched, canceled, coalesced).", "outcome")
	m.RunSeconds.Snapshot().WritePrometheus(&b, "samplealign_job_run_seconds",
		"Execution wall-clock seconds per job.")
	m.Stages.WritePrometheus(&b, "samplealign_stage_seconds",
		"Wall-clock seconds per pipeline stage, one observation per traced span.", "stage")
	m.GroupRecords.Snapshot().WritePrometheus(&b, "samplealign_journal_group_records",
		"Records per journal commit group (each group costs one fsync).")
	return b.String()
}

func writeMetricLine(b *strings.Builder, name string, v int64) {
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(v, 10))
	b.WriteByte('\n')
}
