package serve

import (
	"io"
	"net/http"
	"strings"

	"repro/internal/dpkern"
	"repro/internal/stats"
)

// WorkerMetrics is the rank-local metric set a samplealignd worker
// daemon exposes on its own -metrics-addr listener (the same
// separate-listener pattern as -pprof-addr): jobs served, per-stage
// wall-clock for this rank's shard of the pipeline, and the
// process-wide DP-kernel dispatch tallies. A nil *WorkerMetrics is a
// valid no-op sink, so the daemon's hot path never branches on whether
// metrics are enabled.
type WorkerMetrics struct {
	Jobs       stats.Counter // rank jobs started
	JobsFailed stats.Counter // rank jobs that ended in error (cancellation included)
	Stages     *stats.LabeledHistograms
}

// NewWorkerMetrics builds the metric set with the default latency
// bounds.
func NewWorkerMetrics() *WorkerMetrics {
	return &WorkerMetrics{Stages: stats.MustLabeledHistograms(stats.DefaultLatencyBounds())}
}

// ObserveStage feeds one finished span into the rank-local stage
// histograms if its name is a canonical pipeline stage. Shaped to plug
// into obs.Options.OnSpanEnd; safe on a nil receiver.
func (m *WorkerMetrics) ObserveStage(name string, seconds float64) {
	if m == nil {
		return
	}
	if pipelineStages[name] {
		m.Stages.Observe(name, seconds)
	}
}

// JobStarted counts one rank job beginning. Safe on a nil receiver.
func (m *WorkerMetrics) JobStarted() {
	if m == nil {
		return
	}
	m.Jobs.Inc()
}

// JobFinished counts one rank job's outcome. Safe on a nil receiver.
func (m *WorkerMetrics) JobFinished(ok bool) {
	if m == nil {
		return
	}
	if !ok {
		m.JobsFailed.Inc()
	}
}

// Render writes the Prometheus text exposition, folding in the
// process-wide kernel dispatch tallies sampled at call time.
func (m *WorkerMetrics) Render() string {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		b.WriteString("# HELP " + name + " " + help + "\n")
		b.WriteString("# TYPE " + name + " counter\n")
		writeMetricLine(&b, name, v)
	}
	counter("samplealign_worker_jobs_total", "Rank jobs started on this worker.", m.Jobs.Value())
	counter("samplealign_worker_jobs_failed_total", "Rank jobs that ended in error on this worker.", m.JobsFailed.Value())
	tally := dpkern.TallySnapshot()
	counter("samplealign_kernel_striped_calls_total", "DP kernel calls served by the striped integer path.", tally.Striped)
	counter("samplealign_kernel_escape_calls_total", "DP kernel calls that escaped to the scalar-exact path.", tally.Escaped)
	m.Stages.WritePrometheus(&b, "samplealign_stage_seconds",
		"Wall-clock seconds per pipeline stage on this rank, one observation per traced span.", "stage")
	return b.String()
}

// Handler serves the exposition at /metrics (plus a bare /healthz), for
// mounting on a dedicated listener via obs.Serve.
func (m *WorkerMetrics) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, m.Render())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}
