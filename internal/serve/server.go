// Package serve turns the Sample-Align-D pipeline into a long-running
// alignment service: a bounded asynchronous job queue with admission
// control, a content-addressed LRU result cache, pluggable executors
// (in-process ranks by default, a pre-connected TCP rank cluster
// optionally) and an HTTP/JSON API (see Handler).
//
// Lifecycle of a job: Submit canonicalizes the input and options,
// consults the cache (a hit completes the job instantly), applies
// admission control (full queue ⇒ ErrOverloaded, which the HTTP layer
// maps to 429), and enqueues. A fixed pool of dispatchers executes
// queued jobs FIFO; cancellation — explicit, caller deadline, or client
// disconnect on the synchronous endpoint — propagates through the job's
// context into the rank world via the core/mpi context plumbing, so a
// cancelled job stops consuming workers mid-alignment.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bio"
	"repro/internal/fasta"
	"repro/internal/msa"
)

// Errors the HTTP layer maps to status codes.
var (
	ErrOverloaded = errors.New("serve: queue full, try again later") // → 429
	ErrClosed     = errors.New("serve: server is shutting down")     // → 503
	ErrNotFound   = errors.New("serve: no such job")                 // → 404
)

// BadRequestError marks client errors (malformed input or options) so
// the HTTP layer can answer 400 instead of 500.
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

func badRequest(format string, args ...any) error {
	return &BadRequestError{Err: fmt.Errorf(format, args...)}
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Config parameterises a Server. The zero value is usable: in-process
// executor, 2 concurrent jobs, 64 queued, 256-entry/64 MiB cache.
type Config struct {
	Defaults      Options  // server-side option defaults for requests
	Limits        Limits   // per-job procs/workers bounds
	MaxConcurrent int      // jobs aligning at once (default 2)
	MaxQueued     int      // jobs waiting beyond the running ones (default 64)
	CacheEntries  int      // result cache entry bound (default 256; -1 disables)
	CacheBytes    int64    // result cache byte bound (default 64 MiB; -1 unbounded)
	MaxJobs       int      // finished-job records retained for status (default 1024)
	Executor      Executor // default Inproc{}
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 1024
	}
	if c.Executor == nil {
		c.Executor = Inproc{}
	}
	return c
}

// Job is one submitted alignment. All mutable state is guarded by mu;
// done closes exactly once on reaching a terminal state.
type Job struct {
	ID        string
	Key       string // content address (cache key)
	Opts      Resolved
	Submitted time.Time
	NumSeqs   int

	seqs   []bio.Sequence
	ctx    context.Context
	cancel context.CancelCauseFunc
	done   chan struct{}

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	cached   bool
	result   *Result
	err      error
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is an immutable snapshot of a job for status reporting.
type JobView struct {
	ID        string     `json:"id"`
	State     State      `json:"state"`
	Cached    bool       `json:"cached"`
	Key       string     `json:"cache_key"`
	NumSeqs   int        `json:"num_seqs"`
	Opts      Resolved   `json:"options"`
	Submitted time.Time  `json:"submitted_at"`
	Started   *time.Time `json:"started_at,omitempty"`
	Finished  *time.Time `json:"finished_at,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    *Result    `json:"result,omitempty"`
}

// View snapshots the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		State:     j.state,
		Cached:    j.cached,
		Key:       j.Key,
		NumSeqs:   j.NumSeqs,
		Opts:      j.Opts,
		Submitted: j.Submitted,
		Result:    j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// result returns the stored result if the job is done.
func (j *Job) resultIfDone() (*Result, State, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state, j.err
}

// summaryOf strips the payload from a result for the job record.
func summaryOf(res *Result) *Result {
	summary := *res
	summary.FASTA = nil
	return &summary
}

// resultPayload returns the aligned FASTA for a done job: from the job
// record when caching is off, from the cache otherwise. ok is false
// when the cache has since evicted the entry.
func (s *Server) resultPayload(job *Job, res *Result) ([]byte, bool) {
	if res.FASTA != nil {
		return res.FASTA, true
	}
	if cres, ok := s.cache.Get(job.Key); ok {
		return cres.FASTA, true
	}
	return nil, false
}

// Server owns the queue, the dispatcher pool, the cache and the job
// table. Construct with New, serve HTTP via Handler, stop with Close.
type Server struct {
	cfg     Config
	cache   *Cache
	metrics *Metrics
	started time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu     sync.Mutex
	closed bool
	queued int // jobs admitted but not yet picked up
	active int // jobs currently executing
	jobs   map[string]*Job
	order  []string // submission order, for bounded retention
}

// New builds and starts a Server (its dispatcher pool runs until Close).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	// CacheEntries < 0 disables caching entirely, whatever the byte
	// bound says (a negative byte bound alone only means "no byte cap").
	cacheEntries, cacheBytes := cfg.CacheEntries, cfg.CacheBytes
	if cacheEntries < 0 {
		cacheEntries, cacheBytes = -1, -1
	}
	s := &Server{
		cfg:        cfg,
		cache:      NewCache(cacheEntries, cacheBytes),
		metrics:    NewMetrics(),
		started:    time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, cfg.MaxQueued),
		jobs:       make(map[string]*Job),
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go s.dispatch()
	}
	return s
}

// Close cancels every queued and running job and waits for the
// dispatcher pool to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()
	close(s.queue)
	s.wg.Wait()
}

func newJobID() string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "j" + hex.EncodeToString(b[:])
}

// Submit validates, cache-checks and enqueues one job. The returned job
// may already be terminal (cache hit). ErrOverloaded means the queue is
// at MaxQueued; *BadRequestError wraps client mistakes.
func (s *Server) Submit(seqs []bio.Sequence, o Options) (*Job, error) {
	// A fixed-size cluster's rank count enters resolution itself, so
	// limits and the cache key both see the procs the job actually uses.
	opts, err := resolve(o, s.cfg.Defaults, s.cfg.Limits, s.cfg.Executor.FixedProcs())
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}
	if len(seqs) == 0 {
		return nil, badRequest("no sequences in input")
	}
	seen := make(map[string]bool, len(seqs))
	for _, sq := range seqs {
		if seen[sq.ID] {
			return nil, badRequest("duplicate sequence id %q (ids must be unique)", sq.ID)
		}
		seen[sq.ID] = true
		if len(sq.Data) == 0 {
			return nil, badRequest("sequence %q is empty", sq.ID)
		}
	}
	now := time.Now()
	job := &Job{
		ID:        newJobID(),
		Key:       CacheKey(seqs, opts),
		Opts:      opts,
		Submitted: now,
		NumSeqs:   len(seqs),
		done:      make(chan struct{}),
	}

	// Content-addressed fast path: identical input + options were
	// already aligned; answer from the cache without queueing. The job
	// record keeps only the summary — the payload stays in the cache,
	// so its byte bound governs result memory (see resultPayload).
	if res, ok := s.cache.Get(job.Key); ok {
		s.metrics.Submitted.Inc()
		s.metrics.CacheHits.Inc()
		job.state = StateDone
		job.cached = true
		job.result = summaryOf(res)
		job.started, job.finished = now, now
		close(job.done)
		s.remember(job)
		s.metrics.Completed.Inc()
		return job, nil
	}

	jctx, jcancel := context.WithCancelCause(s.baseCtx)
	cancelAll := jcancel
	if opts.Timeout > 0 {
		// The caller's deadline counts from submission: time spent
		// queued is the server's problem, not extra budget.
		dctx, dcancel := context.WithDeadlineCause(jctx, now.Add(opts.Timeout),
			fmt.Errorf("job deadline (%v) exceeded", opts.Timeout))
		jctx = dctx
		cancelAll = func(cause error) { dcancel(); jcancel(cause) }
	}
	job.ctx, job.cancel = jctx, cancelAll
	job.seqs = seqs
	job.state = StateQueued

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		jcancel(ErrClosed)
		return nil, ErrClosed
	}
	if s.queued >= s.cfg.MaxQueued {
		s.mu.Unlock()
		s.metrics.Rejected.Inc()
		jcancel(ErrOverloaded)
		return nil, ErrOverloaded
	}
	s.queued++
	s.rememberLocked(job)
	// Send under the lock: capacity MaxQueued ≥ queued means this never
	// blocks, and holding mu makes the send safe against Close closing
	// the channel in between.
	s.queue <- job
	s.mu.Unlock()
	// Counted only after admission: a 429 is neither an accepted job
	// nor a cache miss that ran.
	s.metrics.Submitted.Inc()
	s.metrics.CacheMisses.Inc()
	return job, nil
}

// remember stores the job record, pruning the oldest terminal jobs
// beyond MaxJobs.
func (s *Server) remember(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rememberLocked(job)
}

func (s *Server) rememberLocked(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	if len(s.order) <= s.cfg.MaxJobs {
		return
	}
	kept := make([]string, 0, len(s.order))
	excess := len(s.order) - s.cfg.MaxJobs
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if excess > 0 && id != job.ID {
			j.mu.Lock()
			terminal := j.state.Terminal()
			j.mu.Unlock()
			if terminal { // live jobs are never dropped, whatever the cap
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a queued or running job. It returns
// ErrNotFound for unknown IDs and reports whether the job was still
// live (false: it had already finished).
func (s *Server) Cancel(id string, cause error) (bool, error) {
	j, ok := s.Job(id)
	if !ok {
		return false, ErrNotFound
	}
	return s.cancelJob(j, cause), nil
}

func (s *Server) cancelJob(j *Job, cause error) bool {
	if cause == nil {
		cause = context.Canceled
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	wasQueued := j.state == StateQueued
	if wasQueued {
		// Still waiting: finalize here; the dispatcher will skip it.
		j.state = StateCanceled
		j.err = cause
		j.finished = time.Now()
		j.seqs = nil // drop the input now, not at record pruning
	}
	j.mu.Unlock()
	j.cancel(cause) // unwinds the rank world if running
	if wasQueued {
		close(j.done)
		s.metrics.Canceled.Inc()
	}
	return true
}

// dispatch is one worker of the executor pool.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for job := range s.queue {
		s.mu.Lock()
		s.queued--
		s.active++
		s.mu.Unlock()
		s.run(job)
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}
}

// run executes one dequeued job to a terminal state.
func (s *Server) run(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued { // cancelled while waiting
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	job.mu.Unlock()
	s.metrics.QueueWait.Observe(job.started.Sub(job.Submitted).Seconds())

	var (
		res *Result
		err error
	)
	if err = job.ctx.Err(); err == nil {
		var aln *msa.Alignment
		var rep ExecReport
		aln, rep, err = s.cfg.Executor.Align(job.ctx, job.seqs, job.Opts)
		if err == nil {
			res = &Result{
				FASTA:     []byte(fasta.FormatString(aln.Seqs)),
				NumSeqs:   aln.NumSeqs(),
				Width:     aln.Width(),
				Procs:     rep.Procs,
				BytesSent: rep.BytesSent,
				BytesRecv: rep.BytesRecv,
			}
		}
	}

	job.mu.Lock()
	job.finished = time.Now()
	job.seqs = nil // the input is dead weight once aligned
	elapsed := job.finished.Sub(job.started)
	switch {
	case err == nil:
		res.Elapsed = elapsed
		job.state = StateDone
		// With caching on, the job record keeps only the summary and
		// the payload lives in the cache, whose entry/byte bounds then
		// actually bound result memory; up to MaxJobs pinned payloads
		// would bypass them. With caching off the job is the only home
		// the payload has.
		if s.cache.Enabled() {
			job.result = summaryOf(res)
		} else {
			job.result = res
		}
	case wasCanceled(job.ctx, err):
		job.state = StateCanceled
		job.err = cancelCause(job.ctx, err)
	default:
		job.state = StateFailed
		job.err = err
	}
	state := job.state
	job.mu.Unlock()
	job.cancel(nil) // release the deadline timer
	close(job.done)

	s.metrics.RunSeconds.Observe(elapsed.Seconds())
	switch state {
	case StateDone:
		s.cache.Put(job.Key, res)
		s.metrics.Completed.Inc()
	case StateCanceled:
		s.metrics.Canceled.Inc()
	default:
		s.metrics.Failed.Inc()
	}
}

// wasCanceled decides whether err is the job's own cancellation (vs. a
// genuine alignment failure).
func wasCanceled(ctx context.Context, err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	// Executors surface cancellation in transport-specific clothing
	// (closed communicators, peer-death); trust the context's verdict.
	return ctx.Err() != nil
}

// cancelCause prefers the recorded cancellation cause over the bare
// context error, so status reports say *why* ("client disconnected",
// "job deadline (2s) exceeded") rather than just "context canceled".
func cancelCause(ctx context.Context, err error) error {
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		return cause
	}
	if err != nil {
		return err
	}
	return context.Canceled
}

// QueueStats is the health endpoint's view of the pool.
type QueueStats struct {
	Queued        int   `json:"queued"`
	Active        int   `json:"active"`
	MaxQueued     int   `json:"max_queued"`
	MaxConcurrent int   `json:"max_concurrent"`
	Jobs          int   `json:"jobs_tracked"`
	CacheEntries  int   `json:"cache_entries"`
	CacheBytes    int64 `json:"cache_bytes"`
}

// Stats snapshots the queue.
func (s *Server) Stats() QueueStats {
	s.mu.Lock()
	q, a, n := s.queued, s.active, len(s.jobs)
	s.mu.Unlock()
	return QueueStats{
		Queued:        q,
		Active:        a,
		MaxQueued:     s.cfg.MaxQueued,
		MaxConcurrent: s.cfg.MaxConcurrent,
		Jobs:          n,
		CacheEntries:  s.cache.Len(),
		CacheBytes:    s.cache.Bytes(),
	}
}
