// Package serve turns the Sample-Align-D pipeline into a long-running
// alignment service: a bounded asynchronous job queue with admission
// control, a content-addressed result cache (an in-memory LRU backed
// by an optional on-disk store), a write-ahead submit journal with
// crash recovery, pluggable executors (in-process ranks by default, a
// pre-connected TCP rank cluster optionally) and an HTTP/JSON API (see
// Handler).
//
// Lifecycle of a job: Submit canonicalizes the input and options,
// consults the cache tiers (a hit completes the job instantly),
// coalesces onto an identical in-flight computation if one exists,
// applies admission control (full queue ⇒ ErrOverloaded, which the
// HTTP layer maps to 429), journals the submission, and enqueues. A
// fixed pool of dispatchers executes queued flights FIFO; every job
// attached to a flight completes with its result. Cancellation —
// explicit, caller deadline, or client disconnect on the synchronous
// endpoint — detaches one job; only when the last waiter detaches does
// it propagate through the flight's context into the rank world, so a
// thundering herd sharing one computation cannot be killed by a single
// impatient client.
//
// With Config.DataDir set, every accepted job is journaled before it
// can run and every finished result is persisted content-addressed on
// disk: a restart replays the journal, re-enqueues unfinished jobs and
// restores finished ones, and large results are streamed from disk
// instead of buffered (see the store package).
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/bio"
	"repro/internal/events"
	"repro/internal/fasta"
	"repro/internal/msa"
	"repro/internal/obs"
	"repro/internal/store"
)

// Errors the HTTP layer maps to status codes.
var (
	ErrOverloaded = errors.New("serve: queue full, try again later") // → 429
	ErrClosed     = errors.New("serve: server is shutting down")     // → 503
	ErrNotFound   = errors.New("serve: no such job")                 // → 404

	// ErrInterrupted is the cancellation cause Close applies to jobs
	// still queued or running when the server stops (a drain window
	// that expired, or no drain at all). Jobs killed with this cause
	// are journaled as interrupted, not canceled, so the next boot
	// re-enqueues them like crash victims instead of reporting them
	// terminally canceled.
	ErrInterrupted = errors.New("serve: interrupted by shutdown")
)

// BadRequestError marks client errors (malformed input or options) so
// the HTTP layer can answer 400 instead of 500.
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

func badRequest(format string, args ...any) error {
	return &BadRequestError{Err: fmt.Errorf(format, args...)}
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Config parameterises a Server. The zero value is usable: in-process
// executor, 2 concurrent jobs, 64 queued, 256-entry/64 MiB cache, no
// persistence.
type Config struct {
	Defaults      Options  // server-side option defaults for requests
	Limits        Limits   // per-job procs/workers bounds
	MaxConcurrent int      // jobs aligning at once (default 2)
	MaxQueued     int      // flights waiting beyond the running ones (default 64)
	CacheEntries  int      // result cache entry bound (default 256; -1 disables)
	CacheBytes    int64    // result cache byte bound (default 64 MiB; -1 unbounded)
	MaxJobs       int      // finished-job records retained for status (default 1024)
	Executor      Executor // default Inproc{}

	// DataDir enables durability: a write-ahead submit journal
	// (replayed on startup) plus a content-addressed on-disk result
	// store that backs the in-memory cache as a second tier and serves
	// streaming result reads. Empty = fully in-memory (byte-identical
	// behaviour to a server without persistence).
	DataDir      string
	StoreEntries int   // disk store entry bound (default 4096; -1 disables the disk result tier)
	StoreBytes   int64 // disk store byte bound (default 1 GiB; -1 unbounded)

	// JournalBatchBytes and JournalBatchWait tune the journal's group
	// commit (store.JournalOptions): the framed bytes one commit group
	// accumulates before spilling to the next, and how long a group
	// leader waits for followers before fsyncing. Zero means the store
	// defaults (1 MiB, no wait — batching then comes purely from
	// appenders piling up behind in-flight flushes).
	JournalBatchBytes int
	JournalBatchWait  time.Duration

	// Logger receives structured operational logs (job lifecycle,
	// journal I/O errors, recovery notes), keyed by job/trace IDs. When
	// nil, the legacy Logf sink is adapted; with neither, silent.
	Logger *slog.Logger
	Logf   func(format string, args ...any) // legacy printf sink; used only when Logger is nil

	// NoTrace disables per-job span tracing: no tracer enters the
	// pipeline context (the disabled path costs one context lookup),
	// /v1/jobs/{id}/trace answers 404 and the per-stage histograms stay
	// empty. Alignment bytes are identical either way.
	NoTrace bool
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 1024
	}
	if c.Executor == nil {
		c.Executor = Inproc{}
	}
	if c.StoreEntries == 0 {
		c.StoreEntries = 4096
	}
	if c.StoreBytes == 0 {
		c.StoreBytes = 1 << 30
	}
	return c
}

// flight is one alignment computation: the input, the options it runs
// under, and every job waiting on it. Multiple concurrent submissions
// of the same content address attach to one flight (request
// coalescing), so identical work runs once. state and jobs are guarded
// by Server.mu.
type flight struct {
	key      string
	trace    string // trace ID: one per computation, shared by coalesced jobs
	seqs     []bio.Sequence
	opts     Resolved
	ctx      context.Context
	cancel   context.CancelCauseFunc
	bus      *events.Bus[Event] // live progress stream, shared by coalesced jobs
	enqueued time.Time          // admission time, for queue-age accounting

	state      State
	jobs       []*Job
	queuedSlot bool        // holds one of the MaxQueued admission slots
	tracer     *obs.Tracer // live tracer while running (guarded by Server.mu); nil when queued, finished or NoTrace
}

// Job is one submitted alignment request. Jobs sharing a flight
// complete together; each still has its own ID, deadline and
// cancellation. Mutable state is guarded by mu; done closes exactly
// once on reaching a terminal state.
type Job struct {
	ID        string
	Key       string // content address (cache key)
	Trace     string // trace ID of the computation this job rides (may be empty)
	Opts      Resolved
	Submitted time.Time
	NumSeqs   int

	fl   *flight // guarded by Server.mu; nil once detached or terminal
	done chan struct{}
	bus  *events.Bus[Event] // the flight's event stream; immutable once the job is visible; nil for journal-restored terminal jobs

	mu        sync.Mutex
	state     State
	started   time.Time
	finished  time.Time
	cached    bool
	coalesced bool
	recovered bool
	timer     *time.Timer // pending deadline, stopped at finalization
	result    *Result
	err       error
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is an immutable snapshot of a job for status reporting.
type JobView struct {
	ID        string     `json:"id"`
	State     State      `json:"state"`
	Cached    bool       `json:"cached"`
	Coalesced bool       `json:"coalesced,omitempty"` // attached to an identical in-flight job
	Recovered bool       `json:"recovered,omitempty"` // re-enqueued by journal replay after a restart
	Key       string     `json:"cache_key"`
	TraceID   string     `json:"trace_id,omitempty"` // span tree at /v1/jobs/{id}/trace once done
	NumSeqs   int        `json:"num_seqs"`
	Opts      Resolved   `json:"options"`
	Submitted time.Time  `json:"submitted_at"`
	Started   *time.Time `json:"started_at,omitempty"`
	Finished  *time.Time `json:"finished_at,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    *Result    `json:"result,omitempty"`
}

// View snapshots the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		State:     j.state,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		Recovered: j.recovered,
		Key:       j.Key,
		TraceID:   j.Trace,
		NumSeqs:   j.NumSeqs,
		Opts:      j.Opts,
		Submitted: j.Submitted,
		Result:    j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// result returns the stored result if the job is done.
func (j *Job) resultIfDone() (*Result, State, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state, j.err
}

// summaryOf strips the payload from a result for the job record.
func summaryOf(res *Result) *Result {
	summary := *res
	summary.FASTA = nil
	return &summary
}

// retainedResult decides what the job record keeps: only the summary
// when a cache tier (memory or disk) owns the payload — their bounds
// then govern result memory — or the full result when the job is the
// payload's only home.
func (s *Server) retainedResult(res *Result) *Result {
	if s.cache.Enabled() || s.results != nil {
		return summaryOf(res)
	}
	return res
}

// resultPayload returns the aligned FASTA for a done job: from the job
// record when no cache tier holds it, else from the memory cache or
// the disk store. ok is false when every tier has since evicted it.
func (s *Server) resultPayload(job *Job, res *Result) ([]byte, bool) {
	if res != nil && res.FASTA != nil {
		return res.FASTA, true
	}
	if full, ok := s.lookupResult(job.Key); ok {
		return full.FASTA, true
	}
	return nil, false
}

// lookupResult consults the cache tiers: the in-memory LRU first, then
// the disk store (promoting a disk hit into memory, bounded by the
// memory cache's own limits).
func (s *Server) lookupResult(key string) (*Result, bool) {
	if res, ok := s.cache.Get(key); ok {
		return res, true
	}
	if s.results == nil {
		return nil, false
	}
	meta, payload, ok := s.results.Get(key)
	if !ok {
		return nil, false
	}
	res, err := resultFromMeta(meta, payload)
	if err != nil {
		s.log.Warn("result meta unreadable", "key", key, "err", err)
		return nil, false
	}
	s.metrics.StoreHits.Inc()
	s.cache.Put(key, res)
	return res, true
}

// Server owns the queue, the dispatcher pool, the cache tiers, the
// journal and the job table. Construct with New, serve HTTP via
// Handler, stop with Drain (optional) + Close.
type Server struct {
	cfg     Config
	cache   *Cache
	metrics *Metrics
	log     *slog.Logger
	started time.Time

	journal   *store.Journal
	results   *store.Results
	traces    *store.Results // finished span trees, keyed like results
	unlockDir func()
	recovery  RecoveryInfo

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond // signals fifo pushes and close
	closed   bool
	draining bool
	fifo     []*flight
	queued   int // flights admitted but not yet picked up
	active   int // flights currently executing
	inflight map[string]*flight
	jobs     map[string]*Job
	order    []string // submission order, for bounded retention
}

// New builds and starts a Server (its dispatcher pool runs until
// Close). With cfg.DataDir set it locks the directory, replays the
// journal — re-enqueueing unfinished jobs and restoring finished ones
// — and compacts it; the error is non-nil only for persistence setup
// failures.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	//lint:allow ctxflow server-lifetime root context, cancelled by (*Server).Close
	ctx, cancel := context.WithCancelCause(context.Background())
	// CacheEntries < 0 disables caching entirely, whatever the byte
	// bound says (a negative byte bound alone only means "no byte cap").
	cacheEntries, cacheBytes := cfg.CacheEntries, cfg.CacheBytes
	if cacheEntries < 0 {
		cacheEntries, cacheBytes = -1, -1
	}
	s := &Server{
		cfg:        cfg,
		cache:      NewCache(cacheEntries, cacheBytes),
		metrics:    NewMetrics(),
		log:        resolveLogger(cfg.Logger, cfg.Logf),
		started:    time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
		inflight:   make(map[string]*flight),
		jobs:       make(map[string]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.DataDir != "" {
		if err := s.openPersistence(); err != nil {
			cancel(nil)
			return nil, err
		}
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go s.dispatch()
	}
	return s, nil
}

// Drain stops admission — new submissions fail with ErrClosed (HTTP
// 503) while status and result reads keep working — and waits up to
// timeout for every queued and running job to finish. It reports
// whether the server drained fully; leftovers are canceled by Close.
// timeout <= 0 marks draining without waiting.
func (s *Server) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.metrics.Draining.Set(1)
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		idle := s.queued == 0 && s.active == 0
		s.mu.Unlock()
		if idle {
			return true
		}
		if timeout <= 0 || !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close cancels every queued and running job, waits for the dispatcher
// pool to drain, journals a clean-shutdown record and releases the
// data directory. For a graceful stop call Drain first.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	// Shutdown is the cancellation cause: every job this kills is
	// journaled as interrupted (see journalFinish), so the next boot
	// re-enqueues it like a crash victim.
	s.baseCancel(ErrInterrupted)
	s.wg.Wait()
	if s.journal != nil {
		s.journalAppend(store.Record{Type: store.RecShutdown, Time: time.Now()})
		if err := s.journal.Close(); err != nil {
			s.log.Warn("closing journal", "err", err)
		}
	}
	if s.unlockDir != nil {
		s.unlockDir()
		s.unlockDir = nil
	}
}

func randomID(prefix string) string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return prefix + hex.EncodeToString(b[:])
}

func newJobID() string   { return randomID("j") }
func newTraceID() string { return randomID("t") }

// Submit validates, cache-checks, coalesces and enqueues one job. The
// returned job may already be terminal (cache or store hit) or riding
// an existing flight (identical in-flight submission). ErrOverloaded
// means the queue is at MaxQueued; *BadRequestError wraps client
// mistakes.
func (s *Server) Submit(seqs []bio.Sequence, o Options) (*Job, error) {
	// Refuse everything — cache hits included — once draining or
	// closed: a drained server must stop mutating its job table and
	// journal (a record landing after the shutdown marker would make
	// the next boot misreport a crash).
	s.mu.Lock()
	stopped := s.closed || s.draining
	s.mu.Unlock()
	if stopped {
		return nil, ErrClosed
	}
	// A fixed-size cluster's rank count enters resolution itself, so
	// limits and the cache key both see the procs the job actually uses.
	opts, err := resolve(o, s.cfg.Defaults, s.cfg.Limits, s.cfg.Executor.FixedProcs())
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}
	if len(seqs) == 0 {
		return nil, badRequest("no sequences in input")
	}
	seen := make(map[string]bool, len(seqs))
	for _, sq := range seqs {
		if seen[sq.ID] {
			return nil, badRequest("duplicate sequence id %q (ids must be unique)", sq.ID)
		}
		seen[sq.ID] = true
		if len(sq.Data) == 0 {
			return nil, badRequest("sequence %q is empty", sq.ID)
		}
	}
	now := time.Now()
	job := &Job{
		ID:        newJobID(),
		Key:       CacheKey(seqs, opts),
		Opts:      opts,
		Submitted: now,
		NumSeqs:   len(seqs),
		done:      make(chan struct{}),
	}

	// Content-addressed fast path: identical input + options were
	// already aligned; answer from the cache tiers without queueing.
	// The job record keeps only the summary — the payload stays in the
	// cache/store, so their bounds govern result memory.
	if res, ok := s.lookupResult(job.Key); ok {
		s.metrics.Submitted.Inc()
		s.metrics.CacheHits.Inc()
		job.Trace = res.TraceID // the original computation's trace
		job.state = StateDone
		job.cached = true
		job.result = s.retainedResult(res)
		job.started, job.finished = now, now
		// A one-event stream so /events subscribers of a cache-hit job
		// still replay a terminal event instead of hanging.
		job.bus = s.newEventBus()
		s.publish(job.bus, Event{Type: EventDone, Job: job.ID, Trace: job.Trace, Cached: true})
		job.bus.Close()
		close(job.done)
		s.remember(job)
		s.metrics.Completed.Inc()
		s.journalTerminalJob(job)
		s.log.Info("job served from cache", "job", job.ID, "key", job.Key, "trace", job.Trace)
		return job, nil
	}

	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil, ErrClosed
	}

	// In-flight coalescing: an identical computation is already queued
	// or running; attach to it instead of queueing a duplicate. The
	// attached job takes no queue slot — it rides the existing one.
	if fl := s.inflight[job.Key]; fl != nil {
		job.coalesced = true
		job.Trace = fl.trace
		job.fl = fl
		job.bus = fl.bus
		fl.jobs = append(fl.jobs, job)
		job.state = StateQueued
		running := fl.state == StateRunning
		if running {
			job.state = StateRunning
			job.started = now
		}
		s.rememberLocked(job)
		s.mu.Unlock()
		s.metrics.Submitted.Inc()
		s.metrics.Coalesced.Inc()
		if running {
			// Never queued: it attached straight to a running flight.
			// Riders attached while the flight waits are observed as
			// "dispatched" with everyone else when it starts.
			s.metrics.QueueWait.Observe("coalesced", now.Sub(job.Submitted).Seconds())
		}
		s.publish(job.bus, Event{Type: EventQueued, Job: job.ID, Trace: job.Trace, Coalesced: true})
		s.journalSubmit(job, seqs)
		s.log.Info("job coalesced onto in-flight computation",
			"job", job.ID, "key", job.Key, "trace", job.Trace)
		s.armDeadline(job, now)
		return job, nil
	}

	if s.queued >= s.cfg.MaxQueued {
		s.mu.Unlock()
		s.metrics.Rejected.Inc()
		return nil, ErrOverloaded
	}
	fctx, fcancel := context.WithCancelCause(s.baseCtx)
	fl := &flight{
		key:        job.Key,
		trace:      newTraceID(),
		seqs:       seqs,
		opts:       opts,
		ctx:        fctx,
		cancel:     fcancel,
		bus:        s.newEventBus(),
		enqueued:   now,
		state:      StateQueued,
		jobs:       []*Job{job},
		queuedSlot: true,
	}
	job.fl = fl
	job.Trace = fl.trace
	job.bus = fl.bus
	job.state = StateQueued
	s.inflight[job.Key] = fl
	s.queued++
	s.rememberLocked(job)
	s.mu.Unlock()

	s.metrics.Submitted.Inc()
	s.metrics.CacheMisses.Inc()
	s.publish(fl.bus, Event{Type: EventQueued, Job: job.ID, Trace: fl.trace})
	s.log.Info("job accepted", "job", job.ID, "key", job.Key, "trace", fl.trace,
		"procs", opts.Procs, "aligner", opts.Aligner, "num_seqs", job.NumSeqs)
	// Journal before the flight can be dispatched: once the caller sees
	// an accepted job, a crash must not lose it.
	s.journalSubmit(job, seqs)

	s.mu.Lock()
	switch {
	case fl.state != StateQueued:
		// Canceled while the submit record was being journaled; it was
		// never in the fifo, so nothing to remove.
		s.mu.Unlock()
	case s.closed:
		fl.state = StateCanceled
		fl.queuedSlot = false
		s.queued--
		if s.inflight[fl.key] == fl {
			delete(s.inflight, fl.key)
		}
		jobs := fl.jobs
		fl.jobs = nil
		s.mu.Unlock()
		// The job was accepted and journaled, then the shutdown raced
		// in: that is an interruption, not a caller cancel — the next
		// boot re-enqueues it like every other shutdown casualty.
		for _, w := range jobs {
			s.finalizeJob(w, StateCanceled, nil, ErrInterrupted, time.Now())
		}
		fl.bus.Close()
		fl.cancel(ErrInterrupted)
	default:
		s.fifo = append(s.fifo, fl)
		s.cond.Signal()
		s.mu.Unlock()
	}
	s.armDeadline(job, now)
	return job, nil
}

// armDeadline schedules the job's deadline, counted from `from` (the
// submission — queueing time is the server's problem, not extra
// budget; recovered jobs restart their budget at replay).
func (s *Server) armDeadline(job *Job, from time.Time) {
	d := job.Opts.Timeout
	if d <= 0 {
		return
	}
	cause := fmt.Errorf("job deadline (%v) exceeded", d)
	fire := time.Until(from.Add(d))
	if fire < 0 {
		fire = 0
	}
	job.mu.Lock()
	if !job.state.Terminal() {
		job.timer = time.AfterFunc(fire, func() { s.cancelJob(job, cause) })
	}
	job.mu.Unlock()
}

// remember stores the job record, pruning the oldest terminal jobs
// beyond MaxJobs.
func (s *Server) remember(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rememberLocked(job)
}

func (s *Server) rememberLocked(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	if len(s.order) <= s.cfg.MaxJobs {
		return
	}
	kept := make([]string, 0, len(s.order))
	excess := len(s.order) - s.cfg.MaxJobs
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if excess > 0 && id != job.ID {
			j.mu.Lock()
			terminal := j.state.Terminal()
			j.mu.Unlock()
			if terminal { // live jobs are never dropped, whatever the cap
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a queued or running job. It returns
// ErrNotFound for unknown IDs and reports whether the job was still
// live (false: it had already finished).
func (s *Server) Cancel(id string, cause error) (bool, error) {
	j, ok := s.Job(id)
	if !ok {
		return false, ErrNotFound
	}
	return s.cancelJob(j, cause), nil
}

// cancelJob detaches one job from its flight and finalizes it as
// canceled. A queued flight whose last waiter detaches is removed from
// the FIFO immediately (it never starts); a running one has its
// context canceled, unwinding the rank world — but only when no other
// coalesced waiter still wants the result.
func (s *Server) cancelJob(j *Job, cause error) bool {
	if cause == nil {
		cause = context.Canceled
	}
	now := time.Now()
	s.mu.Lock()
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		s.mu.Unlock()
		return false
	}
	wasQueued := j.state == StateQueued
	fl := j.fl
	j.fl = nil
	var lastDetach, flightCanceled bool
	if fl != nil {
		for i, w := range fl.jobs {
			if w == j {
				fl.jobs = append(fl.jobs[:i], fl.jobs[i+1:]...)
				break
			}
		}
		if len(fl.jobs) == 0 && !fl.state.Terminal() {
			lastDetach = true
			if s.inflight[fl.key] == fl {
				delete(s.inflight, fl.key)
			}
			if fl.state == StateQueued {
				// Still waiting: pull it out of the FIFO so it never
				// occupies a dispatcher, and free its admission slot —
				// unless a dispatcher already popped it (the slot is
				// gone and run() will skip the now-canceled flight).
				fl.state = StateCanceled
				flightCanceled = true
				if fl.queuedSlot {
					for i, qf := range s.fifo {
						if qf == fl {
							s.fifo = append(s.fifo[:i], s.fifo[i+1:]...)
							break
						}
					}
					fl.queuedSlot = false
					s.queued--
				}
				fl.seqs = nil
			}
		}
	}
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	j.state = StateCanceled
	j.err = cause
	j.finished = now
	j.mu.Unlock()
	s.mu.Unlock()
	if lastDetach {
		fl.cancel(cause) // unwinds the rank world if running
	}
	if wasQueued {
		s.metrics.QueueWait.Observe("canceled", now.Sub(j.Submitted).Seconds())
	}
	s.publish(j.bus, Event{Type: EventCanceled, Job: j.ID, Trace: j.Trace, Error: cause.Error()})
	if flightCanceled {
		// The flight died in the queue: no dispatcher will ever run it,
		// so the stream ends here.
		fl.bus.Close()
	}
	close(j.done)
	s.metrics.Canceled.Inc()
	s.journalFinish(j.ID, j.Key, StateCanceled, cause, nil, now)
	s.log.Info("job canceled", "job", j.ID, "key", j.Key, "trace", j.Trace, "cause", cause)
	return true
}

// dispatch is one worker of the executor pool.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.fifo) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.fifo) == 0 { // closed and fully drained
			s.mu.Unlock()
			return
		}
		fl := s.fifo[0]
		s.fifo = s.fifo[1:]
		fl.queuedSlot = false
		s.queued--
		s.active++
		s.mu.Unlock()
		s.run(fl)
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}
}

// run executes one dequeued flight to a terminal state and fans the
// outcome out to every job still attached.
func (s *Server) run(fl *flight) {
	s.mu.Lock()
	if fl.state != StateQueued { // canceled between push and pop
		s.mu.Unlock()
		return
	}
	fl.state = StateRunning
	jobs := append([]*Job(nil), fl.jobs...)
	s.mu.Unlock()

	started := time.Now()
	startRecs := make([]store.Record, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		if !j.state.Terminal() {
			j.state = StateRunning
			j.started = started
		}
		j.mu.Unlock()
		s.metrics.QueueWait.Observe("dispatched", started.Sub(j.Submitted).Seconds())
		startRecs = append(startRecs, store.Record{Type: store.RecStart, Job: j.ID, Key: fl.key, Time: started})
	}
	// One fsync covers every coalesced job's start record.
	s.journalAppendBatch(startRecs)
	s.publish(fl.bus, Event{Type: EventStarted, Trace: fl.trace})

	var (
		res *Result
		err error
	)
	if err = fl.ctx.Err(); err == nil {
		// Tracing: one tracer per flight, its ID shared by every
		// coalesced job. Finished spans feed the per-stage histograms and
		// the live event stream as they end; the whole tree is serialized
		// into the result below. The tracer rides the context — alignment
		// code sees only obs.Start calls, which are inert when NoTrace
		// leaves it out.
		ctx := fl.ctx
		var tr *obs.Tracer
		var trace []byte
		if !s.cfg.NoTrace {
			tr = obs.New(obs.Options{
				ID:        fl.trace,
				OnSpanEnd: s.metrics.ObserveStage,
				OnSpanClose: func(sc obs.SpanClose) {
					s.publishSpanEvent(fl.bus, fl.trace, sc)
				},
			})
			ctx = obs.WithTracer(ctx, tr)
			// Published under the lock so the trace endpoint can serve
			// in-progress snapshots of this flight.
			s.mu.Lock()
			fl.tracer = tr
			s.mu.Unlock()
		}
		jctx, root := obs.Start(ctx, "job")
		if root != nil {
			root.SetStr("executor", s.cfg.Executor.Name())
			root.SetStr("aligner", fl.opts.Aligner)
			root.SetStr("kernel", fl.opts.Kernel)
			root.SetInt("procs", int64(fl.opts.Procs))
			root.SetInt("num_seqs", int64(len(fl.seqs)))
		}
		var aln *msa.Alignment
		var rep ExecReport
		aln, rep, err = s.cfg.Executor.Align(jctx, fl.seqs, fl.opts)
		if root != nil {
			root.SetBool("ok", err == nil)
			root.End()
		}
		if tr != nil {
			doc := tr.Document()
			s.metrics.TraceDropped.Add(doc.DroppedSpans)
			if err == nil {
				if b, derr := json.Marshal(doc); derr == nil {
					trace = b
				}
			}
		}
		if err == nil {
			res = &Result{
				FASTA:     []byte(fasta.FormatString(aln.Seqs)),
				NumSeqs:   aln.NumSeqs(),
				Width:     aln.Width(),
				Procs:     rep.Procs,
				BytesSent: rep.BytesSent,
				BytesRecv: rep.BytesRecv,
				TraceID:   fl.trace,
				Trace:     trace,
			}
			s.metrics.CommSent.Add(rep.BytesSent)
			s.metrics.CommRecv.Add(rep.BytesRecv)
		}
	}
	finished := time.Now()
	elapsed := finished.Sub(started)

	var outcome State
	var cause error
	switch {
	case err == nil:
		res.Elapsed = elapsed
		outcome = StateDone
		// Persist before publishing completion: both tiers hold the
		// result by the time any waiter (or a new submission racing the
		// inflight-map removal below) looks for it.
		s.cache.Put(fl.key, res)
		s.storePut(fl.key, res)
		s.storePutTrace(fl.key, res)
	case wasCanceled(fl.ctx, err):
		outcome = StateCanceled
		cause = cancelCause(fl.ctx, err)
	default:
		outcome = StateFailed
		cause = err
	}

	s.mu.Lock()
	if s.inflight[fl.key] == fl {
		delete(s.inflight, fl.key)
	}
	fl.state = outcome
	fl.tracer = nil // live-snapshot window over; the trace now lives in the result
	jobs = fl.jobs
	fl.jobs = nil
	fl.seqs = nil
	s.mu.Unlock()

	s.metrics.RunSeconds.Observe(elapsed.Seconds())
	switch outcome {
	case StateDone:
		s.log.Info("flight finished", "key", fl.key, "trace", fl.trace,
			"elapsed", elapsed, "jobs", len(jobs))
	default:
		s.log.Warn("flight ended without result", "key", fl.key, "trace", fl.trace,
			"state", string(outcome), "elapsed", elapsed, "err", cause)
	}
	for _, j := range jobs {
		s.finalizeJob(j, outcome, res, cause, finished)
	}
	fl.bus.Close() // ends every /events stream still riding this flight
	fl.cancel(nil) // release the context resources
}

// finalizeJob moves one job to a terminal state (if it has not already
// been detached/canceled), publishes the outcome and journals it.
func (s *Server) finalizeJob(j *Job, outcome State, res *Result, cause error, finished time.Time) {
	j.mu.Lock()
	if j.state.Terminal() { // detached (canceled) while the flight ran
		j.mu.Unlock()
		return
	}
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	j.state = outcome
	j.finished = finished
	var summary *Result
	if outcome == StateDone {
		j.result = s.retainedResult(res)
		summary = summaryOf(res)
	} else {
		j.err = cause
	}
	j.mu.Unlock()
	s.mu.Lock()
	j.fl = nil
	s.mu.Unlock()
	// Publish before Done closes: an /events subscriber woken by Done
	// finds its terminal event already buffered (or synthesizes one).
	ev := Event{Job: j.ID, Trace: j.Trace}
	switch outcome {
	case StateDone:
		ev.Type = EventDone
	case StateCanceled:
		ev.Type = EventCanceled
	default:
		ev.Type = EventFailed
	}
	if cause != nil {
		ev.Error = cause.Error()
	}
	s.publish(j.bus, ev)
	close(j.done)
	s.journalFinish(j.ID, j.Key, outcome, cause, summary, finished)
	switch outcome {
	case StateDone:
		s.metrics.Completed.Inc()
	case StateCanceled:
		s.metrics.Canceled.Inc()
		if errors.Is(cause, ErrInterrupted) {
			s.metrics.Interrupted.Inc()
		}
	default:
		s.metrics.Failed.Inc()
	}
}

// wasCanceled decides whether err is the flight's own cancellation
// (vs. a genuine alignment failure).
func wasCanceled(ctx context.Context, err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	// Executors surface cancellation in transport-specific clothing
	// (closed communicators, peer-death); trust the context's verdict.
	return ctx.Err() != nil
}

// cancelCause prefers the recorded cancellation cause over the bare
// context error, so status reports say *why* ("client disconnected",
// "job deadline (2s) exceeded") rather than just "context canceled".
func cancelCause(ctx context.Context, err error) error {
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		return cause
	}
	if err != nil {
		return err
	}
	return context.Canceled
}

// QueueStats is the health endpoint's view of the pool.
type QueueStats struct {
	Queued          int     `json:"queued"`
	Active          int     `json:"active"`
	OldestQueuedAge float64 `json:"oldest_queued_age_s"` // seconds the head-of-line flight has waited; 0 with an empty queue
	MaxQueued       int     `json:"max_queued"`
	MaxConcurrent   int     `json:"max_concurrent"`
	Draining        bool    `json:"draining,omitempty"`
	Jobs            int     `json:"jobs_tracked"`
	CacheEntries    int     `json:"cache_entries"`
	CacheBytes      int64   `json:"cache_bytes"`
}

// Stats snapshots the queue.
func (s *Server) Stats() QueueStats {
	s.mu.Lock()
	q, a, n, d := s.queued, s.active, len(s.jobs), s.draining
	var oldest float64
	if len(s.fifo) > 0 { // FIFO order is admission order: the head waited longest
		oldest = time.Since(s.fifo[0].enqueued).Seconds()
	}
	s.mu.Unlock()
	return QueueStats{
		Queued:          q,
		Active:          a,
		OldestQueuedAge: oldest,
		MaxQueued:       s.cfg.MaxQueued,
		MaxConcurrent:   s.cfg.MaxConcurrent,
		Draining:        d,
		Jobs:            n,
		CacheEntries:    s.cache.Len(),
		CacheBytes:      s.cache.Bytes(),
	}
}

// liveTracer returns the tracer of the flight the job is riding, while
// it is actually executing — the source of in-progress trace snapshots.
// Nil when the job is queued, terminal, detached, or tracing is off.
func (s *Server) liveTracer(j *Job) *obs.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.fl == nil {
		return nil
	}
	return j.fl.tracer
}
