package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fasta"
	"repro/internal/obs"
)

// freeAddr reserves an ephemeral localhost port and returns it. The
// tiny window between Close and reuse is the standard test trade-off.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startCluster spins up n in-process worker daemons and returns a
// ready Cluster executor plus a cancel for the workers.
func startCluster(t *testing.T, n int) (*Cluster, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ctrls := make([]string, n)
	for i := 0; i < n; i++ {
		ctrls[i] = freeAddr(t)
		cfg := WorkerConfig{CtrlAddr: ctrls[i], MeshAddr: freeAddr(t), Logf: t.Logf}
		go func() {
			if err := RunWorker(ctx, cfg); err != nil && ctx.Err() == nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	// Wait for every control listener to come up.
	for _, ctrl := range ctrls {
		deadline := time.Now().Add(10 * time.Second)
		for {
			conn, err := net.DialTimeout("tcp", ctrl, time.Second)
			if err == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %s never listened: %v", ctrl, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return &Cluster{Workers: ctrls, SelfAddr: freeAddr(t)}, cancel
}

func TestClusterExecutorMatchesInproc(t *testing.T) {
	cl, stop := startCluster(t, 2)
	defer stop()
	seqs := testSeqs(21, 60, 70)
	opts, err := resolve(Options{Procs: 99 /* overridden by world size */}, Options{}, Limits{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	aln, rep, err := cl.Align(context.Background(), seqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Procs != 3 {
		t.Fatalf("cluster procs = %d, want 3 (2 workers + rank 0)", rep.Procs)
	}
	res, err := core.AlignInproc(seqs, 3, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fasta.FormatString(aln.Seqs), fasta.FormatString(res.Alignment.Seqs); got != want {
		t.Fatalf("cluster output differs from inproc (%d vs %d bytes)", len(got), len(want))
	}

	// The same cluster serves a second job (mesh ports are reusable).
	aln2, _, err := cl.Align(context.Background(), seqs[:10], opts)
	if err != nil {
		t.Fatalf("second cluster job: %v", err)
	}
	if aln2.NumSeqs() != 10 {
		t.Fatalf("second job rows = %d", aln2.NumSeqs())
	}
}

// TestClusterDistributedTrace runs a traced p=4 TCP job and asserts the
// coordinator's tree covers every rank: rank 0's own pipeline spans plus
// one "worker" wrapper per remote rank with the worker's shipped span
// tree grafted under it. Tracing must not perturb the result — the
// output stays byte-identical to an untraced in-process run.
func TestClusterDistributedTrace(t *testing.T) {
	cl, stop := startCluster(t, 3)
	defer stop()
	seqs := testSeqs(24, 60, 74)
	opts, err := resolve(Options{}, Options{}, Limits{}, 0)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.New(obs.Options{ID: "cluster-trace", MaxSpans: -1})
	ctx := obs.WithTracer(context.Background(), tr)
	ctx, root := obs.Start(ctx, "job")
	aln, rep, err := cl.Align(ctx, seqs, opts)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Procs != 4 {
		t.Fatalf("cluster procs = %d, want 4", rep.Procs)
	}

	doc := tr.Document()
	if doc.TraceID != "cluster-trace" {
		t.Fatalf("trace id = %q", doc.TraceID)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "job" {
		t.Fatalf("want single job root, got %+v", doc.Spans)
	}

	// Every rank 0..3 must contribute a "rank" span to the one tree:
	// rank 0 natively, ranks 1..3 adopted under their "worker" wrappers.
	var workers int
	rankSpans := map[string]*obs.SpanDoc{}
	var walk func(sp *obs.SpanDoc, underWorker bool)
	walk = func(sp *obs.SpanDoc, underWorker bool) {
		switch sp.Name {
		case "worker":
			workers++
			underWorker = true
		case "rank":
			for _, a := range sp.Attrs {
				if a.Key == "rank" {
					rankSpans[a.Value] = sp
				}
			}
			if underWorker {
				// Remote timings ship as recorded; an adopted rank span
				// must carry a real duration, not a re-measured zero.
				if sp.DurationNs <= 0 {
					t.Errorf("adopted rank span has duration %d", sp.DurationNs)
				}
			}
		}
		for _, c := range sp.Children {
			walk(c, underWorker)
		}
	}
	walk(doc.Spans[0], false)
	if workers != 3 {
		t.Fatalf("trace has %d worker wrapper spans, want 3", workers)
	}
	for r := 0; r < 4; r++ {
		rank := rankSpans[fmt.Sprint(r)]
		if rank == nil {
			t.Fatalf("trace missing rank %d (have ranks %v)", r, keys(rankSpans))
		}
		// Each rank's subtree must include its share of the pipeline.
		stages := map[string]*obs.SpanDoc{}
		collectSpans(rank.Children, stages)
		for _, stage := range []string{"decompose", "bucketalign", "merge"} {
			if stages[stage] == nil {
				t.Fatalf("rank %d trace missing stage %q", r, stage)
			}
		}
	}

	// Tracing is observation only: byte-identical to the untraced
	// in-process run of the same input.
	res, err := core.AlignInproc(seqs, 4, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fasta.FormatString(aln.Seqs), fasta.FormatString(res.Alignment.Seqs); got != want {
		t.Fatalf("traced cluster output differs from inproc (%d vs %d bytes)", len(got), len(want))
	}
}

func keys(m map[string]*obs.SpanDoc) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestClusterJobCancellation(t *testing.T) {
	cl, stop := startCluster(t, 2)
	defer stop()
	opts, err := resolve(Options{}, Options{}, Limits{}, 0)
	if err != nil {
		t.Fatal(err)
	}

	// A big job cancelled mid-flight must return promptly (the mpi
	// context plumbing unwinds rank 0 and the control connections tear
	// down the workers) and leave the cluster usable.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := cl.Align(ctx, testSeqs(300, 400, 71), opts)
		done <- err
	}()
	time.Sleep(300 * time.Millisecond) // let the mesh form and ranks start
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Log("job finished before the cancel landed; only reuse is checked")
		} else if !errors.Is(err, context.Canceled) {
			t.Logf("cancelled cluster job returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled cluster job hung")
	}

	// Workers must have recovered for the next job.
	aln, _, err := cl.Align(context.Background(), testSeqs(12, 40, 72), opts)
	if err != nil {
		t.Fatalf("cluster unusable after cancellation: %v", err)
	}
	if aln.NumSeqs() != 12 {
		t.Fatalf("post-cancel job rows = %d", aln.NumSeqs())
	}
}

func TestClusterWorkerUnreachableFailsFast(t *testing.T) {
	// A dead worker address must fail the job with an error, not hang.
	cl := &Cluster{
		Workers:     []string{freeAddr(t)}, // nothing listens here
		SelfAddr:    freeAddr(t),
		DialTimeout: 500 * time.Millisecond,
	}
	opts, err := resolve(Options{}, Options{}, Limits{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := cl.Align(context.Background(), testSeqs(6, 30, 73), opts)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("unreachable worker accepted")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("unreachable worker hung the job")
	}
}
