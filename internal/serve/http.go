package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/bio"
	"repro/internal/fasta"
)

// MaxRequestBytes bounds submit bodies (gzip-expanded FASTA included,
// since the limit applies to the wire bytes before decompression).
const MaxRequestBytes = 128 << 20

// SubmitRequest is the JSON submit body. Raw FASTA bodies (text/*,
// application/octet-stream, or anything starting with '>' or the gzip
// magic) are accepted too, with options taken from query parameters.
type SubmitRequest struct {
	FASTA   string  `json:"fasta"`
	Options Options `json:"options"`
}

// Handler returns the HTTP API:
//
//	POST   /v1/jobs             submit (async) → 202 + job status JSON
//	POST   /v1/batch            submit many inputs in one request (JSON,
//	                            all-or-nothing admission, one journal
//	                            commit group) → per-input job statuses
//	GET    /v1/jobs/{id}        status JSON
//	GET    /v1/jobs/{id}/result aligned FASTA
//	GET    /v1/jobs/{id}/trace  span-tree JSON of the pipeline run (a live
//	                            snapshot with X-Trace-Incomplete while running)
//	GET    /v1/jobs/{id}/events live progress stream (Server-Sent Events);
//	                            disconnecting never cancels the job
//	DELETE /v1/jobs/{id}        cancel
//	POST   /v1/align            submit + wait (sync) → aligned FASTA;
//	                            client disconnect cancels the job
//	GET    /healthz             liveness + queue stats
//	GET    /metrics             Prometheus text metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/align", s.handleAlignSync)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// submitError maps Submit errors onto status codes.
func submitError(w http.ResponseWriter, err error) {
	var bad *BadRequestError
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.As(err, &bad):
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// parseSubmit extracts the sequences and options from a submit body.
func parseSubmit(r *http.Request) ([]bio.Sequence, Options, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxRequestBytes+1))
	if err != nil {
		return nil, Options{}, badRequest("reading body: %v", err)
	}
	if len(body) > MaxRequestBytes {
		return nil, Options{}, badRequest("request body exceeds %d bytes", MaxRequestBytes)
	}
	var o Options
	fastaText := body
	if isJSONSubmit(r, body) {
		var req SubmitRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, Options{}, badRequest("decoding JSON body: %v", err)
		}
		o = req.Options
		fastaText = []byte(req.FASTA)
	}
	if err := optionsFromQuery(r, &o); err != nil {
		return nil, Options{}, err
	}
	// Gzip input would inflate inside fasta.Read, where the wire-byte
	// limit above cannot bound memory: inflate here with a cap on the
	// *expanded* size, or a small gzip bomb could OOM the server.
	if len(fastaText) >= 2 && fastaText[0] == 0x1f && fastaText[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(fastaText))
		if err != nil {
			return nil, Options{}, badRequest("gzip body: %v", err)
		}
		expanded, err := io.ReadAll(io.LimitReader(zr, MaxRequestBytes+1))
		if err != nil {
			return nil, Options{}, badRequest("gzip body: %v", err)
		}
		if len(expanded) > MaxRequestBytes {
			return nil, Options{}, badRequest("decompressed body exceeds %d bytes", MaxRequestBytes)
		}
		fastaText = expanded
	}
	seqs, err := fasta.Read(bytes.NewReader(fastaText))
	if err != nil {
		return nil, Options{}, badRequest("parsing FASTA: %v", err)
	}
	return seqs, o, nil
}

func isJSONSubmit(r *http.Request, body []byte) bool {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		if mt, _, err := mime.ParseMediaType(ct); err == nil {
			if mt == "application/json" {
				return true
			}
			if strings.HasPrefix(mt, "text/") || mt == "application/octet-stream" {
				return false
			}
		}
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n") // subslice, no copy
	return len(trimmed) > 0 && trimmed[0] == '{'
}

// optionsFromQuery overlays query parameters (?procs=8&aligner=clustal…)
// onto o; they win over JSON body options.
func optionsFromQuery(r *http.Request, o *Options) error {
	q := r.URL.Query()
	getInt := func(name string, dst *int) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return badRequest("query %s=%q: %v", name, v, err)
		}
		*dst = n
		return nil
	}
	getBool := func(name string, dst *bool) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			return badRequest("query %s=%q: %v", name, v, err)
		}
		*dst = b
		return nil
	}
	if err := getInt("procs", &o.Procs); err != nil {
		return err
	}
	if err := getInt("workers", &o.Workers); err != nil {
		return err
	}
	if err := getInt("k", &o.K); err != nil {
		return err
	}
	if err := getInt("sample_size", &o.SampleSize); err != nil {
		return err
	}
	if err := getBool("no_finetune", &o.NoFineTune); err != nil {
		return err
	}
	if err := getBool("random_sampling", &o.RandomSampling); err != nil {
		return err
	}
	if err := getBool("full_alphabet", &o.FullAlphabet); err != nil {
		return err
	}
	if v := q.Get("aligner"); v != "" {
		o.Aligner = v
	}
	if v := q.Get("kernel"); v != "" {
		o.Kernel = v
	}
	if v := q.Get("timeout_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return badRequest("query timeout_ms=%q: %v", v, err)
		}
		o.TimeoutMs = ms
	}
	return nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	seqs, o, err := parseSubmit(r)
	if err != nil {
		submitError(w, err)
		return
	}
	job, err := s.Submit(seqs, o)
	if err != nil {
		submitError(w, err)
		return
	}
	v := job.View()
	code := http.StatusAccepted
	if v.State.Terminal() { // cache hit: done before the response left
		code = http.StatusOK
	}
	writeJSON(w, code, v)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	res, state, err := job.resultIfDone()
	switch state {
	case StateDone:
		// Serve straight from the job record or the memory cache when
		// the payload is already resident; otherwise stream it from the
		// disk store so peak memory never scales with alignment size.
		if res != nil && res.FASTA != nil {
			writeFASTA(w, job, res.FASTA)
			return
		}
		if cres, ok := s.cache.Get(job.Key); ok {
			writeFASTA(w, job, cres.FASTA)
			return
		}
		if s.streamResult(w, job) {
			return
		}
		writeError(w, http.StatusGone, "result evicted from the cache; resubmit the job")
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %v", err)
	case StateCanceled:
		writeError(w, http.StatusGone, "job canceled: %v", err)
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "job is %s; retry later", state)
	}
}

// streamResult serves a done job's payload directly from the on-disk
// store via chunked transfer: no Content-Length, a small copy buffer,
// checksum verified as the bytes flow. A corrupt file aborts the
// response mid-stream (the client sees a truncated chunked body, never
// a clean EOF over bad data).
func (s *Server) streamResult(w http.ResponseWriter, job *Job) bool {
	if s.results == nil {
		return false
	}
	_, rc, _, ok := s.results.Open(job.Key)
	if !ok {
		return false
	}
	defer func() { _ = rc.Close() }() // read side; corruption already surfaced via Open
	writeFASTAHeaders(w, job)
	w.WriteHeader(http.StatusOK)
	// Commit the header now: with no Content-Length this locks the
	// response into chunked transfer, so nothing below ever buffers the
	// whole payload (net/http would otherwise synthesize a length for
	// small bodies).
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	// Copy by hand so read-side failures (corruption, disk faults) are
	// distinguishable from the client going away: the former must abort
	// the response — a chunked body must never terminate cleanly over
	// bad or truncated data — while the latter just ends the work.
	buf := make([]byte, 64<<10)
	for {
		n, rerr := rc.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return true // client went away mid-stream
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			panic(http.ErrAbortHandler)
		}
	}
	s.metrics.Streamed.Inc()
	return true
}

// lookupTrace finds a done job's span tree: the job record first, then
// the memory cache's full result, then the on-disk trace store.
func (s *Server) lookupTrace(job *Job, res *Result) ([]byte, bool) {
	if res != nil && len(res.Trace) > 0 {
		return res.Trace, true
	}
	if cres, ok := s.cache.Get(job.Key); ok && len(cres.Trace) > 0 {
		return cres.Trace, true
	}
	if s.traces != nil {
		if _, payload, ok := s.traces.Get(job.Key); ok {
			return payload, true
		}
	}
	return nil, false
}

// handleTrace serves a job's span tree as indented JSON. A running job
// answers 200 with a live snapshot of the in-progress tree (unended
// spans carry zero durations) marked by an X-Trace-Incomplete header.
// Unknown job → 404; queued (no tracer yet) → 409; finished without a
// trace (tracing disabled, or a failed/canceled run) → 404; trace
// recorded but since evicted from every tier → 410.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	res, state, err := job.resultIfDone()
	switch state {
	case StateDone:
		doc, ok := s.lookupTrace(job, res)
		if !ok {
			// The trace ID outlives the trace itself: it still keys log
			// lines even when tracing is off, so distinguish "never
			// recorded" from "recorded but evicted" via cfg, not the ID.
			if s.cfg.NoTrace || job.Trace == "" {
				writeError(w, http.StatusNotFound, "no trace recorded for this job (tracing disabled)")
			} else {
				writeError(w, http.StatusGone, "trace evicted; resubmit the job")
			}
			return
		}
		var buf bytes.Buffer
		if json.Indent(&buf, doc, "", "  ") != nil {
			buf = *bytes.NewBuffer(doc) // serve verbatim if it will not re-indent
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Job-Id", job.ID)
		if job.Trace != "" {
			w.Header().Set("X-Trace-Id", job.Trace)
		}
		w.Write(buf.Bytes())
	case StateFailed:
		writeError(w, http.StatusNotFound, "job failed; no trace: %v", err)
	case StateCanceled:
		writeError(w, http.StatusGone, "job canceled: %v", err)
	default:
		if tr := s.liveTracer(job); tr != nil {
			doc, derr := json.MarshalIndent(tr.Document(), "", "  ")
			if derr == nil {
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("X-Job-Id", job.ID)
				w.Header().Set("X-Trace-Id", job.Trace)
				w.Header().Set("X-Trace-Incomplete", "1")
				w.Write(doc)
				return
			}
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "job is %s; trace is available once done", state)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	live, err := s.Cancel(id, errors.New("canceled by client request"))
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "canceled": live})
}

// handleAlignSync is submit + wait in one request. The job is bound to
// the request: if the client disconnects, the context cancellation
// propagates into the running alignment and frees its workers.
func (s *Server) handleAlignSync(w http.ResponseWriter, r *http.Request) {
	seqs, o, err := parseSubmit(r)
	if err != nil {
		submitError(w, err)
		return
	}
	job, err := s.Submit(seqs, o)
	if err != nil {
		submitError(w, err)
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		s.cancelJob(job, errors.New("client disconnected"))
		<-job.Done() // wait for the executor to actually unwind
		return       // client is gone; nothing to write
	}
	res, state, jerr := job.resultIfDone()
	switch state {
	case StateDone:
		payload, ok := s.resultPayload(job, res)
		if !ok { // evicted between completion and this write; vanishingly rare
			writeError(w, http.StatusGone, "result evicted from the cache; resubmit the job")
			return
		}
		writeFASTA(w, job, payload)
	case StateCanceled:
		writeError(w, http.StatusGone, "job canceled: %v", jerr)
	default:
		writeError(w, http.StatusInternalServerError, "job failed: %v", jerr)
	}
}

func writeFASTAHeaders(w http.ResponseWriter, job *Job) {
	w.Header().Set("Content-Type", "text/x-fasta; charset=utf-8")
	w.Header().Set("X-Job-Id", job.ID)
	w.Header().Set("X-Cache-Key", job.Key)
	if job.View().Cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
}

func writeFASTA(w http.ResponseWriter, job *Job, payload []byte) {
	writeFASTAHeaders(w, job)
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":   "ok",
		"executor": s.cfg.Executor.Name(),
		"uptime_s": int64(time.Since(s.started).Seconds()),
		"queue":    s.Stats(),
	}
	if rec := s.Recovery(); rec.Enabled {
		body["persistence"] = map[string]any{
			"data_dir": s.cfg.DataDir,
			"recovery": rec,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var persist *PersistGauges
	if s.journal != nil || s.results != nil {
		persist = &PersistGauges{}
		if s.results != nil {
			persist.StoreEntries = int64(s.results.Len())
			persist.StoreBytes = s.results.Bytes()
			persist.StoreEvictions = s.results.Evictions()
		}
		if s.journal != nil {
			persist.JournalRecords = s.journal.Records()
			persist.JournalBytes = s.journal.Bytes()
			persist.JournalFsyncs = s.journal.Flushes()
			persist.JournalFlushedRecords = s.journal.FlushedRecords()
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.metrics.Render(s.Stats(), s.cache.Evictions(), persist))
}
