package serve

import (
	"strings"
	"testing"
	"time"
)

func TestResolveDefaultsAndOverrides(t *testing.T) {
	defaults := Options{Procs: 8, Workers: 2, Aligner: "clustal"}
	r, err := resolve(Options{}, defaults, Limits{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Procs != 8 || r.Workers != 2 || r.Aligner != "clustal" || r.K != 6 {
		t.Fatalf("defaults not applied: %+v", r)
	}
	r, err = resolve(Options{Procs: 2, Aligner: "muscle", TimeoutMs: 1500}, defaults, Limits{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Procs != 2 || r.Aligner != "muscle" || r.Timeout != 1500*time.Millisecond {
		t.Fatalf("request overrides lost: %+v", r)
	}
	// Zero-value server defaults bottom out at the library defaults.
	r, err = resolve(Options{}, Options{}, Limits{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Procs != 4 || r.Workers != 1 || r.Aligner != "muscle" {
		t.Fatalf("fallback defaults: %+v", r)
	}
}

func TestResolveLimits(t *testing.T) {
	// Procs over the cap reject: clamping would change the result.
	if _, err := resolve(Options{Procs: 100}, Options{}, Limits{MaxProcs: 16}, 0); err == nil ||
		!strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("procs over cap: %v", err)
	}
	// Workers over the budget clamp silently: they never change bytes.
	r, err := resolve(Options{Procs: 4, Workers: 16}, Options{}, Limits{WorkerBudget: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers != 2 {
		t.Fatalf("workers = %d, want clamped 2 (budget 8 / procs 4)", r.Workers)
	}
	// Budget smaller than procs still leaves one worker per rank.
	r, err = resolve(Options{Procs: 4, Workers: 2}, Options{}, Limits{WorkerBudget: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers != 1 {
		t.Fatalf("workers = %d, want floor 1", r.Workers)
	}
}

func TestResolveFixedProcs(t *testing.T) {
	// A fixed-size executor overrides procs before limits: the request
	// value is advisory, MaxProcs does not apply to the operator's own
	// cluster size, and the worker budget clamps against actual procs.
	r, err := resolve(Options{Procs: 100, Workers: 8}, Options{}, Limits{MaxProcs: 4, WorkerBudget: 22}, 11)
	if err != nil {
		t.Fatalf("fixed-procs request rejected: %v", err)
	}
	if r.Procs != 11 {
		t.Fatalf("procs = %d, want fixed 11", r.Procs)
	}
	if r.Workers != 2 {
		t.Fatalf("workers = %d, want 2 (budget 22 / fixed procs 11)", r.Workers)
	}
}

func TestResolveFullAlphabetK(t *testing.T) {
	// Full alphabet defaults k to 4 (20^6 would overflow the code space).
	r, err := resolve(Options{FullAlphabet: true}, Options{}, Limits{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 4 {
		t.Fatalf("full-alphabet k = %d, want 4", r.K)
	}
	// An explicit oversized k is rejected, like the public buildConfig.
	if _, err := resolve(Options{FullAlphabet: true, K: 8}, Options{}, Limits{}, 0); err == nil {
		t.Fatal("k=8 over the full alphabet accepted")
	}
	if _, err := resolve(Options{K: 6}, Options{}, Limits{}, 0); err != nil {
		t.Fatalf("k=6 over Dayhoff rejected: %v", err)
	}
}

func TestResolveRejects(t *testing.T) {
	for _, o := range []Options{
		{Procs: -2},
		{Workers: -1},
		{K: -1},
		{SampleSize: -1},
		{TimeoutMs: -5},
		{Aligner: "bogus"},
	} {
		if _, err := resolve(o, Options{}, Limits{}, 0); err == nil {
			t.Fatalf("options %+v accepted", o)
		}
	}
}

func TestCoreConfigRoundTrip(t *testing.T) {
	r, err := resolve(Options{Procs: 2, Workers: 3, Aligner: "tcoffee", K: 5,
		SampleSize: 7, NoFineTune: true, RandomSampling: true}, Options{}, Limits{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := r.CoreConfig()
	if cfg.K != 5 || cfg.Workers != 3 || cfg.SampleSize != 7 || !cfg.NoFineTune {
		t.Fatalf("core config: %+v", cfg)
	}
	if cfg.Sampling == 0 {
		t.Fatal("random sampling not mapped")
	}
	al := cfg.NewLocalAligner(1)
	if al == nil {
		t.Fatal("aligner constructor nil")
	}
}
