package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bio"
	"repro/internal/core"
	"repro/internal/fasta"
	"repro/internal/msa"
)

// newTestServer builds a Server, failing the test on persistence
// setup errors (impossible without a DataDir).
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testSeqs synthesizes n deterministic mutated copies of a base
// protein so alignments are fast and reproducible.
func testSeqs(n, length int, seed int64) []bio.Sequence {
	rng := rand.New(rand.NewSource(seed))
	letters := []byte("ACDEFGHIKLMNPQRSTVWY")
	base := make([]byte, length)
	for i := range base {
		base[i] = letters[rng.Intn(len(letters))]
	}
	seqs := make([]bio.Sequence, n)
	for i := range seqs {
		data := append([]byte(nil), base...)
		for m := 0; m < length/10; m++ {
			data[rng.Intn(len(data))] = letters[rng.Intn(len(letters))]
		}
		seqs[i] = bio.Sequence{ID: fmt.Sprintf("s%03d", i), Data: data}
	}
	return seqs
}

// fakeExec is a controllable executor: optionally blocks until released
// or cancelled, and counts runs.
type fakeExec struct {
	mu      sync.Mutex
	runs    int
	block   chan struct{} // non-nil: wait for close or ctx cancellation
	started chan struct{} // non-nil: receives one token per started run
}

func (f *fakeExec) Name() string    { return "fake" }
func (f *fakeExec) FixedProcs() int { return 0 }

func (f *fakeExec) Runs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runs
}

func (f *fakeExec) Align(ctx context.Context, seqs []bio.Sequence, opts Resolved) (*msa.Alignment, ExecReport, error) {
	f.mu.Lock()
	f.runs++
	f.mu.Unlock()
	if f.started != nil {
		select {
		case f.started <- struct{}{}:
		case <-ctx.Done():
			return nil, ExecReport{}, ctx.Err()
		}
	}
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return nil, ExecReport{}, ctx.Err()
		}
	}
	// Identity "alignment": equal-length inputs pass through.
	return &msa.Alignment{Seqs: seqs}, ExecReport{Procs: opts.Procs}, nil
}

func waitState(t *testing.T, j *Job, want State) JobView {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s stuck in %s waiting for %s", j.ID, j.View().State, want)
	}
	v := j.View()
	if v.State != want {
		t.Fatalf("job %s finished %s (err %q), want %s", j.ID, v.State, v.Error, want)
	}
	return v
}

func TestSubmitRoundTripMatchesDirectRun(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 2})
	defer s.Close()
	seqs := testSeqs(24, 60, 1)
	job, err := s.Submit(seqs, Options{Procs: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, job, StateDone)
	if v.Cached {
		t.Fatal("first submission reported cached")
	}

	// The job result must be byte-identical to the batch surface.
	res, err := core.AlignInproc(seqs, 3, core.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	payload, ok := s.resultPayload(job, v.Result)
	if !ok {
		t.Fatal("result payload missing")
	}
	want := fasta.FormatString(res.Alignment.Seqs)
	if got := string(payload); got != want {
		t.Fatalf("HTTP-path alignment differs from direct core run:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if v.Result.Procs != 3 || v.Result.NumSeqs != 24 {
		t.Fatalf("result report: %+v", v.Result)
	}
}

func TestCacheHitSkipsExecution(t *testing.T) {
	fe := &fakeExec{}
	s := newTestServer(t, Config{Executor: fe})
	defer s.Close()
	seqs := testSeqs(8, 40, 2)

	j1, err := s.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone)
	if fe.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", fe.Runs())
	}

	// Identical input + options: served from cache, no execution, done
	// before Submit returns.
	j2, err := s.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := j2.View()
	if v.State != StateDone || !v.Cached {
		t.Fatalf("resubmission state %s cached=%v, want instant cached done", v.State, v.Cached)
	}
	if fe.Runs() != 1 {
		t.Fatalf("cache hit re-ran the executor (runs = %d)", fe.Runs())
	}
	if j2.Key != j1.Key {
		t.Fatalf("cache keys differ for identical submissions: %s vs %s", j2.Key, j1.Key)
	}

	// Workers must NOT change the key (alignments are worker-invariant)…
	j3, err := s.Submit(seqs, Options{Procs: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v := j3.View(); !v.Cached {
		t.Fatal("different workers missed the cache; workers must not key results")
	}
	// …but procs and aligner must.
	j4, err := s.Submit(seqs, Options{Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if j4.View().Cached {
		t.Fatal("different procs hit the cache")
	}
	waitState(t, j4, StateDone)
	j5, err := s.Submit(seqs, Options{Procs: 2, Aligner: "clustal"})
	if err != nil {
		t.Fatal(err)
	}
	if j5.View().Cached {
		t.Fatal("different aligner hit the cache")
	}
	waitState(t, j5, StateDone)
}

func TestCacheDisabledByConfig(t *testing.T) {
	fe := &fakeExec{}
	s := newTestServer(t, Config{Executor: fe, CacheEntries: -1})
	defer s.Close()
	seqs := testSeqs(4, 30, 90)
	j1, err := s.Submit(seqs, Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone)
	j2, err := s.Submit(seqs, Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if j2.View().Cached {
		t.Fatal("CacheEntries=-1 did not disable the cache")
	}
	waitState(t, j2, StateDone)
	if fe.Runs() != 2 {
		t.Fatalf("runs = %d, want 2 (no caching)", fe.Runs())
	}
}

// fixedExec models a fixed-size cluster: every job runs at 3 ranks.
type fixedExec struct{ fakeExec }

func (f *fixedExec) FixedProcs() int { return 3 }

func TestFixedProcsNormalizesCacheKey(t *testing.T) {
	fe := &fixedExec{}
	s := newTestServer(t, Config{Executor: fe})
	defer s.Close()
	seqs := testSeqs(4, 30, 91)
	j1, err := s.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, j1, StateDone)
	if v.Opts.Procs != 3 {
		t.Fatalf("job procs = %d, want the executor's fixed 3", v.Opts.Procs)
	}
	// A different requested procs is the same job on a fixed cluster.
	j2, err := s.Submit(seqs, Options{Procs: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !j2.View().Cached {
		t.Fatal("fixed-procs submissions did not share a cache entry")
	}
	if fe.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", fe.Runs())
	}
}

func TestAdmissionControl429(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 8)}
	s := newTestServer(t, Config{Executor: fe, MaxConcurrent: 1, MaxQueued: 2})
	defer s.Close()

	submit := func(seed int64) (*Job, error) {
		return s.Submit(testSeqs(4, 30, seed), Options{Procs: 1})
	}
	j1, err := submit(10) // runs (and blocks)
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started // j1 definitely occupies the single executor slot
	j2, err := submit(11)
	if err != nil {
		t.Fatal(err)
	}
	j3, err := submit(12)
	if err != nil {
		t.Fatal(err)
	}
	// Queue (2) and executor (1) are full: the next submission bounces.
	if _, err := submit(13); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("4th submission: err = %v, want ErrOverloaded", err)
	}
	if got := s.metrics.Rejected.Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	// Draining the queue restores admission.
	close(fe.block)
	for _, j := range []*Job{j1, j2, j3} {
		waitState(t, j, StateDone)
	}
	j5, err := submit(13)
	if err != nil {
		t.Fatalf("submission after drain: %v", err)
	}
	waitState(t, j5, StateDone)
}

func TestCancelQueuedAndRunning(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 8)}
	s := newTestServer(t, Config{Executor: fe, MaxConcurrent: 1, MaxQueued: 4})
	defer s.Close()

	running, err := s.Submit(testSeqs(4, 30, 20), Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started
	queued, err := s.Submit(testSeqs(4, 30, 21), Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Cancelling a queued job finalizes it immediately, without running.
	if live, err := s.Cancel(queued.ID, nil); err != nil || !live {
		t.Fatalf("cancel queued: live=%v err=%v", live, err)
	}
	waitState(t, queued, StateCanceled)

	// Cancelling the running job unblocks the executor via its context.
	if live, err := s.Cancel(running.ID, errors.New("operator said so")); err != nil || !live {
		t.Fatalf("cancel running: live=%v err=%v", live, err)
	}
	v := waitState(t, running, StateCanceled)
	if !strings.Contains(v.Error, "operator said so") {
		t.Fatalf("cancellation cause lost: %q", v.Error)
	}
	if fe.Runs() != 1 {
		t.Fatalf("queued job ran anyway (runs = %d)", fe.Runs())
	}

	// Unknown job.
	if _, err := s.Cancel("jdeadbeef", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: %v", err)
	}
	// Cancelling a finished job reports not-live.
	if live, err := s.Cancel(running.ID, nil); err != nil || live {
		t.Fatalf("re-cancel finished: live=%v err=%v", live, err)
	}
}

func TestSubmitCancelRace(t *testing.T) {
	fe := &fakeExec{}
	s := newTestServer(t, Config{Executor: fe, MaxConcurrent: 4, MaxQueued: 128})
	defer s.Close()

	const n = 64
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		seqs := testSeqs(4, 30, int64(100+i))
		j, err := s.Submit(seqs, Options{Procs: 1})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
		wg.Add(1)
		go func(j *Job) { // cancel races execution
			defer wg.Done()
			s.Cancel(j.ID, nil)
		}(j)
	}
	wg.Wait()
	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("job %s never terminal (state %s)", j.ID, j.View().State)
		}
		if st := j.View().State; st != StateDone && st != StateCanceled {
			t.Fatalf("job %s raced into %s", j.ID, st)
		}
	}
	// Queue accounting must balance whatever interleaving happened
	// (cancel racing a dispatcher pop must not double-free a slot).
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.Queued == 0 && st.Active == 0 {
			break
		}
		if st.Queued < 0 || time.Now().After(deadline) {
			t.Fatalf("queue accounting off after race: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCancelPropagatesIntoRunningAlignment(t *testing.T) {
	// Real executor, real rank world: cancellation must unwind the
	// alignment promptly instead of letting it run to completion.
	s := newTestServer(t, Config{MaxConcurrent: 1})
	defer s.Close()
	seqs := testSeqs(150, 300, 3)
	job, err := s.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually running, then cancel.
	deadline := time.After(30 * time.Second)
	for job.View().State == StateQueued {
		select {
		case <-deadline:
			t.Fatal("job never started")
		case <-time.After(time.Millisecond):
		}
	}
	start := time.Now()
	if live, err := s.Cancel(job.ID, nil); err != nil || !live {
		t.Fatalf("cancel: live=%v err=%v", live, err)
	}
	waitState(t, job, StateCanceled)
	if wait := time.Since(start); wait > 10*time.Second {
		t.Fatalf("cancellation took %v; ranks did not unwind", wait)
	}
}

func TestJobDeadline(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{})}
	defer close(fe.block)
	s := newTestServer(t, Config{Executor: fe})
	defer s.Close()
	job, err := s.Submit(testSeqs(4, 30, 4), Options{Procs: 1, TimeoutMs: 50})
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, job, StateCanceled)
	if !strings.Contains(v.Error, "deadline") {
		t.Fatalf("deadline cause lost: %q", v.Error)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	defer s.Close()
	var bad *BadRequestError
	if _, err := s.Submit(nil, Options{}); !errors.As(err, &bad) {
		t.Fatalf("empty input: %v", err)
	}
	dup := []bio.Sequence{{ID: "x", Data: []byte("AC")}, {ID: "x", Data: []byte("DE")}}
	if _, err := s.Submit(dup, Options{}); !errors.As(err, &bad) {
		t.Fatalf("duplicate ids: %v", err)
	}
	empty := []bio.Sequence{{ID: "x", Data: nil}}
	if _, err := s.Submit(empty, Options{}); !errors.As(err, &bad) {
		t.Fatalf("empty sequence: %v", err)
	}
	if _, err := s.Submit(testSeqs(2, 20, 5), Options{Aligner: "nope"}); !errors.As(err, &bad) {
		t.Fatalf("unknown aligner: %v", err)
	}
	if _, err := s.Submit(testSeqs(2, 20, 5), Options{Procs: -1}); !errors.As(err, &bad) {
		t.Fatalf("negative procs: %v", err)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	s := newTestServer(t, Config{Executor: &fakeExec{}})
	s.Close()
	if _, err := s.Submit(testSeqs(2, 20, 6), Options{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestJobRetentionPrunesOldFinished(t *testing.T) {
	fe := &fakeExec{}
	s := newTestServer(t, Config{Executor: fe, MaxJobs: 4, MaxConcurrent: 1})
	defer s.Close()
	var last *Job
	for i := 0; i < 10; i++ {
		j, err := s.Submit(testSeqs(3, 20, int64(200+i)), Options{Procs: 1})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateDone)
		last = j
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n > 5 { // MaxJobs plus at most the newest in flight
		t.Fatalf("retained %d job records, want ≤ 5", n)
	}
	if _, ok := s.Job(last.ID); !ok {
		t.Fatal("newest job was pruned")
	}
}
