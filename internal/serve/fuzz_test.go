package serve

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"testing"
	"time"
)

var hexKeyRe = regexp.MustCompile(`^[0-9a-f]{64}$`)

// FuzzSubmitJSON drives arbitrary bytes through the full submit path —
// body sniffing (raw FASTA vs JSON vs gzip), query-parameter overlay,
// option resolution, and cache keying — and checks the invariants the
// HTTP API depends on:
//
//   - parseSubmit never panics, and every rejection is a BadRequestError
//     (anything else would surface as a 500 for client-controlled input);
//   - resolve is deterministic: the same parsed submission resolves to
//     the same Resolved;
//   - CacheKey is stable across calls and blind to Workers, Kernel and
//     Timeout, the documented result-neutral options — a key that moved
//     with any of them would split (or worse, alias) cache entries.
func FuzzSubmitJSON(f *testing.F) {
	f.Add([]byte(">a\nACDEFG\n>b\nACDEFH\n"), "text/plain", "")
	f.Add([]byte(`{"fasta":">a\nACDEFG\n>b\nACDEFH\n","options":{"procs":2,"aligner":"muscle"}}`),
		"application/json", "")
	f.Add([]byte(`{"fasta":">a\nAC\n","options":{"k":3,"sample_size":5,"no_finetune":true}}`),
		"application/json", "procs=3&workers=2")
	f.Add([]byte(`{"fasta":">a\nAC\n","options":{"timeout_ms":-1}}`), "application/json", "")
	f.Add([]byte(`{"fasta":"","options":{}}`), "", "aligner=nosuch&kernel=banana")
	f.Add([]byte("not fasta at all"), "application/octet-stream", "procs=notanumber")
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write([]byte(">z\nWYV\n"))
	zw.Close()
	f.Add(gz.Bytes(), "", "full_alphabet=true")

	f.Fuzz(func(t *testing.T, body []byte, contentType, query string) {
		target := "/v1/jobs"
		if query != "" {
			target += "?" + query
		}
		u, err := url.ParseRequestURI(target)
		if err != nil {
			t.Skip("unparsable query string")
		}
		// Built by hand rather than httptest.NewRequest: the latter
		// round-trips through an HTTP/1.0 request line and panics on
		// bytes that are merely unusual, not invalid, for a URL.
		req := &http.Request{
			Method: "POST",
			URL:    u,
			Header: make(http.Header),
			Body:   io.NopCloser(bytes.NewReader(body)),
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}

		seqs, opts, err := parseSubmit(req)
		if err != nil {
			var bad *BadRequestError
			if !errors.As(err, &bad) {
				t.Fatalf("parseSubmit rejection is not a BadRequestError: %v", err)
			}
			return
		}

		r1, err := resolve(opts, Options{}, Limits{}, 0)
		if err != nil {
			return // invalid option combination: rejected before any work
		}
		r2, err := resolve(opts, Options{}, Limits{}, 0)
		if err != nil || r1 != r2 {
			t.Fatalf("resolve is unstable: %+v / %+v (err=%v)", r1, r2, err)
		}

		k1 := CacheKey(seqs, r1)
		if !hexKeyRe.MatchString(k1) {
			t.Fatalf("cache key %q is not 64 hex chars", k1)
		}
		if k2 := CacheKey(seqs, r1); k2 != k1 {
			t.Fatalf("cache key unstable across calls: %s vs %s", k1, k2)
		}
		neutral := r1
		neutral.Workers++
		neutral.Timeout += time.Second
		if neutral.Kernel == "scalar" {
			neutral.Kernel = "striped"
		} else {
			neutral.Kernel = "scalar"
		}
		if k3 := CacheKey(seqs, neutral); k3 != k1 {
			t.Fatalf("cache key depends on a result-neutral option: %s vs %s", k1, k3)
		}
		affecting := r1
		affecting.Procs++
		if k4 := CacheKey(seqs, affecting); k4 == k1 {
			t.Fatalf("cache key ignores procs, which changes the alignment")
		}
	})
}
