package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/bio"
	"repro/internal/core"
	"repro/internal/dpkern"
	"repro/internal/engines"
	"repro/internal/kmer"
	"repro/internal/msa"
)

// Options are the per-request alignment options of the HTTP job API.
// Zero fields inherit the server defaults; the JSON names are the wire
// format of the "options" object in submit requests.
type Options struct {
	Procs          int    `json:"procs,omitempty"`           // in-process ranks (ignored by cluster executors)
	Workers        int    `json:"workers,omitempty"`         // shared-memory workers per rank
	Aligner        string `json:"aligner,omitempty"`         // bucket aligner name (engines registry)
	K              int    `json:"k,omitempty"`               // k-mer length
	SampleSize     int    `json:"sample_size,omitempty"`     // samples per rank
	NoFineTune     bool   `json:"no_finetune,omitempty"`     // skip GA fine-tuning
	RandomSampling bool   `json:"random_sampling,omitempty"` // ablation: random pivots
	FullAlphabet   bool   `json:"full_alphabet,omitempty"`   // ablation: uncompressed alphabet
	Kernel         string `json:"kernel,omitempty"`          // DP kernel: auto/scalar/striped (never changes output)
	TimeoutMs      int64  `json:"timeout_ms,omitempty"`      // caller deadline from submission time
}

// Resolved is a fully defaulted, validated option set: every field is
// concrete, so it both keys the result cache (deadline excluded — it
// cannot change the alignment) and reconstructs an identical
// core.Config on any process, including remote cluster workers.
type Resolved struct {
	Procs          int    `json:"procs"`
	Workers        int    `json:"workers"`
	Aligner        string `json:"aligner"`
	K              int    `json:"k"`
	SampleSize     int    `json:"sample_size"` // 0 keeps core's p-derived default
	NoFineTune     bool   `json:"no_finetune"`
	RandomSampling bool   `json:"random_sampling"`
	FullAlphabet   bool   `json:"full_alphabet"`
	Kernel         string `json:"kernel"` // NOT part of the cache key: kernels are byte-identical

	Timeout time.Duration `json:"timeout_ns"` // 0 = none; NOT part of the cache key
}

// Limits bound what a single request may claim from the pool.
type Limits struct {
	MaxProcs     int // reject requests asking for more ranks (0 = no cap)
	WorkerBudget int // clamp procs×workers to this many goroutines (0 = no cap)
}

// resolve merges request options over the defaults and validates the
// result. fixedProcs > 0 (a fixed-size cluster executor) overrides the
// rank count before any limit is applied, so limits act on the procs a
// job will actually use. Limit violations on Procs reject (the rank
// count changes the alignment, so silently clamping would return a
// different answer than asked for); Workers are silently clamped to
// the budget (they never change the result, only the schedule).
func resolve(o, defaults Options, lim Limits, fixedProcs int) (Resolved, error) {
	pick := func(v, d, fallback int) int {
		if v != 0 {
			return v
		}
		if d != 0 {
			return d
		}
		return fallback
	}
	r := Resolved{
		Procs:          pick(o.Procs, defaults.Procs, 4),
		Workers:        pick(o.Workers, defaults.Workers, 1),
		K:              pick(o.K, defaults.K, 0),
		SampleSize:     pick(o.SampleSize, defaults.SampleSize, 0),
		NoFineTune:     o.NoFineTune || defaults.NoFineTune,
		RandomSampling: o.RandomSampling || defaults.RandomSampling,
		FullAlphabet:   o.FullAlphabet || defaults.FullAlphabet,
	}
	r.Aligner = o.Aligner
	if r.Aligner == "" {
		r.Aligner = defaults.Aligner
	}
	if r.Aligner == "" {
		r.Aligner = "muscle"
	}
	r.Kernel = o.Kernel
	if r.Kernel == "" {
		r.Kernel = defaults.Kernel
	}
	kern, err := dpkern.Parse(r.Kernel)
	if err != nil {
		return Resolved{}, err
	}
	r.Kernel = kern.String()
	if o.TimeoutMs < 0 {
		return Resolved{}, fmt.Errorf("timeout_ms = %d", o.TimeoutMs)
	}
	r.Timeout = time.Duration(o.TimeoutMs) * time.Millisecond
	if r.Timeout == 0 && defaults.TimeoutMs > 0 {
		r.Timeout = time.Duration(defaults.TimeoutMs) * time.Millisecond
	}

	if r.Procs < 1 {
		return Resolved{}, fmt.Errorf("procs = %d", r.Procs)
	}
	if fixedProcs > 0 {
		// The executor (a fixed-size cluster) decides the rank count;
		// the requested procs is advisory. MaxProcs is not applied to
		// the operator's own cluster size — that would brick every
		// request on a misconfigured server — but the worker budget
		// below still clamps against the procs actually used.
		r.Procs = fixedProcs
	} else if lim.MaxProcs > 0 && r.Procs > lim.MaxProcs {
		return Resolved{}, fmt.Errorf("procs = %d exceeds the server limit of %d", r.Procs, lim.MaxProcs)
	}
	if r.Workers < 1 {
		return Resolved{}, fmt.Errorf("workers = %d", r.Workers)
	}
	if lim.WorkerBudget > 0 && r.Procs*r.Workers > lim.WorkerBudget {
		r.Workers = lim.WorkerBudget / r.Procs
		if r.Workers < 1 {
			r.Workers = 1
		}
	}
	if !engines.Valid(r.Aligner) {
		return Resolved{}, fmt.Errorf("unknown aligner %q (have %v)", r.Aligner, engines.Names())
	}
	if r.K < 0 || r.SampleSize < 0 {
		return Resolved{}, fmt.Errorf("k = %d, sample_size = %d", r.K, r.SampleSize)
	}
	// Default K mirrors the public buildConfig: 6 over Dayhoff classes,
	// 4 over the full alphabet; explicit values are validated against
	// the alphabet's code space.
	if r.K == 0 {
		if r.FullAlphabet {
			r.K = 4
		} else {
			r.K = kmer.DefaultK
		}
	}
	comp := bio.Dayhoff6
	if r.FullAlphabet {
		comp = bio.Identity(bio.AminoAcids)
	}
	if _, err := kmer.NewCounter(comp, r.K); err != nil {
		return Resolved{}, fmt.Errorf("k = %d is too large for the %d-letter alphabet", r.K, comp.Len())
	}
	return r, nil
}

// CoreConfig reconstructs the core.Config this option set denotes.
func (r Resolved) CoreConfig() core.Config {
	cfg := core.Config{
		K:          r.K,
		Workers:    r.Workers,
		SampleSize: r.SampleSize,
		NoFineTune: r.NoFineTune,
	}
	// resolve validated the kernel string; a Resolved built elsewhere
	// with a bad kernel falls back to Auto, which is byte-identical.
	cfg.Kernel, _ = dpkern.Parse(r.Kernel)
	if r.RandomSampling {
		cfg.Sampling = core.RandomSampling
	}
	if r.FullAlphabet {
		cfg.Compress = bio.Identity(bio.AminoAcids)
	}
	aligner := r.Aligner
	cfg.NewLocalAligner = func(workers int) msa.Aligner {
		al, _ := engines.New(aligner, workers)
		return al
	}
	return cfg
}

// cacheKeyVersion invalidates every cached result when the key schema
// or anything result-affecting about the pipeline encoding changes.
const cacheKeyVersion = "samplealign-job-v1"

// CacheKey returns the content address of (input, options): the hex
// SHA-256 of the canonicalized sequences and every result-affecting
// resolved option. Identical resubmissions — same sequences in the same
// order, same effective options — collide on purpose; deadlines and
// worker counts never enter the key because they cannot change the
// alignment bytes.
func CacheKey(seqs []bio.Sequence, r Resolved) string {
	h := sha256.New()
	var num [binary.MaxVarintLen64]byte
	writeInt := func(v int64) {
		n := binary.PutVarint(num[:], v)
		h.Write(num[:n])
	}
	writeStr := func(s string) {
		writeInt(int64(len(s)))
		h.Write([]byte(s))
	}
	writeStr(cacheKeyVersion)
	// Result-affecting options only. Workers deliberately excluded:
	// alignments are byte-identical for every worker count. Kernel
	// likewise: the striped DP kernels are byte-identical to scalar, so
	// a scalar rerun may serve a striped job's cached result and vice
	// versa.
	writeInt(int64(r.Procs))
	writeStr(r.Aligner)
	writeInt(int64(r.K))
	writeInt(int64(r.SampleSize))
	writeInt(b2i(r.NoFineTune))
	writeInt(b2i(r.RandomSampling))
	writeInt(b2i(r.FullAlphabet))
	writeInt(int64(len(seqs)))
	for _, s := range seqs {
		writeStr(s.ID)
		writeStr(s.Desc)
		writeInt(int64(len(s.Data)))
		h.Write(s.Data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
