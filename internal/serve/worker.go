package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fasta"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// WorkerConfig configures one cluster worker daemon.
type WorkerConfig struct {
	CtrlAddr string                           // control listen address (coordinator dials this)
	MeshAddr string                           // fixed rank mesh listen address, advertised per job
	Metrics  *WorkerMetrics                   // rank-local metrics (-metrics-addr); nil disables
	Logger   *slog.Logger                     // structured logs; preferred
	Logf     func(format string, args ...any) // legacy printf sink, used only when Logger is nil
}

// RunWorker serves cluster jobs until ctx is cancelled: accept one
// control connection, run one rank, repeat. Jobs are strictly serial —
// the mesh address is fixed — so a worker is claimed for the duration
// of a job; admission control belongs to the coordinator.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	logger := resolveLogger(cfg.Logger, cfg.Logf)
	if cfg.MeshAddr == "" {
		return fmt.Errorf("serve: worker needs a mesh address")
	}
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", cfg.CtrlAddr)
	if err != nil {
		return fmt.Errorf("serve: worker listen %s: %w", cfg.CtrlAddr, err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		<-ctx.Done()
		_ = ln.Close() // unblock Accept
	}()
	logger.Info("worker listening", "ctrl", ln.Addr().String(), "mesh", cfg.MeshAddr)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("serve: worker accept: %w", err)
		}
		if err := handleWorkerJob(ctx, conn, cfg, logger); err != nil && ctx.Err() == nil {
			logger.Warn("worker job failed", "err", err)
		}
	}
}

// handleWorkerJob runs one job's rank over the given control
// connection. The returned error is also reported to the coordinator in
// the final ack when the connection still works.
func handleWorkerJob(ctx context.Context, conn net.Conn, cfg WorkerConfig, logger *slog.Logger) error {
	defer func() { _ = conn.Close() }()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var prep prepareMsg
	if err := dec.Decode(&prep); err != nil {
		return fmt.Errorf("prepare: %w", err)
	}
	if prep.Proto != clusterProto {
		enc.Encode(helloMsg{Error: fmt.Sprintf("unsupported protocol %d (want %d)", prep.Proto, clusterProto)})
		return fmt.Errorf("unsupported protocol %d", prep.Proto)
	}
	if err := enc.Encode(helloMsg{Mesh: cfg.MeshAddr}); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	// The spec carries the rank's whole FASTA shard; give a large
	// transfer more room than the prepare handshake while still not
	// trusting a hung coordinator forever.
	conn.SetReadDeadline(time.Now().Add(5 * time.Minute))
	var spec jobSpec
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	conn.SetReadDeadline(time.Time{})

	shard, err := fasta.Read(strings.NewReader(spec.FASTA))
	if err != nil {
		enc.Encode(jobAck{Error: fmt.Sprintf("parsing shard: %v", err)})
		return fmt.Errorf("parsing shard: %w", err)
	}
	traceID := ""
	if spec.Trace != nil {
		traceID = spec.Trace.ID
	}
	logger.Info("worker job starting", "rank", spec.Rank, "procs", len(spec.Addrs),
		"local_seqs", len(shard), "trace", traceID)

	// The control connection doubles as the cancellation channel: the
	// coordinator closing it (job cancelled, coordinator died) cancels
	// this rank, which unwinds its collectives via the mpi context
	// plumbing and frees the mesh port for the next job.
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	watchDone := make(chan struct{})
	// Unblock the reader (it sits in conn.Read) before waiting for it;
	// double-closing conn is harmless and the outer defer still covers
	// early returns above.
	defer func() { _ = conn.Close(); <-watchDone }()
	go func() {
		defer close(watchDone)
		var one [1]byte
		conn.Read(one[:]) // blocks until EOF/reset (no payload is expected)
		cancel()
	}()

	comm, err := mpi.DialTCPContext(jobCtx, mpi.TCPConfig{Rank: spec.Rank, Addrs: spec.Addrs})
	if err != nil {
		enc.Encode(jobAck{Error: fmt.Sprintf("mesh: %v", err)})
		return fmt.Errorf("mesh: %w", err)
	}
	commWatch := make(chan struct{})
	go func() {
		select {
		case <-jobCtx.Done():
			_ = comm.Close()
		case <-commWatch:
		}
	}()
	// Rank-local tracing: when the coordinator asked for it, this rank
	// runs its own tracer under the propagated ID and bounds and ships
	// the finished tree back in the ack (the coordinator grafts it into
	// the job's tree). Worker metrics feed off the same spans.
	runCtx := jobCtx
	var tr *obs.Tracer
	if spec.Trace != nil || cfg.Metrics != nil {
		o := obs.Options{}
		if spec.Trace != nil {
			o.ID = spec.Trace.ID
			o.MaxSpans = spec.Trace.MaxSpans
			o.SampleDepth = spec.Trace.SampleDepth
		}
		if cfg.Metrics != nil {
			o.OnSpanEnd = cfg.Metrics.ObserveStage
		}
		tr = obs.New(o)
		runCtx = obs.WithTracer(runCtx, tr)
	}
	cfg.Metrics.JobStarted()
	_, _, runErr := core.AlignContext(runCtx, comm, shard, spec.Options.CoreConfig())
	close(commWatch)
	_ = comm.Close()
	if runErr != nil {
		cfg.Metrics.JobFinished(false)
		enc.Encode(jobAck{Error: runErr.Error()})
		return fmt.Errorf("rank %d: %w", spec.Rank, runErr)
	}
	cfg.Metrics.JobFinished(true)
	ack := jobAck{OK: true}
	if spec.Trace != nil && tr != nil {
		if doc, derr := json.Marshal(tr.Document()); derr == nil {
			ack.Trace = doc
		}
	}
	logger.Info("worker job done", "rank", spec.Rank, "trace", traceID)
	return enc.Encode(ack)
}
