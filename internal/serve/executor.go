package serve

import (
	"context"

	"repro/internal/bio"
	"repro/internal/core"
	"repro/internal/msa"
)

// ExecReport is what an executor learned about one run, for the status
// endpoint and /metrics.
type ExecReport struct {
	Procs     int   // ranks actually used
	BytesSent int64 // communication volume across ranks
	BytesRecv int64
}

// Executor runs one alignment job. Implementations must honour ctx:
// cancellation has to unwind the run and release its workers (the queue
// relies on this for client-disconnect and deadline handling).
// FixedProcs returns a rank count the executor imposes on every job
// (0 = the request's procs are used as asked). Submit normalizes
// resolved options against it *before* computing the cache key, so a
// fixed-size cluster caches identical inputs under one key whatever
// procs the requests asked for.
type Executor interface {
	Name() string
	FixedProcs() int
	Align(ctx context.Context, seqs []bio.Sequence, opts Resolved) (*msa.Alignment, ExecReport, error)
}

// Inproc executes jobs with in-process ranks on the server itself — the
// default executor.
type Inproc struct{}

// Name identifies the executor in /healthz.
func (Inproc) Name() string { return "inproc" }

// FixedProcs reports that in-process jobs honour the requested procs.
func (Inproc) FixedProcs() int { return 0 }

// Align satisfies Executor via core.AlignInprocContext.
func (Inproc) Align(ctx context.Context, seqs []bio.Sequence, opts Resolved) (*msa.Alignment, ExecReport, error) {
	// Procs passes through untouched so a job is bit-for-bit the same
	// run the samplealign CLI would do with -p: the HTTP surface must
	// never return a different alignment than the batch surface.
	procs := opts.Procs
	res, err := core.AlignInprocContext(ctx, seqs, procs, opts.CoreConfig())
	if err != nil {
		return nil, ExecReport{}, err
	}
	rep := ExecReport{Procs: procs}
	for _, s := range res.Stats {
		if s == nil {
			continue
		}
		rep.BytesSent += s.Comm.BytesSent
		rep.BytesRecv += s.Comm.BytesRecv
	}
	return res.Alignment, rep, nil
}
