package serve

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fasta"
)

func httpServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postFASTA(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "text/x-fasta", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeView(t *testing.T, resp *http.Response) JobView {
	t.Helper()
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPSubmitPollResult(t *testing.T) {
	_, ts := httpServer(t, Config{})
	in := fasta.FormatString(testSeqs(12, 50, 40))

	resp := postFASTA(t, ts.URL+"/v1/jobs?procs=2", in)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	v := decodeView(t, resp)
	if v.ID == "" || v.State == "" {
		t.Fatalf("bad submit response: %+v", v)
	}

	// Poll to completion.
	deadline := time.Now().Add(30 * time.Second)
	for !v.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", v.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		v = decodeView(t, r)
	}
	if v.State != StateDone {
		t.Fatalf("job finished %s: %s", v.State, v.Error)
	}

	// Fetch the result and check it is a valid alignment of the input.
	r, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", r.StatusCode)
	}
	if got := r.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss", got)
	}
	body, _ := io.ReadAll(r.Body)
	rows, err := fasta.Read(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("result has %d rows, want 12", len(rows))
	}

	// Resubmission: same bytes, same options → instant cached 200.
	resp2 := postFASTA(t, ts.URL+"/v1/jobs?procs=2", in)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached submit status = %d, want 200", resp2.StatusCode)
	}
	v2 := decodeView(t, resp2)
	if !v2.Cached || v2.State != StateDone {
		t.Fatalf("resubmission not served from cache: %+v", v2)
	}
}

func TestHTTPSyncAlignAndJSONSubmit(t *testing.T) {
	_, ts := httpServer(t, Config{})
	seqs := testSeqs(8, 40, 41)
	body, _ := json.Marshal(SubmitRequest{
		FASTA:   fasta.FormatString(seqs),
		Options: Options{Procs: 2, Aligner: "muscle"},
	})
	resp, err := http.Post(ts.URL+"/v1/align", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("sync align status = %d: %s", resp.StatusCode, b)
	}
	out, _ := io.ReadAll(resp.Body)
	rows, err := fasta.Read(bytes.NewReader(out))
	if err != nil || len(rows) != 8 {
		t.Fatalf("sync result: %d rows, err %v", len(rows), err)
	}
}

func TestHTTPGzipSubmit(t *testing.T) {
	_, ts := httpServer(t, Config{})
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte(fasta.FormatString(testSeqs(6, 40, 42))))
	zw.Close()
	resp, err := http.Post(ts.URL+"/v1/align?procs=2", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("gzip align status = %d: %s", resp.StatusCode, b)
	}
}

func TestHTTPClientDisconnectCancelsJob(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 2)}
	defer close(fe.block)
	s, ts := httpServer(t, Config{Executor: fe, MaxConcurrent: 1})

	ctx, cancel := context.WithCancel(context.Background())
	body := fasta.FormatString(testSeqs(4, 30, 43))
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/align", strings.NewReader(body))
	req.Header.Set("Content-Type", "text/x-fasta")
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errCh <- err
	}()
	<-fe.started // the job is running inside the blocked executor
	cancel()     // client gives up

	if err := <-errCh; err == nil {
		t.Fatal("request unexpectedly succeeded")
	}
	// The disconnect must cancel the job and free its worker slot: a
	// fresh job must be able to run to completion.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var canceled *Job
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.View().State == StateCanceled {
				canceled = j
			}
		}
		s.mu.Unlock()
		if canceled != nil {
			if msg := canceled.View().Error; !strings.Contains(msg, "disconnected") {
				t.Fatalf("cancellation cause = %q, want client disconnect", msg)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job was never canceled after client disconnect")
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, err := s.Submit(testSeqs(4, 30, 44), Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started // the pool is free again: the next job starts
	s.Cancel(j.ID, nil)
	waitState(t, j, StateCanceled)
}

func TestHTTPClientDisconnectCancelsRealAlignment(t *testing.T) {
	// Same as above but with the real in-process executor: the
	// disconnect must propagate through the job context into the rank
	// world and unwind a genuinely running alignment.
	s, ts := httpServer(t, Config{MaxConcurrent: 1})

	ctx, cancel := context.WithCancel(context.Background())
	body := fasta.FormatString(testSeqs(150, 300, 45))
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/align?procs=2", strings.NewReader(body))
	req.Header.Set("Content-Type", "text/x-fasta")
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errCh <- err
	}()

	// Wait until the job is actually executing, then disconnect.
	var job *Job
	deadline := time.Now().Add(30 * time.Second)
	for job == nil {
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.View().State == StateRunning {
				job = j
			}
		}
		s.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	cancel()
	<-errCh
	v := waitState(t, job, StateCanceled)
	if !strings.Contains(v.Error, "disconnected") {
		t.Fatalf("cancellation cause = %q", v.Error)
	}
	if wait := time.Since(start); wait > 10*time.Second {
		t.Fatalf("rank world took %v to unwind after disconnect", wait)
	}
}

func TestHTTPAdmission429(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 2)}
	defer close(fe.block)
	_, ts := httpServer(t, Config{Executor: fe, MaxConcurrent: 1, MaxQueued: 1})

	submit := func(seed int64) *http.Response {
		return postFASTA(t, ts.URL+"/v1/jobs", fasta.FormatString(testSeqs(3, 30, seed)))
	}
	r1 := submit(50)
	r1.Body.Close()
	<-fe.started
	r2 := submit(51)
	r2.Body.Close()
	r3 := submit(52)
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestHTTPErrorsAndHealthAndMetrics(t *testing.T) {
	_, ts := httpServer(t, Config{Limits: Limits{MaxProcs: 4}})

	// Unknown job.
	for _, path := range []string{"/v1/jobs/junk", "/v1/jobs/junk/result"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s = %d, want 404", path, r.StatusCode)
		}
	}
	// Bad requests.
	for _, tc := range []struct{ path, body string }{
		{"/v1/jobs", "not fasta at all"},
		{"/v1/jobs?procs=999", ">a\nACD\n"},    // over MaxProcs
		{"/v1/jobs?procs=banana", ">a\nACD\n"}, // unparsable query
		{"/v1/jobs?aligner=nope", ">a\nACD\n"}, // unknown aligner
		{"/v1/jobs", ">a\nACD\n>a\nACD\n"},     // duplicate ids
		{"/v1/jobs", `{"fasta": 3}`},           // bad JSON shape
	} {
		r := postFASTA(t, ts.URL+tc.path, tc.body)
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s %q = %d, want 400", tc.path, tc.body, r.StatusCode)
		}
	}

	// Health.
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string     `json:"status"`
		Executor string     `json:"executor"`
		Queue    QueueStats `json:"queue"`
	}
	if err := json.NewDecoder(r.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if health.Status != "ok" || health.Executor != "inproc" {
		t.Fatalf("health: %+v", health)
	}

	// Metrics include the admission counters and histograms.
	r, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(r.Body)
	r.Body.Close()
	for _, want := range []string{
		"samplealign_jobs_submitted_total",
		"samplealign_cache_hits_total",
		"samplealign_queue_depth",
		"samplealign_job_run_seconds_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %s:\n%s", want, metrics)
		}
	}
}

func TestHTTPResultStates(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 2)}
	defer close(fe.block)
	s, ts := httpServer(t, Config{Executor: fe, MaxConcurrent: 1})
	j, err := s.Submit(testSeqs(3, 30, 60), Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started
	// Result of a running job: 409 + Retry-After.
	r, _ := http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", ts.URL, j.ID))
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("running result = %d, want 409", r.StatusCode)
	}
	// Cancel over HTTP; result then reports 410.
	req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/v1/jobs/%s", ts.URL, j.ID), nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dr.Body)
	dr.Body.Close()
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", dr.StatusCode)
	}
	waitState(t, j, StateCanceled)
	r, _ = http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", ts.URL, j.ID))
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusGone {
		t.Fatalf("canceled result = %d, want 410", r.StatusCode)
	}
}
