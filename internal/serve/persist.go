package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/bio"
	"repro/internal/fasta"
	"repro/internal/store"
)

// This file is the glue between the job service and the store package:
// what goes into journal records, how a result is laid out on disk,
// and how a journal replay is folded back into server state.
//
// Journal schema (store.Record.Data by record type):
//
//	submit  submitData — resolved options, input FASTA (omitted for
//	        cache-hit submissions, which carry a finish record in the
//	        same breath and are never re-run)
//	start   (no data) — the flight began executing
//	finish  finishData — terminal state done/failed + result summary
//	cancel  finishData — terminal state canceled + cause
//	shutdown (no data) — clean server Close
//
// Replay: a submit with no terminal record is re-enqueued (its FASTA
// is the input); one with a terminal record becomes a visible finished
// job. On open the journal is compacted: finished jobs keep only a
// FASTA-less submit + their terminal record, pruned beyond MaxJobs.

// submitData is the submit record payload.
type submitData struct {
	Opts      Resolved `json:"opts"`
	NumSeqs   int      `json:"num_seqs"`
	FASTA     []byte   `json:"fasta,omitempty"`
	Cached    bool     `json:"cached,omitempty"`
	Coalesced bool     `json:"coalesced,omitempty"`
	Recovered bool     `json:"recovered,omitempty"`
}

// finishData is the finish/cancel record payload.
type finishData struct {
	State   State       `json:"state"`
	Error   string      `json:"error,omitempty"`
	Summary *resultMeta `json:"summary,omitempty"`
}

// resultMeta is the result summary persisted in finish records and as
// the meta block of on-disk result files.
type resultMeta struct {
	NumSeqs   int    `json:"num_seqs"`
	Width     int    `json:"width"`
	Procs     int    `json:"procs"`
	BytesSent int64  `json:"bytes_sent"`
	BytesRecv int64  `json:"bytes_recv"`
	ElapsedNs int64  `json:"elapsed_ns"`
	TraceID   string `json:"trace_id,omitempty"`
}

func metaOf(res *Result) *resultMeta {
	if res == nil {
		return nil
	}
	return &resultMeta{
		NumSeqs:   res.NumSeqs,
		Width:     res.Width,
		Procs:     res.Procs,
		BytesSent: res.BytesSent,
		BytesRecv: res.BytesRecv,
		ElapsedNs: int64(res.Elapsed),
		TraceID:   res.TraceID,
	}
}

func (m *resultMeta) result(payload []byte) *Result {
	return &Result{
		FASTA:     payload,
		NumSeqs:   m.NumSeqs,
		Width:     m.Width,
		Procs:     m.Procs,
		BytesSent: m.BytesSent,
		BytesRecv: m.BytesRecv,
		Elapsed:   time.Duration(m.ElapsedNs),
		TraceID:   m.TraceID,
	}
}

// resultFromMeta decodes a disk-store meta block back into a Result.
func resultFromMeta(meta, payload []byte) (*Result, error) {
	var m resultMeta
	if err := json.Unmarshal(meta, &m); err != nil {
		return nil, err
	}
	return m.result(payload), nil
}

// RecoveryInfo summarises what a journal replay reconstructed.
type RecoveryInfo struct {
	Enabled        bool `json:"enabled"`
	JournalRecords int  `json:"journal_records"` // intact records replayed
	Finished       int  `json:"finished"`        // terminal jobs restored to the job table
	Requeued       int  `json:"requeued"`        // unfinished jobs re-enqueued
	Interrupted    int  `json:"interrupted"`     // of Requeued: drain-timeout casualties of the previous shutdown
	CleanShutdown  bool `json:"clean_shutdown"`  // previous process closed cleanly
}

// Recovery reports what startup replay found. Zero value (Enabled
// false) without a DataDir.
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// openPersistence locks the data directory, opens the result store and
// the journal, replays the journal into server state and compacts it.
// Called from New before any dispatcher starts, so replay never races
// a live submission.
func (s *Server) openPersistence() error {
	dir := s.cfg.DataDir
	unlock, err := store.LockDir(dir)
	if err != nil {
		return err
	}
	s.unlockDir = unlock
	if s.cfg.StoreEntries >= 0 { // -1 disables the disk result tier
		maxBytes := s.cfg.StoreBytes
		if maxBytes < 0 {
			maxBytes = 0 // store: <= 0 means unbounded
		}
		s.results, err = store.OpenResults(filepath.Join(dir, "results"), s.cfg.StoreEntries, maxBytes)
		if err != nil {
			s.unlockDir()
			s.unlockDir = nil
			return fmt.Errorf("serve: opening result store: %w", err)
		}
		// Traces live beside results under the same bounds: a trace is
		// only useful while its result is still addressable, and both
		// stores evict independently by their own LRU.
		s.traces, err = store.OpenResults(filepath.Join(dir, "traces"), s.cfg.StoreEntries, maxBytes)
		if err != nil {
			s.unlockDir()
			s.unlockDir = nil
			return fmt.Errorf("serve: opening trace store: %w", err)
		}
	}
	journal, recs, err := store.OpenJournalOptions(filepath.Join(dir, "journal.wal"), store.JournalOptions{
		MaxBatchBytes: s.cfg.JournalBatchBytes,
		MaxWait:       s.cfg.JournalBatchWait,
		OnFlush: func(records, bytes int64) {
			s.metrics.GroupRecords.Observe(float64(records))
		},
	})
	if err != nil {
		s.unlockDir()
		s.unlockDir = nil
		return fmt.Errorf("serve: opening journal: %w", err)
	}
	s.journal = journal
	s.recovery.Enabled = true
	s.recoverFromJournal(recs)
	return nil
}

// journalAppend best-effort appends: a journal I/O error degrades
// durability, not service — it is logged and the job proceeds.
func (s *Server) journalAppend(rec store.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		s.log.Warn("journal append failed", "type", string(rec.Type), "job", rec.Job, "err", err)
	}
}

// journalAppendBatch best-effort appends a record group covered by a
// single fsync (store.Journal.AppendBatch): either every record in it
// becomes durable or none does. Like journalAppend, an I/O error
// degrades durability, not service.
func (s *Server) journalAppendBatch(recs []store.Record) {
	if s.journal == nil || len(recs) == 0 {
		return
	}
	if err := s.journal.AppendBatch(recs); err != nil {
		s.log.Warn("journal batch append failed", "records", len(recs), "err", err)
	}
}

func submitRecord(id, key string, at time.Time, sd submitData) store.Record {
	data, _ := json.Marshal(sd)
	return store.Record{Type: store.RecSubmit, Job: id, Key: key, Time: at, Data: data}
}

func finishRecord(id, key string, state State, errMsg string, summary *resultMeta, at time.Time) store.Record {
	typ := store.RecFinish
	if state == StateCanceled {
		typ = store.RecCancel
	}
	data, _ := json.Marshal(finishData{State: state, Error: errMsg, Summary: summary})
	return store.Record{Type: typ, Job: id, Key: key, Time: at, Data: data}
}

// interruptRecord marks a job killed by the shutdown path itself. It
// carries no state: at replay it is a hint ("the last process died on
// purpose with this job still live"), not a terminal record — the job
// re-enqueues from its submit record like a crash victim.
func interruptRecord(id, key string, at time.Time) store.Record {
	return store.Record{Type: store.RecInterrupt, Job: id, Key: key, Time: at}
}

// journalSubmit makes an accepted job durable: options plus the full
// input, enough to re-run it from a cold start.
func (s *Server) journalSubmit(job *Job, seqs []bio.Sequence) {
	if s.journal == nil {
		return
	}
	sd := submitData{
		Opts:      job.Opts,
		NumSeqs:   job.NumSeqs,
		FASTA:     []byte(fasta.FormatString(seqs)),
		Coalesced: job.coalesced,
		Recovered: job.recovered,
	}
	s.journalAppend(submitRecord(job.ID, job.Key, job.Submitted, sd))
}

// journalTerminalJob records a submission that was terminal on arrival
// (cache/store hit): a FASTA-less submit plus its finish, so the job
// stays visible after a restart without ever being re-run. The finish
// record goes first: replay merges records in either order, and a
// crash between the two appends must leave a terminal half (a lone
// unfinished submit with no input would be unrunnable), never a
// "failed" resurrection of a job the client saw succeed.
func (s *Server) journalTerminalJob(job *Job) {
	if s.journal == nil {
		return
	}
	job.mu.Lock()
	summary, finished := metaOf(job.result), job.finished
	job.mu.Unlock()
	s.journalAppend(finishRecord(job.ID, job.Key, StateDone, "", summary, finished))
	s.journalAppend(submitRecord(job.ID, job.Key, job.Submitted,
		submitData{Opts: job.Opts, NumSeqs: job.NumSeqs, Cached: true}))
}

// journalFinish records a job's terminal state. A cancellation whose
// cause is the shutdown itself (ErrInterrupted: the drain window
// expired, or Close ran with the job still live) is journaled as an
// interrupt instead — terminal for this process, re-enqueueable for
// the next.
func (s *Server) journalFinish(id, key string, state State, cause error, summary *Result, at time.Time) {
	if s.journal == nil {
		return
	}
	if state == StateCanceled && errors.Is(cause, ErrInterrupted) {
		s.journalAppend(interruptRecord(id, key, at))
		return
	}
	errMsg := ""
	if cause != nil {
		errMsg = cause.Error()
	}
	s.journalAppend(finishRecord(id, key, state, errMsg, metaOf(summary), at))
}

// storePut persists a finished result content-addressed on disk.
func (s *Server) storePut(key string, res *Result) {
	if s.results == nil {
		return
	}
	meta, _ := json.Marshal(metaOf(res))
	if err := s.results.Put(key, meta, res.FASTA); err != nil {
		s.log.Warn("persisting result failed", "key", key, "err", err)
	}
}

// storePutTrace persists a finished job's span tree beside its result,
// so traces survive restarts and cache evictions of the memory tier.
func (s *Server) storePutTrace(key string, res *Result) {
	if s.traces == nil || len(res.Trace) == 0 {
		return
	}
	meta, _ := json.Marshal(resultMeta{TraceID: res.TraceID})
	if err := s.traces.Put(key, meta, res.Trace); err != nil {
		s.log.Warn("persisting trace failed", "key", key, "trace", res.TraceID, "err", err)
	}
}

// recoverFromJournal folds replayed records into server state:
// finished jobs become visible job records, unfinished ones are
// re-enqueued (coalescing by content address, exactly like live
// submissions), and the journal is compacted to drop dead payloads.
// Runs single-threaded from New — no dispatchers, no HTTP yet.
func (s *Server) recoverFromJournal(recs []store.Record) {
	type rj struct {
		id, key     string
		submitted   time.Time
		sub         *submitData
		started     time.Time
		state       State
		errMsg      string
		summary     *resultMeta
		finished    time.Time
		interrupted bool // hard-canceled by the previous shutdown, not by a caller
	}
	var order []*rj
	byID := make(map[string]*rj)
	// A job's records usually appear submit → start → finish, but
	// appends race the server lock, so replay tolerates any order per
	// job: records merge into one entry keyed by job ID, and a terminal
	// record wins whenever it arrives.
	entry := func(rec store.Record) *rj {
		r := byID[rec.Job]
		if r == nil {
			r = &rj{id: rec.Job, key: rec.Key, submitted: rec.Time, state: StateQueued}
			byID[rec.Job] = r
			order = append(order, r)
		}
		return r
	}
	clean := true // an empty journal has nothing to have lost
	for _, rec := range recs {
		clean = rec.Type == store.RecShutdown
		switch rec.Type {
		case store.RecSubmit:
			var sd submitData
			if err := json.Unmarshal(rec.Data, &sd); err != nil {
				s.log.Warn("recovery: submit record unreadable", "job", rec.Job, "err", err)
				continue
			}
			r := entry(rec)
			r.sub = &sd
			r.submitted = rec.Time
		case store.RecStart:
			if r := byID[rec.Job]; r != nil && !r.state.Terminal() {
				r.started = rec.Time
				r.state = StateRunning
			}
		case store.RecFinish, store.RecCancel:
			var fd finishData
			if err := json.Unmarshal(rec.Data, &fd); err != nil {
				s.log.Warn("recovery: finish record unreadable", "job", rec.Job, "err", err)
				continue
			}
			r := entry(rec)
			r.state = fd.State
			r.errMsg = fd.Error
			r.summary = fd.Summary
			r.finished = rec.Time
		case store.RecInterrupt:
			// Deliberately NOT terminal: the previous shutdown killed
			// this job mid-flight, so it falls through to the requeue
			// path below exactly like a crash victim (unless a real
			// terminal record also exists, which wins).
			if r := entry(rec); !r.state.Terminal() {
				r.interrupted = true
			}
		}
	}
	s.recovery.JournalRecords = len(recs)
	s.recovery.CleanShutdown = clean

	now := time.Now()
	var pending []*flight
	flightByKey := make(map[string]*flight)
	for _, r := range order {
		if r.sub == nil {
			// A terminal or interrupt record whose submit half was torn
			// away by a crash (or whose submit JSON was unreadable):
			// nothing to restore or re-run.
			s.log.Warn("recovery: job has no submit record; dropped", "job", r.id)
			continue
		}
		job := &Job{
			ID:        r.id,
			Key:       r.key,
			Opts:      r.sub.Opts,
			Submitted: r.submitted,
			NumSeqs:   r.sub.NumSeqs,
			done:      make(chan struct{}),
		}
		job.cached = r.sub.Cached
		job.coalesced = r.sub.Coalesced

		finalize := func(state State, errMsg string, summary *resultMeta, started, finished time.Time) {
			job.state = state
			job.started = started
			job.finished = finished
			if summary != nil {
				job.result = summary.result(nil)
				job.Trace = summary.TraceID
			}
			if errMsg != "" {
				job.err = errors.New(errMsg)
			}
			close(job.done)
			s.rememberLocked(job)
			s.recovery.Finished++
			r.state, r.errMsg, r.summary, r.finished = state, errMsg, summary, finished
		}

		switch {
		case r.state.Terminal():
			finalize(r.state, r.errMsg, r.summary, r.started, r.finished)
		default:
			job.recovered = true
			// The result may already exist (crash after the store write
			// but before the finish record): complete without re-running.
			if res, ok := s.lookupResult(r.key); ok {
				job.cached = true
				finalize(StateDone, "", metaOf(res), now, now)
				continue
			}
			if len(r.sub.FASTA) == 0 {
				// No input to re-run: a cache-hit submit whose finish
				// half was torn away. The caller already got its answer
				// from the cache; resurrecting this as "failed" would
				// contradict what they saw, so drop it (and let
				// compaction shed it via the terminal-untracked path).
				s.log.Warn("recovery: job has no journaled input; dropped", "job", r.id)
				r.state = StateCanceled
				continue
			}
			seqs, err := fasta.Read(bytes.NewReader(r.sub.FASTA))
			if err == nil && len(seqs) == 0 {
				err = errors.New("no sequences")
			}
			if err != nil {
				finalize(StateFailed, fmt.Sprintf("recovery: journaled input unreadable: %v", err), nil, r.started, now)
				continue
			}
			fl := flightByKey[r.key]
			if fl == nil {
				fctx, fcancel := context.WithCancelCause(s.baseCtx)
				fl = &flight{key: r.key, trace: newTraceID(), seqs: seqs, opts: r.sub.Opts,
					ctx: fctx, cancel: fcancel, bus: s.newEventBus(), enqueued: now, state: StateQueued}
				flightByKey[r.key] = fl
				pending = append(pending, fl)
			} else {
				job.coalesced = true
			}
			job.fl = fl
			job.Trace = fl.trace
			job.bus = fl.bus
			job.state = StateQueued
			fl.jobs = append(fl.jobs, job)
			s.rememberLocked(job)
			s.publish(fl.bus, Event{Type: EventQueued, Job: job.ID, Trace: fl.trace,
				Coalesced: job.coalesced, Recovered: true})
			s.recovery.Requeued++
			if r.interrupted {
				s.recovery.Interrupted++
			}
			s.metrics.Recovered.Inc()
		}
	}
	for _, fl := range pending {
		fl.queuedSlot = true
		s.inflight[fl.key] = fl
		s.fifo = append(s.fifo, fl)
		s.queued++
	}

	// Compact: finished jobs shed their input payload (and are pruned
	// beyond MaxJobs, in step with the job table); unfinished ones keep
	// the FASTA they will re-run from.
	var compact []store.Record
	for _, r := range order {
		if r.sub == nil {
			continue // dropped above: no submit half to carry forward
		}
		sd := *r.sub
		if r.state.Terminal() {
			if _, tracked := s.jobs[r.id]; !tracked {
				continue // pruned from the job table: prune from the journal too
			}
			sd.FASTA = nil
			compact = append(compact, submitRecord(r.id, r.key, r.submitted, sd))
			compact = append(compact, finishRecord(r.id, r.key, r.state, r.errMsg, r.summary, r.finished))
		} else {
			sd.Recovered = true
			compact = append(compact, submitRecord(r.id, r.key, r.submitted, sd))
		}
	}
	if err := s.journal.Rewrite(compact); err != nil {
		s.log.Warn("journal compaction failed", "err", err)
	}

	// Recovered jobs restart their deadline budget at replay time — the
	// original submission clock includes the downtime, which is the
	// server's fault, not the caller's.
	for _, fl := range pending {
		for _, job := range fl.jobs {
			s.armDeadline(job, now)
		}
	}
}
