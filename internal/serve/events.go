package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/events"
	"repro/internal/obs"
)

// Live job progress streaming. Every flight owns one bounded event bus
// (internal/events); the tracer's span-close hook feeds stage and rank
// transitions into it, the job lifecycle feeds queued/terminal
// transitions, and GET /v1/jobs/{id}/events serves the bus as
// Server-Sent Events. Coalesced riders share their flight's bus, so
// they see one stream; each job's terminal event carries the job ID,
// letting a rider's stream end on its own outcome while the flight
// runs on for the others. Slow consumers never block the pipeline:
// overflow drops are counted in samplealign_events_dropped_total and
// a reconnecting client resynchronizes via SSE Last-Event-ID replay
// or the job's terminal state.

// Event is one entry on a job's live progress stream, serialized as
// the SSE data payload. The SSE id line carries the bus sequence
// number; the SSE event line repeats Type.
type Event struct {
	Type       string    `json:"type"`
	Time       time.Time `json:"time"`
	Job        string    `json:"job,omitempty"`      // set on job-scoped events (queued, done, failed, canceled)
	Trace      string    `json:"trace_id,omitempty"` // flight's trace ID
	Stage      string    `json:"stage,omitempty"`    // stage events: canonical pipeline stage name
	Rank       *int      `json:"rank,omitempty"`     // rank-attributed events
	DurationNs int64     `json:"duration_ns,omitempty"`
	Remote     bool      `json:"remote,omitempty"` // span adopted from a worker rank's tracer
	Cached     bool      `json:"cached,omitempty"`
	Coalesced  bool      `json:"coalesced,omitempty"`
	Recovered  bool      `json:"recovered,omitempty"`
	Error      string    `json:"error,omitempty"`
}

// Event types, in the order a simple job emits them.
const (
	EventQueued   = "queued"   // job accepted (or attached to an in-flight computation)
	EventStarted  = "started"  // flight dispatched to an executor
	EventStage    = "stage"    // one pipeline stage finished (span close)
	EventRank     = "rank"     // one rank's share of the pipeline finished
	EventDone     = "done"     // job finished with a result
	EventFailed   = "failed"   // job finished with an error
	EventCanceled = "canceled" // job canceled (caller, deadline, disconnect, shutdown)
)

const (
	// eventHistory bounds the entries a flight's bus retains for
	// Last-Event-ID replay; older entries are gone for late subscribers.
	eventHistory = 256
	// eventSubBuffer bounds one SSE subscriber's delivery buffer; a
	// consumer further behind than this misses entries (accounted).
	eventSubBuffer = 64
)

// newEventBus builds a flight's bus with drop accounting wired to the
// server metrics.
func (s *Server) newEventBus() *events.Bus[Event] {
	return events.NewBus[Event](eventHistory, func(n int64) { s.metrics.EventsDropped.Add(n) })
}

// publish stamps and publishes ev; nil buses (events disabled for this
// job) are a no-op.
func (s *Server) publish(bus *events.Bus[Event], ev Event) {
	if bus == nil {
		return
	}
	ev.Time = time.Now()
	bus.Publish(ev)
}

// publishSpanEvent maps one finished span onto the live stream:
// canonical pipeline stages become stage events, per-rank pipeline
// roots become rank events, everything else stays trace-only. Shaped to
// close over a flight's bus and plug into obs.Options.OnSpanClose.
func (s *Server) publishSpanEvent(bus *events.Bus[Event], trace string, sc obs.SpanClose) {
	var ev Event
	switch {
	case pipelineStages[sc.Name]:
		ev = Event{Type: EventStage, Stage: sc.Name}
	case sc.Name == "rank":
		ev = Event{Type: EventRank}
	default:
		return
	}
	ev.Trace = trace
	ev.DurationNs = sc.DurationNs
	ev.Remote = sc.Remote
	for _, a := range sc.Attrs {
		if a.Key == "rank" {
			if r, err := strconv.Atoi(a.Value); err == nil {
				ev.Rank = &r
			}
			break
		}
	}
	s.publish(bus, ev)
}

// terminalEvent synthesizes a job's terminal event from its view, for
// subscribers whose stream missed the published one (slow-consumer
// drop) or whose job predates the bus (journal-restored).
func terminalEvent(v JobView) Event {
	ev := Event{Job: v.ID, Trace: v.TraceID, Cached: v.Cached, Time: time.Now()}
	switch v.State {
	case StateDone:
		ev.Type = EventDone
	case StateCanceled:
		ev.Type = EventCanceled
		ev.Error = v.Error
	default:
		ev.Type = EventFailed
		ev.Error = v.Error
	}
	return ev
}

// terminalFor reports whether ev ends the stream for this job: a
// terminal event addressed to it (riders on the same bus see each
// other's cancellations pass by without ending their own stream).
func terminalFor(j *Job, ev Event) bool {
	switch ev.Type {
	case EventDone, EventFailed, EventCanceled:
		return ev.Job == j.ID
	}
	return false
}

// writeSSE frames one event: id (bus sequence, for Last-Event-ID
// resume; omitted for synthesized events), event type, JSON data.
func writeSSE(w io.Writer, seq int64, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	if seq > 0 {
		fmt.Fprintf(w, "id: %d\n", seq)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}

// handleEvents streams a job's progress as Server-Sent Events until the
// job reaches a terminal state (the stream then ends) or the client
// disconnects. Disconnecting only ends the stream — it never cancels
// the job (unlike the synchronous align endpoint, an events subscriber
// is an observer, not a waiter). Reconnecting clients resume without
// duplicates by sending Last-Event-ID (or ?after=N); events older than
// the bus's retained history are replayed as gaps, and a stream that
// missed its job's terminal event synthesizes one from the job record.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "connection does not support streaming")
		return
	}
	var after int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			after = n
		}
	}
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "query after=%q: %v", v, err)
			return
		}
		after = n
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	h.Set("X-Job-Id", job.ID)
	if job.Trace != "" {
		h.Set("X-Trace-Id", job.Trace)
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	emit := func(seq int64, ev Event) bool {
		writeSSE(w, seq, ev)
		flusher.Flush()
		return terminalFor(job, ev)
	}
	synth := func() {
		if v := job.View(); v.State.Terminal() {
			emit(0, terminalEvent(v))
		}
	}

	bus := job.bus
	if bus == nil {
		// No retained stream for this job (restored from the journal
		// after a restart): its history is gone, but consumers still
		// converge on the outcome.
		synth()
		return
	}
	sub := bus.Subscribe(after, eventSubBuffer)
	defer sub.Close()
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case e, open := <-sub.C():
			if !open {
				// Bus closed with the flight; if this job's terminal
				// event was dropped for us, synthesize it.
				synth()
				return
			}
			if emit(e.Seq, e.V) {
				return
			}
		case <-job.Done():
			// The terminal event is published before Done closes, so it
			// is already buffered for us unless we fell behind: drain,
			// then synthesize if it never surfaces.
			for {
				select {
				case e, open := <-sub.C():
					if !open {
						synth()
						return
					}
					if emit(e.Seq, e.V) {
						return
					}
				default:
					synth()
					return
				}
			}
		case <-heartbeat.C:
			// Comment line: keeps proxies from idling out a quiet job.
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
