package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fasta"
)

func TestSubmitBatchRunsAllInputs(t *testing.T) {
	fe := &fakeExec{}
	s := newTestServer(t, Config{Executor: fe})
	defer s.Close()
	items := []BatchItem{
		{Seqs: testSeqs(6, 40, 80), Opts: Options{Procs: 2}},
		{Seqs: testSeqs(7, 40, 81), Opts: Options{Procs: 2}},
		{Seqs: testSeqs(8, 40, 82), Opts: Options{Procs: 3}},
	}
	jobs, err := s.SubmitBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(items) {
		t.Fatalf("got %d jobs, want %d", len(jobs), len(items))
	}
	ids := make(map[string]bool)
	for i, job := range jobs {
		if ids[job.ID] {
			t.Fatalf("duplicate job ID %s", job.ID)
		}
		ids[job.ID] = true
		v := waitState(t, job, StateDone)
		// The fake executor aligns by identity, so each payload is its
		// own input verbatim.
		payload, ok := s.resultPayload(job, v.Result)
		if !ok {
			t.Fatalf("job %d: no payload", i)
		}
		if want := fasta.FormatString(items[i].Seqs); string(payload) != want {
			t.Fatalf("job %d: result does not match its input", i)
		}
	}
	if got := s.metrics.BatchSubmitted.Value(); got != 1 {
		t.Fatalf("batch_requests = %d, want 1", got)
	}
	if got := s.metrics.BatchJobs.Value(); got != 3 {
		t.Fatalf("batch_jobs = %d, want 3", got)
	}
}

func TestSubmitBatchValidatesEveryInputFirst(t *testing.T) {
	s := newTestServer(t, Config{Executor: &fakeExec{}})
	defer s.Close()
	before := s.Stats().Jobs
	_, err := s.SubmitBatch([]BatchItem{
		{Seqs: testSeqs(4, 30, 83)},
		{}, // empty input: rejects the whole batch
	})
	var bad *BadRequestError
	if !errors.As(err, &bad) || !strings.Contains(err.Error(), "input 1") {
		t.Fatalf("err = %v, want BadRequestError naming input 1", err)
	}
	if got := s.Stats().Jobs; got != before {
		t.Fatalf("rejected batch left %d job records, want %d", got, before)
	}
}

func TestSubmitBatchAllOrNothingAdmission(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 8)}
	s := newTestServer(t, Config{Executor: fe, MaxConcurrent: 1, MaxQueued: 2})
	defer s.Close()

	// Occupy the executor, then one of the two queue slots.
	running, err := s.Submit(testSeqs(4, 30, 84), Options{})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started
	queued, err := s.Submit(testSeqs(4, 30, 85), Options{})
	if err != nil {
		t.Fatal(err)
	}

	// A batch that can never fit is a client error, not overload.
	three := []BatchItem{
		{Seqs: testSeqs(4, 30, 86)},
		{Seqs: testSeqs(4, 30, 87)},
		{Seqs: testSeqs(4, 30, 88)},
	}
	var bad *BadRequestError
	if _, err := s.SubmitBatch(three); !errors.As(err, &bad) {
		t.Fatalf("oversized batch err = %v, want BadRequestError", err)
	}

	// Two new flights against one free slot: rejected whole, nothing
	// admitted — not even partially.
	before := s.Stats()
	two := three[:2]
	if _, err := s.SubmitBatch(two); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overfull batch err = %v, want ErrOverloaded", err)
	}
	after := s.Stats()
	if after.Queued != before.Queued || after.Jobs != before.Jobs {
		t.Fatalf("rejected batch mutated state: before %+v after %+v", before, after)
	}
	if got := s.metrics.BatchRejected.Value(); got != 2 {
		t.Fatalf("batch_rejected = %d, want 2 (oversized + overfull)", got)
	}

	// One new flight fits the remaining slot.
	jobs, err := s.SubmitBatch(two[:1])
	if err != nil {
		t.Fatalf("batch within capacity rejected: %v", err)
	}
	close(fe.block)
	waitState(t, running, StateDone)
	waitState(t, queued, StateDone)
	waitState(t, jobs[0], StateDone)
}

func TestSubmitBatchCoalescesAndServesCacheHits(t *testing.T) {
	fe := &fakeExec{}
	s := newTestServer(t, Config{Executor: fe})
	defer s.Close()
	cachedSeqs := testSeqs(5, 40, 89)
	first, err := s.Submit(cachedSeqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first, StateDone)
	runsBefore := fe.Runs()

	fresh := testSeqs(6, 40, 90)
	jobs, err := s.SubmitBatch([]BatchItem{
		{Seqs: cachedSeqs}, // cache hit: instantly terminal
		{Seqs: fresh},      // new flight
		{Seqs: fresh},      // coalesces onto the flight created one item up
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := jobs[0].View(); v.State != StateDone || !v.Cached {
		t.Fatalf("cache-hit item: %+v", v)
	}
	waitState(t, jobs[1], StateDone)
	v2 := waitState(t, jobs[2], StateDone)
	if !v2.Coalesced {
		t.Fatal("intra-batch duplicate did not coalesce")
	}
	if jobs[1].Trace != jobs[2].Trace {
		t.Fatal("coalesced batch items have different traces")
	}
	if got := fe.Runs() - runsBefore; got != 1 {
		t.Fatalf("batch ran %d computations, want 1 (hit + coalesce)", got)
	}
	if got := s.metrics.CacheHits.Value(); got != 1 {
		t.Fatalf("cache_hits = %d, want 1", got)
	}
	if got := s.metrics.Coalesced.Value(); got != 1 {
		t.Fatalf("coalesced = %d, want 1", got)
	}
}

func TestSubmitBatchJournalsOneGroupAndRecoversAllMembers(t *testing.T) {
	dir := t.TempDir()
	inputs := [][]int64{{91}, {92}, {93}}
	items := make([]BatchItem, len(inputs))
	for i, seed := range inputs {
		items[i] = BatchItem{Seqs: testSeqs(5+i, 40, seed[0]), Opts: Options{Procs: 2}}
	}

	fe1 := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 4)}
	s1 := newTestServer(t, Config{Executor: fe1, DataDir: dir, MaxConcurrent: 1})
	defer s1.Close()
	jobs1, err := s1.SubmitBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	<-fe1.started // first flight is executing: its start record is flushed

	// The batch's three submit records rode ONE fsync; the start record
	// of the dispatched flight rode a second. Nothing else has touched
	// the journal.
	if f, r := s1.journal.Flushes(), s1.journal.FlushedRecords(); f != 2 || r != 4 {
		t.Fatalf("flushes=%d flushedRecords=%d, want 2 and 4 (3 submits in one group + 1 start)", f, r)
	}
	if !strings.Contains(s1.metrics.Render(s1.Stats(), 0, nil), "samplealign_journal_group_records_bucket") {
		t.Fatal("group-size histogram missing from metrics")
	}
	crash(s1)

	// Restart: every journaled-but-unfinished batch member re-enqueues
	// under its original ID and completes byte-identical.
	fe2 := &fakeExec{}
	s2 := newTestServer(t, Config{Executor: fe2, DataDir: dir})
	defer s2.Close()
	rec := s2.Recovery()
	if rec.CleanShutdown || rec.Requeued != len(items) {
		t.Fatalf("recovery = %+v, want %d requeued after crash", rec, len(items))
	}
	for i, job1 := range jobs1 {
		j, ok := s2.Job(job1.ID)
		if !ok {
			t.Fatalf("batch member %d (%s) not restored under its original ID", i, job1.ID)
		}
		if !j.View().Recovered {
			t.Fatalf("batch member %d not marked recovered", i)
		}
		v := waitState(t, j, StateDone)
		payload, ok := s2.resultPayload(j, v.Result)
		if !ok {
			t.Fatalf("batch member %d: no payload after recovery", i)
		}
		if want := fasta.FormatString(items[i].Seqs); string(payload) != want {
			t.Fatalf("batch member %d: recovered result differs from its input", i)
		}
	}
	if fe2.Runs() != len(items) {
		t.Fatalf("recovery ran %d computations, want %d", fe2.Runs(), len(items))
	}
}

func TestHandleBatchHTTP(t *testing.T) {
	fe := &fakeExec{}
	s := newTestServer(t, Config{Executor: fe})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string, query string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/batch"+query, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Malformed JSON, empty input list: 400.
	for _, body := range []string{">not json\nACGT\n", `{"inputs":[]}`} {
		resp := post(body, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Two inputs, request-level options, query overlay winning.
	in1, in2 := testSeqs(5, 40, 94), testSeqs(6, 40, 95)
	reqBody, _ := json.Marshal(BatchRequest{
		Inputs: []SubmitRequest{
			{FASTA: fasta.FormatString(in1)},
			{FASTA: fasta.FormatString(in2), Options: Options{Procs: 2}},
		},
		Options: Options{Procs: 4},
	})
	resp := post(string(reqBody), "?workers=2")
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("batch submit status %d", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(br.Jobs) != 2 {
		t.Fatalf("got %d jobs in response, want 2", len(br.Jobs))
	}
	if br.Jobs[0].Opts.Procs != 4 || br.Jobs[1].Opts.Procs != 2 {
		t.Fatalf("options did not layer: %+v / %+v", br.Jobs[0].Opts, br.Jobs[1].Opts)
	}
	if br.Jobs[0].Opts.Workers != 2 || br.Jobs[1].Opts.Workers != 2 {
		t.Fatal("query overlay not applied to every input")
	}

	// Each job is pollable and serves its own input back (identity
	// executor), fetched over the API.
	for i, want := range [][]byte{[]byte(fasta.FormatString(in1)), []byte(fasta.FormatString(in2))} {
		j, ok := s.Job(br.Jobs[i].ID)
		if !ok {
			t.Fatalf("job %d missing from table", i)
		}
		waitState(t, j, StateDone)
		rr, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", ts.URL, br.Jobs[i].ID))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := readAllBody(t, rr)
		if rr.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("job %d result: status %d, payload match %v", i, rr.StatusCode, bytes.Equal(got, want))
		}
	}
}

func TestHandleBatchOverloadedHTTP(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 4)}
	s := newTestServer(t, Config{Executor: fe, MaxConcurrent: 1, MaxQueued: 1})
	defer s.Close()
	defer close(fe.block)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Submit(testSeqs(4, 30, 96), Options{}); err != nil {
		t.Fatal(err)
	}
	<-fe.started
	if _, err := s.Submit(testSeqs(4, 30, 97), Options{}); err != nil {
		t.Fatal(err) // fills the single queue slot
	}
	body, _ := json.Marshal(BatchRequest{Inputs: []SubmitRequest{
		{FASTA: fasta.FormatString(testSeqs(4, 30, 98))},
	}})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func readAllBody(t *testing.T, resp *http.Response) ([]byte, error) {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
