package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fasta"
	"repro/internal/store"
)

// crash simulates a hard server death for recovery tests: the journal
// fd closes without a shutdown record and the directory lock is
// released, exactly the state a killed process leaves behind. The
// abandoned dispatchers keep running (their journal appends fail
// silently), as a zombie's would until the kernel reaps it.
func crash(s *Server) {
	s.journal.Close()
	if s.unlockDir != nil {
		s.unlockDir()
		s.unlockDir = nil
	}
}

func TestPersistedResultSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	seqs := testSeqs(10, 50, 70)

	fe1 := &fakeExec{}
	s1 := newTestServer(t, Config{Executor: fe1, DataDir: dir})
	job1, err := s1.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	v1 := waitState(t, job1, StateDone)
	payload1, ok := s1.resultPayload(job1, v1.Result)
	if !ok {
		t.Fatal("no payload before restart")
	}
	s1.Close() // clean shutdown: journals a shutdown record

	// Restart on the same directory with a fresh executor.
	fe2 := &fakeExec{}
	s2 := newTestServer(t, Config{Executor: fe2, DataDir: dir})
	defer s2.Close()
	rec := s2.Recovery()
	if !rec.Enabled || !rec.CleanShutdown || rec.Finished != 1 || rec.Requeued != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	// The finished job is visible under its original ID.
	j, ok := s2.Job(job1.ID)
	if !ok {
		t.Fatal("finished job lost across restart")
	}
	v := j.View()
	if v.State != StateDone || v.Result == nil || v.Result.NumSeqs != 10 {
		t.Fatalf("restored job view: %+v", v)
	}
	// Its payload is served from the disk store, byte-identical.
	payload2, ok := s2.resultPayload(j, v.Result)
	if !ok {
		t.Fatal("no payload after restart")
	}
	if !bytes.Equal(payload1, payload2) {
		t.Fatal("restored payload differs")
	}
	// An identical resubmission is a cache hit with zero recomputes.
	job2, err := s2.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v := job2.View(); v.State != StateDone || !v.Cached {
		t.Fatalf("resubmission after restart: %+v", v)
	}
	if fe2.Runs() != 0 {
		t.Fatalf("restart recomputed: runs = %d, want 0", fe2.Runs())
	}
	if got := s2.metrics.StoreHits.Value(); got < 1 {
		t.Fatalf("store hits = %d, want >= 1", got)
	}
}

func TestCrashRecoveryRequeuesUnfinishedJob(t *testing.T) {
	dir := t.TempDir()
	seqs := testSeqs(8, 40, 71)

	fe1 := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 2)}
	s1 := newTestServer(t, Config{Executor: fe1, DataDir: dir, MaxConcurrent: 1})
	// Reap the zombie at test end: Close cancels the blocked executor
	// (canceled jobs never reach the store) and waits its dispatchers
	// out, so nothing races the TempDir cleanup.
	defer s1.Close()
	job1, err := s1.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-fe1.started // journal now holds submit + start, no finish
	crash(s1)

	fe2 := &fakeExec{}
	s2 := newTestServer(t, Config{Executor: fe2, DataDir: dir})
	defer s2.Close()
	rec := s2.Recovery()
	if rec.CleanShutdown || rec.Requeued != 1 {
		t.Fatalf("recovery = %+v", rec)
	}
	j, ok := s2.Job(job1.ID)
	if !ok {
		t.Fatal("unfinished job not restored under its ID")
	}
	if !j.View().Recovered {
		t.Fatal("re-enqueued job not marked recovered")
	}
	v := waitState(t, j, StateDone)
	if fe2.Runs() != 1 {
		t.Fatalf("recovered job ran %d times, want 1", fe2.Runs())
	}
	payload, ok := s2.resultPayload(j, v.Result)
	if !ok {
		t.Fatal("no payload for recovered job")
	}
	// Byte-identical to an uninterrupted run of the same executor.
	if want := fasta.FormatString(seqs); string(payload) != want {
		t.Fatalf("recovered payload differs:\n got %d bytes\nwant %d bytes", len(payload), len(want))
	}
}

func TestCrashRecoveryByteIdenticalToUninterruptedRun(t *testing.T) {
	// Craft the exact on-disk state a crash mid-job leaves (a journaled
	// submit with no finish) and let a real-executor server recover it:
	// the replayed alignment must be byte-identical to a direct run.
	dir := t.TempDir()
	seqs := testSeqs(24, 60, 72)
	opts, err := resolve(Options{Procs: 3, Workers: 2}, Options{}, Limits{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey(seqs, opts)
	j, _, err := store.OpenJournal(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(submitRecord("jfeedfacecafe01", key, time.Now(), submitData{
		Opts:    opts,
		NumSeqs: len(seqs),
		FASTA:   []byte(fasta.FormatString(seqs)),
	})); err != nil {
		t.Fatal(err)
	}
	j.Close()

	s := newTestServer(t, Config{DataDir: dir}) // real in-process executor
	defer s.Close()
	if s.Recovery().Requeued != 1 {
		t.Fatalf("recovery = %+v", s.Recovery())
	}
	job, ok := s.Job("jfeedfacecafe01")
	if !ok {
		t.Fatal("crafted job not restored")
	}
	v := waitState(t, job, StateDone)
	payload, ok := s.resultPayload(job, v.Result)
	if !ok {
		t.Fatal("no payload")
	}
	res, err := core.AlignInproc(seqs, 3, core.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := fasta.FormatString(res.Alignment.Seqs); string(payload) != want {
		t.Fatal("recovered alignment differs from a direct core run")
	}
}

// TestDrainTimeoutCasualtiesRequeueOnRestart: jobs hard-canceled
// because the drain window expired are journaled as interrupted, not
// canceled — the next boot re-enqueues them like crash victims and
// runs them to completion under their original IDs. A job the caller
// canceled explicitly stays canceled across the restart.
func TestDrainTimeoutCasualtiesRequeueOnRestart(t *testing.T) {
	dir := t.TempDir()
	runningSeqs := testSeqs(9, 45, 77)
	queuedSeqs := testSeqs(7, 40, 78)
	droppedSeqs := testSeqs(5, 35, 79)

	fe1 := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 4)}
	s1 := newTestServer(t, Config{Executor: fe1, DataDir: dir, MaxConcurrent: 1})
	running, err := s1.Submit(runningSeqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-fe1.started // the first job occupies the only dispatcher, blocked
	queued, err := s1.Submit(queuedSeqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := s1.Submit(droppedSeqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The caller changes their mind about one queued job: that is a
	// real cancel and must survive the restart as canceled.
	if live, err := s1.Cancel(dropped.ID, nil); err != nil || !live {
		t.Fatalf("cancel queued job: live=%v err=%v", live, err)
	}
	if s1.Drain(30 * time.Millisecond) {
		t.Fatal("Drain reported success with a blocked job")
	}
	s1.Close() // drain window expired: hard-cancel the leftovers

	for _, j := range []*Job{running, queued} {
		v := j.View()
		if v.State != StateCanceled {
			t.Fatalf("job %s after close: %s, want canceled", j.ID, v.State)
		}
		if want := ErrInterrupted.Error(); v.Error != want {
			t.Fatalf("job %s cause = %q, want %q", j.ID, v.Error, want)
		}
	}
	if got := s1.metrics.Interrupted.Value(); got != 2 {
		t.Fatalf("interrupted metric = %d, want 2", got)
	}

	fe2 := &fakeExec{}
	s2 := newTestServer(t, Config{Executor: fe2, DataDir: dir})
	defer s2.Close()
	rec := s2.Recovery()
	// The previous process DID shut down cleanly (shutdown record
	// written) — and still left requeueable casualties.
	if !rec.CleanShutdown {
		t.Fatalf("recovery = %+v, want clean shutdown", rec)
	}
	if rec.Requeued != 2 || rec.Interrupted != 2 {
		t.Fatalf("recovery = %+v, want 2 requeued / 2 interrupted", rec)
	}
	for _, old := range []struct {
		job  *Job
		want string
	}{{running, fasta.FormatString(runningSeqs)}, {queued, fasta.FormatString(queuedSeqs)}} {
		j, ok := s2.Job(old.job.ID)
		if !ok {
			t.Fatalf("interrupted job %s not restored", old.job.ID)
		}
		if !j.View().Recovered {
			t.Fatalf("job %s not marked recovered", j.ID)
		}
		v := waitState(t, j, StateDone)
		payload, ok := s2.resultPayload(j, v.Result)
		if !ok || string(payload) != old.want {
			t.Fatalf("job %s: wrong or missing payload after requeue", j.ID)
		}
	}
	if fe2.Runs() != 2 {
		t.Fatalf("recovered jobs ran %d times, want 2", fe2.Runs())
	}
	// The explicitly canceled job stays canceled — not resurrected.
	j, ok := s2.Job(dropped.ID)
	if !ok {
		t.Fatalf("canceled job %s lost across restart", dropped.ID)
	}
	if v := j.View(); v.State != StateCanceled {
		t.Fatalf("canceled job %s restored as %s", j.ID, v.State)
	}
}

func TestJournalCorruptTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	seqs := testSeqs(6, 30, 73)

	fe1 := &fakeExec{}
	s1 := newTestServer(t, Config{Executor: fe1, DataDir: dir, StoreEntries: -1})
	defer s1.Close()
	job1, err := s1.Submit(seqs, Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job1, StateDone)
	crash(s1)

	// Tear the journal tail mid-record (the finish record), so replay
	// sees submit+start only.
	path := filepath.Join(dir, "journal.wal")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	fe2 := &fakeExec{}
	s2 := newTestServer(t, Config{Executor: fe2, DataDir: dir, StoreEntries: -1})
	defer s2.Close()
	// With the disk result tier disabled the torn job must re-run.
	if rec := s2.Recovery(); rec.Requeued != 1 || rec.CleanShutdown {
		t.Fatalf("recovery = %+v", rec)
	}
	j, ok := s2.Job(job1.ID)
	if !ok {
		t.Fatal("torn job not restored")
	}
	waitState(t, j, StateDone)
	if fe2.Runs() != 1 {
		t.Fatalf("torn job ran %d times, want 1", fe2.Runs())
	}
}

func TestRecoveryFindsOrphanedStoreResult(t *testing.T) {
	// Crash after the result hit the disk store but before the finish
	// record: recovery must serve the stored result, not re-run.
	dir := t.TempDir()
	seqs := testSeqs(6, 30, 74)

	fe1 := &fakeExec{}
	s1 := newTestServer(t, Config{Executor: fe1, DataDir: dir})
	defer s1.Close()
	job1, err := s1.Submit(seqs, Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job1, StateDone)
	crash(s1)
	// Rewind the journal to submit+start by dropping the finish record.
	path := filepath.Join(dir, "journal.wal")
	jr, recs, err := store.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("journal has %d records, want >= 3", len(recs))
	}
	if err := jr.Rewrite(recs[:2]); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	fe2 := &fakeExec{}
	s2 := newTestServer(t, Config{Executor: fe2, DataDir: dir})
	defer s2.Close()
	if rec := s2.Recovery(); rec.Finished != 1 || rec.Requeued != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	j, ok := s2.Job(job1.ID)
	if !ok {
		t.Fatal("job not restored")
	}
	if v := j.View(); v.State != StateDone {
		t.Fatalf("restored state %s, want done (from orphaned store result)", v.State)
	}
	if fe2.Runs() != 0 {
		t.Fatalf("orphaned result re-ran %d times", fe2.Runs())
	}
}

func TestCompactionShedsFinishedPayloads(t *testing.T) {
	dir := t.TempDir()
	seqs := testSeqs(6, 30, 75)
	s1 := newTestServer(t, Config{Executor: &fakeExec{}, DataDir: dir})
	job1, err := s1.Submit(seqs, Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job1, StateDone)
	s1.Close()

	// First restart compacts; close cleanly again and inspect the log.
	s2 := newTestServer(t, Config{Executor: &fakeExec{}, DataDir: dir})
	s2.Close()
	_, recs, err := store.OpenJournal(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	var submits int
	for _, rec := range recs {
		if rec.Type != store.RecSubmit {
			continue
		}
		submits++
		var sd submitData
		if err := json.Unmarshal(rec.Data, &sd); err != nil {
			t.Fatal(err)
		}
		if len(sd.FASTA) != 0 {
			t.Fatal("compacted submit record for a finished job still carries its FASTA")
		}
	}
	if submits != 1 {
		t.Fatalf("compacted journal has %d submit records, want 1", submits)
	}
}

func TestReplayMergesOutOfOrderRecords(t *testing.T) {
	// Journal appends race the server lock, so a job's cancel record
	// can land before its submit record. Replay must merge them: the
	// terminal state wins and the job is NOT re-enqueued.
	dir := t.TempDir()
	seqs := testSeqs(4, 30, 78)
	opts, err := resolve(Options{Procs: 1}, Options{}, Limits{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey(seqs, opts)
	j, _, err := store.OpenJournal(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := j.Append(finishRecord("jaabb01", key, StateCanceled, "canceled by client request", nil, now)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(submitRecord("jaabb01", key, now, submitData{
		Opts: opts, NumSeqs: len(seqs), FASTA: []byte(fasta.FormatString(seqs)),
	})); err != nil {
		t.Fatal(err)
	}
	// And a lone finish with no submit half at all: dropped, not restored.
	if err := j.Append(finishRecord("jaabb02", key, StateDone, "", nil, now)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	fe := &fakeExec{}
	s := newTestServer(t, Config{Executor: fe, DataDir: dir})
	defer s.Close()
	if rec := s.Recovery(); rec.Requeued != 0 || rec.Finished != 1 {
		t.Fatalf("recovery = %+v, want 0 requeued / 1 finished", rec)
	}
	jb, ok := s.Job("jaabb01")
	if !ok {
		t.Fatal("out-of-order job not restored")
	}
	if v := jb.View(); v.State != StateCanceled {
		t.Fatalf("state = %s, want canceled (terminal record must win)", v.State)
	}
	if _, ok := s.Job("jaabb02"); ok {
		t.Fatal("submit-less job was restored")
	}
	if fe.Runs() != 0 {
		t.Fatalf("canceled job re-ran %d times", fe.Runs())
	}
}

func TestSubmitRefusedWhileDraining(t *testing.T) {
	// Even a cache hit must be refused once draining: a drained server
	// stops mutating its job table and journal.
	fe := &fakeExec{}
	s := newTestServer(t, Config{Executor: fe})
	defer s.Close()
	seqs := testSeqs(4, 30, 79)
	j1, err := s.Submit(seqs, Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone)
	if !s.Drain(time.Second) {
		t.Fatal("drain of an idle server failed")
	}
	if _, err := s.Submit(seqs, Options{Procs: 1}); err != ErrClosed {
		t.Fatalf("cache-hit submit while draining: %v, want ErrClosed", err)
	}
}

func TestSecondServerOnSameDataDirRefused(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{Executor: &fakeExec{}, DataDir: dir})
	defer s1.Close()
	if _, err := New(Config{Executor: &fakeExec{}, DataDir: dir}); err == nil {
		t.Fatal("two servers shared one data directory")
	}
}

func TestHTTPStreamedResultAfterRestart(t *testing.T) {
	dir := t.TempDir()
	seqs := testSeqs(10, 50, 76)
	s1 := newTestServer(t, Config{Executor: &fakeExec{}, DataDir: dir})
	job1, err := s1.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	v1 := waitState(t, job1, StateDone)
	payload1, _ := s1.resultPayload(job1, v1.Result)
	s1.Close()

	s2 := newTestServer(t, Config{Executor: &fakeExec{}, DataDir: dir})
	ts := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts.Close(); s2.Close() })

	// The memory cache is cold, so the result endpoint must stream the
	// payload from the disk store: chunked transfer, no Content-Length.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job1.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", resp.StatusCode)
	}
	if resp.ContentLength >= 0 {
		t.Fatalf("streamed response advertised Content-Length %d", resp.ContentLength)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, payload1) {
		t.Fatal("streamed body differs from the pre-restart payload")
	}
	if got := s2.metrics.Streamed.Value(); got != 1 {
		t.Fatalf("streamed counter = %d, want 1", got)
	}
	// Persistence gauges are exposed on /metrics.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		"samplealign_store_entries 1",
		"samplealign_results_streamed_total 1",
		"samplealign_journal_records",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestNoDataDirWritesNothing(t *testing.T) {
	// Without a DataDir the server must not touch the filesystem.
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })

	s := newTestServer(t, Config{Executor: &fakeExec{}})
	job, err := s.Submit(testSeqs(4, 30, 77), Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateDone)
	s.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("no-DataDir server created files: %v", entries)
	}
}
