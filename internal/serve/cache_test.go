package serve

import (
	"testing"

	"repro/internal/bio"
)

func res(size int) *Result {
	return &Result{FASTA: make([]byte, size), NumSeqs: 1, Width: size}
}

func TestCacheLRUEvictionDeterminism(t *testing.T) {
	c := NewCache(2, -1)
	c.Put("a", res(10))
	c.Put("b", res(10))
	if _, ok := c.Get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", res(10)) // evicts b, deterministically
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived; LRU eviction is not deterministic")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite being most recently used")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	if got := c.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if keys := c.Keys(); len(keys) != 2 || keys[0] != "c" || keys[1] != "a" {
		t.Fatalf("recency order = %v, want [c a]", keys)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := NewCache(-1, 100)
	c.Put("a", res(40))
	c.Put("b", res(40))
	c.Put("c", res(40)) // 120 > 100: evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("byte bound not enforced")
	}
	if c.Bytes() != 80 || c.Len() != 2 {
		t.Fatalf("bytes=%d len=%d, want 80/2", c.Bytes(), c.Len())
	}
	// An entry larger than the whole bound is not stored at all.
	c.Put("huge", res(200))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized entry stored")
	}
	if c.Len() != 2 {
		t.Fatalf("oversized Put disturbed the cache: len=%d", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1, -1)
	c.Put("a", res(10))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache non-empty")
	}
}

func TestCacheDuplicatePutRefreshes(t *testing.T) {
	c := NewCache(2, -1)
	c.Put("a", res(10))
	c.Put("b", res(10))
	c.Put("a", res(10)) // same content address: refresh, no double-count
	if c.Bytes() != 20 || c.Len() != 2 {
		t.Fatalf("duplicate Put double-counted: bytes=%d len=%d", c.Bytes(), c.Len())
	}
	c.Put("c", res(10)) // b is LRU now
	if _, ok := c.Get("b"); ok {
		t.Fatal("duplicate Put did not refresh recency")
	}
}

func TestCacheKeyDeterminism(t *testing.T) {
	seqs := testSeqs(5, 30, 7)
	o1, err := resolve(Options{Procs: 4}, Options{}, Limits{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(seqs, o1) != CacheKey(seqs, o1) {
		t.Fatal("cache key not deterministic")
	}
	// Workers and timeouts must not affect the key; procs must.
	o2 := o1
	o2.Workers = 8
	o2.Timeout = 1e9
	if CacheKey(seqs, o1) != CacheKey(seqs, o2) {
		t.Fatal("workers/timeout leaked into the cache key")
	}
	o3 := o1
	o3.Procs = 5
	if CacheKey(seqs, o1) == CacheKey(seqs, o3) {
		t.Fatal("procs not in the cache key")
	}
	// Input order is content: a permutation is a different job.
	swapped := append(seqs[:0:0], seqs...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if CacheKey(seqs, o1) == CacheKey(swapped, o1) {
		t.Fatal("input order not in the cache key")
	}
	// Concatenation ambiguity: (id "ab") vs (id "a", desc "b") must not
	// collide — lengths are encoded, not just bytes.
	s1 := []bio.Sequence{{ID: "ab", Data: []byte("ACD")}}
	s2 := []bio.Sequence{{ID: "a", Desc: "b", Data: []byte("ACD")}}
	if CacheKey(s1, o1) == CacheKey(s2, o1) {
		t.Fatal("field boundaries not encoded; keys collide")
	}
}
