package serve

import (
	"errors"
	"testing"
	"time"
)

func TestCoalescingSharesOneRun(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 4)}
	s := newTestServer(t, Config{Executor: fe, MaxConcurrent: 1})
	defer s.Close()
	seqs := testSeqs(6, 40, 80)

	j1, err := s.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started // j1 is inside the executor
	// Identical submissions attach to the running flight instead of
	// queueing duplicates.
	j2, err := s.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	j3, err := s.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v := j2.View(); !v.Coalesced || v.State != StateRunning {
		t.Fatalf("j2 view: %+v, want coalesced+running", v)
	}
	if j1.View().Coalesced {
		t.Fatal("the first submitter reported coalesced")
	}
	// Different workers coalesce too (not result-affecting)…
	j4, err := s.Submit(seqs, Options{Procs: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !j4.View().Coalesced {
		t.Fatal("worker-count variant did not coalesce")
	}
	// …but a different rank count is a different computation.
	j5, err := s.Submit(seqs, Options{Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if j5.View().Coalesced {
		t.Fatal("different procs coalesced onto the wrong flight")
	}

	close(fe.block)
	for _, j := range []*Job{j1, j2, j3, j4} {
		v := waitState(t, j, StateDone)
		if v.Result == nil || v.Result.NumSeqs != 6 {
			t.Fatalf("job %s result: %+v", j.ID, v.Result)
		}
	}
	waitState(t, j5, StateDone)
	if got := fe.Runs(); got != 2 { // one for the shared flight, one for j5
		t.Fatalf("runs = %d, want 2", got)
	}
	if got := s.metrics.Coalesced.Value(); got != 3 {
		t.Fatalf("coalesced counter = %d, want 3", got)
	}
	// All waiters share one payload.
	p1, _ := s.resultPayload(j1, j1.View().Result)
	p2, _ := s.resultPayload(j2, j2.View().Result)
	if string(p1) != string(p2) || len(p1) == 0 {
		t.Fatal("coalesced jobs returned different payloads")
	}
}

func TestCoalescedCancelOnlyDetachesOneWaiter(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 4)}
	defer close(fe.block)
	s := newTestServer(t, Config{Executor: fe, MaxConcurrent: 1})
	defer s.Close()
	seqs := testSeqs(6, 40, 81)

	j1, err := s.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started
	j2, err := s.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Canceling one waiter must not kill the computation the other
	// still wants.
	if live, err := s.Cancel(j1.ID, errors.New("impatient client")); err != nil || !live {
		t.Fatalf("cancel j1: live=%v err=%v", live, err)
	}
	waitState(t, j1, StateCanceled)
	select {
	case <-j2.Done():
		t.Fatalf("j2 terminal (%s) after a sibling cancel", j2.View().State)
	case <-time.After(50 * time.Millisecond):
	}
	// Canceling the last waiter propagates into the executor.
	if live, err := s.Cancel(j2.ID, nil); err != nil || !live {
		t.Fatalf("cancel j2: live=%v err=%v", live, err)
	}
	waitState(t, j2, StateCanceled)
	if fe.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", fe.Runs())
	}
	// The flight is gone: a fresh identical submission computes anew.
	j3, err := s.Submit(seqs, Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started
	if j3.View().Coalesced {
		t.Fatal("new submission attached to a dead flight")
	}
	s.Cancel(j3.ID, nil)
	waitState(t, j3, StateCanceled)
}

func TestCancelQueuedRemovesFromFIFOImmediately(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 4)}
	s := newTestServer(t, Config{Executor: fe, MaxConcurrent: 1, MaxQueued: 4})
	defer s.Close()

	j1, err := s.Submit(testSeqs(4, 30, 82), Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started
	j2, err := s.Submit(testSeqs(4, 30, 83), Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if q := s.Stats().Queued; q != 1 {
		t.Fatalf("queued = %d, want 1", q)
	}
	// Canceling the queued job frees its FIFO slot *now*, not when a
	// dispatcher would have reached it.
	if live, err := s.Cancel(j2.ID, nil); err != nil || !live {
		t.Fatalf("cancel queued: live=%v err=%v", live, err)
	}
	waitState(t, j2, StateCanceled)
	if q := s.Stats().Queued; q != 0 {
		t.Fatalf("queued = %d after cancel, want 0 (removed from FIFO)", q)
	}
	j3, err := s.Submit(testSeqs(4, 30, 84), Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	close(fe.block)
	waitState(t, j1, StateDone)
	waitState(t, j3, StateDone)
	if fe.Runs() != 2 {
		t.Fatalf("runs = %d, want 2 (the canceled queued job never ran)", fe.Runs())
	}
}

func TestDrainWaitsForRunningAndRefusesNew(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 2)}
	s := newTestServer(t, Config{Executor: fe, MaxConcurrent: 1})
	defer s.Close()
	j1, err := s.Submit(testSeqs(4, 30, 85), Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started

	drained := make(chan bool, 1)
	go func() { drained <- s.Drain(30 * time.Second) }()
	// Wait until draining is visible, then verify admission is closed.
	deadline := time.Now().Add(10 * time.Second)
	for !s.Stats().Draining {
		if time.Now().After(deadline) {
			t.Fatal("draining never became visible")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(testSeqs(4, 30, 86), Options{Procs: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit while draining: %v, want ErrClosed", err)
	}
	// The running job finishes and the drain completes.
	close(fe.block)
	waitState(t, j1, StateDone)
	select {
	case ok := <-drained:
		if !ok {
			t.Fatal("drain reported timeout despite the pool emptying")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never returned")
	}
}

func TestDrainTimesOutOnStuckJob(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 2)}
	defer close(fe.block)
	s := newTestServer(t, Config{Executor: fe, MaxConcurrent: 1})
	defer s.Close()
	j1, err := s.Submit(testSeqs(4, 30, 87), Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started
	if s.Drain(100 * time.Millisecond) {
		t.Fatal("drain reported success with a stuck job")
	}
	// Close still tears the job down.
	s.Close()
	waitState(t, j1, StateCanceled)
}
