package serve

import (
	"container/list"
	"sync"
	"time"
)

// Result is the stored outcome of a successful alignment job: the
// rendered FASTA plus the summary numbers the status endpoint reports.
// Results are immutable once stored, so cache and jobs share them.
type Result struct {
	FASTA     []byte        `json:"-"`
	NumSeqs   int           `json:"num_seqs"`
	Width     int           `json:"width"`
	Procs     int           `json:"procs"`
	Elapsed   time.Duration `json:"-"`
	BytesSent int64         `json:"bytes_sent"`
	BytesRecv int64         `json:"bytes_recv"`
	TraceID   string        `json:"trace_id,omitempty"`
	Trace     []byte        `json:"-"` // span-tree JSON (obs.Document); served at /v1/jobs/{id}/trace
}

// sizeBytes is the accounting size of a result in the cache. Traces are
// deliberately excluded: they are bounded by obs.DefaultMaxSpans and
// tiny next to alignments, and counting them would perturb the cache's
// deterministic hit/evict sequence between tracing-on and -off runs.
func (r *Result) sizeBytes() int64 { return int64(len(r.FASTA)) }

// Cache is a content-addressed LRU of alignment results, bounded by
// both entry count and total FASTA bytes. Eviction is strict LRU (Get
// refreshes recency), so hit/evict behaviour is deterministic for a
// deterministic access sequence.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recent
	items      map[string]*list.Element
	bytes      int64
	evictions  int64
}

type cacheEntry struct {
	key string
	res *Result
}

// NewCache builds a cache bounded to maxEntries results and maxBytes
// total FASTA payload; either bound ≤ 0 means "no bound on that axis",
// and both ≤ 0 disables caching entirely (every Get misses).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

func (c *Cache) disabled() bool { return c.maxEntries <= 0 && c.maxBytes <= 0 }

// Enabled reports whether the cache stores anything at all.
func (c *Cache) Enabled() bool { return !c.disabled() }

// Get returns the cached result for key and refreshes its recency.
func (c *Cache) Get(key string) (*Result, bool) {
	if c.disabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores res under key, evicting least-recently-used entries until
// both bounds hold. A result larger than the byte bound is not stored.
func (c *Cache) Put(key string, res *Result) {
	if c.disabled() {
		return
	}
	if c.maxBytes > 0 && res.sizeBytes() > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Same content address ⇒ same bytes; just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	c.bytes += res.sizeBytes()
	for (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.bytes -= ent.res.sizeBytes()
		c.evictions++
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the total accounted payload bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Evictions returns the number of entries evicted so far.
func (c *Cache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Keys returns the cached keys from most to least recently used; for
// tests and debugging.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*cacheEntry).key)
	}
	return keys
}
