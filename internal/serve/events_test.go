package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseFrame is one parsed frame off a /v1/jobs/{id}/events stream.
type sseFrame struct {
	id int64 // SSE id line (bus sequence); 0 for synthesized events
	ev Event
}

// sseClient reads a live SSE stream in the background so tests can
// consume frames with timeouts instead of blocking on the socket.
type sseClient struct {
	header http.Header
	frames chan sseFrame
	cancel context.CancelFunc
}

// openSSE subscribes to url and starts parsing frames. The frames
// channel closes when the server ends the stream (terminal event) or
// the client disconnects via close().
func openSSE(t *testing.T, url, lastEventID string) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("events status = %d: %s", resp.StatusCode, body)
	}
	c := &sseClient{header: resp.Header, frames: make(chan sseFrame, 256), cancel: cancel}
	go func() {
		defer close(c.frames)
		defer resp.Body.Close()
		br := bufio.NewReader(resp.Body)
		var f sseFrame
		var seen bool
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			line = strings.TrimRight(line, "\r\n")
			switch {
			case line == "":
				if seen {
					c.frames <- f
				}
				f, seen = sseFrame{}, false
			case strings.HasPrefix(line, "id: "):
				f.id, _ = strconv.ParseInt(line[len("id: "):], 10, 64)
			case strings.HasPrefix(line, "data: "):
				if json.Unmarshal([]byte(line[len("data: "):]), &f.ev) == nil {
					seen = true
				}
			}
			// "event: T" repeats data's type; ": ping" comments skipped.
		}
	}()
	return c
}

func (c *sseClient) close() { c.cancel() }

// next returns the next frame, failing the test on a stall; ok is
// false once the server has ended the stream.
func (c *sseClient) next(t *testing.T) (sseFrame, bool) {
	t.Helper()
	select {
	case f, ok := <-c.frames:
		return f, ok
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for an SSE frame")
		return sseFrame{}, false
	}
}

// drain consumes frames until the server ends the stream.
func (c *sseClient) drain(t *testing.T) []sseFrame {
	t.Helper()
	var out []sseFrame
	for {
		f, ok := c.next(t)
		if !ok {
			return out
		}
		out = append(out, f)
	}
}

func eventTypes(frames []sseFrame) []string {
	types := make([]string, len(frames))
	for i, f := range frames {
		types[i] = f.ev.Type
	}
	return types
}

// TestEventsStreamLifecycle subscribes mid-job: the replayed history
// (queued, started) arrives first, then the live terminal event when
// the executor is released, and the stream ends by itself.
func TestEventsStreamLifecycle(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 1)}
	s, ts := httpServer(t, Config{Executor: fe})
	job, err := s.Submit(testSeqs(6, 30, 50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started // executor running, queued+started already on the bus

	c := openSSE(t, ts.URL+"/v1/jobs/"+job.ID+"/events", "")
	defer c.close()
	if got := c.header.Get("X-Job-Id"); got != job.ID {
		t.Fatalf("X-Job-Id = %q, want %q", got, job.ID)
	}
	if got := c.header.Get("X-Trace-Id"); got != job.Trace {
		t.Fatalf("X-Trace-Id = %q, want %q", got, job.Trace)
	}

	f1, _ := c.next(t)
	if f1.ev.Type != EventQueued || f1.ev.Job != job.ID || f1.id == 0 {
		t.Fatalf("first frame = %+v, want replayed queued for %s", f1, job.ID)
	}
	if f1.ev.Trace != job.Trace {
		t.Fatalf("queued trace = %q, want %q", f1.ev.Trace, job.Trace)
	}
	f2, _ := c.next(t)
	if f2.ev.Type != EventStarted || f2.id <= f1.id {
		t.Fatalf("second frame = %+v, want started after id %d", f2, f1.id)
	}

	close(fe.block)
	f3, _ := c.next(t)
	if f3.ev.Type != EventDone || f3.ev.Job != job.ID {
		t.Fatalf("terminal frame = %+v, want done for %s", f3, job.ID)
	}
	if _, ok := c.next(t); ok {
		t.Fatal("stream did not end after the job's terminal event")
	}
	waitState(t, job, StateDone)
}

// TestEventsDisconnectDoesNotCancelJob drops the only subscriber of a
// running job: unlike the synchronous align endpoint, an events
// subscriber is an observer, and its disconnect must not cancel
// anything.
func TestEventsDisconnectDoesNotCancelJob(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 1)}
	s, ts := httpServer(t, Config{Executor: fe})
	job, err := s.Submit(testSeqs(6, 30, 51), Options{})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started

	c := openSSE(t, ts.URL+"/v1/jobs/"+job.ID+"/events", "")
	if f, _ := c.next(t); f.ev.Type != EventQueued {
		t.Fatalf("first frame = %+v", f)
	}
	c.close() // client walks away mid-stream

	// Give a buggy disconnect-cancel path time to fire, then prove the
	// job is still running and completes normally.
	time.Sleep(50 * time.Millisecond)
	if st := job.View().State; st != StateRunning {
		t.Fatalf("job state after subscriber disconnect = %s, want running", st)
	}
	close(fe.block)
	waitState(t, job, StateDone)
}

// TestEventsReplayAfterCompletion subscribes after the job finished: the
// bus history replays the whole stream — queued through every pipeline
// stage and rank to done — with strictly increasing ids.
func TestEventsReplayAfterCompletion(t *testing.T) {
	s, ts := httpServer(t, Config{}) // real in-process executor
	job, err := s.Submit(testSeqs(18, 60, 52), Options{Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateDone)

	frames := openSSE(t, ts.URL+"/v1/jobs/"+job.ID+"/events", "").drain(t)
	if len(frames) < 4 {
		t.Fatalf("replay produced %d frames: %v", len(frames), eventTypes(frames))
	}
	if frames[0].ev.Type != EventQueued || frames[1].ev.Type != EventStarted {
		t.Fatalf("replay starts %v, want [queued started ...]", eventTypes(frames[:2]))
	}
	last := frames[len(frames)-1]
	if last.ev.Type != EventDone || last.ev.Job != job.ID {
		t.Fatalf("replay ends %+v, want done for %s", last.ev, job.ID)
	}

	stages := map[string]bool{}
	ranks := map[int]bool{}
	var prev int64
	for _, f := range frames {
		if f.id <= prev {
			t.Fatalf("ids not strictly increasing: %d after %d", f.id, prev)
		}
		prev = f.id
		if f.ev.Trace != job.Trace {
			t.Fatalf("frame trace = %q, want %q: %+v", f.ev.Trace, job.Trace, f.ev)
		}
		switch f.ev.Type {
		case EventStage:
			if !pipelineStages[f.ev.Stage] {
				t.Fatalf("stage event with non-canonical stage %q", f.ev.Stage)
			}
			if f.ev.DurationNs < 0 {
				t.Fatalf("negative stage duration: %+v", f.ev)
			}
			stages[f.ev.Stage] = true
		case EventRank:
			if f.ev.Rank == nil {
				t.Fatalf("rank event without rank attribute: %+v", f.ev)
			}
			ranks[*f.ev.Rank] = true
		}
	}
	for _, want := range pipelineStageNames {
		if !stages[want] {
			t.Fatalf("stream missing stage %q (saw %v)", want, stages)
		}
	}
	for r := 0; r < 3; r++ {
		if !ranks[r] {
			t.Fatalf("stream missing rank %d event (saw %v)", r, ranks)
		}
	}
}

// TestEventsLastEventIDResume reconnects with Last-Event-ID (and the
// ?after= fallback) and must only see events past that sequence.
func TestEventsLastEventIDResume(t *testing.T) {
	s, ts := httpServer(t, Config{Executor: &fakeExec{}})
	job, err := s.Submit(testSeqs(6, 30, 53), Options{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateDone)

	full := openSSE(t, ts.URL+"/v1/jobs/"+job.ID+"/events", "").drain(t)
	if len(full) < 3 { // queued, started, done
		t.Fatalf("full replay has %d frames: %v", len(full), eventTypes(full))
	}
	cut := full[0].id

	resumed := openSSE(t, ts.URL+"/v1/jobs/"+job.ID+"/events", strconv.FormatInt(cut, 10)).drain(t)
	if len(resumed) != len(full)-1 {
		t.Fatalf("resume after id %d replayed %d frames, want %d", cut, len(resumed), len(full)-1)
	}
	for _, f := range resumed {
		if f.id <= cut {
			t.Fatalf("resume leaked id %d <= Last-Event-ID %d", f.id, cut)
		}
	}

	viaQuery := openSSE(t, ts.URL+"/v1/jobs/"+job.ID+"/events?after="+strconv.FormatInt(cut, 10), "").drain(t)
	if len(viaQuery) != len(resumed) {
		t.Fatalf("?after= replayed %d frames, header replayed %d", len(viaQuery), len(resumed))
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events?after=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ?after= status = %d, want 400", resp.StatusCode)
	}
}

// TestEventsCoalescedRidersShareStream: a rider coalesced onto a running
// flight sees the shared stream (including history from before it
// joined); canceling the rider ends only the rider's stream, and the
// original job's stream sails past the rider's terminal event.
func TestEventsCoalescedRidersShareStream(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 1)}
	s, ts := httpServer(t, Config{Executor: fe})
	seqs := testSeqs(6, 30, 54)
	job1, err := s.Submit(seqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started
	job2, err := s.Submit(seqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if job2.ID == job1.ID || job2.Trace != job1.Trace {
		t.Fatalf("second submit not coalesced: %s/%s vs %s/%s", job2.ID, job2.Trace, job1.ID, job1.Trace)
	}

	c1 := openSSE(t, ts.URL+"/v1/jobs/"+job1.ID+"/events", "")
	defer c1.close()
	c2 := openSSE(t, ts.URL+"/v1/jobs/"+job2.ID+"/events", "")
	defer c2.close()

	// The rider's stream replays the shared flight history: job1's
	// queued, started, then its own coalesced queued.
	var rider []sseFrame
	for len(rider) < 3 {
		f, ok := c2.next(t)
		if !ok {
			t.Fatalf("rider stream ended early: %v", eventTypes(rider))
		}
		rider = append(rider, f)
	}
	if rider[0].ev.Job != job1.ID || rider[0].ev.Type != EventQueued {
		t.Fatalf("rider frame 0 = %+v, want job1's queued", rider[0].ev)
	}
	if rider[1].ev.Type != EventStarted {
		t.Fatalf("rider frame 1 = %+v, want started", rider[1].ev)
	}
	if rider[2].ev.Type != EventQueued || rider[2].ev.Job != job2.ID || !rider[2].ev.Coalesced {
		t.Fatalf("rider frame 2 = %+v, want job2's coalesced queued", rider[2].ev)
	}

	// Cancel the rider: its stream ends on its own canceled event while
	// the flight keeps running for job1.
	if _, err := s.Cancel(job2.ID, errors.New("rider bailed")); err != nil {
		t.Fatal(err)
	}
	var sawCancel bool
	for {
		f, ok := c2.next(t)
		if !ok {
			break
		}
		if f.ev.Type == EventCanceled && f.ev.Job == job2.ID {
			sawCancel = true
		}
	}
	if !sawCancel {
		t.Fatal("rider stream ended without its canceled event")
	}
	waitState(t, job2, StateCanceled)

	// job1's subscriber sees the rider's cancellation pass by without
	// its stream ending, then its own done.
	close(fe.block)
	frames := c1.drain(t)
	var riderCancelSeen bool
	last := frames[len(frames)-1]
	for _, f := range frames {
		if f.ev.Type == EventCanceled && f.ev.Job == job2.ID {
			riderCancelSeen = true
		}
	}
	if !riderCancelSeen {
		t.Fatalf("job1 stream missing rider's canceled event: %v", eventTypes(frames))
	}
	if last.ev.Type != EventDone || last.ev.Job != job1.ID {
		t.Fatalf("job1 stream ended on %+v, want its own done", last.ev)
	}
	waitState(t, job1, StateDone)
}

// TestEventsCacheHitStream: a job served from cache still offers a
// stream — a single done event marked cached.
func TestEventsCacheHitStream(t *testing.T) {
	s, ts := httpServer(t, Config{Executor: &fakeExec{}})
	seqs := testSeqs(6, 30, 55)
	first, err := s.Submit(seqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first, StateDone)
	hit, err := s.Submit(seqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hit, StateDone)

	frames := openSSE(t, ts.URL+"/v1/jobs/"+hit.ID+"/events", "").drain(t)
	if len(frames) != 1 {
		t.Fatalf("cache-hit stream has %d frames: %v", len(frames), eventTypes(frames))
	}
	f := frames[0]
	if f.ev.Type != EventDone || f.ev.Job != hit.ID || !f.ev.Cached {
		t.Fatalf("cache-hit frame = %+v, want cached done", f.ev)
	}
	if f.ev.Trace != first.Trace {
		t.Fatalf("cache-hit trace = %q, want the original %q", f.ev.Trace, first.Trace)
	}
}

// TestEventsRestartSynthesizesTerminal: a journal-restored job has no
// retained bus, but its stream still converges on the outcome — one
// synthesized terminal event (no SSE id) and a clean end.
func TestEventsRestartSynthesizesTerminal(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{DataDir: dir, Executor: &fakeExec{}})
	job, err := s1.Submit(testSeqs(6, 30, 56), Options{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateDone)
	s1.Close()

	s2, ts := httpServer(t, Config{DataDir: dir, Executor: &fakeExec{}})
	if _, ok := s2.Job(job.ID); !ok {
		t.Fatalf("job %s not restored from journal", job.ID)
	}
	frames := openSSE(t, ts.URL+"/v1/jobs/"+job.ID+"/events", "").drain(t)
	if len(frames) != 1 {
		t.Fatalf("restored stream has %d frames: %v", len(frames), eventTypes(frames))
	}
	f := frames[0]
	if f.ev.Type != EventDone || f.ev.Job != job.ID {
		t.Fatalf("restored frame = %+v, want synthesized done", f.ev)
	}
	if f.id != 0 {
		t.Fatalf("synthesized event carries bus id %d, want none", f.id)
	}
}

func TestEventsUnknownJob(t *testing.T) {
	_, ts := httpServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events status = %d, want 404", resp.StatusCode)
	}
}
