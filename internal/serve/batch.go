package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/bio"
	"repro/internal/fasta"
	"repro/internal/store"
)

// BatchItem is one input of a batch submission: a parsed FASTA set and
// the options it should run under.
type BatchItem struct {
	Seqs []bio.Sequence
	Opts Options
}

// SubmitBatch admits many independent submissions as one atomic unit.
// Each item behaves exactly like a single Submit — cache tiers answer
// hits instantly, identical in-flight computations (including
// duplicates inside the batch itself) coalesce — but admission is
// all-or-nothing: either every item that needs a queue slot gets one or
// the whole batch is rejected with ErrOverloaded and no state changes.
// The accepted batch is journaled as one commit group, so either every
// member is durable or none is. Returned jobs are in item order.
func (s *Server) SubmitBatch(items []BatchItem) ([]*Job, error) {
	if len(items) == 0 {
		return nil, badRequest("batch has no inputs")
	}
	s.mu.Lock()
	stopped := s.closed || s.draining
	s.mu.Unlock()
	if stopped {
		return nil, ErrClosed
	}

	// Validate everything before admitting anything: a bad input
	// rejects the whole batch with its index, never a partial accept.
	now := time.Now()
	jobs := make([]*Job, len(items))
	for i, it := range items {
		opts, err := resolve(it.Opts, s.cfg.Defaults, s.cfg.Limits, s.cfg.Executor.FixedProcs())
		if err != nil {
			return nil, badRequest("input %d: %v", i, err)
		}
		if len(it.Seqs) == 0 {
			return nil, badRequest("input %d: no sequences in input", i)
		}
		seen := make(map[string]bool, len(it.Seqs))
		for _, sq := range it.Seqs {
			if seen[sq.ID] {
				return nil, badRequest("input %d: duplicate sequence id %q (ids must be unique)", i, sq.ID)
			}
			seen[sq.ID] = true
			if len(sq.Data) == 0 {
				return nil, badRequest("input %d: sequence %q is empty", i, sq.ID)
			}
		}
		jobs[i] = &Job{
			ID:        newJobID(),
			Key:       CacheKey(it.Seqs, opts),
			Opts:      opts,
			Submitted: now,
			NumSeqs:   len(it.Seqs),
			done:      make(chan struct{}),
		}
	}

	// Cache tiers: hits complete instantly and take no queue slot. The
	// hit jobs are fully built before they become visible, so a
	// rejection below leaves no trace of them.
	hits := make([]*Result, len(items))
	for i, job := range jobs {
		if res, ok := s.lookupResult(job.Key); ok {
			hits[i] = res
			job.Trace = res.TraceID
			job.state = StateDone
			job.cached = true
			job.result = s.retainedResult(res)
			job.started, job.finished = now, now
			job.bus = s.newEventBus()
			s.publish(job.bus, Event{Type: EventDone, Job: job.ID, Trace: job.Trace, Cached: true})
			job.bus.Close()
			close(job.done)
		}
	}

	// All-or-nothing admission: count the queue slots the batch needs —
	// one per distinct content address that is neither a cache hit nor
	// already in flight — and take them atomically against MaxQueued.
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	need := 0
	distinct := make(map[string]bool)
	for i, job := range jobs {
		if hits[i] != nil || s.inflight[job.Key] != nil || distinct[job.Key] {
			continue
		}
		distinct[job.Key] = true
		need++
	}
	if need > s.cfg.MaxQueued {
		s.mu.Unlock()
		s.metrics.Rejected.Inc()
		s.metrics.BatchRejected.Inc()
		return nil, badRequest("batch needs %d queue slots but the server admits at most %d", need, s.cfg.MaxQueued)
	}
	if s.queued+need > s.cfg.MaxQueued {
		s.mu.Unlock()
		s.metrics.Rejected.Inc()
		s.metrics.BatchRejected.Inc()
		return nil, ErrOverloaded
	}
	var newFlights []*flight
	coalesced := make([]bool, len(items))
	ranAtAttach := make([]bool, len(items))
	for i, job := range jobs {
		if hits[i] != nil {
			s.rememberLocked(job)
			continue
		}
		if fl := s.inflight[job.Key]; fl != nil {
			// Rides an existing flight — possibly one created by an
			// earlier item of this same batch.
			job.coalesced = true
			coalesced[i] = true
			job.Trace = fl.trace
			job.fl = fl
			job.bus = fl.bus
			fl.jobs = append(fl.jobs, job)
			job.state = StateQueued
			if fl.state == StateRunning {
				job.state = StateRunning
				job.started = now
				ranAtAttach[i] = true
			}
			s.rememberLocked(job)
			continue
		}
		fctx, fcancel := context.WithCancelCause(s.baseCtx)
		fl := &flight{
			key:        job.Key,
			trace:      newTraceID(),
			seqs:       items[i].Seqs,
			opts:       job.Opts,
			ctx:        fctx,
			cancel:     fcancel,
			bus:        s.newEventBus(),
			enqueued:   now,
			state:      StateQueued,
			jobs:       []*Job{job},
			queuedSlot: true,
		}
		job.fl = fl
		job.Trace = fl.trace
		job.bus = fl.bus
		job.state = StateQueued
		s.inflight[job.Key] = fl
		s.queued++
		newFlights = append(newFlights, fl)
		s.rememberLocked(job)
	}
	s.mu.Unlock()

	// Metrics, progress events and the journal group. The whole batch
	// rides one AppendBatch: a crash leaves either every member
	// replayable or none, never half a batch.
	s.metrics.BatchSubmitted.Inc()
	s.metrics.BatchJobs.Add(int64(len(jobs)))
	records := make([]store.Record, 0, len(jobs)+1)
	for i, job := range jobs {
		s.metrics.Submitted.Inc()
		switch {
		case hits[i] != nil:
			s.metrics.CacheHits.Inc()
			s.metrics.Completed.Inc()
			// journalTerminalJob's record pair (finish first), folded
			// into the batch group.
			records = append(records,
				finishRecord(job.ID, job.Key, StateDone, "", metaOf(job.result), job.finished),
				submitRecord(job.ID, job.Key, job.Submitted,
					submitData{Opts: job.Opts, NumSeqs: job.NumSeqs, Cached: true}))
		default:
			if coalesced[i] {
				s.metrics.Coalesced.Inc()
				if ranAtAttach[i] {
					s.metrics.QueueWait.Observe("coalesced", now.Sub(job.Submitted).Seconds())
				}
			} else {
				s.metrics.CacheMisses.Inc()
			}
			s.publish(job.bus, Event{Type: EventQueued, Job: job.ID, Trace: job.Trace, Coalesced: job.coalesced})
			records = append(records, submitRecord(job.ID, job.Key, job.Submitted, submitData{
				Opts:      job.Opts,
				NumSeqs:   job.NumSeqs,
				FASTA:     []byte(fasta.FormatString(items[i].Seqs)),
				Coalesced: job.coalesced,
			}))
		}
	}
	s.journalAppendBatch(records)
	s.log.Info("batch accepted", "jobs", len(jobs), "new_flights", len(newFlights))

	// Enqueue the new flights, with the same closed-race handling as
	// Submit: a shutdown that raced the journal write interrupts them
	// (the next boot re-enqueues) instead of leaving them undispatched.
	type casualty struct {
		fl   *flight
		jobs []*Job
	}
	var casualties []casualty
	s.mu.Lock()
	for _, fl := range newFlights {
		switch {
		case fl.state != StateQueued:
			// Canceled while the batch group was being journaled; it was
			// never in the fifo, so nothing to remove.
		case s.closed:
			fl.state = StateCanceled
			fl.queuedSlot = false
			s.queued--
			if s.inflight[fl.key] == fl {
				delete(s.inflight, fl.key)
			}
			casualties = append(casualties, casualty{fl: fl, jobs: fl.jobs})
			fl.jobs = nil
		default:
			s.fifo = append(s.fifo, fl)
			s.cond.Signal()
		}
	}
	s.mu.Unlock()
	for _, c := range casualties {
		for _, w := range c.jobs {
			s.finalizeJob(w, StateCanceled, nil, ErrInterrupted, time.Now())
		}
		c.fl.bus.Close()
		c.fl.cancel(ErrInterrupted)
	}
	for _, job := range jobs {
		s.armDeadline(job, now)
	}
	return jobs, nil
}

// BatchRequest is the JSON body of POST /v1/batch: many FASTA inputs
// submitted in one request. Request-level Options apply to every input
// that does not set its own; query parameters overlay both.
type BatchRequest struct {
	Inputs  []SubmitRequest `json:"inputs"`
	Options Options         `json:"options"`
}

// BatchResponse lists the per-input jobs in input order.
type BatchResponse struct {
	Jobs []JobView `json:"jobs"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxRequestBytes+1))
	if err != nil {
		submitError(w, badRequest("reading body: %v", err))
		return
	}
	if len(body) > MaxRequestBytes {
		submitError(w, badRequest("request body exceeds %d bytes", MaxRequestBytes))
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		submitError(w, badRequest("decoding JSON body: %v", err))
		return
	}
	if len(req.Inputs) == 0 {
		submitError(w, badRequest("batch has no inputs"))
		return
	}
	items := make([]BatchItem, len(req.Inputs))
	for i, in := range req.Inputs {
		o := in.Options
		if o == (Options{}) {
			o = req.Options
		}
		if err := optionsFromQuery(r, &o); err != nil {
			submitError(w, err)
			return
		}
		seqs, err := fasta.Read(strings.NewReader(in.FASTA))
		if err != nil {
			submitError(w, badRequest("input %d: parsing FASTA: %v", i, err))
			return
		}
		items[i] = BatchItem{Seqs: seqs, Opts: o}
	}
	jobs, err := s.SubmitBatch(items)
	if err != nil {
		submitError(w, err)
		return
	}
	resp := BatchResponse{Jobs: make([]JobView, len(jobs))}
	code := http.StatusOK
	for i, job := range jobs {
		resp.Jobs[i] = job.View()
		if !resp.Jobs[i].State.Terminal() {
			code = http.StatusAccepted // at least one job still pending
		}
	}
	writeJSON(w, code, resp)
}
