package serve

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
)

// resolveLogger picks the server's structured logger: an explicit
// Config.Logger wins, a legacy printf-style Config.Logf is adapted so
// existing consumers keep receiving messages, and with neither the
// server is silent.
func resolveLogger(logger *slog.Logger, logf func(format string, args ...any)) *slog.Logger {
	if logger != nil {
		return logger
	}
	if logf != nil {
		return slog.New(logfHandler{logf: logf})
	}
	return slog.New(slog.DiscardHandler)
}

// logfHandler adapts a printf-style sink to slog: each record renders
// as "LEVEL msg key=value ..." through the single format verb the old
// Logf contract had. It keeps pre-slog callers (tests passing t.Logf,
// cmds passing log.Printf) working unchanged.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
	group string
}

func (h logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Level.String())
	b.WriteByte(' ')
	b.WriteString(r.Message)
	writeAttr := func(a slog.Attr) {
		key := a.Key
		if h.group != "" {
			key = h.group + "." + key
		}
		fmt.Fprintf(&b, " %s=%v", key, a.Value)
	}
	for _, a := range h.attrs {
		writeAttr(a)
	}
	r.Attrs(func(a slog.Attr) bool {
		writeAttr(a)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h.attrs = append(h.attrs[:len(h.attrs):len(h.attrs)], attrs...)
	return h
}

func (h logfHandler) WithGroup(name string) slog.Handler {
	if h.group != "" {
		name = h.group + "." + name
	}
	h.group = name
	return h
}
