package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fasta"
	"repro/internal/obs"
)

// pipelineStageNames is the canonical five-stage set every successful
// job's trace must cover (mirrors the pipelineStages metric filter).
var pipelineStageNames = []string{"distmatrix", "guidetree", "decompose", "bucketalign", "merge"}

// collectSpans flattens a span tree into name → first span seen.
func collectSpans(spans []*obs.SpanDoc, into map[string]*obs.SpanDoc) {
	for _, sp := range spans {
		if _, ok := into[sp.Name]; !ok {
			into[sp.Name] = sp
		}
		collectSpans(sp.Children, into)
	}
}

func fetchTrace(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func runHTTPJob(t *testing.T, ts *httptest.Server, in string) JobView {
	t.Helper()
	resp := postFASTA(t, ts.URL+"/v1/jobs?procs=3", in)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	v := decodeView(t, resp)
	deadline := time.Now().Add(30 * time.Second)
	for !v.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", v.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		v = decodeView(t, r)
	}
	if v.State != StateDone {
		t.Fatalf("job finished %s: %s", v.State, v.Error)
	}
	return v
}

// TestTraceEndpointSpanTree runs a real in-process alignment and
// asserts the finished job serves a span tree covering all five
// pipeline stages with positive durations.
func TestTraceEndpointSpanTree(t *testing.T) {
	_, ts := httpServer(t, Config{MaxConcurrent: 1})
	v := runHTTPJob(t, ts, fasta.FormatString(testSeqs(18, 60, 91)))
	if v.TraceID == "" {
		t.Fatal("done job carries no trace_id")
	}

	resp, body := fetchTrace(t, ts.URL+"/v1/jobs/"+v.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != v.TraceID {
		t.Fatalf("X-Trace-Id = %q, job trace_id = %q", got, v.TraceID)
	}

	var doc obs.Document
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.TraceID != v.TraceID {
		t.Fatalf("document trace_id = %q, job trace_id = %q", doc.TraceID, v.TraceID)
	}
	byName := map[string]*obs.SpanDoc{}
	collectSpans(doc.Spans, byName)
	if _, ok := byName["job"]; !ok {
		t.Fatal("no root job span in trace")
	}
	for _, stage := range pipelineStageNames {
		sp, ok := byName[stage]
		if !ok {
			t.Errorf("stage %q missing from trace", stage)
			continue
		}
		if sp.DurationNs <= 0 {
			t.Errorf("stage %q duration = %dns, want > 0", stage, sp.DurationNs)
		}
	}
}

// TestTraceEndpointStatuses covers the non-done paths: unknown job,
// running job (a live snapshot marked incomplete), queued job (no
// tracer yet → 409), canceled job, and tracing disabled.
func TestTraceEndpointStatuses(t *testing.T) {
	fe := &fakeExec{block: make(chan struct{}), started: make(chan struct{}, 1)}
	s, ts := httpServer(t, Config{Executor: fe, MaxConcurrent: 1})

	if resp, _ := fetchTrace(t, ts.URL+"/v1/jobs/nosuch/trace"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace status = %d, want 404", resp.StatusCode)
	}

	job, err := s.Submit(testSeqs(6, 40, 7), Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-fe.started
	// Running: a live in-progress snapshot, not a 409 — marked by the
	// X-Trace-Incomplete header, carrying the flight's trace ID and the
	// still-open job root span.
	resp, body := fetchTrace(t, ts.URL+"/v1/jobs/"+job.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("running job trace status = %d, want 200: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Trace-Incomplete") == "" {
		t.Fatal("running job snapshot has no X-Trace-Incomplete header")
	}
	var doc obs.Document
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("running job snapshot is not valid JSON: %v", err)
	}
	if doc.TraceID != job.Trace {
		t.Fatalf("snapshot trace_id = %q, want %q", doc.TraceID, job.Trace)
	}
	byName := map[string]*obs.SpanDoc{}
	collectSpans(doc.Spans, byName)
	if _, ok := byName["job"]; !ok {
		t.Fatal("no job root span in the in-progress snapshot")
	}

	// Queued behind the blocked flight: no tracer exists yet → 409.
	queued, err := s.Submit(testSeqs(7, 40, 11), Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = fetchTrace(t, ts.URL+"/v1/jobs/"+queued.ID+"/trace")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("queued job trace status = %d, want 409", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("409 trace response has no Retry-After")
	}
	if _, err := s.Cancel(queued.ID, nil); err != nil {
		t.Fatal(err)
	}

	// Cancel the blocked job: its trace answers 410.
	if _, err := s.Cancel(job.ID, nil); err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateCanceled)
	if resp, _ := fetchTrace(t, ts.URL+"/v1/jobs/"+job.ID+"/trace"); resp.StatusCode != http.StatusGone {
		t.Fatalf("canceled job trace status = %d, want 410", resp.StatusCode)
	}
	close(fe.block)
}

// TestTraceEndpointDisabled: with NoTrace the job completes normally
// and keeps its trace ID (it still keys log lines), but no span tree
// is recorded and the endpoint answers 404.
func TestTraceEndpointDisabled(t *testing.T) {
	_, ts := httpServer(t, Config{Executor: &fakeExec{}, NoTrace: true})
	v := runHTTPJob(t, ts, fasta.FormatString(testSeqs(8, 40, 13)))
	if v.TraceID == "" {
		t.Fatal("NoTrace job lost its log-correlation trace_id")
	}
	resp, body := fetchTrace(t, ts.URL+"/v1/jobs/"+v.ID+"/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("NoTrace trace status = %d: %s", resp.StatusCode, body)
	}
}

// TestTracePersistsAcrossRestart: the trace store under DataDir keeps
// span trees alongside results, so a finished job's trace is still
// served after a clean restart.
func TestTracePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	seqs := testSeqs(12, 50, 29)

	s1 := newTestServer(t, Config{DataDir: dir})
	job1, err := s1.Submit(seqs, Options{Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	v1 := waitState(t, job1, StateDone)
	if v1.TraceID == "" {
		t.Fatal("done job carries no trace_id")
	}
	s1.Close()

	s2 := newTestServer(t, Config{DataDir: dir})
	defer s2.Close()
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()

	resp, body := fetchTrace(t, ts.URL+"/v1/jobs/"+job1.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered trace status = %d: %s", resp.StatusCode, body)
	}
	var doc obs.Document
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("recovered trace is not valid JSON: %v", err)
	}
	if doc.TraceID != v1.TraceID {
		t.Fatalf("recovered trace_id = %q, want %q", doc.TraceID, v1.TraceID)
	}
	byName := map[string]*obs.SpanDoc{}
	collectSpans(doc.Spans, byName)
	for _, stage := range pipelineStageNames {
		if _, ok := byName[stage]; !ok {
			t.Errorf("stage %q missing from recovered trace", stage)
		}
	}

	// The restored job view still reports the original trace ID.
	j2, ok := s2.Job(job1.ID)
	if !ok {
		t.Fatal("job lost across restart")
	}
	if got := j2.View().TraceID; got != v1.TraceID {
		t.Fatalf("restored job trace_id = %q, want %q", got, v1.TraceID)
	}
}

var (
	sampleLineRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$`)
	helpLineRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeLineRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	leRe         = regexp.MustCompile(`le="([^"]*)"`)
	lePairRe     = regexp.MustCompile(`,?le="[^"]*"`)
)

// stripLe drops the le pair from a label set so bucket samples group
// with their series' _sum/_count samples: {stage="x",le="0.1"} →
// {stage="x"}, {le="0.1"} → "".
func stripLe(labels string) string {
	s := lePairRe.ReplaceAllString(labels, "")
	s = strings.ReplaceAll(s, "{,", "{")
	s = strings.ReplaceAll(s, ",}", "}")
	if s == "{}" {
		return ""
	}
	return s
}

// familyOf maps a sample name to its metric family: histogram samples
// carry _bucket/_sum/_count suffixes on the family name.
func familyOf(name string, families map[string]string) (string, bool) {
	if _, ok := families[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && families[base] == "histogram" {
			return base, true
		}
	}
	return "", false
}

// TestMetricsPrometheusConformance runs a real job, then validates the
// full /metrics payload against the Prometheus text exposition format:
// every line parses, every sample belongs to a family with HELP and
// TYPE declared exactly once before its samples, and every histogram
// series has cumulative counts over le-sorted buckets ending at +Inf
// with a matching _count.
func TestMetricsPrometheusConformance(t *testing.T) {
	_, ts := httpServer(t, Config{MaxConcurrent: 1})
	runHTTPJob(t, ts, fasta.FormatString(testSeqs(14, 50, 57)))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}

	families := map[string]string{} // family → type
	helps := map[string]int{}
	types := map[string]int{}
	sampled := map[string]bool{} // families that already emitted a sample

	type bucketSeries struct {
		les    []float64
		counts []uint64
	}
	buckets := map[string]*bucketSeries{} // "name|labels-without-le" → series
	counts := map[string]uint64{}         // "_count" sample per labelset

	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in metrics output")
		}
		if m := helpLineRe.FindStringSubmatch(line); m != nil {
			helps[m[1]]++
			if sampled[m[1]] {
				t.Errorf("HELP for %s after its samples", m[1])
			}
			continue
		}
		if m := typeLineRe.FindStringSubmatch(line); m != nil {
			types[m[1]]++
			families[m[1]] = m[2]
			if sampled[m[1]] {
				t.Errorf("TYPE for %s after its samples", m[1])
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unparseable comment line: %q", line)
			continue
		}
		m := sampleLineRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		fam, ok := familyOf(name, families)
		if !ok {
			t.Errorf("sample %s has no declared family", name)
			continue
		}
		sampled[fam] = true
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Errorf("sample %s value %q does not parse: %v", name, value, err)
			continue
		}
		switch {
		case strings.HasSuffix(name, "_bucket") && families[fam] == "histogram":
			le := leRe.FindStringSubmatch(labels)
			if le == nil {
				t.Errorf("bucket sample without le label: %q", line)
				continue
			}
			bound, err := strconv.ParseFloat(le[1], 64)
			if err != nil {
				t.Errorf("bucket le %q does not parse: %v", le[1], err)
				continue
			}
			key := fam + "|" + stripLe(labels)
			bs := buckets[key]
			if bs == nil {
				bs = &bucketSeries{}
				buckets[key] = bs
			}
			bs.les = append(bs.les, bound)
			bs.counts = append(bs.counts, uint64(v))
		case strings.HasSuffix(name, "_count") && families[fam] == "histogram":
			counts[fam+"|"+stripLe(labels)] = uint64(v)
		}
	}

	for fam, typ := range families {
		if helps[fam] != 1 {
			t.Errorf("family %s (%s): HELP appears %d times, want 1", fam, typ, helps[fam])
		}
		if types[fam] != 1 {
			t.Errorf("family %s (%s): TYPE appears %d times, want 1", fam, typ, types[fam])
		}
	}
	for fam, n := range helps {
		if _, ok := families[fam]; !ok {
			t.Errorf("HELP for %s (%d times) with no TYPE", fam, n)
		}
	}

	if len(buckets) == 0 {
		t.Fatal("no histogram bucket series on /metrics")
	}
	for key, bs := range buckets {
		for i := 1; i < len(bs.les); i++ {
			if !(bs.les[i] > bs.les[i-1]) {
				t.Errorf("series %s: le bounds not strictly increasing: %v", key, bs.les)
				break
			}
		}
		for i := 1; i < len(bs.counts); i++ {
			if bs.counts[i] < bs.counts[i-1] {
				t.Errorf("series %s: bucket counts not cumulative: %v", key, bs.counts)
				break
			}
		}
		last := len(bs.les) - 1
		if last < 0 || !isInf(bs.les[last]) {
			t.Errorf("series %s: final bucket is not le=\"+Inf\": %v", key, bs.les)
			continue
		}
		total, ok := counts[key]
		if !ok {
			t.Errorf("series %s: no matching _count sample", key)
		} else if bs.counts[last] != total {
			t.Errorf("series %s: +Inf bucket %d != _count %d", key, bs.counts[last], total)
		}
	}

	// The job above must have populated every pipeline-stage series.
	for _, stage := range pipelineStageNames {
		key := `samplealign_stage_seconds|{stage="` + stage + `"}`
		if buckets[key] == nil {
			t.Errorf("no samplealign_stage_seconds buckets for stage %q (have %v)", stage, bucketKeys(buckets))
		}
	}
}

func isInf(f float64) bool { return f > 1e308 }

func bucketKeys[V any](m map[string]*V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
