// Package fft provides the radix-2 complex FFT (stdlib-only) behind the
// MAFFT-like aligner's homologous-segment detection: cross-correlating
// residue property signals of two sequences peaks at the offsets where
// they share homologous segments (Katoh et al. 2002).
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Transform computes the in-place radix-2 decimation-in-time FFT of x.
// len(x) must be a power of two. inverse selects the inverse transform
// (scaled by 1/n).
func Transform(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// bit-reversal permutation
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		angle := 2 * math.Pi / float64(size)
		if !inverse {
			angle = -angle
		}
		wStep := complex(math.Cos(angle), math.Sin(angle))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// CrossCorrelate returns the linear cross-correlation of two real
// signals: out[k] = Σ_t a[t]·b[t+k-(len(a)-1)], indexed so that
// out[len(a)-1+s] is the correlation at shift s of b relative to a
// (s ∈ [-(len(a)-1), len(b)-1]). Computed via FFT in O(n log n).
func CrossCorrelate(a, b []float64) ([]float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, fmt.Errorf("fft: empty signal")
	}
	outLen := len(a) + len(b) - 1
	n := NextPow2(outLen)
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	// reverse a so convolution becomes correlation
	for i, v := range a {
		fa[len(a)-1-i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	if err := Transform(fa, false); err != nil {
		return nil, err
	}
	if err := Transform(fb, false); err != nil {
		return nil, err
	}
	for i := range fa {
		fa[i] *= fb[i]
	}
	if err := Transform(fa, true); err != nil {
		return nil, err
	}
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out, nil
}
