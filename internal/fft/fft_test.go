package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestTransformKnownDC(t *testing.T) {
	x := []complex128{1, 1, 1, 1}
	if err := Transform(x, false); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-4) > 1e-12 {
		t.Fatalf("DC bin = %v", x[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(x[i]) > 1e-12 {
			t.Fatalf("bin %d = %v", i, x[i])
		}
	}
}

func TestTransformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 64, 256} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := Transform(x, false); err != nil {
			t.Fatal(err)
		}
		if err := Transform(x, true); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip error at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestTransformRejectsNonPow2(t *testing.T) {
	if err := Transform(make([]complex128, 3), false); err == nil {
		t.Fatal("length 3 accepted")
	}
}

func TestTransformParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 128
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	if err := Transform(x, false); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-9*timeEnergy {
		t.Fatalf("Parseval violated: %g vs %g", timeEnergy, freqEnergy)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func bruteCorrelate(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for s := -(len(a) - 1); s <= len(b)-1; s++ {
		var sum float64
		for t := 0; t < len(a); t++ {
			bt := t + s
			if bt >= 0 && bt < len(b) {
				sum += a[t] * b[bt]
			}
		}
		out[len(a)-1+s] = sum
	}
	return out
}

func TestCrossCorrelateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		a := make([]float64, 1+rng.Intn(50))
		b := make([]float64, 1+rng.Intn(50))
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got, err := CrossCorrelate(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteCorrelate(a, b)
		if len(got) != len(want) {
			t.Fatalf("length %d != %d", len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: corr[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestCrossCorrelatePeakAtSharedSegment(t *testing.T) {
	// b is a copy of a shifted by 7: the correlation must peak at s=7.
	rng := rand.New(rand.NewSource(4))
	a := make([]float64, 60)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	b := make([]float64, 67)
	copy(b[7:], a)
	corr, err := CrossCorrelate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	best, bestIdx := math.Inf(-1), -1
	for i, v := range corr {
		if v > best {
			best, bestIdx = v, i
		}
	}
	if shift := bestIdx - (len(a) - 1); shift != 7 {
		t.Fatalf("peak at shift %d, want 7", shift)
	}
}

func TestCrossCorrelateEmpty(t *testing.T) {
	if _, err := CrossCorrelate(nil, []float64{1}); err == nil {
		t.Fatal("empty signal accepted")
	}
}
