package bio

// Per-residue physicochemical properties (Grantham 1974), used by the
// MAFFT-like aligner: an amino-acid sequence becomes a pair of numeric
// signals (volume, polarity) whose cross-correlation — computed with an
// FFT — peaks at the offsets of homologous segments.

// grantham volume and polarity, indexed by AminoAcids letter order
// (ARNDCQEGHILKMFPSTWYV).
var granthamVolume = [20]float64{
	31, 124, 56, 54, 55, 85, 83, 3, 96, 111,
	111, 119, 105, 132, 32.5, 32, 61, 170, 136, 84,
}

var granthamPolarity = [20]float64{
	8.1, 10.5, 11.6, 13.0, 5.5, 10.5, 12.3, 9.0, 10.4, 5.2,
	4.9, 11.3, 5.7, 5.2, 8.0, 9.2, 8.6, 5.4, 6.2, 5.9,
}

// normalized copies with zero mean and unit variance, computed once at
// package init so correlation scores are comparable across properties.
var normVolume, normPolarity [20]float64

func init() {
	normVolume = normalize(granthamVolume)
	normPolarity = normalize(granthamPolarity)
}

func normalize(v [20]float64) [20]float64 {
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= 20
	var ss float64
	for _, x := range v {
		d := x - mean
		ss += d * d
	}
	sd := 1.0
	if ss > 0 {
		sd = sqrt(ss / 20)
	}
	var out [20]float64
	for i, x := range v {
		out[i] = (x - mean) / sd
	}
	return out
}

// sqrt is a tiny local Newton iteration so the package stays free of a
// math import for one call; accurate to ~1e-12 for the magnitudes here.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

// Volume returns the normalized Grantham volume of residue b, or 0 for
// bytes outside the amino-acid alphabet (gaps contribute no signal).
func Volume(b byte) float64 {
	i := AminoAcids.Index(b)
	if i < 0 {
		return 0
	}
	return normVolume[i]
}

// Polarity returns the normalized Grantham polarity of residue b, or 0
// for bytes outside the amino-acid alphabet.
func Polarity(b byte) float64 {
	i := AminoAcids.Index(b)
	if i < 0 {
		return 0
	}
	return normPolarity[i]
}
