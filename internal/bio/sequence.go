package bio

import (
	"bytes"
	"fmt"
)

// Gap is the byte used to denote an alignment gap in aligned rows.
const Gap = '-'

// Sequence is a named biological sequence. Data holds the residues and,
// for aligned rows, gap bytes. Sequence values are passed by value; Data
// is shared, so use Clone before mutating a sequence you do not own.
type Sequence struct {
	ID   string // identifier (first word of a FASTA header)
	Desc string // free-text description (rest of the FASTA header)
	Data []byte // residues, optionally containing Gap bytes
}

// NewSequence builds a sequence from an id and residue string.
func NewSequence(id, data string) Sequence {
	return Sequence{ID: id, Data: []byte(data)}
}

// Len returns the number of bytes in the sequence, including gaps.
func (s Sequence) Len() int { return len(s.Data) }

// String returns the residue data as a string.
func (s Sequence) String() string { return string(s.Data) }

// Clone returns a deep copy of the sequence.
func (s Sequence) Clone() Sequence {
	d := make([]byte, len(s.Data))
	copy(d, s.Data)
	return Sequence{ID: s.ID, Desc: s.Desc, Data: d}
}

// Ungapped returns a copy of the sequence with all gap bytes removed.
func (s Sequence) Ungapped() Sequence {
	return Sequence{ID: s.ID, Desc: s.Desc, Data: Ungap(s.Data)}
}

// Validate checks that every non-gap byte of the sequence belongs to the
// alphabet and returns a descriptive error for the first offender.
func (s Sequence) Validate(a *Alphabet) error {
	for i, b := range s.Data {
		if b == Gap {
			continue
		}
		if !a.Contains(b) {
			return fmt.Errorf("bio: sequence %q: byte %q at position %d not in alphabet %s",
				s.ID, b, i, a.Name())
		}
	}
	return nil
}

// Ungap returns a new byte slice with every Gap byte removed.
func Ungap(data []byte) []byte {
	out := make([]byte, 0, len(data))
	for _, b := range data {
		if b != Gap {
			out = append(out, b)
		}
	}
	return out
}

// Equal reports whether two sequences have identical ids and data.
func Equal(a, b Sequence) bool {
	return a.ID == b.ID && bytes.Equal(a.Data, b.Data)
}

// TotalLen returns the summed length of all sequences.
func TotalLen(seqs []Sequence) int {
	n := 0
	for _, s := range seqs {
		n += s.Len()
	}
	return n
}

// MeanLen returns the average sequence length, or 0 for an empty set.
func MeanLen(seqs []Sequence) float64 {
	if len(seqs) == 0 {
		return 0
	}
	return float64(TotalLen(seqs)) / float64(len(seqs))
}

// CloneAll deep-copies a slice of sequences.
func CloneAll(seqs []Sequence) []Sequence {
	out := make([]Sequence, len(seqs))
	for i, s := range seqs {
		out[i] = s.Clone()
	}
	return out
}

// IDs returns the identifiers of the sequences in order.
func IDs(seqs []Sequence) []string {
	ids := make([]string, len(seqs))
	for i, s := range seqs {
		ids[i] = s.ID
	}
	return ids
}
