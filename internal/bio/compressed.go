package bio

import "fmt"

// Compressed is a many-to-one mapping from alphabet letters onto a smaller
// set of residue classes. MUSCLE-style k-mer counting runs over compressed
// alphabets (Edgar, NAR 2004) because grouping chemically similar residues
// makes short k-mers far more sensitive to distant homology.
type Compressed struct {
	name  string
	size  int
	class [256]int8
}

// NewCompressed builds a compressed alphabet from residue groups, one
// string per class. Letters absent from every group map to class -1.
// It panics on a letter assigned to two classes (programming error:
// compressed alphabets are package constants).
func NewCompressed(name string, groups []string) *Compressed {
	c := &Compressed{name: name, size: len(groups)}
	for i := range c.class {
		c.class[i] = -1
	}
	for ci, g := range groups {
		for i := 0; i < len(g); i++ {
			u := upper(g[i])
			if c.class[u] != -1 {
				panic(fmt.Sprintf("bio: letter %q in two classes of %s", g[i], name))
			}
			c.class[u] = int8(ci)
			c.class[lower(u)] = int8(ci)
		}
	}
	return c
}

// Name returns the compressed alphabet's name.
func (c *Compressed) Name() string { return c.name }

// Len returns the number of residue classes.
func (c *Compressed) Len() int { return c.size }

// Class returns the class index of byte b, or -1 when b has no class
// (gap bytes, ambiguity codes).
func (c *Compressed) Class(b byte) int { return int(c.class[b]) }

// Identity returns a trivial "compression" in which every letter of a is
// its own class, letting the k-mer code run on the full alphabet.
func Identity(a *Alphabet) *Compressed {
	groups := make([]string, a.Len())
	for i := 0; i < a.Len(); i++ {
		groups[i] = string(a.Letter(i))
	}
	return NewCompressed(a.Name()+"-id", groups)
}

// Dayhoff6 is the classic six-class Dayhoff grouping
// (AGPST | C | DENQ | FWY | HKR | ILMV) used by MUSCLE's k-mer distance.
var Dayhoff6 = NewCompressed("dayhoff6", []string{
	"AGPST", "C", "DENQ", "FWY", "HKR", "ILMV",
})

// SEB14 is Edgar's SE-B(14) compressed alphabet
// (A | C | D | EQ | FY | G | H | IV | KR | LM | N | P | ST | W).
var SEB14 = NewCompressed("se-b14", []string{
	"A", "C", "D", "EQ", "FY", "G", "H", "IV", "KR", "LM", "N", "P", "ST", "W",
})

// DNA4 treats each nucleotide as its own class for nucleotide k-mers.
var DNA4 = Identity(DNA)
