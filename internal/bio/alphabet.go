// Package bio provides the basic biological data types shared by every other
// package in this repository: residue alphabets, compressed alphabets,
// sequences and per-residue physicochemical properties.
//
// All alignment, k-mer and distance code is written against these types so
// that protein and nucleotide data flow through the same pipelines.
package bio

import "fmt"

// Alphabet is an ordered set of residue letters with O(1) byte-to-index
// lookup. Lookup is case-insensitive: 'a' and 'A' map to the same index.
type Alphabet struct {
	name    string
	letters []byte
	index   [256]int16
}

// NewAlphabet builds an alphabet from the given (upper-case) letters.
// It panics if letters contains duplicates; alphabets are meant to be
// package-level constants, so a malformed one is a programming error.
func NewAlphabet(name, letters string) *Alphabet {
	a := &Alphabet{name: name, letters: []byte(letters)}
	for i := range a.index {
		a.index[i] = -1
	}
	for i := 0; i < len(letters); i++ {
		u := upper(letters[i])
		if a.index[u] != -1 {
			panic(fmt.Sprintf("bio: duplicate letter %q in alphabet %s", letters[i], name))
		}
		a.index[u] = int16(i)
		a.index[lower(u)] = int16(i)
	}
	return a
}

// Name returns the alphabet's name (for example "amino").
func (a *Alphabet) Name() string { return a.name }

// Len returns the number of letters in the alphabet.
func (a *Alphabet) Len() int { return len(a.letters) }

// Letters returns the alphabet's letters in index order. The caller must
// not modify the returned slice.
func (a *Alphabet) Letters() []byte { return a.letters }

// Index returns the index of b in the alphabet, or -1 if b is not a
// member (gaps, ambiguity codes and stray bytes all return -1).
func (a *Alphabet) Index(b byte) int { return int(a.index[b]) }

// Letter returns the letter at index i.
func (a *Alphabet) Letter(i int) byte { return a.letters[i] }

// Contains reports whether b is a letter of the alphabet.
func (a *Alphabet) Contains(b byte) bool { return a.index[b] >= 0 }

func upper(b byte) byte {
	if b >= 'a' && b <= 'z' {
		return b - 'a' + 'A'
	}
	return b
}

func lower(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b - 'A' + 'a'
	}
	return b
}

// AminoAcids is the standard 20-letter amino-acid alphabet in the
// conventional BLOSUM row order (ARNDCQEGHILKMFPSTWYV).
var AminoAcids = NewAlphabet("amino", "ARNDCQEGHILKMFPSTWYV")

// DNA is the 4-letter nucleotide alphabet.
var DNA = NewAlphabet("dna", "ACGT")
