package bio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAminoAlphabetRoundTrip(t *testing.T) {
	if AminoAcids.Len() != 20 {
		t.Fatalf("amino alphabet has %d letters, want 20", AminoAcids.Len())
	}
	for i := 0; i < AminoAcids.Len(); i++ {
		b := AminoAcids.Letter(i)
		if got := AminoAcids.Index(b); got != i {
			t.Errorf("Index(Letter(%d)) = %d", i, got)
		}
	}
}

func TestAlphabetCaseInsensitive(t *testing.T) {
	if AminoAcids.Index('a') != AminoAcids.Index('A') {
		t.Error("lower-case lookup differs from upper-case")
	}
	if DNA.Index('g') != DNA.Index('G') {
		t.Error("dna lower-case lookup differs")
	}
}

func TestAlphabetRejectsNonMembers(t *testing.T) {
	for _, b := range []byte{'-', '*', ' ', 0, 'B', 'Z', 'J'} {
		if AminoAcids.Contains(b) {
			t.Errorf("amino alphabet unexpectedly contains %q", b)
		}
	}
	if DNA.Contains('N') {
		t.Error("plain DNA alphabet should not contain ambiguity code N")
	}
}

func TestNewAlphabetPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate letters")
		}
	}()
	NewAlphabet("bad", "AA")
}

func TestSequenceUngap(t *testing.T) {
	s := NewSequence("x", "AC-DE--F")
	u := s.Ungapped()
	if u.String() != "ACDEF" {
		t.Fatalf("Ungapped = %q, want ACDEF", u.String())
	}
	if s.String() != "AC-DE--F" {
		t.Fatal("Ungapped mutated the original")
	}
}

func TestSequenceValidate(t *testing.T) {
	if err := NewSequence("ok", "ACDEF-GHIK").Validate(AminoAcids); err != nil {
		t.Fatalf("valid sequence rejected: %v", err)
	}
	if err := NewSequence("bad", "ACDEF1").Validate(AminoAcids); err == nil {
		t.Fatal("invalid byte accepted")
	}
}

func TestSequenceCloneIndependent(t *testing.T) {
	s := NewSequence("x", "ACDEF")
	c := s.Clone()
	c.Data[0] = 'W'
	if s.Data[0] != 'A' {
		t.Fatal("Clone shares backing storage")
	}
}

func TestCompressedDayhoff6(t *testing.T) {
	if Dayhoff6.Len() != 6 {
		t.Fatalf("Dayhoff6 has %d classes, want 6", Dayhoff6.Len())
	}
	// Same group members agree, different groups differ.
	if Dayhoff6.Class('A') != Dayhoff6.Class('G') {
		t.Error("A and G should share a Dayhoff class")
	}
	if Dayhoff6.Class('I') != Dayhoff6.Class('V') {
		t.Error("I and V should share a Dayhoff class")
	}
	if Dayhoff6.Class('C') == Dayhoff6.Class('W') {
		t.Error("C and W should be in different Dayhoff classes")
	}
	if Dayhoff6.Class('-') != -1 {
		t.Error("gap byte must have class -1")
	}
}

func TestCompressedCoversAminoAlphabet(t *testing.T) {
	for _, c := range []*Compressed{Dayhoff6, SEB14} {
		for i := 0; i < AminoAcids.Len(); i++ {
			b := AminoAcids.Letter(i)
			cl := c.Class(b)
			if cl < 0 || cl >= c.Len() {
				t.Errorf("%s: letter %q has class %d", c.Name(), b, cl)
			}
		}
	}
}

func TestIdentityCompression(t *testing.T) {
	id := Identity(AminoAcids)
	if id.Len() != AminoAcids.Len() {
		t.Fatalf("identity compression has %d classes", id.Len())
	}
	for i := 0; i < AminoAcids.Len(); i++ {
		if id.Class(AminoAcids.Letter(i)) != i {
			t.Errorf("identity class of %q != %d", AminoAcids.Letter(i), i)
		}
	}
}

func TestPropertiesNormalized(t *testing.T) {
	var mv, mp float64
	for i := 0; i < 20; i++ {
		b := AminoAcids.Letter(i)
		mv += Volume(b)
		mp += Polarity(b)
	}
	if math.Abs(mv/20) > 1e-9 || math.Abs(mp/20) > 1e-9 {
		t.Errorf("property means not ~0: vol %g pol %g", mv/20, mp/20)
	}
	if Volume('-') != 0 || Polarity('-') != 0 {
		t.Error("gap byte should carry zero property signal")
	}
	// Tryptophan is the largest residue, glycine the smallest.
	if Volume('W') <= Volume('G') {
		t.Error("expected Volume(W) > Volume(G)")
	}
}

func TestUngapProperty(t *testing.T) {
	// Property: Ungap output never contains a gap and preserves residue order.
	f := func(data []byte) bool {
		out := Ungap(data)
		j := 0
		for _, b := range data {
			if b == Gap {
				continue
			}
			if j >= len(out) || out[j] != b {
				return false
			}
			j++
		}
		return j == len(out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanLen(t *testing.T) {
	seqs := []Sequence{NewSequence("a", "AAAA"), NewSequence("b", "AA")}
	if got := MeanLen(seqs); got != 3 {
		t.Fatalf("MeanLen = %g, want 3", got)
	}
	if MeanLen(nil) != 0 {
		t.Fatal("MeanLen(nil) != 0")
	}
}
