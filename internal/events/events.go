// Package events is a small bounded publish/subscribe bus with replay.
// The serve layer hangs one bus off every job flight and streams its
// entries to HTTP clients as Server-Sent Events.
//
// Design constraints, in order:
//
//  1. Bounded everywhere. The bus retains only the most recent
//     HistLimit entries for replay, and each subscriber owns a
//     fixed-capacity delivery buffer sized at Subscribe time.
//  2. Slow consumers never block publishers. When a subscriber's buffer
//     is full the entry is dropped for that subscriber and accounted —
//     never queued unboundedly. The SSE layer resynchronizes a gappy
//     stream from history or from the job's terminal state.
//  3. Replayable. A subscriber may attach after entries — or the whole
//     flight — have passed; Subscribe(after, n) re-delivers retained
//     history with stable sequence numbers, so reconnecting clients
//     (SSE Last-Event-ID) resume without duplicates.
package events

import "sync"

// Entry is one published value stamped with its bus-assigned sequence
// number. Sequence numbers start at 1 and are strictly increasing per
// bus.
type Entry[T any] struct {
	Seq int64
	V   T
}

// Bus is a bounded broadcast bus. The zero value is not usable; build
// one with NewBus. All methods are safe for concurrent use.
type Bus[T any] struct {
	mu      sync.Mutex
	limit   int
	hist    []Entry[T] // most recent limit entries, ascending Seq
	seq     int64
	subs    map[*Sub[T]]struct{}
	closed  bool
	dropped int64
	onDrop  func(n int64)
}

// NewBus builds a bus retaining the last histLimit entries for replay
// (minimum 1). onDrop, if non-nil, is called with the number of entries
// dropped each time a slow subscriber's buffer overflows; it runs under
// the bus lock and must not call back into the bus.
func NewBus[T any](histLimit int, onDrop func(n int64)) *Bus[T] {
	if histLimit < 1 {
		histLimit = 1
	}
	return &Bus[T]{
		limit:  histLimit,
		subs:   make(map[*Sub[T]]struct{}),
		onDrop: onDrop,
	}
}

// Publish appends v to the history and fans it out to every live
// subscriber without blocking: subscribers whose buffers are full miss
// this entry and the drop is accounted. It returns the entry's sequence
// number. Publishing on a closed bus is a no-op returning the last
// sequence number.
func (b *Bus[T]) Publish(v T) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return b.seq
	}
	b.seq++
	e := Entry[T]{Seq: b.seq, V: v}
	b.hist = append(b.hist, e)
	if len(b.hist) > b.limit {
		// Shift rather than reslice so the backing array stays bounded.
		copy(b.hist, b.hist[len(b.hist)-b.limit:])
		b.hist = b.hist[:b.limit]
	}
	for s := range b.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped++
			b.dropped++
			if b.onDrop != nil {
				b.onDrop(1)
			}
		}
	}
	return b.seq
}

// Close marks the bus finished and closes every subscriber's channel
// after its already-buffered entries. Further Publish calls are no-ops;
// further Subscribe calls still replay history and return an
// immediately-closed subscription. Closing twice is a no-op.
func (b *Bus[T]) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		close(s.ch)
	}
	b.subs = nil
}

// Closed reports whether Close has been called.
func (b *Bus[T]) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// Dropped returns the total entries dropped across all subscribers.
func (b *Bus[T]) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// LastSeq returns the sequence number of the most recent entry, zero if
// nothing has been published.
func (b *Bus[T]) LastSeq() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// History returns the retained entries with sequence numbers greater
// than after, oldest first.
func (b *Bus[T]) History(after int64) []Entry[T] {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.histLocked(after)
}

func (b *Bus[T]) histLocked(after int64) []Entry[T] {
	i := 0
	for i < len(b.hist) && b.hist[i].Seq <= after {
		i++
	}
	if i == len(b.hist) {
		return nil
	}
	return append([]Entry[T](nil), b.hist[i:]...)
}

// Subscribe attaches a subscriber that first receives the retained
// entries with sequence numbers greater than after, then live entries
// as they are published. buf sizes the live-delivery buffer (minimum
// 1); replayed history never counts against it. If the bus is already
// closed the subscription carries the replay and an already-closed
// channel. Callers must Close the subscription when done.
func (b *Bus[T]) Subscribe(after int64, buf int) *Sub[T] {
	if buf < 1 {
		buf = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	replay := b.histLocked(after)
	s := &Sub[T]{bus: b, ch: make(chan Entry[T], buf+len(replay))}
	for _, e := range replay {
		s.ch <- e
	}
	if b.closed {
		close(s.ch)
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// Sub is one subscription. Receive entries from C; a closed channel
// means the bus finished (every retained entry was delivered or
// dropped).
type Sub[T any] struct {
	bus *Bus[T]
	ch  chan Entry[T]

	// guarded by bus.mu
	dropped int64
	removed bool
}

// C returns the delivery channel.
func (s *Sub[T]) C() <-chan Entry[T] { return s.ch }

// Dropped returns how many entries this subscriber missed because its
// buffer was full.
func (s *Sub[T]) Dropped() int64 {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription from the bus. It does not close the
// delivery channel (a concurrent Publish may hold a buffered entry);
// after Close the channel simply stops receiving. Closing twice is a
// no-op.
func (s *Sub[T]) Close() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.removed {
		return
	}
	s.removed = true
	if s.bus.subs != nil {
		delete(s.bus.subs, s)
	}
}
