package events

import (
	"sync"
	"testing"
)

func drain(t *testing.T, s *Sub[int], want []Entry[int]) {
	t.Helper()
	for i, w := range want {
		got, ok := <-s.C()
		if !ok {
			t.Fatalf("channel closed after %d entries, want %d", i, len(want))
		}
		if got != w {
			t.Fatalf("entry %d = %+v, want %+v", i, got, w)
		}
	}
}

func TestPublishSubscribeOrder(t *testing.T) {
	b := NewBus[int](16, nil)
	s := b.Subscribe(0, 8)
	defer s.Close()
	for i := 1; i <= 5; i++ {
		if seq := b.Publish(i * 10); seq != int64(i) {
			t.Fatalf("Publish seq = %d, want %d", seq, i)
		}
	}
	drain(t, s, []Entry[int]{{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}})
}

func TestReplayAfter(t *testing.T) {
	b := NewBus[int](16, nil)
	for i := 1; i <= 5; i++ {
		b.Publish(i * 10)
	}
	s := b.Subscribe(3, 8) // saw up to seq 3; wants 4 and 5
	defer s.Close()
	drain(t, s, []Entry[int]{{4, 40}, {5, 50}})
	b.Publish(60)
	drain(t, s, []Entry[int]{{6, 60}})
}

func TestHistoryTrimsToLimit(t *testing.T) {
	b := NewBus[int](3, nil)
	for i := 1; i <= 10; i++ {
		b.Publish(i)
	}
	got := b.History(0)
	want := []Entry[int]{{8, 8}, {9, 9}, {10, 10}}
	if len(got) != len(want) {
		t.Fatalf("History = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("History[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if b.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", b.LastSeq())
	}
}

func TestSlowConsumerDropsAreAccounted(t *testing.T) {
	var hooked int64
	b := NewBus[int](16, func(n int64) { hooked += n })
	s := b.Subscribe(0, 2)
	defer s.Close()
	for i := 1; i <= 6; i++ {
		b.Publish(i)
	}
	// Buffer of 2: entries 3..6 were dropped for this subscriber.
	if got := s.Dropped(); got != 4 {
		t.Fatalf("Sub.Dropped = %d, want 4", got)
	}
	if got := b.Dropped(); got != 4 {
		t.Fatalf("Bus.Dropped = %d, want 4", got)
	}
	if hooked != 4 {
		t.Fatalf("onDrop total = %d, want 4", hooked)
	}
	drain(t, s, []Entry[int]{{1, 1}, {2, 2}})
	// The gap is visible to the consumer: next live entry jumps the seq.
	b.Publish(7)
	drain(t, s, []Entry[int]{{7, 7}})
}

func TestCloseDeliversBufferedThenCloses(t *testing.T) {
	b := NewBus[int](16, nil)
	s := b.Subscribe(0, 8)
	defer s.Close()
	b.Publish(1)
	b.Publish(2)
	b.Close()
	drain(t, s, []Entry[int]{{1, 1}, {2, 2}})
	if _, ok := <-s.C(); ok {
		t.Fatal("channel still open after Close and drain")
	}
	if !b.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if seq := b.Publish(3); seq != 2 {
		t.Fatalf("Publish after Close returned seq %d, want 2", seq)
	}
}

func TestSubscribeAfterCloseReplaysHistory(t *testing.T) {
	b := NewBus[int](16, nil)
	b.Publish(1)
	b.Publish(2)
	b.Close()
	s := b.Subscribe(0, 4)
	defer s.Close()
	drain(t, s, []Entry[int]{{1, 1}, {2, 2}})
	if _, ok := <-s.C(); ok {
		t.Fatal("late subscription channel not closed")
	}
}

func TestSubCloseDetaches(t *testing.T) {
	b := NewBus[int](16, nil)
	s := b.Subscribe(0, 1)
	s.Close()
	s.Close() // idempotent
	b.Publish(1)
	if got := s.Dropped(); got != 0 {
		t.Fatalf("detached subscriber accounted a drop: %d", got)
	}
	b.Close() // must not double-close the detached channel
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus[string](64, func(int64) {})
	const publishers, each = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				b.Publish("x")
			}
		}()
	}
	var cg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			s := b.Subscribe(0, 32)
			defer s.Close()
			var last int64
			for e := range s.C() {
				if e.Seq <= last {
					t.Errorf("out-of-order seq %d after %d", e.Seq, last)
					return
				}
				last = e.Seq
			}
		}()
	}
	wg.Wait()
	b.Close()
	cg.Wait()
	if got := b.LastSeq(); got != publishers*each {
		t.Fatalf("LastSeq = %d, want %d", got, publishers*each)
	}
}
