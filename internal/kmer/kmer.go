// Package kmer implements k-mer counting, the MUSCLE-style k-mer
// similarity/distance between sequences, distance matrices, and the
// Sample-Align-D k-mer rank R = log(0.1 + D) used to order sequences for
// phylogenetic sampling and redistribution.
//
// Counting runs over a compressed alphabet (bio.Dayhoff6 by default):
// grouping chemically similar residues makes short k-mers sensitive to
// distant homology (Edgar, NAR 2004). Sequences become sparse sorted
// k-mer count profiles so any pair can be compared in O(L) by merging.
package kmer

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/bio"
	"repro/internal/obs"
	"repro/internal/par"
)

// DefaultK is the k-mer length used throughout the reproduction; k=6
// over the six-class Dayhoff alphabet matches MUSCLE's protein default.
const DefaultK = 6

// Counter turns sequences into k-mer count profiles over a compressed
// alphabet.
type Counter struct {
	comp *bio.Compressed
	k    int
}

// NewCounter returns a Counter for k-mers of length k over the compressed
// alphabet comp. It fails if k is out of range or the code space
// comp.Len()^k overflows the 32-bit k-mer codes.
func NewCounter(comp *bio.Compressed, k int) (*Counter, error) {
	if k < 1 {
		return nil, fmt.Errorf("kmer: k = %d, want >= 1", k)
	}
	code := 1.0
	for i := 0; i < k; i++ {
		code *= float64(comp.Len())
		if code > float64(1<<31) {
			return nil, fmt.Errorf("kmer: %d^%d k-mer codes overflow uint32", comp.Len(), k)
		}
	}
	return &Counter{comp: comp, k: k}, nil
}

// MustCounter is NewCounter that panics on error, for package constants.
func MustCounter(comp *bio.Compressed, k int) *Counter {
	c, err := NewCounter(comp, k)
	if err != nil {
		panic(err)
	}
	return c
}

// K returns the k-mer length.
func (c *Counter) K() int { return c.k }

// Alphabet returns the compressed alphabet in use.
func (c *Counter) Alphabet() *bio.Compressed { return c.comp }

// Entry is one k-mer code with its occurrence count.
type Entry struct {
	Code  uint32
	Count int32
}

// Profile is a sparse k-mer count profile: entries sorted by code, plus
// the window count used as the similarity denominator.
type Profile struct {
	Entries []Entry
	Windows int // number of valid k-mer windows (≈ len-k+1)
	SeqLen  int // ungapped sequence length
}

// Profile counts the k-mers of data (gap bytes and residues outside the
// compressed alphabet break windows, matching how MUSCLE skips X runs).
func (c *Counter) Profile(data []byte) Profile {
	k := c.k
	size := uint32(c.comp.Len())
	codes := make([]uint32, 0, max(0, len(data)-k+1))
	hi := uint32(1) // size^(k-1): modulus that keeps the last k-1 classes
	for i := 1; i < k; i++ {
		hi *= size
	}
	var (
		code uint32
		run  int // valid residues seen since the last window break
		nres int
	)
	for _, b := range data {
		if b == bio.Gap {
			continue
		}
		nres++
		cl := c.comp.Class(b)
		if cl < 0 {
			run, code = 0, 0
			continue
		}
		code = (code%hi)*size + uint32(cl)
		run++
		if run >= k {
			codes = append(codes, code)
		}
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	entries := make([]Entry, 0, len(codes))
	for i := 0; i < len(codes); {
		j := i
		for j < len(codes) && codes[j] == codes[i] {
			j++
		}
		entries = append(entries, Entry{Code: codes[i], Count: int32(j - i)})
		i = j
	}
	return Profile{Entries: entries, Windows: len(codes), SeqLen: nres}
}

// Profiles computes the profiles of all sequences, in parallel.
func (c *Counter) Profiles(seqs []bio.Sequence, workers int) []Profile {
	return par.Map(len(seqs), workers, func(i int) Profile {
		return c.Profile(seqs[i].Data)
	})
}

// Common returns Σ_τ min(n_a(τ), n_b(τ)), the shared k-mer count, by
// merging the two sorted profiles.
func Common(a, b Profile) int {
	var sum int
	i, j := 0, 0
	for i < len(a.Entries) && j < len(b.Entries) {
		ea, eb := a.Entries[i], b.Entries[j]
		switch {
		case ea.Code < eb.Code:
			i++
		case ea.Code > eb.Code:
			j++
		default:
			if ea.Count < eb.Count {
				sum += int(ea.Count)
			} else {
				sum += int(eb.Count)
			}
			i++
			j++
		}
	}
	return sum
}

// Similarity is the paper's r(x_i,x_j): shared k-mers normalised by the
// window count of the shorter sequence. It lies in [0,1]; identical
// sequences score 1.
func Similarity(a, b Profile) float64 {
	den := a.Windows
	if b.Windows < den {
		den = b.Windows
	}
	if den <= 0 {
		return 0
	}
	s := float64(Common(a, b)) / float64(den)
	if s > 1 {
		s = 1
	}
	return s
}

// Distance is 1 − Similarity: 0 for k-mer-identical sequences, 1 for
// sequences sharing no k-mers.
func Distance(a, b Profile) float64 { return 1 - Similarity(a, b) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Matrix is a symmetric distance matrix stored in condensed upper-
// triangular form.
type Matrix struct {
	N int
	d []float64 // N*(N-1)/2 entries, row-major upper triangle
}

// NewMatrix allocates an N×N zero distance matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, d: make([]float64, n*(n-1)/2)}
}

func (m *Matrix) idx(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// offset of row i plus column distance
	return i*(2*m.N-i-1)/2 + (j - i - 1)
}

// At returns the distance between items i and j (0 when i == j).
func (m *Matrix) At(i, j int) float64 {
	if i == j {
		return 0
	}
	return m.d[m.idx(i, j)]
}

// Set stores the distance between distinct items i and j.
func (m *Matrix) Set(i, j int, v float64) {
	if i == j {
		return
	}
	m.d[m.idx(i, j)] = v
}

// DefaultTileSize is the edge length of the blocks the distance-matrix
// pair space is tiled into. A 128×128 tile touches 256 profiles' worth
// of entries — small enough to stay cache-resident while a worker
// sweeps the tile, large enough that tile dispatch overhead vanishes
// against the O(tile²) merge work inside.
const DefaultTileSize = 128

// DistanceMatrix computes all pairwise k-mer distances between the
// profiles, in parallel across cache-sized tiles of the upper-
// triangular pair space (see DistanceMatrixTiled).
func DistanceMatrix(profiles []Profile, workers int) *Matrix {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	m, _ := DistanceMatrixTiled(context.Background(), profiles, workers, 0)
	return m
}

// DistanceMatrixContext is DistanceMatrix bound to a context: this
// O(N²) pass dominates guide-tree construction on large inputs, so it
// stops dispatching tiles on cancellation.
func DistanceMatrixContext(ctx context.Context, profiles []Profile, workers int) (*Matrix, error) {
	ctx, sp := obs.Start(ctx, "distmatrix")
	defer sp.End()
	sp.SetStr("method", "kmer")
	sp.SetInt("n", int64(len(profiles)))
	sp.SetInt("workers", int64(workers))
	return DistanceMatrixTiled(ctx, profiles, workers, 0)
}

// DistanceMatrixTiled computes all pairwise k-mer distances with the
// upper triangle split into tile×tile blocks handed to workers
// dynamically (par.ForDynamicCtx). The one k-mer counting pass over
// the sequences is shared by every tile — profiles arrive precomputed
// — and within a tile each row profile is merged against the tile's
// whole column range while it is cache-hot, instead of fanning out per
// row. Every pair is written by exactly one tile with the same
// floating-point operations as the sequential loop, so the result is
// bit-identical for every workers value and every tile size. tile <= 0
// selects DefaultTileSize.
func DistanceMatrixTiled(ctx context.Context, profiles []Profile, workers int, tile int) (*Matrix, error) {
	n := len(profiles)
	m := NewMatrix(n)
	if n < 2 {
		return m, ctx.Err()
	}
	tiles := PairTiles(n, workers, tile)
	err := par.ForDynamicCtx(ctx, len(tiles), workers, func(t int) {
		tl := tiles[t]
		for i := tl.RLo; i < tl.RHi; i++ {
			pi := profiles[i]
			jlo := tl.CLo
			if jlo <= i {
				jlo = i + 1 // diagonal tile: stay above the diagonal
			}
			for j := jlo; j < tl.CHi; j++ {
				m.Set(i, j, Distance(pi, profiles[j]))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Tile is one block of the strict upper-triangular pair space: rows
// [RLo, RHi) against columns [CLo, CHi). Tiles on the diagonal include
// sub-diagonal cells in their ranges; iterate with jlo = max(CLo, i+1)
// to visit each unordered pair exactly once.
type Tile struct {
	RLo, RHi, CLo, CHi int
}

// PairTiles enumerates cache-sized tiles covering all unordered pairs
// of n items, in the fixed (row-block, column-block) order the tiled
// distance matrix dispatches them. tile <= 0 selects DefaultTileSize,
// shrunk until the dynamic scheduler has around four tiles per worker —
// at n <= DefaultTileSize a single tile would serialize the whole
// triangle, losing to a per-row fan-out. The floor keeps per-tile work
// above dispatch cost; explicit tile sizes are honoured as given.
// Shared by the k-mer distance matrix and the %-identity (CLUSTALW)
// distance pass in internal/msa, so both walk the identical schedule.
func PairTiles(n, workers, tile int) []Tile {
	if tile <= 0 {
		tile = DefaultTileSize
		w := workers
		if w <= 0 {
			w = par.DefaultWorkers()
		}
		for w > 1 && tile > 16 {
			nb := (n + tile - 1) / tile
			if nb*(nb+1)/2 >= 4*w {
				break
			}
			tile /= 2
		}
	}
	if tile > n {
		tile = n
	}
	if tile < 1 {
		tile = 1
	}
	nb := (n + tile - 1) / tile
	tiles := make([]Tile, 0, nb*(nb+1)/2)
	for rb := 0; rb < nb; rb++ {
		for cb := rb; cb < nb; cb++ {
			t := Tile{RLo: rb * tile, RHi: rb*tile + tile, CLo: cb * tile, CHi: cb*tile + tile}
			if t.RHi > n {
				t.RHi = n
			}
			if t.CHi > n {
				t.CHi = n
			}
			tiles = append(tiles, t)
		}
	}
	return tiles
}

// DefaultRankScale calibrates ranks to the paper's reported numeric range.
// Table 1 of the paper reports ranks in [0, 1.46] with R = log(0.1 + D);
// that range implies the authors' D accumulated to ≈4× the normalised
// k-mer distance fraction, so the default scale is 4.
const DefaultRankScale = 4.0

// Rank maps an average k-mer distance D to the Sample-Align-D rank
// R = ln(0.1 + scale·D). Monotone in D, so ordering by rank equals
// ordering by average distance.
func Rank(d, scale float64) float64 { return math.Log(0.1 + scale*d) }

// AvgDistances returns, for every target profile, its mean k-mer distance
// to the reference set (the paper's D_i). A target that also appears in
// the reference contributes its self-distance of 0, exactly as the
// paper's centralised definition does.
func AvgDistances(targets, reference []Profile, workers int) []float64 {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	out, _ := AvgDistancesContext(context.Background(), targets, reference, workers)
	return out
}

// AvgDistancesContext is AvgDistances bound to a context: this O(N·R)
// pass dominates the redistribution phases on large inputs, so it stops
// dispatching rows on cancellation.
func AvgDistancesContext(ctx context.Context, targets, reference []Profile, workers int) ([]float64, error) {
	if len(reference) == 0 {
		return make([]float64, len(targets)), ctx.Err()
	}
	return par.MapCtx(ctx, len(targets), workers, func(i int) float64 {
		var sum float64
		for j := range reference {
			sum += Distance(targets[i], reference[j])
		}
		return sum / float64(len(reference))
	})
}

// Ranks computes the k-mer rank of every target against the reference
// set: centralised ranks when reference is the full data set, globalised
// ranks when it is the k·p sample.
func Ranks(targets, reference []Profile, scale float64, workers int) []float64 {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	out, _ := RanksContext(context.Background(), targets, reference, scale, workers)
	return out
}

// RanksContext is Ranks bound to a context (see AvgDistancesContext).
func RanksContext(ctx context.Context, targets, reference []Profile, scale float64, workers int) ([]float64, error) {
	ds, err := AvgDistancesContext(ctx, targets, reference, workers)
	if err != nil {
		return nil, err
	}
	for i, d := range ds {
		ds[i] = Rank(d, scale)
	}
	return ds, nil
}
