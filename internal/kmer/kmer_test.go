package kmer

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bio"
)

var testCounter = MustCounter(bio.Dayhoff6, 3)

func TestProfileWindowCount(t *testing.T) {
	p := testCounter.Profile([]byte("ACDEFGHIKL")) // length 10, k=3 → 8 windows
	if p.Windows != 8 {
		t.Fatalf("Windows = %d, want 8", p.Windows)
	}
	if p.SeqLen != 10 {
		t.Fatalf("SeqLen = %d, want 10", p.SeqLen)
	}
	var total int32
	for _, e := range p.Entries {
		total += e.Count
	}
	if int(total) != p.Windows {
		t.Fatalf("entry counts sum to %d, want %d", total, p.Windows)
	}
}

func TestProfileShortSequence(t *testing.T) {
	p := testCounter.Profile([]byte("AC")) // shorter than k
	if p.Windows != 0 || len(p.Entries) != 0 {
		t.Fatalf("short sequence produced %d windows", p.Windows)
	}
}

func TestProfileSkipsGaps(t *testing.T) {
	a := testCounter.Profile([]byte("ACDEF"))
	b := testCounter.Profile([]byte("A-C--DE-F"))
	if Similarity(a, b) != 1 {
		t.Fatalf("gapped and ungapped copies differ: sim = %g", Similarity(a, b))
	}
}

func TestProfileSortedEntries(t *testing.T) {
	p := testCounter.Profile([]byte("MKVLAAGGTWYHHKDEDEDEMKVLAAGG"))
	for i := 1; i < len(p.Entries); i++ {
		if p.Entries[i-1].Code >= p.Entries[i].Code {
			t.Fatalf("entries not strictly sorted at %d", i)
		}
	}
}

func TestSimilaritySelfIsOne(t *testing.T) {
	p := testCounter.Profile([]byte("MKVLAAGGTWYHHKDE"))
	if s := Similarity(p, p); s != 1 {
		t.Fatalf("self similarity = %g", s)
	}
	if d := Distance(p, p); d != 0 {
		t.Fatalf("self distance = %g", d)
	}
}

func TestSimilarityDisjoint(t *testing.T) {
	// W and C are alone in their Dayhoff classes, so these share no k-mers.
	a := testCounter.Profile([]byte("WWWWWWWW"))
	b := testCounter.Profile([]byte("CCCCCCCC"))
	if s := Similarity(a, b); s != 0 {
		t.Fatalf("disjoint similarity = %g", s)
	}
}

func TestSimilarityCompressedClasses(t *testing.T) {
	// I, L, M, V share a Dayhoff class, so ILMV-equivalent strings match.
	a := testCounter.Profile([]byte("IIIIIIII"))
	b := testCounter.Profile([]byte("LMVLMVLM"))
	if s := Similarity(a, b); s != 1 {
		t.Fatalf("same-class similarity = %g, want 1", s)
	}
}

func randomSeq(rng *rand.Rand, n int) []byte {
	letters := bio.AminoAcids.Letters()
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(len(letters))]
	}
	return out
}

func TestSimilarityPropertyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seedA, seedB uint16) bool {
		a := testCounter.Profile(randomSeq(rng, 5+int(seedA)%200))
		b := testCounter.Profile(randomSeq(rng, 5+int(seedB)%200))
		s, s2 := Similarity(a, b), Similarity(b, a)
		return s >= 0 && s <= 1 && math.Abs(s-s2) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCommonAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	count := func(data []byte) map[uint32]int {
		m := map[uint32]int{}
		for i := 0; i+3 <= len(data); i++ {
			code := uint32(0)
			for j := i; j < i+3; j++ {
				code = code*uint32(bio.Dayhoff6.Len()) + uint32(bio.Dayhoff6.Class(data[j]))
			}
			m[code]++
		}
		return m
	}
	for trial := 0; trial < 50; trial++ {
		sa := randomSeq(rng, 10+rng.Intn(100))
		sb := randomSeq(rng, 10+rng.Intn(100))
		want := 0
		ca, cb := count(sa), count(sb)
		for code, na := range ca {
			if nb := cb[code]; nb < na {
				want += nb
			} else {
				want += na
			}
		}
		got := Common(testCounter.Profile(sa), testCounter.Profile(sb))
		if got != want {
			t.Fatalf("trial %d: Common = %d, brute force = %d", trial, got, want)
		}
	}
}

func TestMatrixIndexing(t *testing.T) {
	m := NewMatrix(5)
	v := 1.0
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			m.Set(i, j, v)
			v++
		}
	}
	v = 1.0
	for i := 0; i < 5; i++ {
		if m.At(i, i) != 0 {
			t.Fatalf("diagonal not zero at %d", i)
		}
		for j := i + 1; j < 5; j++ {
			if m.At(i, j) != v || m.At(j, i) != v {
				t.Fatalf("At(%d,%d) = %g want %g", i, j, m.At(i, j), v)
			}
			v++
		}
	}
}

func TestDistanceMatrixParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	profiles := make([]Profile, 40)
	for i := range profiles {
		profiles[i] = testCounter.Profile(randomSeq(rng, 50+rng.Intn(100)))
	}
	serial := DistanceMatrix(profiles, 1)
	parallel := DistanceMatrix(profiles, 8)
	for i := 0; i < len(profiles); i++ {
		for j := 0; j < len(profiles); j++ {
			if serial.At(i, j) != parallel.At(i, j) {
				t.Fatalf("parallel mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// rowMatrix is the pre-tiling reference: one row per dispatch, exactly
// the sequential pair loop.
func rowMatrix(profiles []Profile) *Matrix {
	n := len(profiles)
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, Distance(profiles[i], profiles[j]))
		}
	}
	return m
}

// TestDistanceMatrixTiledMatchesRows pins the tiling invariant: for any
// tile size — degenerate 1×1 tiles, a size that doesn't divide N, a
// cache-sized block, one tile covering everything — and any worker
// count, the tiled kernel is bit-identical to the row-by-row loop.
func TestDistanceMatrixTiledMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 70
	profiles := make([]Profile, n)
	for i := range profiles {
		profiles[i] = testCounter.Profile(randomSeq(rng, 40+rng.Intn(120)))
	}
	want := rowMatrix(profiles)
	for _, tile := range []int{1, 7, 64, n} {
		for _, workers := range []int{1, 4, 8} {
			got, err := DistanceMatrixTiled(context.Background(), profiles, workers, tile)
			if err != nil {
				t.Fatalf("tile=%d workers=%d: %v", tile, workers, err)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if got.At(i, j) != want.At(i, j) {
						t.Fatalf("tile=%d workers=%d: mismatch at (%d,%d): %g != %g",
							tile, workers, i, j, got.At(i, j), want.At(i, j))
					}
				}
			}
		}
	}
}

func TestDistanceMatrixTiledCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	profiles := make([]Profile, 300)
	for i := range profiles {
		profiles[i] = testCounter.Profile(randomSeq(rng, 60))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DistanceMatrixTiled(ctx, profiles, 4, 16); err == nil {
		t.Fatal("cancelled tiled matrix returned nil error")
	}
}

func TestRankMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for d := 0.0; d <= 1.0; d += 0.01 {
		r := Rank(d, DefaultRankScale)
		if r <= prev {
			t.Fatalf("rank not strictly increasing at d=%g", d)
		}
		prev = r
	}
}

func TestRankPaperRange(t *testing.T) {
	// With the default scale, ranks of distances in [0.22, 1] land inside
	// the paper's reported [0, 1.47] band (Table 1).
	if r := Rank(1, DefaultRankScale); r < 1.3 || r > 1.5 {
		t.Errorf("Rank(1) = %g, outside the paper's max band", r)
	}
	if r := Rank(0.225, DefaultRankScale); math.Abs(r) > 0.01 {
		t.Errorf("Rank(0.225) = %g, want ≈ 0", r)
	}
}

func TestRanksCentralizedSelfIncluded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	profiles := make([]Profile, 10)
	for i := range profiles {
		profiles[i] = testCounter.Profile(randomSeq(rng, 80))
	}
	ranks := Ranks(profiles, profiles, DefaultRankScale, 2)
	if len(ranks) != 10 {
		t.Fatalf("got %d ranks", len(ranks))
	}
	// identical reference must give identical ranks for identical targets
	r2 := Ranks(profiles, profiles, DefaultRankScale, 1)
	for i := range ranks {
		if ranks[i] != r2[i] {
			t.Fatalf("parallel rank mismatch at %d", i)
		}
	}
}

func TestAvgDistancesEmptyReference(t *testing.T) {
	p := []Profile{testCounter.Profile([]byte("ACDEFGH"))}
	ds := AvgDistances(p, nil, 1)
	if len(ds) != 1 || ds[0] != 0 {
		t.Fatalf("empty reference: %v", ds)
	}
}

func TestNewCounterValidation(t *testing.T) {
	if _, err := NewCounter(bio.Dayhoff6, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewCounter(bio.Identity(bio.AminoAcids), 9); err == nil {
		t.Error("20^9 code space accepted")
	}
	if _, err := NewCounter(bio.Dayhoff6, 6); err != nil {
		t.Errorf("6^6 rejected: %v", err)
	}
}

func TestProfileInvalidBytesBreakWindows(t *testing.T) {
	// 'X' has no Dayhoff class: windows must not span it.
	withX := testCounter.Profile([]byte("ACDXEFG"))
	// Only ACD and EFG contribute one window each.
	if withX.Windows != 2 {
		t.Fatalf("Windows = %d, want 2", withX.Windows)
	}
}

func TestPairTilesCoverEveryPairOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 15, 16, 17, 100, 257} {
		for _, workers := range []int{1, 2, 7, 16} {
			for _, tile := range []int{-1, 0, 1, 5, 16, 64, n + 3} {
				seen := make(map[[2]int]int)
				for _, tl := range PairTiles(n, workers, tile) {
					if tl.RLo < 0 || tl.RHi > n || tl.CLo < 0 || tl.CHi > n ||
						tl.RLo >= tl.RHi || tl.CLo >= tl.CHi {
						t.Fatalf("n=%d workers=%d tile=%d: bad tile %+v", n, workers, tile, tl)
					}
					for i := tl.RLo; i < tl.RHi; i++ {
						jlo := tl.CLo
						if jlo <= i {
							jlo = i + 1
						}
						for j := jlo; j < tl.CHi; j++ {
							seen[[2]int{i, j}]++
						}
					}
				}
				want := n * (n - 1) / 2
				if len(seen) != want {
					t.Fatalf("n=%d workers=%d tile=%d: %d pairs covered, want %d",
						n, workers, tile, len(seen), want)
				}
				for p, c := range seen {
					if c != 1 {
						t.Fatalf("n=%d workers=%d tile=%d: pair %v covered %d times",
							n, workers, tile, p, c)
					}
				}
			}
		}
	}
}
