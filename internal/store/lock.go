package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// LockDir takes an exclusive advisory flock on dir/.lock so two server
// processes cannot share a data directory (double-appending the
// journal would corrupt it). The lock dies with the process, so a
// crashed owner never wedges the directory. Release the returned
// closer on clean shutdown.
func LockDir(dir string) (release func(), err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: data dir %s is locked by another process: %w", dir, err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}, nil
}
