package store

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// BenchmarkJournalAppendParallel measures durable append throughput and
// how well group commit amortizes fsyncs: fsyncs/rec is the number of
// write+fsync cycles divided by records appended (1.0 means no
// batching; the gate in cmd/benchgate requires < 1 at conc=8). The
// journal runs with production-default options — no MaxWait — so any
// batching shown here comes purely from appenders piling up behind
// in-flight flushes.
func BenchmarkJournalAppendParallel(b *testing.B) {
	for _, conc := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("conc=%d", conc), func(b *testing.B) {
			j, _, err := OpenJournal(filepath.Join(b.TempDir(), "journal.wal"))
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			rec := testRecord(RecSubmit, "bench-job", 1)
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < conc; g++ {
				n := b.N / conc
				if g < b.N%conc {
					n++
				}
				if n == 0 {
					continue
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if err := j.Append(rec); err != nil {
							b.Error(err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
			b.StopTimer()
			if recs := j.FlushedRecords(); recs > 0 {
				b.ReportMetric(float64(j.Flushes())/float64(recs), "fsyncs/rec")
				b.ReportMetric(float64(recs)/b.Elapsed().Seconds(), "rec/s")
			}
		})
	}
}
