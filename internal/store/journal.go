// Package store is the durability layer under the alignment job
// service: a write-ahead submit journal and a content-addressed
// on-disk result store.
//
// The journal is an append-only file of length-prefixed, CRC-checked
// records, fsync'd per append. Opening it replays every intact record
// and truncates a torn or corrupt tail (the expected shape of a crash
// mid-write), so the service can reconstruct its job table and
// re-enqueue journaled-but-unfinished work. Rewrite compacts the file
// atomically (temp file + rename) once the replayed state has been
// folded into fresh records.
//
// The result store keeps one file per content address (the service's
// SHA-256 cache key), written atomically and checksummed, bounded by
// entry count and total payload bytes with deterministic LRU eviction.
// Results can be read whole (fully verified) or streamed (verified
// incrementally, so serving a huge alignment never buffers it).
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Record kinds written by the job service. The store treats them as
// opaque; replay-time semantics live in the service.
const (
	RecSubmit   = "submit"
	RecStart    = "start"
	RecFinish   = "finish"
	RecCancel   = "cancel"
	RecShutdown = "shutdown"
	// RecInterrupt marks a job hard-canceled by the shutdown path
	// itself (drain window expired with the job still queued/running).
	// Unlike RecCancel it is not terminal at replay: the next boot
	// re-enqueues the job exactly like a crash victim.
	RecInterrupt = "interrupt"
)

// Record is one journal entry: a typed envelope with a service-defined
// payload. Job and Key are first-class so replay can correlate records
// without decoding Data.
type Record struct {
	Type string          `json:"t"`
	Job  string          `json:"job,omitempty"`
	Key  string          `json:"key,omitempty"`
	Time time.Time       `json:"time"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Castagnoli, like every other CRC in the ecosystem that cares about
// hardware support.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxRecordBytes rejects absurd length prefixes during replay; a frame
// this large is corruption, not data (submit payloads are bounded by
// the HTTP request cap far below this).
const maxRecordBytes = 1 << 30

// Journal is the append-only write-ahead log. All methods are
// goroutine-safe.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	records int64
	bytes   int64
}

// OpenJournal opens (creating if needed) the journal at path, replays
// every intact record, truncates any corrupt or torn tail so that
// subsequent appends extend a clean prefix, and leaves the file open
// for appending.
func OpenJournal(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, goodOff, err := replay(f)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > goodOff {
		// Torn tail: drop it so the next append starts at a record
		// boundary instead of extending garbage.
		if err := f.Truncate(goodOff); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("store: truncating corrupt journal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("store: syncing truncated journal: %w", err)
		}
	}
	if _, err := f.Seek(goodOff, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	return &Journal{f: f, path: path, records: int64(len(recs)), bytes: goodOff}, recs, nil
}

// replay scans framed records from the start of f, returning every
// intact record and the offset just past the last one. Any framing or
// checksum violation ends the scan silently — a crash can tear at any
// byte, so a bad tail is normal, not an error.
func replay(f *os.File) ([]Record, int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := fi.Size()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var (
		recs []Record
		off  int64
		hdr  [8]byte
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return recs, off, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordBytes ||
			int64(length) > size-off-int64(len(hdr)) {
			// Insane or past-EOF length prefix: corruption — don't
			// even allocate for it.
			return recs, off, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, off, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, off, nil // flipped bits: stop at the last good record
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += int64(len(hdr)) + int64(length)
	}
}

// frame encodes one record as [len][crc][payload].
func frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)
	return buf, nil
}

// Append writes one record and fsyncs: when Append returns nil the
// record survives a crash.
func (j *Journal) Append(rec Record) error {
	buf, err := frame(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("store: journal is closed")
	}
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.records++
	j.bytes += int64(len(buf))
	return nil
}

// Rewrite atomically replaces the journal's contents with recs
// (compaction): the new image is written to a temp file in the same
// directory, fsync'd, and renamed over the live journal, so a crash at
// any point leaves either the old or the new journal, never a mix.
func (j *Journal) Rewrite(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("store: journal is closed")
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return err
	}
	fail := func(err error) error {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	var total int64
	for _, rec := range recs {
		buf, err := frame(rec)
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(buf); err != nil {
			return fail(err)
		}
		total += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	tmp.Chmod(0o644) // CreateTemp defaults to 0600
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fail(err)
	}
	syncDir(dir)
	// The rename moved tmp's inode to the journal path, so the open tmp
	// handle IS the new journal — keep writing through it rather than
	// reopening (a failed reopen would leave appends going to the
	// replaced, unlinked inode while reporting durable success).
	_ = j.f.Close()
	j.f = tmp
	j.records = int64(len(recs))
	j.bytes = total
	return nil
}

// Records returns the number of records in the journal (replayed plus
// appended since open).
func (j *Journal) Records() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Bytes returns the journal's size in bytes.
func (j *Journal) Bytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bytes
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file. Appends after Close fail; they do not
// panic, so a crashing server can be abandoned mid-operation.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// syncDir fsyncs a directory so a rename within it is durable;
// best-effort because some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
