// Package store is the durability layer under the alignment job
// service: a write-ahead submit journal and a content-addressed
// on-disk result store.
//
// The journal is an append-only file of length-prefixed, CRC-checked
// records, made durable by group commit: concurrent appenders enqueue
// frames into a shared flush group and the first member (the leader)
// writes and fsyncs the whole group at once, so fsyncs-per-record
// drops below one under concurrency while Append keeps its contract —
// it returns nil only after its record's group is on disk. Opening
// the journal replays every intact record and truncates a torn or
// corrupt tail (the expected shape of a crash mid-write), so the
// service can reconstruct its job table and re-enqueue
// journaled-but-unfinished work. Rewrite compacts the file atomically
// (temp file + rename) once the replayed state has been folded into
// fresh records.
//
// The result store keeps one file per content address (the service's
// SHA-256 cache key), written atomically and checksummed, bounded by
// entry count and total payload bytes with deterministic LRU eviction.
// Results can be read whole (fully verified) or streamed (verified
// incrementally, so serving a huge alignment never buffers it).
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Record kinds written by the job service. The store treats them as
// opaque; replay-time semantics live in the service.
const (
	RecSubmit   = "submit"
	RecStart    = "start"
	RecFinish   = "finish"
	RecCancel   = "cancel"
	RecShutdown = "shutdown"
	// RecInterrupt marks a job hard-canceled by the shutdown path
	// itself (drain window expired with the job still queued/running).
	// Unlike RecCancel it is not terminal at replay: the next boot
	// re-enqueues the job exactly like a crash victim.
	RecInterrupt = "interrupt"
)

// Record is one journal entry: a typed envelope with a service-defined
// payload. Job and Key are first-class so replay can correlate records
// without decoding Data.
type Record struct {
	Type string          `json:"t"`
	Job  string          `json:"job,omitempty"`
	Key  string          `json:"key,omitempty"`
	Time time.Time       `json:"time"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Castagnoli, like every other CRC in the ecosystem that cares about
// hardware support.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxRecordBytes rejects absurd length prefixes during replay; a frame
// this large is corruption, not data (submit payloads are bounded by
// the HTTP request cap far below this). Append enforces the same limit
// on the way in — a record replay would refuse to read must never be
// reported durable.
const maxRecordBytes = 1 << 30

// Group-commit defaults: a group stops accepting joiners once it holds
// this many framed bytes or records. Both are far above what a flush
// can accumulate on a healthy disk; they bound memory, not batching.
const (
	DefaultMaxBatchBytes   = 1 << 20
	DefaultMaxBatchRecords = 512
)

// ErrRecordTooLarge is wrapped by Append/AppendBatch when a record's
// encoded payload exceeds the journal's record size limit. Nothing is
// written: an oversized frame would be acknowledged as durable and
// then silently discarded — along with every record after it — by the
// next replay.
var ErrRecordTooLarge = errors.New("store: record exceeds the journal record size limit")

var errJournalClosed = errors.New("store: journal is closed")

// JournalOptions tunes the journal's group-commit behavior. The zero
// value is valid: no artificial wait, limits at their defaults.
type JournalOptions struct {
	// MaxBatchBytes caps the framed bytes one flush group accumulates
	// before later appenders spill to the next group. <= 0 means
	// DefaultMaxBatchBytes. A single AppendBatch call is atomic and may
	// exceed the cap in a group of its own.
	MaxBatchBytes int
	// MaxBatchRecords caps the records per flush group. <= 0 means
	// DefaultMaxBatchRecords.
	MaxBatchRecords int
	// MaxWait is how long a group leader waits for followers before
	// flushing a group that is not yet full; it bounds the extra
	// latency an isolated Append pays. 0 flushes immediately — groups
	// still form naturally while a flush is in flight, because
	// appenders arriving during it pile into the next group.
	MaxWait time.Duration
	// MaxRecordBytes rejects any single record whose encoded payload
	// exceeds it. <= 0 means the replay limit (1 GiB); larger values
	// are clamped to the replay limit, which replay would enforce by
	// discarding the record anyway.
	MaxRecordBytes int
	// OnFlush, if set, is called after each durable flush with the
	// records and framed bytes in the flushed group. Called without
	// journal locks held; it must not call back into the journal.
	OnFlush func(records, bytes int64)
}

// jgroup is one commit group: concatenated frames from every appender
// that joined it, written and fsync'd as a unit by its leader.
type jgroup struct {
	buf    []byte
	recs   int64
	full   chan struct{} // closed when the group stops accepting joiners
	sealed bool
	done   chan struct{} // closed after the flush; err is valid then
	err    error
}

// Journal is the append-only write-ahead log. All methods are
// goroutine-safe.
type Journal struct {
	mu      sync.Mutex
	cond    *sync.Cond // signals: group detached, flush finished, file closed
	f       *os.File
	path    string
	records int64 // durable records (replayed + flushed)
	bytes   int64 // durable bytes; equals the file size while the tail is clean

	maxBatchBytes   int
	maxBatchRecords int64
	maxWait         time.Duration
	maxRecordBytes  int
	onFlush         func(records, bytes int64)

	cur      *jgroup // open group accepting joiners, nil if none
	flushing bool    // a leader owns the file tail
	failed   error   // sticky: a failed flush left the tail untrustworthy

	flushes        int64 // write+fsync cycles since open
	flushedRecords int64 // records made durable by those flushes
}

// OpenJournal opens the journal at path with default options. See
// OpenJournalOptions.
func OpenJournal(path string) (*Journal, []Record, error) {
	return OpenJournalOptions(path, JournalOptions{})
}

// OpenJournalOptions opens (creating if needed) the journal at path,
// replays every intact record, truncates any corrupt or torn tail so
// that subsequent appends extend a clean prefix, and leaves the file
// open for appending. Creating the journal fsyncs its parent
// directory: without that, a crash shortly after boot could drop the
// directory entry — and with it every record already acknowledged as
// durable.
func OpenJournalOptions(path string, o JournalOptions) (*Journal, []Record, error) {
	_, statErr := os.Stat(path)
	created := errors.Is(statErr, os.ErrNotExist)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if created {
		syncDir(filepath.Dir(path))
	}
	recs, goodOff, err := replay(f)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > goodOff {
		// Torn tail: drop it so the next append starts at a record
		// boundary instead of extending garbage.
		if err := f.Truncate(goodOff); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("store: truncating corrupt journal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("store: syncing truncated journal: %w", err)
		}
	}
	if _, err := f.Seek(goodOff, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	j := &Journal{
		f:               f,
		path:            path,
		records:         int64(len(recs)),
		bytes:           goodOff,
		maxBatchBytes:   o.MaxBatchBytes,
		maxBatchRecords: int64(o.MaxBatchRecords),
		maxWait:         o.MaxWait,
		maxRecordBytes:  o.MaxRecordBytes,
		onFlush:         o.OnFlush,
	}
	if j.maxBatchBytes <= 0 {
		j.maxBatchBytes = DefaultMaxBatchBytes
	}
	if j.maxBatchRecords <= 0 {
		j.maxBatchRecords = DefaultMaxBatchRecords
	}
	if j.maxRecordBytes <= 0 || j.maxRecordBytes > maxRecordBytes {
		j.maxRecordBytes = maxRecordBytes
	}
	j.cond = sync.NewCond(&j.mu)
	return j, recs, nil
}

// replay scans framed records from the start of f, returning every
// intact record and the offset just past the last one. Any framing or
// checksum violation ends the scan silently — a crash can tear at any
// byte, so a bad tail is normal, not an error.
func replay(f *os.File) ([]Record, int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := fi.Size()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var (
		recs []Record
		off  int64
		hdr  [8]byte
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return recs, off, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordBytes ||
			int64(length) > size-off-int64(len(hdr)) {
			// Insane or past-EOF length prefix: corruption — don't
			// even allocate for it.
			return recs, off, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, off, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, off, nil // flipped bits: stop at the last good record
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += int64(len(hdr)) + int64(length)
	}
}

// frame encodes one record as [len][crc][payload], rejecting payloads
// over limit.
func frame(rec Record, limit int) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > limit {
		return nil, fmt.Errorf("%w: %d > %d payload bytes", ErrRecordTooLarge, len(payload), limit)
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)
	return buf, nil
}

// Append writes one record durably: when Append returns nil the record
// survives a crash. Under concurrency the record shares its fsync with
// whatever commit group it lands in; alone, it pays at most MaxWait of
// added latency (none with the default options).
func (j *Journal) Append(rec Record) error {
	buf, err := frame(rec, j.maxRecordBytes)
	if err != nil {
		return err
	}
	return j.commit(buf, 1)
}

// AppendBatch writes recs as one atomic unit of a commit group: all of
// them are covered by the same fsync, and either every record is
// enqueued or none is (an oversized member rejects the whole batch
// before any bytes are staged). A nil return means every record in the
// batch is durable.
func (j *Journal) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, rec := range recs {
		b, err := frame(rec, j.maxRecordBytes)
		if err != nil {
			return err
		}
		buf = append(buf, b...)
	}
	return j.commit(buf, int64(len(recs)))
}

// commit enqueues one already-framed unit (n records) into a commit
// group and blocks until that group is durable or failed. The first
// appender to open a group is its leader: it waits up to MaxWait for
// followers, then performs one write+fsync for the whole group.
// Appenders arriving while a flush is in flight accumulate into the
// next group, which is what drives fsyncs-per-record below one under
// concurrency even with MaxWait zero.
func (j *Journal) commit(buf []byte, n int64) error {
	j.mu.Lock()
	for {
		if j.failed != nil {
			err := j.failed
			j.mu.Unlock()
			return err
		}
		if j.f == nil {
			j.mu.Unlock()
			return errJournalClosed
		}
		g := j.cur
		if g == nil {
			// Open a new group and lead it. A unit larger than the
			// group bounds still commits — it just rides alone.
			g = &jgroup{full: make(chan struct{}), done: make(chan struct{})}
			g.buf = append(g.buf, buf...)
			g.recs = n
			j.cur = g
			if len(g.buf) >= j.maxBatchBytes || g.recs >= j.maxBatchRecords {
				j.seal(g)
			}
			j.mu.Unlock()
			j.lead(g)
			return g.err
		}
		if int64(len(g.buf))+int64(len(buf)) <= int64(j.maxBatchBytes) &&
			g.recs+n <= j.maxBatchRecords {
			// Join the open group and wait for its leader's fsync.
			g.buf = append(g.buf, buf...)
			g.recs += n
			if g.recs >= j.maxBatchRecords {
				j.seal(g)
			}
			j.mu.Unlock()
			<-g.done
			return g.err
		}
		// The open group can't fit this unit: hurry its leader along
		// and wait for the slot to reopen.
		j.seal(g)
		j.cond.Wait()
	}
}

// seal closes a group to new joiners and releases a leader waiting on
// MaxWait. Callers must hold j.mu.
func (j *Journal) seal(g *jgroup) {
	if !g.sealed {
		g.sealed = true
		close(g.full)
	}
}

// lead runs the leader side of one commit group: wait for followers,
// detach the group, flush it with a single write+fsync, publish the
// outcome. Groups flush strictly in the order they were opened — a new
// group can only form after this one detaches, and detaching requires
// the previous flush to have finished.
func (j *Journal) lead(g *jgroup) {
	if j.maxWait > 0 {
		t := time.NewTimer(j.maxWait)
		select {
		case <-g.full:
		case <-t.C:
		}
		t.Stop()
	}
	j.mu.Lock()
	for j.flushing {
		j.cond.Wait()
	}
	if j.cur == g {
		j.cur = nil
	}
	j.seal(g)
	j.cond.Broadcast() // spilled appenders may open the next group
	if j.failed != nil || j.f == nil {
		err := j.failed
		if err == nil {
			err = errJournalClosed
		}
		j.mu.Unlock()
		g.err = err
		close(g.done)
		return
	}
	f := j.f
	durable := j.bytes
	buf, recs := g.buf, g.recs
	j.flushing = true
	j.mu.Unlock()

	var flushErr, poison error
	if _, werr := f.Write(buf); werr != nil {
		// A short or failed write leaves a torn frame at the tail.
		// Restore the clean prefix so later appends stay replayable; if
		// even that fails, poison the journal — appending past a torn
		// frame would write records replay can never reach.
		flushErr = werr
		terr := f.Truncate(durable)
		if terr == nil {
			_, terr = f.Seek(durable, io.SeekStart)
		}
		if terr != nil {
			poison = fmt.Errorf("store: journal tail unrecoverable after failed write (%v): %w", terr, werr)
		}
	} else if serr := f.Sync(); serr != nil {
		// After a failed fsync the kernel may have dropped the dirty
		// pages; nothing written since the last successful fsync can be
		// trusted, and retrying cannot bring it back.
		flushErr = serr
		poison = fmt.Errorf("store: journal poisoned by fsync failure: %w", serr)
	}

	j.mu.Lock()
	j.flushing = false
	if poison != nil && j.failed == nil {
		j.failed = poison
	}
	var hook func(records, bytes int64)
	if flushErr == nil {
		j.records += recs
		j.bytes += int64(len(buf))
		j.flushes++
		j.flushedRecords += recs
		hook = j.onFlush
	}
	j.cond.Broadcast()
	j.mu.Unlock()

	if hook != nil {
		hook(recs, int64(len(buf)))
	}
	g.err = flushErr
	close(g.done)
}

// Rewrite atomically replaces the journal's contents with recs
// (compaction): the new image is written to a temp file in the same
// directory, fsync'd, and renamed over the live journal, so a crash at
// any point leaves either the old or the new journal, never a mix.
func (j *Journal) Rewrite(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.flushing {
		j.cond.Wait()
	}
	if j.f == nil {
		return errJournalClosed
	}
	if j.failed != nil {
		return j.failed
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return err
	}
	fail := func(err error) error {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	var total int64
	for _, rec := range recs {
		buf, err := frame(rec, j.maxRecordBytes)
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(buf); err != nil {
			return fail(err)
		}
		total += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	// CreateTemp defaults to 0600; the journal must stay readable by
	// the same principals as before the compaction.
	if err := tmp.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fail(err)
	}
	syncDir(dir)
	// The rename moved tmp's inode to the journal path, so the open tmp
	// handle IS the new journal — keep writing through it rather than
	// reopening (a failed reopen would leave appends going to the
	// replaced, unlinked inode while reporting durable success).
	_ = j.f.Close()
	j.f = tmp
	j.records = int64(len(recs))
	j.bytes = total
	return nil
}

// Records returns the number of durable records in the journal
// (replayed plus flushed since open).
func (j *Journal) Records() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Bytes returns the journal's durable size in bytes.
func (j *Journal) Bytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bytes
}

// Flushes returns the number of write+fsync cycles since open. With
// group commit this is at most — and under concurrency well below —
// the number of records appended.
func (j *Journal) Flushes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushes
}

// FlushedRecords returns the records made durable since open
// (excluding replayed ones). FlushedRecords/Flushes is the average
// commit group size.
func (j *Journal) FlushedRecords() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushedRecords
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file after any in-flight flush finishes.
// Appends after Close fail; they do not panic, so a crashing server
// can be abandoned mid-operation. Records in groups that have not
// started flushing are dropped with an error to their appenders —
// none of them was ever acknowledged durable.
func (j *Journal) Close() error {
	j.mu.Lock()
	for j.flushing {
		j.cond.Wait()
	}
	if j.f == nil {
		j.mu.Unlock()
		return nil
	}
	f := j.f
	j.f = nil
	j.cond.Broadcast()
	j.mu.Unlock()
	return f.Close()
}

// syncDir fsyncs a directory so a rename within it is durable;
// best-effort because some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
