package store

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// frameFor builds one valid journal frame for the fuzz seed corpus.
func frameFor(t string, job string) []byte {
	payload, _ := json.Marshal(Record{Type: t, Job: job, Time: time.Unix(0, 0).UTC()})
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)
	return buf
}

// FuzzJournalReplay feeds arbitrary bytes to the journal as an on-disk
// image — the state a crash can leave at any byte boundary. Replay
// must never panic and must truncate to a clean record prefix: after
// OpenJournal, an append must land on a record boundary, so reopening
// yields exactly the replayed records plus the appended one. A
// finished job's records, once replayed, survive the truncate+append
// cycle — replay can only lose the torn tail, never rewrite history
// (the serve layer relies on that to never re-run finished jobs).
func FuzzJournalReplay(f *testing.F) {
	submit := frameFor(RecSubmit, "j1")
	finish := frameFor(RecFinish, "j1")
	full := append(append([]byte{}, submit...), finish...)
	seeds := [][]byte{
		{},
		full,
		full[:len(full)-1],   // torn tail: finish loses its last byte
		full[:len(submit)+3], // torn mid-header
		append([]byte{0xff, 0xff, 0xff, 0x7f}, full...), // insane length prefix
		func() []byte { // flipped bit in the finish payload
			b := append([]byte{}, full...)
			b[len(submit)+12] ^= 0x40
			return b
		}(),
		func() []byte { // zero-length frame
			b := make([]byte, 8)
			return append(b, full...)
		}(),
		[]byte("not a journal at all"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "journal.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("OpenJournal on arbitrary bytes must truncate, not fail: %v", err)
		}
		if int64(len(recs)) != j.Records() {
			t.Fatalf("Records() = %d, replay returned %d", j.Records(), len(recs))
		}
		// The journal now ends at a record boundary: an append must
		// survive a reopen along with every replayed record.
		sentinel := Record{Type: RecShutdown, Job: "sentinel", Time: time.Unix(1, 0).UTC()}
		if err := j.Append(sentinel); err != nil {
			t.Fatalf("append after truncate: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, recs2, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer j2.Close()
		if len(recs2) != len(recs)+1 {
			t.Fatalf("reopen: %d records, want %d replayed + 1 appended", len(recs2), len(recs))
		}
		for i := range recs {
			if recs2[i].Type != recs[i].Type || recs2[i].Job != recs[i].Job {
				t.Fatalf("record %d changed across truncate+append: %+v != %+v", i, recs2[i], recs[i])
			}
		}
		if last := recs2[len(recs2)-1]; last.Type != RecShutdown || last.Job != "sentinel" {
			t.Fatalf("appended record corrupted: %+v", last)
		}
	})
}
