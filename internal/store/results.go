package store

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Result file layout (current version, "SAR2"):
//
//	magic   [4]byte  "SAR2"
//	metaLen uint32   little-endian
//	metaCRC uint32   CRC32C of the meta bytes
//	payLen  uint64   little-endian, length of the COMPRESSED payload frame
//	payCRC  uint32   CRC32C of the COMPRESSED payload frame
//	rawLen  uint64   little-endian, decompressed payload length
//	meta    []byte   service-defined (JSON summary of the result)
//	payload []byte   gzip(the aligned FASTA)
//
// Payloads are gzipped at rest — aligned FASTA is highly redundant
// (gap runs, near-identical rows), so this multiplies the effective
// store capacity — and the CRC covers the compressed frame, so reads
// verify the cheap small frame, not the inflated bytes. Accounting
// (LRU byte bound, Bytes) follows the compressed size actually on
// disk. Files written by the previous "SAR1" version (identical header
// minus rawLen, payload stored raw) remain readable; new writes always
// produce SAR2.
//
// Files are written to a temp name and renamed into place, so a
// half-written result is never visible under its key; checksums catch
// bit rot and torn writes that survived the rename anyway, and a file
// that fails them is deleted and treated as a miss.

var (
	resultMagic   = [4]byte{'S', 'A', 'R', '2'}
	resultMagicV1 = [4]byte{'S', 'A', 'R', '1'}
)

const (
	resultHeaderLen   = 4 + 4 + 4 + 8 + 4 + 8
	resultHeaderLenV1 = 4 + 4 + 4 + 8 + 4
)

// ErrCorrupt reports a result file whose checksum did not match; the
// streaming reader returns it from Read at the point of detection.
var ErrCorrupt = errors.New("store: result file corrupt")

// Results is the bounded content-addressed result store. All methods
// are goroutine-safe. Eviction is strict LRU over Put/Get/Open
// recency, so for a deterministic access sequence the surviving set is
// deterministic.
type Results struct {
	dir        string
	maxEntries int
	maxBytes   int64

	mu        sync.Mutex
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	bytes     int64
	evictions int64
}

type resultEntry struct {
	key  string
	size int64 // payload bytes, the accounting unit (mirrors the memory cache)
}

// OpenResults opens (creating if needed) a result store rooted at dir,
// scanning existing files to rebuild the index. Entries are ordered
// oldest-first by (mtime, key) so eviction after a restart is
// deterministic for identical on-disk states. Either bound <= 0 means
// "no bound on that axis".
func OpenResults(dir string, maxEntries int, maxBytes int64) (*Results, error) {
	_, statErr := os.Stat(dir)
	created := errors.Is(statErr, os.ErrNotExist)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if created {
		// The store directory itself must be durable before the first
		// Put fsyncs a rename inside it — otherwise a crash could drop
		// the whole directory along with every "durably" stored result.
		syncDir(filepath.Dir(dir))
	}
	s := &Results{
		dir:        dir,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type scanned struct {
		key   string
		size  int64
		mtime int64
	}
	var found []scanned
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, name)
		if strings.HasPrefix(name, ".") { // orphaned temp file from a crash mid-Put
			_ = os.Remove(path)
			continue
		}
		size, ok := statResult(path)
		if !ok {
			_ = os.Remove(path) // unreadable or inconsistent header: not a result
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, scanned{key: name, size: size, mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].mtime != found[j].mtime {
			return found[i].mtime < found[j].mtime
		}
		return found[i].key < found[j].key
	})
	for _, sc := range found {
		s.items[sc.key] = s.ll.PushFront(&resultEntry{key: sc.key, size: sc.size})
		s.bytes += sc.size
	}
	s.evictLocked()
	return s, nil
}

// statResult reads and sanity-checks a result file header, returning
// the on-disk payload size (the accounting unit). Full checksum
// verification is deferred to reads.
func statResult(path string) (int64, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer func() { _ = f.Close() }() // read-only open
	hdr, err := readHeader(f)
	if err != nil {
		return 0, false
	}
	fi, err := f.Stat()
	if err != nil {
		return 0, false
	}
	if fi.Size() != int64(hdr.headerLen)+int64(hdr.metaLen)+hdr.payLen {
		return 0, false // truncated or padded: treat as corrupt
	}
	return hdr.payLen, true
}

// resultHeader is a decoded result file header, either version.
type resultHeader struct {
	metaLen    uint32
	metaCRC    uint32
	payLen     int64 // bytes on disk: compressed (SAR2) or raw (SAR1)
	payCRC     uint32
	rawLen     int64 // decompressed payload length (== payLen for SAR1)
	compressed bool
	headerLen  int
}

func readHeader(r io.Reader) (resultHeader, error) {
	var hdr [resultHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:resultHeaderLenV1]); err != nil {
		return resultHeader{}, err
	}
	h := resultHeader{
		metaLen:   binary.LittleEndian.Uint32(hdr[4:8]),
		metaCRC:   binary.LittleEndian.Uint32(hdr[8:12]),
		payLen:    int64(binary.LittleEndian.Uint64(hdr[12:20])),
		payCRC:    binary.LittleEndian.Uint32(hdr[20:24]),
		headerLen: resultHeaderLenV1,
	}
	switch [4]byte(hdr[0:4]) {
	case resultMagic:
		if _, err := io.ReadFull(r, hdr[resultHeaderLenV1:]); err != nil {
			return resultHeader{}, err
		}
		h.rawLen = int64(binary.LittleEndian.Uint64(hdr[24:32]))
		h.compressed = true
		h.headerLen = resultHeaderLen
	case resultMagicV1:
		h.rawLen = h.payLen
	default:
		return resultHeader{}, ErrCorrupt
	}
	if h.metaLen > maxRecordBytes || h.payLen < 0 || h.payLen > 1<<40 ||
		h.rawLen < 0 || h.rawLen > 1<<40 {
		return resultHeader{}, ErrCorrupt
	}
	return h, nil
}

// Put stores (meta, payload) under key with an atomic temp-file +
// rename write, then evicts LRU entries until both bounds hold. The
// payload is gzipped at rest; a payload whose compressed frame exceeds
// the byte bound is not stored. Re-putting an existing key only
// refreshes its recency (content-addressed: same key, same bytes).
func (s *Results) Put(key string, meta, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid result key %q", key)
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	var frame bytes.Buffer
	zw := gzip.NewWriter(&frame)
	if _, err := zw.Write(payload); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	if s.maxBytes > 0 && int64(frame.Len()) > s.maxBytes {
		return nil
	}

	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return err
	}
	// After a successful rename the Remove fails with ENOENT, harmlessly.
	defer func() { _ = os.Remove(tmp.Name()) }()
	var hdr [resultHeaderLen]byte
	copy(hdr[0:4], resultMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(meta)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(meta, crcTable))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(frame.Len()))
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.Checksum(frame.Bytes(), crcTable))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(payload)))
	for _, chunk := range [][]byte{hdr[:], meta, frame.Bytes()} {
		if _, err := tmp.Write(chunk); err != nil {
			_ = tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, key)); err != nil {
		return err
	}
	syncDir(s.dir)

	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok { // concurrent Put of the same key won
		s.ll.MoveToFront(el)
		return nil
	}
	s.items[key] = s.ll.PushFront(&resultEntry{key: key, size: int64(frame.Len())})
	s.bytes += int64(frame.Len())
	s.evictLocked()
	return nil
}

func (s *Results) evictLocked() {
	for (s.maxEntries > 0 && s.ll.Len() > s.maxEntries) ||
		(s.maxBytes > 0 && s.bytes > s.maxBytes) {
		back := s.ll.Back()
		if back == nil {
			return
		}
		ent := back.Value.(*resultEntry)
		s.ll.Remove(back)
		delete(s.items, ent.key)
		s.bytes -= ent.size
		s.evictions++
		_ = os.Remove(filepath.Join(s.dir, ent.key)) // rescan reaps any survivor
	}
}

// dropLocked removes a corrupt entry discovered during a read.
func (s *Results) drop(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		ent := el.Value.(*resultEntry)
		s.ll.Remove(el)
		delete(s.items, key)
		s.bytes -= ent.size
	}
	_ = os.Remove(filepath.Join(s.dir, key)) // rescan reaps any survivor
}

// touch refreshes key's recency; reports whether it is indexed.
func (s *Results) touch(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if ok {
		s.ll.MoveToFront(el)
	}
	return ok
}

// Get reads and fully verifies the result under key. Corruption
// (checksum or framing mismatch) deletes the file and reports a miss —
// the caller recomputes, exactly as for an evicted entry.
func (s *Results) Get(key string) (meta, payload []byte, ok bool) {
	if !validKey(key) || !s.touch(key) {
		return nil, nil, false
	}
	f, err := os.Open(filepath.Join(s.dir, key))
	if err != nil {
		s.drop(key)
		return nil, nil, false
	}
	defer func() { _ = f.Close() }() // read-only open
	hdr, err := readHeader(f)
	if err != nil {
		s.drop(key)
		return nil, nil, false
	}
	meta = make([]byte, hdr.metaLen)
	frame := make([]byte, hdr.payLen)
	if _, err := io.ReadFull(f, meta); err != nil {
		s.drop(key)
		return nil, nil, false
	}
	if _, err := io.ReadFull(f, frame); err != nil {
		s.drop(key)
		return nil, nil, false
	}
	if crc32.Checksum(meta, crcTable) != hdr.metaCRC || crc32.Checksum(frame, crcTable) != hdr.payCRC {
		s.drop(key)
		return nil, nil, false
	}
	if !hdr.compressed {
		return meta, frame, true
	}
	zr, err := gzip.NewReader(bytes.NewReader(frame))
	if err != nil {
		s.drop(key)
		return nil, nil, false
	}
	payload = make([]byte, hdr.rawLen)
	if _, err := io.ReadFull(zr, payload); err != nil {
		s.drop(key)
		return nil, nil, false
	}
	// The frame must inflate to exactly rawLen bytes: a longer stream
	// means the header lies about the payload.
	if n, err := zr.Read(make([]byte, 1)); n != 0 || err != io.EOF {
		s.drop(key)
		return nil, nil, false
	}
	return meta, payload, true
}

// Open returns the verified meta plus a streaming reader over the
// decompressed payload, so the caller can serve a result without
// buffering it. size is the decompressed payload length. The
// compressed frame's checksum is verified incrementally as decompression
// pulls it; if the bytes on disk do not add up, the reader returns
// ErrCorrupt at the point of detection (after which the entry has been
// dropped) — by then earlier bytes may already have been sent, which
// is why streaming consumers must be able to abort (chunked HTTP
// transfer does this naturally).
func (s *Results) Open(key string) (meta []byte, r io.ReadCloser, size int64, ok bool) {
	if !validKey(key) || !s.touch(key) {
		return nil, nil, 0, false
	}
	f, err := os.Open(filepath.Join(s.dir, key))
	if err != nil {
		s.drop(key)
		return nil, nil, 0, false
	}
	hdr, err := readHeader(f)
	if err != nil {
		_ = f.Close()
		s.drop(key)
		return nil, nil, 0, false
	}
	meta = make([]byte, hdr.metaLen)
	if _, err := io.ReadFull(f, meta); err != nil || crc32.Checksum(meta, crcTable) != hdr.metaCRC {
		_ = f.Close()
		s.drop(key)
		return nil, nil, 0, false
	}
	vr := &verifyReader{
		r:    io.LimitReader(f, hdr.payLen),
		f:    f,
		want: hdr.payCRC,
		left: hdr.payLen,
		bad:  func() { s.drop(key) },
	}
	if !hdr.compressed {
		return meta, vr, hdr.payLen, true
	}
	zr, err := gzip.NewReader(vr)
	if err != nil {
		// Already-corrupt gzip header: verifyReader may not have seen
		// EOF yet, so drop explicitly.
		s.drop(key)
		_ = f.Close()
		return nil, nil, 0, false
	}
	return meta, &gunzipReader{z: zr, vr: vr, bad: func() { s.drop(key) }}, hdr.rawLen, true
}

// gunzipReader streams the decompressed payload. Errors from the
// compressed layer (CRC mismatch from verifyReader) or the gzip frame
// itself (bad block, gzip's own checksum) surface as ErrCorrupt and
// drop the entry.
type gunzipReader struct {
	z   *gzip.Reader
	vr  *verifyReader
	bad func()
}

func (g *gunzipReader) Read(p []byte) (int, error) {
	n, err := g.z.Read(p)
	if err != nil && err != io.EOF {
		if g.bad != nil {
			g.bad()
			g.bad = nil
		}
		return n, ErrCorrupt
	}
	return n, err
}

func (g *gunzipReader) Close() error {
	_ = g.z.Close() // vr.Close carries the CRC verdict
	return g.vr.Close()
}

// verifyReader streams a payload while accumulating its CRC; EOF is
// only reported once the checksum matches, otherwise ErrCorrupt.
type verifyReader struct {
	r    io.Reader
	f    *os.File
	want uint32
	sum  uint32
	left int64
	bad  func()
}

func (v *verifyReader) Read(p []byte) (int, error) {
	n, err := v.r.Read(p)
	if n > 0 {
		v.sum = crc32.Update(v.sum, crcTable, p[:n])
		v.left -= int64(n)
	}
	if err == io.EOF {
		if v.left != 0 || v.sum != v.want {
			if v.bad != nil {
				v.bad()
				v.bad = nil
			}
			return n, ErrCorrupt
		}
	}
	return n, err
}

func (v *verifyReader) Close() error { return v.f.Close() }

// Len returns the number of stored results.
func (s *Results) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the accounted payload bytes on disk.
func (s *Results) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Evictions returns the number of results evicted since open.
func (s *Results) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// Keys returns stored keys from most to least recently used (tests).
func (s *Results) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*resultEntry).key)
	}
	return keys
}

// validKey accepts only lowercase-hex content addresses: result keys
// name files, so anything else (path separators, dots) is refused
// outright rather than sanitized.
func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
