package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func testRecord(typ, job string, n int) Record {
	data, _ := json.Marshal(map[string]int{"n": n})
	return Record{
		Type: typ,
		Job:  job,
		Key:  "k" + job,
		Time: time.Unix(1700000000+int64(n), 0).UTC(),
		Data: data,
	}
}

func openAppend(t *testing.T, path string, recs ...Record) {
	t.Helper()
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	want := []Record{
		testRecord(RecSubmit, "j1", 1),
		testRecord(RecStart, "j1", 2),
		testRecord(RecFinish, "j1", 3),
	}
	openAppend(t, path, want...)

	j, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	if j.Records() != 3 {
		t.Fatalf("records = %d, want 3", j.Records())
	}
	// Appending after a replay extends the same log.
	if err := j.Append(testRecord(RecCancel, "j2", 4)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, got, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3].Job != "j2" {
		t.Fatalf("after append: %d records, last %+v", len(got), got[len(got)-1])
	}
}

func TestJournalTruncatedTailIsDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	openAppend(t, path,
		testRecord(RecSubmit, "j1", 1),
		testRecord(RecSubmit, "j2", 2),
	)
	// Tear the last record: chop off its final bytes, as a crash
	// mid-write would.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	j, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Job != "j1" {
		t.Fatalf("replay after torn tail: %+v, want just j1", got)
	}
	// The torn bytes must be gone so new appends start clean.
	if err := j.Append(testRecord(RecSubmit, "j3", 3)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, got, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Job != "j3" {
		t.Fatalf("append after truncation: %+v", got)
	}
}

func TestJournalCorruptMiddleStopsReplayAtLastGoodRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	openAppend(t, path,
		testRecord(RecSubmit, "j1", 1),
		testRecord(RecSubmit, "j2", 2),
		testRecord(RecSubmit, "j3", 3),
	)
	// Flip a payload byte inside the second record.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	j, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// The scan must stop at the corruption; j1 (at least) survives and
	// nothing after the flip is believed.
	if len(got) == 0 || len(got) >= 3 {
		t.Fatalf("replay kept %d records, want 1 or 2 (stop at corruption)", len(got))
	}
	if got[0].Job != "j1" {
		t.Fatalf("first replayed record: %+v", got[0])
	}
}

func TestJournalEmptyAndGarbageFiles(t *testing.T) {
	dir := t.TempDir()
	// Empty file.
	j, recs, err := OpenJournal(filepath.Join(dir, "empty.wal"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty journal: recs=%v err=%v", recs, err)
	}
	j.Close()
	// Pure garbage.
	garbage := filepath.Join(dir, "garbage.wal")
	if err := os.WriteFile(garbage, []byte("this is not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err = OpenJournal(garbage)
	if err != nil || len(recs) != 0 {
		t.Fatalf("garbage journal: recs=%v err=%v", recs, err)
	}
	if err := j.Append(testRecord(RecSubmit, "j1", 1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs, err = OpenJournal(garbage)
	if err != nil || len(recs) != 1 {
		t.Fatalf("append after garbage: recs=%v err=%v", recs, err)
	}
}

func TestJournalRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	var recs []Record
	for i := 0; i < 10; i++ {
		recs = append(recs, testRecord(RecSubmit, "j", i))
	}
	openAppend(t, path, recs...)
	j, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	before := j.Bytes()
	keep := replayed[8:]
	if err := j.Rewrite(keep); err != nil {
		t.Fatal(err)
	}
	if j.Records() != 2 || j.Bytes() >= before {
		t.Fatalf("after rewrite: records=%d bytes=%d (before %d)", j.Records(), j.Bytes(), before)
	}
	// The rewritten journal accepts appends and replays cleanly.
	if err := j.Append(testRecord(RecShutdown, "", 99)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Time != keep[0].Time || got[2].Type != RecShutdown {
		t.Fatalf("rewritten journal replay: %+v", got)
	}
}

func TestLockDirExcludesSecondOwner(t *testing.T) {
	dir := t.TempDir()
	release, err := LockDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LockDir(dir); err == nil {
		t.Fatal("second LockDir on a held directory succeeded")
	}
	release()
	release2, err := LockDir(dir)
	if err != nil {
		t.Fatalf("relock after release: %v", err)
	}
	release2()
}
