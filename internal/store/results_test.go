package store

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// tkey makes a valid (hex) store key from a short name.
func tkey(n int) string { return fmt.Sprintf("%02x", n) }

// gzLen returns the size of a payload's gzipped at-rest frame — the
// store's accounting unit since the SAR2 format.
func gzLen(p []byte) int64 {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(p)
	zw.Close()
	return int64(buf.Len())
}

func openStore(t *testing.T, dir string, maxEntries int, maxBytes int64) *Results {
	t.Helper()
	s, err := OpenResults(dir, maxEntries, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestResultsRoundTrip(t *testing.T) {
	s := openStore(t, t.TempDir(), 0, 0)
	meta := []byte(`{"num_seqs":3}`)
	payload := []byte(">a\nACDEF\n>b\nACD-F\n>c\nAC-EF\n")
	if err := s.Put("ab12", meta, payload); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotPayload, ok := s.Get("ab12")
	if !ok || !bytes.Equal(gotMeta, meta) || !bytes.Equal(gotPayload, payload) {
		t.Fatalf("Get: ok=%v meta=%q payload=%q", ok, gotMeta, gotPayload)
	}
	if s.Len() != 1 || s.Bytes() != gzLen(payload) {
		t.Fatalf("Len=%d Bytes=%d, want 1/%d", s.Len(), s.Bytes(), gzLen(payload))
	}
	if _, _, ok := s.Get("cd34"); ok {
		t.Fatal("Get of a missing key succeeded")
	}
	// Invalid keys (path traversal shapes) are refused outright.
	if err := s.Put("../escape", meta, payload); err == nil {
		t.Fatal("Put accepted a non-hex key")
	}
	if _, _, ok := s.Get("../escape"); ok {
		t.Fatal("Get accepted a non-hex key")
	}
}

func TestResultsStreamingOpen(t *testing.T) {
	s := openStore(t, t.TempDir(), 0, 0)
	payload := []byte(strings.Repeat(">s\nACDEFGHIKLMNPQRSTVWY\n", 4096))
	if err := s.Put("0a1b", []byte(`{}`), payload); err != nil {
		t.Fatal(err)
	}
	meta, rc, size, ok := s.Open("0a1b")
	if !ok {
		t.Fatal("Open missed a stored key")
	}
	defer rc.Close()
	if string(meta) != "{}" || size != int64(len(payload)) {
		t.Fatalf("Open meta=%q size=%d", meta, size)
	}
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("streamed %d bytes differ from stored %d", len(got), len(payload))
	}
}

func TestResultsCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 0, 0)
	payload := []byte(strings.Repeat("ACDEFGHIKL", 100))
	if err := s.Put("ff01", []byte(`{}`), payload); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte on disk.
	path := filepath.Join(dir, "ff01")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-10] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("ff01"); ok {
		t.Fatal("Get returned corrupt payload")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file was not deleted")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after corruption drop", s.Len())
	}
}

func TestResultsStreamingDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 0, 0)
	payload := []byte(strings.Repeat("ACDEFGHIKL", 1000))
	if err := s.Put("ff02", []byte(`{}`), payload); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ff02")
	buf, _ := os.ReadFile(path)
	buf[len(buf)-1] ^= 0xff
	os.WriteFile(path, buf, 0o644)

	_, rc, _, ok := s.Open("ff02")
	if !ok {
		t.Fatal("Open refused (header is intact; corruption is in the payload)")
	}
	defer rc.Close()
	if _, err := io.ReadAll(rc); err == nil {
		t.Fatal("streaming a corrupt payload reported clean EOF")
	}
	if s.Len() != 0 {
		t.Fatal("corrupt entry not dropped after streaming detection")
	}
}

func TestResultsEvictionDeterminism(t *testing.T) {
	s := openStore(t, t.TempDir(), 3, 0)
	pay := func(n int) []byte { return bytes.Repeat([]byte{'A'}, 10+n) }
	for i := 1; i <= 5; i++ {
		if err := s.Put(tkey(i), []byte(`{}`), pay(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Strict LRU: the three most recent puts survive, oldest first out.
	if got, want := s.Keys(), []string{tkey(5), tkey(4), tkey(3)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after 5 puts: %v, want %v", got, want)
	}
	if s.Evictions() != 2 {
		t.Fatalf("evictions = %d, want 2", s.Evictions())
	}
	// A Get refreshes recency deterministically.
	if _, _, ok := s.Get(tkey(3)); !ok {
		t.Fatal("expected tkey(3) present")
	}
	if err := s.Put(tkey(6), []byte(`{}`), pay(6)); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Keys(), []string{tkey(6), tkey(3), tkey(5)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after Get+Put: %v, want %v", got, want)
	}

	// Byte bound (on the compressed at-rest frames): a store capped at
	// two-and-a-half frames holds at most two of these payloads.
	small := bytes.Repeat([]byte{'B'}, 12)
	frame := gzLen(small)
	s2 := openStore(t, t.TempDir(), 0, 2*frame+frame/2)
	for i := 1; i <= 4; i++ {
		if err := s2.Put(tkey(10+i), []byte(`{}`), small); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := s2.Keys(), []string{tkey(14), tkey(13)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("byte-bounded keys: %v, want %v", got, want)
	}
	// A payload whose compressed frame alone exceeds the bound is
	// refused outright, evicting nothing.
	big := make([]byte, 4096)
	for i := range big {
		big[i] = byte(i*131 + i>>3) // poorly compressible
	}
	if gzLen(big) <= 2*frame+frame/2 {
		t.Fatalf("test payload compresses to %d, not oversized", gzLen(big))
	}
	if err := s2.Put(tkey(20), []byte(`{}`), big); err != nil {
		t.Fatal(err)
	}
	if got, want := s2.Keys(), []string{tkey(14), tkey(13)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after oversized put: %v, want %v", got, want)
	}
}

func TestResultsRestartRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 0, 0)
	var wantBytes int64
	for i := 1; i <= 3; i++ {
		payload := bytes.Repeat([]byte{'A'}, 100*i)
		if err := s.Put(tkey(i), []byte(`{}`), payload); err != nil {
			t.Fatal(err)
		}
		wantBytes += gzLen(payload)
		// Distinct mtimes so the rebuilt recency order is deterministic.
		mt := time.Now().Add(time.Duration(i) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, tkey(i)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Leave a stray temp file behind, as a crash mid-Put would.
	if err := os.WriteFile(filepath.Join(dir, ".put-stray"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, 0, 0)
	if s2.Len() != 3 || s2.Bytes() != wantBytes {
		t.Fatalf("rebuilt: Len=%d Bytes=%d, want 3/%d", s2.Len(), s2.Bytes(), wantBytes)
	}
	if got, want := s2.Keys(), []string{tkey(3), tkey(2), tkey(1)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rebuilt recency: %v, want %v", got, want)
	}
	if _, err := os.Stat(filepath.Join(dir, ".put-stray")); !os.IsNotExist(err) {
		t.Fatal("stray temp file survived the scan")
	}
	// Reopening with tighter bounds evicts deterministically (oldest
	// mtime first).
	s3 := openStore(t, dir, 2, 0)
	if got, want := s3.Keys(), []string{tkey(3), tkey(2)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bounded reopen: %v, want %v", got, want)
	}
}

func TestResultsConcurrentAccess(t *testing.T) {
	s := openStore(t, t.TempDir(), 8, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				key := tkey(i % 12)
				payload := bytes.Repeat([]byte{'A'}, 64)
				if err := s.Put(key, []byte(`{}`), payload); err != nil {
					t.Error(err)
					return
				}
				if _, pl, ok := s.Get(key); ok && len(pl) != 64 {
					t.Errorf("payload len %d", len(pl))
					return
				}
				if _, rc, _, ok := s.Open(key); ok {
					io.Copy(io.Discard, rc)
					rc.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > 8 {
		t.Fatalf("Len = %d exceeds bound", s.Len())
	}
}

// TestResultsReadsV1Files: files written by the pre-gzip "SAR1" format
// (raw payload, 24-byte header) must stay readable — both the full
// read and the streaming path — and account at their raw size.
func TestResultsReadsV1Files(t *testing.T) {
	dir := t.TempDir()
	meta := []byte(`{"num_seqs":2}`)
	payload := []byte(">a\nACDEF\n>b\nAC-EF\n")
	hdr := make([]byte, resultHeaderLenV1)
	copy(hdr[0:4], resultMagicV1[:])
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(meta)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(meta, crcTable))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.Checksum(payload, crcTable))
	file := append(append(append([]byte{}, hdr...), meta...), payload...)
	if err := os.WriteFile(filepath.Join(dir, tkey(7)), file, 0o644); err != nil {
		t.Fatal(err)
	}

	s := openStore(t, dir, 0, 0)
	if s.Len() != 1 || s.Bytes() != int64(len(payload)) {
		t.Fatalf("v1 rescan: Len=%d Bytes=%d, want 1/%d", s.Len(), s.Bytes(), len(payload))
	}
	gotMeta, gotPayload, ok := s.Get(tkey(7))
	if !ok || !bytes.Equal(gotMeta, meta) || !bytes.Equal(gotPayload, payload) {
		t.Fatalf("v1 Get: ok=%v meta=%q payload=%q", ok, gotMeta, gotPayload)
	}
	_, rc, size, ok := s.Open(tkey(7))
	if !ok || size != int64(len(payload)) {
		t.Fatalf("v1 Open: ok=%v size=%d", ok, size)
	}
	defer rc.Close()
	streamed, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, payload) {
		t.Fatalf("v1 stream: %q", streamed)
	}

	// A fresh Put alongside it writes the current format; both coexist.
	if err := s.Put(tkey(8), meta, payload); err != nil {
		t.Fatal(err)
	}
	if _, p2, ok := s.Get(tkey(8)); !ok || !bytes.Equal(p2, payload) {
		t.Fatal("v2 neighbour unreadable")
	}
}
