package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestJournalAppendBatchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		testRecord(RecSubmit, "b1", 1),
		testRecord(RecSubmit, "b2", 2),
		testRecord(RecSubmit, "b3", 3),
		testRecord(RecFinish, "b1", 4),
	}
	if err := j.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := j.AppendBatch(want); err != nil {
		t.Fatal(err)
	}
	// The whole batch shares one fsync.
	if got := j.Flushes(); got != 1 {
		t.Fatalf("Flushes() = %d, want 1", got)
	}
	if got := j.FlushedRecords(); got != int64(len(want)) {
		t.Fatalf("FlushedRecords() = %d, want %d", got, len(want))
	}
	if got := j.Records(); got != int64(len(want)) {
		t.Fatalf("Records() = %d, want %d", got, len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestJournalTornTailMidGroupTruncatesToLastIntactRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	batch := []Record{
		testRecord(RecSubmit, "g1", 1),
		testRecord(RecSubmit, "g2", 2),
		testRecord(RecSubmit, "g3", 3),
	}
	if err := j.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the group mid-way through its second record, as a crash
	// during the group's single write would.
	f1, err := frame(batch[0], maxRecordBytes)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := frame(batch[1], maxRecordBytes)
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(len(f1) + len(f2)/2)
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}

	j, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Job != "g1" {
		t.Fatalf("replay after mid-group tear: %+v, want just g1", got)
	}
	// The torn half-record is gone; new appends extend a clean prefix.
	if err := j.Append(testRecord(RecSubmit, "g4", 4)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, got, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Job != "g4" {
		t.Fatalf("append after mid-group truncation: %+v", got)
	}
}

func TestJournalConcurrentAppendsGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	// A small MaxWait makes group formation deterministic even if the
	// scheduler runs the appenders one after another.
	j, _, err := OpenJournalOptions(path, JournalOptions{MaxWait: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		perG    = 25
	)
	errs := make(chan error, writers*perG)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				errs <- j.Append(testRecord(RecSubmit, fmt.Sprintf("w%d-%d", g, i), i))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	total := int64(writers * perG)
	if got := j.Records(); got != total {
		t.Fatalf("Records() = %d, want %d", got, total)
	}
	if got := j.FlushedRecords(); got != total {
		t.Fatalf("FlushedRecords() = %d, want %d", got, total)
	}
	// The whole point of group commit: far fewer fsyncs than records.
	if f := j.Flushes(); f >= total/2 {
		t.Fatalf("Flushes() = %d for %d records; groups are not forming", f, total)
	}
	j.Close()
	_, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != total {
		t.Fatalf("replayed %d records, want %d", len(got), total)
	}
	seen := make(map[string]bool, len(got))
	for _, r := range got {
		if seen[r.Job] {
			t.Fatalf("job %s replayed twice", r.Job)
		}
		seen[r.Job] = true
	}
}

func TestJournalOversizedRecordRejectedAtAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := OpenJournalOptions(path, JournalOptions{MaxRecordBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord(RecSubmit, "ok1", 1)); err != nil {
		t.Fatal(err)
	}
	big := testRecord(RecSubmit, "big", 2)
	big.Data = []byte(`"` + fmt.Sprintf("%01024d", 7) + `"`)
	if err := j.Append(big); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized Append error = %v, want ErrRecordTooLarge", err)
	}
	// An oversized member rejects the whole batch before any bytes are
	// staged — the good record must not be half-committed.
	if err := j.AppendBatch([]Record{testRecord(RecSubmit, "ok2", 3), big}); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized AppendBatch error = %v, want ErrRecordTooLarge", err)
	}
	if err := j.Append(testRecord(RecSubmit, "ok3", 4)); err != nil {
		t.Fatalf("journal unusable after rejected record: %v", err)
	}
	j.Close()
	_, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Job != "ok1" || got[1].Job != "ok3" {
		t.Fatalf("replay after rejections: %+v, want ok1+ok3 only", got)
	}
}

func TestJournalBatchLargerThanGroupBoundsStillCommits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := OpenJournalOptions(path, JournalOptions{MaxBatchRecords: 2, MaxBatchBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The batch is an atomic unit: it may exceed the group bounds and
	// ride in a group of its own rather than being split.
	batch := []Record{
		testRecord(RecSubmit, "u1", 1),
		testRecord(RecSubmit, "u2", 2),
		testRecord(RecSubmit, "u3", 3),
	}
	if err := j.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := j.Flushes(); got != 1 {
		t.Fatalf("Flushes() = %d, want 1", got)
	}
	j.Close()
	_, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
}

func TestJournalAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord(RecSubmit, "x", 1)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := j.AppendBatch([]Record{testRecord(RecSubmit, "y", 2)}); err == nil {
		t.Fatal("AppendBatch after Close succeeded")
	}
}
