package mpi

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// freeAddrs reserves n loopback ports and returns their addresses. The
// listeners are closed before use; the small race window is acceptable
// in tests.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// runTCP runs fn as an SPMD program over a TCP world on loopback.
func runTCP(t *testing.T, size int, fn func(Comm) error) {
	t.Helper()
	addrs := freeAddrs(t, size)
	var wg sync.WaitGroup
	errs := make(chan error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := DialTCP(TCPConfig{Rank: rank, Addrs: addrs})
			if err != nil {
				errs <- fmt.Errorf("rank %d dial: %w", rank, err)
				return
			}
			defer c.Close()
			if err := fn(c); err != nil {
				errs <- fmt.Errorf("rank %d: %w", rank, err)
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestTCPSendRecv(t *testing.T) {
	runTCP(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 42, []byte("over tcp"))
		}
		d, err := c.Recv(0, 42)
		if err != nil {
			return err
		}
		if string(d) != "over tcp" {
			return fmt.Errorf("got %q", d)
		}
		return nil
	})
}

func TestTCPSelfSend(t *testing.T) {
	runTCP(t, 2, func(c Comm) error {
		if err := c.Send(c.Rank(), 1, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		d, err := c.Recv(c.Rank(), 1)
		if err != nil {
			return err
		}
		if d[0] != byte(c.Rank()) {
			return fmt.Errorf("self loop got %v", d)
		}
		return nil
	})
}

func TestTCPCollectives(t *testing.T) {
	runTCP(t, 4, func(c Comm) error {
		got, err := Bcast(c, 0, 1, []byte("b"))
		if err != nil {
			return err
		}
		if string(got) != "b" {
			return fmt.Errorf("bcast got %q", got)
		}
		all, err := AllGather(c, 2, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		for r, d := range all {
			if d[0] != byte(r) {
				return fmt.Errorf("allgather entry %d = %v", r, d)
			}
		}
		parts := make([][]byte, 4)
		for q := range parts {
			parts[q] = []byte{byte(c.Rank() * 4), byte(q)}
		}
		x, err := AllToAll(c, 3, parts)
		if err != nil {
			return err
		}
		for src, d := range x {
			if d[0] != byte(src*4) || d[1] != byte(c.Rank()) {
				return fmt.Errorf("alltoall from %d: %v", src, d)
			}
		}
		return Barrier(c, 4)
	})
}

func TestTCPLargeMessage(t *testing.T) {
	const size = 1 << 20 // 1 MiB
	runTCP(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			buf := make([]byte, size)
			for i := range buf {
				buf[i] = byte(i * 31)
			}
			return c.Send(1, 9, buf)
		}
		d, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if len(d) != size {
			return fmt.Errorf("got %d bytes", len(d))
		}
		for i := 0; i < size; i += 4097 {
			if d[i] != byte(i*31) {
				return fmt.Errorf("corrupt byte at %d", i)
			}
		}
		return nil
	})
}

func TestTCPSingleRank(t *testing.T) {
	c, err := DialTCP(TCPConfig{Rank: 0, Addrs: []string{"127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Size() != 1 {
		t.Fatalf("size = %d", c.Size())
	}
	if err := c.Send(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if d, err := c.Recv(0, 1); err != nil || string(d) != "x" {
		t.Fatalf("self messaging: %q %v", d, err)
	}
}

func TestTCPInvalidConfig(t *testing.T) {
	if _, err := DialTCP(TCPConfig{Rank: 3, Addrs: []string{"a", "b"}}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestTCPPeerDeathFailsPendingRecv(t *testing.T) {
	// When a peer's connection drops, a Recv waiting on a *future*
	// message from it must fail fast instead of hanging the rank —
	// but messages the peer sent before dying must stay drainable.
	runTCP(t, 2, func(c Comm) error {
		if c.Rank() == 1 {
			if err := c.Send(0, 7, []byte("parting gift")); err != nil {
				return err
			}
			return c.Close()
		}
		// rank 0: the queued message arrives even though rank 1 dies
		d, err := c.Recv(1, 7)
		if err != nil || string(d) != "parting gift" {
			return fmt.Errorf("queued drain: %q, %v", d, err)
		}
		// ...but waiting on a message rank 1 never sent errors out
		done := make(chan error, 1)
		go func() {
			_, err := c.Recv(1, 8)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				return fmt.Errorf("recv from dead peer succeeded")
			}
			return nil
		case <-time.After(10 * time.Second):
			return fmt.Errorf("recv from dead peer hung")
		}
	})
}
