package mpi

import (
	"bytes"
	"fmt"
	"testing"
)

var worldSizes = []int{1, 2, 3, 4, 7, 8, 16}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, size := range worldSizes {
		for root := 0; root < size; root++ {
			payload := []byte(fmt.Sprintf("payload-from-%d", root))
			err := Run(size, func(c Comm) error {
				var data []byte
				if c.Rank() == root {
					data = payload
				}
				got, err := Bcast(c, root, 1, data)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, payload) {
					return fmt.Errorf("rank %d got %q", c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("size=%d root=%d: %v", size, root, err)
			}
		}
	}
}

func TestGather(t *testing.T) {
	for _, size := range worldSizes {
		err := Run(size, func(c Comm) error {
			data := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
			got, err := Gather(c, 0, 2, data)
			if err != nil {
				return err
			}
			if c.Rank() != 0 {
				if got != nil {
					return fmt.Errorf("non-root got %v", got)
				}
				return nil
			}
			for r, d := range got {
				if len(d) != 2 || d[0] != byte(r) || d[1] != byte(r*2) {
					return fmt.Errorf("root: entry %d = %v", r, d)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
	}
}

func TestAllGather(t *testing.T) {
	for _, size := range worldSizes {
		err := Run(size, func(c Comm) error {
			got, err := AllGather(c, 3, []byte{byte(c.Rank() + 10)})
			if err != nil {
				return err
			}
			if len(got) != size {
				return fmt.Errorf("rank %d: %d entries", c.Rank(), len(got))
			}
			for r, d := range got {
				if len(d) != 1 || d[0] != byte(r+10) {
					return fmt.Errorf("rank %d: entry %d = %v", c.Rank(), r, d)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
	}
}

func TestScatter(t *testing.T) {
	for _, size := range worldSizes {
		err := Run(size, func(c Comm) error {
			var parts [][]byte
			if c.Rank() == 0 {
				parts = make([][]byte, size)
				for r := range parts {
					parts[r] = []byte{byte(r * 3)}
				}
			}
			got, err := Scatter(c, 0, 4, parts)
			if err != nil {
				return err
			}
			if len(got) != 1 || got[0] != byte(c.Rank()*3) {
				return fmt.Errorf("rank %d got %v", c.Rank(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
	}
}

func TestScatterValidatesParts(t *testing.T) {
	err := Run(2, func(c Comm) error {
		if c.Rank() == 0 {
			_, err := Scatter(c, 0, 4, [][]byte{{1}}) // wrong count
			if err == nil {
				return fmt.Errorf("short parts accepted")
			}
			// unblock rank 1
			return c.Send(1, 4, []byte{9})
		}
		_, err := Scatter(c, 0, 4, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAll(t *testing.T) {
	for _, size := range worldSizes {
		err := Run(size, func(c Comm) error {
			parts := make([][]byte, size)
			for q := range parts {
				parts[q] = []byte{byte(c.Rank()), byte(q)}
			}
			got, err := AllToAll(c, 5, parts)
			if err != nil {
				return err
			}
			for src, d := range got {
				if len(d) != 2 || d[0] != byte(src) || d[1] != byte(c.Rank()) {
					return fmt.Errorf("rank %d from %d: %v", c.Rank(), src, d)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
	}
}

func TestBarrier(t *testing.T) {
	// A barrier must not deadlock and must complete for every size.
	for _, size := range worldSizes {
		err := Run(size, func(c Comm) error {
			for round := 0; round < 3; round++ {
				if err := Barrier(c, 100+round); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
	}
}

func TestReduceFloat64(t *testing.T) {
	err := Run(5, func(c Comm) error {
		x := float64(c.Rank() + 1) // 1..5
		sum, err := ReduceFloat64(c, 0, 6, x, "sum")
		if err != nil {
			return err
		}
		if c.Rank() == 0 && sum != 15 {
			return fmt.Errorf("sum = %g", sum)
		}
		mn, err := AllReduceFloat64(c, 7, x, "min")
		if err != nil {
			return err
		}
		if mn != 1 {
			return fmt.Errorf("rank %d min = %g", c.Rank(), mn)
		}
		mx, err := AllReduceFloat64(c, 8, x, "max")
		if err != nil {
			return err
		}
		if mx != 5 {
			return fmt.Errorf("rank %d max = %g", c.Rank(), mx)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceUnknownOp(t *testing.T) {
	err := Run(1, func(c Comm) error {
		_, err := ReduceFloat64(c, 0, 9, 1, "median")
		if err == nil {
			return fmt.Errorf("unknown op accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypedCollectives(t *testing.T) {
	type item struct {
		Rank  int
		Label string
	}
	err := Run(4, func(c Comm) error {
		// AllGatherValues
		all, err := AllGatherValues(c, 10, item{Rank: c.Rank(), Label: "x"})
		if err != nil {
			return err
		}
		for r, it := range all {
			if it.Rank != r || it.Label != "x" {
				return fmt.Errorf("allgather entry %d: %+v", r, it)
			}
		}
		// AllToAllValues
		parts := make([]item, 4)
		for q := range parts {
			parts[q] = item{Rank: c.Rank()*10 + q, Label: "y"}
		}
		got, err := AllToAllValues(c, 11, parts)
		if err != nil {
			return err
		}
		for src, it := range got {
			if it.Rank != src*10+c.Rank() {
				return fmt.Errorf("alltoall from %d: %+v", src, it)
			}
		}
		// BcastValue
		var v item
		if c.Rank() == 2 {
			v = item{Rank: 2, Label: "root"}
		}
		if err := BcastValue(c, 2, 12, v, &v); err != nil {
			return err
		}
		if v.Label != "root" {
			return fmt.Errorf("bcast value %+v", v)
		}
		// GatherValues + ScatterValues
		gathered, err := GatherValues(c, 1, 13, item{Rank: c.Rank()})
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			for r, it := range gathered {
				if it.Rank != r {
					return fmt.Errorf("gathered %d: %+v", r, it)
				}
			}
		}
		var scatterIn []item
		if c.Rank() == 1 {
			scatterIn = make([]item, 4)
			for r := range scatterIn {
				scatterIn[r] = item{Rank: r * 7}
			}
		}
		mine, err := ScatterValues(c, 1, 14, scatterIn)
		if err != nil {
			return err
		}
		if mine.Rank != c.Rank()*7 {
			return fmt.Errorf("scatter got %+v", mine)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackSlices(t *testing.T) {
	in := [][]byte{nil, []byte("a"), []byte("hello world"), {}}
	out, err := unpackSlices(packSlices(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d parts", len(out))
	}
	for i := range in {
		if !bytes.Equal(out[i], in[i]) {
			t.Errorf("part %d: %v != %v", i, out[i], in[i])
		}
	}
	if _, err := unpackSlices([]byte{1, 2}); err == nil {
		t.Error("truncated buffer accepted")
	}
}
