package mpi

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func TestRecvContextUnblocksOnCancel(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c := w.Comm(0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.RecvContext(ctx, 1, 9) // no message ever sent
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvContext did not unblock on cancel")
	}
}

func TestRecvContextDeliversBeforeCancel(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c0, c1 := w.Comm(0), w.Comm(1)
	if err := c1.Send(0, 3, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d, err := c0.RecvContext(ctx, 1, 3)
	if err != nil || string(d) != "payload" {
		t.Fatalf("got %q, %v", d, err)
	}
}

func TestWithContextCollectiveUnblocks(t *testing.T) {
	// Rank 1 never enters the gather; rank 0's blocking collective over a
	// context-bound comm must unwind with context.Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	var rank0Err error
	var wg sync.WaitGroup
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := WithContext(ctx, w.Comm(0))
		_, rank0Err = Gather(c, 0, 5, []byte("x"))
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	wg.Wait()
	if !errors.Is(rank0Err, context.Canceled) {
		t.Fatalf("collective err = %v", rank0Err)
	}
}

func TestWithContextSendFailsFast(t *testing.T) {
	w, err := NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := WithContext(ctx, w.Comm(0))
	if err := c.Send(0, 1, []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("send err = %v", err)
	}
}

func TestWithContextBackgroundIsPassthrough(t *testing.T) {
	w, err := NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c := w.Comm(0)
	if WithContext(context.Background(), c) != c {
		t.Fatal("Background binding should return the comm unchanged")
	}
}

func TestRunContextCancelUnblocksRanks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	errC := make(chan error, 1)
	go func() {
		errC <- RunContext(ctx, 3, func(c Comm) error {
			if c.Rank() == 0 {
				close(started)
			}
			// every rank blocks forever on a message that never comes
			_, err := WithContext(ctx, c).Recv(c.Rank(), 99)
			return err
		})
	}()
	<-started
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errC:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}
}

func TestDialTCPContextCancelledSetup(t *testing.T) {
	// Reserve a port for rank 0 but never start rank 1: setup hangs until
	// ctx cancels it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr0 := ln.Addr().String()
	ln.Close()
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := ln1.Addr().String()
	ln1.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := DialTCPContext(ctx, TCPConfig{
			Rank:        0,
			Addrs:       []string{addr0, addr1},
			DialTimeout: 30 * time.Second,
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("DialTCPContext err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DialTCPContext did not abort on cancel")
	}
}

func TestBoundRecvContextHonorsBothContexts(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	bound, cancelBound := context.WithCancel(context.Background())
	defer cancelBound()
	c := WithContext(bound, w.Comm(0))

	// caller context fires first
	callerCtx, cancelCaller := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.RecvContext(callerCtx, 1, 1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancelCaller()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller cancel: err = %v", err)
	}

	// bound context fires while the caller's is still live
	liveCtx, cancelLive := context.WithCancel(context.Background())
	defer cancelLive()
	go func() {
		_, err := c.RecvContext(liveCtx, 1, 2)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancelBound()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("bound cancel: err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("bound context did not unblock RecvContext")
	}
}
