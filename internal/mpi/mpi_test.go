package mpi

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("hello"))
		}
		d, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(d) != "hello" {
			return fmt.Errorf("got %q", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendToSelf(t *testing.T) {
	err := Run(1, func(c Comm) error {
		if err := c.Send(0, 1, []byte("loop")); err != nil {
			return err
		}
		d, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(d) != "loop" {
			return fmt.Errorf("got %q", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	// Messages with different tags must be matched independently of
	// arrival order.
	err := Run(2, func(c Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("one")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("two"))
		}
		two, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		one, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(one) != "one" || string(two) != "two" {
			return fmt.Errorf("tag mix-up: %q %q", one, two)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerSourceTag(t *testing.T) {
	err := Run(2, func(c Comm) error {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 5, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			d, err := c.Recv(0, 5)
			if err != nil {
				return err
			}
			if d[0] != byte(i) {
				return fmt.Errorf("out of order: got %d want %d", d[0], i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	err := Run(2, func(c Comm) error {
		if c.Rank() == 0 {
			buf := []byte("aaaa")
			if err := c.Send(1, 1, buf); err != nil {
				return err
			}
			copy(buf, "bbbb") // mutate after send
			return c.Send(1, 2, []byte("done"))
		}
		if _, err := c.Recv(0, 2); err != nil {
			return err
		}
		d, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(d) != "aaaa" {
			return fmt.Errorf("send aliased caller buffer: %q", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanks(t *testing.T) {
	err := Run(2, func(c Comm) error {
		if err := c.Send(5, 1, nil); err == nil {
			return fmt.Errorf("send to rank 5 accepted")
		}
		if _, err := c.Recv(-1, 1); err == nil {
			return fmt.Errorf("recv from rank -1 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := fmt.Errorf("rank failure")
	err := Run(4, func(c Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		// other ranks block on a message that never comes; Run must
		// unblock them by closing the world
		_, err := c.Recv((c.Rank()+1)%4, 99)
		if err != ErrClosed {
			return fmt.Errorf("expected ErrClosed, got %v", err)
		}
		return nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
}

func TestStatsCounting(t *testing.T) {
	res, err := RunCollect(2, func(c Comm) (Stats, error) {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, make([]byte, 1000)); err != nil {
				return Stats{}, err
			}
		} else {
			if _, err := c.Recv(0, 1); err != nil {
				return Stats{}, err
			}
		}
		return c.Stats().Snapshot(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].BytesSent != 1000 || res[0].MsgsSent != 1 {
		t.Errorf("rank 0 stats: %+v", res[0])
	}
	if res[1].BytesRecv != 1000 || res[1].MsgsRecv != 1 {
		t.Errorf("rank 1 stats: %+v", res[1])
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	type payload struct {
		Name  string
		Vals  []float64
		Bytes []byte
	}
	in := payload{Name: "x", Vals: []float64{1, 2.5}, Bytes: []byte("seq")}
	data, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Vals) != 2 || !bytes.Equal(out.Bytes, in.Bytes) {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestSendRecvValue(t *testing.T) {
	err := Run(2, func(c Comm) error {
		if c.Rank() == 0 {
			return SendValue(c, 1, 3, map[string]int{"a": 1, "b": 2})
		}
		var m map[string]int
		if err := RecvValue(c, 0, 3, &m); err != nil {
			return err
		}
		if m["a"] != 1 || m["b"] != 2 {
			return fmt.Errorf("decoded %v", m)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
