// Package mpi is a hand-rolled message-passing runtime standing in for
// the MPI library the paper uses: rank-addressed point-to-point messages
// with tag matching, the collective operations Sample-Align-D needs
// (barrier, broadcast, gather, all-gather, scatter, all-to-all
// personalised exchange, reduce), gob-typed convenience wrappers, and two
// transports — in-process goroutine ranks for tests/benchmarks and TCP
// for real multi-process cluster runs.
//
// Semantics follow MPI's: Send is asynchronous (buffered), Recv blocks
// until a matching (source, tag) message arrives, and messages between a
// fixed (source, destination, tag) triple are delivered in order.
package mpi

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrClosed is returned by operations on a communicator that has been
// shut down.
var ErrClosed = errors.New("mpi: communicator closed")

// Comm is a communicator: the endpoint one rank uses to talk to the
// others in its world.
type Comm interface {
	// Rank returns this process's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int
	// Send delivers data to rank `to` with the given tag. It does not
	// wait for the receiver (buffered, like MPI_Isend + wait-for-copy).
	// Sending to self is allowed.
	Send(to, tag int, data []byte) error
	// Recv blocks until a message with the given source and tag arrives
	// and returns its payload.
	Recv(from, tag int) ([]byte, error)
	// RecvContext is Recv that additionally unblocks with ctx.Err()
	// when ctx is cancelled before a matching message arrives.
	RecvContext(ctx context.Context, from, tag int) ([]byte, error)
	// Stats returns this rank's traffic counters.
	Stats() *Stats
	// Close shuts the communicator down; blocked Recvs return ErrClosed.
	Close() error
}

// WithContext binds a communicator to a context: Recv blocks become
// RecvContext calls that unblock with ctx.Err() on cancellation, and
// Send fails fast once ctx is done. Because the collectives are built on
// Send/Recv, running them over a context-bound communicator makes every
// blocking collective honor cancellation with no further plumbing.
// Binding to context.Background() returns c unchanged.
func WithContext(ctx context.Context, c Comm) Comm {
	//lint:allow ctxflow sentinel comparison against the Background singleton, no context is created
	if ctx == context.Background() || ctx.Done() == nil {
		return c
	}
	return &ctxComm{Comm: c, ctx: ctx}
}

type ctxComm struct {
	Comm
	ctx context.Context
}

func (c *ctxComm) Send(to, tag int, data []byte) error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	return c.Comm.Send(to, tag, data)
}

func (c *ctxComm) Recv(from, tag int) ([]byte, error) {
	return c.Comm.RecvContext(c.ctx, from, tag)
}

// RecvContext on a context-bound comm honors both the bound context and
// the caller's: whichever is done first unblocks the receive with its
// error.
func (c *ctxComm) RecvContext(ctx context.Context, from, tag int) ([]byte, error) {
	if ctx.Done() == nil {
		return c.Comm.RecvContext(c.ctx, from, tag)
	}
	if c.ctx.Done() == nil {
		return c.Comm.RecvContext(ctx, from, tag)
	}
	merged, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(c.ctx, cancel)
	defer stop()
	data, err := c.Comm.RecvContext(merged, from, tag)
	if errors.Is(err, context.Canceled) && ctx.Err() == nil {
		// the bound context fired, not the caller's: report its error
		// (which may be DeadlineExceeded rather than Canceled)
		if cerr := c.ctx.Err(); cerr != nil {
			err = cerr
		}
	}
	return data, err
}

// Stats counts a rank's message traffic; used to reproduce the paper's
// communication-cost analysis (§3).
type Stats struct {
	BytesSent int64
	BytesRecv int64
	MsgsSent  int64
	MsgsRecv  int64
}

func (s *Stats) addSend(n int) {
	atomic.AddInt64(&s.BytesSent, int64(n))
	atomic.AddInt64(&s.MsgsSent, 1)
}

func (s *Stats) addRecv(n int) {
	atomic.AddInt64(&s.BytesRecv, int64(n))
	atomic.AddInt64(&s.MsgsRecv, 1)
}

// Snapshot returns a consistent copy of the counters.
func (s *Stats) Snapshot() Stats {
	return Stats{
		BytesSent: atomic.LoadInt64(&s.BytesSent),
		BytesRecv: atomic.LoadInt64(&s.BytesRecv),
		MsgsSent:  atomic.LoadInt64(&s.MsgsSent),
		MsgsRecv:  atomic.LoadInt64(&s.MsgsRecv),
	}
}

// Add accumulates other into s (for aggregating per-rank stats).
func (s *Stats) Add(other Stats) {
	s.BytesSent += other.BytesSent
	s.BytesRecv += other.BytesRecv
	s.MsgsSent += other.MsgsSent
	s.MsgsRecv += other.MsgsRecv
}
