// Package mpi is a hand-rolled message-passing runtime standing in for
// the MPI library the paper uses: rank-addressed point-to-point messages
// with tag matching, the collective operations Sample-Align-D needs
// (barrier, broadcast, gather, all-gather, scatter, all-to-all
// personalised exchange, reduce), gob-typed convenience wrappers, and two
// transports — in-process goroutine ranks for tests/benchmarks and TCP
// for real multi-process cluster runs.
//
// Semantics follow MPI's: Send is asynchronous (buffered), Recv blocks
// until a matching (source, tag) message arrives, and messages between a
// fixed (source, destination, tag) triple are delivered in order.
package mpi

import (
	"errors"
	"sync/atomic"
)

// ErrClosed is returned by operations on a communicator that has been
// shut down.
var ErrClosed = errors.New("mpi: communicator closed")

// Comm is a communicator: the endpoint one rank uses to talk to the
// others in its world.
type Comm interface {
	// Rank returns this process's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int
	// Send delivers data to rank `to` with the given tag. It does not
	// wait for the receiver (buffered, like MPI_Isend + wait-for-copy).
	// Sending to self is allowed.
	Send(to, tag int, data []byte) error
	// Recv blocks until a message with the given source and tag arrives
	// and returns its payload.
	Recv(from, tag int) ([]byte, error)
	// Stats returns this rank's traffic counters.
	Stats() *Stats
	// Close shuts the communicator down; blocked Recvs return ErrClosed.
	Close() error
}

// Stats counts a rank's message traffic; used to reproduce the paper's
// communication-cost analysis (§3).
type Stats struct {
	BytesSent int64
	BytesRecv int64
	MsgsSent  int64
	MsgsRecv  int64
}

func (s *Stats) addSend(n int) {
	atomic.AddInt64(&s.BytesSent, int64(n))
	atomic.AddInt64(&s.MsgsSent, 1)
}

func (s *Stats) addRecv(n int) {
	atomic.AddInt64(&s.BytesRecv, int64(n))
	atomic.AddInt64(&s.MsgsRecv, 1)
}

// Snapshot returns a consistent copy of the counters.
func (s *Stats) Snapshot() Stats {
	return Stats{
		BytesSent: atomic.LoadInt64(&s.BytesSent),
		BytesRecv: atomic.LoadInt64(&s.BytesRecv),
		MsgsSent:  atomic.LoadInt64(&s.MsgsSent),
		MsgsRecv:  atomic.LoadInt64(&s.MsgsRecv),
	}
}

// Add accumulates other into s (for aggregating per-rank stats).
func (s *Stats) Add(other Stats) {
	s.BytesSent += other.BytesSent
	s.BytesRecv += other.BytesRecv
	s.MsgsSent += other.MsgsSent
	s.MsgsRecv += other.MsgsRecv
}
