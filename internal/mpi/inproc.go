package mpi

import (
	"context"
	"fmt"
	"sync"
)

// message is one queued point-to-point payload.
type message struct {
	src, tag int
	data     []byte
}

// mailbox is one rank's inbound queue with (source, tag) matching.
// Messages from the same (source, tag) are matched FIFO. Waiters block
// on a broadcast channel that is closed-and-replaced on every push, so
// a blocked pop can also race a context's Done channel — that is how
// cancellation reaches every blocking Recv and, through them, the
// collectives.
//
// A source can be marked dead (its transport hit EOF): queued messages
// from it stay deliverable, but a pop that would otherwise wait for a
// future message from it fails immediately instead of hanging — this is
// how one crashed or cancelled TCP rank unwinds its whole world.
type mailbox struct {
	mu      sync.Mutex
	queue   []message
	wake    chan struct{} // closed and replaced on push/close (broadcast)
	closed  bool
	deadSrc map[int]error
}

func newMailbox() *mailbox {
	return &mailbox{wake: make(chan struct{})}
}

func (mb *mailbox) push(m message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	mb.queue = append(mb.queue, m)
	close(mb.wake)
	mb.wake = make(chan struct{})
	return nil
}

// pop blocks until a message with the given source and tag arrives, the
// mailbox closes, the source is marked dead, or ctx is cancelled.
// Queued messages win over closure and death, so an early-finishing
// peer's already-sent data is always drainable.
func (mb *mailbox) pop(ctx context.Context, src, tag int) ([]byte, error) {
	for {
		mb.mu.Lock()
		for i := range mb.queue {
			if mb.queue[i].src == src && mb.queue[i].tag == tag {
				data := mb.queue[i].data
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				mb.mu.Unlock()
				return data, nil
			}
		}
		if mb.closed {
			mb.mu.Unlock()
			return nil, ErrClosed
		}
		if err := mb.deadSrc[src]; err != nil {
			mb.mu.Unlock()
			return nil, err
		}
		wake := mb.wake
		mb.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// markDead records that src will never produce another message (its
// connection is gone) and wakes blocked waiters so pops on it fail
// fast with err instead of hanging.
func (mb *mailbox) markDead(src int, err error) {
	mb.mu.Lock()
	if !mb.closed {
		if mb.deadSrc == nil {
			mb.deadSrc = make(map[int]error)
		}
		if mb.deadSrc[src] == nil {
			mb.deadSrc[src] = err
		}
		close(mb.wake)
		mb.wake = make(chan struct{})
	}
	mb.mu.Unlock()
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	if !mb.closed {
		mb.closed = true
		close(mb.wake)
	}
	mb.mu.Unlock()
}

// World is an in-process communication world: p ranks backed by
// goroutines and shared-memory mailboxes. It models the cluster at full
// message-passing fidelity (every byte crosses a Send/Recv boundary) on
// one machine.
type World struct {
	size  int
	boxes []*mailbox
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: world size %d", size)
	}
	w := &World{size: size, boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w, nil
}

// Comm returns the communicator endpoint for one rank.
func (w *World) Comm(rank int) Comm {
	return &inprocComm{world: w, rank: rank, stats: &Stats{}}
}

// Close shuts every rank's mailbox down.
func (w *World) Close() {
	for _, mb := range w.boxes {
		mb.close()
	}
}

type inprocComm struct {
	world *World
	rank  int
	stats *Stats
}

func (c *inprocComm) Rank() int     { return c.rank }
func (c *inprocComm) Size() int     { return c.world.size }
func (c *inprocComm) Stats() *Stats { return c.stats }

func (c *inprocComm) Send(to, tag int, data []byte) error {
	if to < 0 || to >= c.world.size {
		return fmt.Errorf("mpi: send to rank %d of %d", to, c.world.size)
	}
	// Copy the payload: the sender may reuse its buffer, and ranks must
	// not share memory through messages (cluster semantics).
	cp := make([]byte, len(data))
	copy(cp, data)
	if err := c.world.boxes[to].push(message{src: c.rank, tag: tag, data: cp}); err != nil {
		return err
	}
	c.stats.addSend(len(data))
	return nil
}

func (c *inprocComm) Recv(from, tag int) ([]byte, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return c.RecvContext(context.Background(), from, tag)
}

func (c *inprocComm) RecvContext(ctx context.Context, from, tag int) ([]byte, error) {
	if from < 0 || from >= c.world.size {
		return nil, fmt.Errorf("mpi: recv from rank %d of %d", from, c.world.size)
	}
	data, err := c.world.boxes[c.rank].pop(ctx, from, tag)
	if err != nil {
		return nil, err
	}
	c.stats.addRecv(len(data))
	return data, nil
}

func (c *inprocComm) Close() error {
	c.world.boxes[c.rank].close()
	return nil
}

// Run launches fn as an SPMD program over `size` in-process ranks and
// waits for all of them. It returns the first non-nil error; on error the
// world is closed so other ranks unblock.
func Run(size int, fn func(Comm) error) error {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return RunContext(context.Background(), size, fn)
}

// RunContext is Run bound to a context: when ctx is cancelled the world
// is closed, so every rank blocked in a Recv (directly or inside a
// collective) unblocks and the SPMD program unwinds. Rank functions that
// want to observe the cancellation reason should check ctx themselves
// (core does) or use a context-bound communicator via WithContext.
func RunContext(ctx context.Context, size int, fn func(Comm) error) error {
	w, err := NewWorld(size)
	if err != nil {
		return err
	}
	defer w.Close()

	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			w.Close() // unblock every rank
		case <-done:
		}
	}()

	errs := make(chan error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := fn(w.Comm(rank)); err != nil {
				errs <- fmt.Errorf("rank %d: %w", rank, err)
				w.Close() // unblock everyone else
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return ctx.Err()
	}
}

// RunCollect is Run for SPMD functions that produce a per-rank result;
// results are returned indexed by rank.
func RunCollect[T any](size int, fn func(Comm) (T, error)) ([]T, error) {
	out := make([]T, size)
	var mu sync.Mutex
	err := Run(size, func(c Comm) error {
		v, err := fn(c)
		if err != nil {
			return err
		}
		mu.Lock()
		out[c.Rank()] = v
		mu.Unlock()
		return nil
	})
	return out, err
}
