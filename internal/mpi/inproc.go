package mpi

import (
	"fmt"
	"sync"
)

// message is one queued point-to-point payload.
type message struct {
	src, tag int
	data     []byte
}

// mailbox is one rank's inbound queue with (source, tag) matching.
// Messages from the same (source, tag) are matched FIFO.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) push(m message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Broadcast()
	return nil
}

func (mb *mailbox) pop(src, tag int) ([]byte, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i := range mb.queue {
			if mb.queue[i].src == src && mb.queue[i].tag == tag {
				data := mb.queue[i].data
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return data, nil
			}
		}
		if mb.closed {
			return nil, ErrClosed
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// World is an in-process communication world: p ranks backed by
// goroutines and shared-memory mailboxes. It models the cluster at full
// message-passing fidelity (every byte crosses a Send/Recv boundary) on
// one machine.
type World struct {
	size  int
	boxes []*mailbox
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: world size %d", size)
	}
	w := &World{size: size, boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w, nil
}

// Comm returns the communicator endpoint for one rank.
func (w *World) Comm(rank int) Comm {
	return &inprocComm{world: w, rank: rank, stats: &Stats{}}
}

// Close shuts every rank's mailbox down.
func (w *World) Close() {
	for _, mb := range w.boxes {
		mb.close()
	}
}

type inprocComm struct {
	world *World
	rank  int
	stats *Stats
}

func (c *inprocComm) Rank() int     { return c.rank }
func (c *inprocComm) Size() int     { return c.world.size }
func (c *inprocComm) Stats() *Stats { return c.stats }

func (c *inprocComm) Send(to, tag int, data []byte) error {
	if to < 0 || to >= c.world.size {
		return fmt.Errorf("mpi: send to rank %d of %d", to, c.world.size)
	}
	// Copy the payload: the sender may reuse its buffer, and ranks must
	// not share memory through messages (cluster semantics).
	cp := make([]byte, len(data))
	copy(cp, data)
	if err := c.world.boxes[to].push(message{src: c.rank, tag: tag, data: cp}); err != nil {
		return err
	}
	c.stats.addSend(len(data))
	return nil
}

func (c *inprocComm) Recv(from, tag int) ([]byte, error) {
	if from < 0 || from >= c.world.size {
		return nil, fmt.Errorf("mpi: recv from rank %d of %d", from, c.world.size)
	}
	data, err := c.world.boxes[c.rank].pop(from, tag)
	if err != nil {
		return nil, err
	}
	c.stats.addRecv(len(data))
	return data, nil
}

func (c *inprocComm) Close() error {
	c.world.boxes[c.rank].close()
	return nil
}

// Run launches fn as an SPMD program over `size` in-process ranks and
// waits for all of them. It returns the first non-nil error; on error the
// world is closed so other ranks unblock.
func Run(size int, fn func(Comm) error) error {
	w, err := NewWorld(size)
	if err != nil {
		return err
	}
	defer w.Close()
	errs := make(chan error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := fn(w.Comm(rank)); err != nil {
				errs <- fmt.Errorf("rank %d: %w", rank, err)
				w.Close() // unblock everyone else
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// RunCollect is Run for SPMD functions that produce a per-rank result;
// results are returned indexed by rank.
func RunCollect[T any](size int, fn func(Comm) (T, error)) ([]T, error) {
	out := make([]T, size)
	var mu sync.Mutex
	err := Run(size, func(c Comm) error {
		v, err := fn(c)
		if err != nil {
			return err
		}
		mu.Lock()
		out[c.Rank()] = v
		mu.Unlock()
		return nil
	})
	return out, err
}
