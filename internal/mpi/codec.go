package mpi

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Encode gob-encodes a value for transport. The typed helpers below pair
// it with Decode so ranks exchange structured data (sequences, ranks,
// pivot lists) without hand-rolling wire formats at every call site.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("mpi: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes data into out (a pointer).
func Decode(data []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return fmt.Errorf("mpi: decode: %w", err)
	}
	return nil
}

// SendValue gob-encodes v and sends it.
func SendValue(c Comm, to, tag int, v any) error {
	data, err := Encode(v)
	if err != nil {
		return err
	}
	return c.Send(to, tag, data)
}

// RecvValue receives a message and gob-decodes it into out (a pointer).
func RecvValue(c Comm, from, tag int, out any) error {
	data, err := c.Recv(from, tag)
	if err != nil {
		return err
	}
	return Decode(data, out)
}

// BcastValue broadcasts root's value; every rank decodes it into out
// (a pointer). Root's out is left untouched (it already has the value).
func BcastValue(c Comm, root, tag int, v any, out any) error {
	var payload []byte
	if c.Rank() == root {
		data, err := Encode(v)
		if err != nil {
			return err
		}
		payload = data
	}
	data, err := Bcast(c, root, tag, payload)
	if err != nil {
		return err
	}
	if c.Rank() == root {
		return nil
	}
	return Decode(data, out)
}

// GatherValues gathers one value of type T per rank at root; non-root
// ranks return nil.
func GatherValues[T any](c Comm, root, tag int, v T) ([]T, error) {
	data, err := Encode(v)
	if err != nil {
		return nil, err
	}
	parts, err := Gather(c, root, tag, data)
	if err != nil || c.Rank() != root {
		return nil, err
	}
	out := make([]T, len(parts))
	for r, p := range parts {
		if err := Decode(p, &out[r]); err != nil {
			return nil, fmt.Errorf("mpi: gather from rank %d: %w", r, err)
		}
	}
	return out, nil
}

// AllGatherValues gives every rank the slice of every rank's value.
func AllGatherValues[T any](c Comm, tag int, v T) ([]T, error) {
	data, err := Encode(v)
	if err != nil {
		return nil, err
	}
	parts, err := AllGather(c, tag, data)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(parts))
	for r, p := range parts {
		if err := Decode(p, &out[r]); err != nil {
			return nil, fmt.Errorf("mpi: allgather from rank %d: %w", r, err)
		}
	}
	return out, nil
}

// AllToAllValues performs a personalised exchange of typed values:
// parts[q] goes to rank q; the result is indexed by source rank.
func AllToAllValues[T any](c Comm, tag int, parts []T) ([]T, error) {
	raw := make([][]byte, len(parts))
	for i, p := range parts {
		data, err := Encode(p)
		if err != nil {
			return nil, err
		}
		raw[i] = data
	}
	got, err := AllToAll(c, tag, raw)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(got))
	for r, p := range got {
		if err := Decode(p, &out[r]); err != nil {
			return nil, fmt.Errorf("mpi: alltoall from rank %d: %w", r, err)
		}
	}
	return out, nil
}

// ScatterValues distributes root's parts[r] to rank r.
func ScatterValues[T any](c Comm, root, tag int, parts []T) (T, error) {
	var zero T
	var raw [][]byte
	if c.Rank() == root {
		raw = make([][]byte, len(parts))
		for i, p := range parts {
			data, err := Encode(p)
			if err != nil {
				return zero, err
			}
			raw[i] = data
		}
	}
	data, err := Scatter(c, root, tag, raw)
	if err != nil {
		return zero, err
	}
	var out T
	if err := Decode(data, &out); err != nil {
		return zero, err
	}
	return out, nil
}
