package mpi

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPConfig describes one rank of a TCP-transport world. Addrs[i] is the
// address rank i listens on; all ranks must agree on the list.
type TCPConfig struct {
	Rank        int
	Addrs       []string
	DialTimeout time.Duration // per-connection; default 10s
	DialRetry   time.Duration // backoff between attempts; default 100ms
}

// tcpComm is a Comm over a full mesh of TCP connections: rank i dials
// every rank j < i and accepts from every rank j > i. One reader
// goroutine per peer drains frames into the mailbox, so sends never
// deadlock against un-received data.
type tcpComm struct {
	rank, size int
	box        *mailbox
	stats      *Stats

	mu       sync.Mutex
	conns    []net.Conn   // indexed by peer rank (nil for self)
	sendLock []sync.Mutex // per-peer write serialisation
	listener net.Listener
	closed   bool
}

// frame layout: [tag int64][length uint32][payload]

// DialTCP establishes the mesh and returns this rank's communicator.
// Every rank of the world must call DialTCP concurrently (they block on
// each other).
func DialTCP(cfg TCPConfig) (Comm, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return DialTCPContext(context.Background(), cfg)
}

// DialTCPContext is DialTCP bound to a context: cancelling ctx aborts
// the mesh setup (pending accepts and dial retries stop) and the call
// returns ctx.Err().
func DialTCPContext(ctx context.Context, cfg TCPConfig) (Comm, error) {
	size := len(cfg.Addrs)
	if cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("mpi: tcp rank %d of %d", cfg.Rank, size)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.DialRetry == 0 {
		cfg.DialRetry = 100 * time.Millisecond
	}
	c := &tcpComm{
		rank:     cfg.Rank,
		size:     size,
		box:      newMailbox(),
		stats:    &Stats{},
		conns:    make([]net.Conn, size),
		sendLock: make([]sync.Mutex, size),
	}
	if size == 1 {
		return c, nil
	}

	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d listen %s: %w", cfg.Rank, cfg.Addrs[cfg.Rank], err)
	}
	c.listener = ln

	// Abort the whole mesh setup if ctx is cancelled: closing the
	// listener unblocks Accept, and the dial loops poll ctx between
	// retries.
	setupDone := make(chan struct{})
	defer close(setupDone)
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
		case <-setupDone:
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, size)

	// accept from higher ranks
	higher := size - 1 - cfg.Rank
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < higher; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errs <- fmt.Errorf("mpi: rank %d accept: %w", cfg.Rank, err)
				return
			}
			var hello [4]byte
			if _, err := io.ReadFull(conn, hello[:]); err != nil {
				errs <- fmt.Errorf("mpi: rank %d handshake: %w", cfg.Rank, err)
				return
			}
			peer := int(binary.LittleEndian.Uint32(hello[:]))
			if peer <= cfg.Rank || peer >= size {
				errs <- fmt.Errorf("mpi: rank %d got handshake from invalid rank %d", cfg.Rank, peer)
				return
			}
			c.mu.Lock()
			c.conns[peer] = conn
			c.mu.Unlock()
		}
	}()

	// dial lower ranks
	for peer := 0; peer < cfg.Rank; peer++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			deadline := time.Now().Add(cfg.DialTimeout)
			for {
				conn, err := net.DialTimeout("tcp", cfg.Addrs[peer], cfg.DialTimeout)
				if err == nil {
					var hello [4]byte
					binary.LittleEndian.PutUint32(hello[:], uint32(cfg.Rank))
					if _, err := conn.Write(hello[:]); err != nil {
						errs <- fmt.Errorf("mpi: rank %d hello to %d: %w", cfg.Rank, peer, err)
						return
					}
					c.mu.Lock()
					c.conns[peer] = conn
					c.mu.Unlock()
					return
				}
				if time.Now().After(deadline) {
					errs <- fmt.Errorf("mpi: rank %d dial rank %d (%s): %w", cfg.Rank, peer, cfg.Addrs[peer], err)
					return
				}
				select {
				case <-ctx.Done():
					errs <- ctx.Err()
					return
				case <-time.After(cfg.DialRetry):
				}
			}
		}(peer)
	}

	wg.Wait()
	select {
	case err := <-errs:
		c.Close()
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		c.Close()
		return nil, err
	}

	// start one reader per peer
	for peer, conn := range c.conns {
		if conn == nil {
			continue
		}
		go c.readLoop(peer, conn)
	}
	return c, nil
}

func (c *tcpComm) readLoop(peer int, conn net.Conn) {
	// On any exit the peer is marked dead: its queued messages stay
	// deliverable, but Recvs waiting on future messages from it fail
	// fast instead of hanging the rank when a peer crashes or cancels.
	defer c.box.markDead(peer, fmt.Errorf("mpi: rank %d disconnected: %w", peer, ErrClosed))
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		tag := int(int64(binary.LittleEndian.Uint64(hdr[:8])))
		length := binary.LittleEndian.Uint32(hdr[8:])
		payload := make([]byte, length)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		if c.box.push(message{src: peer, tag: tag, data: payload}) != nil {
			return
		}
	}
}

func (c *tcpComm) Rank() int     { return c.rank }
func (c *tcpComm) Size() int     { return c.size }
func (c *tcpComm) Stats() *Stats { return c.stats }

func (c *tcpComm) Send(to, tag int, data []byte) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("mpi: send to rank %d of %d", to, c.size)
	}
	if to == c.rank {
		cp := make([]byte, len(data))
		copy(cp, data)
		if err := c.box.push(message{src: c.rank, tag: tag, data: cp}); err != nil {
			return err
		}
		c.stats.addSend(len(data))
		return nil
	}
	c.mu.Lock()
	conn := c.conns[to]
	closed := c.closed
	c.mu.Unlock()
	if closed || conn == nil {
		return ErrClosed
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(int64(tag)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(data)))
	c.sendLock[to].Lock()
	defer c.sendLock[to].Unlock()
	if _, err := conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("mpi: send to %d: %w", to, err)
	}
	if _, err := conn.Write(data); err != nil {
		return fmt.Errorf("mpi: send to %d: %w", to, err)
	}
	c.stats.addSend(len(data))
	return nil
}

func (c *tcpComm) Recv(from, tag int) ([]byte, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return c.RecvContext(context.Background(), from, tag)
}

func (c *tcpComm) RecvContext(ctx context.Context, from, tag int) ([]byte, error) {
	if from < 0 || from >= c.size {
		return nil, fmt.Errorf("mpi: recv from rank %d of %d", from, c.size)
	}
	data, err := c.box.pop(ctx, from, tag)
	if err != nil {
		return nil, err
	}
	c.stats.addRecv(len(data))
	return data, nil
}

func (c *tcpComm) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := append([]net.Conn(nil), c.conns...)
	ln := c.listener
	c.mu.Unlock()

	c.box.close()
	for _, conn := range conns {
		if conn != nil {
			conn.Close()
		}
	}
	if ln != nil {
		ln.Close()
	}
	return nil
}
