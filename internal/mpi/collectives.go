package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The collectives are implemented over point-to-point Send/Recv with
// simple fan-in/fan-out patterns. Every collective takes a caller-chosen
// tag; the whole world must call the same collective with the same tag
// (standard SPMD discipline). Broadcast and barrier use log-p trees, the
// personalised exchanges are direct sends, matching the coarse-grained
// cost model the paper assumes (§3).

// Barrier blocks until every rank has entered it.
func Barrier(c Comm, tag int) error {
	// all-reduce of nothing via gather-to-0 + broadcast
	if _, err := Gather(c, 0, tag, nil); err != nil {
		return err
	}
	_, err := Bcast(c, 0, tag, nil)
	return err
}

// Bcast sends root's data to every rank along a binomial tree and
// returns the received copy (root returns its own data unchanged).
func Bcast(c Comm, root, tag int, data []byte) ([]byte, error) {
	size, rank := c.Size(), c.Rank()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: bcast root %d of %d", root, size)
	}
	// Rotate ranks so the root is virtual rank 0, then run a binomial
	// tree: at step s, every virtual rank v < s that already holds the
	// data sends it to v+s. Virtual rank v (>0) receives from
	// v - 2^floor(log2 v) before it starts forwarding.
	vrank := (rank - root + size) % size
	if vrank != 0 {
		parent := (parentOf(vrank) + root) % size
		d, err := c.Recv(parent, tag)
		if err != nil {
			return nil, err
		}
		data = d
	}
	for step := 1; step < size; step <<= 1 {
		if vrank < step {
			child := vrank + step
			if child < size {
				if err := c.Send((child+root)%size, tag, data); err != nil {
					return nil, err
				}
			}
		}
	}
	return data, nil
}

// parentOf returns the binomial-tree parent of virtual rank v (> 0):
// v minus its highest power of two, i.e. the rank it receives from.
func parentOf(v int) int {
	p := 1
	for p<<1 <= v {
		p <<= 1
	}
	return v - p
}

// Gather collects every rank's data at root. At root the result is a
// slice indexed by rank (root's own entry included); other ranks get nil.
func Gather(c Comm, root, tag int, data []byte) ([][]byte, error) {
	size, rank := c.Size(), c.Rank()
	if rank != root {
		return nil, c.Send(root, tag, data)
	}
	out := make([][]byte, size)
	out[root] = data
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		d, err := c.Recv(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = d
	}
	return out, nil
}

// AllGather gives every rank the slice of every rank's data.
func AllGather(c Comm, tag int, data []byte) ([][]byte, error) {
	gathered, err := Gather(c, 0, tag, data)
	if err != nil {
		return nil, err
	}
	if c.Rank() == 0 {
		packed := packSlices(gathered)
		if _, err := Bcast(c, 0, tag, packed); err != nil {
			return nil, err
		}
		return gathered, nil
	}
	packed, err := Bcast(c, 0, tag, nil)
	if err != nil {
		return nil, err
	}
	return unpackSlices(packed)
}

// Scatter distributes parts[r] from root to rank r and returns this
// rank's part. Only root's parts argument is consulted.
func Scatter(c Comm, root, tag int, parts [][]byte) ([]byte, error) {
	size, rank := c.Size(), c.Rank()
	if rank == root {
		if len(parts) != size {
			return nil, fmt.Errorf("mpi: scatter %d parts for %d ranks", len(parts), size)
		}
		for r := 0; r < size; r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tag, parts[r]); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	return c.Recv(root, tag)
}

// AllToAll performs the personalised exchange at the heart of the
// redistribution step: rank r sends parts[q] to rank q and receives one
// part from every rank, returned indexed by source rank.
func AllToAll(c Comm, tag int, parts [][]byte) ([][]byte, error) {
	size, rank := c.Size(), c.Rank()
	if len(parts) != size {
		return nil, fmt.Errorf("mpi: alltoall %d parts for %d ranks", len(parts), size)
	}
	out := make([][]byte, size)
	out[rank] = parts[rank]
	// send first (buffered sends cannot deadlock), then receive
	for off := 1; off < size; off++ {
		to := (rank + off) % size
		if err := c.Send(to, tag, parts[to]); err != nil {
			return nil, err
		}
	}
	for off := 1; off < size; off++ {
		from := (rank - off + size) % size
		d, err := c.Recv(from, tag)
		if err != nil {
			return nil, err
		}
		out[from] = d
	}
	return out, nil
}

// ReduceFloat64 combines one float64 per rank at root with op
// ("sum", "min", "max"); non-root ranks return 0.
func ReduceFloat64(c Comm, root, tag int, x float64, op string) (float64, error) {
	switch op {
	case "sum", "min", "max":
	default:
		return 0, fmt.Errorf("mpi: unknown reduce op %q", op)
	}
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
	gathered, err := Gather(c, root, tag, buf)
	if err != nil {
		return 0, err
	}
	if c.Rank() != root {
		return 0, nil
	}
	acc := x
	for r, d := range gathered {
		if r == root {
			continue
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(d))
		switch op {
		case "sum":
			acc += v
		case "min":
			if v < acc {
				acc = v
			}
		case "max":
			if v > acc {
				acc = v
			}
		default:
			return 0, fmt.Errorf("mpi: unknown reduce op %q", op)
		}
	}
	return acc, nil
}

// AllReduceFloat64 is ReduceFloat64 followed by a broadcast, so every
// rank gets the combined value.
func AllReduceFloat64(c Comm, tag int, x float64, op string) (float64, error) {
	v, err := ReduceFloat64(c, 0, tag, x, op)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 8)
	if c.Rank() == 0 {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
	}
	out, err := Bcast(c, 0, tag, buf)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(out)), nil
}

// packSlices/unpackSlices frame a [][]byte into one buffer:
// [count][len0][bytes0][len1][bytes1]...
func packSlices(parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	out := make([]byte, 0, total)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(parts)))
	out = append(out, hdr[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

func unpackSlices(buf []byte) ([][]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("mpi: truncated packed slices")
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	out := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("mpi: truncated packed slice %d", i)
		}
		l := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		if uint32(len(buf)) < l {
			return nil, fmt.Errorf("mpi: truncated payload %d", i)
		}
		out = append(out, buf[:l:l])
		buf = buf[l:]
	}
	return out, nil
}
