// Package dp provides pooled, reusable scratch memory for the
// dynamic-programming alignment kernels in internal/pairwise,
// internal/profile and internal/mafft.
//
// A progressive alignment of a large bucket performs thousands of DP
// passes, and allocating three O(n·m) float64 score planes plus
// traceback arrays per pass makes the allocator and GC a first-order
// cost. A Workspace holds all of that scratch as flat backing arrays
// that grow in place and are recycled through a sync.Pool: a kernel
// borrows with Get, fills the planes it needs, and returns the
// workspace with Put, so steady-state kernels run allocation-free.
//
// The three per-state traceback arrays of the classic affine-gap
// formulation are merged into a single byte plane: each cell packs the
// M-, X- and Y-state predecessors into three 2-bit fields (PackTB /
// TBM / TBX / TBY), cutting traceback memory threefold and halving the
// number of backing arrays.
//
// Kernels must write every cell they later read (score planes are not
// zeroed between borrows); all kernels in this repository initialise
// their boundaries and fill their band/interior before tracing back,
// so recycled garbage is never observed.
package dp

import "sync"

// Traceback states shared by every affine-gap kernel: which DP plane a
// cell's best predecessor lives in. Stop marks the start of a fresh
// local alignment (Smith-Waterman).
const (
	M byte = iota
	X
	Y
	Stop
)

// PackTB packs the three per-plane predecessor states of one cell into
// a single byte (2 bits each).
func PackTB(m, x, y byte) byte { return m | x<<2 | y<<4 }

// TBM extracts the M-plane predecessor from a packed traceback byte.
func TBM(b byte) byte { return b & 3 }

// TBX extracts the X-plane predecessor from a packed traceback byte.
func TBX(b byte) byte { return (b >> 2) & 3 }

// TBY extracts the Y-plane predecessor from a packed traceback byte.
func TBY(b byte) byte { return (b >> 4) & 3 }

// Workspace is the reusable scratch arena of one DP pass: three flat
// score planes (M/X/Y, rows×cols each), one merged traceback plane and
// a float64 arena for kernel-specific scratch (profile frequencies,
// expected-score tables, rolling rows).
//
// A Workspace is not safe for concurrent use; borrow one per goroutine
// with Get.
type Workspace struct {
	// MP, XP, YP are the match / gap-in-B / gap-in-A score planes,
	// indexed with At. Valid up to rows*cols after Reserve.
	MP, XP, YP []float64
	// MI, XI, YI are the scaled-integer score planes used by the
	// striped int16 kernels in internal/dpkern, indexed with At.
	// Valid up to rows*cols after ReserveInt.
	MI, XI, YI []int16
	// TB is the merged traceback plane, one packed byte per cell
	// (see PackTB). Not zeroed between borrows.
	TB []byte

	rows, cols int

	aux      []float64
	auxOff   int
	aux16    []int16
	aux16Off int
	auxB     []byte
	auxBOff  int
	auxI     []int32
	auxIOff  int
}

func (w *Workspace) resetAux() {
	w.auxOff, w.aux16Off, w.auxBOff, w.auxIOff = 0, 0, 0, 0
}

// Reserve sizes all four planes for a rows×cols affine-gap DP and
// resets the scratch arena. Backing arrays grow in place (never
// shrink), so repeated borrows of similar sizes allocate nothing.
func (w *Workspace) Reserve(rows, cols int) {
	n := rows * cols
	w.MP = growF(w.MP, n)
	w.XP = growF(w.XP, n)
	w.YP = growF(w.YP, n)
	if cap(w.TB) < n {
		w.TB = make([]byte, n)
	}
	w.TB = w.TB[:n]
	w.MI, w.XI, w.YI = w.MI[:0], w.XI[:0], w.YI[:0]
	w.rows, w.cols = rows, cols
	w.resetAux()
}

// ReserveInt sizes the three int16 planes plus the traceback plane for a
// rows×cols scaled-integer affine-gap DP (see internal/dpkern), leaving
// the float64 planes at zero length. At/Rows/Cols index the int16 planes
// exactly as they do the float64 ones after Reserve, so traceback code is
// shared between kernel families.
func (w *Workspace) ReserveInt(rows, cols int) {
	n := rows * cols
	w.MI = growI16(w.MI, n)
	w.XI = growI16(w.XI, n)
	w.YI = growI16(w.YI, n)
	if cap(w.TB) < n {
		w.TB = make([]byte, n)
	}
	w.TB = w.TB[:n]
	w.MP, w.XP, w.YP = w.MP[:0], w.XP[:0], w.YP[:0]
	w.rows, w.cols = rows, cols
	w.resetAux()
}

// ReserveScore sizes only the MP plane (rows×cols) for single-plane
// kernels — linear-gap DP, score-only rolling rows — leaving XP/YP/TB
// at zero length so a score-only borrow commits one float64 per cell,
// not four planes.
func (w *Workspace) ReserveScore(rows, cols int) {
	w.MP = growF(w.MP, rows*cols)
	w.XP = w.XP[:0]
	w.YP = w.YP[:0]
	w.TB = w.TB[:0]
	w.MI, w.XI, w.YI = w.MI[:0], w.XI[:0], w.YI[:0]
	w.rows, w.cols = rows, cols
	w.resetAux()
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI16(s []int16, n int) []int16 {
	if cap(s) < n {
		return make([]int16, n)
	}
	return s[:n]
}

// Rows returns the reserved row count.
func (w *Workspace) Rows() int { return w.rows }

// Cols returns the reserved column count (the flat-index stride).
func (w *Workspace) Cols() int { return w.cols }

// At returns the flat index of cell (i, j).
func (w *Workspace) At(i, j int) int { return i*w.cols + j }

// Floats hands out a zeroed length-n slice from the workspace's scratch
// arena. Slices stay valid until the next Reserve; when the arena must
// grow, previously handed-out slices keep their (old) backing array, so
// a borrow may mix slices from two backings — callers never notice.
func (w *Workspace) Floats(n int) []float64 {
	if w.auxOff+n > len(w.aux) {
		w.aux = make([]float64, 2*len(w.aux)+n)
		w.auxOff = 0
	}
	s := w.aux[w.auxOff : w.auxOff+n : w.auxOff+n]
	w.auxOff += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// Int16s hands out a zeroed length-n int16 slice from the workspace's
// scratch arena, with the same lifetime rules as Floats. Used by the
// dpkern query-profile tables.
func (w *Workspace) Int16s(n int) []int16 {
	if w.aux16Off+n > len(w.aux16) {
		w.aux16 = make([]int16, 2*len(w.aux16)+n)
		w.aux16Off = 0
	}
	s := w.aux16[w.aux16Off : w.aux16Off+n : w.aux16Off+n]
	w.aux16Off += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// Bytes hands out a zeroed length-n byte slice from the workspace's
// scratch arena, with the same lifetime rules as Floats. Used for
// residue-row maps in the dpkern kernels.
func (w *Workspace) Bytes(n int) []byte {
	if w.auxBOff+n > len(w.auxB) {
		w.auxB = make([]byte, 2*len(w.auxB)+n)
		w.auxBOff = 0
	}
	s := w.auxB[w.auxBOff : w.auxBOff+n : w.auxBOff+n]
	w.auxBOff += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// Ints hands out a zeroed length-n int32 slice from the workspace's
// scratch arena, with the same lifetime rules as Floats. Used for the
// sparse nonzero-residue index lists of the profile PSP scorer.
func (w *Workspace) Ints(n int) []int32 {
	if w.auxIOff+n > len(w.auxI) {
		w.auxI = make([]int32, 2*len(w.auxI)+n)
		w.auxIOff = 0
	}
	s := w.auxI[w.auxIOff : w.auxIOff+n : w.auxIOff+n]
	w.auxIOff += n
	for i := range s {
		s[i] = 0
	}
	return s
}

var pool = sync.Pool{New: func() any { return new(Workspace) }}

// Get borrows a workspace from the pool sized for a rows×cols DP.
// Return it with Put when the kernel is done (after copying out any
// results that alias workspace memory).
func Get(rows, cols int) *Workspace {
	w := pool.Get().(*Workspace)
	w.Reserve(rows, cols)
	return w
}

// GetScore borrows a workspace with only the MP plane sized (see
// ReserveScore). Return it with Put.
func GetScore(rows, cols int) *Workspace {
	w := pool.Get().(*Workspace)
	w.ReserveScore(rows, cols)
	return w
}

// GetInt borrows a workspace with the int16 planes plus traceback sized
// (see ReserveInt). Return it with Put.
func GetInt(rows, cols int) *Workspace {
	w := pool.Get().(*Workspace)
	w.ReserveInt(rows, cols)
	return w
}

// GetRaw borrows a workspace without reserving any planes; the caller
// must call one of the Reserve variants before using it. Lets routing
// code pick the plane family (float64 vs int16) after borrowing.
func GetRaw() *Workspace {
	return pool.Get().(*Workspace)
}

// Put returns a workspace to the pool. The caller must not touch the
// workspace (or slices obtained from Floats) afterwards.
func Put(w *Workspace) { pool.Put(w) }
