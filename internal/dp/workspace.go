// Package dp provides pooled, reusable scratch memory for the
// dynamic-programming alignment kernels in internal/pairwise,
// internal/profile and internal/mafft.
//
// A progressive alignment of a large bucket performs thousands of DP
// passes, and allocating three O(n·m) float64 score planes plus
// traceback arrays per pass makes the allocator and GC a first-order
// cost. A Workspace holds all of that scratch as flat backing arrays
// that grow in place and are recycled through a sync.Pool: a kernel
// borrows with Get, fills the planes it needs, and returns the
// workspace with Put, so steady-state kernels run allocation-free.
//
// The three per-state traceback arrays of the classic affine-gap
// formulation are merged into a single byte plane: each cell packs the
// M-, X- and Y-state predecessors into three 2-bit fields (PackTB /
// TBM / TBX / TBY), cutting traceback memory threefold and halving the
// number of backing arrays.
//
// Kernels must write every cell they later read (score planes are not
// zeroed between borrows); all kernels in this repository initialise
// their boundaries and fill their band/interior before tracing back,
// so recycled garbage is never observed.
package dp

import "sync"

// Traceback states shared by every affine-gap kernel: which DP plane a
// cell's best predecessor lives in. Stop marks the start of a fresh
// local alignment (Smith-Waterman).
const (
	M byte = iota
	X
	Y
	Stop
)

// PackTB packs the three per-plane predecessor states of one cell into
// a single byte (2 bits each).
func PackTB(m, x, y byte) byte { return m | x<<2 | y<<4 }

// TBM extracts the M-plane predecessor from a packed traceback byte.
func TBM(b byte) byte { return b & 3 }

// TBX extracts the X-plane predecessor from a packed traceback byte.
func TBX(b byte) byte { return (b >> 2) & 3 }

// TBY extracts the Y-plane predecessor from a packed traceback byte.
func TBY(b byte) byte { return (b >> 4) & 3 }

// Workspace is the reusable scratch arena of one DP pass: three flat
// score planes (M/X/Y, rows×cols each), one merged traceback plane and
// a float64 arena for kernel-specific scratch (profile frequencies,
// expected-score tables, rolling rows).
//
// A Workspace is not safe for concurrent use; borrow one per goroutine
// with Get.
type Workspace struct {
	// MP, XP, YP are the match / gap-in-B / gap-in-A score planes,
	// indexed with At. Valid up to rows*cols after Reserve.
	MP, XP, YP []float64
	// TB is the merged traceback plane, one packed byte per cell
	// (see PackTB). Not zeroed between borrows.
	TB []byte

	rows, cols int

	aux    []float64
	auxOff int
}

// Reserve sizes all four planes for a rows×cols affine-gap DP and
// resets the scratch arena. Backing arrays grow in place (never
// shrink), so repeated borrows of similar sizes allocate nothing.
func (w *Workspace) Reserve(rows, cols int) {
	n := rows * cols
	w.MP = growF(w.MP, n)
	w.XP = growF(w.XP, n)
	w.YP = growF(w.YP, n)
	if cap(w.TB) < n {
		w.TB = make([]byte, n)
	}
	w.TB = w.TB[:n]
	w.rows, w.cols = rows, cols
	w.auxOff = 0
}

// ReserveScore sizes only the MP plane (rows×cols) for single-plane
// kernels — linear-gap DP, score-only rolling rows — leaving XP/YP/TB
// at zero length so a score-only borrow commits one float64 per cell,
// not four planes.
func (w *Workspace) ReserveScore(rows, cols int) {
	w.MP = growF(w.MP, rows*cols)
	w.XP = w.XP[:0]
	w.YP = w.YP[:0]
	w.TB = w.TB[:0]
	w.rows, w.cols = rows, cols
	w.auxOff = 0
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Rows returns the reserved row count.
func (w *Workspace) Rows() int { return w.rows }

// Cols returns the reserved column count (the flat-index stride).
func (w *Workspace) Cols() int { return w.cols }

// At returns the flat index of cell (i, j).
func (w *Workspace) At(i, j int) int { return i*w.cols + j }

// Floats hands out a zeroed length-n slice from the workspace's scratch
// arena. Slices stay valid until the next Reserve; when the arena must
// grow, previously handed-out slices keep their (old) backing array, so
// a borrow may mix slices from two backings — callers never notice.
func (w *Workspace) Floats(n int) []float64 {
	if w.auxOff+n > len(w.aux) {
		w.aux = make([]float64, 2*len(w.aux)+n)
		w.auxOff = 0
	}
	s := w.aux[w.auxOff : w.auxOff+n : w.auxOff+n]
	w.auxOff += n
	for i := range s {
		s[i] = 0
	}
	return s
}

var pool = sync.Pool{New: func() any { return new(Workspace) }}

// Get borrows a workspace from the pool sized for a rows×cols DP.
// Return it with Put when the kernel is done (after copying out any
// results that alias workspace memory).
func Get(rows, cols int) *Workspace {
	w := pool.Get().(*Workspace)
	w.Reserve(rows, cols)
	return w
}

// GetScore borrows a workspace with only the MP plane sized (see
// ReserveScore). Return it with Put.
func GetScore(rows, cols int) *Workspace {
	w := pool.Get().(*Workspace)
	w.ReserveScore(rows, cols)
	return w
}

// Put returns a workspace to the pool. The caller must not touch the
// workspace (or slices obtained from Floats) afterwards.
func Put(w *Workspace) { pool.Put(w) }
