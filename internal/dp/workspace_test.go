package dp

import (
	"sync"
	"testing"
)

func TestPackTBRoundTrip(t *testing.T) {
	for _, m := range []byte{M, X, Y, Stop} {
		for _, x := range []byte{M, X, Y, Stop} {
			for _, y := range []byte{M, X, Y, Stop} {
				b := PackTB(m, x, y)
				if TBM(b) != m || TBX(b) != x || TBY(b) != y {
					t.Fatalf("pack(%d,%d,%d) = %08b unpacked to (%d,%d,%d)",
						m, x, y, b, TBM(b), TBX(b), TBY(b))
				}
			}
		}
	}
}

func TestReserveSizesAndIndexing(t *testing.T) {
	var w Workspace
	w.Reserve(3, 5)
	if w.Rows() != 3 || w.Cols() != 5 {
		t.Fatalf("dims %dx%d", w.Rows(), w.Cols())
	}
	if len(w.MP) != 15 || len(w.XP) != 15 || len(w.YP) != 15 || len(w.TB) != 15 {
		t.Fatalf("plane lengths %d %d %d %d", len(w.MP), len(w.XP), len(w.YP), len(w.TB))
	}
	if w.At(2, 4) != 14 || w.At(0, 0) != 0 || w.At(1, 0) != 5 {
		t.Fatalf("At broken: %d %d %d", w.At(2, 4), w.At(0, 0), w.At(1, 0))
	}
}

func TestReserveGrowsInPlace(t *testing.T) {
	var w Workspace
	w.Reserve(10, 10)
	big := &w.MP[0]
	w.Reserve(4, 4) // shrink: must reuse the same backing
	if len(w.MP) != 16 {
		t.Fatalf("len %d", len(w.MP))
	}
	if &w.MP[0] != big {
		t.Fatal("shrinking Reserve reallocated the backing array")
	}
	w.Reserve(20, 20) // grow: must reallocate
	if len(w.MP) != 400 {
		t.Fatalf("len %d", len(w.MP))
	}
}

func TestFloatsZeroedAndDisjoint(t *testing.T) {
	var w Workspace
	w.Reserve(1, 1)
	a := w.Floats(8)
	b := w.Floats(8)
	for i := range a {
		a[i] = 1
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("b[%d] = %v after writing a", i, v)
		}
	}
	// dirty both, re-Reserve, and check fresh slices are zeroed again
	for i := range b {
		b[i] = 2
	}
	w.Reserve(1, 1)
	c := w.Floats(16)
	for i, v := range c {
		if v != 0 {
			t.Fatalf("c[%d] = %v after reuse", i, v)
		}
	}
}

func TestFloatsGrowKeepsEarlierSlices(t *testing.T) {
	var w Workspace
	w.Reserve(1, 1)
	a := w.Floats(4)
	for i := range a {
		a[i] = 7
	}
	// force arena growth; a must keep its values (old backing retained)
	_ = w.Floats(1 << 16)
	for i, v := range a {
		if v != 7 {
			t.Fatalf("a[%d] = %v after arena growth", i, v)
		}
	}
}

// TestPoolConcurrent hammers Get/Put from many goroutines, each writing
// a distinct pattern and verifying it before returning the workspace.
// Run with -race to prove borrows never alias.
func TestPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				rows := 5 + g%7
				cols := 3 + iter%11
				w := Get(rows, cols)
				v := float64(g*1000 + iter)
				for i := range w.MP {
					w.MP[i] = v
					w.TB[i] = byte(g)
				}
				aux := w.Floats(64)
				for i := range aux {
					aux[i] = v
				}
				for i := range w.MP {
					if w.MP[i] != v || w.TB[i] != byte(g) {
						t.Errorf("workspace aliased across goroutines")
						break
					}
				}
				Put(w)
			}
		}(g)
	}
	wg.Wait()
}

func TestReserveScoreThenReserve(t *testing.T) {
	// A score-only borrow grows MP alone; a later full Reserve on the
	// same (pooled) workspace must still size XP/YP/TB correctly.
	var w Workspace
	w.ReserveScore(30, 30)
	if len(w.MP) != 900 || len(w.XP) != 0 || len(w.YP) != 0 || len(w.TB) != 0 {
		t.Fatalf("score reserve: MP=%d XP=%d YP=%d TB=%d", len(w.MP), len(w.XP), len(w.YP), len(w.TB))
	}
	w.Reserve(20, 20)
	if len(w.MP) != 400 || len(w.XP) != 400 || len(w.YP) != 400 || len(w.TB) != 400 {
		t.Fatalf("full reserve after score: MP=%d XP=%d YP=%d TB=%d", len(w.MP), len(w.XP), len(w.YP), len(w.TB))
	}
	for i := range w.XP {
		w.XP[i] = 1 // must not panic or alias MP
	}
	if w.MP[0] == 1 {
		t.Fatal("XP aliases MP")
	}
}
