// Package rose generates synthetic protein families the way the ROSE
// sequence generator (Stoye, Evers & Meyer 1998) does: a random ancestor
// is evolved down a random binary tree with PAM-style substitutions and
// geometric-length indels. It stands in for the paper's synthetic data
// sets (N = 5000/10000/20000, average length 300, relatedness 800).
//
// Unlike naive mutators, every residue carries a persistent site key, so
// the generator knows the *true* multiple alignment of any subset of the
// family — which is what the PREFAB-like quality benchmark needs for its
// reference alignments.
package rose

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/bio"
	"repro/internal/msa"
	"repro/internal/submat"
)

// Config parameterises a synthetic family.
type Config struct {
	// N is the number of sequences (leaves).
	N int
	// MeanLen is the ancestor length; leaf lengths drift around it.
	MeanLen int
	// Relatedness mirrors the ROSE knob the paper sets to 800. We map it
	// to root→leaf divergence as Divergence = Relatedness/1000 expected
	// substitutions per site, so 800 yields strongly diverged families
	// (pairwise leaf distance ≈ 1.6 subs/site) matching the paper's
	// "not very close to each other".
	Relatedness float64
	// IndelRate is the per-site indel event probability per unit
	// divergence (default 0.03).
	IndelRate float64
	// MeanIndelLen is the mean geometric indel length (default 2.5).
	MeanIndelLen float64
	// Seed drives all randomness; families are reproducible.
	Seed int64
}

func (c *Config) fillDefaults() error {
	if c.N < 1 {
		return fmt.Errorf("rose: N = %d", c.N)
	}
	if c.MeanLen < 1 {
		return fmt.Errorf("rose: MeanLen = %d", c.MeanLen)
	}
	if c.Relatedness <= 0 {
		c.Relatedness = 800
	}
	if c.IndelRate <= 0 {
		c.IndelRate = 0.03
	}
	if c.MeanIndelLen <= 0 {
		c.MeanIndelLen = 2.5
	}
	return nil
}

// site is one residue with its immortal alignment key. Keys order sites
// globally: the true alignment of any leaf set is the sorted union of
// their keys.
type site struct {
	key float64
	res byte
}

// Family is a generated sequence family that remembers its evolution.
type Family struct {
	cfg      Config
	lineages [][]site
	seqs     []bio.Sequence
}

// Seqs returns the family's sequences (shared storage).
func (f *Family) Seqs() []bio.Sequence { return f.seqs }

// Evolve generates a family per the config.
func Evolve(cfg Config) (*Family, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ev := &evolver{
		rng:      rng,
		probs:    submat.BLOSUM62.MutationProbs(2),
		cfg:      cfg,
		lineages: make([][]site, 0, cfg.N),
	}
	root := ev.randomAncestor(cfg.MeanLen)
	divergence := cfg.Relatedness / 1000
	levels := int(math.Ceil(math.Log2(float64(cfg.N))))
	if levels < 1 {
		levels = 1
	}
	ev.perLevel = divergence / float64(levels)
	ev.evolve(root, cfg.N)

	f := &Family{cfg: cfg, lineages: ev.lineages}
	f.seqs = make([]bio.Sequence, len(ev.lineages))
	for i, lin := range ev.lineages {
		data := make([]byte, len(lin))
		for j, s := range lin {
			data[j] = s.res
		}
		f.seqs[i] = bio.Sequence{ID: fmt.Sprintf("seq%04d", i), Data: data}
	}
	return f, nil
}

type evolver struct {
	rng      *rand.Rand
	probs    [][]float64
	cfg      Config
	perLevel float64
	lineages [][]site
	nextKey  float64
}

// keySpacing leaves room for ~50 nested insertions between root sites
// before float64 precision matters.
const keySpacing = 1 << 20

func (e *evolver) randomAncestor(n int) []site {
	anc := make([]site, n)
	for i := range anc {
		anc[i] = site{key: float64(i+1) * keySpacing, res: e.randomResidue()}
	}
	e.nextKey = float64(n+1) * keySpacing
	return anc
}

func (e *evolver) randomResidue() byte {
	r := e.rng.Float64()
	acc := 0.0
	for i := 0; i < 20; i++ {
		acc += submat.BackgroundFreq(i)
		if r < acc {
			return bio.AminoAcids.Letter(i)
		}
	}
	return bio.AminoAcids.Letter(19)
}

// evolve recursively splits n leaves between two children, mutating a
// copy of the parent along each branch.
func (e *evolver) evolve(seq []site, n int) {
	if n == 1 {
		e.lineages = append(e.lineages, seq)
		return
	}
	nl := 1 + e.rng.Intn(n-1)
	nr := n - nl
	left := e.mutate(seq, e.perLevel)
	right := e.mutate(seq, e.perLevel)
	e.evolve(left, nl)
	e.evolve(right, nr)
}

// mutate applies substitutions and indels for a branch of the given
// divergence (expected substitutions per site).
func (e *evolver) mutate(seq []site, t float64) []site {
	pSub := 1 - math.Exp(-t)
	pIndel := e.cfg.IndelRate * t
	out := make([]site, 0, len(seq)+4)
	for i := 0; i < len(seq); i++ {
		s := seq[i]
		r := e.rng.Float64()
		switch {
		case r < pIndel/2:
			// deletion of a short run starting here
			runLen := e.geomLen()
			i += runLen - 1 // skip run (loop increments once more)
			continue
		case r < pIndel:
			// insertion before this site
			runLen := e.geomLen()
			prevKey := 0.0
			if len(out) > 0 {
				prevKey = out[len(out)-1].key
			}
			for k := 0; k < runLen; k++ {
				key := e.insertKey(prevKey, s.key)
				out = append(out, site{key: key, res: e.randomResidue()})
				prevKey = key
			}
		}
		if e.rng.Float64() < pSub {
			s.res = e.substitute(s.res)
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		// pathological total deletion: keep one random residue so the
		// sequence stays alignable
		out = append(out, site{key: e.freshKey(), res: e.randomResidue()})
	}
	return out
}

func (e *evolver) geomLen() int {
	// geometric with mean MeanIndelLen
	p := 1 / e.cfg.MeanIndelLen
	n := 1
	for e.rng.Float64() > p && n < 50 {
		n++
	}
	return n
}

func (e *evolver) insertKey(lo, hi float64) float64 {
	if hi <= lo {
		return e.freshKey()
	}
	return lo + (hi-lo)/2
}

func (e *evolver) freshKey() float64 {
	e.nextKey += keySpacing
	return e.nextKey
}

func (e *evolver) substitute(res byte) byte {
	i := bio.AminoAcids.Index(res)
	if i < 0 {
		return res
	}
	r := e.rng.Float64()
	acc := 0.0
	for j, p := range e.probs[i] {
		acc += p
		if r < acc {
			return bio.AminoAcids.Letter(j)
		}
	}
	return res
}

// TrueAlignment reconstructs the true multiple alignment of the leaves
// with the given indices (nil means all leaves): sites are placed in
// global key order; a leaf lacking a site shows a gap.
func (f *Family) TrueAlignment(indices []int) (*msa.Alignment, error) {
	if indices == nil {
		indices = make([]int, len(f.lineages))
		for i := range indices {
			indices[i] = i
		}
	}
	// collect the union of keys
	keySet := map[float64]bool{}
	for _, idx := range indices {
		if idx < 0 || idx >= len(f.lineages) {
			return nil, fmt.Errorf("rose: leaf index %d out of range", idx)
		}
		for _, s := range f.lineages[idx] {
			keySet[s.key] = true
		}
	}
	keys := make([]float64, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	colOf := make(map[float64]int, len(keys))
	for c, k := range keys {
		colOf[k] = c
	}
	aln := &msa.Alignment{Seqs: make([]bio.Sequence, len(indices))}
	for out, idx := range indices {
		row := make([]byte, len(keys))
		for i := range row {
			row[i] = bio.Gap
		}
		for _, s := range f.lineages[idx] {
			row[colOf[s.key]] = s.res
		}
		aln.Seqs[out] = bio.Sequence{ID: f.seqs[idx].ID, Data: row}
	}
	return aln, nil
}

// Uniform generates n completely unrelated random sequences of the given
// mean length — the null model used by ablation benches.
func Uniform(n, meanLen int, seed int64) []bio.Sequence {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bio.Sequence, n)
	for i := range out {
		length := meanLen/2 + rng.Intn(meanLen+1)
		data := make([]byte, length)
		for j := range data {
			acc, r := 0.0, rng.Float64()
			data[j] = bio.AminoAcids.Letter(19)
			for k := 0; k < 20; k++ {
				acc += submat.BackgroundFreq(k)
				if r < acc {
					data[j] = bio.AminoAcids.Letter(k)
					break
				}
			}
		}
		out[i] = bio.Sequence{ID: fmt.Sprintf("rnd%04d", i), Data: data}
	}
	return out
}
