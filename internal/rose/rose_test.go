package rose

import (
	"math"
	"testing"

	"repro/internal/bio"
	"repro/internal/kmer"
	"repro/internal/msa"
)

func TestEvolveBasicShape(t *testing.T) {
	f, err := Evolve(Config{N: 50, MeanLen: 120, Relatedness: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqs := f.Seqs()
	if len(seqs) != 50 {
		t.Fatalf("%d sequences", len(seqs))
	}
	mean := bio.MeanLen(seqs)
	if mean < 60 || mean > 240 {
		t.Fatalf("mean length %g drifted too far from 120", mean)
	}
	for _, s := range seqs {
		if err := s.Validate(bio.AminoAcids); err != nil {
			t.Fatal(err)
		}
		if s.Len() == 0 {
			t.Fatalf("%s is empty", s.ID)
		}
	}
}

func TestEvolveDeterministic(t *testing.T) {
	a, _ := Evolve(Config{N: 10, MeanLen: 50, Seed: 42})
	b, _ := Evolve(Config{N: 10, MeanLen: 50, Seed: 42})
	for i := range a.Seqs() {
		if !bio.Equal(a.Seqs()[i], b.Seqs()[i]) {
			t.Fatalf("seed 42 not reproducible at %d", i)
		}
	}
	c, _ := Evolve(Config{N: 10, MeanLen: 50, Seed: 43})
	same := true
	for i := range a.Seqs() {
		if !bio.Equal(a.Seqs()[i], c.Seqs()[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical families")
	}
}

func TestEvolveValidation(t *testing.T) {
	if _, err := Evolve(Config{N: 0, MeanLen: 10}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Evolve(Config{N: 5, MeanLen: 0}); err == nil {
		t.Error("MeanLen=0 accepted")
	}
}

func TestRelatednessControlsDivergence(t *testing.T) {
	counter := kmer.MustCounter(bio.Dayhoff6, 4)
	meanDist := func(relatedness float64) float64 {
		f, err := Evolve(Config{N: 20, MeanLen: 150, Relatedness: relatedness, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		profiles := counter.Profiles(f.Seqs(), 0)
		m := kmer.DistanceMatrix(profiles, 0)
		var sum float64
		var cnt int
		for i := 0; i < m.N; i++ {
			for j := i + 1; j < m.N; j++ {
				sum += m.At(i, j)
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	low := meanDist(100)  // closely related
	high := meanDist(900) // divergent
	if low >= high {
		t.Fatalf("relatedness knob inverted: d(100)=%g >= d(900)=%g", low, high)
	}
}

func TestTrueAlignmentInvariants(t *testing.T) {
	f, err := Evolve(Config{N: 12, MeanLen: 80, Relatedness: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := f.TrueAlignment(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := aln.Validate(); err != nil {
		t.Fatal(err)
	}
	// ungapping the true alignment recovers the sequences
	for i, s := range aln.Seqs {
		if string(bio.Ungap(s.Data)) != f.Seqs()[i].String() {
			t.Fatalf("row %d does not ungap to its sequence", i)
		}
	}
}

func TestTrueAlignmentSubset(t *testing.T) {
	f, err := Evolve(Config{N: 8, MeanLen: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := f.TrueAlignment([]int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if aln.NumSeqs() != 2 {
		t.Fatalf("%d rows", aln.NumSeqs())
	}
	if err := aln.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.TrueAlignment([]int{99}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestTrueAlignmentIsConsistent(t *testing.T) {
	// Q score of the true alignment against itself must be 1; and the
	// pairwise projection of the full true alignment must agree with the
	// direct pairwise true alignment.
	f, err := Evolve(Config{N: 6, MeanLen: 70, Relatedness: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	full, err := f.TrueAlignment(nil)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := f.TrueAlignment([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	q, err := msa.QScore(full, pair)
	if err != nil {
		t.Fatal(err)
	}
	if q != 1 {
		t.Fatalf("true alignment projection Q = %g, want 1", q)
	}
}

func TestProgressiveRecoversTrueAlignmentOnCloseFamily(t *testing.T) {
	// For a gently diverged family, the MUSCLE-like aligner should get
	// most reference pairs right — sanity that generator and aligner
	// speak the same language.
	f, err := Evolve(Config{N: 8, MeanLen: 100, Relatedness: 150, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := f.TrueAlignment([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	test, err := msa.MuscleLike(0).Align(f.Seqs())
	if err != nil {
		t.Fatal(err)
	}
	q, err := msa.QScore(test, ref)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.5 {
		t.Fatalf("Q = %g on a mildly diverged family", q)
	}
}

func TestUniform(t *testing.T) {
	seqs := Uniform(30, 100, 9)
	if len(seqs) != 30 {
		t.Fatalf("%d sequences", len(seqs))
	}
	var mean float64
	for _, s := range seqs {
		if err := s.Validate(bio.AminoAcids); err != nil {
			t.Fatal(err)
		}
		mean += float64(s.Len())
	}
	mean /= 30
	if math.Abs(mean-100) > 40 {
		t.Fatalf("mean length %g", mean)
	}
}
