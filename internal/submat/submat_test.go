package submat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bio"
)

func TestBLOSUM62KnownValues(t *testing.T) {
	cases := []struct {
		a, b byte
		want float64
	}{
		{'A', 'A', 4}, {'W', 'W', 11}, {'C', 'C', 9},
		{'A', 'R', -1}, {'W', 'D', -4}, {'I', 'V', 3},
		{'H', 'Y', 2}, {'P', 'P', 7}, {'G', 'G', 6},
	}
	for _, c := range cases {
		if got := BLOSUM62.Score(c.a, c.b); got != c.want {
			t.Errorf("BLOSUM62(%c,%c) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestBLOSUM62Symmetric(t *testing.T) {
	letters := bio.AminoAcids.Letters()
	for _, a := range letters {
		for _, b := range letters {
			if BLOSUM62.Score(a, b) != BLOSUM62.Score(b, a) {
				t.Fatalf("asymmetric at (%c,%c)", a, b)
			}
		}
	}
}

func TestBLOSUM62DiagonalDominant(t *testing.T) {
	// Identity scores are the row maximum for every residue: aligning a
	// residue to itself is never worse than substituting it.
	letters := bio.AminoAcids.Letters()
	for _, a := range letters {
		self := BLOSUM62.Score(a, a)
		for _, b := range letters {
			if a != b && BLOSUM62.Score(a, b) >= self {
				t.Errorf("S(%c,%c)=%g >= S(%c,%c)=%g",
					a, b, BLOSUM62.Score(a, b), a, a, self)
			}
		}
	}
}

func TestUnknownBytes(t *testing.T) {
	if got := BLOSUM62.Score('A', '?'); got != BLOSUM62.Unknown() {
		t.Errorf("unknown byte score = %g", got)
	}
	if got := BLOSUM62.Score('-', '-'); got != BLOSUM62.Unknown() {
		t.Errorf("gap byte score = %g", got)
	}
}

func TestMinMax(t *testing.T) {
	if BLOSUM62.Max() != 11 {
		t.Errorf("max = %g, want 11 (W/W)", BLOSUM62.Max())
	}
	if BLOSUM62.Min() != -4 {
		t.Errorf("min = %g, want -4", BLOSUM62.Min())
	}
}

func TestDNASimple(t *testing.T) {
	if DNASimple.Score('A', 'A') != 5 || DNASimple.Score('A', 'G') != -4 {
		t.Error("DNA match/mismatch scores wrong")
	}
}

func TestMutationProbsStochastic(t *testing.T) {
	for _, temp := range []float64{0.5, 1, 2, 5} {
		probs := BLOSUM62.MutationProbs(temp)
		for i, row := range probs {
			var sum float64
			for _, p := range row {
				if p < 0 {
					t.Fatalf("negative probability at row %d", i)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("row %d sums to %g at t=%g", i, sum, temp)
			}
		}
	}
}

func TestMutationProbsSelfEnriched(t *testing.T) {
	// At native temperature every residue is more likely to stay itself
	// than its background frequency alone would predict — this is what the
	// positive BLOSUM diagonal encodes. (Note the strictly-most-likely
	// outcome can be another residue with a large background frequency,
	// e.g. M→L, so we test enrichment, not argmax.)
	probs := BLOSUM62.MutationProbs(1)
	for i, row := range probs {
		if row[i] <= BackgroundFreq(i) {
			t.Errorf("row %d: self-probability %g not enriched over background %g",
				i, row[i], BackgroundFreq(i))
		}
	}
}

func TestMutationProbsTemperatureFlattens(t *testing.T) {
	cold := BLOSUM62.MutationProbs(1)
	hot := BLOSUM62.MutationProbs(10)
	for i := range cold {
		if hot[i][i] >= cold[i][i] {
			t.Errorf("row %d: hot self-probability %g >= cold %g",
				i, hot[i][i], cold[i][i])
		}
	}
}

func TestNewPanicsOnAsymmetry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for asymmetric table")
		}
	}()
	bad := dnaTable(1, -1)
	bad[0][1] = 7
	New("bad", bio.DNA, bad, 0)
}

func TestScoreIdxMatchesScore(t *testing.T) {
	f := func(x, y uint8) bool {
		i := int(x) % 20
		j := int(y) % 20
		a := bio.AminoAcids.Letter(i)
		b := bio.AminoAcids.Letter(j)
		return BLOSUM62.ScoreIdx(i, j) == BLOSUM62.Score(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBackgroundFreqsSumToOne(t *testing.T) {
	var sum float64
	for i := 0; i < 20; i++ {
		sum += BackgroundFreq(i)
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("background frequencies sum to %g", sum)
	}
}
