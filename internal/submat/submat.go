// Package submat provides residue substitution matrices (BLOSUM62, a DNA
// match/mismatch matrix), affine gap-penalty models, and mutation
// probabilities derived from the log-odds scores for use by the synthetic
// sequence evolvers.
package submat

import (
	"fmt"
	"math"

	"repro/internal/bio"
)

// Matrix is a symmetric residue substitution score matrix over an
// alphabet, with a fixed penalty for scoring against any byte outside the
// alphabet (ambiguity codes and the like).
type Matrix struct {
	name     string
	alpha    *bio.Alphabet
	scores   [][]float64
	unknown  float64
	min, max float64
}

// New builds a Matrix from a dense score table in alphabet letter order.
// It panics if the table shape does not match the alphabet; matrices are
// package-level constants.
func New(name string, alpha *bio.Alphabet, table [][]float64, unknown float64) *Matrix {
	n := alpha.Len()
	if len(table) != n {
		panic(fmt.Sprintf("submat: %s: %d rows for %d-letter alphabet", name, len(table), n))
	}
	m := &Matrix{name: name, alpha: alpha, scores: table, unknown: unknown}
	m.min, m.max = math.Inf(1), math.Inf(-1)
	for i, row := range table {
		if len(row) != n {
			panic(fmt.Sprintf("submat: %s: row %d has %d cols", name, i, len(row)))
		}
		for j, v := range row {
			if math.Abs(v-table[j][i]) > 1e-9 {
				panic(fmt.Sprintf("submat: %s: asymmetric at (%d,%d)", name, i, j))
			}
			if v < m.min {
				m.min = v
			}
			if v > m.max {
				m.max = v
			}
		}
	}
	return m
}

// Name returns the matrix name.
func (m *Matrix) Name() string { return m.name }

// Alphabet returns the matrix's residue alphabet.
func (m *Matrix) Alphabet() *bio.Alphabet { return m.alpha }

// Score returns the substitution score for residue bytes a and b.
// Any byte outside the alphabet scores m.Unknown().
func (m *Matrix) Score(a, b byte) float64 {
	i, j := m.alpha.Index(a), m.alpha.Index(b)
	if i < 0 || j < 0 {
		return m.unknown
	}
	return m.scores[i][j]
}

// ScoreIdx returns the substitution score by alphabet indices. Both
// indices must be valid.
func (m *Matrix) ScoreIdx(i, j int) float64 { return m.scores[i][j] }

// Unknown returns the score used for bytes outside the alphabet.
func (m *Matrix) Unknown() float64 { return m.unknown }

// Min and Max return the extreme scores in the matrix.
func (m *Matrix) Min() float64 { return m.min }
func (m *Matrix) Max() float64 { return m.max }

// Gap holds affine gap penalties expressed as non-negative costs: opening
// a gap costs Open, each residue in it costs Extend more.
type Gap struct {
	Open   float64
	Extend float64
}

// DefaultProteinGap matches common profile-alignment practice with
// BLOSUM62-scaled scores.
var DefaultProteinGap = Gap{Open: 11, Extend: 1}

// DefaultDNAGap is a standard nucleotide gap model.
var DefaultDNAGap = Gap{Open: 10, Extend: 0.5}

// blosum62 in ARNDCQEGHILKMFPSTWYV order (half-bit scores).
var blosum62 = [][]float64{
	{4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0},
	{-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3},
	{-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3},
	{-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3},
	{0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1},
	{-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2},
	{-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2},
	{0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3},
	{-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3},
	{-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3},
	{-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1},
	{-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2},
	{-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1},
	{-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1},
	{-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2},
	{1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2},
	{0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0},
	{-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3},
	{-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1},
	{0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4},
}

// BLOSUM62 is the standard protein substitution matrix in half-bit units.
var BLOSUM62 = New("BLOSUM62", bio.AminoAcids, blosum62, -4)

// DNASimple scores +5 for a match and -4 for a mismatch (BLAST defaults).
var DNASimple = New("DNA+5/-4", bio.DNA, dnaTable(5, -4), -4)

func dnaTable(match, mismatch float64) [][]float64 {
	t := make([][]float64, 4)
	for i := range t {
		t[i] = make([]float64, 4)
		for j := range t[i] {
			if i == j {
				t[i][j] = match
			} else {
				t[i][j] = mismatch
			}
		}
	}
	return t
}

// robinsonFreqs are the Robinson & Robinson background amino-acid
// frequencies in AminoAcids letter order; used to invert the log-odds.
var robinsonFreqs = [20]float64{
	0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295, 0.07377,
	0.02199, 0.05142, 0.09019, 0.05744, 0.02243, 0.03856, 0.05203, 0.07120,
	0.05841, 0.01330, 0.03216, 0.06441,
}

// BackgroundFreq returns the background frequency of the amino acid at
// alphabet index i.
func BackgroundFreq(i int) float64 { return robinsonFreqs[i] }

// MutationProbs derives a row-stochastic substitution probability table
// from the matrix's half-bit log-odds scores:
//
//	P(a→b) ∝ p_b · 2^(S(a,b)/2)
//
// which inverts the BLOSUM construction S = 2·log2(P_ab/(p_a·p_b)).
// The temperature t scales divergence: larger t flattens the rows toward
// the background distribution (more divergent evolution), t=1 recovers
// the matrix's native target frequencies.
func (m *Matrix) MutationProbs(t float64) [][]float64 {
	n := m.alpha.Len()
	probs := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		var sum float64
		for j := 0; j < n; j++ {
			w := robinsonFreqs[j%20] * math.Exp2(m.scores[i][j]/(2*t))
			row[j] = w
			sum += w
		}
		for j := range row {
			row[j] /= sum
		}
		probs[i] = row
	}
	return probs
}
