package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCtxCompletesWithoutCancel(t *testing.T) {
	var n int64
	if err := ForCtx(context.Background(), 100, 4, func(i int) {
		atomic.AddInt64(&n, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("ran %d of 100", n)
	}
}

func TestForCtxStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n int64
	err := ForCtx(ctx, 1000, 4, func(i int) {
		if atomic.AddInt64(&n, 1) == 8 {
			cancel()
		}
		time.Sleep(time.Millisecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got := atomic.LoadInt64(&n); got >= 1000 {
		t.Fatalf("cancel did not stop dispatch: ran all %d", got)
	}
}

func TestForDynamicCtxStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n int64
	err := ForDynamicCtx(ctx, 1000, 4, func(i int) {
		if atomic.AddInt64(&n, 1) == 8 {
			cancel()
		}
		time.Sleep(time.Millisecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got := atomic.LoadInt64(&n); got >= 1000 {
		t.Fatalf("cancel did not stop dispatch: ran all %d", got)
	}
}

func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n int64
	// workers==1 path
	if err := ForCtx(ctx, 50, 1, func(i int) { atomic.AddInt64(&n, 1) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n != 0 {
		t.Fatalf("pre-cancelled loop ran %d bodies", n)
	}
	if err := ForDynamicCtx(ctx, 50, 1, func(i int) { atomic.AddInt64(&n, 1) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n != 0 {
		t.Fatalf("pre-cancelled dynamic loop ran %d bodies", n)
	}
}

func TestMapCtx(t *testing.T) {
	out, err := MapCtx(context.Background(), 10, 3, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
