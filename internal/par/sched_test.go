package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// buildSumDAG registers a balanced binary reduction over n leaf values
// and returns the slot holding the root sum after Run.
func buildSumDAG(s *Sched, n int) *int64 {
	type nodeRes struct {
		id  TaskID
		val *int64
	}
	level := make([]nodeRes, n)
	for i := 0; i < n; i++ {
		v := new(int64)
		x := int64(i)
		id := s.Add(func() error {
			*v = x
			return nil
		})
		level[i] = nodeRes{id: id, val: v}
	}
	for len(level) > 1 {
		var next []nodeRes
		for i := 0; i+1 < len(level); i += 2 {
			l, r := level[i], level[i+1]
			v := new(int64)
			id := s.Add(func() error {
				*v = *l.val + *r.val
				return nil
			}, l.id, r.id)
			next = append(next, nodeRes{id: id, val: v})
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0].val
}

func TestSchedTreeReduction(t *testing.T) {
	const n = 257
	want := int64(n*(n-1)) / 2
	for _, workers := range []int{1, 2, 4, 8} {
		s := NewSched()
		root := buildSumDAG(s, n)
		if err := s.Run(context.Background(), workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if *root != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, *root, want)
		}
	}
}

func TestSchedFlatFanOut(t *testing.T) {
	var count int64
	s := NewSched()
	for i := 0; i < 200; i++ {
		s.Add(func() error {
			atomic.AddInt64(&count, 1)
			return nil
		})
	}
	if err := s.Run(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	if count != 200 {
		t.Fatalf("ran %d of 200 tasks", count)
	}
}

func TestSchedDependencyOrder(t *testing.T) {
	// A chain a -> b -> c must observe strict ordering on any worker
	// count; each task verifies its predecessor's side effect.
	for _, workers := range []int{1, 3} {
		var stage int32
		s := NewSched()
		a := s.Add(func() error {
			if !atomic.CompareAndSwapInt32(&stage, 0, 1) {
				return errors.New("a ran out of order")
			}
			return nil
		})
		b := s.Add(func() error {
			if !atomic.CompareAndSwapInt32(&stage, 1, 2) {
				return errors.New("b ran before a")
			}
			return nil
		}, a)
		s.Add(func() error {
			if !atomic.CompareAndSwapInt32(&stage, 2, 3) {
				return errors.New("c ran before b")
			}
			return nil
		}, b)
		if err := s.Run(context.Background(), workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stage != 3 {
			t.Fatalf("workers=%d: stage = %d", workers, stage)
		}
	}
}

func TestSchedErrorSkipsDependents(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran int32
		s := NewSched()
		bad := s.Add(func() error { return boom })
		s.Add(func() error {
			atomic.AddInt32(&ran, 1)
			return nil
		}, bad)
		err := s.Run(context.Background(), workers)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if ran != 0 {
			t.Fatalf("workers=%d: dependent of failed task ran", workers)
		}
	}
}

func TestSchedContextCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		s := NewSched()
		first := s.Add(func() error {
			cancel() // cancel mid-run; later tasks must stop dispatching
			return nil
		})
		for i := 0; i < 64; i++ {
			first = s.Add(func() error { return nil }, first)
		}
		if err := s.Run(ctx, workers); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestSchedEmptyAndReuse(t *testing.T) {
	s := NewSched()
	if err := s.Run(context.Background(), 4); err != nil {
		t.Fatalf("empty sched: %v", err)
	}
	s2 := NewSched()
	s2.Add(func() error { return nil })
	if err := s2.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(context.Background(), 1); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestSchedInvalidDepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("forward dependency accepted")
		}
	}()
	s := NewSched()
	s.Add(func() error { return nil }, TaskID(3))
}

func BenchmarkSchedTreeReduction(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := NewSched()
				buildSumDAG(s, 1024)
				if err := s.Run(context.Background(), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
