package par

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// TaskID identifies a task registered with a Sched. IDs are handed out
// sequentially by Add, so a task can only depend on tasks registered
// before it — which makes every Sched acyclic by construction.
type TaskID int

// Sched runs a DAG of tasks over a bounded worker pool: a task becomes
// runnable once all of its dependencies have finished, and independent
// runnable tasks execute concurrently. The post-order profile merges of
// progressive alignment are the motivating shape (disjoint guide-tree
// subtrees merge in parallel), but the scheduler is general: any
// register-then-run DAG works, including flat fan-outs (tasks with no
// dependencies).
//
// Usage: register every task with Add (dependencies must be TaskIDs
// returned by earlier Add calls), then call Run once. Task bodies
// communicate results through memory they close over; the scheduler
// guarantees a happens-before edge from each dependency's completion to
// its dependents' start, so no extra synchronisation is needed for
// dep-to-dependent hand-offs.
type Sched struct {
	tasks []schedTask
	ran   bool
}

type schedTask struct {
	fn   func() error
	deps []TaskID
}

// NewSched returns an empty scheduler.
func NewSched() *Sched { return &Sched{} }

// Add registers a task that runs after all deps have completed and
// returns its TaskID. Deps must have been returned by earlier Add calls
// on the same Sched; anything else panics (a programming error, like an
// out-of-range slice index).
func (s *Sched) Add(fn func() error, deps ...TaskID) TaskID {
	id := TaskID(len(s.tasks))
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("par: task %d depends on invalid task %d", id, d))
		}
	}
	s.tasks = append(s.tasks, schedTask{fn: fn, deps: deps})
	return id
}

// Len returns the number of registered tasks.
func (s *Sched) Len() int { return len(s.tasks) }

// Run executes the DAG on `workers` workers (<= 0 selects
// DefaultWorkers) and blocks until every task has finished, a task
// returns an error, or ctx is cancelled. The first task error is
// returned and no new tasks start after it (already-running tasks finish
// first); dependents of a failed task never run. On cancellation Run
// stops dispatching and returns ctx.Err() — like ForCtx, a cancelled
// context is reported even when every task happened to finish first.
// Run may be called once.
//
// With workers == 1 the DAG runs inline on the calling goroutine in
// deterministic topological (registration) order.
func (s *Sched) Run(ctx context.Context, workers int) error {
	if s.ran {
		return fmt.Errorf("par: Sched.Run called twice")
	}
	s.ran = true
	n := len(s.tasks)
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}

	waits := make([]int32, n)
	dependents := make([][]int, n)
	for i, t := range s.tasks {
		waits[i] = int32(len(t.deps))
		for _, d := range t.deps {
			dependents[d] = append(dependents[d], i)
		}
	}

	if workers == 1 {
		return s.runSerial(ctx, waits, dependents)
	}

	// Deps only point backwards, so the DAG always drains: `ready` never
	// needs more capacity than n and sends below never block.
	ready := make(chan int, n)
	for i := range s.tasks {
		if waits[i] == 0 {
			ready <- i
		}
	}
	var (
		stop     = make(chan struct{})
		stopOnce sync.Once
		mu       sync.Mutex
		firstErr error
		pending  = int64(n)
		wg       sync.WaitGroup
	)
	halt := func(err error) {
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		stopOnce.Do(func() { close(stop) })
	}
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-done:
					halt(nil) // Run reports ctx.Err()
					return
				case i := <-ready:
					// Prefer stopping over starting yet another task when
					// both channels are readable.
					select {
					case <-stop:
						return
					default:
					}
					if err := s.tasks[i].fn(); err != nil {
						halt(err)
						return
					}
					for _, d := range dependents[i] {
						if atomic.AddInt32(&waits[d], -1) == 0 {
							ready <- d
						}
					}
					if atomic.AddInt64(&pending, -1) == 0 {
						halt(nil)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// runSerial drains the DAG inline: FIFO over the ready queue, which for
// backward-only dependencies is a topological order of the registration
// sequence.
func (s *Sched) runSerial(ctx context.Context, waits []int32, dependents [][]int) error {
	n := len(s.tasks)
	ready := make([]int, 0, n)
	for i := range s.tasks {
		if waits[i] == 0 {
			ready = append(ready, i)
		}
	}
	done := ctx.Done()
	for k := 0; k < len(ready); k++ {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		i := ready[k]
		if err := s.tasks[i].fn(); err != nil {
			return err
		}
		for _, d := range dependents[i] {
			waits[d]--
			if waits[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if len(ready) != n {
		return fmt.Errorf("par: sched finished with %d of %d tasks unreachable", n-len(ready), n)
	}
	return ctx.Err()
}
