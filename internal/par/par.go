// Package par provides the small shared-memory parallelism helpers used
// by the compute kernels: a parallel for-loop over an index range and a
// bounded worker pool. Distribution across "cluster nodes" is the job of
// internal/mpi; par only exploits the cores inside one node.
package par

import (
	"runtime"
	"sync"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// For runs body(i) for every i in [0,n) using the given number of
// workers. Indices are handed out in contiguous blocks to preserve cache
// locality. For blocks until every call returns. workers <= 0 selects
// DefaultWorkers(); n <= 0 is a no-op.
func For(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForDynamic is like For but hands out indices one at a time from a
// shared counter, which balances load when per-index cost varies wildly
// (for example, distance-matrix rows of decreasing length).
func ForDynamic(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	next := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				body(i)
			}
		}()
	}
	wg.Wait()
}

// Map applies f to every element index of a length-n virtual slice and
// collects results in order.
func Map[T any](n, workers int, f func(i int) T) []T {
	out := make([]T, n)
	For(n, workers, func(i int) { out[i] = f(i) })
	return out
}
