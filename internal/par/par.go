// Package par provides the small shared-memory parallelism helpers used
// by the compute kernels: a parallel for-loop over an index range and a
// bounded worker pool. Distribution across "cluster nodes" is the job of
// internal/mpi; par only exploits the cores inside one node.
//
// The *Ctx variants stop dispatching new indices once their context is
// cancelled and return the context's error; already-running body calls
// finish first, so bodies never observe a half-cancelled loop.
package par

import (
	"context"
	"runtime"
	"sync"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// For runs body(i) for every i in [0,n) using the given number of
// workers. Indices are handed out in contiguous blocks to preserve cache
// locality. For blocks until every call returns. workers <= 0 selects
// DefaultWorkers(); n <= 0 is a no-op.
func For(n, workers int, body func(i int)) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	_ = ForCtx(context.Background(), n, workers, body)
}

// ForCtx is For bound to a context: when ctx is cancelled the workers
// stop picking up new indices and ForCtx returns ctx.Err() (indices
// already dispatched complete). A nil error means every index ran.
func ForCtx(ctx context.Context, n, workers int, body func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers == 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			body(i)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}

// ForDynamic is like For but hands out indices one at a time from a
// shared counter, which balances load when per-index cost varies wildly
// (for example, distance-matrix rows of decreasing length).
func ForDynamic(n, workers int, body func(i int)) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	_ = ForDynamicCtx(context.Background(), n, workers, body)
}

// ForDynamicCtx is ForDynamic bound to a context: the dispatcher stops
// handing out indices once ctx is cancelled and ForDynamicCtx returns
// ctx.Err() (in-flight body calls complete first).
func ForDynamicCtx(ctx context.Context, n, workers int, body func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers == 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			body(i)
		}
		return ctx.Err()
	}
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-done:
				return
			}
		}
	}()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				body(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ForBlocks runs body(lo, hi) over contiguous blocks of [0,n) of the
// given block size, dynamically scheduled across workers. Blocking
// amortises dispatch overhead when the per-index work is small (row
// sums, nearest-neighbour cache refreshes) while keeping the dynamic
// load balance of ForDynamic for blocks of uneven cost.
func ForBlocks(n, block, workers int, body func(lo, hi int)) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	_ = ForBlocksCtx(context.Background(), n, block, workers, body)
}

// ForBlocksCtx is ForBlocks bound to a context: the dispatcher stops
// handing out blocks once ctx is cancelled and ForBlocksCtx returns
// ctx.Err() (in-flight blocks complete first).
func ForBlocksCtx(ctx context.Context, n, block, workers int, body func(lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if block <= 0 {
		block = 1
	}
	blocks := (n + block - 1) / block
	return ForDynamicCtx(ctx, blocks, workers, func(b int) {
		lo := b * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		body(lo, hi)
	})
}

// Map applies f to every element index of a length-n virtual slice and
// collects results in order.
func Map[T any](n, workers int, f func(i int) T) []T {
	out := make([]T, n)
	For(n, workers, func(i int) { out[i] = f(i) })
	return out
}

// MapCtx is Map bound to a context: on cancellation the returned slice
// is partially filled and the context's error is returned.
func MapCtx[T any](ctx context.Context, n, workers int, f func(i int) T) ([]T, error) {
	out := make([]T, n)
	err := ForCtx(ctx, n, workers, func(i int) { out[i] = f(i) })
	return out, err
}
