package par

import (
	"context"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		n := 977
		seen := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForDynamicCoversEveryIndexOnce(t *testing.T) {
	n := 523
	seen := make([]int32, n)
	ForDynamic(n, 7, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEdgeCases(t *testing.T) {
	ran := false
	For(0, 4, func(int) { ran = true })
	For(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("body ran for n<=0")
	}
	count := 0
	For(1, 16, func(int) { count++ })
	if count != 1 {
		t.Fatalf("n=1 ran %d times", count)
	}
}

func TestForDefaultWorkers(t *testing.T) {
	var total int64
	For(1000, 0, func(i int) { atomic.AddInt64(&total, int64(i)) })
	if total != 999*1000/2 {
		t.Fatalf("sum = %d", total)
	}
}

func TestMapOrdering(t *testing.T) {
	out := Map(100, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForMatchesSequentialProperty(t *testing.T) {
	f := func(n uint8, workers uint8) bool {
		nn := int(n)
		var par64, seq64 int64
		For(nn, int(workers)%9, func(i int) { atomic.AddInt64(&par64, int64(i*i+1)) })
		for i := 0; i < nn; i++ {
			seq64 += int64(i*i + 1)
		}
		return par64 == seq64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestForBlocksCoversEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct{ n, block, workers int }{
		{100, 7, 4}, {100, 1, 8}, {100, 100, 4}, {100, 1000, 2}, {3, 2, 0}, {0, 4, 4},
	} {
		hits := make([]int64, tc.n)
		ForBlocks(tc.n, tc.block, tc.workers, func(lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("n=%d block=%d: bad range [%d,%d)", tc.n, tc.block, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d block=%d workers=%d: index %d ran %d times",
					tc.n, tc.block, tc.workers, i, h)
			}
		}
	}
}

func TestForBlocksCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int64(0)
	err := ForBlocksCtx(ctx, 1000, 10, 4, func(lo, hi int) { atomic.AddInt64(&ran, 1) })
	if err == nil {
		t.Fatal("cancelled ForBlocksCtx returned nil error")
	}
}
