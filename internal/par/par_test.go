package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		n := 977
		seen := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForDynamicCoversEveryIndexOnce(t *testing.T) {
	n := 523
	seen := make([]int32, n)
	ForDynamic(n, 7, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEdgeCases(t *testing.T) {
	ran := false
	For(0, 4, func(int) { ran = true })
	For(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("body ran for n<=0")
	}
	count := 0
	For(1, 16, func(int) { count++ })
	if count != 1 {
		t.Fatalf("n=1 ran %d times", count)
	}
}

func TestForDefaultWorkers(t *testing.T) {
	var total int64
	For(1000, 0, func(i int) { atomic.AddInt64(&total, int64(i)) })
	if total != 999*1000/2 {
		t.Fatalf("sum = %d", total)
	}
}

func TestMapOrdering(t *testing.T) {
	out := Map(100, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForMatchesSequentialProperty(t *testing.T) {
	f := func(n uint8, workers uint8) bool {
		nn := int(n)
		var par64, seq64 int64
		For(nn, int(workers)%9, func(i int) { atomic.AddInt64(&par64, int64(i*i+1)) })
		for i := 0; i < nn; i++ {
			seq64 += int64(i*i + 1)
		}
		return par64 == seq64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
