package fasta

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
)

// gz compresses b so the corpus exercises the gzip-sniffing path.
func gz(b []byte) []byte {
	var buf bytes.Buffer
	w := gzip.NewWriter(&buf)
	w.Write(b)
	w.Close()
	return buf.Bytes()
}

// FuzzRead throws arbitrary bytes at the FASTA reader. The reader
// accepts messy-but-real input (CRLF, lone CR, gzip, blank lines,
// ragged widths) and rejects garbage with an error — it must never
// panic, and anything it does parse must survive a Write/Read round
// trip unchanged (IDs, descriptions and residue data).
func FuzzRead(f *testing.F) {
	seeds := [][]byte{
		[]byte(">a desc here\nACDEFG\nHIKLMN\n>b\nMKV\n"),
		[]byte(">a\r\nACDE\r\n>b\r\nFGHI\r\n"),
		// classic Mac endings: lone CR both after headers and data
		[]byte(">a\rACDE\r>b\rFGHI\r"),
		// lone CR at buffer edge / EOF
		[]byte(">a\nACGT\r"),
		// malformed headers: empty id, whitespace-only, '>' mid-line
		[]byte(">\nACGT\n"),
		[]byte(">   \nACGT\n"),
		[]byte(">a b c d\nAC>GT\n"), // glued header: '>' mid-data is rejected
		// fuzz-found: '>' as the 61st residue lands at line start when
		// rewrapped at LineWidth, turning one record into two — the
		// reader now rejects '>' inside data instead
		[]byte(">0\n000000000000000000 000000000000000000000000000000000000000000>"),
		[]byte("ACGT\n>late header\nAC\n"), // data before first header
		[]byte(""),
		[]byte(">only header no data\n"),
		[]byte(">tab\theader desc\nA C G T\n"), // internal whitespace in data
		[]byte("\n\n>a\n\nAC\n\n\n>b\nGT\n"),
		gz([]byte(">a zipped\nACDEFG\n>b\nHIKL\n")),
		gz([]byte("")),
		{0x1f, 0x8b},       // gzip magic, truncated stream
		{0x1f, 0x8b, 0xff}, // gzip magic, corrupt header
		[]byte(">\xff\xfe binary\n\x00\x01\x02\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		seqs, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are the bug
		}
		for _, s := range seqs {
			if strings.ContainsAny(s.ID, "\n\r") || strings.ContainsAny(s.Desc, "\n\r") {
				t.Fatalf("parsed header contains line break: id=%q desc=%q", s.ID, s.Desc)
			}
			if bytes.ContainsAny(s.Data, " \t\n\r") {
				t.Fatalf("parsed data contains whitespace: %q", s.Data)
			}
		}
		// Round trip: what we format must parse back to the same records.
		// (Only when every record is re-readable: a record whose ID came
		// out empty formats as a bare ">" header with the description in
		// the desc slot, which re-parses with id=desc glued — skip those,
		// the writer is not a validator.)
		for _, s := range seqs {
			if s.ID == "" || len(s.Data) == 0 {
				return
			}
		}
		out := FormatString(seqs)
		back, err := ParseString(out)
		if err != nil {
			t.Fatalf("round trip rejected own output: %v\noutput:\n%s", err, out)
		}
		if len(back) != len(seqs) {
			t.Fatalf("round trip: %d records became %d", len(seqs), len(back))
		}
		for i := range seqs {
			if back[i].ID != seqs[i].ID || back[i].Desc != seqs[i].Desc || !bytes.Equal(back[i].Data, seqs[i].Data) {
				t.Fatalf("round trip changed record %d:\n got %q %q %q\nwant %q %q %q",
					i, back[i].ID, back[i].Desc, back[i].Data, seqs[i].ID, seqs[i].Desc, seqs[i].Data)
			}
		}
	})
}
