package fasta

import (
	"bytes"
	"compress/gzip"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bio"
)

func TestReadBasic(t *testing.T) {
	in := ">s1 first sequence\nACDEF\nGHIKL\n>s2\nMNPQR\n"
	seqs, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d records, want 2", len(seqs))
	}
	if seqs[0].ID != "s1" || seqs[0].Desc != "first sequence" {
		t.Errorf("header parse: id=%q desc=%q", seqs[0].ID, seqs[0].Desc)
	}
	if seqs[0].String() != "ACDEFGHIKL" {
		t.Errorf("multi-line body: %q", seqs[0].String())
	}
	if seqs[1].ID != "s2" || seqs[1].String() != "MNPQR" {
		t.Errorf("second record: %+v", seqs[1])
	}
}

func TestReadMessyInput(t *testing.T) {
	in := "\r\n>a  spaced   desc \r\nAC DE\t\nF\r\n\r\n>b\r\nGG\r\n"
	seqs, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d records, want 2", len(seqs))
	}
	if seqs[0].String() != "ACDEF" {
		t.Errorf("whitespace not stripped: %q", seqs[0].String())
	}
	if seqs[0].Desc != "spaced   desc" {
		t.Errorf("desc: %q", seqs[0].Desc)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ParseString("ACDEF\n"); err == nil {
		t.Error("data before header accepted")
	}
}

func TestReadEmptyRecord(t *testing.T) {
	seqs, err := ParseString(">empty\n>full\nAC\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0].Len() != 0 || seqs[1].String() != "AC" {
		t.Fatalf("empty record handling: %+v", seqs)
	}
}

func TestRoundTrip(t *testing.T) {
	orig := []bio.Sequence{
		{ID: "a", Desc: "with desc", Data: []byte(strings.Repeat("ACDEFGHIKL", 13))},
		{ID: "b", Data: []byte("MW")},
		{ID: "c", Data: nil},
	}
	out := FormatString(orig)
	back, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip count %d != %d", len(back), len(orig))
	}
	for i := range orig {
		if !bio.Equal(orig[i], back[i]) {
			t.Errorf("record %d: got %q/%q want %q/%q",
				i, back[i].ID, back[i].String(), orig[i].ID, orig[i].String())
		}
		if back[i].Desc != orig[i].Desc {
			t.Errorf("record %d desc: %q != %q", i, back[i].Desc, orig[i].Desc)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: writing then reading arbitrary residue strings over the
	// amino alphabet is the identity.
	letters := bio.AminoAcids.Letters()
	f := func(raw []byte, n uint8) bool {
		data := make([]byte, len(raw))
		for i, b := range raw {
			data[i] = letters[int(b)%len(letters)]
		}
		seqs := []bio.Sequence{{ID: "q", Data: data}}
		back, err := ParseString(FormatString(seqs))
		if err != nil || len(back) != 1 {
			return false
		}
		return back[0].String() == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteFileReadFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/x.fa"
	seqs := []bio.Sequence{{ID: "z", Data: []byte("ACDEF")}}
	if err := WriteFile(path, seqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].String() != "ACDEF" {
		t.Fatalf("file round trip: %+v", back)
	}
}

func TestReadCRLFAndCROnly(t *testing.T) {
	want := map[string]string{"a": "ACDEF", "b": "GGHH"}
	for name, in := range map[string]string{
		"crlf":   ">a one\r\nACD\r\nEF\r\n>b\r\nGGHH\r\n",
		"cr":     ">a one\rACD\rEF\r>b\rGGHH\r",
		"mixed":  ">a one\nACD\r\nEF\r>b\nGGHH",
		"no-eol": ">a one\r\nACDEF\r\n>b\r\nGGHH",
	} {
		seqs, err := ParseString(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(seqs) != 2 {
			t.Fatalf("%s: got %d records, want 2: %+v", name, len(seqs), seqs)
		}
		for _, s := range seqs {
			if s.String() != want[s.ID] {
				t.Errorf("%s: %s = %q, want %q", name, s.ID, s.String(), want[s.ID])
			}
		}
		if seqs[0].Desc != "one" {
			t.Errorf("%s: desc = %q, want \"one\"", name, seqs[0].Desc)
		}
	}
}

func TestReadGzip(t *testing.T) {
	plain := ">g1 zipped\nACDEFGHIKL\n>g2\nMNPQ\n"
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(plain)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0].String() != "ACDEFGHIKL" || seqs[1].String() != "MNPQ" {
		t.Fatalf("gzip parse: %+v", seqs)
	}
	if seqs[0].Desc != "zipped" {
		t.Fatalf("gzip desc: %q", seqs[0].Desc)
	}

	// A gzip file is also sniffed through ReadFile.
	path := t.TempDir() + "/x.fa.gz"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].String() != "MNPQ" {
		t.Fatalf("gzip file round trip: %+v", back)
	}
}

func TestReadGzipCorrupt(t *testing.T) {
	// Valid magic, garbage beyond: must error, not parse as FASTA.
	if _, err := Read(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0x00, 0x01})); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}

func TestReadShortInput(t *testing.T) {
	// Inputs shorter than the gzip magic must not error in the sniffer.
	if seqs, err := ParseString(""); err != nil || len(seqs) != 0 {
		t.Fatalf("empty input: %v %v", seqs, err)
	}
	if _, err := ParseString("A"); err == nil {
		t.Fatal("1-byte residue line without header accepted")
	}
}
