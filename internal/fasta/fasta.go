// Package fasta reads and writes sequence sets in FASTA format.
//
// The reader is tolerant of the variation found in real files: blank
// lines, Windows (CRLF) and classic Mac (CR) line endings, arbitrary
// line widths, trailing whitespace, and gzip-compressed input (sniffed
// by magic bytes, so uploads need no content-type negotiation). The
// writer emits fixed-width records suitable for other tools.
package fasta

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bio"
)

// gzip magic bytes (RFC 1952).
var gzipMagic = []byte{0x1f, 0x8b}

// scanLines is a bufio.SplitFunc that terminates lines at \n, \r\n or a
// lone \r (classic Mac endings make the whole file one bufio.ScanLines
// line, which would mis-parse as a single giant header).
func scanLines(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if atEOF && len(data) == 0 {
		return 0, nil, nil
	}
	if i := bytes.IndexAny(data, "\r\n"); i >= 0 {
		advance = i + 1
		if data[i] == '\r' {
			if i+1 < len(data) {
				if data[i+1] == '\n' {
					advance++
				}
			} else if !atEOF {
				// \r at the buffer edge: wait to see whether \n follows.
				return 0, nil, nil
			}
		}
		return advance, data[:i], nil
	}
	if atEOF {
		return len(data), data, nil
	}
	return 0, nil, nil
}

// sniffReader transparently decompresses gzip input, detected by its
// magic bytes; everything else passes through unchanged.
func sniffReader(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(gzipMagic))
	if err != nil {
		// Short or empty input: not gzip; let the FASTA parser handle it.
		return br, nil
	}
	if !bytes.Equal(magic, gzipMagic) {
		return br, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("fasta: gzip input: %w", err)
	}
	return zr, nil
}

// Read parses every FASTA record from r. Gzip-compressed input is
// detected by magic bytes and decompressed transparently.
func Read(r io.Reader) ([]bio.Sequence, error) {
	plain, err := sniffReader(r)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(plain)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	sc.Split(scanLines)
	var (
		seqs []bio.Sequence
		cur  *bio.Sequence
		buf  bytes.Buffer
		line int
	)
	flush := func() {
		if cur != nil {
			cur.Data = append([]byte(nil), buf.Bytes()...)
			seqs = append(seqs, *cur)
			cur = nil
			buf.Reset()
		}
	}
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t\r")
		if text == "" {
			continue
		}
		if text[0] == '>' {
			flush()
			id, desc := splitHeader(text[1:])
			cur = &bio.Sequence{ID: id, Desc: desc}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("fasta: line %d: sequence data before first header", line)
		}
		for i := 0; i < len(text); i++ {
			b := text[i]
			if b == ' ' || b == '\t' {
				continue
			}
			if b == '>' {
				// '>' mid-line is never residue data; it is the
				// signature of a glued header (a lost newline before a
				// record). Accepting it would also make the record
				// ambiguous to re-serialise: rewrapped at LineWidth the
				// '>' can land at line start and parse as a header.
				return nil, fmt.Errorf("fasta: line %d: '>' inside sequence data", line)
			}
			buf.WriteByte(b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fasta: %w", err)
	}
	flush()
	return seqs, nil
}

func splitHeader(h string) (id, desc string) {
	h = strings.TrimSpace(h)
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		return h[:i], strings.TrimSpace(h[i+1:])
	}
	return h, ""
}

// ReadFile parses every FASTA record from the file at path.
func ReadFile(path string) ([]bio.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// LineWidth is the residue line width used by Write.
const LineWidth = 60

// Write emits the sequences to w in FASTA format with LineWidth-column
// residue lines.
func Write(w io.Writer, seqs []bio.Sequence) error {
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if s.Desc != "" {
			fmt.Fprintf(bw, ">%s %s\n", s.ID, s.Desc)
		} else {
			fmt.Fprintf(bw, ">%s\n", s.ID)
		}
		for off := 0; off < len(s.Data); off += LineWidth {
			end := off + LineWidth
			if end > len(s.Data) {
				end = len(s.Data)
			}
			bw.Write(s.Data[off:end])
			bw.WriteByte('\n')
		}
		if len(s.Data) == 0 {
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteFile writes the sequences to the file at path, creating or
// truncating it.
func WriteFile(path string, seqs []bio.Sequence) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, seqs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseString is a convenience wrapper over Read for in-memory data.
func ParseString(s string) ([]bio.Sequence, error) {
	return Read(strings.NewReader(s))
}

// FormatString renders sequences as a FASTA string.
func FormatString(seqs []bio.Sequence) string {
	var b strings.Builder
	Write(&b, seqs) // strings.Builder writes cannot fail
	return b.String()
}
