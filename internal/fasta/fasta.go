// Package fasta reads and writes sequence sets in FASTA format.
//
// The reader is tolerant of the variation found in real files: blank
// lines, Windows line endings, arbitrary line widths and trailing
// whitespace. The writer emits fixed-width records suitable for other
// tools.
package fasta

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bio"
)

// Read parses every FASTA record from r.
func Read(r io.Reader) ([]bio.Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var (
		seqs []bio.Sequence
		cur  *bio.Sequence
		buf  bytes.Buffer
		line int
	)
	flush := func() {
		if cur != nil {
			cur.Data = append([]byte(nil), buf.Bytes()...)
			seqs = append(seqs, *cur)
			cur = nil
			buf.Reset()
		}
	}
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t\r")
		if text == "" {
			continue
		}
		if text[0] == '>' {
			flush()
			id, desc := splitHeader(text[1:])
			cur = &bio.Sequence{ID: id, Desc: desc}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("fasta: line %d: sequence data before first header", line)
		}
		for i := 0; i < len(text); i++ {
			b := text[i]
			if b == ' ' || b == '\t' {
				continue
			}
			buf.WriteByte(b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fasta: %w", err)
	}
	flush()
	return seqs, nil
}

func splitHeader(h string) (id, desc string) {
	h = strings.TrimSpace(h)
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		return h[:i], strings.TrimSpace(h[i+1:])
	}
	return h, ""
}

// ReadFile parses every FASTA record from the file at path.
func ReadFile(path string) ([]bio.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// LineWidth is the residue line width used by Write.
const LineWidth = 60

// Write emits the sequences to w in FASTA format with LineWidth-column
// residue lines.
func Write(w io.Writer, seqs []bio.Sequence) error {
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if s.Desc != "" {
			fmt.Fprintf(bw, ">%s %s\n", s.ID, s.Desc)
		} else {
			fmt.Fprintf(bw, ">%s\n", s.ID)
		}
		for off := 0; off < len(s.Data); off += LineWidth {
			end := off + LineWidth
			if end > len(s.Data) {
				end = len(s.Data)
			}
			bw.Write(s.Data[off:end])
			bw.WriteByte('\n')
		}
		if len(s.Data) == 0 {
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteFile writes the sequences to the file at path, creating or
// truncating it.
func WriteFile(path string, seqs []bio.Sequence) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, seqs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseString is a convenience wrapper over Read for in-memory data.
func ParseString(s string) ([]bio.Sequence, error) {
	return Read(strings.NewReader(s))
}

// FormatString renders sequences as a FASTA string.
func FormatString(seqs []bio.Sequence) string {
	var b strings.Builder
	Write(&b, seqs) // strings.Builder writes cannot fail
	return b.String()
}
