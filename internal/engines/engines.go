// Package engines is the registry of built-in sequential MSA pipelines,
// addressable by name. It backs both the public samplealign options
// (WithLocalAligner / NewAligner) and the HTTP job service, which must
// resolve aligners from request strings without importing the public
// package.
package engines

import (
	"fmt"

	"repro/internal/cons"
	"repro/internal/dpkern"
	"repro/internal/mafft"
	"repro/internal/msa"
)

// Names lists the built-in sequential MSA pipelines in a stable order.
func Names() []string {
	return []string{"muscle", "muscle-refined", "clustal", "tcoffee", "fftnsi", "nwnsi"}
}

// New builds the named pipeline with the given intra-pipeline worker
// budget and the default (auto) DP kernel. Unknown names return an
// error listing the registry.
func New(name string, workers int) (msa.Aligner, error) {
	return NewWithKernel(name, workers, dpkern.Auto)
}

// NewWithKernel is New with an explicit DP kernel selection. Every
// registered pipeline supports kernel switching; the selection never
// changes output (striped kernels are byte-identical to scalar), only
// speed.
func NewWithKernel(name string, workers int, kern dpkern.Kernel) (msa.Aligner, error) {
	a, err := newEngine(name, workers)
	if err != nil {
		return nil, err
	}
	if kc, ok := a.(msa.KernelConfigurable); ok {
		kc.SetKernel(kern)
	}
	return a, nil
}

func newEngine(name string, workers int) (msa.Aligner, error) {
	switch name {
	case "muscle":
		return msa.MuscleLike(workers), nil
	case "muscle-refined":
		return msa.MuscleLikeRefined(workers, 2), nil
	case "clustal":
		return msa.ClustalLike(workers), nil
	case "tcoffee":
		return cons.New(workers), nil
	case "fftnsi":
		return mafft.NewFFTNSI(workers), nil
	case "nwnsi":
		return mafft.NewNWNSI(workers), nil
	default:
		return nil, fmt.Errorf("engines: unknown aligner %q (have %v)", name, Names())
	}
}

// Valid reports whether name is a registered pipeline.
func Valid(name string) bool {
	_, err := New(name, 1)
	return err == nil
}
