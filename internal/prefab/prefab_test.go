package prefab

import (
	"fmt"
	"testing"

	"repro/internal/bio"
	"repro/internal/msa"
)

func TestGenerateShape(t *testing.T) {
	sets, err := Generate(Config{NumSets: 5, SeqsPerSet: 8, MeanLen: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 5 {
		t.Fatalf("%d sets", len(sets))
	}
	for _, s := range sets {
		if len(s.Seqs) != 8 {
			t.Fatalf("set %s: %d seqs", s.ID, len(s.Seqs))
		}
		if s.Ref.NumSeqs() != 2 {
			t.Fatalf("set %s: reference has %d rows", s.ID, s.Ref.NumSeqs())
		}
		if err := s.Ref.Validate(); err != nil {
			t.Fatalf("set %s reference: %v", s.ID, err)
		}
		// reference rows are the first and last sequences of the set
		wantIdx := []int{0, len(s.Seqs) - 1}
		for i, idx := range wantIdx {
			if s.Ref.Seqs[i].ID != s.Seqs[idx].ID {
				t.Fatalf("set %s: ref id %q != seq id %q", s.ID, s.Ref.Seqs[i].ID, s.Seqs[idx].ID)
			}
			if string(bio.Ungap(s.Ref.Seqs[i].Data)) != s.Seqs[idx].String() {
				t.Fatalf("set %s: reference row %d does not ungap to its sequence", s.ID, i)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{NumSets: 3, SeqsPerSet: 5, MeanLen: 40, Seed: 9})
	b, _ := Generate(Config{NumSets: 3, SeqsPerSet: 5, MeanLen: 40, Seed: 9})
	for i := range a {
		for j := range a[i].Seqs {
			if !bio.Equal(a[i].Seqs[j], b[i].Seqs[j]) {
				t.Fatal("same seed produced different benchmarks")
			}
		}
	}
}

func TestEvaluateMuscleLike(t *testing.T) {
	sets, err := Generate(Config{NumSets: 4, SeqsPerSet: 6, MeanLen: 80,
		MinRelated: 100, MaxRelated: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mean, results, err := Evaluate(msa.MuscleLike(0), sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	if mean <= 0 || mean > 1 {
		t.Fatalf("mean Q = %g", mean)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("set %s errored: %v", r.SetID, r.Err)
		}
		if r.Q < 0 || r.Q > 1 {
			t.Fatalf("set %s Q = %g", r.SetID, r.Q)
		}
	}
}

// failingAligner errors on every other set to test discard handling.
type failingAligner struct{ n int }

func (f *failingAligner) Name() string { return "flaky" }
func (f *failingAligner) Align(seqs []bio.Sequence) (*msa.Alignment, error) {
	f.n++
	if f.n%2 == 0 {
		return nil, fmt.Errorf("boom")
	}
	return msa.MuscleLike(0).Align(seqs)
}

func TestEvaluateDiscardsFailedSets(t *testing.T) {
	sets, err := Generate(Config{NumSets: 4, SeqsPerSet: 5, MeanLen: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mean, results, err := Evaluate(&failingAligner{}, sets)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for _, r := range results {
		if r.Err != nil {
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("%d failures recorded", failures)
	}
	if mean <= 0 {
		t.Fatalf("mean over surviving sets = %g", mean)
	}
}

type alwaysFail struct{}

func (alwaysFail) Name() string { return "dead" }
func (alwaysFail) Align([]bio.Sequence) (*msa.Alignment, error) {
	return nil, fmt.Errorf("always fails")
}

func TestEvaluateAllFailed(t *testing.T) {
	sets, _ := Generate(Config{NumSets: 2, SeqsPerSet: 4, MeanLen: 40, Seed: 6})
	if _, _, err := Evaluate(alwaysFail{}, sets); err == nil {
		t.Fatal("all-failed evaluation did not error")
	}
	if _, _, err := Evaluate(alwaysFail{}, nil); err == nil {
		t.Fatal("empty benchmark accepted")
	}
}

func TestCloserFamiliesScoreHigher(t *testing.T) {
	// Q on gently diverged sets should beat Q on strongly diverged sets —
	// the divergence knob must be meaningful.
	close, err := Generate(Config{NumSets: 4, SeqsPerSet: 6, MeanLen: 80,
		MinRelated: 80, MaxRelated: 120, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	far, err := Generate(Config{NumSets: 4, SeqsPerSet: 6, MeanLen: 80,
		MinRelated: 800, MaxRelated: 900, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	qClose, _, err := Evaluate(msa.MuscleLike(0), close)
	if err != nil {
		t.Fatal(err)
	}
	qFar, _, err := Evaluate(msa.MuscleLike(0), far)
	if err != nil {
		t.Fatal(err)
	}
	if qClose <= qFar {
		t.Fatalf("Q(close)=%g <= Q(far)=%g", qClose, qFar)
	}
}
