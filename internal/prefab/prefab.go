// Package prefab provides a PREFAB-like alignment quality benchmark
// (Edgar 2004): each set holds a reference pair whose true alignment is
// known, plus a couple dozen homologs; an aligner is scored by Q — the
// fraction of reference residue pairs it reproduces. The real PREFAB's
// references come from structure superposition; ours come from the ROSE
// generator's recorded evolution, which plays the same role: ground truth
// the aligner never sees.
package prefab

import (
	"fmt"
	"math/rand"

	"repro/internal/bio"
	"repro/internal/msa"
	"repro/internal/rose"
)

// Set is one benchmark unit: sequences to align and the reference
// alignment of two of them.
type Set struct {
	ID   string
	Seqs []bio.Sequence
	Ref  *msa.Alignment
}

// Config parameterises benchmark generation. The real PREFAB has 1000
// sets of ~20-30 sequences of varying divergence; defaults mirror that at
// reduced count.
type Config struct {
	NumSets    int     // number of benchmark sets (default 40)
	SeqsPerSet int     // sequences per set (default 24, like PREFAB's 20-30)
	MeanLen    int     // mean sequence length (default 240)
	MinRelated float64 // lower bound of per-set relatedness (default 100)
	MaxRelated float64 // upper bound (default 700): varying divergence
	Seed       int64
}

func (c *Config) fillDefaults() {
	if c.NumSets <= 0 {
		c.NumSets = 40
	}
	if c.SeqsPerSet < 2 {
		c.SeqsPerSet = 24
	}
	if c.MeanLen <= 0 {
		c.MeanLen = 240
	}
	if c.MinRelated <= 0 {
		// Defaults chosen so the MUSCLE-like pipeline scores in the
		// paper's Table 2 band (Q ≈ 0.55–0.65): real PREFAB references
		// live deep in the twilight zone, and relatedness 1000–1800
		// puts our synthetic reference pairs there too.
		c.MinRelated = 1000
	}
	if c.MaxRelated <= c.MinRelated {
		c.MaxRelated = c.MinRelated + 800
	}
}

// Generate builds a reproducible benchmark.
func Generate(cfg Config) ([]Set, error) {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sets := make([]Set, 0, cfg.NumSets)
	for i := 0; i < cfg.NumSets; i++ {
		relatedness := cfg.MinRelated + rng.Float64()*(cfg.MaxRelated-cfg.MinRelated)
		fam, err := rose.Evolve(rose.Config{
			N:           cfg.SeqsPerSet,
			MeanLen:     cfg.MeanLen/2 + rng.Intn(cfg.MeanLen+1),
			Relatedness: relatedness,
			Seed:        rng.Int63(),
		})
		if err != nil {
			return nil, fmt.Errorf("prefab: set %d: %w", i, err)
		}
		// Reference pair: leaves 0 and N-1 sit in opposite root subtrees,
		// so their divergence reflects the set's relatedness knob (leaves
		// 0 and 1 would usually be siblings and always easy).
		ref, err := fam.TrueAlignment([]int{0, cfg.SeqsPerSet - 1})
		if err != nil {
			return nil, fmt.Errorf("prefab: set %d reference: %w", i, err)
		}
		// namespace ids per set so sets can be pooled
		seqs := bio.CloneAll(fam.Seqs())
		for j := range seqs {
			seqs[j].ID = fmt.Sprintf("s%03d_%s", i, seqs[j].ID)
		}
		for j := range ref.Seqs {
			ref.Seqs[j].ID = fmt.Sprintf("s%03d_%s", i, ref.Seqs[j].ID)
		}
		sets = append(sets, Set{ID: fmt.Sprintf("set%03d", i), Seqs: seqs, Ref: ref})
	}
	return sets, nil
}

// Result is the per-set outcome of an evaluation.
type Result struct {
	SetID string
	Q     float64
	Err   error // non-nil when the aligner failed on the set
}

// Evaluate aligns every set with al and scores it against the reference.
// Sets where the aligner errors are recorded (Q=0, Err set) and excluded
// from the mean, mirroring the paper's footnote that some scores were
// discarded by the automatic quality process.
func Evaluate(al msa.Aligner, sets []Set) (meanQ float64, results []Result, err error) {
	if len(sets) == 0 {
		return 0, nil, fmt.Errorf("prefab: no sets")
	}
	results = make([]Result, 0, len(sets))
	var sum float64
	var ok int
	for _, set := range sets {
		aln, aerr := al.Align(set.Seqs)
		if aerr == nil {
			if verr := aln.Validate(); verr != nil {
				aerr = verr
			}
		}
		if aerr != nil {
			results = append(results, Result{SetID: set.ID, Err: aerr})
			continue
		}
		q, qerr := msa.QScore(aln, set.Ref)
		if qerr != nil {
			results = append(results, Result{SetID: set.ID, Err: qerr})
			continue
		}
		results = append(results, Result{SetID: set.ID, Q: q})
		sum += q
		ok++
	}
	if ok == 0 {
		return 0, results, fmt.Errorf("prefab: aligner %s failed on every set", al.Name())
	}
	return sum / float64(ok), results, nil
}
