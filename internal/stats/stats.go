// Package stats provides the summary statistics and histogram helpers
// used to report the paper's Table 1 and the rank-distribution figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the descriptive statistics reported in the paper's
// Table 1 for a set of k-mer ranks.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	Variance float64 // population variance
	StdDev   float64
}

// Summarize computes a Summary of xs. An empty input returns a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Variance = ss / float64(len(xs))
	s.StdDev = math.Sqrt(s.Variance)
	return s
}

// DiffStats returns the variance and standard deviation of the pairwise
// differences a[i]-b[i]; the paper's Table 1 reports the globalised
// ranks' variance/σ "w.r.t." the centralised ranks this way.
func DiffStats(a, b []float64) (variance, stddev float64, err error) {
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("stats: length mismatch %d != %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, 0, nil
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	s := Summarize(diffs)
	return s.Variance, s.StdDev, nil
}

// Histogram is a fixed-width binning of a sample, used to render the
// rank-distribution figures (Fig. 1 and Fig. 3) as text.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram bins xs into `bins` equal-width buckets spanning
// [min,max]. Values exactly at max land in the final bucket.
func NewHistogram(xs []float64, bins int) Histogram {
	s := Summarize(xs)
	h := Histogram{Lo: s.Min, Hi: s.Max, Counts: make([]int, bins)}
	if s.N == 0 || bins == 0 {
		return h
	}
	width := (s.Max - s.Min) / float64(bins)
	if width == 0 {
		h.Counts[0] = s.N
		return h
	}
	for _, x := range xs {
		b := int((x - s.Min) / width)
		if b >= bins {
			b = bins - 1
		}
		h.Counts[b]++
	}
	return h
}

// BinCenter returns the midpoint of bucket i.
func (h Histogram) BinCenter(i int) float64 {
	if len(h.Counts) == 0 {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Render draws the histogram as rows of "center | #### count" text, the
// form the bench harness prints for the figure reproductions.
func (h Histogram) Render(barWidth int) string {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * barWidth / maxC
		}
		fmt.Fprintf(&b, "%8.3f | %-*s %d\n", h.BinCenter(i), barWidth, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation; it sorts a copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	pos := p / 100 * float64(len(cp)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(cp) {
		return cp[lo]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// Correlation returns the Pearson correlation of two equal-length samples.
func Correlation(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: length mismatch %d != %d", len(a), len(b))
	}
	if len(a) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points")
	}
	sa, sb := Summarize(a), Summarize(b)
	var cov float64
	for i := range a {
		cov += (a[i] - sa.Mean) * (b[i] - sb.Mean)
	}
	cov /= float64(len(a))
	if sa.StdDev == 0 || sb.StdDev == 0 {
		return 0, fmt.Errorf("stats: zero variance sample")
	}
	return cov / (sa.StdDev * sb.StdDev), nil
}
