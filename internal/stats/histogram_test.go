package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestLatencyHistogramBucketing(t *testing.T) {
	h, err := NewLatencyHistogram([]float64{0.1, 1, 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{0.05, 0.1, 0.5, 2, 100, -1} {
		h.Observe(d)
	}
	h.Observe(math.NaN()) // ignored
	s := h.Snapshot()
	if s.Total != 6 {
		t.Fatalf("total = %d, want 6", s.Total)
	}
	// buckets: ≤0.1 gets 0.05, 0.1 and -1; (0.1,1] gets 0.5; (1,10] gets 2; +Inf gets 100
	want := []uint64{3, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
	wantCum := []uint64{3, 4, 5, 6}
	for i, w := range wantCum {
		if s.Cumulative[i] != w {
			t.Fatalf("cumulative = %v, want %v", s.Cumulative, wantCum)
		}
	}
	if got := s.Sum; math.Abs(got-101.65) > 1e-9 {
		t.Fatalf("sum = %g, want 101.65", got)
	}
}

func TestLatencyHistogramValidation(t *testing.T) {
	if _, err := NewLatencyHistogram(nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewLatencyHistogram([]float64{1, 1}); err == nil {
		t.Fatal("non-increasing bounds accepted")
	}
	if _, err := NewLatencyHistogram([]float64{2, 1}); err == nil {
		t.Fatal("decreasing bounds accepted")
	}
}

func TestLatencyHistogramQuantile(t *testing.T) {
	h := MustLatencyHistogram([]float64{1, 2, 3, 4})
	if !math.IsNaN(h.Snapshot().Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	// 100 observations uniform over (0,4]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); math.Abs(q-2.0) > 0.1 {
		t.Fatalf("p50 = %g, want ≈ 2", q)
	}
	if q := s.Quantile(1); q > 4.0001 {
		t.Fatalf("p100 = %g, want ≤ 4", q)
	}
	if q := s.Quantile(0); q < 0 || q > 0.05 {
		t.Fatalf("p0 = %g, want ≈ 0", q)
	}
}

func TestLatencyHistogramConcurrent(t *testing.T) {
	h := MustLatencyHistogram(DefaultLatencyBounds())
	var wg sync.WaitGroup
	const per = 1000
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*i%300) / 100)
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Total != 8*per {
		t.Fatalf("total = %d, want %d", s.Total, 8*per)
	}
}

func TestLatencyHistogramPrometheus(t *testing.T) {
	h := MustLatencyHistogram([]float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(5)
	var b strings.Builder
	h.Snapshot().WritePrometheus(&b, "job_seconds", "Job wall-clock.")
	out := b.String()
	for _, want := range []string{
		"# HELP job_seconds Job wall-clock.",
		"# TYPE job_seconds histogram",
		`job_seconds_bucket{le="0.5"} 1`,
		`job_seconds_bucket{le="1"} 2`,
		`job_seconds_bucket{le="+Inf"} 3`,
		"job_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	g.Add(1)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.Set(0)
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge after reset = %d, want 0", got)
	}
}
