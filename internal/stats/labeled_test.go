package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestQuantileEdgeCases(t *testing.T) {
	h := MustLatencyHistogram([]float64{1, 2, 4})

	// Empty histogram: every quantile is NaN.
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Snapshot().Quantile(q); !math.IsNaN(got) {
			t.Fatalf("empty histogram Quantile(%g) = %g, want NaN", q, got)
		}
	}

	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	s := h.Snapshot()

	// Out-of-range q clamps rather than panicking or extrapolating.
	lo, hi := s.Quantile(-5), s.Quantile(7)
	if lo != s.Quantile(0) {
		t.Fatalf("Quantile(-5) = %g, want clamp to Quantile(0) = %g", lo, s.Quantile(0))
	}
	if hi != s.Quantile(1) {
		t.Fatalf("Quantile(7) = %g, want clamp to Quantile(1) = %g", hi, s.Quantile(1))
	}

	// q=1 with all mass in finite buckets lands on a finite bound.
	if got := s.Quantile(1); got > 4 || got <= 0 {
		t.Fatalf("Quantile(1) = %g, want in (0, 4]", got)
	}

	// Quantiles must be monotone in q.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.1 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: Quantile(%g) = %g < %g", q, v, prev)
		}
		prev = v
	}

	// Observations in the +Inf bucket: the estimate is capped at the
	// last finite bound (no upper bound to interpolate toward).
	h2 := MustLatencyHistogram([]float64{1})
	h2.Observe(100)
	if got := h2.Snapshot().Quantile(0.99); got != 1 {
		t.Fatalf("+Inf-bucket quantile = %g, want last finite bound 1", got)
	}

	// Single observation exactly on a bound stays within that bucket.
	h3 := MustLatencyHistogram([]float64{1, 2})
	h3.Observe(2)
	if got := h3.Snapshot().Quantile(0.5); got < 1 || got > 2 {
		t.Fatalf("boundary observation quantile = %g, want in [1, 2]", got)
	}

	// NaN observations are ignored entirely.
	h4 := MustLatencyHistogram([]float64{1})
	h4.Observe(math.NaN())
	if h4.Snapshot().Total != 0 {
		t.Fatal("NaN observation must be ignored")
	}

	// Negative observations count into the first bucket.
	h5 := MustLatencyHistogram([]float64{1, 2})
	h5.Observe(-3)
	s5 := h5.Snapshot()
	if s5.Counts[0] != 1 || s5.Total != 1 {
		t.Fatalf("negative observation: counts = %v", s5.Counts)
	}
}

func TestLabeledHistogramsObserveAndRender(t *testing.T) {
	l := MustLabeledHistograms([]float64{0.5, 1})
	l.Observe("guidetree", 0.2)
	l.Observe("guidetree", 0.7)
	l.Observe("bucketalign", 5)

	if got := l.Labels(); len(got) != 2 || got[0] != "bucketalign" || got[1] != "guidetree" {
		t.Fatalf("Labels = %v, want sorted [bucketalign guidetree]", got)
	}
	snap, ok := l.Snapshot("guidetree")
	if !ok || snap.Total != 2 {
		t.Fatalf("guidetree snapshot = %+v ok=%v", snap, ok)
	}
	if _, ok := l.Snapshot("nosuch"); ok {
		t.Fatal("Snapshot of unknown label must report !ok")
	}

	var b strings.Builder
	l.WritePrometheus(&b, "samplealign_stage_seconds", "Per-stage seconds.", "stage")
	out := b.String()
	for _, want := range []string{
		"# HELP samplealign_stage_seconds Per-stage seconds.",
		"# TYPE samplealign_stage_seconds histogram",
		`samplealign_stage_seconds_bucket{stage="guidetree",le="0.5"} 1`,
		`samplealign_stage_seconds_bucket{stage="guidetree",le="+Inf"} 2`,
		`samplealign_stage_seconds_count{stage="guidetree"} 2`,
		`samplealign_stage_seconds_bucket{stage="bucketalign",le="+Inf"} 1`,
		`samplealign_stage_seconds_sum{stage="bucketalign"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("labeled exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE written once, not per series.
	if strings.Count(out, "# TYPE samplealign_stage_seconds histogram") != 1 {
		t.Fatalf("TYPE header repeated:\n%s", out)
	}
	// bucketalign renders before guidetree (sorted label order).
	if strings.Index(out, `stage="bucketalign"`) > strings.Index(out, `stage="guidetree"`) {
		t.Fatalf("series not in sorted label order:\n%s", out)
	}
}

func TestLabeledHistogramsEmptyRendersNothing(t *testing.T) {
	l := MustLabeledHistograms(DefaultLatencyBounds())
	var b strings.Builder
	l.WritePrometheus(&b, "x_seconds", "X.", "stage")
	if b.Len() != 0 {
		t.Fatalf("empty family rendered output:\n%s", b.String())
	}
}

func TestLabeledHistogramsConcurrent(t *testing.T) {
	l := MustLabeledHistograms([]float64{1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := []string{"a", "b"}[g%2]
			for i := 0; i < 200; i++ {
				l.Observe(label, 0.5)
			}
		}(g)
	}
	wg.Wait()
	sa, _ := l.Snapshot("a")
	sb, _ := l.Snapshot("b")
	if sa.Total+sb.Total != 1600 {
		t.Fatalf("lost observations: %d + %d != 1600", sa.Total, sb.Total)
	}
}

func TestLabeledHistogramsBadBounds(t *testing.T) {
	if _, err := NewLabeledHistograms(nil); err == nil {
		t.Fatal("empty bounds must be rejected")
	}
	if _, err := NewLabeledHistograms([]float64{2, 1}); err == nil {
		t.Fatal("unsorted bounds must be rejected")
	}
}
