package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %g", s.Mean)
	}
	if s.Variance != 4 {
		t.Errorf("variance = %g", s.Variance)
	}
	if s.StdDev != 2 {
		t.Errorf("stddev = %g", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Errorf("min/max/n = %g/%g/%d", s.Min, s.Max, s.N)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSummarizeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		s := Summarize(xs)
		if s.N != len(xs) {
			return false
		}
		if len(xs) == 0 {
			return true
		}
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Variance >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiffStats(t *testing.T) {
	v, sd, err := DiffStats([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || v != 0 || sd != 0 {
		t.Errorf("identical samples: v=%g sd=%g err=%v", v, sd, err)
	}
	v, sd, err = DiffStats([]float64{0, 2}, []float64{1, 1})
	if err != nil || v != 1 || sd != 1 {
		t.Errorf("diff stats: v=%g sd=%g err=%v", v, sd, err)
	}
	if _, _, err := DiffStats([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.9, 1.0}
	h := NewHistogram(xs, 2)
	if h.Counts[0] != 3 || h.Counts[1] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram loses points: %d != %d", total, len(xs))
	}
}

func TestHistogramConstantSample(t *testing.T) {
	h := NewHistogram([]float64{3, 3, 3}, 4)
	if h.Counts[0] != 3 {
		t.Errorf("constant sample counts = %v", h.Counts)
	}
}

func TestHistogramConservesMassProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 100
		}
		h := NewHistogram(xs, 13)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 2, 3}, 3)
	out := h.Render(10)
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("median = %g", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %g", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("p100 = %g", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Errorf("p25 = %g", p)
	}
}

func TestCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	r, err := Correlation(a, b)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation: r=%g err=%v", r, err)
	}
	c := []float64{8, 6, 4, 2}
	r, _ = Correlation(a, c)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation: r=%g", r)
	}
	if _, err := Correlation(a, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero-variance sample accepted")
	}
}
