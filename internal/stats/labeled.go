package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// LabeledHistograms is a family of LatencyHistograms keyed by one label
// value — the shape of samplealign_stage_seconds{stage="..."}. Series
// are created on first observation; callers are expected to keep the
// label set bounded (the serve layer filters span names to the
// canonical pipeline stages before observing).
type LabeledHistograms struct {
	bounds []float64

	mu sync.Mutex
	m  map[string]*LatencyHistogram
}

// NewLabeledHistograms builds a family whose series all share bounds.
// Bounds are validated once here with the same rules as
// NewLatencyHistogram.
func NewLabeledHistograms(bounds []float64) (*LabeledHistograms, error) {
	if _, err := NewLatencyHistogram(bounds); err != nil {
		return nil, err
	}
	return &LabeledHistograms{
		bounds: append([]float64(nil), bounds...),
		m:      make(map[string]*LatencyHistogram),
	}, nil
}

// MustLabeledHistograms is NewLabeledHistograms that panics on bad
// bounds, for package-level metric construction.
func MustLabeledHistograms(bounds []float64) *LabeledHistograms {
	l, err := NewLabeledHistograms(bounds)
	if err != nil {
		panic(err)
	}
	return l
}

// Observe records one observation of d seconds under the given label
// value, creating the series on first use.
func (l *LabeledHistograms) Observe(label string, d float64) {
	l.mu.Lock()
	h := l.m[label]
	if h == nil {
		h = MustLatencyHistogram(l.bounds)
		l.m[label] = h
	}
	l.mu.Unlock()
	h.Observe(d)
}

// Labels returns the label values with at least one series, sorted.
func (l *LabeledHistograms) Labels() []string {
	l.mu.Lock()
	out := make([]string, 0, len(l.m))
	for k := range l.m {
		out = append(out, k)
	}
	l.mu.Unlock()
	sort.Strings(out)
	return out
}

// Snapshot returns a consistent copy of one series, and whether it
// exists.
func (l *LabeledHistograms) Snapshot(label string) (HistogramSnapshot, bool) {
	l.mu.Lock()
	h := l.m[label]
	l.mu.Unlock()
	if h == nil {
		return HistogramSnapshot{}, false
	}
	return h.Snapshot(), true
}

// WritePrometheus renders the whole family under one metric name with
// HELP/TYPE headers, one bucket/sum/count series per label value in
// sorted label order. Nothing is written when no series exist yet
// (Prometheus treats an absent metric as absent, not zero).
func (l *LabeledHistograms) WritePrometheus(b *strings.Builder, name, help, labelName string) {
	labels := l.Labels()
	if len(labels) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	for _, lv := range labels {
		snap, ok := l.Snapshot(lv)
		if !ok {
			continue
		}
		snap.writeSeries(b, name, fmt.Sprintf("%s=%q", labelName, lv))
	}
}
