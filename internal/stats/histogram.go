package stats

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a goroutine-safe monotonically increasing counter, the
// unit of the job service's /metrics endpoint.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (delta < 0 is a programming error and is ignored).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.n.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a goroutine-safe settable value, for /metrics gauges whose
// truth lives in the instrumented component rather than in a sampled
// snapshot (e.g. "is the server draining", store occupancy).
type Gauge struct{ n atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add adjusts the value by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// LatencyHistogram is a goroutine-safe fixed-bucket histogram of
// durations (in seconds). Buckets are cumulative in the exposition
// (Prometheus "le" convention): bucket i counts observations ≤
// Bounds[i], with a final implicit +Inf bucket. The zero value is not
// usable; construct with NewLatencyHistogram.
type LatencyHistogram struct {
	bounds []float64 // strictly increasing upper bounds, seconds

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; counts[len(bounds)] is +Inf
	sum    float64
	total  uint64
}

// DefaultLatencyBounds covers request latencies from 1 ms to ~4 min in
// roughly 4× steps — wide enough for both cache hits and full
// alignments.
func DefaultLatencyBounds() []float64 {
	return []float64{0.001, 0.004, 0.016, 0.064, 0.25, 1, 4, 16, 64, 256}
}

// NewLatencyHistogram builds a histogram over the given strictly
// increasing upper bounds (seconds). An empty or unsorted bounds slice
// is rejected.
func NewLatencyHistogram(bounds []float64) (*LatencyHistogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("stats: histogram bounds not strictly increasing at %d (%g after %g)",
				i, bounds[i], bounds[i-1])
		}
	}
	return &LatencyHistogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}, nil
}

// MustLatencyHistogram is NewLatencyHistogram that panics on bad bounds;
// for package-level metric construction with literal bounds.
func MustLatencyHistogram(bounds []float64) *LatencyHistogram {
	h, err := NewLatencyHistogram(bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe records one observation of d seconds. NaN is ignored;
// negative values count into the first bucket.
func (h *LatencyHistogram) Observe(d float64) {
	if math.IsNaN(d) {
		return
	}
	// Binary search for the first bound >= d; linear would do for ~10
	// buckets, but the invariant (sorted bounds) makes this free.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.mu.Lock()
	h.counts[lo]++
	h.sum += d
	h.total++
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent point-in-time copy of a
// LatencyHistogram.
type HistogramSnapshot struct {
	Bounds     []float64 // upper bounds, seconds (the +Inf bucket is implicit)
	Counts     []uint64  // per-bucket (non-cumulative) counts, len(Bounds)+1
	Sum        float64   // sum of all observations, seconds
	Total      uint64    // number of observations
	Cumulative []uint64  // cumulative counts aligned with Bounds, plus +Inf last
}

// Snapshot returns a consistent copy of the histogram state.
func (h *LatencyHistogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	cum := make([]uint64, len(counts))
	var run uint64
	for i, c := range counts {
		run += c
		cum[i] = run
	}
	return HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Counts:     counts,
		Sum:        sum,
		Total:      total,
		Cumulative: cum,
	}
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// inside the containing bucket, taking the first bound as the scale of
// the lowest bucket and the last finite bound for the +Inf bucket.
// Returns NaN on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Total)
	for i, c := range s.Cumulative {
		if float64(c) < target {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket: no upper bound to interpolate to
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		var below uint64
		if i > 0 {
			lo = s.Bounds[i-1]
			below = s.Cumulative[i-1]
		}
		width := s.Bounds[i] - lo
		inBucket := float64(c - below)
		if inBucket == 0 {
			return s.Bounds[i]
		}
		return lo + width*(target-float64(below))/inBucket
	}
	return s.Bounds[len(s.Bounds)-1]
}

// WritePrometheus renders the histogram in Prometheus text exposition
// format under the given metric name (no labels), with HELP and TYPE
// headers.
func (s HistogramSnapshot) WritePrometheus(b *strings.Builder, name, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	s.writeSeries(b, name, "")
}

// writeSeries emits the bucket/sum/count sample lines for one series.
// labels, when non-empty, is a rendered `key="value"` fragment inserted
// before the le label (e.g. `stage="guidetree"`).
func (s HistogramSnapshot) writeSeries(b *strings.Builder, name, labels string) {
	sep := ""
	if labels != "" {
		sep = labels + ","
	}
	for i, bound := range s.Bounds {
		fmt.Fprintf(b, "%s_bucket{%sle=\"%g\"} %d\n", name, sep, bound, s.Cumulative[i])
	}
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, s.Total)
	if labels != "" {
		fmt.Fprintf(b, "%s_sum{%s} %g\n", name, labels, s.Sum)
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, s.Total)
		return
	}
	fmt.Fprintf(b, "%s_sum %g\n", name, s.Sum)
	fmt.Fprintf(b, "%s_count %d\n", name, s.Total)
}
