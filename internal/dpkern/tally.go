package dpkern

import "sync/atomic"

// Process-wide kernel-dispatch tally: how many DP alignments ran the
// striped int16 kernel vs. escaped to the scalar float64 path because
// the exactness bounds (or the unit-leaf precondition) failed. The
// tracer samples deltas around each bucket alignment, turning the tally
// into per-span striped/escape counts. An explicit Scalar kernel
// request counts as neither — only Auto/Striped dispatches are tallied.
//
// The counters are observational only; nothing in alignment control
// flow reads them, so they cannot perturb the byte-identical
// determinism contract. Note they are process-wide: concurrent jobs in
// one server overlap in the deltas.
var (
	stripedCalls atomic.Int64
	escapeCalls  atomic.Int64
)

// NoteStriped records one DP alignment dispatched to the striped kernel.
func NoteStriped() { stripedCalls.Add(1) }

// NoteEscape records one DP alignment that wanted the striped kernel
// but fell back to the scalar path.
func NoteEscape() { escapeCalls.Add(1) }

// Tally is a snapshot of the kernel-dispatch counters.
type Tally struct {
	Striped int64
	Escaped int64
}

// TallySnapshot returns the current process-wide dispatch counts.
func TallySnapshot() Tally {
	return Tally{Striped: stripedCalls.Load(), Escaped: escapeCalls.Load()}
}

// Sub returns the delta t - t0, for bracketing a pipeline phase.
func (t Tally) Sub(t0 Tally) Tally {
	return Tally{Striped: t.Striped - t0.Striped, Escaped: t.Escaped - t0.Escaped}
}
