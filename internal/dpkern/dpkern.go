// Package dpkern provides the striped scaled-integer DP kernel family:
// Farrar-style query-profile scoring over saturating int16 lanes for the
// affine-gap global aligners in internal/pairwise and internal/profile.
//
// The kernels are an exactness-preserving fast path, not an
// approximation. All shipped substitution matrices (BLOSUM62, DNA+5/−4)
// and gap models are half-integral, so every score the float64 kernels
// ever compute is an exact multiple of ½ with magnitude far below 2^52:
// float64 addition, subtraction and comparison on such values are exact,
// which means the whole scalar DP is secretly integer arithmetic at
// scale 2. A Table quantizes the matrix and gap model to int16 at that
// scale; when quantization is exact and the a-priori value bounds fit
// int16 (Fits/FitsBanded), the integer kernel performs bit-for-bit the
// same comparisons and tie-breaks as the scalar kernel and therefore
// produces the identical traceback and score. Anything outside those
// bounds — fractional matrices, extreme lengths, adversarial gap models
// — makes For return nil or Fits return false, and callers escape to
// the float64 path, keeping output byte-identical by construction.
//
// The speed comes from three classic tricks: a query profile (one score
// row per residue class, so the inner loop is a single indexed load
// instead of two alphabet lookups plus a 2-D matrix access), 7-byte DP
// cells (three int16 planes plus the packed traceback byte, versus 25
// bytes for the float64 planes), and a two-pass row schedule in which
// the M/X pass has no loop-carried dependency and is unrolled four wide
// while the serial Y chain runs in a tight second pass.
package dpkern

import "fmt"

// Kernel selects which DP kernel family the aligners use.
type Kernel uint8

const (
	// Auto (the zero value) uses the striped int16 kernels wherever the
	// exactness contract holds and escapes to the scalar float64 path
	// everywhere else. Output is byte-identical to Scalar.
	Auto Kernel = iota
	// Scalar forces the reference float64 kernels everywhere.
	Scalar
	// Striped behaves like Auto: the striped kernels are used where
	// exact and the escape hatch still guards the rest, because the
	// escape is a correctness contract, not a heuristic. The distinct
	// name exists so runs can be pinned against future Auto policy
	// changes.
	Striped
)

// String returns the flag spelling of k.
func (k Kernel) String() string {
	switch k {
	case Scalar:
		return "scalar"
	case Striped:
		return "striped"
	default:
		return "auto"
	}
}

// Parse converts a flag spelling ("auto", "scalar", "striped"; "" means
// auto) into a Kernel.
func Parse(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return Auto, nil
	case "scalar":
		return Scalar, nil
	case "striped":
		return Striped, nil
	}
	return Auto, fmt.Errorf("dpkern: unknown kernel %q (want auto, scalar or striped)", s)
}
