package dpkern

import (
	"math"
	"sync"

	"repro/internal/dp"
	"repro/internal/submat"
)

// Quantization bounds. Scores are scaled by scale (half-integral scores
// become integers); neg is the −inf sentinel. The bounds are chosen so
// that no reachable arithmetic can wrap int16:
//
//   - real DP values and their one-step candidates stay within ±maxReal
//     (enforced a priori by Fits/FitsBanded);
//   - −inf-derived values stay below negGuard and above −32768 (the
//     full kernel's dead chains are at most two extensions deep, the
//     banded kernel clamps them at neg), so "is this cell reachable"
//     is decided identically to the float64 kernels' v > −inf test.
const (
	scale      = 2
	neg        = int16(-31000) // −inf sentinel
	negGuard   = int16(-30000) // values above this are real, below −inf-derived
	maxReal    = 28000         // bound on |real value| and one-step candidates
	maxStep    = 2000          // bound on |scaled substitution score|
	maxGapStep = 1500          // bound on scaled open + 2·extend
)

// Table is the scaled-integer image of one (substitution matrix, gap
// model) pair: an (L+1)×(L+1) int16 score table whose last row/column
// hold the matrix's unknown-residue score, a byte→row map covering all
// 256 residue bytes, and the scaled gap costs. Tables are immutable and
// cached; a nil *Table means the pair has no exact int16 representation
// and callers must use the scalar kernels.
type Table struct {
	L      int     // alphabet length; row L scores unknown residues
	scores []int16 // (L+1)×(L+1), row-major, scaled
	rowOf  [256]uint8
	openE  int16 // scaled open+extend (charged when a gap opens)
	ext    int16 // scaled extend

	maxPos    int64 // max positive scaled score (0 if none)
	maxAbs    int64 // max |scaled score|
	worstStep int64 // max cost any single DP step can subtract
}

type tableKey struct {
	sub *submat.Matrix
	gap submat.Gap
}

var tables sync.Map // tableKey → *Table (nil when not representable)

// For returns the cached quantization table for the matrix and gap
// model, or nil when the pair is not exactly representable in scaled
// int16 (callers then escape to the scalar kernels).
func For(sub *submat.Matrix, gap submat.Gap) *Table {
	key := tableKey{sub, gap}
	if v, ok := tables.Load(key); ok {
		t, _ := v.(*Table)
		return t
	}
	t := build(sub, gap)
	v, _ := tables.LoadOrStore(key, t)
	tt, _ := v.(*Table)
	return tt
}

func build(sub *submat.Matrix, gap submat.Gap) *Table {
	alpha := sub.Alphabet()
	L := alpha.Len()
	if L < 1 || L > 64 {
		return nil
	}
	ok := true
	quant := func(v float64) int16 {
		s := v * scale
		if s != math.Trunc(s) || s < -maxStep || s > maxStep {
			ok = false
			return 0
		}
		return int16(s)
	}
	L1 := L + 1
	t := &Table{L: L, scores: make([]int16, L1*L1)}
	for i := 0; i < L; i++ {
		for j := 0; j < L; j++ {
			t.scores[i*L1+j] = quant(sub.ScoreIdx(i, j))
		}
	}
	u := quant(sub.Unknown())
	for k := 0; k < L1; k++ {
		t.scores[L*L1+k] = u
		t.scores[k*L1+L] = u
	}
	open, ext := quant(gap.Open), quant(gap.Extend)
	if !ok || open < 0 || ext < 0 || int(open)+2*int(ext) > maxGapStep {
		return nil
	}
	t.openE, t.ext = open+ext, ext
	for b := 0; b < 256; b++ {
		if idx := alpha.Index(byte(b)); idx >= 0 {
			t.rowOf[b] = uint8(idx)
		} else {
			t.rowOf[b] = uint8(L)
		}
	}
	for _, v := range t.scores {
		sv := int64(v)
		if sv > t.maxPos {
			t.maxPos = sv
		}
		if sv < 0 {
			sv = -sv
		}
		if sv > t.maxAbs {
			t.maxAbs = sv
		}
	}
	t.worstStep = int64(t.openE)
	if t.maxAbs > t.worstStep {
		t.worstStep = t.maxAbs
	}
	return t
}

// Fits reports whether an n×m full-matrix global DP is guaranteed to
// stay within the int16 value bounds. Every real prefix value is at
// most min(n,m)·maxPos and at least the two-open boundary-path bound,
// so both sides are checked with one step of headroom for candidate
// values that feed a max before being stored.
func (t *Table) Fits(n, m int) bool {
	if t == nil || n < 1 || m < 1 {
		return false
	}
	mn := int64(m)
	if n < m {
		mn = int64(n)
	}
	if (mn+1)*t.maxPos > maxReal {
		return false
	}
	return 3*int64(t.openE)+int64(n+m+1)*int64(t.ext)+2*t.maxAbs <= maxReal
}

// FitsBanded is the bound check for the banded kernel. A band can force
// arbitrarily bad alignments, so the floor uses the unconditional
// any-path bound (n+m)·worstStep instead of the boundary-path bound.
func (t *Table) FitsBanded(n, m int) bool {
	if t == nil || n < 1 || m < 1 {
		return false
	}
	mn := int64(m)
	if n < m {
		mn = int64(n)
	}
	if (mn+1)*t.maxPos > maxReal {
		return false
	}
	return int64(n+m+2)*t.worstStep <= maxReal
}

// MapRows translates residue bytes to table row indices (row L for any
// byte outside the alphabet, mirroring Matrix.Score's unknown rule),
// using the workspace byte arena.
func (t *Table) MapRows(w *dp.Workspace, seq []byte) []byte {
	r := w.Bytes(len(seq))
	for i, c := range seq {
		r[i] = t.rowOf[c]
	}
	return r
}

// queryProfile builds the Farrar query profile for row set rb: one
// contiguous int16 score row per residue class, so the kernel's inner
// loop does a single indexed load per cell.
func (t *Table) queryProfile(w *dp.Workspace, rb []byte) []int16 {
	m := len(rb)
	L1 := t.L + 1
	qp := w.Int16s(L1 * m)
	for r := 0; r < L1; r++ {
		srow := t.scores[r*L1 : (r+1)*L1]
		qrow := qp[r*m : (r+1)*m]
		for j, c := range rb {
			qrow[j] = srow[c]
		}
	}
	return qp
}
