package dpkern

import "repro/internal/dp"

// Global runs the striped affine-gap global DP over row sets ra and rb
// (table row indices, see MapRows). It fills the workspace's int16
// planes and packed traceback exactly as the scalar kernels fill
// theirs — same boundary bytes, same tie-breaks — and returns the end
// state plus the unscaled score. The caller must have checked
// Fits(len(ra), len(rb)) and reserved the workspace with ReserveInt.
//
// Row schedule: pass 1 computes M and X for a row, which read only the
// previous row and so unroll four wide with no carried dependency;
// pass 2 runs the serial Y recurrence and folds its predecessor choice
// into the traceback byte written by pass 1.
func (t *Table) Global(w *dp.Workspace, ra, rb []byte) (byte, float64) {
	n, m := len(ra), len(rb)
	cols := m + 1
	mi, xi, yi, tb := w.MI, w.XI, w.YI, w.TB
	openE, ext := t.openE, t.ext
	qp := t.queryProfile(w, rb)

	mi[0], xi[0], yi[0] = 0, neg, neg
	for i := 1; i <= n; i++ {
		idx := i * cols
		mi[idx], yi[idx] = neg, neg
		xi[idx] = gapRun(i, openE, ext)
		tb[idx] = dp.PackTB(dp.M, dp.X, dp.M)
	}
	for j := 1; j <= m; j++ {
		mi[j], xi[j] = neg, neg
		yi[j] = gapRun(j, openE, ext)
		tb[j] = dp.PackTB(dp.M, dp.M, dp.Y)
	}

	for i := 1; i <= n; i++ {
		row := i * cols
		pm := mi[row-cols : row]
		px := xi[row-cols : row]
		py := yi[row-cols : row]
		cm := mi[row : row+cols]
		cx := xi[row : row+cols]
		cy := yi[row : row+cols]
		tr := tb[row : row+cols]
		q := qp[int(ra[i-1])*m:]
		q = q[:m]

		j := 1
		for ; j+3 <= m; j += 4 {
			b0, s0 := dp.M, pm[j-1]
			if v := px[j-1]; v > s0 {
				b0, s0 = dp.X, v
			}
			if v := py[j-1]; v > s0 {
				b0, s0 = dp.Y, v
			}
			cm[j] = s0 + q[j-1]
			x0, f0 := pm[j]-openE, dp.M
			if v := px[j] - ext; x0 < v {
				x0, f0 = v, dp.X
			}
			cx[j] = x0
			tr[j] = b0 | f0<<2

			b1, s1 := dp.M, pm[j]
			if v := px[j]; v > s1 {
				b1, s1 = dp.X, v
			}
			if v := py[j]; v > s1 {
				b1, s1 = dp.Y, v
			}
			cm[j+1] = s1 + q[j]
			x1, f1 := pm[j+1]-openE, dp.M
			if v := px[j+1] - ext; x1 < v {
				x1, f1 = v, dp.X
			}
			cx[j+1] = x1
			tr[j+1] = b1 | f1<<2

			b2, s2 := dp.M, pm[j+1]
			if v := px[j+1]; v > s2 {
				b2, s2 = dp.X, v
			}
			if v := py[j+1]; v > s2 {
				b2, s2 = dp.Y, v
			}
			cm[j+2] = s2 + q[j+1]
			x2, f2 := pm[j+2]-openE, dp.M
			if v := px[j+2] - ext; x2 < v {
				x2, f2 = v, dp.X
			}
			cx[j+2] = x2
			tr[j+2] = b2 | f2<<2

			b3, s3 := dp.M, pm[j+2]
			if v := px[j+2]; v > s3 {
				b3, s3 = dp.X, v
			}
			if v := py[j+2]; v > s3 {
				b3, s3 = dp.Y, v
			}
			cm[j+3] = s3 + q[j+2]
			x3, f3 := pm[j+3]-openE, dp.M
			if v := px[j+3] - ext; x3 < v {
				x3, f3 = v, dp.X
			}
			cx[j+3] = x3
			tr[j+3] = b3 | f3<<2
		}
		for ; j <= m; j++ {
			bm, bs := dp.M, pm[j-1]
			if v := px[j-1]; v > bs {
				bm, bs = dp.X, v
			}
			if v := py[j-1]; v > bs {
				bm, bs = dp.Y, v
			}
			cm[j] = bs + q[j-1]
			vx, bx := pm[j]-openE, dp.M
			if v := px[j] - ext; vx < v {
				vx, bx = v, dp.X
			}
			cx[j] = vx
			tr[j] = bm | bx<<2
		}

		yprev := cy[0]
		for j := 1; j <= m; j++ {
			vy, by := cm[j-1]-openE, dp.M
			if v := yprev - ext; vy < v {
				vy, by = v, dp.Y
			}
			cy[j] = vy
			yprev = vy
			tr[j] |= by << 4
		}
	}

	return t.endState(w, n, m)
}

// Banded is Global restricted to diagonals j−i ∈ [lo, hi]; the caller
// supplies bounds already clamped to contain both corners (matching the
// scalar banded kernels) and must have checked FitsBanded. Off-band
// reads see the neg prefill exactly where the scalar kernel sees −inf;
// dead gap chains running down the band edge are clamped at neg so they
// cannot wrap, which the scalar kernel gets for free from −inf.
func (t *Table) Banded(w *dp.Workspace, ra, rb []byte, lo, hi int) (byte, float64) {
	n, m := len(ra), len(rb)
	cols := m + 1
	mi, xi, yi, tb := w.MI, w.XI, w.YI, w.TB
	openE, ext := t.openE, t.ext
	qp := t.queryProfile(w, rb)

	total := (n + 1) * cols
	for i := 0; i < total; i++ {
		mi[i], xi[i], yi[i] = neg, neg, neg
	}
	mi[0] = 0
	for i := 1; i <= n && -i >= lo; i++ {
		idx := i * cols
		xi[idx] = gapRun(i, openE, ext)
		tb[idx] = dp.PackTB(dp.M, dp.X, dp.M)
	}
	for j := 1; j <= m && j <= hi; j++ {
		yi[j] = gapRun(j, openE, ext)
		tb[j] = dp.PackTB(dp.M, dp.M, dp.Y)
	}

	for i := 1; i <= n; i++ {
		jLo := i + lo
		if jLo < 1 {
			jLo = 1
		}
		jHi := i + hi
		if jHi > m {
			jHi = m
		}
		row := i * cols
		pm := mi[row-cols : row]
		px := xi[row-cols : row]
		py := yi[row-cols : row]
		cm := mi[row : row+cols]
		cx := xi[row : row+cols]
		cy := yi[row : row+cols]
		tr := tb[row : row+cols]
		q := qp[int(ra[i-1])*m:]
		q = q[:m]

		for j := jLo; j <= jHi; j++ {
			bm, bs := dp.M, pm[j-1]
			if v := px[j-1]; v > bs {
				bm, bs = dp.X, v
			}
			if v := py[j-1]; v > bs {
				bm, bs = dp.Y, v
			}
			if bs > negGuard {
				cm[j] = bs + q[j-1]
			} else {
				bm = dp.M
			}

			vx, bx := pm[j]-openE, dp.M
			if v := px[j] - ext; vx < v {
				vx, bx = v, dp.X
			}
			if vx < neg {
				vx = neg
			}
			cx[j] = vx

			vy, by := cm[j-1]-openE, dp.M
			if v := cy[j-1] - ext; vy < v {
				vy, by = v, dp.Y
			}
			if vy < neg {
				vy = neg
			}
			cy[j] = vy
			tr[j] = bm | bx<<2 | by<<4
		}
	}

	return t.endState(w, n, m)
}

// gapRun is the boundary value of a leading gap of length i: −(open +
// i·ext) at scale. Computed in int to sidestep int16 conversion of i;
// Fits guarantees the result is in range whenever ext > 0, and the
// product vanishes when ext == 0.
func gapRun(i int, openE, ext int16) int16 {
	return int16(-(int(openE) + (i-1)*int(ext)))
}

// endState picks the final DP state with the scalar kernels' exact
// comparison order and returns it with the unscaled score.
func (t *Table) endState(w *dp.Workspace, n, m int) (byte, float64) {
	end := w.At(n, m)
	state, best := dp.M, w.MI[end]
	if v := w.XI[end]; v > best {
		state, best = dp.X, v
	}
	if v := w.YI[end]; v > best {
		state, best = dp.Y, v
	}
	return state, float64(best) / scale
}
