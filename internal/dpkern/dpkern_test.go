package dpkern

import (
	"testing"

	"repro/internal/bio"
	"repro/internal/submat"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Kernel
		ok   bool
	}{
		{"", Auto, true},
		{"auto", Auto, true},
		{"scalar", Scalar, true},
		{"striped", Striped, true},
		{"AUTO", Auto, false},
		{"sse", Auto, false},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if (err == nil) != c.ok {
			t.Errorf("Parse(%q): err=%v, want ok=%v", c.in, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, k := range []Kernel{Auto, Scalar, Striped} {
		rt, err := Parse(k.String())
		if err != nil || rt != k {
			t.Errorf("Parse(%v.String()) = %v, %v; want identity", k, rt, err)
		}
	}
}

func TestForShippedMatrices(t *testing.T) {
	// Every shipped (matrix, gap) pair is half-integral and must have an
	// exact int16 image — the striped kernels cover the default paths.
	if For(submat.BLOSUM62, submat.DefaultProteinGap) == nil {
		t.Error("BLOSUM62 + default protein gap: want a table, got nil")
	}
	if For(submat.DNASimple, submat.DefaultDNAGap) == nil {
		t.Error("DNA+5/-4 + default DNA gap: want a table, got nil")
	}
	// The cache must hand back the same immutable table.
	if For(submat.BLOSUM62, submat.DefaultProteinGap) != For(submat.BLOSUM62, submat.DefaultProteinGap) {
		t.Error("For is not caching")
	}
}

// fracMatrix builds an amino-acid matrix whose scores are not multiples
// of ½ — no exact scaled-int16 image exists.
func fracMatrix() *submat.Matrix {
	L := bio.AminoAcids.Len()
	table := make([][]float64, L)
	for i := range table {
		table[i] = make([]float64, L)
		for j := range table[i] {
			if i == j {
				table[i][j] = 1.3 // 2.6 scaled: not an integer
			} else {
				table[i][j] = -0.7
			}
		}
	}
	return submat.New("frac", bio.AminoAcids, table, -0.7)
}

func TestForRejectsNonDyadic(t *testing.T) {
	if tbl := For(fracMatrix(), submat.DefaultProteinGap); tbl != nil {
		t.Errorf("fractional matrix: want nil table, got %v", tbl)
	}
}

func TestForRejectsExtremeGapModels(t *testing.T) {
	// open + 2·extend beyond maxGapStep would let −inf chains wrap int16.
	if tbl := For(submat.BLOSUM62, submat.Gap{Open: 300, Extend: 300}); tbl != nil {
		t.Error("huge gap model: want nil table")
	}
	// Negative penalties never occur; reject rather than reason about them.
	if tbl := For(submat.BLOSUM62, submat.Gap{Open: -1, Extend: 1}); tbl != nil {
		t.Error("negative open: want nil table")
	}
	if tbl := For(submat.BLOSUM62, submat.Gap{Open: 1, Extend: 0.25}); tbl != nil {
		t.Error("quarter-integral extend: want nil table")
	}
}

func TestFitsBounds(t *testing.T) {
	tbl := For(submat.BLOSUM62, submat.DefaultProteinGap)
	if tbl == nil {
		t.Fatal("no BLOSUM62 table")
	}
	if !tbl.Fits(100, 100) || !tbl.Fits(1, 1) {
		t.Error("small problems must fit")
	}
	if tbl.Fits(0, 10) || tbl.Fits(10, 0) {
		t.Error("empty sides never fit (scalar path handles them)")
	}
	// BLOSUM62's max score is 11 (22 scaled): min(n,m) ~> maxReal/22
	// must be rejected — the positive bound would overflow.
	if tbl.Fits(4000, 4000) {
		t.Error("huge min-side must not fit")
	}
	// Long-and-thin stays fine on the positive side but the gap floor
	// must eventually reject it: 3·openE + (n+m+1)·ext grows with n.
	if !tbl.Fits(5, 1000) {
		t.Error("long-and-thin within gap floor must fit")
	}
	if tbl.Fits(5, 30000) {
		t.Error("gap floor must reject extreme total length")
	}
	var nilTbl *Table
	if nilTbl.Fits(5, 5) || nilTbl.FitsBanded(5, 5) {
		t.Error("nil table never fits")
	}
}

func TestFitsBandedStricter(t *testing.T) {
	tbl := For(submat.BLOSUM62, submat.DefaultProteinGap)
	if tbl == nil {
		t.Fatal("no BLOSUM62 table")
	}
	if !tbl.FitsBanded(100, 100) {
		t.Error("small banded problems must fit")
	}
	// The banded floor charges worstStep per step: a band can force the
	// whole path through mismatches, so lengths the full-matrix check
	// accepts must be rejected once (n+m+2)·worstStep crosses the bound.
	n := 1200
	if !tbl.Fits(5, n) {
		t.Fatalf("precondition: Fits(5, %d) should hold", n)
	}
	if tbl.FitsBanded(5, n) {
		t.Errorf("FitsBanded(5, %d) must be stricter than Fits", n)
	}
}
