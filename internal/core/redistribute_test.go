package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bio"
	"repro/internal/mpi"
)

// TestIdenticalSequencesBucketSkew is the regression for rank-tied pivot
// collapse: when every sequence shares one k-mer rank (identical
// sequences are the extreme case), rank-only pivots funnel the whole
// input into a single bucket. The (Rank, Orig) tie-broken pivots must
// keep every bucket within the paper's 2N/p bound.
func TestIdenticalSequencesBucketSkew(t *testing.T) {
	const n, p = 64, 4
	data := []byte("MKVLWAALLVTFLAGCQAKVEQAVETEPEPELRQQTEWQSGQRWELALGRFWDYLRWVQT")
	seqs := make([]bio.Sequence, n)
	for i := range seqs {
		seqs[i] = bio.Sequence{ID: fmt.Sprintf("s%03d", i), Data: data}
	}
	res, err := AlignInproc(seqs, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkCompleteAlignment(t, res.Alignment, seqs)
	sizes := res.Stats[0].BucketSizes
	if len(sizes) != p {
		t.Fatalf("bucket sizes: %v", sizes)
	}
	bound := 2 * n / p
	nonEmpty := 0
	for r, sz := range sizes {
		if sz > bound {
			t.Fatalf("bucket %d holds %d sequences, 2N/p bound is %d (sizes %v)", r, sz, bound, sizes)
		}
		if sz > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("tied ranks collapsed into %d bucket(s): %v", nonEmpty, sizes)
	}
}

// TestClusterWideDuplicateIDs exercises the SPMD path (core.AlignContext
// without the inproc driver's local check, as AlignTCP reaches it): a
// duplicate ID split across two ranks must fail the whole world with an
// error naming the colliding ID instead of silently dropping a row in
// the glue phase.
func TestClusterWideDuplicateIDs(t *testing.T) {
	const p = 3
	shards := make([][]bio.Sequence, p)
	for r := 0; r < p; r++ {
		shards[r] = []bio.Sequence{
			{ID: fmt.Sprintf("r%d-a", r), Data: []byte("MKVLWAALLVTFLAG")},
			{ID: fmt.Sprintf("r%d-b", r), Data: []byte("MKVLWAALLVQFLAG")},
		}
	}
	shards[2][1].ID = "r0-a" // collides with rank 0's first sequence
	var rankErrs [p]error
	_ = mpi.Run(p, func(c mpi.Comm) error {
		_, _, err := Align(c, shards[c.Rank()], Config{})
		rankErrs[c.Rank()] = err
		return err
	})
	for r, err := range rankErrs {
		if err == nil {
			t.Fatalf("rank %d accepted a cluster-wide duplicate id", r)
		}
		if !strings.Contains(err.Error(), `"r0-a"`) {
			t.Fatalf("rank %d error does not name the duplicate id: %v", r, err)
		}
	}
}

// TestClusterUniqueIDsPass makes sure the collective check does not
// reject clean inputs and stays transparent on a single-rank world.
func TestClusterUniqueIDsPass(t *testing.T) {
	seqs := testFamily(t, 9, 50, 300, 17)
	for _, p := range []int{1, 3} {
		res, err := AlignInproc(seqs, p, Config{})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		checkCompleteAlignment(t, res.Alignment, seqs)
	}
}

// TestDuplicateEmptyIDsRejected guards the "" sentinel trap: bare FASTA
// '>' headers parse to empty IDs, which must still count as duplicates.
func TestDuplicateEmptyIDsRejected(t *testing.T) {
	seqs := []bio.Sequence{
		{ID: "", Data: []byte("MKVLWAALLVTFLAG")},
		{ID: "", Data: []byte("MKVLWAGLLVTFLAG")},
	}
	if _, err := AlignInproc(seqs, 2, Config{}); err == nil || !strings.Contains(err.Error(), `""`) {
		t.Fatalf("duplicate empty ids accepted: %v", err)
	}
}
