package core

import (
	"context"
	"fmt"
	//lint:allow determinism rand is only used by the RandomSampling ablation, seeded per-rank with a fixed constant
	"math/rand"
	"sort"

	"repro/internal/bio"
	"repro/internal/dpkern"
	"repro/internal/kmer"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/obs"
)

// Align runs Sample-Align-D as an SPMD program: every rank calls it with
// its local slice of the input. The full alignment is returned on rank 0
// (nil elsewhere); Stats are returned on every rank.
func Align(c mpi.Comm, local []bio.Sequence, cfg Config) (*msa.Alignment, *Stats, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return AlignContext(context.Background(), c, local, cfg)
}

// AlignContext is Align bound to a context. Cancelling ctx unwinds the
// whole rank: blocking collectives unblock with the context's error, the
// bucket MSA stops at its next merge, and the rank returns ctx.Err()
// (context.Canceled after a cancel, context.DeadlineExceeded after a
// missed deadline).
func AlignContext(ctx context.Context, c mpi.Comm, local []bio.Sequence, cfg Config) (*msa.Alignment, *Stats, error) {
	origs := make([]int64, len(local))
	for i := range origs {
		origs[i] = int64(c.Rank())<<40 | int64(i)
	}
	return alignTagged(ctx, c, local, origs, cfg, false)
}

// ctxErr prefers the context's error over err once the context is done,
// so a rank unblocked by a closed world still reports the cancellation
// that caused it.
func ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// alignTagged is Align with explicit per-sequence global ordering keys
// (the inproc driver passes original input indices so the final
// alignment comes back in input order). idsVerified marks worlds whose
// driver already proved sequence-ID uniqueness across all ranks, so the
// cluster-wide check (and its communication) can be skipped.
func alignTagged(ctx context.Context, c mpi.Comm, local []bio.Sequence, origs []int64, cfg Config, idsVerified bool) (*msa.Alignment, *Stats, error) {
	if len(origs) != len(local) {
		return nil, nil, fmt.Errorf("core: %d origin keys for %d sequences", len(origs), len(local))
	}
	// Bind the communicator to the context: every blocking Recv below —
	// direct or inside a collective — now unblocks on cancellation.
	c = mpi.WithContext(ctx, c)
	cfg = cfg.withDefaults(c.Size())
	stats := &Stats{Rank: c.Rank()}
	tStart := startClock()

	// Per-rank span: the root of this rank's slice of the trace. The
	// deferred close stamps the communicator's traffic counters on it,
	// so each rank's send/recv bytes are readable straight off the tree.
	ctx, rankSpan := obs.Start(ctx, "rank")
	if rankSpan != nil {
		rankSpan.SetInt("rank", int64(c.Rank()))
		rankSpan.SetInt("procs", int64(c.Size()))
		defer func() {
			sn := c.Stats().Snapshot()
			rankSpan.SetInt("bytes_sent", sn.BytesSent)
			rankSpan.SetInt("bytes_recv", sn.BytesRecv)
			rankSpan.SetInt("msgs_sent", sn.MsgsSent)
			rankSpan.SetInt("msgs_recv", sn.MsgsRecv)
			rankSpan.End()
		}()
	}

	counter, err := kmer.NewCounter(cfg.Compress, cfg.K)
	if err != nil {
		return nil, nil, err
	}

	seqs := make([]wireSeq, len(local))
	for i, s := range local {
		seqs[i] = wireSeq{ID: s.ID, Desc: s.Desc, Data: bio.Ungap(s.Data), Orig: origs[i]}
		if len(seqs[i].Data) == 0 {
			return nil, nil, fmt.Errorf("core: sequence %q is empty", s.ID)
		}
	}

	// Sequence IDs must be unique across the whole cluster: the glue
	// phase keys rows by ID (origMap), so a collision would silently
	// drop or misorder a row in the final alignment. Every rank takes
	// part in the check and fails with the same error. Skipped when the
	// driver already verified the whole input (inproc), and done without
	// communication on single-rank worlds, so the collective's bytes
	// never distort the communication stats of the paper's benchmarks.
	if !idsVerified {
		if err := checkClusterIDs(c, seqs); err != nil {
			return nil, nil, ctxErr(ctx, err)
		}
	}

	p := c.Size()
	var bucket []wireSeq
	if p == 1 {
		bucket = seqs
	} else {
		dctx, dsp := obs.Start(ctx, "decompose")
		bucket, err = redistribute(dctx, c, counter, seqs, cfg, stats)
		if err != nil {
			dsp.End()
			return nil, nil, ctxErr(ctx, err)
		}
		dsp.SetInt("bucket", int64(len(bucket)))
		dsp.End()
	}
	stats.BucketSize = len(bucket)

	// ------- local alignment of the bucket (paper step: "align sequences
	// in each processor using any sequential multiple alignment system")
	tPhase := startClock()
	bctx, bsp := obs.Start(ctx, "bucketalign")
	tally0 := dpkern.TallySnapshot()
	localAligner := cfg.NewLocalAligner(cfg.Workers)
	if kc, ok := localAligner.(msa.KernelConfigurable); ok {
		kc.SetKernel(cfg.Kernel)
	}
	bucketSeqs := make([]bio.Sequence, len(bucket))
	for i, ws := range bucket {
		bucketSeqs[i] = bio.Sequence{ID: ws.ID, Desc: ws.Desc, Data: ws.Data}
	}
	localAln, err := msa.AlignWithContext(bctx, localAligner, bucketSeqs)
	if err != nil {
		bsp.End()
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, cerr
		}
		return nil, nil, fmt.Errorf("core: rank %d local alignment: %w", c.Rank(), err)
	}
	if bsp != nil {
		// Striped-vs-escape deltas come from process-wide counters, so
		// concurrent jobs in one server overlap in them; within a single
		// run they attribute kernel dispatch to this bucket alignment.
		d := dpkern.TallySnapshot().Sub(tally0)
		bsp.SetInt("seqs", int64(len(bucketSeqs)))
		bsp.SetInt("workers", int64(cfg.Workers))
		bsp.SetStr("aligner", localAligner.Name())
		bsp.SetStr("kernel", cfg.Kernel.String())
		bsp.SetInt("striped_calls", d.Striped)
		bsp.SetInt("escape_calls", d.Escaped)
	}
	bsp.End()
	stats.Timings.LocalAlign = tPhase.elapsed()

	if p == 1 {
		stats.Timings.Total = tStart.elapsed()
		stats.Comm = c.Stats().Snapshot()
		stats.BucketSizes = []int{len(bucket)}
		return localAln, stats, nil
	}

	// ------- merge stage: ancestor, fine-tune, glue
	mctx, msp := obs.Start(ctx, "merge")

	// ------- ancestor phases
	tPhase = startClock()
	actx, asp := obs.Start(mctx, "ancestor")
	var localAnc []byte
	if localAln.NumSeqs() > 0 {
		localAnc, err = localAln.Consensus(cfg.Sub.Alphabet(), cfg.AncestorOcc)
		if err != nil {
			return nil, nil, err
		}
	}
	ancestors, err := mpi.GatherValues(c, 0, tagAncGather, localAnc)
	if err != nil {
		return nil, nil, ctxErr(ctx, err)
	}
	var ga []byte
	if c.Rank() == 0 {
		ga, err = globalAncestor(actx, ancestors, localAligner, cfg)
		if err != nil {
			return nil, nil, ctxErr(ctx, err)
		}
	}
	if err := mpi.BcastValue(c, 0, tagGA, ga, &ga); err != nil {
		return nil, nil, ctxErr(ctx, err)
	}
	stats.GALen = len(ga)
	asp.SetInt("ga_len", int64(len(ga)))
	asp.End()
	stats.Timings.Ancestor = tPhase.elapsed()

	// ------- fine-tune against the GA template and glue at the root
	tPhase = startClock()
	_, fsp := obs.Start(mctx, "finetune")
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	path, err := templatePath(localAln, ga, cfg)
	if err != nil {
		return nil, nil, err
	}
	fsp.End()
	stats.Timings.FineTune = tPhase.elapsed()

	tPhase = startClock()
	_, gsp := obs.Start(mctx, "glue")
	final, err := glue(c, localAln, bucket, path, len(ga), cfg)
	if err != nil {
		gsp.End()
		msp.End()
		return nil, nil, ctxErr(ctx, err)
	}
	gsp.End()
	msp.End()
	stats.Timings.Glue = tPhase.elapsed()
	stats.Timings.Total = tStart.elapsed()
	stats.Comm = c.Stats().Snapshot()
	return final, stats, nil
}

// checkClusterIDs verifies sequence-ID uniqueness across every rank of
// the world: the root gathers all ID lists, finds the first collision,
// and broadcasts the verdict so every rank unwinds with the same error
// naming the duplicated ID. The SPMD/TCP path has no central entry
// point — this collective is its only cluster-wide guard. Single-rank
// worlds check locally without touching the communicator.
func checkClusterIDs(c mpi.Comm, seqs []wireSeq) error {
	ids := make([]string, len(seqs))
	for i := range seqs {
		ids[i] = seqs[i].ID
	}
	if c.Size() == 1 {
		return duplicateIDError(ids)
	}
	gathered, err := mpi.GatherValues(c, 0, tagIDCheck, ids)
	if err != nil {
		return err
	}
	var verdict string
	if c.Rank() == 0 {
		seen := make(map[string]int)
	scan:
		for r, part := range gathered {
			for _, id := range part {
				if prev, ok := seen[id]; ok {
					verdict = fmt.Sprintf("duplicate sequence id %q (on rank %d and rank %d); ids must be unique cluster-wide", id, prev, r)
					break scan
				}
				seen[id] = r
			}
		}
	}
	if err := mpi.BcastValue(c, 0, tagIDCheck, verdict, &verdict); err != nil {
		return err
	}
	if verdict != "" {
		return fmt.Errorf("core: %s", verdict)
	}
	return nil
}

// redistribute performs the sampling, pivoting and all-to-all exchange
// phases, returning this rank's bucket. The communicator is already
// context-bound by the caller; ctx is checked between compute phases.
func redistribute(ctx context.Context, c mpi.Comm, counter *kmer.Counter, seqs []wireSeq, cfg Config, stats *Stats) ([]wireSeq, error) {
	p, rank := c.Size(), c.Rank()

	// --- phase 1: local rank + local sort
	tPhase := startClock()
	_, sp1 := obs.Start(ctx, "localrank")
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	profiles := make([]kmer.Profile, len(seqs))
	for i := range seqs {
		profiles[i] = counter.Profile(seqs[i].Data)
	}
	localRanks, err := kmer.RanksContext(ctx, profiles, profiles, cfg.RankScale, cfg.Workers)
	if err != nil {
		return nil, err
	}
	for i := range seqs {
		seqs[i].Rank = localRanks[i]
	}
	sortByRank(seqs)
	sortProfilesLike(profiles, seqs, counter)
	sp1.End()
	stats.Timings.LocalRank = tPhase.elapsed()

	// --- phase 2: sample exchange + globalised rank
	tPhase = startClock()
	_, sp2 := obs.Start(ctx, "sample")
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := cfg.SampleSize
	if k > len(seqs) {
		k = len(seqs)
	}
	samples := pickSamples(seqs, k, cfg.Sampling, rank)
	sampleData := make([][]byte, len(samples))
	for i, s := range samples {
		sampleData[i] = s.Data
	}
	allSamples, err := mpi.AllGatherValues(c, tagSamples, sampleData)
	if err != nil {
		return nil, err
	}
	var samplePool []kmer.Profile
	for _, part := range allSamples {
		for _, data := range part {
			samplePool = append(samplePool, counter.Profile(data))
		}
	}
	globalRanks, err := kmer.RanksContext(ctx, profiles, samplePool, cfg.RankScale, cfg.Workers)
	if err != nil {
		return nil, err
	}
	for i := range seqs {
		seqs[i].Rank = globalRanks[i]
	}
	sortByRank(seqs)
	sp2.SetInt("pool", int64(len(samplePool)))
	sp2.End()
	stats.Timings.Sampling = tPhase.elapsed()

	// --- phase 3: regular sampling of p-1 rank keys, pivot selection
	tPhase = startClock()
	_, sp3 := obs.Start(ctx, "pivot")
	sampleKeys := regularRankSample(seqs, p-1)
	gathered, err := mpi.GatherValues(c, 0, tagPivotGather, sampleKeys)
	if err != nil {
		return nil, err
	}
	var pivots []pivotKey
	if rank == 0 {
		var all []pivotKey
		for _, part := range gathered {
			all = append(all, part...)
		}
		pivots = selectPivots(all, p)
	}
	if err := mpi.BcastValue(c, 0, tagPivots, pivots, &pivots); err != nil {
		return nil, err
	}
	sp3.End()
	stats.Timings.Pivoting = tPhase.elapsed()

	// --- phase 4: bucket partition + all-to-all exchange
	tPhase = startClock()
	_, sp4 := obs.Start(ctx, "exchange")
	parts := make([][]wireSeq, p)
	for _, ws := range seqs {
		key := pivotKey{Rank: ws.Rank, Orig: ws.Orig}
		b := sort.Search(len(pivots), func(i int) bool { return !pivots[i].less(key) })
		parts[b] = append(parts[b], ws)
	}
	got, err := mpi.AllToAllValues(c, tagRedist, parts)
	if err != nil {
		return nil, err
	}
	var bucket []wireSeq
	for _, part := range got {
		bucket = append(bucket, part...)
	}
	sortByRank(bucket)
	sp4.End()
	stats.Timings.Redistrib = tPhase.elapsed()

	// root records all bucket sizes for the load-balance analysis
	sizes, err := mpi.GatherValues(c, 0, tagBarrier, len(bucket))
	if err != nil {
		return nil, err
	}
	if rank == 0 {
		stats.BucketSizes = sizes
	}
	return bucket, nil
}

func sortByRank(seqs []wireSeq) {
	sort.SliceStable(seqs, func(i, j int) bool {
		if seqs[i].Rank != seqs[j].Rank {
			return seqs[i].Rank < seqs[j].Rank
		}
		return seqs[i].Orig < seqs[j].Orig
	})
}

// sortProfilesLike recomputes profiles to match a freshly sorted seqs
// slice. Recomputing is cheaper to reason about than tracking a
// permutation and costs one pass of k-mer counting.
func sortProfilesLike(profiles []kmer.Profile, seqs []wireSeq, counter *kmer.Counter) {
	for i := range seqs {
		profiles[i] = counter.Profile(seqs[i].Data)
	}
}

// pickSamples returns k samples of the locally sorted sequence list,
// evenly spaced (regular) or uniform random (ablation).
func pickSamples(seqs []wireSeq, k int, strategy SamplingStrategy, rank int) []wireSeq {
	if k <= 0 || len(seqs) == 0 {
		return nil
	}
	if k > len(seqs) {
		k = len(seqs)
	}
	out := make([]wireSeq, 0, k)
	switch strategy {
	case RandomSampling:
		rng := rand.New(rand.NewSource(int64(rank)*7919 + 17))
		for _, idx := range rng.Perm(len(seqs))[:k] {
			out = append(out, seqs[idx])
		}
	default:
		// evenly spaced: element at (i+1)·n/(k+1) of the sorted list
		for i := 0; i < k; i++ {
			idx := (i + 1) * len(seqs) / (k + 1)
			if idx >= len(seqs) {
				idx = len(seqs) - 1
			}
			out = append(out, seqs[idx])
		}
	}
	return out
}

// pivotKey is the total order sequences are partitioned by during
// redistribution: primarily the globalised k-mer rank, tie-broken by the
// global ordering key. Rank alone is not a usable partition key — on
// datasets with repeated or near-identical sequences many share one rank
// value, and rank-only pivots then funnel every tied sequence into a
// single bucket, breaking the paper's 2N/p load bound. Orig values are
// unique cluster-wide, so pivotKeys never collide and ties split evenly.
type pivotKey struct {
	Rank float64
	Orig int64
}

func (k pivotKey) less(o pivotKey) bool {
	if k.Rank != o.Rank {
		return k.Rank < o.Rank
	}
	return k.Orig < o.Orig
}

// regularRankSample picks k evenly spaced rank keys from the locally
// sorted list (the paper's p−1 regular samples).
func regularRankSample(seqs []wireSeq, k int) []pivotKey {
	if len(seqs) == 0 || k <= 0 {
		return nil
	}
	out := make([]pivotKey, 0, k)
	for i := 0; i < k; i++ {
		idx := (i + 1) * len(seqs) / (k + 1)
		if idx >= len(seqs) {
			idx = len(seqs) - 1
		}
		out = append(out, pivotKey{Rank: seqs[idx].Rank, Orig: seqs[idx].Orig})
	}
	return out
}

// selectPivots sorts the gathered regular samples and picks the paper's
// p−1 pivots Y_{p/2}, Y_{p+p/2}, …, Y_{(p−2)p+p/2}, scaled to however
// many samples actually arrived. Duplicate pivots (possible only when a
// clamped degenerate schedule picks one sample twice) are dropped —
// they could only ever delimit guaranteed-empty buckets.
func selectPivots(all []pivotKey, p int) []pivotKey {
	sort.Slice(all, func(i, j int) bool { return all[i].less(all[j]) })
	pivots := make([]pivotKey, 0, p-1)
	appendPivot := func(k pivotKey) {
		if n := len(pivots); n > 0 && !pivots[n-1].less(k) {
			return // duplicate of the previous pivot
		}
		pivots = append(pivots, k)
	}
	if len(all) == 0 {
		return pivots
	}
	if len(all) == p*(p-1) {
		// the exact index schedule from the paper
		for j := 0; j < p-1; j++ {
			idx := j*p + p/2
			if idx >= len(all) {
				idx = len(all) - 1
			}
			appendPivot(all[idx])
		}
		return pivots
	}
	// degenerate worlds (tiny local sets): evenly spaced quantiles
	for j := 1; j < p; j++ {
		idx := j * len(all) / p
		if idx >= len(all) {
			idx = len(all) - 1
		}
		appendPivot(all[idx])
	}
	return pivots
}

// globalAncestor aligns the non-empty local ancestors and extracts the
// consensus of their alignment.
func globalAncestor(ctx context.Context, ancestors [][]byte, aligner msa.Aligner, cfg Config) ([]byte, error) {
	var ancSeqs []bio.Sequence
	for r, a := range ancestors {
		if len(a) == 0 {
			continue
		}
		ancSeqs = append(ancSeqs, bio.Sequence{ID: fmt.Sprintf("anc%d", r), Data: a})
	}
	switch len(ancSeqs) {
	case 0:
		return nil, nil
	case 1:
		return ancSeqs[0].Data, nil
	}
	aln, err := msa.AlignWithContext(ctx, aligner, ancSeqs)
	if err != nil {
		return nil, fmt.Errorf("core: ancestor alignment: %w", err)
	}
	return aln.Consensus(cfg.Sub.Alphabet(), cfg.AncestorOcc)
}
