// Package core implements Sample-Align-D, the paper's contribution: a
// distributed multiple sequence aligner modelled on parallel sorting by
// regular sampling.
//
// The SPMD algorithm (one call to Align per rank):
//
//  1. Each rank k-mer-ranks and sorts its N/p local sequences.
//  2. Each rank contributes k evenly spaced sample sequences; the samples
//     are all-gathered so every rank can compute a "globalised" k-mer
//     rank for each local sequence against the k·p global sample.
//  3. Ranks re-sort locally, regular-sample p−1 rank values each, and
//     send them to the root, which picks p−1 pivots from the sorted
//     p(p−1) values and broadcasts them.
//  4. An all-to-all personalised exchange redistributes sequences so
//     bucket i (pivot range i) lands on rank i; regular sampling bounds
//     any bucket by 2N/p.
//  5. Every rank aligns its bucket with a sequential MSA (MUSCLE-like by
//     default) and extracts its local ancestor (consensus).
//  6. The root aligns the p local ancestors into the global ancestor GA
//     and broadcasts it.
//  7. Every rank profile-aligns its local alignment against the GA
//     template (fine-tuning); the root glues the per-rank alignments in
//     GA coordinates into the final global alignment of all N sequences.
package core

import (
	"time"

	"repro/internal/bio"
	"repro/internal/dpkern"
	"repro/internal/kmer"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/submat"
)

// SamplingStrategy selects how redistribution pivots are sampled.
type SamplingStrategy int

const (
	// RegularSampling is the paper's choice: evenly spaced samples from
	// locally sorted data, giving the 2N/p worst-case bucket bound.
	RegularSampling SamplingStrategy = iota
	// RandomSampling picks samples uniformly at random; kept for the
	// ablation benches (no skew bound).
	RandomSampling
)

// Config parameterises Sample-Align-D. The zero value plus defaults
// reproduces the paper's configuration.
type Config struct {
	// K is the k-mer length (default kmer.DefaultK = 6).
	K int
	// Compress is the compressed alphabet for k-mer counting
	// (default bio.Dayhoff6).
	Compress *bio.Compressed
	// RankScale feeds kmer.Rank (default kmer.DefaultRankScale).
	RankScale float64
	// SampleSize is k, the number of sample sequences each rank
	// contributes to the globalised rank estimate (paper: k << N/p,
	// analysed at k = p−1). Default: max(p−1, 4), clamped to the local
	// set size.
	SampleSize int
	// NewLocalAligner builds the sequential MSA run on each bucket and on
	// the ancestor set (default msa.MuscleLike).
	NewLocalAligner func(workers int) msa.Aligner
	// AncestorOcc is the minimum column occupancy for ancestor
	// extraction (default 0.5).
	AncestorOcc float64
	// NoFineTune disables the global-ancestor profile re-alignment
	// (the paper's fine-tuning step); used by the ablation bench.
	NoFineTune bool
	// Sampling picks the pivot sampling strategy (default regular).
	Sampling SamplingStrategy
	// Workers bounds shared-memory parallelism inside one rank: k-mer
	// ranking, the local aligner's guide-tree construction (tiled
	// distance matrix, UPGMA/NJ nearest-neighbour scans) and its
	// guide-tree merges all share this budget. Results are identical
	// for every value (default 1: ranks model single-CPU cluster
	// nodes).
	Workers int
	// Kernel selects the DP kernel (auto/scalar/striped) for the local
	// aligner and the fine-tuning profile alignment. Selection never
	// changes output — the striped int16 kernels are byte-identical to
	// the scalar float64 reference — only speed.
	Kernel dpkern.Kernel
	// Sub/Gap drive the fine-tuning profile alignment
	// (defaults BLOSUM62 / DefaultProteinGap).
	Sub *submat.Matrix
	Gap submat.Gap
}

func (c Config) withDefaults(worldSize int) Config {
	if c.K == 0 {
		c.K = kmer.DefaultK
	}
	if c.Compress == nil {
		c.Compress = bio.Dayhoff6
	}
	if c.RankScale == 0 {
		c.RankScale = kmer.DefaultRankScale
	}
	if c.SampleSize == 0 {
		c.SampleSize = worldSize - 1
		if c.SampleSize < 4 {
			c.SampleSize = 4
		}
	}
	if c.NewLocalAligner == nil {
		c.NewLocalAligner = func(workers int) msa.Aligner { return msa.MuscleLike(workers) }
	}
	if c.AncestorOcc == 0 {
		c.AncestorOcc = 0.5
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Sub == nil {
		c.Sub = submat.BLOSUM62
	}
	if c.Gap == (submat.Gap{}) {
		c.Gap = submat.DefaultProteinGap
	}
	return c
}

// Timings records wall-clock per algorithm phase on one rank.
type Timings struct {
	LocalRank  time.Duration // local k-mer ranking and sorting
	Sampling   time.Duration // sample exchange + globalised ranking
	Pivoting   time.Duration // pivot gather/select/broadcast
	Redistrib  time.Duration // all-to-all sequence exchange
	LocalAlign time.Duration // sequential MSA on the bucket
	Ancestor   time.Duration // local/global ancestor phases
	FineTune   time.Duration // GA profile re-alignment
	Glue       time.Duration // final gather and merge (root-heavy)
	Total      time.Duration
}

// Stats is the per-rank execution report.
type Stats struct {
	Rank        int
	Timings     Timings
	Comm        mpi.Stats
	BucketSize  int   // sequences this rank aligned after redistribution
	BucketSizes []int // root only: all bucket sizes
	GALen       int   // global ancestor length
}

// message tags (one per phase, SPMD discipline)
const (
	tagSamples = 100 + iota
	tagPivotGather
	tagPivots
	tagRedist
	tagAncGather
	tagGA
	tagGluePath
	tagGlueRows
	tagBarrier
	tagIDCheck
)

// wireSeq is the on-the-wire form of a sequence plus its provenance, so
// the root can restore a deterministic global order after redistribution.
type wireSeq struct {
	ID   string
	Desc string
	Data []byte
	Orig int64 // global ordering key (driver-provided or rank-derived)
	Rank float64
}
