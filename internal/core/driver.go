package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bio"
	"repro/internal/mpi"
	"repro/internal/msa"
)

// Result is the outcome of a driver run.
type Result struct {
	Alignment *msa.Alignment
	Stats     []*Stats // indexed by rank
}

// AlignInproc runs Sample-Align-D over p in-process ranks on a single
// sequence list: the paper's experimental setup ("files were divided into
// equal parts and placed on the cluster nodes") on one machine. Sequences
// are dealt out block-wise (rank r gets seqs[r·N/p:(r+1)·N/p]) and the
// final alignment is returned in input order.
func AlignInproc(seqs []bio.Sequence, p int, cfg Config) (*Result, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return AlignInprocContext(context.Background(), seqs, p, cfg)
}

// AlignInprocContext is AlignInproc bound to a context: cancelling ctx
// unwinds all p ranks (each returns the context's error) and
// AlignInprocContext reports it.
func AlignInprocContext(ctx context.Context, seqs []bio.Sequence, p int, cfg Config) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("core: p = %d", p)
	}
	if err := checkUniqueIDs(seqs); err != nil {
		return nil, err
	}
	parts, origParts := SplitBlocks(seqs, p)

	res := &Result{Stats: make([]*Stats, p)}
	var mu sync.Mutex
	err := mpi.RunContext(ctx, p, func(c mpi.Comm) error {
		// checkUniqueIDs above already covered the whole input, so the
		// ranks skip the cluster-wide ID collective.
		aln, stats, err := alignTagged(ctx, c, parts[c.Rank()], origParts[c.Rank()], cfg, true)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		res.Stats[c.Rank()] = stats
		if c.Rank() == 0 {
			res.Alignment = aln
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SplitBlocks deals sequences into p contiguous blocks with their global
// indices, mimicking the paper's pre-placed input files.
func SplitBlocks(seqs []bio.Sequence, p int) ([][]bio.Sequence, [][]int64) {
	parts := make([][]bio.Sequence, p)
	origs := make([][]int64, p)
	n := len(seqs)
	for r := 0; r < p; r++ {
		lo := r * n / p
		hi := (r + 1) * n / p
		parts[r] = seqs[lo:hi]
		ids := make([]int64, hi-lo)
		for i := range ids {
			ids[i] = int64(lo + i)
		}
		origs[r] = ids
	}
	return parts, origs
}

func checkUniqueIDs(seqs []bio.Sequence) error {
	ids := make([]string, len(seqs))
	for i := range seqs {
		ids[i] = seqs[i].ID
	}
	return duplicateIDError(ids)
}

// duplicateIDError returns an error naming the first ID occurring twice
// in ids, or nil. The empty ID counts like any other (bare FASTA '>'
// headers parse to ID "", and two of those still collide in origMap).
func duplicateIDError(ids []string) error {
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return fmt.Errorf("core: duplicate sequence id %q (ids must be unique)", id)
		}
		seen[id] = true
	}
	return nil
}

// InprocAligner adapts AlignInproc to the msa.Aligner interface so
// Sample-Align-D can be evaluated by the PREFAB harness alongside the
// sequential baselines.
type InprocAligner struct {
	P   int
	Cfg Config
}

// Name identifies the aligner and its rank count.
func (a *InprocAligner) Name() string { return fmt.Sprintf("sample-align-d(p=%d)", a.P) }

// Align satisfies msa.Aligner.
func (a *InprocAligner) Align(seqs []bio.Sequence) (*msa.Alignment, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return a.AlignContext(context.Background(), seqs)
}

// AlignContext satisfies msa.ContextAligner.
func (a *InprocAligner) AlignContext(ctx context.Context, seqs []bio.Sequence) (*msa.Alignment, error) {
	res, err := AlignInprocContext(ctx, seqs, a.P, a.Cfg)
	if err != nil {
		return nil, err
	}
	return res.Alignment, nil
}
