package core

import (
	"bytes"
	"testing"

	"repro/internal/bio"
	"repro/internal/msa"
	"repro/internal/rose"
)

// testFamily generates a reproducible family for core tests.
func testFamily(t *testing.T, n, meanLen int, relatedness float64, seed int64) []bio.Sequence {
	t.Helper()
	f, err := rose.Evolve(rose.Config{N: n, MeanLen: meanLen, Relatedness: relatedness, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f.Seqs()
}

// checkCompleteAlignment verifies the fundamental Sample-Align-D output
// contract: a valid alignment containing every input exactly once, in
// input order, ungapping to the original residues.
func checkCompleteAlignment(t *testing.T, aln *msa.Alignment, seqs []bio.Sequence) {
	t.Helper()
	if aln == nil {
		t.Fatal("nil alignment on rank 0")
	}
	if err := aln.Validate(); err != nil {
		t.Fatalf("invalid alignment: %v", err)
	}
	if aln.NumSeqs() != len(seqs) {
		t.Fatalf("alignment has %d rows for %d inputs", aln.NumSeqs(), len(seqs))
	}
	for i, s := range seqs {
		if aln.Seqs[i].ID != s.ID {
			t.Fatalf("row %d: id %q, want %q (input order lost)", i, aln.Seqs[i].ID, s.ID)
		}
		if !bytes.Equal(bio.Ungap(aln.Seqs[i].Data), bio.Ungap(s.Data)) {
			t.Fatalf("row %d (%s) does not ungap to its input", i, s.ID)
		}
	}
}

func TestSingleRankEqualsLocalAligner(t *testing.T) {
	seqs := testFamily(t, 12, 60, 300, 1)
	res, err := AlignInproc(seqs, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkCompleteAlignment(t, res.Alignment, seqs)
	direct, err := msa.MuscleLike(1).Align(seqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alignment.Width() != direct.Width() {
		t.Fatalf("p=1 width %d != direct %d", res.Alignment.Width(), direct.Width())
	}
	for i := range seqs {
		if !bytes.Equal(res.Alignment.Seqs[i].Data, direct.Seqs[i].Data) {
			t.Fatalf("p=1 row %d differs from direct aligner", i)
		}
	}
}

func TestMultiRankCompleteness(t *testing.T) {
	seqs := testFamily(t, 40, 80, 500, 2)
	for _, p := range []int{2, 3, 4, 8} {
		res, err := AlignInproc(seqs, p, Config{})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		checkCompleteAlignment(t, res.Alignment, seqs)
		if len(res.Stats) != p {
			t.Fatalf("p=%d: %d stats", p, len(res.Stats))
		}
		total := 0
		for r, s := range res.Stats {
			if s == nil {
				t.Fatalf("p=%d: rank %d stats missing", p, r)
			}
			total += s.BucketSize
		}
		if total != len(seqs) {
			t.Fatalf("p=%d: buckets hold %d of %d sequences", p, total, len(seqs))
		}
	}
}

func TestDeterministic(t *testing.T) {
	seqs := testFamily(t, 24, 60, 400, 3)
	a, err := AlignInproc(seqs, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AlignInproc(seqs, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Alignment.Width() != b.Alignment.Width() {
		t.Fatalf("widths differ: %d vs %d", a.Alignment.Width(), b.Alignment.Width())
	}
	for i := range a.Alignment.Seqs {
		if !bytes.Equal(a.Alignment.Seqs[i].Data, b.Alignment.Seqs[i].Data) {
			t.Fatalf("row %d differs between identical runs", i)
		}
	}
}

func TestMoreRanksThanSequences(t *testing.T) {
	seqs := testFamily(t, 3, 40, 200, 4)
	res, err := AlignInproc(seqs, 8, Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkCompleteAlignment(t, res.Alignment, seqs)
}

func TestIdenticalSequences(t *testing.T) {
	// All ranks tie: the pivot ranges collapse and most buckets are
	// empty. The algorithm must still produce a complete alignment.
	seq := []byte("MKVLWACDEFGHIKLMNPQRST")
	seqs := make([]bio.Sequence, 12)
	for i := range seqs {
		seqs[i] = bio.Sequence{ID: string(rune('a' + i)), Data: seq}
	}
	res, err := AlignInproc(seqs, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkCompleteAlignment(t, res.Alignment, seqs)
	if res.Alignment.Width() != len(seq) {
		t.Fatalf("identical sequences aligned to width %d, want %d",
			res.Alignment.Width(), len(seq))
	}
}

func TestNoFineTuneStillComplete(t *testing.T) {
	seqs := testFamily(t, 20, 60, 400, 5)
	res, err := AlignInproc(seqs, 4, Config{NoFineTune: true})
	if err != nil {
		t.Fatal(err)
	}
	checkCompleteAlignment(t, res.Alignment, seqs)
}

func TestFineTuneImprovesSPOverBlockDiagonal(t *testing.T) {
	// The whole point of the GA step: merged alignment should score far
	// better than naive block-diagonal concatenation.
	seqs := testFamily(t, 24, 80, 300, 6)
	tuned, err := AlignInproc(seqs, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := AlignInproc(seqs, 4, Config{NoFineTune: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}.withDefaults(4)
	spTuned := msa.SPScore(tuned.Alignment, cfg.Sub, cfg.Gap, 0)
	spNaive := msa.SPScore(naive.Alignment, cfg.Sub, cfg.Gap, 0)
	if spTuned <= spNaive {
		t.Fatalf("fine-tuning did not help: tuned %g <= naive %g", spTuned, spNaive)
	}
}

func TestRandomSamplingStillComplete(t *testing.T) {
	seqs := testFamily(t, 20, 60, 400, 7)
	res, err := AlignInproc(seqs, 4, Config{Sampling: RandomSampling})
	if err != nil {
		t.Fatal(err)
	}
	checkCompleteAlignment(t, res.Alignment, seqs)
}

func TestRegularSamplingBucketBound(t *testing.T) {
	// §3 of the paper: with regular sampling no bucket exceeds 2N/p.
	// Check the statistical claim on a well-spread family (ties relaxed
	// with small slack for duplicate ranks).
	seqs := testFamily(t, 96, 60, 700, 8)
	for _, p := range []int{4, 8} {
		res, err := AlignInproc(seqs, p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		sizes := res.Stats[0].BucketSizes
		if len(sizes) != p {
			t.Fatalf("p=%d: %d bucket sizes", p, len(sizes))
		}
		bound := 2*len(seqs)/p + p // + p slack for rank ties
		for r, sz := range sizes {
			if sz > bound {
				t.Fatalf("p=%d: bucket %d holds %d > bound %d (sizes %v)",
					p, r, sz, bound, sizes)
			}
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	seqs := testFamily(t, 24, 60, 400, 9)
	res, err := AlignInproc(seqs, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range res.Stats {
		if s.Timings.Total <= 0 {
			t.Fatalf("rank %d: zero total time", r)
		}
		if s.Timings.LocalAlign <= 0 {
			t.Fatalf("rank %d: zero align time", r)
		}
		if s.Comm.BytesSent == 0 {
			t.Fatalf("rank %d: no bytes sent", r)
		}
	}
	if res.Stats[0].GALen == 0 {
		t.Fatal("global ancestor is empty")
	}
}

func TestQualityComparableToSequential(t *testing.T) {
	// The paper's Table 2 claim at small scale: distributed alignment
	// quality is in the same band as the sequential tool, not collapsed.
	f, err := rose.Evolve(rose.Config{N: 24, MeanLen: 100, Relatedness: 250, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := f.TrueAlignment([]int{0, 23})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := msa.MuscleLike(0).Align(f.Seqs())
	if err != nil {
		t.Fatal(err)
	}
	dist, err := AlignInproc(f.Seqs(), 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	qSeq, err := msa.QScore(seq, ref)
	if err != nil {
		t.Fatal(err)
	}
	qDist, err := msa.QScore(dist.Alignment, ref)
	if err != nil {
		t.Fatal(err)
	}
	if qDist < qSeq-0.35 {
		t.Fatalf("distributed quality collapsed: Q=%g vs sequential %g", qDist, qSeq)
	}
}

func TestRejectsDuplicateIDs(t *testing.T) {
	seqs := []bio.Sequence{
		{ID: "x", Data: []byte("ACDEF")},
		{ID: "x", Data: []byte("ACDEW")},
	}
	if _, err := AlignInproc(seqs, 2, Config{}); err == nil {
		t.Fatal("duplicate ids accepted")
	}
}

func TestRejectsEmptySequence(t *testing.T) {
	seqs := []bio.Sequence{
		{ID: "a", Data: []byte("ACDEF")},
		{ID: "b", Data: nil},
	}
	if _, err := AlignInproc(seqs, 2, Config{}); err == nil {
		t.Fatal("empty sequence accepted")
	}
}

func TestInprocAlignerInterface(t *testing.T) {
	var al msa.Aligner = &InprocAligner{P: 2}
	seqs := testFamily(t, 10, 50, 300, 11)
	aln, err := al.Align(seqs)
	if err != nil {
		t.Fatal(err)
	}
	checkCompleteAlignment(t, aln, seqs)
	if al.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestSplitBlocks(t *testing.T) {
	seqs := testFamily(t, 10, 30, 200, 12)
	parts, origs := SplitBlocks(seqs, 3)
	total := 0
	next := int64(0)
	for r := range parts {
		if len(parts[r]) != len(origs[r]) {
			t.Fatalf("rank %d: %d seqs, %d origs", r, len(parts[r]), len(origs[r]))
		}
		for i := range origs[r] {
			if origs[r][i] != next {
				t.Fatalf("rank %d: orig %d, want %d", r, origs[r][i], next)
			}
			next++
		}
		total += len(parts[r])
	}
	if total != 10 {
		t.Fatalf("blocks hold %d sequences", total)
	}
}

func pivotKeys(ranks ...float64) []pivotKey {
	out := make([]pivotKey, len(ranks))
	for i, r := range ranks {
		out[i] = pivotKey{Rank: r, Orig: int64(i)}
	}
	return out
}

func TestSelectPivots(t *testing.T) {
	// exact paper schedule for p=4: 12 samples, pivots at indices 2, 6, 10
	all := pivotKeys(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)
	pivots := selectPivots(all, 4)
	if len(pivots) != 3 {
		t.Fatalf("%d pivots", len(pivots))
	}
	if pivots[0].Rank != 2 || pivots[1].Rank != 6 || pivots[2].Rank != 10 {
		t.Fatalf("pivots = %v", pivots)
	}
	// degenerate sample count falls back to quantiles but keeps p-1 pivots
	short := selectPivots(pivotKeys(1, 2, 3), 4)
	if len(short) != 3 {
		t.Fatalf("degenerate pivots = %v", short)
	}
}

func TestSelectPivotsTiedRanks(t *testing.T) {
	// All samples share one rank value: orig tie-breaking must still
	// yield distinct pivots that split the tied mass across buckets.
	all := pivotKeys(1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1)
	pivots := selectPivots(all, 4)
	if len(pivots) != 3 {
		t.Fatalf("%d pivots for tied ranks", len(pivots))
	}
	for i := 1; i < len(pivots); i++ {
		if !pivots[i-1].less(pivots[i]) {
			t.Fatalf("pivots not strictly increasing: %v", pivots)
		}
	}
	// A degenerate schedule that clamps onto one sample must collapse
	// the duplicates instead of emitting guaranteed-empty buckets.
	one := selectPivots([]pivotKey{{Rank: 1, Orig: 7}}, 4)
	if len(one) != 1 {
		t.Fatalf("duplicate pivots not collapsed: %v", one)
	}
}

func TestParseLayoutValidation(t *testing.T) {
	// path consuming wrong number of GA columns must fail
	bad := []byte{byte(0 /*match*/)}
	if _, err := parseLayout(bad, 2); err == nil {
		t.Fatal("underrun path accepted")
	}
	over := []byte{0, 0, 0}
	if _, err := parseLayout(over, 2); err == nil {
		t.Fatal("overrun path accepted")
	}
}
