package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/bio"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/profile"
)

// faultyComm wraps a Comm and fails the n-th Send, injecting the kind of
// mid-collective network fault a real cluster produces.
type faultyComm struct {
	mpi.Comm
	mu       sync.Mutex
	failAt   int
	sends    int
	injected error
}

func (f *faultyComm) Send(to, tag int, data []byte) error {
	f.mu.Lock()
	f.sends++
	fail := f.sends == f.failAt
	f.mu.Unlock()
	if fail {
		f.injected = errors.New("injected network fault")
		return f.injected
	}
	return f.Comm.Send(to, tag, data)
}

func TestAlignSurvivesInjectedSendFault(t *testing.T) {
	// Whatever send fails, Align must return an error (never hang, never
	// return a partial alignment as success). The world is closed on
	// first error, unblocking the peers.
	seqs := testFamily(t, 16, 40, 300, 21)
	for _, failAt := range []int{1, 2, 5, 9} {
		parts, origs := SplitBlocks(seqs, 3)
		var anyErr error
		var mu sync.Mutex
		faulty := &faultyComm{failAt: failAt}
		_ = mpi.Run(3, func(c mpi.Comm) error {
			comm := mpi.Comm(c)
			if c.Rank() == 1 {
				faulty.Comm = c
				comm = faulty
			}
			aln, _, err := alignTagged(context.Background(), comm, parts[c.Rank()], origs[c.Rank()], Config{}, true)
			if err != nil {
				mu.Lock()
				anyErr = err
				mu.Unlock()
				return err
			}
			if c.Rank() == 0 && aln == nil {
				return fmt.Errorf("rank 0 got nil alignment without error")
			}
			return nil
		})
		if faulty.injected != nil && anyErr == nil {
			t.Fatalf("failAt=%d: injected fault vanished", failAt)
		}
		if faulty.injected == nil && anyErr != nil {
			t.Fatalf("failAt=%d: error without injection: %v", failAt, anyErr)
		}
	}
}

// failingAligner always errors, standing in for a bucket aligner that
// dies mid-run on one node.
type failingAligner struct{}

func (failingAligner) Name() string { return "failing" }
func (failingAligner) Align([]bio.Sequence) (*msa.Alignment, error) {
	return nil, errors.New("bucket aligner crashed")
}

func TestAlignPropagatesLocalAlignerFailure(t *testing.T) {
	seqs := testFamily(t, 12, 40, 300, 22)
	cfg := Config{NewLocalAligner: func(int) msa.Aligner { return failingAligner{} }}
	if _, err := AlignInproc(seqs, 2, cfg); err == nil {
		t.Fatal("local aligner failure not propagated")
	}
	if _, err := AlignInproc(seqs, 1, cfg); err == nil {
		t.Fatal("p=1 local aligner failure not propagated")
	}
}

func TestGluePathPropertyRandomised(t *testing.T) {
	// Property: for random (gaLen, path built from random ops that
	// consume exactly gaLen GA columns), parseLayout inverts the path
	// into a layout whose insertion+match counts equal the local column
	// count.
	f := func(seed int64) bool {
		rng := newRandSrc(seed)
		gaLen := 1 + int(rng()%8)
		var path []byte
		local, g := 0, 0
		for g < gaLen {
			switch rng() % 3 {
			case 0:
				path = append(path, byte(profile.OpMatch))
				local++
				g++
			case 1:
				path = append(path, byte(profile.OpA))
				local++
			default:
				path = append(path, byte(profile.OpB))
				g++
			}
		}
		l, err := parseLayout(path, gaLen)
		if err != nil {
			return false
		}
		if l.numLocal != local {
			return false
		}
		count := 0
		for _, ins := range l.ins {
			count += len(ins)
		}
		for _, m := range l.matched {
			if m >= 0 {
				count++
			}
		}
		return count == local
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// newRandSrc is a tiny deterministic generator for the property test.
func newRandSrc(seed int64) func() uint64 {
	x := uint64(seed)*2862933555777941757 + 3037000493
	return func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
}
