package core

import (
	"fmt"
	"sort"

	"repro/internal/bio"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/profile"
)

// templatePath profile-aligns a rank's local alignment against the global
// ancestor template (the paper's fine-tuning step) and returns the merge
// path: which local columns match which GA columns and where insertions
// fall. An empty local alignment maps to "all GA columns unmatched"; an
// empty GA maps to "all local columns are insertions".
func templatePath(localAln *msa.Alignment, ga []byte, cfg Config) (profile.Path, error) {
	localCols := localAln.Width()
	if len(ga) == 0 || localCols == 0 {
		path := make(profile.Path, 0, localCols+len(ga))
		for i := 0; i < localCols; i++ {
			path = append(path, profile.OpA)
		}
		for g := 0; g < len(ga); g++ {
			path = append(path, profile.OpB)
		}
		return path, nil
	}
	alpha := cfg.Sub.Alphabet()
	lp, err := localAln.Profile(alpha)
	if err != nil {
		return nil, err
	}
	gp := profile.FromSequence(alpha, ga)
	aligner := profile.NewAligner(cfg.Sub, cfg.Gap)
	aligner.Kernel = cfg.Kernel
	path, _ := aligner.Align(lp, gp)
	return path, nil
}

// glueMsg is what each rank ships to the root for the final merge.
type glueMsg struct {
	IDs   []string
	Descs []string
	Origs []int64
	Rows  [][]byte
	Path  []byte // profile.Path ops, one byte per op
}

// glue gathers every rank's fine-tuned local alignment at the root and
// merges them in GA coordinates: GA column g of every rank lands in the
// same global column; insertion runs between GA columns get a shared slot
// sized by the widest rank. Rows come back in Orig order. Only rank 0
// returns a non-nil alignment.
func glue(c mpi.Comm, localAln *msa.Alignment, bucket []wireSeq, path profile.Path, gaLen int, cfg Config) (*msa.Alignment, error) {
	if cfg.NoFineTune {
		// Ablation mode: ignore the GA template and concatenate the local
		// alignments block-diagonally (what you get without the paper's
		// fine-tuning idea).
		return glueBlockDiagonal(c, localAln, bucket)
	}
	origs := origMap(bucket)
	msgOut := glueMsg{
		IDs:   make([]string, localAln.NumSeqs()),
		Descs: make([]string, localAln.NumSeqs()),
		Origs: make([]int64, localAln.NumSeqs()),
		Rows:  localAln.Rows(),
		Path:  make([]byte, len(path)),
	}
	for i, s := range localAln.Seqs {
		msgOut.IDs[i] = s.ID
		msgOut.Descs[i] = s.Desc
		msgOut.Origs[i] = origs[s.ID]
	}
	for i, op := range path {
		msgOut.Path[i] = byte(op)
	}
	msgs, err := mpi.GatherValues(c, 0, tagGluePath, msgOut)
	if err != nil {
		return nil, err
	}
	if c.Rank() != 0 {
		return nil, nil
	}
	return mergeOnTemplate(msgs, gaLen)
}

// origMap indexes the bucket's global ordering keys by sequence ID.
// IDs must be unique within the input (the drivers guarantee this).
func origMap(bucket []wireSeq) map[string]int64 {
	m := make(map[string]int64, len(bucket))
	for i := range bucket {
		m[bucket[i].ID] = bucket[i].Orig
	}
	return m
}

// rankLayout is one rank's parsed template mapping.
type rankLayout struct {
	ins      [][]int // ins[slot] = local column indices inserted at slot (0..gaLen)
	matched  []int   // matched[g] = local column matched to GA column g, or -1
	numLocal int
}

func parseLayout(path []byte, gaLen int) (*rankLayout, error) {
	l := &rankLayout{
		ins:     make([][]int, gaLen+1),
		matched: make([]int, gaLen),
	}
	for g := range l.matched {
		l.matched[g] = -1
	}
	local, g := 0, 0
	for _, op := range path {
		switch profile.Op(op) {
		case profile.OpMatch:
			if g >= gaLen {
				return nil, fmt.Errorf("core: glue path overruns GA (match)")
			}
			l.matched[g] = local
			local++
			g++
		case profile.OpA: // local insertion relative to GA
			l.ins[g] = append(l.ins[g], local)
			local++
		case profile.OpB: // GA column with no local counterpart
			if g >= gaLen {
				return nil, fmt.Errorf("core: glue path overruns GA (skip)")
			}
			g++
		default:
			return nil, fmt.Errorf("core: invalid glue op %d", op)
		}
	}
	if g != gaLen {
		return nil, fmt.Errorf("core: glue path consumed %d GA columns of %d", g, gaLen)
	}
	l.numLocal = local
	return l, nil
}

// mergeOnTemplate lays every rank's rows into global GA coordinates.
func mergeOnTemplate(msgs []glueMsg, gaLen int) (*msa.Alignment, error) {
	layouts := make([]*rankLayout, len(msgs))
	maxIns := make([]int, gaLen+1)
	for r, m := range msgs {
		l, err := parseLayout(m.Path, gaLen)
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
		if len(m.Rows) > 0 && l.numLocal != len(m.Rows[0]) {
			return nil, fmt.Errorf("core: rank %d path consumes %d local columns, rows have %d",
				r, l.numLocal, len(m.Rows[0]))
		}
		layouts[r] = l
		for s := 0; s <= gaLen; s++ {
			if n := len(l.ins[s]); n > maxIns[s] {
				maxIns[s] = n
			}
		}
	}
	width := gaLen
	for _, n := range maxIns {
		width += n
	}
	// slotStart[s] = first global column of insertion slot s;
	// gaCol[g] = global column of GA column g.
	slotStart := make([]int, gaLen+1)
	gaCol := make([]int, gaLen)
	col := 0
	for s := 0; s <= gaLen; s++ {
		slotStart[s] = col
		col += maxIns[s]
		if s < gaLen {
			gaCol[s] = col
			col++
		}
	}
	if col != width {
		return nil, fmt.Errorf("core: layout width mismatch %d != %d", col, width)
	}

	type rowOut struct {
		seq  bio.Sequence
		orig int64
	}
	var rows []rowOut
	for r, m := range msgs {
		l := layouts[r]
		// global column of every local column for this rank
		colOf := make([]int, l.numLocal)
		for s := 0; s <= gaLen; s++ {
			for k, localCol := range l.ins[s] {
				colOf[localCol] = slotStart[s] + k
			}
		}
		for g, localCol := range l.matched {
			if localCol >= 0 {
				colOf[localCol] = gaCol[g]
			}
		}
		for i, rowData := range m.Rows {
			out := make([]byte, width)
			for j := range out {
				out[j] = bio.Gap
			}
			for localCol, b := range rowData {
				out[colOf[localCol]] = b
			}
			rows = append(rows, rowOut{
				seq:  bio.Sequence{ID: m.IDs[i], Desc: m.Descs[i], Data: out},
				orig: m.Origs[i],
			})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].orig < rows[j].orig })
	aln := &msa.Alignment{Seqs: make([]bio.Sequence, len(rows))}
	for i, r := range rows {
		aln.Seqs[i] = r.seq
	}
	aln.RemoveAllGapColumns()
	return aln, nil
}

// glueBlockDiagonal is the no-fine-tune fallback: each rank's alignment
// occupies its own column range; rows from other ranks are gaps there.
func glueBlockDiagonal(c mpi.Comm, localAln *msa.Alignment, bucket []wireSeq) (*msa.Alignment, error) {
	origs := origMap(bucket)
	msgOut := glueMsg{
		IDs:   make([]string, localAln.NumSeqs()),
		Descs: make([]string, localAln.NumSeqs()),
		Origs: make([]int64, localAln.NumSeqs()),
		Rows:  localAln.Rows(),
	}
	for i, s := range localAln.Seqs {
		msgOut.IDs[i] = s.ID
		msgOut.Descs[i] = s.Desc
		msgOut.Origs[i] = origs[s.ID]
	}
	msgs, err := mpi.GatherValues(c, 0, tagGlueRows, msgOut)
	if err != nil {
		return nil, err
	}
	if c.Rank() != 0 {
		return nil, nil
	}
	width := 0
	for _, m := range msgs {
		if len(m.Rows) > 0 {
			width += len(m.Rows[0])
		}
	}
	type rowOut struct {
		seq  bio.Sequence
		orig int64
	}
	var rows []rowOut
	offset := 0
	for _, m := range msgs {
		if len(m.Rows) == 0 {
			continue
		}
		w := len(m.Rows[0])
		for i, rowData := range m.Rows {
			out := make([]byte, width)
			for j := range out {
				out[j] = bio.Gap
			}
			copy(out[offset:], rowData)
			rows = append(rows, rowOut{
				seq:  bio.Sequence{ID: m.IDs[i], Desc: m.Descs[i], Data: out},
				orig: m.Origs[i],
			})
		}
		offset += w
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].orig < rows[j].orig })
	aln := &msa.Alignment{Seqs: make([]bio.Sequence, len(rows))}
	for i, r := range rows {
		aln.Seqs[i] = r.seq
	}
	aln.RemoveAllGapColumns()
	return aln, nil
}
