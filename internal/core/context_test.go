package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bio"
	"repro/internal/mpi"
	"repro/internal/msa"
)

// blockingAligner blocks inside AlignContext until its context is
// cancelled, modelling a bucket MSA that would run "forever". The first
// call signals readiness on started.
type blockingAligner struct {
	started chan struct{}
	once    sync.Once
}

func (b *blockingAligner) Name() string { return "blocking" }

func (b *blockingAligner) Align(seqs []bio.Sequence) (*msa.Alignment, error) {
	return b.AlignContext(context.Background(), seqs)
}

func (b *blockingAligner) AlignContext(ctx context.Context, seqs []bio.Sequence) (*msa.Alignment, error) {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return nil, ctx.Err()
}

// waitGoroutines polls until the goroutine count drops back to at most
// base+slack, failing the test if it never does (leaked workers).
func waitGoroutines(t *testing.T, base int, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, started with %d", n, base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestAlignInprocContextCancelMidRun(t *testing.T) {
	seqs := testFamily(t, 24, 40, 300, 33)
	base := runtime.NumGoroutine()

	blocker := &blockingAligner{started: make(chan struct{})}
	cfg := Config{NewLocalAligner: func(int) msa.Aligner { return blocker }}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := AlignInprocContext(ctx, seqs, 4, cfg)
		done <- err
	}()
	<-blocker.started // at least one rank is deep inside its bucket MSA
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled AlignInprocContext never returned")
	}
	waitGoroutines(t, base, 2)
}

func TestAlignInprocContextAllRanksReportCancel(t *testing.T) {
	// Drive the ranks directly so every rank's error is observable: all
	// of them must come back context.Canceled, whether they were blocked
	// in a collective or in the bucket aligner.
	seqs := testFamily(t, 24, 40, 300, 34)
	parts, origs := SplitBlocks(seqs, 3)
	blocker := &blockingAligner{started: make(chan struct{})}
	cfg := Config{NewLocalAligner: func(int) msa.Aligner { return blocker }}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-blocker.started
		cancel()
	}()

	var mu sync.Mutex
	rankErrs := make(map[int]error)
	_ = mpi.RunContext(ctx, 3, func(c mpi.Comm) error {
		_, _, err := alignTagged(ctx, c, parts[c.Rank()], origs[c.Rank()], cfg, true)
		mu.Lock()
		rankErrs[c.Rank()] = err
		mu.Unlock()
		return err
	})
	for rank := 0; rank < 3; rank++ {
		if !errors.Is(rankErrs[rank], context.Canceled) {
			t.Fatalf("rank %d err = %v, want context.Canceled", rank, rankErrs[rank])
		}
	}
}

func TestAlignInprocContextPreCancelled(t *testing.T) {
	seqs := testFamily(t, 8, 30, 300, 35)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AlignInprocContext(ctx, seqs, 2, Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAlignInprocContextDeadline(t *testing.T) {
	seqs := testFamily(t, 24, 40, 300, 36)
	blocker := &blockingAligner{started: make(chan struct{})}
	cfg := Config{NewLocalAligner: func(int) msa.Aligner { return blocker }}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := AlignInprocContext(ctx, seqs, 2, cfg); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
