package core

import "time"

// stopwatch is the package's only wall-clock access, measuring the
// phase timings reported in Stats. The readings feed RunReport and the
// benchmark pipeline exclusively; nothing downstream of a stopwatch
// touches alignment bytes, which is why the two reads below carry the
// package's only determinism-clock suppressions — every other clock
// call in this package is a lint error by design.
type stopwatch struct{ t0 time.Time }

// startClock begins timing a phase.
func startClock() stopwatch {
	//lint:allow determinism phase timing for Stats/RunReport only, never feeds alignment bytes
	return stopwatch{t0: time.Now()}
}

// elapsed returns the time since startClock.
func (s stopwatch) elapsed() time.Duration {
	//lint:allow determinism phase timing for Stats/RunReport only, never feeds alignment bytes
	return time.Since(s.t0)
}
