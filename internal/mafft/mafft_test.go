package mafft

import (
	"bytes"
	"testing"

	"repro/internal/bio"
	"repro/internal/msa"
	"repro/internal/rose"
)

func famSeqs(t *testing.T, n, l int, rel float64, seed int64) []bio.Sequence {
	t.Helper()
	f, err := rose.Evolve(rose.Config{N: n, MeanLen: l, Relatedness: rel, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f.Seqs()
}

func checkValid(t *testing.T, aln *msa.Alignment, seqs []bio.Sequence) {
	t.Helper()
	if err := aln.Validate(); err != nil {
		t.Fatal(err)
	}
	if aln.NumSeqs() != len(seqs) {
		t.Fatalf("%d rows for %d inputs", aln.NumSeqs(), len(seqs))
	}
	for i := range seqs {
		if !bytes.Equal(bio.Ungap(aln.Seqs[i].Data), bio.Ungap(seqs[i].Data)) {
			t.Fatalf("row %d does not ungap to input", i)
		}
	}
}

func TestNWNSIBasic(t *testing.T) {
	seqs := famSeqs(t, 10, 70, 300, 1)
	aln, err := NewNWNSI(0).Align(seqs)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, aln, seqs)
}

func TestFFTNSIBasic(t *testing.T) {
	seqs := famSeqs(t, 10, 70, 300, 2)
	aln, err := NewFFTNSI(0).Align(seqs)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, aln, seqs)
}

func TestTrivialInputs(t *testing.T) {
	al := NewFFTNSI(0)
	empty, err := al.Align(nil)
	if err != nil || empty.NumSeqs() != 0 {
		t.Fatalf("empty: %v %v", empty, err)
	}
	one, err := al.Align([]bio.Sequence{{ID: "a", Data: []byte("ACDEF")}})
	if err != nil || one.NumSeqs() != 1 {
		t.Fatalf("single: %v %v", one, err)
	}
	if _, err := al.Align([]bio.Sequence{{ID: "a", Data: []byte("AC")}, {ID: "b"}}); err == nil {
		t.Fatal("empty sequence accepted")
	}
}

func TestFFTBandCoversTrueShift(t *testing.T) {
	// Two copies of a sequence, one with a 15-residue N-terminal
	// extension: the FFT band must include diagonal +15 so the banded
	// alignment can recover the exact overlap.
	seqs := famSeqs(t, 2, 120, 50, 3)
	base := bio.Ungap(seqs[0].Data)
	ext := append([]byte("MKVLWACDEFGHIKL"), base...)
	in := []bio.Sequence{
		{ID: "x", Data: base},
		{ID: "y", Data: ext},
	}
	aln, err := NewFFTNSI(0).Align(in)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, aln, in)
	// the shared region must align residue-for-residue: x's row equals
	// gap^15 + base
	rowX := aln.Seqs[0].Data
	if len(rowX) != len(ext) {
		t.Fatalf("width %d, want %d", len(rowX), len(ext))
	}
	for i := 0; i < 15; i++ {
		if rowX[i] != bio.Gap {
			t.Fatalf("expected leading gap at %d, got %c", i, rowX[i])
		}
	}
	if !bytes.Equal(rowX[15:], base) {
		t.Fatal("shared region misaligned despite banding")
	}
}

func TestFFTAndNWQualityComparable(t *testing.T) {
	// FFT banding is an approximation; on a modest family its Q should
	// stay within a reasonable band of the exact-DP variant.
	f, err := rose.Evolve(rose.Config{N: 10, MeanLen: 90, Relatedness: 250, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := f.TrueAlignment([]int{0, 9})
	if err != nil {
		t.Fatal(err)
	}
	alnNW, err := NewNWNSI(0).Align(f.Seqs())
	if err != nil {
		t.Fatal(err)
	}
	alnFFT, err := NewFFTNSI(0).Align(f.Seqs())
	if err != nil {
		t.Fatal(err)
	}
	qNW, err := msa.QScore(alnNW, ref)
	if err != nil {
		t.Fatal(err)
	}
	qFFT, err := msa.QScore(alnFFT, ref)
	if err != nil {
		t.Fatal(err)
	}
	if qFFT < qNW-0.3 {
		t.Fatalf("FFT variant collapsed: %g vs %g", qFFT, qNW)
	}
}

func TestNamesDistinct(t *testing.T) {
	if NewFFTNSI(0).Name() == NewNWNSI(0).Name() {
		t.Fatal("variant names collide")
	}
}

// TestWorkersDeterminism pins the guarantee of the task-parallel
// guide-tree merge: both MAFFT-like variants produce byte-identical
// alignments for every Workers value.
func TestWorkersDeterminism(t *testing.T) {
	seqs := famSeqs(t, 24, 80, 300, 9)
	for _, variant := range []struct {
		name  string
		build func(workers int) *Aligner
	}{
		{"nwnsi", NewNWNSI},
		{"fftnsi", NewFFTNSI},
	} {
		t.Run(variant.name, func(t *testing.T) {
			ref, err := variant.build(1).Align(seqs)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{4, 8} {
				got, err := variant.build(w).Align(seqs)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got.NumSeqs() != ref.NumSeqs() {
					t.Fatalf("workers=%d: %d rows", w, got.NumSeqs())
				}
				for i := range ref.Seqs {
					if !bytes.Equal(got.Seqs[i].Data, ref.Seqs[i].Data) {
						t.Fatalf("workers=%d row %d differs from workers=1", w, i)
					}
				}
			}
		})
	}
}
