// Package mafft implements a MAFFT-like progressive aligner (Katoh et
// al. 2002) for the paper's Table 2 baselines:
//
//   - FFTNSI: group-to-group alignments are restricted to a diagonal band
//     chosen by FFT cross-correlation of residue volume/polarity signals
//     (homologous segments show up as correlation peaks).
//   - NWNSI: the same pipeline with plain (unbanded) profile DP.
//
// Both run k-mer distances + UPGMA for the guide tree and finish with
// iterative refinement rounds — the "NS-i" part of the MAFFT names.
package mafft

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bio"
	"repro/internal/dpkern"
	"repro/internal/fft"
	"repro/internal/kmer"
	"repro/internal/msa"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/submat"
	"repro/internal/tree"
)

// Options configures the MAFFT-like aligner.
type Options struct {
	UseFFT    bool // banded alignment along FFT-detected offsets
	Refine    int  // iterative refinement rounds (the "i" suffix)
	BandPad   int  // extra half-width around detected offsets (default 32)
	PeakCount int  // number of correlation peaks considered (default 8)
	Workers   int
	Kernel    dpkern.Kernel // DP kernel selection; byte-identical output either way
	Sub       *submat.Matrix
	Gap       submat.Gap
	K         int
	Compress  *bio.Compressed
}

// Aligner is the MAFFT-like progressive aligner.
type Aligner struct {
	opts Options
	name string
}

// NewFFTNSI returns the FFT-banded iterative variant (MAFFT FFT-NS-i).
func NewFFTNSI(workers int) *Aligner {
	return New(Options{UseFFT: true, Refine: 2, Workers: workers}, "fftnsi")
}

// NewNWNSI returns the unbanded iterative variant (MAFFT NW-NS-i).
func NewNWNSI(workers int) *Aligner {
	return New(Options{UseFFT: false, Refine: 2, Workers: workers}, "nwnsi")
}

// New builds an aligner with explicit options.
func New(opts Options, name string) *Aligner {
	if opts.Sub == nil {
		opts.Sub = submat.BLOSUM62
	}
	if opts.Gap == (submat.Gap{}) {
		opts.Gap = submat.DefaultProteinGap
	}
	if opts.K == 0 {
		opts.K = kmer.DefaultK
	}
	if opts.Compress == nil {
		opts.Compress = bio.Dayhoff6
	}
	if opts.BandPad <= 0 {
		opts.BandPad = 32
	}
	if opts.PeakCount <= 0 {
		opts.PeakCount = 8
	}
	if name == "" {
		name = "mafft-like"
	}
	return &Aligner{opts: opts, name: name}
}

// Name identifies the variant.
func (a *Aligner) Name() string { return a.name }

// SetKernel selects the DP kernel for subsequent alignments.
func (a *Aligner) SetKernel(k dpkern.Kernel) { a.opts.Kernel = k }

// Align runs the pipeline.
func (a *Aligner) Align(seqs []bio.Sequence) (*msa.Alignment, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return a.AlignContext(context.Background(), seqs)
}

// AlignContext runs the pipeline under a context: cancellation is
// observed between phases, per guide-tree merge and per refinement
// split.
func (a *Aligner) AlignContext(ctx context.Context, seqs []bio.Sequence) (*msa.Alignment, error) {
	switch len(seqs) {
	case 0:
		return &msa.Alignment{}, nil
	case 1:
		return &msa.Alignment{Seqs: bio.CloneAll(seqs)}, nil
	}
	for i := range seqs {
		if len(bio.Ungap(seqs[i].Data)) == 0 {
			return nil, fmt.Errorf("mafft: sequence %q is empty", seqs[i].ID)
		}
	}
	counter, err := kmer.NewCounter(a.opts.Compress, a.opts.K)
	if err != nil {
		return nil, err
	}
	profiles := counter.Profiles(seqs, a.opts.Workers)
	dist, err := kmer.DistanceMatrixContext(ctx, profiles, a.opts.Workers)
	if err != nil {
		return nil, err
	}
	_, gsp := obs.Start(ctx, "guidetree")
	gsp.SetStr("method", "upgma")
	gsp.SetInt("n", int64(len(seqs)))
	gsp.SetInt("workers", int64(a.opts.Workers))
	gt := tree.UPGMAWorkers(dist, bio.IDs(seqs), a.opts.Workers)
	gsp.End()

	aln, err := a.alignWithTree(ctx, seqs, gt)
	if err != nil {
		return nil, err
	}
	if a.opts.Refine > 0 {
		// reuse the msa engine's tree-bipartition refinement
		prog := msa.NewProgressive(msa.Options{
			Sub: a.opts.Sub, Gap: a.opts.Gap, Workers: a.opts.Workers,
			Kernel: a.opts.Kernel,
		})
		aln, err = prog.RefineAlignmentContext(ctx, aln, gt, a.opts.Refine)
		if err != nil {
			return nil, err
		}
	}
	return aln, nil
}

type group struct {
	rows [][]byte
	ids  []int
}

// alignWithTree runs the guide-tree merges as a parallel post-order
// schedule (tree.ParallelReduce): disjoint subtrees merge concurrently
// on Workers workers; output is byte-identical for every Workers value.
func (a *Aligner) alignWithTree(ctx context.Context, seqs []bio.Sequence, gt *tree.Node) (*msa.Alignment, error) {
	ctx, psp := obs.Start(ctx, "progressive")
	defer psp.End()
	psp.SetInt("n", int64(len(seqs)))
	psp.SetInt("workers", int64(a.opts.Workers))
	psp.SetBool("fft", a.opts.UseFFT)
	alpha := a.opts.Sub.Alphabet()
	palign := profile.NewAligner(a.opts.Sub, a.opts.Gap)
	palign.Kernel = a.opts.Kernel

	leaf := func(n *tree.Node) (*group, error) {
		if n.ID < 0 || n.ID >= len(seqs) {
			return nil, fmt.Errorf("mafft: leaf id %d out of range", n.ID)
		}
		return &group{rows: [][]byte{bio.Ungap(seqs[n.ID].Data)}, ids: []int{n.ID}}, nil
	}
	merge := func(mi tree.Merge, left, right *group) (*group, error) {
		_, msp := obs.StartDepth(ctx, "mergenode", mi.Depth)
		defer msp.End()
		msp.SetInt("depth", int64(mi.Depth))
		msp.SetInt("rows", int64(len(left.ids)+len(right.ids)))
		pl, err := profile.FromRows(alpha, left.rows, nil)
		if err != nil {
			return nil, err
		}
		pr, err := profile.FromRows(alpha, right.rows, nil)
		if err != nil {
			return nil, err
		}
		var path profile.Path
		if a.opts.UseFFT {
			lo, hi, err := a.fftBand(pl, pr)
			if err != nil {
				return nil, err
			}
			path, _ = palign.AlignBanded(pl, pr, lo, hi)
		} else {
			path, _ = palign.Align(pl, pr)
		}
		merged := profile.MergeRows(left.rows, right.rows, path)
		// Fresh id slice: appending to left.ids would alias its backing
		// array, a data race between concurrent sibling merges.
		ids := make([]int, 0, len(left.ids)+len(right.ids))
		ids = append(append(ids, left.ids...), right.ids...)
		return &group{rows: merged, ids: ids}, nil
	}
	g, err := tree.ParallelReduce(ctx, gt, a.opts.Workers, leaf, merge)
	if err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("mafft: empty guide tree")
	}
	aln := &msa.Alignment{Seqs: make([]bio.Sequence, len(seqs))}
	for k, idx := range g.ids {
		aln.Seqs[idx] = bio.Sequence{ID: seqs[idx].ID, Desc: seqs[idx].Desc, Data: g.rows[k]}
	}
	aln.RemoveAllGapColumns()
	return aln, nil
}

// fftBand cross-correlates the two groups' property signals and returns
// the diagonal range covering the strongest correlation peaks, padded by
// BandPad.
func (a *Aligner) fftBand(pa, pb *profile.Profile) (lo, hi int, err error) {
	sigA := propertySignals(pa)
	sigB := propertySignals(pb)
	n, m := pa.Len(), pb.Len()
	scores := make([]float64, n+m-1)
	for s := 0; s < 2; s++ {
		corr, cerr := fft.CrossCorrelate(sigA[s], sigB[s])
		if cerr != nil {
			return 0, 0, cerr
		}
		for i, v := range corr {
			scores[i] += v
		}
	}
	// pick the top PeakCount shifts
	type peak struct {
		shift int
		score float64
	}
	peaks := make([]peak, 0, len(scores))
	for i, v := range scores {
		peaks = append(peaks, peak{shift: i - (n - 1), score: v})
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].score > peaks[j].score })
	k := a.opts.PeakCount
	if k > len(peaks) {
		k = len(peaks)
	}
	lo, hi = peaks[0].shift, peaks[0].shift
	for _, p := range peaks[:k] {
		if p.shift < lo {
			lo = p.shift
		}
		if p.shift > hi {
			hi = p.shift
		}
	}
	return lo - a.opts.BandPad, hi + a.opts.BandPad, nil
}

// propertySignals converts a profile to its weighted volume and polarity
// signals (one value per column; gaps contribute zero).
func propertySignals(p *profile.Profile) [2][]float64 {
	var out [2][]float64
	out[0] = make([]float64, p.Len())
	out[1] = make([]float64, p.Len())
	for c := range p.Cols {
		col := &p.Cols[c]
		res := col.Residues()
		if res == 0 {
			continue
		}
		var vol, pol float64
		for k, cnt := range col.Counts {
			if cnt == 0 {
				continue
			}
			letter := p.Alpha.Letter(k)
			vol += cnt * bio.Volume(letter)
			pol += cnt * bio.Polarity(letter)
		}
		out[0][c] = vol / res
		out[1][c] = pol / res
	}
	return out
}
