package msa

import (
	"context"

	"repro/internal/bio"
	"repro/internal/profile"
	"repro/internal/tree"
)

// RefineAlignment performs MUSCLE stage-3 style tree-dependent restricted
// partitioning: for every guide-tree edge, split the rows into the two
// leaf sets of the edge, delete gap-only columns inside each part,
// profile-realign the parts, and keep the result if the (weighted
// sampled) SP score does not decrease. `rounds` full passes over the
// edges are made; refinement stops early when a pass changes nothing.
func (p *Progressive) RefineAlignment(aln *Alignment, gt *tree.Node, rounds int) *Alignment {
	out, _ := p.RefineAlignmentContext(context.Background(), aln, gt, rounds)
	return out
}

// RefineAlignmentContext is RefineAlignment bound to a context, checked
// before every split realignment. On cancellation it returns the best
// alignment found so far together with the context's error.
func (p *Progressive) RefineAlignmentContext(ctx context.Context, aln *Alignment, gt *tree.Node, rounds int) (*Alignment, error) {
	if aln.NumSeqs() < 3 || rounds <= 0 {
		return aln, ctx.Err()
	}
	// collect the leaf set of every internal edge (child side)
	var splits [][]int
	gt.PostOrder(func(n *tree.Node) {
		if n == gt {
			return
		}
		leaves := n.Leaves()
		if len(leaves) == 0 || len(leaves) == aln.NumSeqs() {
			return
		}
		splits = append(splits, leaves)
	})

	current := aln
	currentScore := p.refineScore(current)
	for round := 0; round < rounds; round++ {
		improved := false
		for _, split := range splits {
			if err := ctx.Err(); err != nil {
				return current, err
			}
			candidate, err := p.realignSplit(current, split)
			if err != nil {
				continue
			}
			if score := p.refineScore(candidate); score > currentScore {
				current, currentScore = candidate, score
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return current, ctx.Err()
}

// refineScore is the objective used to accept refinement steps: exact SP
// for small alignments, sampled SP for large ones (deterministic seed so
// refinement is reproducible).
func (p *Progressive) refineScore(a *Alignment) float64 {
	const exactLimit = 60
	if a.NumSeqs() <= exactLimit {
		return SPScore(a, p.opts.Sub, p.opts.Gap, p.opts.Workers)
	}
	return SPScoreSampled(a, p.opts.Sub, p.opts.Gap, 2000, 1)
}

// realignSplit extracts the rows in `split` (by sequence index order of
// the alignment) and the complement, compacts both, and profile-realigns
// them.
func (p *Progressive) realignSplit(aln *Alignment, split []int) (*Alignment, error) {
	inSplit := make(map[int]bool, len(split))
	for _, i := range split {
		if i >= 0 && i < aln.NumSeqs() {
			inSplit[i] = true
		}
	}
	if len(inSplit) == 0 || len(inSplit) == aln.NumSeqs() {
		return aln, nil
	}
	var partA, partB Alignment
	var idxA, idxB []int
	for i, s := range aln.Seqs {
		if inSplit[i] {
			partA.Seqs = append(partA.Seqs, s.Clone())
			idxA = append(idxA, i)
		} else {
			partB.Seqs = append(partB.Seqs, s.Clone())
			idxB = append(idxB, i)
		}
	}
	partA.RemoveAllGapColumns()
	partB.RemoveAllGapColumns()

	alpha := p.opts.Sub.Alphabet()
	pa, err := partA.Profile(alpha)
	if err != nil {
		return nil, err
	}
	pb, err := partB.Profile(alpha)
	if err != nil {
		return nil, err
	}
	palign := profile.NewAligner(p.opts.Sub, p.opts.Gap)
	path, _ := palign.Align(pa, pb)
	merged := profile.MergeRows(partA.Rows(), partB.Rows(), path)

	out := &Alignment{Seqs: make([]bio.Sequence, aln.NumSeqs())}
	for k, i := range idxA {
		out.Seqs[i] = bio.Sequence{ID: aln.Seqs[i].ID, Desc: aln.Seqs[i].Desc, Data: merged[k]}
	}
	for k, i := range idxB {
		out.Seqs[i] = bio.Sequence{ID: aln.Seqs[i].ID, Desc: aln.Seqs[i].Desc, Data: merged[len(idxA)+k]}
	}
	out.RemoveAllGapColumns()
	return out, nil
}
