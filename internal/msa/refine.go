package msa

import (
	"context"

	"repro/internal/bio"
	"repro/internal/par"
	"repro/internal/profile"
	"repro/internal/tree"
)

// RefineAlignment performs MUSCLE stage-3 style tree-dependent restricted
// partitioning: for every guide-tree edge, split the rows into the two
// leaf sets of the edge, delete gap-only columns inside each part,
// profile-realign the parts, and keep the result if the (weighted
// sampled) SP score does not decrease. `rounds` full passes over the
// edges are made; refinement stops early when a pass changes nothing.
func (p *Progressive) RefineAlignment(aln *Alignment, gt *tree.Node, rounds int) *Alignment {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	out, _ := p.RefineAlignmentContext(context.Background(), aln, gt, rounds)
	return out
}

// RefineAlignmentContext is RefineAlignment bound to a context, checked
// before every chunk of split realignments. On cancellation it returns
// the best alignment found so far together with the context's error.
//
// Candidate splits are realigned and scored in parallel, speculatively:
// a chunk of Workers consecutive splits is evaluated against the current
// alignment, then scanned in split order; the first improving candidate
// is accepted and the rest of the chunk — now computed against a stale
// base — is discarded and re-evaluated. Acceptance decisions therefore
// follow exactly the sequential greedy order, so the result is
// byte-identical for every Workers value (including 1), while the common
// no-improvement stretches evaluate at full parallel width.
func (p *Progressive) RefineAlignmentContext(ctx context.Context, aln *Alignment, gt *tree.Node, rounds int) (*Alignment, error) {
	if aln.NumSeqs() < 3 || rounds <= 0 {
		return aln, ctx.Err()
	}
	// collect the leaf set of every internal edge (child side)
	var splits [][]int
	gt.PostOrder(func(n *tree.Node) {
		if n == gt {
			return
		}
		leaves := n.Leaves()
		if len(leaves) == 0 || len(leaves) == aln.NumSeqs() {
			return
		}
		splits = append(splits, leaves)
	})

	workers := p.opts.Workers
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	type candidate struct {
		aln   *Alignment
		score float64
		err   error
	}
	current := aln
	currentScore := p.refineScore(current, workers)
	for round := 0; round < rounds; round++ {
		improved := false
		for k := 0; k < len(splits); {
			end := k + workers
			if end > len(splits) {
				end = len(splits)
			}
			cands, err := par.MapCtx(ctx, end-k, workers, func(i int) candidate {
				c, err := p.realignSplit(current, splits[k+i])
				if err != nil {
					return candidate{err: err}
				}
				// Score serially inside the already-parallel map: SPScore
				// is order-deterministic for any worker count, and nesting
				// would oversubscribe Workers² goroutines on Workers cores.
				return candidate{aln: c, score: p.refineScore(c, 1)}
			})
			if err != nil {
				return current, err
			}
			accepted := false
			for i, c := range cands {
				if c.err != nil {
					continue // a failed realignment is skipped, as before
				}
				if c.score > currentScore {
					current, currentScore = c.aln, c.score
					improved, accepted = true, true
					// Later chunk entries were evaluated against the old
					// base; resume right after the accepted split.
					k += i + 1
					break
				}
			}
			if !accepted {
				k = end
			}
		}
		if !improved {
			break
		}
	}
	return current, ctx.Err()
}

// refineScore is the objective used to accept refinement steps: exact SP
// for small alignments, sampled SP for large ones (deterministic seed so
// refinement is reproducible). The value is identical for any workers
// count; workers only bounds the SP computation's own parallelism.
func (p *Progressive) refineScore(a *Alignment, workers int) float64 {
	const exactLimit = 60
	const samplePairs = 2000
	n := a.NumSeqs()
	// Take the exact branch whenever SPScoreSampled would fall back to
	// exact anyway (pair count below the sample budget), so the workers
	// bound is honored on that path too.
	if n <= exactLimit || n*(n-1)/2 <= samplePairs {
		return SPScore(a, p.opts.Sub, p.opts.Gap, workers)
	}
	return SPScoreSampled(a, p.opts.Sub, p.opts.Gap, samplePairs, 1)
}

// realignSplit extracts the rows in `split` (by sequence index order of
// the alignment) and the complement, compacts both, and profile-realigns
// them.
func (p *Progressive) realignSplit(aln *Alignment, split []int) (*Alignment, error) {
	inSplit := make(map[int]bool, len(split))
	for _, i := range split {
		if i >= 0 && i < aln.NumSeqs() {
			inSplit[i] = true
		}
	}
	if len(inSplit) == 0 || len(inSplit) == aln.NumSeqs() {
		return aln, nil
	}
	var partA, partB Alignment
	var idxA, idxB []int
	for i, s := range aln.Seqs {
		if inSplit[i] {
			partA.Seqs = append(partA.Seqs, s.Clone())
			idxA = append(idxA, i)
		} else {
			partB.Seqs = append(partB.Seqs, s.Clone())
			idxB = append(idxB, i)
		}
	}
	partA.RemoveAllGapColumns()
	partB.RemoveAllGapColumns()

	// The current alignment already relates the two parts column by
	// column; replay it as a seed path over the compacted profiles.
	// Columns where only one side has residues become that side's gap
	// op, columns with residues on both sides a match, and columns with
	// neither (gap-only overall) vanish — exactly mirroring the
	// per-part RemoveAllGapColumns compaction above, so the path is
	// valid for (pa, pb). AlignSeeded explores a corridor around this
	// prior and falls back to the full DP when the optimum escapes it,
	// so the accepted alignments are unchanged.
	width := aln.Width()
	prior := make(profile.Path, 0, width)
	for c := 0; c < width; c++ {
		hasA, hasB := false, false
		for i, s := range aln.Seqs {
			if c >= len(s.Data) || s.Data[c] == bio.Gap {
				continue
			}
			if inSplit[i] {
				hasA = true
			} else {
				hasB = true
			}
			if hasA && hasB {
				break
			}
		}
		switch {
		case hasA && hasB:
			prior = append(prior, profile.OpMatch)
		case hasA:
			prior = append(prior, profile.OpA)
		case hasB:
			prior = append(prior, profile.OpB)
		}
	}

	alpha := p.opts.Sub.Alphabet()
	pa, err := partA.Profile(alpha)
	if err != nil {
		return nil, err
	}
	pb, err := partB.Profile(alpha)
	if err != nil {
		return nil, err
	}
	palign := profile.NewAligner(p.opts.Sub, p.opts.Gap)
	palign.Kernel = p.opts.Kernel
	path, _ := palign.AlignSeeded(pa, pb, prior)
	merged := profile.MergeRows(partA.Rows(), partB.Rows(), path)

	out := &Alignment{Seqs: make([]bio.Sequence, aln.NumSeqs())}
	for k, i := range idxA {
		out.Seqs[i] = bio.Sequence{ID: aln.Seqs[i].ID, Desc: aln.Seqs[i].Desc, Data: merged[k]}
	}
	for k, i := range idxB {
		out.Seqs[i] = bio.Sequence{ID: aln.Seqs[i].ID, Desc: aln.Seqs[i].Desc, Data: merged[len(idxA)+k]}
	}
	out.RemoveAllGapColumns()
	return out, nil
}
