package msa

import (
	"context"
	"fmt"

	"repro/internal/bio"
	"repro/internal/dp"
	"repro/internal/dpkern"
	"repro/internal/kmer"
	"repro/internal/obs"
	"repro/internal/pairwise"
	"repro/internal/par"
	"repro/internal/profile"
	"repro/internal/submat"
	"repro/internal/tree"
)

// Aligner is any multiple sequence aligner. Implementations in this
// repository: the Progressive engine (MUSCLE-like, CLUSTAL-like), the
// consistency aligner in internal/cons, the MAFFT-like aligner in
// internal/mafft and Sample-Align-D itself in internal/core.
type Aligner interface {
	Name() string
	Align(seqs []bio.Sequence) (*Alignment, error)
}

// ContextAligner is an Aligner whose runs can be cancelled through a
// context: a long alignment observes cancellation at phase and
// guide-tree-merge granularity and returns the context's error.
type ContextAligner interface {
	Aligner
	AlignContext(ctx context.Context, seqs []bio.Sequence) (*Alignment, error)
}

// AlignWithContext runs a's AlignContext when it supports cancellation,
// falling back to plain Align (after an upfront ctx check) otherwise.
func AlignWithContext(ctx context.Context, a Aligner, seqs []bio.Sequence) (*Alignment, error) {
	if ca, ok := a.(ContextAligner); ok {
		return ca.AlignContext(ctx, seqs)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.Align(seqs)
}

// DistanceMethod selects how the guide-tree distance matrix is computed.
type DistanceMethod int

const (
	// KmerDistance uses compressed-alphabet k-mer distances (MUSCLE
	// draft stage): O(N²·L) and alignment-free.
	KmerDistance DistanceMethod = iota
	// PIDDistance uses 1 − fractional identity from global pairwise
	// alignments (CLUSTALW stage 1): O(N²·L²) and much slower.
	PIDDistance
)

// TreeMethod selects the guide-tree construction.
type TreeMethod int

const (
	UPGMATree TreeMethod = iota
	NJTree
)

// Options configures the progressive engine.
type Options struct {
	Sub       *submat.Matrix
	Gap       submat.Gap
	Distance  DistanceMethod
	Tree      TreeMethod
	K         int             // k-mer length for KmerDistance
	Compress  *bio.Compressed // compressed alphabet for k-mers
	Weighting bool            // CLUSTALW-style tree-derived sequence weights
	Refine    int             // rounds of tree-bipartition refinement
	Workers   int             // shared-memory workers (<=0: all cores)
	Kernel    dpkern.Kernel   // DP kernel selection; byte-identical output either way
	NameTag   string
}

// KernelConfigurable is implemented by aligners whose DP kernel can be
// switched after construction. Kernel selection never changes output —
// the striped kernels are byte-identical to the scalar reference — so
// it is configuration, not identity, and deliberately lives outside the
// constructors.
type KernelConfigurable interface {
	SetKernel(dpkern.Kernel)
}

// SetKernel selects the DP kernel for subsequent alignments.
func (p *Progressive) SetKernel(k dpkern.Kernel) { p.opts.Kernel = k }

// Progressive is a progressive multiple aligner: distance matrix → guide
// tree → post-order profile merging (→ optional refinement).
type Progressive struct {
	opts Options
}

// NewProgressive builds a progressive aligner, applying defaults for
// unset options.
func NewProgressive(opts Options) *Progressive {
	if opts.Sub == nil {
		opts.Sub = submat.BLOSUM62
	}
	if opts.Gap == (submat.Gap{}) {
		opts.Gap = submat.DefaultProteinGap
	}
	if opts.K == 0 {
		opts.K = kmer.DefaultK
	}
	if opts.Compress == nil {
		opts.Compress = bio.Dayhoff6
	}
	if opts.NameTag == "" {
		opts.NameTag = "progressive"
	}
	return &Progressive{opts: opts}
}

// MuscleLike returns the MUSCLE-style pipeline the paper runs inside each
// processor: k-mer distances, UPGMA tree, PSP profile alignment.
func MuscleLike(workers int) *Progressive {
	return NewProgressive(Options{
		Distance: KmerDistance,
		Tree:     UPGMATree,
		Workers:  workers,
		NameTag:  "muscle-like",
	})
}

// MuscleLikeRefined adds MUSCLE stage-3 style iterative refinement.
func MuscleLikeRefined(workers, rounds int) *Progressive {
	return NewProgressive(Options{
		Distance: KmerDistance,
		Tree:     UPGMATree,
		Workers:  workers,
		Refine:   rounds,
		NameTag:  "muscle-like+refine",
	})
}

// ClustalLike returns the CLUSTALW-style pipeline used as the paper's
// quality baseline: %-identity distances, NJ tree, weighted profiles.
func ClustalLike(workers int) *Progressive {
	return NewProgressive(Options{
		Distance:  PIDDistance,
		Tree:      NJTree,
		Weighting: true,
		Workers:   workers,
		NameTag:   "clustalw-like",
	})
}

// Name identifies the pipeline configuration.
func (p *Progressive) Name() string { return p.opts.NameTag }

// Options returns a copy of the engine's configuration.
func (p *Progressive) Options() Options { return p.opts }

// DistanceMatrix computes the configured guide-tree distance matrix.
func (p *Progressive) DistanceMatrix(seqs []bio.Sequence) (*kmer.Matrix, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return p.DistanceMatrixContext(context.Background(), seqs)
}

// DistanceMatrixContext is DistanceMatrix bound to a context; the
// O(N²·L²) PID path stops dispatching pair rows on cancellation.
func (p *Progressive) DistanceMatrixContext(ctx context.Context, seqs []bio.Sequence) (*kmer.Matrix, error) {
	switch p.opts.Distance {
	case KmerDistance:
		counter, err := kmer.NewCounter(p.opts.Compress, p.opts.K)
		if err != nil {
			return nil, err
		}
		profiles := counter.Profiles(seqs, p.opts.Workers)
		return kmer.DistanceMatrixContext(ctx, profiles, p.opts.Workers)
	case PIDDistance:
		// The O(N²·L²) pair space is dispatched as the same cache-sized
		// tiles the k-mer matrix uses (kmer.PairTiles), so the dynamic
		// scheduler balances the quadratic tail instead of handing each
		// worker whole rows of shrinking length. Each tile borrows one
		// pooled DP workspace for all of its alignments, and the identity
		// is counted directly off the traceback plane
		// (GlobalIdentityInto) without materializing aligned rows.
		ctx, sp := obs.Start(ctx, "distmatrix")
		defer sp.End()
		sp.SetStr("method", "pid")
		sp.SetInt("n", int64(len(seqs)))
		sp.SetInt("workers", int64(p.opts.Workers))
		n := len(seqs)
		m := kmer.NewMatrix(n)
		al := pairwise.Aligner{Sub: p.opts.Sub, Gap: p.opts.Gap, Kernel: p.opts.Kernel}
		tiles := kmer.PairTiles(n, p.opts.Workers, 0)
		if err := par.ForDynamicCtx(ctx, len(tiles), p.opts.Workers, func(t int) {
			tl := tiles[t]
			w := dp.GetRaw()
			defer dp.Put(w)
			for i := tl.RLo; i < tl.RHi; i++ {
				a := seqs[i].Data
				jlo := tl.CLo
				if jlo <= i {
					jlo = i + 1 // diagonal tile: stay above the diagonal
				}
				for j := jlo; j < tl.CHi; j++ {
					m.Set(i, j, 1-al.GlobalIdentityInto(w, a, seqs[j].Data))
				}
			}
		}); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, fmt.Errorf("msa: unknown distance method %d", p.opts.Distance)
	}
}

// GuideTree builds the configured guide tree from a distance matrix.
// Construction runs the nearest-neighbour scans on Options.Workers
// workers; the tree is identical for every worker count.
func (p *Progressive) GuideTree(d *kmer.Matrix, seqs []bio.Sequence) *tree.Node {
	names := bio.IDs(seqs)
	switch p.opts.Tree {
	case NJTree:
		return tree.NeighborJoiningWorkers(d, names, p.opts.Workers)
	default:
		return tree.UPGMAWorkers(d, names, p.opts.Workers)
	}
}

// Align runs the full progressive pipeline.
func (p *Progressive) Align(seqs []bio.Sequence) (*Alignment, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return p.AlignContext(context.Background(), seqs)
}

// AlignContext runs the full progressive pipeline under a context:
// cancellation is observed between phases, per guide-tree merge and per
// refinement split, and surfaces as the context's error.
func (p *Progressive) AlignContext(ctx context.Context, seqs []bio.Sequence) (*Alignment, error) {
	switch len(seqs) {
	case 0:
		return &Alignment{}, nil
	case 1:
		return &Alignment{Seqs: bio.CloneAll(seqs)}, nil
	}
	for i := range seqs {
		if len(bio.Ungap(seqs[i].Data)) == 0 {
			return nil, fmt.Errorf("msa: sequence %q is empty", seqs[i].ID)
		}
	}
	d, err := p.DistanceMatrixContext(ctx, seqs)
	if err != nil {
		return nil, err
	}
	_, gsp := obs.Start(ctx, "guidetree")
	if p.opts.Tree == NJTree {
		gsp.SetStr("method", "nj")
	} else {
		gsp.SetStr("method", "upgma")
	}
	gsp.SetInt("n", int64(len(seqs)))
	gsp.SetInt("workers", int64(p.opts.Workers))
	gt := p.GuideTree(d, seqs)
	gsp.End()
	var weights []float64
	if p.opts.Weighting {
		weights = TreeWeights(gt, len(seqs))
	}
	aln, err := p.AlignWithTreeContext(ctx, seqs, gt, weights)
	if err != nil {
		return nil, err
	}
	if p.opts.Refine > 0 {
		aln, err = p.RefineAlignmentContext(ctx, aln, gt, p.opts.Refine)
		if err != nil {
			return nil, err
		}
	}
	return aln, nil
}

// group is the partial alignment carried up the guide tree.
type group struct {
	rows [][]byte
	ids  []int // sequence indices, parallel to rows
}

// AlignWithTree performs the post-order progressive merge over an
// explicit guide tree. weights may be nil (unit weights).
func (p *Progressive) AlignWithTree(seqs []bio.Sequence, gt *tree.Node, weights []float64) (*Alignment, error) {
	//lint:allow ctxflow context-free compat wrapper: delegates to the Context-bound variant
	return p.AlignWithTreeContext(context.Background(), seqs, gt, weights)
}

// AlignWithTreeContext is AlignWithTree bound to a context. The merge
// recursion runs as a parallel post-order schedule on a task DAG
// (tree.ParallelReduce): disjoint subtrees merge concurrently on
// Workers workers, each merge borrowing its own pooled DP workspace.
// Output is byte-identical for every Workers value — a node's merge
// depends only on its children, never on execution order.
func (p *Progressive) AlignWithTreeContext(ctx context.Context, seqs []bio.Sequence, gt *tree.Node, weights []float64) (*Alignment, error) {
	ctx, psp := obs.Start(ctx, "progressive")
	defer psp.End()
	psp.SetInt("n", int64(len(seqs)))
	psp.SetInt("workers", int64(p.opts.Workers))
	alpha := p.opts.Sub.Alphabet()
	palign := profile.NewAligner(p.opts.Sub, p.opts.Gap)
	palign.Kernel = p.opts.Kernel

	weightOf := func(idx int) float64 {
		if weights == nil {
			return 1
		}
		return weights[idx]
	}

	leaf := func(n *tree.Node) (*group, error) {
		if n.ID < 0 || n.ID >= len(seqs) {
			return nil, fmt.Errorf("msa: guide tree leaf id %d out of range", n.ID)
		}
		data := bio.Ungap(seqs[n.ID].Data)
		return &group{rows: [][]byte{data}, ids: []int{n.ID}}, nil
	}
	merge := func(mi tree.Merge, left, right *group) (*group, error) {
		_, msp := obs.StartDepth(ctx, "mergenode", mi.Depth)
		defer msp.End()
		msp.SetInt("depth", int64(mi.Depth))
		msp.SetInt("rows", int64(len(left.ids)+len(right.ids)))
		wl := make([]float64, len(left.ids))
		for i, id := range left.ids {
			wl[i] = weightOf(id)
		}
		wr := make([]float64, len(right.ids))
		for i, id := range right.ids {
			wr[i] = weightOf(id)
		}
		pl, err := profile.FromRows(alpha, left.rows, wl)
		if err != nil {
			return nil, err
		}
		pr, err := profile.FromRows(alpha, right.rows, wr)
		if err != nil {
			return nil, err
		}
		path, _ := palign.Align(pl, pr)
		merged := profile.MergeRows(left.rows, right.rows, path)
		// The merged id slice must never alias left.ids: sibling merges
		// run concurrently, and appending into a shared backing array
		// is a data race (and silently corrupts ids even sequentially
		// when a node is reused across merges).
		ids := make([]int, 0, len(left.ids)+len(right.ids))
		ids = append(append(ids, left.ids...), right.ids...)
		return &group{rows: merged, ids: ids}, nil
	}

	g, err := tree.ParallelReduce(ctx, gt, p.opts.Workers, leaf, merge)
	if err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("msa: empty guide tree")
	}
	// Restore input order.
	aln := &Alignment{Seqs: make([]bio.Sequence, len(seqs))}
	for k, idx := range g.ids {
		aln.Seqs[idx] = bio.Sequence{ID: seqs[idx].ID, Desc: seqs[idx].Desc, Data: g.rows[k]}
	}
	aln.RemoveAllGapColumns()
	return aln, nil
}
