package msa

import (
	"repro/internal/tree"
)

// TreeWeights computes CLUSTALW-style sequence weights from a guide
// tree (Thompson, Higgins & Gibson 1994): each branch's length is shared
// equally among the leaves below it, so sequences in crowded subtrees are
// down-weighted and divergent outliers up-weighted. Weights are
// normalised to mean 1; a degenerate tree (all zero branch lengths)
// yields unit weights.
func TreeWeights(gt *tree.Node, n int) []float64 {
	w := make([]float64, n)
	var walk func(node *tree.Node, acc float64)
	walk = func(node *tree.Node, acc float64) {
		if node == nil {
			return
		}
		if node.IsLeaf() {
			if node.ID >= 0 && node.ID < n {
				w[node.ID] = acc
			}
			return
		}
		nl := float64(node.Left.LeafCount())
		nr := float64(node.Right.LeafCount())
		walk(node.Left, acc+node.LeftLen/nl)
		walk(node.Right, acc+node.RightLen/nr)
	}
	walk(gt, 0)

	var sum float64
	for _, v := range w {
		sum += v
	}
	if sum <= 0 {
		for i := range w {
			w[i] = 1
		}
		return w
	}
	scale := float64(n) / sum
	for i := range w {
		w[i] *= scale
		if w[i] <= 0 {
			w[i] = 1e-3 // keep every sequence minimally represented
		}
	}
	return w
}
