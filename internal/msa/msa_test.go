package msa

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bio"
	"repro/internal/submat"
)

func mustAlign(t *testing.T, al Aligner, seqs []bio.Sequence) *Alignment {
	t.Helper()
	a, err := al.Align(seqs)
	if err != nil {
		t.Fatalf("%s: %v", al.Name(), err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("%s produced invalid alignment: %v", al.Name(), err)
	}
	return a
}

func checkPreservesSequences(t *testing.T, a *Alignment, seqs []bio.Sequence) {
	t.Helper()
	if a.NumSeqs() != len(seqs) {
		t.Fatalf("alignment has %d rows for %d inputs", a.NumSeqs(), len(seqs))
	}
	for i, s := range seqs {
		got := bio.Ungap(a.Seqs[i].Data)
		if !bytes.Equal(got, bio.Ungap(s.Data)) {
			t.Fatalf("row %d (%s): ungapped %q != input %q", i, s.ID, got, s.Data)
		}
		if a.Seqs[i].ID != s.ID {
			t.Fatalf("row %d id %q != %q", i, a.Seqs[i].ID, s.ID)
		}
	}
}

// family generates n related sequences by mutating a common ancestor.
func family(rng *rand.Rand, n, length int, mutProb float64) []bio.Sequence {
	letters := bio.AminoAcids.Letters()
	anc := make([]byte, length)
	for i := range anc {
		anc[i] = letters[rng.Intn(20)]
	}
	out := make([]bio.Sequence, n)
	for s := 0; s < n; s++ {
		data := make([]byte, 0, length+8)
		for _, b := range anc {
			r := rng.Float64()
			switch {
			case r < mutProb*0.6: // substitution
				data = append(data, letters[rng.Intn(20)])
			case r < mutProb*0.8: // deletion
			case r < mutProb: // insertion
				data = append(data, b, letters[rng.Intn(20)])
			default:
				data = append(data, b)
			}
		}
		if len(data) == 0 {
			data = append(data, anc[0])
		}
		out[s] = bio.Sequence{ID: string(rune('A'+s%26)) + string(rune('0'+s/26)), Data: data}
	}
	return out
}

func TestAlignmentValidate(t *testing.T) {
	good := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("AC-E")},
		{ID: "b", Data: []byte("ACDE")},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("good alignment rejected: %v", err)
	}
	ragged := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("ACE")},
		{ID: "b", Data: []byte("ACDE")},
	}}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged alignment accepted")
	}
	allGap := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("A-E")},
		{ID: "b", Data: []byte("A-D")},
	}}
	if err := allGap.Validate(); err == nil {
		t.Error("all-gap column accepted")
	}
}

func TestRemoveAllGapColumns(t *testing.T) {
	a := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("A--C-")},
		{ID: "b", Data: []byte("A--D-")},
	}}
	removed := a.RemoveAllGapColumns()
	if removed != 3 {
		t.Fatalf("removed %d columns, want 3", removed)
	}
	if string(a.Seqs[0].Data) != "AC" || string(a.Seqs[1].Data) != "AD" {
		t.Fatalf("rows after removal: %q %q", a.Seqs[0].Data, a.Seqs[1].Data)
	}
	if a.RemoveAllGapColumns() != 0 {
		t.Fatal("second pass removed columns")
	}
}

func TestReorder(t *testing.T) {
	a := &Alignment{Seqs: []bio.Sequence{
		{ID: "x", Data: []byte("AA")},
		{ID: "y", Data: []byte("CC")},
	}}
	if err := a.Reorder([]string{"y", "x"}); err != nil {
		t.Fatal(err)
	}
	if a.Seqs[0].ID != "y" || a.Seqs[1].ID != "x" {
		t.Fatalf("order after reorder: %s %s", a.Seqs[0].ID, a.Seqs[1].ID)
	}
	if err := a.Reorder([]string{"y", "z"}); err == nil {
		t.Error("unknown id accepted")
	}
	if err := a.Reorder([]string{"y"}); err == nil {
		t.Error("short id list accepted")
	}
}

func TestSPScoreIdenticalRows(t *testing.T) {
	a := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("ACDE")},
		{ID: "b", Data: []byte("ACDE")},
	}}
	want := 0.0
	for _, c := range []byte("ACDE") {
		want += submat.BLOSUM62.Score(c, c)
	}
	got := SPScore(a, submat.BLOSUM62, submat.DefaultProteinGap, 1)
	if got != want {
		t.Fatalf("SP = %g, want %g", got, want)
	}
}

func TestSPScoreGapHandling(t *testing.T) {
	gap := submat.Gap{Open: 10, Extend: 1}
	a := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("A--E")},
		{ID: "b", Data: []byte("ACDE")},
	}}
	want := submat.BLOSUM62.Score('A', 'A') + submat.BLOSUM62.Score('E', 'E') - (10 + 2)
	if got := SPScore(a, submat.BLOSUM62, gap, 1); got != want {
		t.Fatalf("SP = %g, want %g", got, want)
	}
	// dual-gap columns cost nothing
	b := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("A-E")},
		{ID: "b", Data: []byte("A-E")},
		{ID: "c", Data: []byte("ACE")},
	}}
	pairAB := submat.BLOSUM62.Score('A', 'A') + submat.BLOSUM62.Score('E', 'E')
	pairAC := pairAB - 11
	pairBC := pairAC
	if got := SPScore(b, submat.BLOSUM62, gap, 1); got != pairAB+pairAC+pairBC {
		t.Fatalf("SP with dual gaps = %g, want %g", got, pairAB+pairAC+pairBC)
	}
}

func TestSPScoreParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seqs := family(rng, 12, 60, 0.2)
	aln := mustAlign(t, MuscleLike(1), seqs)
	s1 := SPScore(aln, submat.BLOSUM62, submat.DefaultProteinGap, 1)
	s8 := SPScore(aln, submat.BLOSUM62, submat.DefaultProteinGap, 8)
	if math.Abs(s1-s8) > 1e-6 {
		t.Fatalf("parallel SP %g != serial %g", s8, s1)
	}
}

func TestSPScoreSampledConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seqs := family(rng, 10, 50, 0.15)
	aln := mustAlign(t, MuscleLike(0), seqs)
	exact := SPScore(aln, submat.BLOSUM62, submat.DefaultProteinGap, 0)
	sampledAll := SPScoreSampled(aln, submat.BLOSUM62, submat.DefaultProteinGap, 10000, 7)
	if sampledAll != exact {
		t.Fatalf("sampling more pairs than exist should fall back to exact: %g vs %g",
			sampledAll, exact)
	}
}

func TestQScorePerfect(t *testing.T) {
	ref := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("AC-DE")},
		{ID: "b", Data: []byte("ACWDE")},
	}}
	q, err := QScore(ref, ref)
	if err != nil {
		t.Fatal(err)
	}
	if q != 1 {
		t.Fatalf("self Q = %g", q)
	}
}

func TestQScoreDisagreement(t *testing.T) {
	ref := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("ACDE")},
		{ID: "b", Data: []byte("ACDE")},
	}}
	// test alignment shifts b by one, so no residue pair matches
	test := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("ACDE-")},
		{ID: "b", Data: []byte("-ACDE")},
	}}
	q, err := QScore(test, ref)
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 {
		t.Fatalf("shifted Q = %g, want 0", q)
	}
}

func TestQScorePartial(t *testing.T) {
	ref := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("ACDE")},
		{ID: "b", Data: []byte("ACDE")},
	}}
	// first two columns agree, last two shifted
	test := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("ACDE-")},
		{ID: "b", Data: []byte("AC-DE")},
	}}
	q, err := QScore(test, ref)
	if err != nil {
		t.Fatal(err)
	}
	if q != 0.5 {
		t.Fatalf("Q = %g, want 0.5", q)
	}
}

func TestQScoreSubsetReference(t *testing.T) {
	test := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("ACDE")},
		{ID: "b", Data: []byte("ACDE")},
		{ID: "c", Data: []byte("ACDE")},
	}}
	ref := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("ACDE")},
		{ID: "c", Data: []byte("ACDE")},
	}}
	q, err := QScore(test, ref)
	if err != nil {
		t.Fatal(err)
	}
	if q != 1 {
		t.Fatalf("subset Q = %g", q)
	}
}

func TestQScoreErrors(t *testing.T) {
	test := &Alignment{Seqs: []bio.Sequence{{ID: "a", Data: []byte("ACDE")}}}
	refMissing := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("ACDE")},
		{ID: "zz", Data: []byte("ACDE")},
	}}
	if _, err := QScore(test, refMissing); err == nil {
		t.Error("missing row accepted")
	}
	refMismatch := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("ACD")},
		{ID: "a2", Data: []byte("ACD")},
	}}
	test2 := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("ACDE")},
		{ID: "a2", Data: []byte("ACDE")},
	}}
	if _, err := QScore(test2, refMismatch); err == nil {
		t.Error("residue count mismatch accepted")
	}
}

func TestMuscleLikeAlignsFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	seqs := family(rng, 15, 80, 0.15)
	aln := mustAlign(t, MuscleLike(0), seqs)
	checkPreservesSequences(t, aln, seqs)
	if aln.Width() < 80 {
		t.Fatalf("width %d shorter than ancestor", aln.Width())
	}
	// A real family must align with positive SP score.
	if sp := SPScore(aln, submat.BLOSUM62, submat.DefaultProteinGap, 0); sp <= 0 {
		t.Fatalf("family SP = %g", sp)
	}
}

func TestClustalLikeAlignsFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	seqs := family(rng, 8, 60, 0.15)
	aln := mustAlign(t, ClustalLike(0), seqs)
	checkPreservesSequences(t, aln, seqs)
}

func TestProgressiveTrivialInputs(t *testing.T) {
	al := MuscleLike(0)
	empty := mustAlign(t, al, nil)
	if empty.NumSeqs() != 0 {
		t.Fatal("empty input")
	}
	one := mustAlign(t, al, []bio.Sequence{{ID: "a", Data: []byte("ACDEF")}})
	if one.NumSeqs() != 1 || string(one.Seqs[0].Data) != "ACDEF" {
		t.Fatalf("single input: %+v", one.Seqs)
	}
	two := mustAlign(t, al, []bio.Sequence{
		{ID: "a", Data: []byte("ACDEF")},
		{ID: "b", Data: []byte("ACEF")},
	})
	checkPreservesSequences(t, two, []bio.Sequence{
		{ID: "a", Data: []byte("ACDEF")},
		{ID: "b", Data: []byte("ACEF")},
	})
}

func TestProgressiveRejectsEmptySequence(t *testing.T) {
	_, err := MuscleLike(0).Align([]bio.Sequence{
		{ID: "a", Data: []byte("ACDEF")},
		{ID: "b", Data: []byte("")},
	})
	if err == nil {
		t.Fatal("empty sequence accepted")
	}
}

func TestIdenticalSequencesAlignPerfectly(t *testing.T) {
	seq := []byte("MKVLWACDEFGHIKLMNPQR")
	seqs := []bio.Sequence{
		{ID: "a", Data: seq},
		{ID: "b", Data: seq},
		{ID: "c", Data: seq},
		{ID: "d", Data: seq},
	}
	aln := mustAlign(t, MuscleLike(0), seqs)
	if aln.Width() != len(seq) {
		t.Fatalf("identical sequences got width %d, want %d", aln.Width(), len(seq))
	}
	for _, s := range aln.Seqs {
		if !bytes.Equal(s.Data, seq) {
			t.Fatalf("row %s = %q", s.ID, s.Data)
		}
	}
}

func TestRefinementNeverWorsensSP(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	seqs := family(rng, 10, 60, 0.25)
	base := MuscleLike(0)
	refined := MuscleLikeRefined(0, 2)
	a0 := mustAlign(t, base, seqs)
	a1 := mustAlign(t, refined, seqs)
	checkPreservesSequences(t, a1, seqs)
	sp0 := SPScore(a0, submat.BLOSUM62, submat.DefaultProteinGap, 0)
	sp1 := SPScore(a1, submat.BLOSUM62, submat.DefaultProteinGap, 0)
	if sp1 < sp0 {
		t.Fatalf("refinement lowered SP: %g -> %g", sp0, sp1)
	}
}

func TestTreeWeightsFamilyStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	seqs := family(rng, 12, 60, 0.1)
	p := MuscleLike(0)
	d, err := p.DistanceMatrix(seqs)
	if err != nil {
		t.Fatal(err)
	}
	gt := p.GuideTree(d, seqs)
	w := TreeWeights(gt, len(seqs))
	if len(w) != len(seqs) {
		t.Fatalf("%d weights", len(w))
	}
	var sum float64
	for _, v := range w {
		if v <= 0 {
			t.Fatalf("non-positive weight %g", v)
		}
		sum += v
	}
	if math.Abs(sum-float64(len(seqs))) > 1e-6 {
		t.Fatalf("weights sum to %g, want %d", sum, len(seqs))
	}
}

func TestConsensusOfAlignment(t *testing.T) {
	a := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("ACDE")},
		{ID: "b", Data: []byte("ACDE")},
		{ID: "c", Data: []byte("AWDE")},
	}}
	cons, err := a.Consensus(bio.AminoAcids, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if string(cons) != "ACDE" {
		t.Fatalf("consensus = %q", cons)
	}
}
