package msa

import (
	"fmt"
	//lint:allow determinism SPScoreSampled's rng is seeded by the caller's explicit seed parameter
	"math/rand"

	"repro/internal/bio"
	"repro/internal/par"
	"repro/internal/submat"
)

// SPScore computes the sum-of-pairs score of the alignment: for every
// pair of rows, residue pairs score under sub and gaps cost affine
// penalties (open+ext on opening, ext on extension; columns where both
// rows have gaps are skipped). This is the objective the paper reports as
// "score of the global map".
//
// Exact SP is O(N²·W); for large alignments use SPScoreSampled.
func SPScore(a *Alignment, sub *submat.Matrix, gap submat.Gap, workers int) float64 {
	n := a.NumSeqs()
	rows := a.Rows()
	scores := par.Map(n, workers, func(i int) float64 {
		var s float64
		for j := i + 1; j < n; j++ {
			s += pairScore(rows[i], rows[j], sub, gap)
		}
		return s
	})
	var total float64
	for _, s := range scores {
		total += s
	}
	return total
}

// pairScore scores one row pair under the affine model, ignoring
// dual-gap columns.
func pairScore(x, y []byte, sub *submat.Matrix, gap submat.Gap) float64 {
	var s float64
	inX, inY := false, false
	for c := range x {
		gx, gy := x[c] == bio.Gap, y[c] == bio.Gap
		switch {
		case gx && gy:
			// dual gap: no cost, but keeps gap runs open
		case gx:
			if !inX {
				s -= gap.Open
			}
			s -= gap.Extend
			inX, inY = true, false
		case gy:
			if !inY {
				s -= gap.Open
			}
			s -= gap.Extend
			inX, inY = false, true
		default:
			s += sub.Score(x[c], y[c])
			inX, inY = false, false
		}
	}
	return s
}

// SPScoreSampled estimates SP from `pairs` uniformly sampled row pairs,
// scaled to the full pair count. Deterministic for a given seed.
func SPScoreSampled(a *Alignment, sub *submat.Matrix, gap submat.Gap, pairs int, seed int64) float64 {
	n := a.NumSeqs()
	totalPairs := n * (n - 1) / 2
	if totalPairs == 0 {
		return 0
	}
	if pairs >= totalPairs {
		return SPScore(a, sub, gap, 0)
	}
	rng := rand.New(rand.NewSource(seed))
	rows := a.Rows()
	var s float64
	for k := 0; k < pairs; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		s += pairScore(rows[i], rows[j], sub, gap)
	}
	return s * float64(totalPairs) / float64(pairs)
}

// residueColumns returns, for one aligned row, the column index of every
// residue in order: resCols[k] = column of the k-th residue.
func residueColumns(row []byte) []int {
	out := make([]int, 0, len(row))
	for c, b := range row {
		if b != bio.Gap {
			out = append(out, c)
		}
	}
	return out
}

// QScore computes the PREFAB accuracy measure Q of a test alignment
// against a reference: the number of residue pairs aligned together in
// the reference that are also aligned together in the test, divided by
// the number of residue pairs in the reference.
//
// Rows are matched by sequence ID; the reference may cover a subset of
// the test rows (PREFAB references are pairwise). Sequences must carry
// identical residues in both alignments.
func QScore(test, ref *Alignment) (float64, error) {
	testCols := make(map[string][]int, test.NumSeqs())
	for _, s := range test.Seqs {
		testCols[s.ID] = residueColumns(s.Data)
	}
	refPairs, matched := 0, 0
	for i := 0; i < ref.NumSeqs(); i++ {
		ri := ref.Seqs[i]
		ti, ok := testCols[ri.ID]
		if !ok {
			return 0, fmt.Errorf("msa: reference row %q missing from test alignment", ri.ID)
		}
		riCols := residueColumns(ri.Data)
		if len(riCols) != len(ti) {
			return 0, fmt.Errorf("msa: row %q has %d residues in reference, %d in test",
				ri.ID, len(riCols), len(ti))
		}
		for j := i + 1; j < ref.NumSeqs(); j++ {
			rj := ref.Seqs[j]
			tj, ok := testCols[rj.ID]
			if !ok {
				return 0, fmt.Errorf("msa: reference row %q missing from test alignment", rj.ID)
			}
			rjCols := residueColumns(rj.Data)
			if len(rjCols) != len(tj) {
				return 0, fmt.Errorf("msa: row %q has %d residues in reference, %d in test",
					rj.ID, len(rjCols), len(tj))
			}
			// reference column → residue ordinal maps
			colToRes := make(map[int]int, len(rjCols))
			for k, c := range rjCols {
				colToRes[c] = k
			}
			// test column → residue ordinal for row j
			tjColToRes := make(map[int]int, len(tj))
			for k, c := range tj {
				tjColToRes[c] = k
			}
			for ki, c := range riCols {
				kj, ok := colToRes[c]
				if !ok {
					continue // residue of i aligned to a gap in j
				}
				refPairs++
				// the pair (residue ki of i, residue kj of j): aligned in test?
				if kt, ok := tjColToRes[ti[ki]]; ok && kt == kj {
					matched++
				}
			}
		}
	}
	if refPairs == 0 {
		return 0, fmt.Errorf("msa: reference alignment has no residue pairs")
	}
	return float64(matched) / float64(refPairs), nil
}
