package msa

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/bio"
)

// WriteClustal renders the alignment in CLUSTAL W (.aln) format: blocks
// of 60 columns with a conservation line ('*' identical, ':' strong
// group, '.' weak group), the interchange format the tools the paper
// compares against all emit.
func WriteClustal(w io.Writer, a *Alignment) error {
	if err := a.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "CLUSTAL W (sample-align-d reproduction) multiple sequence alignment\n\n\n")

	nameWidth := 16
	for _, s := range a.Seqs {
		if len(s.ID) >= nameWidth {
			nameWidth = len(s.ID) + 1
		}
	}
	const block = 60
	width := a.Width()
	cons := conservationLine(a)
	for off := 0; off < width; off += block {
		end := off + block
		if end > width {
			end = width
		}
		for _, s := range a.Seqs {
			fmt.Fprintf(bw, "%-*s%s\n", nameWidth, s.ID, s.Data[off:end])
		}
		fmt.Fprintf(bw, "%-*s%s\n\n", nameWidth, "", cons[off:end])
	}
	return bw.Flush()
}

// strong and weak conservation groups from CLUSTAL W.
var strongGroups = []string{
	"STA", "NEQK", "NHQK", "NDEQ", "QHRK", "MILV", "MILF", "HY", "FYW",
}

var weakGroups = []string{
	"CSA", "ATV", "SAG", "STNK", "STPA", "SGND", "SNDEQK", "NDEQHK",
	"NEQHRK", "FVLIM", "HFY",
}

// conservationLine computes the CLUSTAL annotation line.
func conservationLine(a *Alignment) []byte {
	width := a.Width()
	out := make([]byte, width)
	for c := 0; c < width; c++ {
		out[c] = classifyColumn(a.Column(c))
	}
	return out
}

func classifyColumn(col []byte) byte {
	first := byte(0)
	identical := true
	for _, b := range col {
		if b == bio.Gap {
			return ' '
		}
		if first == 0 {
			first = b
			continue
		}
		if b != first {
			identical = false
		}
	}
	if first == 0 {
		return ' '
	}
	if identical {
		return '*'
	}
	if columnInGroups(col, strongGroups) {
		return ':'
	}
	if columnInGroups(col, weakGroups) {
		return '.'
	}
	return ' '
}

func columnInGroups(col []byte, groups []string) bool {
	for _, g := range groups {
		all := true
		for _, b := range col {
			if !strings.ContainsRune(g, rune(toUpper(b))) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func toUpper(b byte) byte {
	if b >= 'a' && b <= 'z' {
		return b - 'a' + 'A'
	}
	return b
}

// ColumnConservation returns a per-column conservation score in [0,1]:
// 1 − normalised Shannon entropy of the residue distribution, scaled by
// occupancy. Fully conserved occupied columns score 1; all-gap columns
// score 0. Used to flag the reliable regions of an alignment — the
// paper's future-work section asks for exactly this kind of per-region
// confidence on distributed alignments.
func ColumnConservation(a *Alignment, alpha *bio.Alphabet) []float64 {
	width := a.Width()
	out := make([]float64, width)
	if a.NumSeqs() == 0 {
		return out
	}
	maxEntropy := math.Log(float64(alpha.Len()))
	counts := make([]float64, alpha.Len())
	for c := 0; c < width; c++ {
		for k := range counts {
			counts[k] = 0
		}
		var res, gaps float64
		for _, s := range a.Seqs {
			b := s.Data[c]
			if b == bio.Gap {
				gaps++
				continue
			}
			if idx := alpha.Index(b); idx >= 0 {
				counts[idx]++
				res++
			}
		}
		if res == 0 {
			continue
		}
		var h float64
		for _, cnt := range counts {
			if cnt > 0 {
				p := cnt / res
				h -= p * math.Log(p)
			}
		}
		occupancy := res / (res + gaps)
		out[c] = (1 - h/maxEntropy) * occupancy
	}
	return out
}

// ConservedBlocks returns the maximal column ranges [start,end) whose
// conservation is at least minScore and length at least minLen — the
// conserved motifs an alignment is usually mined for.
func ConservedBlocks(a *Alignment, alpha *bio.Alphabet, minScore float64, minLen int) [][2]int {
	scores := ColumnConservation(a, alpha)
	var blocks [][2]int
	start := -1
	for c := 0; c <= len(scores); c++ {
		ok := c < len(scores) && scores[c] >= minScore
		if ok && start < 0 {
			start = c
		}
		if !ok && start >= 0 {
			if c-start >= minLen {
				blocks = append(blocks, [2]int{start, c})
			}
			start = -1
		}
	}
	return blocks
}
