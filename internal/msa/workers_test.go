package msa

import (
	"bytes"
	"math/rand"
	"testing"
)

// renderAlignment flattens an alignment to one comparable byte string.
func renderAlignment(a *Alignment) []byte {
	var buf bytes.Buffer
	for _, s := range a.Seqs {
		buf.WriteString(s.ID)
		buf.WriteByte('\t')
		buf.Write(s.Data)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestProgressiveWorkersDeterminism pins the core guarantee of the
// task-parallel guide-tree merge: the alignment is byte-identical for
// every Workers value. Runs under -race in CI, which also exercises the
// scheduler's dep-to-dependent hand-offs across every engine variant.
func TestProgressiveWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	seqs := family(rng, 36, 90, 0.25)
	engines := []struct {
		name  string
		build func(workers int) Aligner
	}{
		{"muscle-like", func(w int) Aligner { return MuscleLike(w) }},
		{"muscle-like+refine", func(w int) Aligner { return MuscleLikeRefined(w, 2) }},
		{"clustalw-like", func(w int) Aligner { return ClustalLike(w) }},
	}
	for _, e := range engines {
		t.Run(e.name, func(t *testing.T) {
			ref := renderAlignment(mustAlign(t, e.build(1), seqs))
			for _, w := range []int{4, 8} {
				got := renderAlignment(mustAlign(t, e.build(w), seqs))
				if !bytes.Equal(got, ref) {
					t.Fatalf("workers=%d alignment differs from workers=1", w)
				}
			}
		})
	}
}
