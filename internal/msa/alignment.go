// Package msa implements multiple sequence alignment: the Alignment
// type, sum-of-pairs and Q quality scores, a progressive alignment engine
// with pluggable distances and guide trees, CLUSTALW-style sequence
// weighting and MUSCLE-style iterative refinement.
//
// Two ready-made pipelines reproduce the paper's sequential substrates:
// MuscleLike (k-mer distance + UPGMA + PSP profile alignment) and
// ClustalLike (%-identity distance + neighbour joining + weighting).
package msa

import (
	"fmt"

	"repro/internal/bio"
	"repro/internal/profile"
)

// Alignment is a set of equal-length gapped rows.
type Alignment struct {
	Seqs []bio.Sequence
}

// NumSeqs returns the number of rows.
func (a *Alignment) NumSeqs() int { return len(a.Seqs) }

// Width returns the column count (0 for an empty alignment).
func (a *Alignment) Width() int {
	if len(a.Seqs) == 0 {
		return 0
	}
	return len(a.Seqs[0].Data)
}

// Rows returns the raw row data (shared storage, not a copy).
func (a *Alignment) Rows() [][]byte {
	rows := make([][]byte, len(a.Seqs))
	for i := range a.Seqs {
		rows[i] = a.Seqs[i].Data
	}
	return rows
}

// Validate checks the structural invariants: equal row lengths and no
// column consisting entirely of gaps.
func (a *Alignment) Validate() error {
	if len(a.Seqs) == 0 {
		return nil
	}
	w := a.Width()
	for i, s := range a.Seqs {
		if len(s.Data) != w {
			return fmt.Errorf("msa: row %d (%s) has width %d, want %d", i, s.ID, len(s.Data), w)
		}
	}
	for c := 0; c < w; c++ {
		allGap := true
		for _, s := range a.Seqs {
			if s.Data[c] != bio.Gap {
				allGap = false
				break
			}
		}
		if allGap {
			return fmt.Errorf("msa: column %d is all gaps", c)
		}
	}
	return nil
}

// Ungapped returns the original (gap-free) sequences of the alignment.
func (a *Alignment) Ungapped() []bio.Sequence {
	out := make([]bio.Sequence, len(a.Seqs))
	for i, s := range a.Seqs {
		out[i] = s.Ungapped()
	}
	return out
}

// Profile builds the unweighted profile of the alignment.
func (a *Alignment) Profile(alpha *bio.Alphabet) (*profile.Profile, error) {
	return profile.FromRows(alpha, a.Rows(), nil)
}

// Consensus extracts the alignment's consensus (ancestor) sequence with
// the given minimum column occupancy.
func (a *Alignment) Consensus(alpha *bio.Alphabet, minOcc float64) ([]byte, error) {
	p, err := a.Profile(alpha)
	if err != nil {
		return nil, err
	}
	return p.Consensus(minOcc), nil
}

// Clone deep-copies the alignment.
func (a *Alignment) Clone() *Alignment {
	return &Alignment{Seqs: bio.CloneAll(a.Seqs)}
}

// RemoveAllGapColumns drops every column that holds only gaps, in place,
// and returns the number of columns removed. Merging independently
// aligned groups can create such columns.
func (a *Alignment) RemoveAllGapColumns() int {
	if len(a.Seqs) == 0 {
		return 0
	}
	w := a.Width()
	keep := make([]bool, w)
	kept := 0
	for c := 0; c < w; c++ {
		for _, s := range a.Seqs {
			if s.Data[c] != bio.Gap {
				keep[c] = true
				kept++
				break
			}
		}
	}
	if kept == w {
		return 0
	}
	for i := range a.Seqs {
		dst := a.Seqs[i].Data[:0]
		for c, k := range keep {
			if k {
				dst = append(dst, a.Seqs[i].Data[c])
			}
		}
		a.Seqs[i].Data = dst
	}
	return w - kept
}

// Column returns the bytes of column c.
func (a *Alignment) Column(c int) []byte {
	col := make([]byte, len(a.Seqs))
	for i, s := range a.Seqs {
		col[i] = s.Data[c]
	}
	return col
}

// FindRow returns the index of the row with the given ID, or -1.
func (a *Alignment) FindRow(id string) int {
	for i, s := range a.Seqs {
		if s.ID == id {
			return i
		}
	}
	return -1
}

// Reorder rearranges rows to match the order of ids. Every id must be
// present exactly once.
func (a *Alignment) Reorder(ids []string) error {
	if len(ids) != len(a.Seqs) {
		return fmt.Errorf("msa: reorder with %d ids for %d rows", len(ids), len(a.Seqs))
	}
	byID := make(map[string]int, len(a.Seqs))
	for i, s := range a.Seqs {
		if _, dup := byID[s.ID]; dup {
			return fmt.Errorf("msa: duplicate row id %q", s.ID)
		}
		byID[s.ID] = i
	}
	out := make([]bio.Sequence, 0, len(ids))
	for _, id := range ids {
		i, ok := byID[id]
		if !ok {
			return fmt.Errorf("msa: id %q not in alignment", id)
		}
		out = append(out, a.Seqs[i])
	}
	a.Seqs = out
	return nil
}
