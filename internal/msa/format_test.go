package msa

import (
	"strings"
	"testing"

	"repro/internal/bio"
)

func testAln() *Alignment {
	return &Alignment{Seqs: []bio.Sequence{
		{ID: "seq1", Data: []byte("MKVL-ACDE")},
		{ID: "seq2", Data: []byte("MKVLWACDE")},
		{ID: "seq3", Data: []byte("MKILWACDE")},
	}}
}

func TestWriteClustalBasic(t *testing.T) {
	var b strings.Builder
	if err := WriteClustal(&b, testAln()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "CLUSTAL W") {
		t.Fatalf("missing header: %q", out[:40])
	}
	for _, id := range []string{"seq1", "seq2", "seq3"} {
		if !strings.Contains(out, id) {
			t.Fatalf("row %s missing", id)
		}
	}
	// column 0 (all M) must be starred; the gap column must not be.
	lines := strings.Split(out, "\n")
	var consLine string
	for i, l := range lines {
		if strings.HasPrefix(l, "seq3") && i+1 < len(lines) {
			consLine = lines[i+1]
		}
	}
	if consLine == "" {
		t.Fatal("no conservation line found")
	}
	cons := consLine[len(consLine)-9:]
	if cons[0] != '*' {
		t.Errorf("column 0 not starred: %q", cons)
	}
	if cons[4] != ' ' {
		t.Errorf("gap column annotated: %q", cons)
	}
	// column 2 is V/V/I: MILV is a strong group
	if cons[2] != ':' {
		t.Errorf("V/I column not strong-group: %q", cons)
	}
}

func TestWriteClustalLongAlignment(t *testing.T) {
	row := strings.Repeat("ACDEFGHIKL", 15) // 150 cols → 3 blocks
	a := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte(row)},
		{ID: "b", Data: []byte(row)},
	}}
	var b strings.Builder
	if err := WriteClustal(&b, a); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "a  "); got < 3 {
		t.Fatalf("expected 3 blocks, saw %d row repeats", got)
	}
}

func TestWriteClustalRejectsInvalid(t *testing.T) {
	bad := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("AC")},
		{ID: "b", Data: []byte("A")},
	}}
	var b strings.Builder
	if err := WriteClustal(&b, bad); err == nil {
		t.Fatal("ragged alignment accepted")
	}
}

func TestColumnConservation(t *testing.T) {
	a := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("MW-A")},
		{ID: "b", Data: []byte("MC-A")},
		{ID: "c", Data: []byte("MY-C")},
	}}
	scores := ColumnConservation(a, bio.AminoAcids)
	if len(scores) != 4 {
		t.Fatalf("%d scores", len(scores))
	}
	if scores[0] != 1 {
		t.Errorf("identical column score %g, want 1", scores[0])
	}
	if scores[1] >= scores[0] {
		t.Errorf("diverse column %g not below identical %g", scores[1], scores[0])
	}
	if scores[2] != 0 {
		t.Errorf("all-gap column score %g, want 0", scores[2])
	}
	if scores[3] <= scores[1] {
		t.Errorf("2/3 column %g not above 3-way diverse %g", scores[3], scores[1])
	}
}

func TestColumnConservationEmpty(t *testing.T) {
	empty := &Alignment{}
	if got := ColumnConservation(empty, bio.AminoAcids); len(got) != 0 {
		t.Fatalf("empty alignment scores: %v", got)
	}
}

func TestConservedBlocks(t *testing.T) {
	// 4 conserved columns, 2 noisy, 4 conserved
	a := &Alignment{Seqs: []bio.Sequence{
		{ID: "a", Data: []byte("MKVLWCACDE")},
		{ID: "b", Data: []byte("MKVLCWACDE")},
		{ID: "c", Data: []byte("MKVLYHACDE")},
	}}
	blocks := ConservedBlocks(a, bio.AminoAcids, 0.99, 3)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %v", blocks)
	}
	if blocks[0] != [2]int{0, 4} || blocks[1] != [2]int{6, 10} {
		t.Fatalf("block ranges = %v", blocks)
	}
	// minLen filter
	if got := ConservedBlocks(a, bio.AminoAcids, 0.99, 5); len(got) != 0 {
		t.Fatalf("minLen=5 blocks: %v", got)
	}
}
