package genome

import (
	"math/rand"
)

// The standard genetic code, codon → amino acid ('*' = stop).
var geneticCode = map[string]byte{
	"TTT": 'F', "TTC": 'F', "TTA": 'L', "TTG": 'L',
	"CTT": 'L', "CTC": 'L', "CTA": 'L', "CTG": 'L',
	"ATT": 'I', "ATC": 'I', "ATA": 'I', "ATG": 'M',
	"GTT": 'V', "GTC": 'V', "GTA": 'V', "GTG": 'V',
	"TCT": 'S', "TCC": 'S', "TCA": 'S', "TCG": 'S',
	"CCT": 'P', "CCC": 'P', "CCA": 'P', "CCG": 'P',
	"ACT": 'T', "ACC": 'T', "ACA": 'T', "ACG": 'T',
	"GCT": 'A', "GCC": 'A', "GCA": 'A', "GCG": 'A',
	"TAT": 'Y', "TAC": 'Y', "TAA": '*', "TAG": '*',
	"CAT": 'H', "CAC": 'H', "CAA": 'Q', "CAG": 'Q',
	"AAT": 'N', "AAC": 'N', "AAA": 'K', "AAG": 'K',
	"GAT": 'D', "GAC": 'D', "GAA": 'E', "GAG": 'E',
	"TGT": 'C', "TGC": 'C', "TGA": '*', "TGG": 'W',
	"CGT": 'R', "CGC": 'R', "CGA": 'R', "CGG": 'R',
	"AGT": 'S', "AGC": 'S', "AGA": 'R', "AGG": 'R',
	"GGT": 'G', "GGC": 'G', "GGA": 'G', "GGG": 'G',
}

var stopCodons = []string{"TAA", "TAG", "TGA"}

// codonsFor is the reverse code: amino acid → synonymous codons.
var codonsFor = func() map[byte][]string {
	m := map[byte][]string{}
	for codon, aa := range geneticCode {
		if aa == '*' {
			continue
		}
		m[aa] = append(m[aa], codon)
	}
	return m
}()

// Translate converts DNA to protein, stopping at the first stop codon or
// the end of complete codons. Unknown codons (ambiguity bytes) become 'X'
// which downstream code treats as an unknown residue.
func Translate(dna []byte) []byte {
	out := make([]byte, 0, len(dna)/3)
	for i := 0; i+3 <= len(dna); i += 3 {
		aa, ok := geneticCode[string(upperDNA(dna[i:i+3]))]
		if !ok {
			out = append(out, 'X')
			continue
		}
		if aa == '*' {
			break
		}
		out = append(out, aa)
	}
	return out
}

// BackTranslate converts a protein to DNA choosing uniformly among
// synonymous codons. Residues without codons (X etc.) become random sense
// codons.
func BackTranslate(protein []byte, rng *rand.Rand) []byte {
	out := make([]byte, 0, len(protein)*3)
	for _, aa := range protein {
		codons, ok := codonsFor[aa]
		if !ok {
			// any non-stop codon
			codons = codonsFor['A']
		}
		out = append(out, codons[rng.Intn(len(codons))]...)
	}
	return out
}

// ReverseComplement returns the reverse complement strand.
func ReverseComplement(dna []byte) []byte {
	out := make([]byte, len(dna))
	for i, b := range dna {
		var c byte
		switch upper1(b) {
		case 'A':
			c = 'T'
		case 'T':
			c = 'A'
		case 'G':
			c = 'C'
		case 'C':
			c = 'G'
		default:
			c = 'N'
		}
		out[len(dna)-1-i] = c
	}
	return out
}

func upper1(b byte) byte {
	if b >= 'a' && b <= 'z' {
		return b - 'a' + 'A'
	}
	return b
}

func upperDNA(codon []byte) []byte {
	var out [3]byte
	for i, b := range codon {
		out[i] = upper1(b)
	}
	return out[:]
}

// ORF is an open reading frame located on the chromosome.
type ORF struct {
	Start, End int  // [Start, End) in forward-strand coordinates
	Reverse    bool // true when the ORF lies on the reverse strand
	Protein    []byte
}

// FindORFs scans both strands in all three frames for ATG…stop open
// reading frames of at least minCodons codons (start and stop included).
// Overlapping ORFs are all reported; callers can filter.
func FindORFs(dna []byte, minCodons int) []ORF {
	var out []ORF
	scan := func(seq []byte, reverse bool) {
		n := len(seq)
		for frame := 0; frame < 3; frame++ {
			i := frame
			for i+3 <= n {
				if upper1(seq[i]) == 'A' && upper1(seq[i+1]) == 'T' && upper1(seq[i+2]) == 'G' {
					// extend to stop
					j := i + 3
					for ; j+3 <= n; j += 3 {
						aa := geneticCode[string(upperDNA(seq[j:j+3]))]
						if aa == '*' {
							break
						}
					}
					if j+3 <= n { // found a stop
						codons := (j + 3 - i) / 3
						if codons >= minCodons {
							orf := ORF{Reverse: reverse, Protein: Translate(seq[i:j])}
							if reverse {
								orf.Start = n - (j + 3)
								orf.End = n - i
							} else {
								orf.Start = i
								orf.End = j + 3
							}
							out = append(out, orf)
						}
						i = j + 3 // continue after the stop in this frame
						continue
					}
				}
				i += 3
			}
		}
	}
	scan(dna, false)
	scan(ReverseComplement(dna), true)
	return out
}
