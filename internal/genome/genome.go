// Package genome synthesises an archaeal-like genome standing in for the
// Methanosarcina acetivorans data the paper samples its real-data
// experiment from (5 Mbp, the largest known archaeal genome, ~2000
// randomly selected proteins of average length 316).
//
// The synthetic genome is built gene-first: protein families are evolved
// by duplication-and-divergence (so random samples contain homologous
// clusters, like a real genome), back-translated through the standard
// genetic code, and laid onto a chromosome with intergenic spacers. An
// ORF scanner and translator recover proteins from the DNA, exercising
// the same "sample proteins from a genome" path the paper uses.
package genome

import (
	"fmt"
	"math/rand"

	"repro/internal/bio"
	"repro/internal/rose"
)

// Config parameterises the synthetic genome.
type Config struct {
	TargetBP       int     // approximate chromosome size in base pairs
	MeanProteinLen int     // mean protein length (paper: ~316)
	FamilySizeMean int     // mean paralog family size (duplication factor)
	GC             float64 // GC content of intergenic DNA (archaeal ~0.42)
	Seed           int64
}

func (c *Config) fillDefaults() error {
	if c.TargetBP < 1000 {
		return fmt.Errorf("genome: TargetBP = %d, want >= 1000", c.TargetBP)
	}
	if c.MeanProteinLen <= 10 {
		c.MeanProteinLen = 316
	}
	if c.FamilySizeMean < 1 {
		c.FamilySizeMean = 4
	}
	if c.GC <= 0 || c.GC >= 1 {
		c.GC = 0.42
	}
	return nil
}

// Genome is a synthesised chromosome plus its true proteome.
type Genome struct {
	DNA      []byte
	proteins []bio.Sequence
}

// Proteins returns the true proteome (the proteins encoded on the
// chromosome, in genomic order).
func (g *Genome) Proteins() []bio.Sequence { return g.proteins }

// Sample returns n proteins drawn uniformly without replacement, the way
// the paper "randomly selected 2000 sequences" from the genome. If n
// exceeds the proteome size the whole proteome is returned.
func (g *Genome) Sample(n int, seed int64) []bio.Sequence {
	if n >= len(g.proteins) {
		return bio.CloneAll(g.proteins)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(g.proteins))[:n]
	out := make([]bio.Sequence, n)
	for i, j := range idx {
		out[i] = g.proteins[j].Clone()
	}
	return out
}

// Synthesize builds the genome.
func Synthesize(cfg Config) (*Genome, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Estimate gene count: coding density ~85% like real archaea.
	codingBP := int(float64(cfg.TargetBP) * 0.85)
	geneBP := cfg.MeanProteinLen*3 + 6 // + start/stop
	targetGenes := codingBP / geneBP
	if targetGenes < 1 {
		targetGenes = 1
	}

	// Evolve families until we have enough genes.
	var proteins []bio.Sequence
	famID := 0
	for len(proteins) < targetGenes {
		famSize := 1 + rng.Intn(2*cfg.FamilySizeMean-1)
		if famSize > targetGenes-len(proteins) {
			famSize = targetGenes - len(proteins)
		}
		length := cfg.MeanProteinLen/2 + rng.Intn(cfg.MeanProteinLen+1)
		fam, err := rose.Evolve(rose.Config{
			N:           famSize,
			MeanLen:     length,
			Relatedness: 200 + rng.Float64()*600, // families of varied depth
			Seed:        rng.Int63(),
		})
		if err != nil {
			return nil, err
		}
		for m, s := range fam.Seqs() {
			proteins = append(proteins, bio.Sequence{
				ID:   fmt.Sprintf("MA%04d", len(proteins)),
				Desc: fmt.Sprintf("family %d member %d", famID, m),
				Data: s.Data,
			})
		}
		famID++
	}

	// Lay genes on the chromosome with intergenic spacers.
	g := &Genome{proteins: proteins}
	dna := make([]byte, 0, cfg.TargetBP+cfg.TargetBP/10)
	for _, p := range proteins {
		dna = append(dna, randomDNA(rng, 20+rng.Intn(180), cfg.GC)...)
		dna = append(dna, 'A', 'T', 'G') // start codon
		dna = append(dna, BackTranslate(p.Data, rng)...)
		dna = append(dna, stopCodons[rng.Intn(len(stopCodons))]...)
	}
	dna = append(dna, randomDNA(rng, 20+rng.Intn(180), cfg.GC)...)
	g.DNA = dna
	return g, nil
}

func randomDNA(rng *rand.Rand, n int, gc float64) []byte {
	out := make([]byte, n)
	for i := range out {
		r := rng.Float64()
		switch {
		case r < gc/2:
			out[i] = 'G'
		case r < gc:
			out[i] = 'C'
		case r < gc+(1-gc)/2:
			out[i] = 'A'
		default:
			out[i] = 'T'
		}
	}
	// avoid accidental in-frame stops breaking ORF statistics is not
	// needed for spacers; ORF scanning tolerates them.
	return out
}
