package genome

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bio"
)

func TestTranslateKnown(t *testing.T) {
	if got := Translate([]byte("ATGGCTTGG")); string(got) != "MAW" {
		t.Fatalf("Translate = %q, want MAW", got)
	}
	// stop codon terminates
	if got := Translate([]byte("ATGTAAGCT")); string(got) != "M" {
		t.Fatalf("Translate with stop = %q, want M", got)
	}
	// incomplete trailing codon ignored
	if got := Translate([]byte("ATGGC")); string(got) != "M" {
		t.Fatalf("Translate trailing = %q", got)
	}
	// unknown codon → X
	if got := Translate([]byte("ATGNNN")); string(got) != "MX" {
		t.Fatalf("Translate unknown = %q", got)
	}
}

func TestGeneticCodeComplete(t *testing.T) {
	if len(geneticCode) != 64 {
		t.Fatalf("genetic code has %d codons", len(geneticCode))
	}
	stops := 0
	for _, aa := range geneticCode {
		if aa == '*' {
			stops++
			continue
		}
		if !bio.AminoAcids.Contains(aa) {
			t.Fatalf("code maps to non-residue %q", aa)
		}
	}
	if stops != 3 {
		t.Fatalf("%d stop codons", stops)
	}
}

func TestBackTranslateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	protein := []byte("MKVLWACDEFGHIKLMNPQRSTVWY")
	dna := BackTranslate(protein, rng)
	if len(dna) != len(protein)*3 {
		t.Fatalf("dna length %d", len(dna))
	}
	back := Translate(dna)
	if !bytes.Equal(back, protein) {
		t.Fatalf("round trip %q != %q", back, protein)
	}
}

func TestReverseComplement(t *testing.T) {
	if got := ReverseComplement([]byte("ATGC")); string(got) != "GCAT" {
		t.Fatalf("revcomp = %q", got)
	}
	if got := ReverseComplement(ReverseComplement([]byte("AATTGGCC"))); string(got) != "AATTGGCC" {
		t.Fatalf("double revcomp = %q", got)
	}
}

func TestFindORFsForward(t *testing.T) {
	// spacer ATG [MAW] TAA spacer — one clean forward ORF
	dna := append([]byte("CCCC"), []byte("ATGGCTTGGTAA")...)
	dna = append(dna, []byte("CCCC")...)
	orfs := FindORFs(dna, 3)
	found := false
	for _, o := range orfs {
		if !o.Reverse && string(o.Protein) == "MAW" {
			found = true
			if o.Start != 4 || o.End != 16 {
				t.Fatalf("ORF coords [%d,%d)", o.Start, o.End)
			}
		}
	}
	if !found {
		t.Fatalf("forward MAW ORF not found: %+v", orfs)
	}
}

func TestFindORFsReverse(t *testing.T) {
	gene := []byte("ATGGCTTGGTAA") // codes MAW forward
	dna := append([]byte("CC"), ReverseComplement(gene)...)
	dna = append(dna, []byte("CC")...)
	orfs := FindORFs(dna, 3)
	found := false
	for _, o := range orfs {
		if o.Reverse && string(o.Protein) == "MAW" {
			found = true
		}
	}
	if !found {
		t.Fatalf("reverse ORF not found: %+v", orfs)
	}
}

func TestFindORFsMinLength(t *testing.T) {
	dna := []byte("ATGGCTTGGTAA") // 4 codons total
	if orfs := FindORFs(dna, 10); len(orfs) != 0 {
		t.Fatalf("short ORF passed min filter: %+v", orfs)
	}
}

func TestSynthesizeSmallGenome(t *testing.T) {
	g, err := Synthesize(Config{TargetBP: 60000, MeanProteinLen: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.DNA) < 40000 {
		t.Fatalf("genome only %d bp", len(g.DNA))
	}
	if len(g.Proteins()) < 20 {
		t.Fatalf("only %d proteins", len(g.Proteins()))
	}
	for _, p := range g.Proteins() {
		if err := p.Validate(bio.AminoAcids); err != nil {
			t.Fatal(err)
		}
	}
	// chromosome holds only ACGT
	for i, b := range g.DNA {
		switch b {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("non-DNA byte %q at %d", b, i)
		}
	}
}

func TestSynthesizedGenesRecoverableByORFScan(t *testing.T) {
	g, err := Synthesize(Config{TargetBP: 30000, MeanProteinLen: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	orfs := FindORFs(g.DNA, 50)
	// Every true protein should appear among scanned ORFs as "M"+protein.
	// When an upstream in-frame ATG has no intervening stop, the scanner
	// legitimately reports a longer ORF that ends with the gene, so accept
	// suffix matches too.
	orfSet := map[string]bool{}
	var orfProteins [][]byte
	for _, o := range orfs {
		orfSet[string(o.Protein)] = true
		orfProteins = append(orfProteins, o.Protein)
	}
	missing := 0
	for _, p := range g.Proteins() {
		want := append([]byte("M"), p.Data...)
		if orfSet[string(want)] {
			continue
		}
		suffix := false
		for _, op := range orfProteins {
			if bytes.HasSuffix(op, want) {
				suffix = true
				break
			}
		}
		if !suffix {
			missing++
		}
	}
	if missing > len(g.Proteins())/20 {
		t.Fatalf("%d/%d proteins not recovered by ORF scan", missing, len(g.Proteins()))
	}
}

func TestSampleProperties(t *testing.T) {
	g, err := Synthesize(Config{TargetBP: 100000, MeanProteinLen: 80, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s1 := g.Sample(10, 1)
	s2 := g.Sample(10, 1)
	if len(s1) != 10 {
		t.Fatalf("sample size %d", len(s1))
	}
	for i := range s1 {
		if !bio.Equal(s1[i], s2[i]) {
			t.Fatal("same-seed samples differ")
		}
	}
	ids := map[string]bool{}
	for _, s := range s1 {
		if ids[s.ID] {
			t.Fatalf("duplicate id %s in sample", s.ID)
		}
		ids[s.ID] = true
	}
	all := g.Sample(1<<30, 1)
	if len(all) != len(g.Proteins()) {
		t.Fatalf("oversample returned %d", len(all))
	}
}

func TestSynthesizeMeanLength(t *testing.T) {
	g, err := Synthesize(Config{TargetBP: 200000, MeanProteinLen: 150, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mean := bio.MeanLen(g.Proteins())
	if math.Abs(mean-150) > 60 {
		t.Fatalf("mean protein length %g, want ≈150", mean)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := Synthesize(Config{TargetBP: 10}); err == nil {
		t.Error("tiny genome accepted")
	}
}
