package tree

import (
	"context"

	"repro/internal/par"
)

// ParallelReduce performs a post-order reduction over a binary tree on a
// dependency-aware task scheduler (par.Sched): every leaf is mapped with
// leaf, every internal node combines its children's values with merge,
// and nodes whose subtrees are disjoint run concurrently. This is the
// execution shape of progressive alignment — the strictly sequential
// recursion over the guide tree becomes a DAG whose width is the number
// of independent subtrees at each level.
//
// The result is identical for every workers value: each node's value
// depends only on its children's values, never on execution order.
// workers <= 0 selects par.DefaultWorkers(); workers == 1 reduces inline
// with no goroutines. On a task error or context cancellation the
// reduction stops (in-flight nodes finish) and the error is returned.
//
// Each merge receives a Merge describing its position in the tree, so
// callers can attach per-node observability (e.g. depth-sampled trace
// spans) without re-deriving the topology.
func ParallelReduce[T any](ctx context.Context, root *Node, workers int,
	leaf func(*Node) (T, error), merge func(m Merge, left, right T) (T, error)) (T, error) {
	var zero T
	if root == nil {
		return zero, ctx.Err()
	}
	s := par.NewSched()
	var reg func(n *Node, depth int) (par.TaskID, *T)
	reg = func(n *Node, depth int) (par.TaskID, *T) {
		out := new(T)
		if n.IsLeaf() {
			id := s.Add(func() error {
				v, err := leaf(n)
				if err != nil {
					return err
				}
				*out = v
				return nil
			})
			return id, out
		}
		lid, lv := reg(n.Left, depth+1)
		rid, rv := reg(n.Right, depth+1)
		m := Merge{Node: n, Depth: depth}
		id := s.Add(func() error {
			v, err := merge(m, *lv, *rv)
			if err != nil {
				return err
			}
			// Release the child results: each node has exactly one
			// parent, so they are dead after this merge. Without this
			// every intermediate subtree value stays reachable through
			// the scheduler's task closures until Run returns, inflating
			// peak memory by a factor of the tree depth.
			var zero T
			*lv, *rv = zero, zero
			*out = v
			return nil
		}, lid, rid)
		return id, out
	}
	_, rootVal := reg(root, 0)
	if err := s.Run(ctx, workers); err != nil {
		return zero, err
	}
	return *rootVal, nil
}

// Merge identifies one internal node of a ParallelReduce: the node
// being merged and its depth below the root (root merge = 0).
type Merge struct {
	Node  *Node
	Depth int
}
