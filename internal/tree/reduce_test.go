package tree

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/kmer"
)

func randomTree(t *testing.T, n int, seed int64) *Node {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := kmer.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, rng.Float64())
		}
	}
	return UPGMA(m, nil)
}

func TestParallelReduceCountsLeaves(t *testing.T) {
	root := randomTree(t, 97, 7)
	leaf := func(n *Node) (int, error) { return 1, nil }
	merge := func(_ Merge, l, r int) (int, error) { return l + r, nil }
	for _, workers := range []int{1, 2, 8} {
		got, err := ParallelReduce(context.Background(), root, workers, leaf, merge)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != root.LeafCount() {
			t.Fatalf("workers=%d: counted %d leaves, want %d", workers, got, root.LeafCount())
		}
	}
}

func TestParallelReduceDeterministicOrder(t *testing.T) {
	// The reduced value of a non-commutative merge (string of the leaf
	// order) must not depend on the worker count.
	root := randomTree(t, 41, 11)
	leaf := func(n *Node) (string, error) { return fmt.Sprintf("%d", n.ID), nil }
	merge := func(_ Merge, l, r string) (string, error) { return "(" + l + "," + r + ")", nil }
	ref, err := ParallelReduce(context.Background(), root, 1, leaf, merge)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := ParallelReduce(context.Background(), root, workers, leaf, merge)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != ref {
			t.Fatalf("workers=%d: shape %s != serial %s", workers, got, ref)
		}
	}
}

func TestParallelReduceLeafError(t *testing.T) {
	root := randomTree(t, 16, 3)
	boom := errors.New("bad leaf")
	leaf := func(n *Node) (int, error) {
		if n.ID == 5 {
			return 0, boom
		}
		return 1, nil
	}
	merge := func(_ Merge, l, r int) (int, error) { return l + r, nil }
	for _, workers := range []int{1, 4} {
		if _, err := ParallelReduce(context.Background(), root, workers, leaf, merge); !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want bad leaf", workers, err)
		}
	}
}

func TestParallelReduceMergeInfo(t *testing.T) {
	// Every merge must see its own node at the correct depth: the root
	// merge at depth 0, children one deeper, down the whole tree.
	root := randomTree(t, 33, 5)
	wantDepth := map[*Node]int{}
	var walk func(n *Node, d int)
	walk = func(n *Node, d int) {
		if n == nil || n.IsLeaf() {
			return
		}
		wantDepth[n] = d
		walk(n.Left, d+1)
		walk(n.Right, d+1)
	}
	walk(root, 0)
	leaf := func(n *Node) (int, error) { return 1, nil }
	seen := map[*Node]int{}
	merge := func(m Merge, l, r int) (int, error) {
		if m.Node == nil {
			t.Error("merge with nil node")
		} else {
			seen[m.Node] = m.Depth
		}
		return l + r, nil
	}
	if _, err := ParallelReduce(context.Background(), root, 1, leaf, merge); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(wantDepth) {
		t.Fatalf("saw %d merges, want %d", len(seen), len(wantDepth))
	}
	for n, d := range wantDepth {
		if seen[n] != d {
			t.Fatalf("node %v: depth %d, want %d", n, seen[n], d)
		}
	}
}

func TestParallelReduceNilAndSingle(t *testing.T) {
	leaf := func(n *Node) (int, error) { return n.ID, nil }
	merge := func(_ Merge, l, r int) (int, error) { return l + r, nil }
	got, err := ParallelReduce(context.Background(), nil, 4, leaf, merge)
	if err != nil || got != 0 {
		t.Fatalf("nil root: %d, %v", got, err)
	}
	got, err = ParallelReduce(context.Background(), &Node{ID: 9}, 4, leaf, merge)
	if err != nil || got != 9 {
		t.Fatalf("single leaf: %d, %v", got, err)
	}
}
