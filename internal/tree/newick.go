package tree

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseNewick parses a binary Newick tree (the dialect produced by
// Node.Newick: quoted or bare names, optional branch lengths, exactly two
// children per internal node). Leaf IDs are assigned in order of
// appearance for leaves whose names are not of the form "L<number>".
func ParseNewick(s string) (*Node, error) {
	p := &newickParser{input: strings.TrimSpace(s)}
	n, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.input) && p.input[p.pos] == ';' {
		p.pos++
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("newick: trailing data at offset %d", p.pos)
	}
	// assign IDs to leaves: L<number> names keep their number, others get
	// sequential IDs in appearance order.
	next := 0
	var assign func(*Node)
	assign = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			if id, ok := parseLeafName(n.Name); ok {
				n.ID = id
				n.Name = ""
			} else {
				n.ID = next
			}
			next++
			return
		}
		n.ID = -1
		assign(n.Left)
		assign(n.Right)
	}
	assign(n)
	return n, nil
}

func parseLeafName(name string) (int, bool) {
	if len(name) < 2 || name[0] != 'L' {
		return 0, false
	}
	id, err := strconv.Atoi(name[1:])
	if err != nil || id < 0 {
		return 0, false
	}
	return id, true
}

type newickParser struct {
	input string
	pos   int
}

func (p *newickParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n') {
		p.pos++
	}
}

func (p *newickParser) parseNode() (*Node, error) {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return nil, fmt.Errorf("newick: unexpected end of input")
	}
	if p.input[p.pos] == '(' {
		p.pos++ // consume '('
		left, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		leftLen, err := p.parseBranchLen()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.input) || p.input[p.pos] != ',' {
			return nil, fmt.Errorf("newick: expected ',' at offset %d", p.pos)
		}
		p.pos++
		right, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		rightLen, err := p.parseBranchLen()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.input) || p.input[p.pos] != ')' {
			return nil, fmt.Errorf("newick: expected ')' at offset %d", p.pos)
		}
		p.pos++
		name, _ := p.parseName()
		return &Node{ID: -1, Name: name, Left: left, Right: right,
			LeftLen: leftLen, RightLen: rightLen}, nil
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	if name == "" {
		return nil, fmt.Errorf("newick: empty leaf name at offset %d", p.pos)
	}
	return &Node{Name: name}, nil
}

func (p *newickParser) parseName() (string, error) {
	p.skipSpace()
	if p.pos < len(p.input) && p.input[p.pos] == '\'' {
		p.pos++
		var b strings.Builder
		for p.pos < len(p.input) {
			c := p.input[p.pos]
			if c == '\'' {
				if p.pos+1 < len(p.input) && p.input[p.pos+1] == '\'' {
					b.WriteByte('\'')
					p.pos += 2
					continue
				}
				p.pos++
				return b.String(), nil
			}
			b.WriteByte(c)
			p.pos++
		}
		return "", fmt.Errorf("newick: unterminated quoted name")
	}
	start := p.pos
	for p.pos < len(p.input) && !strings.ContainsRune("():;,", rune(p.input[p.pos])) {
		p.pos++
	}
	return strings.TrimSpace(p.input[start:p.pos]), nil
}

// parseBranchLen consumes ":<float>" if present, else returns 0.
func (p *newickParser) parseBranchLen() (float64, error) {
	p.skipSpace()
	if p.pos >= len(p.input) || p.input[p.pos] != ':' {
		return 0, nil
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.input) && !strings.ContainsRune("(),;", rune(p.input[p.pos])) {
		p.pos++
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(p.input[start:p.pos]), 64)
	if err != nil {
		return 0, fmt.Errorf("newick: bad branch length %q", p.input[start:p.pos])
	}
	return v, nil
}
