// Package tree builds the guide trees used by progressive alignment:
// UPGMA (as in MUSCLE's draft stage) and neighbour-joining (as in
// CLUSTALW), plus Newick serialisation and parsing.
package tree

import (
	"fmt"
	"strings"

	"repro/internal/kmer"
	"repro/internal/par"
)

// Node is a rooted binary phylogenetic tree node. Leaves carry the index
// of the sequence they represent (into whatever slice the distance matrix
// was built from); internal nodes have ID == -1 and two children.
type Node struct {
	ID          int // leaf: sequence index; internal: -1
	Name        string
	Left, Right *Node
	LeftLen     float64 // branch length to Left
	RightLen    float64 // branch length to Right
	Height      float64 // ultrametric height (UPGMA) or 0
}

// IsLeaf reports whether n is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// LeafCount returns the number of leaves under n.
func (n *Node) LeafCount() int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return n.Left.LeafCount() + n.Right.LeafCount()
}

// Leaves appends the leaf IDs under n left to right.
func (n *Node) Leaves() []int {
	var out []int
	n.walkLeaves(&out)
	return out
}

func (n *Node) walkLeaves(out *[]int) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		*out = append(*out, n.ID)
		return
	}
	n.Left.walkLeaves(out)
	n.Right.walkLeaves(out)
}

// PostOrder visits every internal node after its children; progressive
// alignment merges profiles in exactly this order.
func (n *Node) PostOrder(visit func(*Node)) {
	if n == nil {
		return
	}
	n.Left.PostOrder(visit)
	n.Right.PostOrder(visit)
	visit(n)
}

// Depth returns the maximum edge count from n to any leaf.
func (n *Node) Depth() int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if r > l {
		l = r
	}
	return l + 1
}

// Newick renders the tree in Newick format with branch lengths.
func (n *Node) Newick() string {
	var b strings.Builder
	n.newick(&b)
	b.WriteByte(';')
	return b.String()
}

func (n *Node) newick(b *strings.Builder) {
	if n.IsLeaf() {
		if n.Name != "" {
			b.WriteString(escapeName(n.Name))
		} else {
			fmt.Fprintf(b, "L%d", n.ID)
		}
		return
	}
	b.WriteByte('(')
	n.Left.newick(b)
	fmt.Fprintf(b, ":%.6g,", n.LeftLen)
	n.Right.newick(b)
	fmt.Fprintf(b, ":%.6g)", n.RightLen)
	if n.Name != "" {
		b.WriteString(escapeName(n.Name))
	}
}

func escapeName(s string) string {
	if strings.ContainsAny(s, "():;, \t") {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return s
}

// parMinClusters is the active-set size below which the tree builders
// stop fanning work out to par: a goroutine dispatch costs more than a
// short cache-refresh scan, and the sequential path is bit-identical
// anyway, so the cutover is invisible in the output.
const parMinClusters = 96

// UPGMA builds a rooted ultrametric guide tree by repeatedly joining the
// closest cluster pair; cluster distances are size-weighted averages.
// names may be nil. Runs in O(n²) using nearest-neighbour caching.
func UPGMA(d *kmer.Matrix, names []string) *Node {
	return UPGMAWorkers(d, names, 1)
}

// UPGMAWorkers is UPGMA with the O(n) nearest-neighbour cache scans —
// the dominant cost of the O(n²) algorithm — spread over workers
// shared-memory workers. Every scan resolves distance ties by the
// lower cluster index and the global pick resolves score ties by the
// lower cluster index too, so the merge order, and therefore the tree,
// is identical for every workers value (workers <= 0 selects all
// cores, 1 is the sequential path).
func UPGMAWorkers(d *kmer.Matrix, names []string, workers int) *Node {
	n := d.N
	if n == 0 {
		return nil
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = &Node{ID: i, Name: nameOf(names, i)}
	}
	if n == 1 {
		return nodes[0]
	}

	// working copy of distances between active clusters
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = d.At(i, j)
		}
	}
	size := make([]int, n)
	active := make([]bool, n)
	nearest := make([]int, n) // index of nearest active cluster
	nearestD := make([]float64, n)
	for i := range size {
		size[i] = 1
		active[i] = true
	}
	// recomputeNearest writes only cluster i's cache slots and reads the
	// shared dist/active state, which is never mutated while refreshes
	// are in flight — so distinct clusters refresh concurrently without
	// locks. The strict < keeps the lowest index on distance ties, one
	// half of the deterministic (score, lower-index) tie-break.
	recomputeNearest := func(i int) {
		nearest[i] = -1
		best := 0.0
		for j := 0; j < n; j++ {
			if j == i || !active[j] {
				continue
			}
			if nearest[i] == -1 || dist[i][j] < best {
				nearest[i], best = j, dist[i][j]
			}
		}
		nearestD[i] = best
	}
	parallel := workers != 1 && n >= parMinClusters
	if parallel {
		par.For(n, workers, recomputeNearest)
	} else {
		for i := 0; i < n; i++ {
			recomputeNearest(i)
		}
	}

	stale := make([]int, 0, n) // clusters whose cached nearest died this merge
	remaining := n
	for remaining > 1 {
		// pick the globally closest pair via the nearest caches; strict <
		// keeps the lowest index on ties (the other half of the
		// deterministic tie-break).
		bi := -1
		for i := 0; i < n; i++ {
			if !active[i] || nearest[i] == -1 {
				continue
			}
			if bi == -1 || nearestD[i] < nearestD[bi] {
				bi = i
			}
		}
		bj := nearest[bi]
		h := dist[bi][bj] / 2
		parent := &Node{
			ID:       -1,
			Left:     nodes[bi],
			Right:    nodes[bj],
			LeftLen:  h - nodes[bi].Height,
			RightLen: h - nodes[bj].Height,
			Height:   h,
		}
		// merge bj into bi
		si, sj := float64(size[bi]), float64(size[bj])
		for k := 0; k < n; k++ {
			if k == bi || k == bj || !active[k] {
				continue
			}
			nd := (si*dist[bi][k] + sj*dist[bj][k]) / (si + sj)
			dist[bi][k], dist[k][bi] = nd, nd
		}
		active[bj] = false
		nodes[bi] = parent
		size[bi] += size[bj]
		remaining--
		if remaining == 1 {
			return parent
		}
		// Refresh the caches invalidated by the merge: clusters that had
		// bi or bj as their nearest need a full O(n) rescan; everyone
		// else at most adopts the merged cluster with an O(1) check. The
		// rescans are independent (each writes its own slots), so they
		// run concurrently; the merged cluster bi rescans alongside.
		stale = stale[:0]
		for k := 0; k < n; k++ {
			if !active[k] || k == bi {
				continue
			}
			if nearest[k] == bi || nearest[k] == bj {
				stale = append(stale, k)
			} else if dist[k][bi] < nearestD[k] {
				nearest[k], nearestD[k] = bi, dist[k][bi]
			}
		}
		if parallel && remaining >= parMinClusters && len(stale) >= 2 {
			par.For(len(stale)+1, workers, func(t int) {
				if t == 0 {
					recomputeNearest(bi)
				} else {
					recomputeNearest(stale[t-1])
				}
			})
		} else {
			recomputeNearest(bi)
			for _, k := range stale {
				recomputeNearest(k)
			}
		}
	}
	return nodes[0]
}

// NeighborJoining builds a guide tree with the classic NJ criterion and
// roots it at the final join. O(n³); intended for the CLUSTALW-like
// pipeline on modest set sizes.
func NeighborJoining(d *kmer.Matrix, names []string) *Node {
	return NeighborJoiningWorkers(d, names, 1)
}

// NeighborJoiningWorkers is NeighborJoining with each iteration's O(m²)
// row-sum and Q-minimisation scans spread over workers shared-memory
// workers. Each row's scan is sequential (so its float accumulation
// order never changes) and ties are resolved to the lexicographically
// first (a, b) pair, exactly as the sequential double loop does — the
// join order, and therefore the tree, is identical for every workers
// value (workers <= 0 selects all cores, 1 is the sequential path).
func NeighborJoiningWorkers(d *kmer.Matrix, names []string, workers int) *Node {
	n := d.N
	if n == 0 {
		return nil
	}
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		nodes = append(nodes, &Node{ID: i, Name: nameOf(names, i)})
	}
	if n == 1 {
		return nodes[0]
	}
	if n == 2 {
		return &Node{ID: -1, Left: nodes[0], Right: nodes[1],
			LeftLen: d.At(0, 1) / 2, RightLen: d.At(0, 1) / 2}
	}

	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = d.At(i, j)
		}
	}
	activeIdx := make([]int, n)
	for i := range activeIdx {
		activeIdx[i] = i
	}
	// per-iteration scratch, hoisted so the O(n) iterations reuse it
	r := make([]float64, n)    // row sums over the active set
	rowQ := make([]float64, n) // per-row minimal Q
	rowArg := make([]int, n)   // argmin b of rowQ (first on ties)
	const rowBlock = 16        // rows per dispatched block

	for len(activeIdx) > 2 {
		m := len(activeIdx)
		parallel := workers != 1 && m >= parMinClusters
		// Row sums over the active set. Each row accumulates in the same
		// b order as the sequential loop; rows are independent.
		rowSums := func(lo, hi int) {
			for a := lo; a < hi; a++ {
				var sum float64
				da := dist[activeIdx[a]]
				for b := 0; b < m; b++ {
					sum += da[activeIdx[b]]
				}
				r[a] = sum
			}
		}
		// Minimise Q(a,b) = (m-2)d(a,b) - r_a - r_b: each row finds its
		// first-minimal b, then a sequential scan over rows picks the
		// first-minimal a — the same lexicographic tie-break as one
		// nested loop.
		rowScan := func(lo, hi int) {
			for a := lo; a < hi; a++ {
				rowArg[a] = -1
				var best float64
				da := dist[activeIdx[a]]
				for b := a + 1; b < m; b++ {
					q := float64(m-2)*da[activeIdx[b]] - r[a] - r[b]
					if rowArg[a] == -1 || q < best {
						rowArg[a], best = b, q
					}
				}
				rowQ[a] = best
			}
		}
		if parallel {
			par.ForBlocks(m, rowBlock, workers, rowSums)
			par.ForBlocks(m, rowBlock, workers, rowScan)
		} else {
			rowSums(0, m)
			rowScan(0, m)
		}
		bestA, bestB, bestQ := -1, -1, 0.0
		for a := 0; a < m; a++ {
			if rowArg[a] == -1 {
				continue // last row has no b > a
			}
			if bestA == -1 || rowQ[a] < bestQ {
				bestA, bestB, bestQ = a, rowArg[a], rowQ[a]
			}
		}
		ia, ib := activeIdx[bestA], activeIdx[bestB]
		dab := dist[ia][ib]
		la := dab/2 + (r[bestA]-r[bestB])/(2*float64(m-2))
		lb := dab - la
		if la < 0 {
			la = 0
		}
		if lb < 0 {
			lb = 0
		}
		parent := &Node{ID: -1, Left: nodes[ia], Right: nodes[ib], LeftLen: la, RightLen: lb}
		// distances from the new node (stored in slot ia)
		for c := 0; c < m; c++ {
			ic := activeIdx[c]
			if ic == ia || ic == ib {
				continue
			}
			nd := (dist[ia][ic] + dist[ib][ic] - dab) / 2
			if nd < 0 {
				nd = 0
			}
			dist[ia][ic], dist[ic][ia] = nd, nd
		}
		nodes[ia] = parent
		// drop bestB from the active list
		activeIdx = append(activeIdx[:bestB], activeIdx[bestB+1:]...)
	}
	ia, ib := activeIdx[0], activeIdx[1]
	half := dist[ia][ib] / 2
	return &Node{ID: -1, Left: nodes[ia], Right: nodes[ib], LeftLen: half, RightLen: half}
}

func nameOf(names []string, i int) string {
	if i < len(names) {
		return names[i]
	}
	return ""
}
