package tree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/kmer"
)

// matFrom builds a kmer.Matrix from a dense symmetric table.
func matFrom(t *testing.T, table [][]float64) *kmer.Matrix {
	t.Helper()
	m := kmer.NewMatrix(len(table))
	for i := range table {
		for j := i + 1; j < len(table); j++ {
			if table[i][j] != table[j][i] {
				t.Fatalf("test table asymmetric at (%d,%d)", i, j)
			}
			m.Set(i, j, table[i][j])
		}
	}
	return m
}

func TestUPGMAKnownTopology(t *testing.T) {
	// 0 and 1 are close; 2 is far from both; 3 is farthest.
	d := matFrom(t, [][]float64{
		{0, 1, 6, 10},
		{1, 0, 6, 10},
		{6, 6, 0, 10},
		{10, 10, 10, 0},
	})
	root := UPGMA(d, []string{"a", "b", "c", "d"})
	if root.LeafCount() != 4 {
		t.Fatalf("leaf count = %d", root.LeafCount())
	}
	// First join must be {0,1}: find the internal node covering exactly them.
	var pair []int
	root.PostOrder(func(n *Node) {
		if !n.IsLeaf() && n.LeafCount() == 2 {
			ls := n.Leaves()
			sort.Ints(ls)
			if pair == nil {
				pair = ls
			}
		}
	})
	if len(pair) != 2 || pair[0] != 0 || pair[1] != 1 {
		t.Fatalf("first join = %v, want [0 1]", pair)
	}
	// Root height is half the weighted average distance; sanity bound.
	if root.Height <= 0 || root.Height > 5 {
		t.Fatalf("root height = %g", root.Height)
	}
}

func TestUPGMAUltrametric(t *testing.T) {
	// For any UPGMA tree, the distance from every leaf to the root is the
	// root height (ultrametric property).
	rng := rand.New(rand.NewSource(5))
	n := 20
	m := kmer.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 0.1+rng.Float64())
		}
	}
	root := UPGMA(m, nil)
	var check func(n *Node, acc float64)
	check = func(node *Node, acc float64) {
		if node.IsLeaf() {
			if math.Abs(acc-root.Height) > 1e-9 {
				t.Fatalf("leaf %d at depth %g, root height %g", node.ID, acc, root.Height)
			}
			return
		}
		check(node.Left, acc+node.LeftLen)
		check(node.Right, acc+node.RightLen)
	}
	check(root, 0)
}

func TestUPGMACoversAllLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 7, 50} {
		m := kmer.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, rng.Float64()+0.01)
			}
		}
		root := UPGMA(m, nil)
		leaves := root.Leaves()
		sort.Ints(leaves)
		if len(leaves) != n {
			t.Fatalf("n=%d: %d leaves", n, len(leaves))
		}
		for i, id := range leaves {
			if id != i {
				t.Fatalf("n=%d: leaf set %v", n, leaves)
			}
		}
	}
}

// TestGuideTreeWorkersDeterminism pins the tentpole invariant: UPGMA
// and NJ build bit-identical trees (compared as Newick, which encodes
// topology, order and branch lengths) for every worker count. The
// matrices are big enough to cross the parallel cutover and heavily
// quantized so distance ties are common — the (score, lower-index)
// tie-break, not luck, must make the merge order stable.
func TestGuideTreeWorkersDeterminism(t *testing.T) {
	for _, n := range []int{40, 97, 150} {
		rng := rand.New(rand.NewSource(int64(19 + n)))
		m := kmer.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				// multiples of 0.05: plenty of exact ties
				m.Set(i, j, 0.05*float64(1+rng.Intn(20)))
			}
		}
		names := make([]string, n)
		for i := range names {
			names[i] = "s" + string(rune('A'+i%26)) + "_" + string(rune('0'+i%10))
		}
		upgmaRef := UPGMAWorkers(m, names, 1).Newick()
		njRef := NeighborJoiningWorkers(m, names, 1).Newick()
		for _, w := range []int{0, 2, 4, 8} {
			if got := UPGMAWorkers(m, names, w).Newick(); got != upgmaRef {
				t.Fatalf("n=%d: UPGMA workers=%d differs from workers=1", n, w)
			}
			if got := NeighborJoiningWorkers(m, names, w).Newick(); got != njRef {
				t.Fatalf("n=%d: NJ workers=%d differs from workers=1", n, w)
			}
		}
	}
}

func TestNeighborJoiningAdditiveTree(t *testing.T) {
	// Distances from a known additive tree: ((a:2,b:3):1,(c:4,d:5):1)
	// pairwise: ab=5, ac=8, ad=9, bc=9, bd=10, cd=9. NJ must recover the
	// split {a,b} | {c,d}.
	d := matFrom(t, [][]float64{
		{0, 5, 8, 9},
		{5, 0, 9, 10},
		{8, 9, 0, 9},
		{9, 10, 9, 0},
	})
	root := NeighborJoining(d, []string{"a", "b", "c", "d"})
	if root.LeafCount() != 4 {
		t.Fatalf("leaf count = %d", root.LeafCount())
	}
	var pairs [][]int
	root.PostOrder(func(n *Node) {
		if !n.IsLeaf() && n.LeafCount() == 2 {
			ls := n.Leaves()
			sort.Ints(ls)
			pairs = append(pairs, ls)
		}
	})
	found := false
	for _, p := range pairs {
		if (p[0] == 0 && p[1] == 1) || (p[0] == 2 && p[1] == 3) {
			found = true
		}
	}
	if !found {
		t.Fatalf("NJ did not recover {a,b}|{c,d}: cherries %v", pairs)
	}
}

func TestNeighborJoiningSmall(t *testing.T) {
	d := matFrom(t, [][]float64{{0, 4}, {4, 0}})
	root := NeighborJoining(d, nil)
	if root.LeafCount() != 2 || root.LeftLen != 2 || root.RightLen != 2 {
		t.Fatalf("2-leaf NJ: %+v", root)
	}
	single := kmer.NewMatrix(1)
	if NeighborJoining(single, nil).LeafCount() != 1 {
		t.Fatal("1-leaf NJ")
	}
}

func TestNeighborJoiningCoversAllLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{3, 5, 12, 40} {
		m := kmer.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, rng.Float64()+0.05)
			}
		}
		root := NeighborJoining(m, nil)
		leaves := root.Leaves()
		sort.Ints(leaves)
		if len(leaves) != n {
			t.Fatalf("n=%d: %d leaves", n, len(leaves))
		}
		for i, id := range leaves {
			if id != i {
				t.Fatalf("n=%d: leaf set %v", n, leaves)
			}
		}
	}
}

func TestPostOrderVisitsChildrenFirst(t *testing.T) {
	d := matFrom(t, [][]float64{
		{0, 1, 4},
		{1, 0, 4},
		{4, 4, 0},
	})
	root := UPGMA(d, nil)
	seen := map[*Node]bool{}
	root.PostOrder(func(n *Node) {
		if !n.IsLeaf() {
			if !seen[n.Left] || !seen[n.Right] {
				t.Fatal("internal node visited before a child")
			}
		}
		seen[n] = true
	})
	if !seen[root] {
		t.Fatal("root not visited")
	}
}

func TestNewickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 9
	m := kmer.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, rng.Float64()+0.01)
		}
	}
	orig := UPGMA(m, nil)
	parsed, err := ParseNewick(orig.Newick())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Newick() != orig.Newick() {
		t.Fatalf("round trip:\n  orig   %s\n  parsed %s", orig.Newick(), parsed.Newick())
	}
}

func TestNewickNamedLeaves(t *testing.T) {
	in := "(alpha:1,(beta:2,'odd name':3):0.5);"
	n, err := ParseNewick(in)
	if err != nil {
		t.Fatal(err)
	}
	if n.LeafCount() != 3 {
		t.Fatalf("leaf count %d", n.LeafCount())
	}
	if n.Left.Name != "alpha" || n.Right.Right.Name != "odd name" {
		t.Fatalf("names: %q %q", n.Left.Name, n.Right.Right.Name)
	}
	if n.Right.Left.LeftLen != 0 && n.Right.LeftLen != 2 {
		t.Fatalf("branch lengths lost")
	}
}

func TestNewickErrors(t *testing.T) {
	for _, bad := range []string{"", "(a:1", "(a:1,b:2,c:3);", "(a:x,b:1);", "(a:1,b:2);extra"} {
		if _, err := ParseNewick(bad); err == nil {
			t.Errorf("ParseNewick(%q) accepted", bad)
		}
	}
}

func TestDepth(t *testing.T) {
	d := matFrom(t, [][]float64{
		{0, 1, 2, 8},
		{1, 0, 2, 8},
		{2, 2, 0, 8},
		{8, 8, 8, 0},
	})
	root := UPGMA(d, nil)
	if got := root.Depth(); got != 3 {
		t.Fatalf("depth = %d, want 3 (caterpillar)", got)
	}
}
