package profile

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bio"
)

func randomRows(rng *rand.Rand, n, width int) [][]byte {
	letters := bio.AminoAcids.Letters()
	rows := make([][]byte, n)
	for r := range rows {
		row := make([]byte, width)
		for c := range row {
			if rng.Intn(10) == 0 {
				row[c] = bio.Gap
			} else {
				row[c] = letters[rng.Intn(len(letters))]
			}
		}
		rows[r] = row
	}
	return rows
}

func randomProfile(t testing.TB, rng *rand.Rand, n, width int) *Profile {
	t.Helper()
	p, err := FromRows(bio.AminoAcids, randomRows(rng, n, width), nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func pathsEqual(a, b Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAlignDeterministicAcrossReuse proves recycled workspace memory
// never changes the PSP DP's outcome.
func TestAlignDeterministicAcrossReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomProfile(t, rng, 6, 90)
	b := randomProfile(t, rng, 4, 110)
	p1, s1 := testAligner.Align(a, b)
	pb1, sb1 := testAligner.AlignBanded(a, b, -20, 20)

	// pollute the pool with differently-shaped alignments
	for i := 0; i < 4; i++ {
		x := randomProfile(t, rng, 3, 30+i*40)
		y := randomProfile(t, rng, 5, 150-i*20)
		testAligner.Align(x, y)
		testAligner.AlignBanded(y, x, -5, 5)
	}

	if p2, s2 := testAligner.Align(a, b); s1 != s2 || !pathsEqual(p1, p2) {
		t.Fatal("Align result changed across workspace reuse")
	}
	if pb2, sb2 := testAligner.AlignBanded(a, b, -20, 20); sb1 != sb2 || !pathsEqual(pb1, pb2) {
		t.Fatal("AlignBanded result changed across workspace reuse")
	}
}

// TestAlignConcurrent runs profile alignments from many goroutines;
// with -race this proves pooled workspaces are never shared.
func TestAlignConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	type job struct {
		a, b  *Profile
		path  Path
		score float64
	}
	jobs := make([]job, 6)
	for i := range jobs {
		a := randomProfile(t, rng, 2+i, 40+i*15)
		b := randomProfile(t, rng, 3, 60+i*10)
		path, score := testAligner.Align(a, b)
		jobs[i] = job{a: a, b: b, path: path, score: score}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 15; iter++ {
				j := &jobs[iter%len(jobs)]
				path, score := testAligner.Align(j.a, j.b)
				if score != j.score || !pathsEqual(path, j.path) {
					t.Error("concurrent Align diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkProfileAlign measures the steady-state profile-profile DP:
// allocs/op should be O(1) (the returned path), not O(n·m).
func BenchmarkProfileAlign(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pa := randomProfile(b, rng, 8, 300)
	pb := randomProfile(b, rng, 8, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testAligner.Align(pa, pb)
	}
}

func BenchmarkProfileAlignBanded(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pa := randomProfile(b, rng, 8, 300)
	pb := randomProfile(b, rng, 8, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testAligner.AlignBanded(pa, pb, -32, 32)
	}
}
