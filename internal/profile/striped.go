package profile

import (
	"repro/internal/dp"
	"repro/internal/dpkern"
)

// isUnitLeaf reports whether p is an unaltered single-sequence profile
// as far as PSP scoring is concerned: every column carries the
// profile's full weight on exactly one letter and no gap mass. For such
// columns the residue frequency is exactly 1.0 and the occupancy
// exactly 1.0 (both divisions are w/w), so the PSP column score
// degenerates to the raw substitution score and the occupancy-scaled
// gap penalties to the plain gap model — the pairwise DP, which the
// striped int16 kernel computes exactly. Columns with spread unknown
// residues or any gap mass fail the test and keep the scalar path.
func isUnitLeaf(p *Profile) bool {
	if p.Weight <= 0 {
		return false
	}
	for i := range p.Cols {
		col := &p.Cols[i]
		if col.Gaps != 0 {
			return false
		}
		hit := false
		for _, c := range col.Counts {
			if c == 0 {
				continue
			}
			if hit || c != p.Weight {
				return false
			}
			hit = true
		}
		if !hit {
			return false
		}
	}
	return true
}

// leafRows extracts the single letter index of each unit-leaf column
// into the workspace byte arena; the indices double as dpkern table
// rows. Only valid after isUnitLeaf returned true.
func leafRows(w *dp.Workspace, p *Profile) []byte {
	rows := w.Bytes(p.Len())
	for i := range p.Cols {
		for y, c := range p.Cols[i].Counts {
			if c != 0 {
				rows[i] = byte(y)
				break
			}
		}
	}
	return rows
}

// alignStriped attempts the striped int16 kernel for a profile pair:
// both profiles must be unit leaves, the matrix and gap model must
// quantize exactly, and the DP value bounds must fit int16 (banded
// kernels use the stricter banded bound). Returns ok=false — and has no
// observable effect — whenever any precondition fails, in which case
// the caller runs the scalar DP. On success the path and score are
// byte-identical to what the scalar DP would have produced.
func (al *Aligner) alignStriped(a, b *Profile, banded bool, lo, hi int) (Path, float64, bool) {
	if al.Kernel == dpkern.Scalar {
		return nil, 0, false
	}
	t := dpkern.For(al.Sub, al.Gap)
	n, m := a.Len(), b.Len()
	if banded {
		if !t.FitsBanded(n, m) {
			dpkern.NoteEscape()
			return nil, 0, false
		}
	} else if !t.Fits(n, m) {
		dpkern.NoteEscape()
		return nil, 0, false
	}
	if !isUnitLeaf(a) || !isUnitLeaf(b) {
		dpkern.NoteEscape()
		return nil, 0, false
	}
	dpkern.NoteStriped()
	w := dp.GetInt(n+1, m+1)
	defer dp.Put(w)
	ra, rb := leafRows(w, a), leafRows(w, b)
	var state byte
	var score float64
	if banded {
		state, score = t.Banded(w, ra, rb, lo, hi)
	} else {
		state, score = t.Global(w, ra, rb)
	}
	return tracePath(w, n, m, state), score, true
}
