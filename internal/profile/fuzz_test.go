package profile

import (
	"testing"

	"repro/internal/bio"
	"repro/internal/dpkern"
	"repro/internal/submat"
)

// FuzzKernelEquivalence drives random byte strings through the scalar
// and striped kernels and requires identical paths and bit-identical
// scores. The raw fuzz bytes are folded onto the amino-acid alphabet,
// so every input is a valid unit-leaf pair and the striped kernel's
// fast path (not just its escape) is exercised; the length cap keeps a
// single case inside the fuzz engine's per-exec budget.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte("HEAGAWGHEE"), []byte("PAWHEAE"))
	f.Add([]byte("AAAAAAAA"), []byte("AAAA"))
	f.Add([]byte("AGAGAGAGAGAGAG"), []byte("GAGAGAGA")) // tie-heavy
	f.Add([]byte{}, []byte("ACDE"))
	f.Add([]byte{0xff, 0x00, 0x41}, []byte{0x80, 0x7f})

	scalar := NewAligner(submat.BLOSUM62, submat.DefaultProteinGap)
	scalar.Kernel = dpkern.Scalar
	striped := NewAligner(submat.BLOSUM62, submat.DefaultProteinGap)
	striped.Kernel = dpkern.Striped

	letters := bio.AminoAcids.Letters()
	fold := func(raw []byte) *Profile {
		if len(raw) > 256 {
			raw = raw[:256]
		}
		s := make([]byte, len(raw))
		for i, c := range raw {
			s[i] = letters[int(c)%len(letters)]
		}
		return FromSequence(bio.AminoAcids, s)
	}

	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a, b := fold(rawA), fold(rawB)
		sp, ss := scalar.Align(a, b)
		tp, ts := striped.Align(a, b)
		if ss != ts {
			t.Fatalf("score %v (scalar) != %v (striped)", ss, ts)
		}
		if !pathsEqual(sp, tp) {
			t.Fatalf("paths differ:\nscalar  %v\nstriped %v", sp, tp)
		}
		// Seeding with the known-good path must change nothing either.
		qp, qs := striped.AlignSeeded(a, b, sp)
		if qs != ss || !pathsEqual(qp, sp) {
			t.Fatalf("AlignSeeded diverged: score %v vs %v", qs, ss)
		}
	})
}
