package profile

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bio"
	"repro/internal/submat"
)

var testAligner = NewAligner(submat.BLOSUM62, submat.DefaultProteinGap)

func TestFromRowsBasic(t *testing.T) {
	rows := [][]byte{
		[]byte("AC-E"),
		[]byte("AC-E"),
		[]byte("AW-E"),
	}
	p, err := FromRows(bio.AminoAcids, rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 || p.Weight != 3 {
		t.Fatalf("len=%d weight=%g", p.Len(), p.Weight)
	}
	aIdx := bio.AminoAcids.Index('A')
	if p.Cols[0].Counts[aIdx] != 3 {
		t.Errorf("col0 A count = %g", p.Cols[0].Counts[aIdx])
	}
	cIdx := bio.AminoAcids.Index('C')
	wIdx := bio.AminoAcids.Index('W')
	if p.Cols[1].Counts[cIdx] != 2 || p.Cols[1].Counts[wIdx] != 1 {
		t.Errorf("col1 counts C=%g W=%g", p.Cols[1].Counts[cIdx], p.Cols[1].Counts[wIdx])
	}
	if p.Cols[2].Gaps != 3 || p.Cols[2].Occupancy() != 0 {
		t.Errorf("gap column: gaps=%g occ=%g", p.Cols[2].Gaps, p.Cols[2].Occupancy())
	}
	if p.Cols[3].Occupancy() != 1 {
		t.Errorf("full column occupancy = %g", p.Cols[3].Occupancy())
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(bio.AminoAcids, [][]byte{[]byte("AC"), []byte("A")}, nil); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := FromRows(bio.AminoAcids, [][]byte{[]byte("AC")}, []float64{1, 2}); err == nil {
		t.Error("weight count mismatch accepted")
	}
}

func TestFromRowsWeights(t *testing.T) {
	rows := [][]byte{[]byte("A"), []byte("W")}
	p, err := FromRows(bio.AminoAcids, rows, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	aIdx := bio.AminoAcids.Index('A')
	wIdx := bio.AminoAcids.Index('W')
	if p.Cols[0].Counts[aIdx] != 3 || p.Cols[0].Counts[wIdx] != 1 {
		t.Fatalf("weighted counts: %v", p.Cols[0].Counts)
	}
}

func TestConsensus(t *testing.T) {
	rows := [][]byte{
		[]byte("ACD-F"),
		[]byte("ACD-F"),
		[]byte("AWD--"),
		[]byte("A-D--"),
	}
	p, _ := FromRows(bio.AminoAcids, rows, nil)
	cons := p.Consensus(0.5)
	// col3 is all gaps; col4 has occupancy 0.5 (2/4) so it is kept.
	if string(cons) != "ACDF" {
		t.Fatalf("consensus = %q, want ACDF", cons)
	}
	strict := p.Consensus(0.9)
	if string(strict) != "AD" {
		t.Fatalf("strict consensus = %q, want AD", strict)
	}
}

func TestFromSequenceRoundTrip(t *testing.T) {
	seq := []byte("MKVLW")
	p := FromSequence(bio.AminoAcids, seq)
	if p.Len() != 5 || p.Weight != 1 {
		t.Fatalf("len=%d weight=%g", p.Len(), p.Weight)
	}
	if got := p.Consensus(0.5); !bytes.Equal(got, seq) {
		t.Fatalf("consensus %q != seq %q", got, seq)
	}
}

func TestPathValidate(t *testing.T) {
	path := Path{OpMatch, OpA, OpB, OpMatch}
	if err := path.Validate(3, 3); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := path.Validate(2, 3); err == nil {
		t.Error("wrong consumption accepted")
	}
}

func TestAlignIdenticalSequences(t *testing.T) {
	seq := []byte("MKVLWACDEFGH")
	a := FromSequence(bio.AminoAcids, seq)
	b := FromSequence(bio.AminoAcids, seq)
	path, score := testAligner.Align(a, b)
	if err := path.Validate(a.Len(), b.Len()); err != nil {
		t.Fatal(err)
	}
	for _, op := range path {
		if op != OpMatch {
			t.Fatalf("identical profiles should align gap-free: %v", path)
		}
	}
	if score <= 0 {
		t.Fatalf("score = %g", score)
	}
}

func TestAlignEmptyProfile(t *testing.T) {
	a := FromSequence(bio.AminoAcids, []byte("ACD"))
	empty := &Profile{Alpha: bio.AminoAcids}
	path, _ := testAligner.Align(a, empty)
	if err := path.Validate(3, 0); err != nil {
		t.Fatal(err)
	}
	path, _ = testAligner.Align(empty, a)
	if err := path.Validate(0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRows(t *testing.T) {
	rowsA := [][]byte{[]byte("AC"), []byte("A-")}
	rowsB := [][]byte{[]byte("CW")}
	path := Path{OpA, OpMatch, OpB}
	merged := MergeRows(rowsA, rowsB, path)
	want := [][]byte{
		[]byte("AC-"),
		[]byte("A--"),
		[]byte("-CW"),
	}
	if len(merged) != 3 {
		t.Fatalf("got %d rows", len(merged))
	}
	for i := range want {
		if !bytes.Equal(merged[i], want[i]) {
			t.Errorf("row %d: %q want %q", i, merged[i], want[i])
		}
	}
}

func TestMergeProfileMatchesMergeRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	letters := bio.AminoAcids.Letters()
	randRows := func(n, w int) [][]byte {
		rows := make([][]byte, n)
		for i := range rows {
			rows[i] = make([]byte, w)
			for j := range rows[i] {
				if rng.Intn(5) == 0 {
					rows[i][j] = bio.Gap
				} else {
					rows[i][j] = letters[rng.Intn(len(letters))]
				}
			}
		}
		return rows
	}
	for trial := 0; trial < 20; trial++ {
		rowsA := randRows(2+rng.Intn(3), 5+rng.Intn(20))
		rowsB := randRows(1+rng.Intn(3), 5+rng.Intn(20))
		pa, _ := FromRows(bio.AminoAcids, rowsA, nil)
		pb, _ := FromRows(bio.AminoAcids, rowsB, nil)
		path, _ := testAligner.Align(pa, pb)
		merged, err := Merge(pa, pb, path)
		if err != nil {
			t.Fatal(err)
		}
		fromRows, _ := FromRows(bio.AminoAcids, MergeRows(rowsA, rowsB, path), nil)
		if merged.Len() != fromRows.Len() {
			t.Fatalf("trial %d: merged len %d != %d", trial, merged.Len(), fromRows.Len())
		}
		for c := range merged.Cols {
			if math.Abs(merged.Cols[c].Gaps-fromRows.Cols[c].Gaps) > 1e-9 {
				t.Fatalf("trial %d col %d: gaps %g != %g",
					trial, c, merged.Cols[c].Gaps, fromRows.Cols[c].Gaps)
			}
			for k := range merged.Cols[c].Counts {
				if math.Abs(merged.Cols[c].Counts[k]-fromRows.Cols[c].Counts[k]) > 1e-9 {
					t.Fatalf("trial %d col %d letter %d: %g != %g",
						trial, c, k, merged.Cols[c].Counts[k], fromRows.Cols[c].Counts[k])
				}
			}
		}
	}
}

func TestAlignRelatedProfilesKeepsColumns(t *testing.T) {
	// Aligning a profile against a single homologous sequence with a
	// deletion should produce exactly one OpA (the deleted column).
	rowsA := [][]byte{
		[]byte("MKVLWACDEFGH"),
		[]byte("MKVLWACDEFGH"),
	}
	seqB := []byte("MKVLWCDEFGH") // 'A' deleted
	pa, _ := FromRows(bio.AminoAcids, rowsA, nil)
	pb := FromSequence(bio.AminoAcids, seqB)
	path, _ := testAligner.Align(pa, pb)
	nA, nMatch := 0, 0
	for _, op := range path {
		switch op {
		case OpA:
			nA++
		case OpMatch:
			nMatch++
		}
	}
	if nA != 1 || nMatch != 11 {
		t.Fatalf("path ops: %d OpA, %d OpMatch (path %v)", nA, nMatch, path)
	}
}

func TestAlignPathValidProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	letters := bio.AminoAcids.Letters()
	for trial := 0; trial < 30; trial++ {
		la, lb := 1+rng.Intn(40), 1+rng.Intn(40)
		sa := make([]byte, la)
		sb := make([]byte, lb)
		for i := range sa {
			sa[i] = letters[rng.Intn(20)]
		}
		for i := range sb {
			sb[i] = letters[rng.Intn(20)]
		}
		pa := FromSequence(bio.AminoAcids, sa)
		pb := FromSequence(bio.AminoAcids, sb)
		path, _ := testAligner.Align(pa, pb)
		if err := path.Validate(la, lb); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestProfileAlignMatchesPairwiseOnSequences(t *testing.T) {
	// For single-sequence profiles the PSP score with occupancy 1 reduces
	// to plain substitution scores, so the profile DP and the pairwise DP
	// must find alignments of equal score.
	rng := rand.New(rand.NewSource(77))
	letters := bio.AminoAcids.Letters()
	for trial := 0; trial < 15; trial++ {
		sa := make([]byte, 10+rng.Intn(30))
		sb := make([]byte, 10+rng.Intn(30))
		for i := range sa {
			sa[i] = letters[rng.Intn(20)]
		}
		for i := range sb {
			sb[i] = letters[rng.Intn(20)]
		}
		pa := FromSequence(bio.AminoAcids, sa)
		pb := FromSequence(bio.AminoAcids, sb)
		_, profScore := testAligner.Align(pa, pb)
		// pairwise equivalent
		pw := struct{ open, ext float64 }{testAligner.Gap.Open, testAligner.Gap.Extend}
		_ = pw
		pwAl := pairwiseEquivalentScore(sa, sb)
		if math.Abs(profScore-pwAl) > 1e-9 {
			t.Fatalf("trial %d: profile score %g != pairwise score %g", trial, profScore, pwAl)
		}
	}
}

// pairwiseEquivalentScore recomputes the optimal global affine score with
// the same parameters using an independent implementation (pairwise pkg
// would create an import cycle in tests, so inline a reference DP).
func pairwiseEquivalentScore(a, b []byte) float64 {
	sub := submat.BLOSUM62
	open, ext := submat.DefaultProteinGap.Open, submat.DefaultProteinGap.Extend
	n, m := len(a), len(b)
	negInf := math.Inf(-1)
	M := make([][]float64, n+1)
	X := make([][]float64, n+1)
	Y := make([][]float64, n+1)
	for i := range M {
		M[i] = make([]float64, m+1)
		X[i] = make([]float64, m+1)
		Y[i] = make([]float64, m+1)
	}
	M[0][0] = 0
	X[0][0], Y[0][0] = negInf, negInf
	for i := 1; i <= n; i++ {
		M[i][0], Y[i][0] = negInf, negInf
		X[i][0] = -(open + float64(i)*ext)
	}
	for j := 1; j <= m; j++ {
		M[0][j], X[0][j] = negInf, negInf
		Y[0][j] = -(open + float64(j)*ext)
	}
	max3 := func(x, y, z float64) float64 { return math.Max(x, math.Max(y, z)) }
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			M[i][j] = sub.Score(a[i-1], b[j-1]) + max3(M[i-1][j-1], X[i-1][j-1], Y[i-1][j-1])
			X[i][j] = math.Max(M[i-1][j]-open-ext, X[i-1][j]-ext)
			Y[i][j] = math.Max(M[i][j-1]-open-ext, Y[i][j-1]-ext)
		}
	}
	return max3(M[n][m], X[n][m], Y[n][m])
}
