package profile

import (
	"math"

	"repro/internal/dp"
)

// AlignBanded is Align restricted to diagonals j−i ∈ [diagLo, diagHi]
// (clamped so the start and end cells are always reachable). The
// MAFFT-like aligner uses FFT-detected homologous offsets to choose the
// band, paying O(width·band) instead of O(width²).
func (al *Aligner) AlignBanded(a, b *Profile, diagLo, diagHi int) (Path, float64) {
	n, m := a.Len(), b.Len()
	if n == 0 || m == 0 {
		return al.alignTrivial(n, m)
	}
	// Clamp the band to contain both corners: (0,0) lies on diagonal 0
	// and (n,m) on diagonal m−n, so the band must span min(0,m−n) to
	// max(0,m−n) whatever the caller asked for.
	if diagLo > diagHi {
		diagLo, diagHi = diagHi, diagLo
	}
	if diagLo > 0 {
		diagLo = 0
	}
	if diagLo > m-n {
		diagLo = m - n
	}
	if diagHi < 0 {
		diagHi = 0
	}
	if diagHi < m-n {
		diagHi = m - n
	}

	if path, score, ok := al.alignStriped(a, b, true, diagLo, diagHi); ok {
		return path, score
	}
	w := dp.Get(n+1, m+1)
	defer dp.Put(w)
	sc := al.pspSetup(w, a, b)
	open, ext := al.Gap.Open, al.Gap.Extend
	negInf := math.Inf(-1)
	M, X, Y, tb := w.MP, w.XP, w.YP, w.TB
	cols := m + 1

	for i := range M {
		M[i], X[i], Y[i] = negInf, negInf, negInf
	}
	inBand := func(i, j int) bool {
		d := j - i
		return d >= diagLo && d <= diagHi
	}
	M[0] = 0
	for i := 1; i <= n && inBand(i, 0); i++ {
		idx := i * cols
		X[idx] = X0(i, X[idx-cols], open, ext, sc.occA[i-1])
		tb[idx] = dp.PackTB(sM, sX, sM)
	}
	for j := 1; j <= m && inBand(0, j); j++ {
		Y[j] = X0(j, Y[j-1], open, ext, sc.occB[j-1])
		tb[j] = dp.PackTB(sM, sM, sY)
	}

	for i := 1; i <= n; i++ {
		jLo := i + diagLo
		if jLo < 1 {
			jLo = 1
		}
		jHi := i + diagHi
		if jHi > m {
			jHi = m
		}
		row := i * cols
		prev := row - cols
		wA := sc.occA[i-1]
		openA, extA := (open+ext)*wA, ext*wA
		for j := jLo; j <= jHi; j++ {
			s := sc.colScore(i-1, j-1)
			d := prev + j - 1
			bm, bs := sM, M[d]
			if X[d] > bs {
				bm, bs = sX, X[d]
			}
			if Y[d] > bs {
				bm, bs = sY, Y[d]
			}
			if bs > negInf {
				M[row+j] = bs + s
			} else {
				bm = sM
			}

			up := prev + j
			bx := sM
			openX := M[up] - openA
			if extX := X[up] - extA; openX >= extX {
				X[row+j] = openX
			} else {
				X[row+j] = extX
				bx = sX
			}
			wB := sc.occB[j-1]
			left := row + j - 1
			by := sM
			openY := M[left] - (open+ext)*wB
			if extY := Y[left] - ext*wB; openY >= extY {
				Y[row+j] = openY
			} else {
				Y[row+j] = extY
				by = sY
			}
			tb[row+j] = dp.PackTB(bm, bx, by)
		}
	}

	end := n*cols + m
	state, score := sM, M[end]
	if X[end] > score {
		state, score = sX, X[end]
	}
	if Y[end] > score {
		state, score = sY, Y[end]
	}
	return tracePath(w, n, m, state), score
}

func (al *Aligner) alignTrivial(n, m int) (Path, float64) {
	path := make(Path, 0, n+m)
	for i := 0; i < n; i++ {
		path = append(path, OpA)
	}
	for j := 0; j < m; j++ {
		path = append(path, OpB)
	}
	return path, 0
}
