package profile

import (
	"math"
)

// AlignBanded is Align restricted to diagonals j−i ∈ [diagLo, diagHi]
// (clamped so the start and end cells are always reachable). The
// MAFFT-like aligner uses FFT-detected homologous offsets to choose the
// band, paying O(width·band) instead of O(width²).
func (al *Aligner) AlignBanded(a, b *Profile, diagLo, diagHi int) (Path, float64) {
	n, m := a.Len(), b.Len()
	if n == 0 || m == 0 {
		return al.alignTrivial(n, m)
	}
	// Clamp the band to contain both corners: (0,0) lies on diagonal 0
	// and (n,m) on diagonal m−n, so the band must span min(0,m−n) to
	// max(0,m−n) whatever the caller asked for.
	if diagLo > diagHi {
		diagLo, diagHi = diagHi, diagLo
	}
	if diagLo > 0 {
		diagLo = 0
	}
	if diagLo > m-n {
		diagLo = m - n
	}
	if diagHi < 0 {
		diagHi = 0
	}
	if diagHi < m-n {
		diagHi = m - n
	}

	fa, occA := colFreqs(a)
	fb, occB := colFreqs(b)
	alphaLen := al.Sub.Alphabet().Len()
	sb := make([][]float64, m)
	for j := 0; j < m; j++ {
		v := make([]float64, alphaLen)
		for x := 0; x < alphaLen; x++ {
			var s float64
			for y := 0; y < alphaLen; y++ {
				if fb[j][y] != 0 {
					s += fb[j][y] * al.Sub.ScoreIdx(x, y)
				}
			}
			v[x] = s
		}
		sb[j] = v
	}
	colScore := func(i, j int) float64 {
		var s float64
		for x := 0; x < alphaLen; x++ {
			if fa[i][x] != 0 {
				s += fa[i][x] * sb[j][x]
			}
		}
		return s * occA[i] * occB[j]
	}

	open, ext := al.Gap.Open, al.Gap.Extend
	negInf := math.Inf(-1)
	M := newMat(n+1, m+1)
	X := newMat(n+1, m+1)
	Y := newMat(n+1, m+1)
	tbM := make([]byte, (n+1)*(m+1))
	tbX := make([]byte, (n+1)*(m+1))
	tbY := make([]byte, (n+1)*(m+1))
	at := func(i, j int) int { return i*(m+1) + j }
	const sM, sX, sY = 0, 1, 2

	for i := 0; i <= n; i++ {
		for j := 0; j <= m; j++ {
			M[i][j], X[i][j], Y[i][j] = negInf, negInf, negInf
		}
	}
	inBand := func(i, j int) bool {
		d := j - i
		return d >= diagLo && d <= diagHi
	}
	M[0][0] = 0
	for i := 1; i <= n && inBand(i, 0); i++ {
		X[i][0] = X0(i, X[i-1][0], open, ext, occA[i-1])
		tbX[at(i, 0)] = sX
	}
	for j := 1; j <= m && inBand(0, j); j++ {
		Y[0][j] = X0(j, Y[0][j-1], open, ext, occB[j-1])
		tbY[at(0, j)] = sY
	}

	for i := 1; i <= n; i++ {
		jLo := i + diagLo
		if jLo < 1 {
			jLo = 1
		}
		jHi := i + diagHi
		if jHi > m {
			jHi = m
		}
		for j := jLo; j <= jHi; j++ {
			s := colScore(i-1, j-1)
			bm, bs := byte(sM), M[i-1][j-1]
			if X[i-1][j-1] > bs {
				bm, bs = sX, X[i-1][j-1]
			}
			if Y[i-1][j-1] > bs {
				bm, bs = sY, Y[i-1][j-1]
			}
			if bs > negInf {
				M[i][j] = bs + s
				tbM[at(i, j)] = bm
			}
			wA := occA[i-1]
			openX := M[i-1][j] - (open+ext)*wA
			extX := X[i-1][j] - ext*wA
			if openX >= extX {
				X[i][j] = openX
				tbX[at(i, j)] = sM
			} else {
				X[i][j] = extX
				tbX[at(i, j)] = sX
			}
			wB := occB[j-1]
			openY := M[i][j-1] - (open+ext)*wB
			extY := Y[i][j-1] - ext*wB
			if openY >= extY {
				Y[i][j] = openY
				tbY[at(i, j)] = sM
			} else {
				Y[i][j] = extY
				tbY[at(i, j)] = sY
			}
		}
	}

	state, score := byte(sM), M[n][m]
	if X[n][m] > score {
		state, score = sX, X[n][m]
	}
	if Y[n][m] > score {
		state, score = sY, Y[n][m]
	}
	rev := make(Path, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		switch state {
		case sM:
			prev := tbM[at(i, j)]
			rev = append(rev, OpMatch)
			i--
			j--
			state = prev
		case sX:
			prev := tbX[at(i, j)]
			rev = append(rev, OpA)
			i--
			state = prev
		default:
			prev := tbY[at(i, j)]
			rev = append(rev, OpB)
			j--
			state = prev
		}
	}
	for lo, hi := 0, len(rev)-1; lo < hi; lo, hi = lo+1, hi-1 {
		rev[lo], rev[hi] = rev[hi], rev[lo]
	}
	return rev, score
}

func (al *Aligner) alignTrivial(n, m int) (Path, float64) {
	path := make(Path, 0, n+m)
	for i := 0; i < n; i++ {
		path = append(path, OpA)
	}
	for j := 0; j < m; j++ {
		path = append(path, OpB)
	}
	return path, 0
}
