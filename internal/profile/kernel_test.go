package profile

import (
	"math/rand"
	"testing"

	"repro/internal/bio"
	"repro/internal/dpkern"
	"repro/internal/submat"
)

// Cross-kernel property tests for the profile aligner: whatever the
// Kernel setting, Align and AlignSeeded must produce identical paths
// and bit-identical scores. The scalar configuration is the untouched
// reference everything is compared against.

func kernelAligners() (scalar, striped *Aligner) {
	scalar = NewAligner(submat.BLOSUM62, submat.DefaultProteinGap)
	scalar.Kernel = dpkern.Scalar
	striped = NewAligner(submat.BLOSUM62, submat.DefaultProteinGap)
	striped.Kernel = dpkern.Striped
	return scalar, striped
}

func randLeaf(rng *rand.Rand, n int, letters []byte) *Profile {
	s := make([]byte, n)
	for i := range s {
		s[i] = letters[rng.Intn(len(letters))]
	}
	return FromSequence(bio.AminoAcids, s)
}

func assertSameAlignment(t *testing.T, tag string, wantP Path, wantS float64, gotP Path, gotS float64) {
	t.Helper()
	if wantS != gotS {
		t.Fatalf("%s: score %v (scalar) != %v (striped)", tag, wantS, gotS)
	}
	if !pathsEqual(wantP, gotP) {
		t.Fatalf("%s: paths differ:\nscalar  %v\nstriped %v", tag, wantP, gotP)
	}
}

func TestStripedLeafAlignMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	scalar, striped := kernelAligners()
	letters := bio.AminoAcids.Letters()
	for trial := 0; trial < 40; trial++ {
		a := randLeaf(rng, 1+rng.Intn(120), letters)
		b := randLeaf(rng, 1+rng.Intn(120), letters)
		sp, ss := scalar.Align(a, b)
		tp, ts := striped.Align(a, b)
		assertSameAlignment(t, "leaf", sp, ss, tp, ts)
	}
	// Tie-heavy: two-letter sequences maximise equal-scoring paths.
	for trial := 0; trial < 40; trial++ {
		a := randLeaf(rng, 20+rng.Intn(80), []byte("AG"))
		b := randLeaf(rng, 20+rng.Intn(80), []byte("AG"))
		sp, ss := scalar.Align(a, b)
		tp, ts := striped.Align(a, b)
		assertSameAlignment(t, "tie-heavy leaf", sp, ss, tp, ts)
	}
}

func TestStripedRoutesOnlyUnitLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	scalar, striped := kernelAligners()
	// Multi-row profiles have fractional columns: the striped kernel
	// must decline them (isUnitLeaf false) and the scalar path runs for
	// both settings — this asserts the routing does not corrupt results.
	for trial := 0; trial < 10; trial++ {
		a := randProfile(rng, 3, 40+rng.Intn(40))
		b := randProfile(rng, 2, 40+rng.Intn(40))
		if _, _, ok := striped.alignStriped(a, b, false, 0, 0); ok {
			t.Fatal("striped kernel accepted a multi-row profile")
		}
		sp, ss := scalar.Align(a, b)
		tp, ts := striped.Align(a, b)
		assertSameAlignment(t, "multi-row", sp, ss, tp, ts)
	}
	// A gapped single-sequence profile is not a unit leaf either.
	g, err := FromRows(bio.AminoAcids, [][]byte{[]byte("AC-DE")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if isUnitLeaf(g) {
		t.Fatal("gapped column counted as unit leaf")
	}
}

func TestAlignSeededMatchesAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	_, striped := kernelAligners()
	auto := NewAligner(submat.BLOSUM62, submat.DefaultProteinGap)
	for trial := 0; trial < 25; trial++ {
		// Multi-row profiles force AlignSeeded past the striped fast path
		// and into the corridor (or its full-DP fallback).
		a := randProfile(rng, 2+rng.Intn(3), 30+rng.Intn(70))
		b := randProfile(rng, 1+rng.Intn(3), 30+rng.Intn(70))
		wantP, wantS := auto.Align(a, b)

		// Exact prior: the corridor contains the optimal path.
		gotP, gotS := auto.AlignSeeded(a, b, wantP)
		assertSameAlignment(t, "exact prior", wantP, wantS, gotP, gotS)

		// Degenerate prior (all-A then all-B): maximally far from the
		// diagonal, so the corridor usually loses the optimum and the
		// fallback must engage — result must not change.
		degen := make(Path, 0, a.Len()+b.Len())
		for i := 0; i < a.Len(); i++ {
			degen = append(degen, OpA)
		}
		for j := 0; j < b.Len(); j++ {
			degen = append(degen, OpB)
		}
		gotP, gotS = auto.AlignSeeded(a, b, degen)
		assertSameAlignment(t, "degenerate prior", wantP, wantS, gotP, gotS)

		// Invalid prior: wrong op counts must be rejected up front.
		gotP, gotS = auto.AlignSeeded(a, b, Path{OpMatch})
		assertSameAlignment(t, "invalid prior", wantP, wantS, gotP, gotS)

		// Striped setting on unit leaves plus seeding must still agree.
		la := randLeaf(rng, 20+rng.Intn(40), bio.AminoAcids.Letters())
		lb := randLeaf(rng, 20+rng.Intn(40), bio.AminoAcids.Letters())
		lwP, lwS := auto.Align(la, lb)
		lgP, lgS := striped.AlignSeeded(la, lb, nil)
		assertSameAlignment(t, "seeded leaf", lwP, lwS, lgP, lgS)
	}
}

func TestAlignSeededScalarBypass(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	scalar, _ := kernelAligners()
	a := randProfile(rng, 2, 50)
	b := randProfile(rng, 2, 50)
	wantP, wantS := scalar.Align(a, b)
	gotP, gotS := scalar.AlignSeeded(a, b, wantP)
	assertSameAlignment(t, "scalar bypass", wantP, wantS, gotP, gotS)
}
