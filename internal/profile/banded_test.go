package profile

import (
	"math/rand"
	"testing"

	"repro/internal/bio"
)

func randProfile(rng *rand.Rand, rows, width int) *Profile {
	letters := bio.AminoAcids.Letters()
	data := make([][]byte, rows)
	for i := range data {
		data[i] = make([]byte, width)
		for j := range data[i] {
			if rng.Intn(6) == 0 {
				data[i][j] = bio.Gap
			} else {
				data[i][j] = letters[rng.Intn(len(letters))]
			}
		}
	}
	p, err := FromRows(bio.AminoAcids, data, nil)
	if err != nil {
		panic(err)
	}
	return p
}

func TestAlignBandedWideBandMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		pa := randProfile(rng, 1+rng.Intn(3), 5+rng.Intn(30))
		pb := randProfile(rng, 1+rng.Intn(3), 5+rng.Intn(30))
		fullPath, fullScore := testAligner.Align(pa, pb)
		bandPath, bandScore := testAligner.AlignBanded(pa, pb, -100, 100)
		if err := bandPath.Validate(pa.Len(), pb.Len()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if bandScore != fullScore {
			t.Fatalf("trial %d: banded score %g != full %g (paths %v vs %v)",
				trial, bandScore, fullScore, bandPath, fullPath)
		}
	}
}

func TestAlignBandedNarrowBandValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		pa := randProfile(rng, 2, 20+rng.Intn(20))
		pb := randProfile(rng, 2, 20+rng.Intn(20))
		path, score := testAligner.AlignBanded(pa, pb, -2, 2)
		if err := path.Validate(pa.Len(), pb.Len()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, fullScore := testAligner.Align(pa, pb)
		if score > fullScore+1e-9 {
			t.Fatalf("trial %d: banded score %g exceeds optimum %g", trial, score, fullScore)
		}
	}
}

func TestAlignBandedEmptyProfiles(t *testing.T) {
	pa := FromSequence(bio.AminoAcids, []byte("ACD"))
	empty := &Profile{Alpha: bio.AminoAcids}
	path, _ := testAligner.AlignBanded(pa, empty, -1, 1)
	if err := path.Validate(3, 0); err != nil {
		t.Fatal(err)
	}
	path, _ = testAligner.AlignBanded(empty, pa, -1, 1)
	if err := path.Validate(0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestAlignBandedInvertedBandClamped(t *testing.T) {
	// A caller passing lo > hi must still get a feasible band containing
	// the corners.
	pa := FromSequence(bio.AminoAcids, []byte("ACDEFGH"))
	pb := FromSequence(bio.AminoAcids, []byte("ACDFGH"))
	path, _ := testAligner.AlignBanded(pa, pb, 5, -5)
	if err := path.Validate(7, 6); err != nil {
		t.Fatal(err)
	}
}

func TestAlignBandedMergeRowsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pa := randProfile(rng, 2, 25)
	pb := randProfile(rng, 3, 22)
	path, _ := testAligner.AlignBanded(pa, pb, -8, 8)
	merged, err := Merge(pa, pb, path)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != len(path) {
		t.Fatalf("merged width %d != path length %d", merged.Len(), len(path))
	}
	if merged.Weight != pa.Weight+pb.Weight {
		t.Fatalf("merged weight %g", merged.Weight)
	}
}
