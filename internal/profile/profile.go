// Package profile implements alignment profiles — position-specific
// weighted residue frequency summaries of a multiple alignment — and the
// profile–profile dynamic-programming alignment (PSP scoring, affine
// gaps) that progressive MSA, ancestor construction and Sample-Align-D's
// global-ancestor fine-tuning are all built on.
package profile

import (
	"fmt"
	"math"

	"repro/internal/bio"
	"repro/internal/dp"
	"repro/internal/dpkern"
	"repro/internal/submat"
)

// Column holds the weighted residue counts of one alignment column.
type Column struct {
	Counts []float64 // per alphabet letter, weighted occurrence counts
	Gaps   float64   // weighted gap count
}

// Occupancy returns the fraction of (weighted) rows holding a residue in
// this column.
func (c *Column) Occupancy() float64 {
	var res float64
	for _, v := range c.Counts {
		res += v
	}
	tot := res + c.Gaps
	if tot == 0 {
		return 0
	}
	return res / tot
}

// Residues returns the total weighted residue count of the column.
func (c *Column) Residues() float64 {
	var res float64
	for _, v := range c.Counts {
		res += v
	}
	return res
}

// Profile is a sequence of columns over an alphabet together with the
// total row weight it summarises.
type Profile struct {
	Alpha  *bio.Alphabet
	Cols   []Column
	Weight float64 // total weight of the rows summarised
}

// Len returns the number of columns.
func (p *Profile) Len() int { return len(p.Cols) }

// FromRows builds a profile from equal-length aligned rows with the
// given per-row weights (nil means unit weights).
func FromRows(alpha *bio.Alphabet, rows [][]byte, weights []float64) (*Profile, error) {
	if len(rows) == 0 {
		return &Profile{Alpha: alpha}, nil
	}
	width := len(rows[0])
	for i, r := range rows {
		if len(r) != width {
			return nil, fmt.Errorf("profile: row %d has length %d, want %d", i, len(r), width)
		}
	}
	if weights == nil {
		weights = make([]float64, len(rows))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(rows) {
		return nil, fmt.Errorf("profile: %d weights for %d rows", len(weights), len(rows))
	}
	p := &Profile{Alpha: alpha, Cols: make([]Column, width)}
	for _, w := range weights {
		p.Weight += w
	}
	for c := 0; c < width; c++ {
		col := Column{Counts: make([]float64, alpha.Len())}
		for r, row := range rows {
			b := row[c]
			if b == bio.Gap {
				col.Gaps += weights[r]
				continue
			}
			if idx := alpha.Index(b); idx >= 0 {
				col.Counts[idx] += weights[r]
			} else {
				// Unknown residue: spread over all letters so it is
				// near-neutral in scoring instead of silently dropped.
				frac := weights[r] / float64(alpha.Len())
				for k := range col.Counts {
					col.Counts[k] += frac
				}
			}
		}
		p.Cols[c] = col
	}
	return p, nil
}

// FromSequence builds a single-row profile from an ungapped sequence.
func FromSequence(alpha *bio.Alphabet, seq []byte) *Profile {
	p, err := FromRows(alpha, [][]byte{seq}, nil)
	if err != nil {
		panic("profile: FromSequence: " + err.Error()) // single row cannot mismatch
	}
	return p
}

// Consensus extracts the profile's consensus ("ancestor") sequence: for
// every column whose occupancy is at least minOcc, the letter with the
// largest weighted count. This is the paper's local-ancestor extraction.
func (p *Profile) Consensus(minOcc float64) []byte {
	out := make([]byte, 0, len(p.Cols))
	for i := range p.Cols {
		col := &p.Cols[i]
		if col.Occupancy() < minOcc {
			continue
		}
		best, bestV := -1, 0.0
		for k, v := range col.Counts {
			if v > bestV {
				best, bestV = k, v
			}
		}
		if best >= 0 {
			out = append(out, p.Alpha.Letter(best))
		}
	}
	return out
}

// Op is one step of a profile alignment path.
type Op byte

const (
	OpMatch Op = iota // consume a column from both profiles
	OpA               // consume a column from A only (gap inserted in B)
	OpB               // consume a column from B only (gap inserted in A)
)

// Path is a profile alignment: the column-merge recipe for two profiles.
type Path []Op

// Validate checks that the path consumes exactly lenA and lenB columns.
func (path Path) Validate(lenA, lenB int) error {
	a, b := 0, 0
	for _, op := range path {
		switch op {
		case OpMatch:
			a++
			b++
		case OpA:
			a++
		case OpB:
			b++
		default:
			return fmt.Errorf("profile: invalid op %d", op)
		}
	}
	if a != lenA || b != lenB {
		return fmt.Errorf("profile: path consumes (%d,%d), want (%d,%d)", a, b, lenA, lenB)
	}
	return nil
}

// MergeRows applies a path to the two row sets that produced the aligned
// profiles, yielding the merged alignment rows (A's rows first).
func MergeRows(rowsA, rowsB [][]byte, path Path) [][]byte {
	width := len(path)
	out := make([][]byte, 0, len(rowsA)+len(rowsB))
	build := func(rows [][]byte, takeA bool) {
		for _, row := range rows {
			merged := make([]byte, 0, width)
			i := 0
			for _, op := range path {
				consume := op == OpMatch || (takeA && op == OpA) || (!takeA && op == OpB)
				if consume {
					merged = append(merged, row[i])
					i++
				} else {
					merged = append(merged, bio.Gap)
				}
			}
			out = append(out, merged)
		}
	}
	build(rowsA, true)
	build(rowsB, false)
	return out
}

// Aligner aligns profiles with PSP (profile sum-of-pairs) column scores
// and affine gap penalties scaled by the opposing column's occupancy, so
// gapping against a sparsely occupied column is cheap.
type Aligner struct {
	Sub *submat.Matrix
	Gap submat.Gap
	// Kernel selects the DP kernel family (see dpkern): the zero value
	// (dpkern.Auto) routes unit-leaf profile pairs — single sequences,
	// the dominant merge shape at the bottom of every guide tree —
	// through the striped int16 kernel, escaping to the scalar float64
	// path whenever the exactness contract does not hold. Paths and
	// scores are byte-identical for every setting.
	Kernel dpkern.Kernel
}

// NewAligner returns a profile aligner over the matrix's alphabet.
func NewAligner(sub *submat.Matrix, gap submat.Gap) *Aligner {
	return &Aligner{Sub: sub, Gap: gap}
}

// traceback states, aliased from the shared dp packing
const (
	sM = dp.M
	sX = dp.X
	sY = dp.Y
)

// pspScratch holds the flattened PSP scoring tables of one profile pair,
// drawn from a workspace arena so repeated alignments allocate nothing.
// A's per-column residue frequencies are stored sparsely — only the
// letters actually present in a column (faIdx/faVal, ascending letter
// order, with faOff prefix offsets), since real profile columns hold a
// handful of the 20 letters — while sb keeps the dense expected score of
// each B column against every letter (m×alphaLen) for random access.
// occA/occB are the column occupancies. Iterating the sparse lists adds
// the identical terms in the identical order as the dense f != 0 scan
// they replaced, so scores are bit-for-bit unchanged.
type pspScratch struct {
	faOff      []int32 // n+1 prefix offsets into faIdx/faVal
	faIdx      []int32 // nonzero letter indices of A's columns
	faVal      []float64
	sb         []float64
	occA, occB []float64
	alphaLen   int
}

// pspSetup fills the scratch tables: sb[j·L+x] = Σ_y fb[j][y]·S(x,y),
// making each DP cell O(residues present), at most O(alphaLen).
func (al *Aligner) pspSetup(w *dp.Workspace, a, b *Profile) pspScratch {
	n, m := a.Len(), b.Len()
	L := al.Sub.Alphabet().Len()
	sc := pspScratch{
		faOff:    w.Ints(n + 1),
		faIdx:    w.Ints(n * L),
		faVal:    w.Floats(n * L),
		sb:       w.Floats(m * L),
		occA:     w.Floats(n),
		occB:     w.Floats(m),
		alphaLen: L,
	}
	var nz int32
	for i := range a.Cols {
		col := &a.Cols[i]
		res := col.Residues()
		sc.occA[i] = col.Occupancy()
		sc.faOff[i] = nz
		if res == 0 {
			continue
		}
		for y, c := range col.Counts {
			if c != 0 {
				sc.faIdx[nz] = int32(y)
				sc.faVal[nz] = c / res
				nz++
			}
		}
	}
	sc.faOff[n] = nz
	for j := range b.Cols {
		col := &b.Cols[j]
		res := col.Residues()
		sc.occB[j] = col.Occupancy()
		if res == 0 {
			continue
		}
		row := sc.sb[j*L : (j+1)*L]
		for y, c := range col.Counts {
			if c == 0 {
				continue
			}
			fy := c / res
			for x := 0; x < L; x++ {
				row[x] += fy * al.Sub.ScoreIdx(x, y)
			}
		}
	}
	return sc
}

// colScore is the occupancy-scaled PSP score of A column i against B
// column j.
func (sc *pspScratch) colScore(i, j int) float64 {
	var s float64
	sb := sc.sb[j*sc.alphaLen : (j+1)*sc.alphaLen]
	for k := sc.faOff[i]; k < sc.faOff[i+1]; k++ {
		s += sc.faVal[k] * sb[sc.faIdx[k]]
	}
	// Scale by occupancies so sparse columns influence less.
	return s * sc.occA[i] * sc.occB[j]
}

// tracePath follows the packed traceback plane from (n, m) back to the
// origin and returns the alignment path in forward order.
func tracePath(w *dp.Workspace, n, m int, state byte) Path {
	rev := make(Path, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		cell := w.TB[w.At(i, j)]
		switch state {
		case sM:
			rev = append(rev, OpMatch)
			i--
			j--
			state = dp.TBM(cell)
		case sX:
			rev = append(rev, OpA)
			i--
			state = dp.TBX(cell)
		default:
			rev = append(rev, OpB)
			j--
			state = dp.TBY(cell)
		}
	}
	for lo, hi := 0, len(rev)-1; lo < hi; lo, hi = lo+1, hi-1 {
		rev[lo], rev[hi] = rev[hi], rev[lo]
	}
	return rev
}

// Align computes the optimal path aligning profiles a and b and its
// score. Either profile may be empty.
func (al *Aligner) Align(a, b *Profile) (Path, float64) {
	n, m := a.Len(), b.Len()
	if n == 0 || m == 0 {
		return al.alignTrivial(n, m)
	}
	if path, score, ok := al.alignStriped(a, b, false, 0, 0); ok {
		return path, score
	}
	w := dp.Get(n+1, m+1)
	defer dp.Put(w)
	sc := al.pspSetup(w, a, b)
	open, ext := al.Gap.Open, al.Gap.Extend
	negInf := math.Inf(-1)

	// M: columns paired; X: consume A column, gap in B; Y: the reverse.
	M, X, Y, tb := w.MP, w.XP, w.YP, w.TB
	cols := m + 1

	M[0] = 0
	X[0], Y[0] = negInf, negInf
	for i := 1; i <= n; i++ {
		idx := i * cols
		M[idx], Y[idx] = negInf, negInf
		X[idx] = X0(i, X[idx-cols], open, ext, sc.occA[i-1])
		tb[idx] = dp.PackTB(sM, sX, sM)
	}
	for j := 1; j <= m; j++ {
		M[j], X[j] = negInf, negInf
		Y[j] = X0(j, Y[j-1], open, ext, sc.occB[j-1])
		tb[j] = dp.PackTB(sM, sM, sY)
	}

	for i := 1; i <= n; i++ {
		row := i * cols
		prev := row - cols
		// gap in B against A column i-1: penalty scaled by how
		// occupied the gapped-against column is
		wA := sc.occA[i-1]
		openA, extA := (open+ext)*wA, ext*wA
		for j := 1; j <= m; j++ {
			s := sc.colScore(i-1, j-1)
			d := prev + j - 1
			bm, bs := sM, M[d]
			if X[d] > bs {
				bm, bs = sX, X[d]
			}
			if Y[d] > bs {
				bm, bs = sY, Y[d]
			}
			M[row+j] = bs + s

			up := prev + j
			bx := sM
			openX := M[up] - openA
			if extX := X[up] - extA; openX >= extX {
				X[row+j] = openX
			} else {
				X[row+j] = extX
				bx = sX
			}
			wB := sc.occB[j-1]
			left := row + j - 1
			by := sM
			openY := M[left] - (open+ext)*wB
			if extY := Y[left] - ext*wB; openY >= extY {
				Y[row+j] = openY
			} else {
				Y[row+j] = extY
				by = sY
			}
			tb[row+j] = dp.PackTB(bm, bx, by)
		}
	}

	end := n*cols + m
	state, score := sM, M[end]
	if X[end] > score {
		state, score = sX, X[end]
	}
	if Y[end] > score {
		state, score = sY, Y[end]
	}
	return tracePath(w, n, m, state), score
}

// X0 accumulates the boundary gap cost for leading gaps: first column
// pays open+ext, later ones pay ext, all scaled by occupancy.
func X0(i int, prev, open, ext, occ float64) float64 {
	if i == 1 {
		return -(open + ext) * occ
	}
	return prev - ext*occ
}

// Merge applies a path to two profiles, producing the profile of the
// merged alignment without rebuilding it from rows.
func Merge(a, b *Profile, path Path) (*Profile, error) {
	if err := path.Validate(a.Len(), b.Len()); err != nil {
		return nil, err
	}
	alpha := a.Alpha
	out := &Profile{Alpha: alpha, Weight: a.Weight + b.Weight, Cols: make([]Column, 0, len(path))}
	gapCol := func(w float64) Column {
		return Column{Counts: make([]float64, alpha.Len()), Gaps: w}
	}
	addCols := func(x, y Column) Column {
		c := Column{Counts: make([]float64, alpha.Len()), Gaps: x.Gaps + y.Gaps}
		for k := range c.Counts {
			c.Counts[k] = x.Counts[k] + y.Counts[k]
		}
		return c
	}
	i, j := 0, 0
	for _, op := range path {
		switch op {
		case OpMatch:
			out.Cols = append(out.Cols, addCols(a.Cols[i], b.Cols[j]))
			i++
			j++
		case OpA:
			out.Cols = append(out.Cols, addCols(a.Cols[i], gapCol(b.Weight)))
			i++
		case OpB:
			out.Cols = append(out.Cols, addCols(gapCol(a.Weight), b.Cols[j]))
			j++
		}
	}
	return out, nil
}
