// Package profile implements alignment profiles — position-specific
// weighted residue frequency summaries of a multiple alignment — and the
// profile–profile dynamic-programming alignment (PSP scoring, affine
// gaps) that progressive MSA, ancestor construction and Sample-Align-D's
// global-ancestor fine-tuning are all built on.
package profile

import (
	"fmt"
	"math"

	"repro/internal/bio"
	"repro/internal/submat"
)

// Column holds the weighted residue counts of one alignment column.
type Column struct {
	Counts []float64 // per alphabet letter, weighted occurrence counts
	Gaps   float64   // weighted gap count
}

// Occupancy returns the fraction of (weighted) rows holding a residue in
// this column.
func (c *Column) Occupancy() float64 {
	var res float64
	for _, v := range c.Counts {
		res += v
	}
	tot := res + c.Gaps
	if tot == 0 {
		return 0
	}
	return res / tot
}

// Residues returns the total weighted residue count of the column.
func (c *Column) Residues() float64 {
	var res float64
	for _, v := range c.Counts {
		res += v
	}
	return res
}

// Profile is a sequence of columns over an alphabet together with the
// total row weight it summarises.
type Profile struct {
	Alpha  *bio.Alphabet
	Cols   []Column
	Weight float64 // total weight of the rows summarised
}

// Len returns the number of columns.
func (p *Profile) Len() int { return len(p.Cols) }

// FromRows builds a profile from equal-length aligned rows with the
// given per-row weights (nil means unit weights).
func FromRows(alpha *bio.Alphabet, rows [][]byte, weights []float64) (*Profile, error) {
	if len(rows) == 0 {
		return &Profile{Alpha: alpha}, nil
	}
	width := len(rows[0])
	for i, r := range rows {
		if len(r) != width {
			return nil, fmt.Errorf("profile: row %d has length %d, want %d", i, len(r), width)
		}
	}
	if weights == nil {
		weights = make([]float64, len(rows))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(rows) {
		return nil, fmt.Errorf("profile: %d weights for %d rows", len(weights), len(rows))
	}
	p := &Profile{Alpha: alpha, Cols: make([]Column, width)}
	for _, w := range weights {
		p.Weight += w
	}
	for c := 0; c < width; c++ {
		col := Column{Counts: make([]float64, alpha.Len())}
		for r, row := range rows {
			b := row[c]
			if b == bio.Gap {
				col.Gaps += weights[r]
				continue
			}
			if idx := alpha.Index(b); idx >= 0 {
				col.Counts[idx] += weights[r]
			} else {
				// Unknown residue: spread over all letters so it is
				// near-neutral in scoring instead of silently dropped.
				frac := weights[r] / float64(alpha.Len())
				for k := range col.Counts {
					col.Counts[k] += frac
				}
			}
		}
		p.Cols[c] = col
	}
	return p, nil
}

// FromSequence builds a single-row profile from an ungapped sequence.
func FromSequence(alpha *bio.Alphabet, seq []byte) *Profile {
	p, err := FromRows(alpha, [][]byte{seq}, nil)
	if err != nil {
		panic("profile: FromSequence: " + err.Error()) // single row cannot mismatch
	}
	return p
}

// Consensus extracts the profile's consensus ("ancestor") sequence: for
// every column whose occupancy is at least minOcc, the letter with the
// largest weighted count. This is the paper's local-ancestor extraction.
func (p *Profile) Consensus(minOcc float64) []byte {
	out := make([]byte, 0, len(p.Cols))
	for i := range p.Cols {
		col := &p.Cols[i]
		if col.Occupancy() < minOcc {
			continue
		}
		best, bestV := -1, 0.0
		for k, v := range col.Counts {
			if v > bestV {
				best, bestV = k, v
			}
		}
		if best >= 0 {
			out = append(out, p.Alpha.Letter(best))
		}
	}
	return out
}

// Op is one step of a profile alignment path.
type Op byte

const (
	OpMatch Op = iota // consume a column from both profiles
	OpA               // consume a column from A only (gap inserted in B)
	OpB               // consume a column from B only (gap inserted in A)
)

// Path is a profile alignment: the column-merge recipe for two profiles.
type Path []Op

// Validate checks that the path consumes exactly lenA and lenB columns.
func (path Path) Validate(lenA, lenB int) error {
	a, b := 0, 0
	for _, op := range path {
		switch op {
		case OpMatch:
			a++
			b++
		case OpA:
			a++
		case OpB:
			b++
		default:
			return fmt.Errorf("profile: invalid op %d", op)
		}
	}
	if a != lenA || b != lenB {
		return fmt.Errorf("profile: path consumes (%d,%d), want (%d,%d)", a, b, lenA, lenB)
	}
	return nil
}

// MergeRows applies a path to the two row sets that produced the aligned
// profiles, yielding the merged alignment rows (A's rows first).
func MergeRows(rowsA, rowsB [][]byte, path Path) [][]byte {
	width := len(path)
	out := make([][]byte, 0, len(rowsA)+len(rowsB))
	build := func(rows [][]byte, takeA bool) {
		for _, row := range rows {
			merged := make([]byte, 0, width)
			i := 0
			for _, op := range path {
				consume := op == OpMatch || (takeA && op == OpA) || (!takeA && op == OpB)
				if consume {
					merged = append(merged, row[i])
					i++
				} else {
					merged = append(merged, bio.Gap)
				}
			}
			out = append(out, merged)
		}
	}
	build(rowsA, true)
	build(rowsB, false)
	return out
}

// Aligner aligns profiles with PSP (profile sum-of-pairs) column scores
// and affine gap penalties scaled by the opposing column's occupancy, so
// gapping against a sparsely occupied column is cheap.
type Aligner struct {
	Sub *submat.Matrix
	Gap submat.Gap
}

// NewAligner returns a profile aligner over the matrix's alphabet.
func NewAligner(sub *submat.Matrix, gap submat.Gap) *Aligner {
	return &Aligner{Sub: sub, Gap: gap}
}

// freqs returns per-column normalised residue frequencies (excluding
// gaps) and occupancies.
func colFreqs(p *Profile) ([][]float64, []float64) {
	f := make([][]float64, len(p.Cols))
	occ := make([]float64, len(p.Cols))
	for i := range p.Cols {
		col := &p.Cols[i]
		res := col.Residues()
		occ[i] = col.Occupancy()
		v := make([]float64, len(col.Counts))
		if res > 0 {
			for k, c := range col.Counts {
				v[k] = c / res
			}
		}
		f[i] = v
	}
	return f, occ
}

// Align computes the optimal path aligning profiles a and b and its
// score. Either profile may be empty.
func (al *Aligner) Align(a, b *Profile) (Path, float64) {
	n, m := a.Len(), b.Len()
	if n == 0 || m == 0 {
		path := make(Path, 0, n+m)
		for i := 0; i < n; i++ {
			path = append(path, OpA)
		}
		for j := 0; j < m; j++ {
			path = append(path, OpB)
		}
		return path, 0
	}
	fa, occA := colFreqs(a)
	fb, occB := colFreqs(b)
	alphaLen := al.Sub.Alphabet().Len()

	// Precompute expected score of each B column against every letter:
	// sb[j][x] = Σ_y fb[j][y]·S(x,y), making each DP cell O(alphaLen).
	sb := make([][]float64, m)
	for j := 0; j < m; j++ {
		v := make([]float64, alphaLen)
		for x := 0; x < alphaLen; x++ {
			var s float64
			for y := 0; y < alphaLen; y++ {
				if fb[j][y] != 0 {
					s += fb[j][y] * al.Sub.ScoreIdx(x, y)
				}
			}
			v[x] = s
		}
		sb[j] = v
	}
	colScore := func(i, j int) float64 {
		var s float64
		for x := 0; x < alphaLen; x++ {
			if fa[i][x] != 0 {
				s += fa[i][x] * sb[j][x]
			}
		}
		// Scale by occupancies so sparse columns influence less.
		return s * occA[i] * occB[j]
	}
	open, ext := al.Gap.Open, al.Gap.Extend
	negInf := math.Inf(-1)

	M := newMat(n+1, m+1)
	X := newMat(n+1, m+1) // consume A column, gap in B
	Y := newMat(n+1, m+1)
	tbM := make([]byte, (n+1)*(m+1))
	tbX := make([]byte, (n+1)*(m+1))
	tbY := make([]byte, (n+1)*(m+1))
	at := func(i, j int) int { return i*(m+1) + j }
	const sM, sX, sY = 0, 1, 2

	M[0][0] = 0
	X[0][0], Y[0][0] = negInf, negInf
	for i := 1; i <= n; i++ {
		M[i][0], Y[i][0] = negInf, negInf
		X[i][0] = X0(i, X[i-1][0], open, ext, occA[i-1])
		tbX[at(i, 0)] = sX
	}
	for j := 1; j <= m; j++ {
		M[0][j], X[0][j] = negInf, negInf
		Y[0][j] = X0(j, Y[0][j-1], open, ext, occB[j-1])
		tbY[at(0, j)] = sY
	}

	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			s := colScore(i-1, j-1)
			bm, bs := byte(sM), M[i-1][j-1]
			if X[i-1][j-1] > bs {
				bm, bs = sX, X[i-1][j-1]
			}
			if Y[i-1][j-1] > bs {
				bm, bs = sY, Y[i-1][j-1]
			}
			M[i][j] = bs + s
			tbM[at(i, j)] = bm

			// gap in B against A column i-1: penalty scaled by how
			// occupied the gapped-against column is
			wA := occA[i-1]
			openX := M[i-1][j] - (open+ext)*wA
			extX := X[i-1][j] - ext*wA
			if openX >= extX {
				X[i][j] = openX
				tbX[at(i, j)] = sM
			} else {
				X[i][j] = extX
				tbX[at(i, j)] = sX
			}
			wB := occB[j-1]
			openY := M[i][j-1] - (open+ext)*wB
			extY := Y[i][j-1] - ext*wB
			if openY >= extY {
				Y[i][j] = openY
				tbY[at(i, j)] = sM
			} else {
				Y[i][j] = extY
				tbY[at(i, j)] = sY
			}
		}
	}

	state, score := byte(sM), M[n][m]
	if X[n][m] > score {
		state, score = sX, X[n][m]
	}
	if Y[n][m] > score {
		state, score = sY, Y[n][m]
	}
	rev := make(Path, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		switch state {
		case sM:
			prev := tbM[at(i, j)]
			rev = append(rev, OpMatch)
			i--
			j--
			state = prev
		case sX:
			prev := tbX[at(i, j)]
			rev = append(rev, OpA)
			i--
			state = prev
		default:
			prev := tbY[at(i, j)]
			rev = append(rev, OpB)
			j--
			state = prev
		}
	}
	// reverse the path
	for lo, hi := 0, len(rev)-1; lo < hi; lo, hi = lo+1, hi-1 {
		rev[lo], rev[hi] = rev[hi], rev[lo]
	}
	return rev, score
}

// X0 accumulates the boundary gap cost for leading gaps: first column
// pays open+ext, later ones pay ext, all scaled by occupancy.
func X0(i int, prev, open, ext, occ float64) float64 {
	if i == 1 {
		return -(open + ext) * occ
	}
	return prev - ext*occ
}

// Merge applies a path to two profiles, producing the profile of the
// merged alignment without rebuilding it from rows.
func Merge(a, b *Profile, path Path) (*Profile, error) {
	if err := path.Validate(a.Len(), b.Len()); err != nil {
		return nil, err
	}
	alpha := a.Alpha
	out := &Profile{Alpha: alpha, Weight: a.Weight + b.Weight, Cols: make([]Column, 0, len(path))}
	gapCol := func(w float64) Column {
		return Column{Counts: make([]float64, alpha.Len()), Gaps: w}
	}
	addCols := func(x, y Column) Column {
		c := Column{Counts: make([]float64, alpha.Len()), Gaps: x.Gaps + y.Gaps}
		for k := range c.Counts {
			c.Counts[k] = x.Counts[k] + y.Counts[k]
		}
		return c
	}
	i, j := 0, 0
	for _, op := range path {
		switch op {
		case OpMatch:
			out.Cols = append(out.Cols, addCols(a.Cols[i], b.Cols[j]))
			i++
			j++
		case OpA:
			out.Cols = append(out.Cols, addCols(a.Cols[i], gapCol(b.Weight)))
			i++
		case OpB:
			out.Cols = append(out.Cols, addCols(gapCol(a.Weight), b.Cols[j]))
			j++
		}
	}
	return out, nil
}

func newMat(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	m := make([][]float64, rows)
	for i := range m {
		m[i], backing = backing[:cols], backing[cols:]
	}
	return m
}
