package profile

import (
	"math"

	"repro/internal/dp"
	"repro/internal/dpkern"
)

// seedPad is how many columns the recorded corridor extends on each
// side of the prior path. A re-alignment that drifts further than this
// from its seed bails out to the full DP, so the pad only trades bail
// frequency against corridor memory.
const seedPad = 32

// AlignSeeded is Align for callers that already know a plausible
// alignment path — iterative refinement re-aligning the two halves of
// an existing alignment, or a guide-tree merge whose child path is
// known. The prior path seeds a corridor: the forward DP runs in
// rolling rows (no O(n·m) score or traceback planes), recording values
// only inside the corridor, and the traceback re-derives each decision
// from the recorded values. If the optimal path ever leaves the
// corridor the call falls back to the full DP, so the result — path and
// score — is always byte-identical to Align's, whatever the prior.
//
// With Kernel == dpkern.Scalar the corridor is bypassed entirely and
// Align runs, keeping the scalar configuration the untouched reference
// path that the determinism suite compares everything against.
func (al *Aligner) AlignSeeded(a, b *Profile, prior Path) (Path, float64) {
	n, m := a.Len(), b.Len()
	if n == 0 || m == 0 {
		return al.alignTrivial(n, m)
	}
	if al.Kernel == dpkern.Scalar {
		return al.Align(a, b)
	}
	if path, score, ok := al.alignStriped(a, b, false, 0, 0); ok {
		return path, score
	}
	if prior.Validate(n, m) != nil {
		return al.Align(a, b)
	}
	if path, score, ok := al.alignCorridor(a, b, prior); ok {
		return path, score
	}
	return al.Align(a, b)
}

// alignCorridor runs the corridor-seeded exact DP described on
// AlignSeeded. The forward pass replicates Align's float64 operations
// expression for expression (same hoisting, same evaluation order), so
// every recorded value is bit-identical to the corresponding full-plane
// cell; the traceback recomputes each cell's predecessor choice with
// Align's exact comparisons from those recorded values. ok=false means
// the traceback needed a cell outside the corridor.
func (al *Aligner) alignCorridor(a, b *Profile, prior Path) (Path, float64, bool) {
	n, m := a.Len(), b.Len()
	w := dp.GetScore(1, 1)
	defer dp.Put(w)
	sc := al.pspSetup(w, a, b)
	open, ext := al.Gap.Open, al.Gap.Extend
	negInf := math.Inf(-1)

	// Per-row corridor bounds around the prior path.
	lo := w.Ints(n + 1)
	hi := w.Ints(n + 1)
	for i := range lo {
		lo[i] = int32(m + 1)
		hi[i] = -1
	}
	visit := func(i, j int) {
		if int32(j) < lo[i] {
			lo[i] = int32(j)
		}
		if int32(j) > hi[i] {
			hi[i] = int32(j)
		}
	}
	pi, pj := 0, 0
	visit(0, 0)
	for _, op := range prior {
		switch op {
		case OpMatch:
			pi++
			pj++
		case OpA:
			pi++
		default:
			pj++
		}
		visit(pi, pj)
	}
	total := 0
	off := w.Ints(n + 1)
	for i := 0; i <= n; i++ {
		l := int(lo[i]) - seedPad
		if l < 0 {
			l = 0
		}
		h := int(hi[i]) + seedPad
		if h > m {
			h = m
		}
		lo[i], hi[i] = int32(l), int32(h)
		off[i] = int32(total)
		total += h - l + 1
	}
	cM := w.Floats(total)
	cX := w.Floats(total)
	cY := w.Floats(total)

	// Forward pass in rolling rows, replicating Align exactly.
	rows := w.Floats(6 * (m + 1))
	prevM, curM := rows[:m+1], rows[m+1:2*(m+1)]
	prevX, curX := rows[2*(m+1):3*(m+1)], rows[3*(m+1):4*(m+1)]
	prevY, curY := rows[4*(m+1):5*(m+1)], rows[5*(m+1):]

	record := func(i int, rm, rx, ry []float64) {
		l, h, o := int(lo[i]), int(hi[i]), int(off[i])
		copy(cM[o:o+h-l+1], rm[l:h+1])
		copy(cX[o:o+h-l+1], rx[l:h+1])
		copy(cY[o:o+h-l+1], ry[l:h+1])
	}

	prevM[0] = 0
	prevX[0], prevY[0] = negInf, negInf
	for j := 1; j <= m; j++ {
		prevM[j], prevX[j] = negInf, negInf
		prevY[j] = X0(j, prevY[j-1], open, ext, sc.occB[j-1])
	}
	record(0, prevM, prevX, prevY)

	for i := 1; i <= n; i++ {
		curM[0], curY[0] = negInf, negInf
		curX[0] = X0(i, prevX[0], open, ext, sc.occA[i-1])
		wA := sc.occA[i-1]
		openA, extA := (open+ext)*wA, ext*wA
		for j := 1; j <= m; j++ {
			s := sc.colScore(i-1, j-1)
			bs := prevM[j-1]
			if prevX[j-1] > bs {
				bs = prevX[j-1]
			}
			if prevY[j-1] > bs {
				bs = prevY[j-1]
			}
			curM[j] = bs + s

			openX := prevM[j] - openA
			if extX := prevX[j] - extA; openX >= extX {
				curX[j] = openX
			} else {
				curX[j] = extX
			}
			wB := sc.occB[j-1]
			openY := curM[j-1] - (open+ext)*wB
			if extY := curY[j-1] - ext*wB; openY >= extY {
				curY[j] = openY
			} else {
				curY[j] = extY
			}
		}
		record(i, curM, curX, curY)
		prevM, curM = curM, prevM
		prevX, curX = curX, prevX
		prevY, curY = curY, prevY
	}

	state, score := sM, prevM[m]
	if prevX[m] > score {
		state, score = sX, prevX[m]
	}
	if prevY[m] > score {
		state, score = sY, prevY[m]
	}

	// Traceback: re-derive each visited cell's predecessor decision from
	// the recorded corridor values, with the boundary cells' fixed
	// traceback bytes handled analytically. Any lookup outside the
	// corridor aborts to the full DP.
	get := func(i, j int) (mv, xv, yv float64, ok bool) {
		if int32(j) < lo[i] || int32(j) > hi[i] {
			return 0, 0, 0, false
		}
		k := int(off[i]) + j - int(lo[i])
		return cM[k], cX[k], cY[k], true
	}
	rev := make(Path, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		var ns byte
		switch state {
		case sM:
			// Boundary rows/columns pack TBM = sM.
			ns = sM
			if i > 1 || j > 1 {
				mv, xv, yv, ok := get(i-1, j-1)
				if !ok {
					return nil, 0, false
				}
				bs := mv
				if xv > bs {
					ns, bs = sX, xv
				}
				if yv > bs {
					ns = sY
				}
			}
			rev = append(rev, OpMatch)
			i--
			j--
		case sX:
			if j == 0 {
				ns = sX // column-0 boundary byte packs TBX = sX
			} else if i == 0 {
				ns = sM // row-0 boundary byte packs TBX = sM
			} else {
				mv, xv, _, ok := get(i-1, j)
				if !ok {
					return nil, 0, false
				}
				wA := sc.occA[i-1]
				openA, extA := (open+ext)*wA, ext*wA
				if openX := mv - openA; openX >= xv-extA {
					ns = sM
				} else {
					ns = sX
				}
			}
			rev = append(rev, OpA)
			i--
		default: // sY
			if i == 0 {
				ns = sY // row-0 boundary byte packs TBY = sY
			} else if j == 0 {
				ns = sM // column-0 boundary byte packs TBY = sM
			} else {
				mv, _, yv, ok := get(i, j-1)
				if !ok {
					return nil, 0, false
				}
				wB := sc.occB[j-1]
				openY := mv - (open+ext)*wB
				if openY >= yv-ext*wB {
					ns = sM
				} else {
					ns = sY
				}
			}
			rev = append(rev, OpB)
			j--
		}
		state = ns
	}
	for a, z := 0, len(rev)-1; a < z; a, z = a+1, z-1 {
		rev[a], rev[z] = rev[z], rev[a]
	}
	return rev, score, true
}
