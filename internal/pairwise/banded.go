package pairwise

import (
	"repro/internal/bio"
)

// GlobalBanded aligns a and b globally while restricting the DP to a
// diagonal band of half-width band around the main diagonal (adjusted for
// the length difference). With a band wide enough to hold the optimal
// path it returns the same alignment as Global at a fraction of the cost;
// narrower bands trade accuracy for speed, which is how the MAFFT-like
// aligner refines between FFT anchors.
//
// The band is clamped to be feasible: it always contains the corner cell.
func (al Aligner) GlobalBanded(a, b []byte, band int) Result {
	n, m := len(a), len(b)
	if band < 1 {
		band = 1
	}
	// Diagonal offset range: j-i must stay within [lo, hi].
	lo, hi := -band, m-n+band
	if m-n < 0 {
		lo, hi = m-n-band, band
	}
	if lo > 0 {
		lo = 0
	}
	if hi < m-n {
		hi = m - n
	}

	M := newMat(n+1, m+1)
	X := newMat(n+1, m+1)
	Y := newMat(n+1, m+1)
	tbM := make([]byte, (n+1)*(m+1))
	tbX := make([]byte, (n+1)*(m+1))
	tbY := make([]byte, (n+1)*(m+1))
	at := func(i, j int) int { return i*(m+1) + j }
	open, ext := al.Gap.Open, al.Gap.Extend

	inBand := func(i, j int) bool {
		d := j - i
		return d >= lo && d <= hi
	}

	for i := 0; i <= n; i++ {
		for j := 0; j <= m; j++ {
			M[i][j], X[i][j], Y[i][j] = negInf, negInf, negInf
		}
	}
	M[0][0] = 0
	for i := 1; i <= n && inBand(i, 0); i++ {
		X[i][0] = -(open + float64(i)*ext)
		tbX[at(i, 0)] = stX
	}
	for j := 1; j <= m && inBand(0, j); j++ {
		Y[0][j] = -(open + float64(j)*ext)
		tbY[at(0, j)] = stY
	}

	for i := 1; i <= n; i++ {
		jLo := i + lo
		if jLo < 1 {
			jLo = 1
		}
		jHi := i + hi
		if jHi > m {
			jHi = m
		}
		for j := jLo; j <= jHi; j++ {
			s := al.Sub.Score(a[i-1], b[j-1])
			bm, bs := stM, M[i-1][j-1]
			if X[i-1][j-1] > bs {
				bm, bs = stX, X[i-1][j-1]
			}
			if Y[i-1][j-1] > bs {
				bm, bs = stY, Y[i-1][j-1]
			}
			if bs > negInf {
				M[i][j] = bs + s
				tbM[at(i, j)] = bm
			}

			openX := M[i-1][j] - open - ext
			extX := X[i-1][j] - ext
			if openX >= extX {
				X[i][j] = openX
				tbX[at(i, j)] = stM
			} else {
				X[i][j] = extX
				tbX[at(i, j)] = stX
			}
			openY := M[i][j-1] - open - ext
			extY := Y[i][j-1] - ext
			if openY >= extY {
				Y[i][j] = openY
				tbY[at(i, j)] = stM
			} else {
				Y[i][j] = extY
				tbY[at(i, j)] = stY
			}
		}
	}

	state, score := stM, M[n][m]
	if X[n][m] > score {
		state, score = stX, X[n][m]
	}
	if Y[n][m] > score {
		state, score = stY, Y[n][m]
	}
	ra := make([]byte, 0, n+m)
	rb := make([]byte, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		switch state {
		case stM:
			prev := tbM[at(i, j)]
			ra = append(ra, a[i-1])
			rb = append(rb, b[j-1])
			i--
			j--
			state = prev
		case stX:
			prev := tbX[at(i, j)]
			ra = append(ra, a[i-1])
			rb = append(rb, bio.Gap)
			i--
			state = prev
		default:
			prev := tbY[at(i, j)]
			ra = append(ra, bio.Gap)
			rb = append(rb, b[j-1])
			j--
			state = prev
		}
	}
	reverse(ra)
	reverse(rb)
	return Result{A: ra, B: rb, Score: score}
}
