package pairwise

import (
	"repro/internal/dp"
	"repro/internal/dpkern"
)

// bandBounds converts a half-width band request into the clamped
// diagonal range j−i ∈ [lo, hi]. The clamp keeps the band feasible: it
// always contains the origin and the corner cell. Shared by the scalar
// and striped banded kernels so both DP over the identical cell set.
func bandBounds(n, m, band int) (lo, hi int) {
	if band < 1 {
		band = 1
	}
	lo, hi = -band, m-n+band
	if m-n < 0 {
		lo, hi = m-n-band, band
	}
	if lo > 0 {
		lo = 0
	}
	if hi < m-n {
		hi = m - n
	}
	return lo, hi
}

// GlobalBanded aligns a and b globally while restricting the DP to a
// diagonal band of half-width band around the main diagonal (adjusted for
// the length difference). With a band wide enough to hold the optimal
// path it returns the same alignment as Global at a fraction of the cost;
// narrower bands trade accuracy for speed, which is how the MAFFT-like
// aligner refines between FFT anchors.
//
// The band is clamped to be feasible: it always contains the corner cell.
func (al Aligner) GlobalBanded(a, b []byte, band int) Result {
	n, m := len(a), len(b)
	lo, hi := bandBounds(n, m, band)
	w := dp.GetRaw()
	defer dp.Put(w)

	var state byte
	var score float64
	if t := al.kernelTable(); t.FitsBanded(n, m) {
		dpkern.NoteStriped()
		w.ReserveInt(n+1, m+1)
		state, score = t.Banded(w, t.MapRows(w, a), t.MapRows(w, b), lo, hi)
	} else {
		if al.Kernel != dpkern.Scalar {
			dpkern.NoteEscape()
		}
		w.Reserve(n+1, m+1)
		state, score = al.globalBandedScalar(w, a, b, lo, hi)
	}
	ra, rb := traceAffine(w, a, b, state)
	return Result{A: ra, B: rb, Score: score}
}

// globalBandedScalar is the reference float64 banded kernel, filling the
// reserved workspace for diagonals [lo, hi] and returning the optimal
// end state and score.
func (al Aligner) globalBandedScalar(w *dp.Workspace, a, b []byte, lo, hi int) (byte, float64) {
	n, m := len(a), len(b)
	M, X, Y, tb := w.MP, w.XP, w.YP, w.TB
	cols := m + 1
	open, ext := al.Gap.Open, al.Gap.Extend

	inBand := func(i, j int) bool {
		d := j - i
		return d >= lo && d <= hi
	}

	for i := range M {
		M[i], X[i], Y[i] = negInf, negInf, negInf
	}
	M[0] = 0
	for i := 1; i <= n && inBand(i, 0); i++ {
		X[i*cols] = -(open + float64(i)*ext)
		tb[i*cols] = dp.PackTB(stM, stX, stM)
	}
	for j := 1; j <= m && inBand(0, j); j++ {
		Y[j] = -(open + float64(j)*ext)
		tb[j] = dp.PackTB(stM, stM, stY)
	}

	for i := 1; i <= n; i++ {
		jLo := i + lo
		if jLo < 1 {
			jLo = 1
		}
		jHi := i + hi
		if jHi > m {
			jHi = m
		}
		row := i * cols
		prev := row - cols
		for j := jLo; j <= jHi; j++ {
			s := al.Sub.Score(a[i-1], b[j-1])
			d := prev + j - 1
			bm, bs := stM, M[d]
			if X[d] > bs {
				bm, bs = stX, X[d]
			}
			if Y[d] > bs {
				bm, bs = stY, Y[d]
			}
			if bs > negInf {
				M[row+j] = bs + s
			} else {
				bm = stM
			}

			up := prev + j
			bx := stM
			openX := M[up] - open - ext
			if extX := X[up] - ext; openX >= extX {
				X[row+j] = openX
			} else {
				X[row+j] = extX
				bx = stX
			}
			left := row + j - 1
			by := stM
			openY := M[left] - open - ext
			if extY := Y[left] - ext; openY >= extY {
				Y[row+j] = openY
			} else {
				Y[row+j] = extY
				by = stY
			}
			tb[row+j] = dp.PackTB(bm, bx, by)
		}
	}

	end := n*cols + m
	state, score := stM, M[end]
	if X[end] > score {
		state, score = stX, X[end]
	}
	if Y[end] > score {
		state, score = stY, Y[end]
	}
	return state, score
}
