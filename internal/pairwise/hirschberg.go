package pairwise

import (
	"repro/internal/bio"
	"repro/internal/dp"
)

// Hirschberg aligns a and b globally in O(len(a)·len(b)) time but only
// O(min(len)) memory, using divide-and-conquer over score rows. It uses a
// linear gap model (each gap symbol costs gapSym), the model under which
// the classic Hirschberg split is exact. Useful when aligning very long
// sequences (for example genome-scale ancestors) where quadratic memory
// would not fit.
func (al Aligner) Hirschberg(a, b []byte, gapSym float64) Result {
	ra, rb := al.hirschberg(a, b, gapSym)
	score := 0.0
	for i := range ra {
		switch {
		case ra[i] == bio.Gap || rb[i] == bio.Gap:
			score -= gapSym
		default:
			score += al.Sub.Score(ra[i], rb[i])
		}
	}
	return Result{A: ra, B: rb, Score: score}
}

func (al Aligner) hirschberg(a, b []byte, gapSym float64) ([]byte, []byte) {
	n, m := len(a), len(b)
	switch {
	case n == 0:
		return gapRun(m), append([]byte(nil), b...)
	case m == 0:
		return append([]byte(nil), a...), gapRun(n)
	case n == 1 || m == 1:
		r := al.nwLinear(a, b, gapSym)
		return r.A, r.B
	}
	mid := n / 2
	scoreL := al.nwScoreRow(a[:mid], b, gapSym)
	scoreR := al.nwScoreRow(reversed(a[mid:]), reversed(b), gapSym)
	// choose the split point of b maximising total score
	best, bestJ := scoreL[0]+scoreR[m], 0
	for j := 1; j <= m; j++ {
		if s := scoreL[j] + scoreR[m-j]; s > best {
			best, bestJ = s, j
		}
	}
	la, lb := al.hirschberg(a[:mid], b[:bestJ], gapSym)
	ua, ub := al.hirschberg(a[mid:], b[bestJ:], gapSym)
	return append(la, ua...), append(lb, ub...)
}

// nwScoreRow returns the last row of the linear-gap NW score matrix for
// aligning a against every prefix of b. The rolling rows come from the
// workspace pool; the returned row is a fresh allocation (it outlives
// the borrow).
func (al Aligner) nwScoreRow(a, b []byte, gapSym float64) []float64 {
	m := len(b)
	w := dp.GetScore(2, m+1)
	defer dp.Put(w)
	prev, cur := w.MP[:m+1], w.MP[m+1:]
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] - gapSym
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = prev[0] - gapSym
		for j := 1; j <= m; j++ {
			diag := prev[j-1] + al.Sub.Score(a[i-1], b[j-1])
			up := prev[j] - gapSym
			left := cur[j-1] - gapSym
			cur[j] = max3(diag, up, left)
		}
		prev, cur = cur, prev
	}
	out := make([]float64, m+1)
	copy(out, prev)
	return out
}

// nwLinear is a full-matrix linear-gap NW used for the base cases.
func (al Aligner) nwLinear(a, b []byte, gapSym float64) Result {
	n, m := len(a), len(b)
	w := dp.GetScore(n+1, m+1)
	defer dp.Put(w)
	score := w.MP
	cols := m + 1
	score[0] = 0
	for i := 1; i <= n; i++ {
		score[i*cols] = score[(i-1)*cols] - gapSym
	}
	for j := 1; j <= m; j++ {
		score[j] = score[j-1] - gapSym
	}
	for i := 1; i <= n; i++ {
		row := i * cols
		prev := row - cols
		for j := 1; j <= m; j++ {
			score[row+j] = max3(
				score[prev+j-1]+al.Sub.Score(a[i-1], b[j-1]),
				score[prev+j]-gapSym,
				score[row+j-1]-gapSym,
			)
		}
	}
	ra := make([]byte, 0, n+m)
	rb := make([]byte, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && score[i*cols+j] == score[(i-1)*cols+j-1]+al.Sub.Score(a[i-1], b[j-1]):
			ra = append(ra, a[i-1])
			rb = append(rb, b[j-1])
			i--
			j--
		case i > 0 && score[i*cols+j] == score[(i-1)*cols+j]-gapSym:
			ra = append(ra, a[i-1])
			rb = append(rb, bio.Gap)
			i--
		default:
			ra = append(ra, bio.Gap)
			rb = append(rb, b[j-1])
			j--
		}
	}
	reverse(ra)
	reverse(rb)
	return Result{A: ra, B: rb, Score: score[n*cols+m]}
}

func gapRun(n int) []byte {
	g := make([]byte, n)
	for i := range g {
		g[i] = bio.Gap
	}
	return g
}

func reversed(b []byte) []byte {
	out := make([]byte, len(b))
	for i, c := range b {
		out[len(b)-1-i] = c
	}
	return out
}
