package pairwise

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bio"
	"repro/internal/submat"
)

var prot = NewProtein()

func checkValidAlignment(t *testing.T, r Result, a, b []byte) {
	t.Helper()
	if len(r.A) != len(r.B) {
		t.Fatalf("aligned rows differ in length: %d vs %d", len(r.A), len(r.B))
	}
	if !bytes.Equal(bio.Ungap(r.A), a) {
		t.Fatalf("row A ungapped %q != input %q", bio.Ungap(r.A), a)
	}
	if !bytes.Equal(bio.Ungap(r.B), b) {
		t.Fatalf("row B ungapped %q != input %q", bio.Ungap(r.B), b)
	}
	for i := range r.A {
		if r.A[i] == bio.Gap && r.B[i] == bio.Gap {
			t.Fatalf("all-gap column at %d", i)
		}
	}
}

func scoreAlignment(al Aligner, ra, rb []byte) float64 {
	// score an alignment under the affine model, for cross-checking
	var score float64
	inX, inY := false, false
	for i := range ra {
		switch {
		case ra[i] != bio.Gap && rb[i] != bio.Gap:
			score += al.Sub.Score(ra[i], rb[i])
			inX, inY = false, false
		case rb[i] == bio.Gap:
			if !inX {
				score -= al.Gap.Open
			}
			score -= al.Gap.Extend
			inX, inY = true, false
		default:
			if !inY {
				score -= al.Gap.Open
			}
			score -= al.Gap.Extend
			inX, inY = false, true
		}
	}
	return score
}

func TestGlobalIdenticalSequences(t *testing.T) {
	s := []byte("MKVLATGHWQERY")
	r := prot.Global(s, s)
	checkValidAlignment(t, r, s, s)
	if !bytes.Equal(r.A, s) || !bytes.Equal(r.B, s) {
		t.Fatalf("identical inputs got gaps: %q / %q", r.A, r.B)
	}
	want := 0.0
	for _, c := range s {
		want += prot.Sub.Score(c, c)
	}
	if r.Score != want {
		t.Fatalf("score = %g, want %g", r.Score, want)
	}
}

func TestGlobalSimpleGap(t *testing.T) {
	a := []byte("ACDEFGHIKLMNPQRST")
	b := []byte("ACDEFGHIKLMNPQR") // two residues deleted at the end
	r := prot.Global(a, b)
	checkValidAlignment(t, r, a, b)
	// The natural alignment puts a terminal 2-gap in B.
	if got := scoreAlignment(prot, r.A, r.B); got != r.Score {
		t.Fatalf("reported score %g != recomputed %g", r.Score, got)
	}
}

func TestGlobalEmptyInputs(t *testing.T) {
	r := prot.Global(nil, []byte("ACD"))
	checkValidAlignment(t, r, nil, []byte("ACD"))
	if r.Score != -(prot.Gap.Open + 3*prot.Gap.Extend) {
		t.Fatalf("empty-vs-ACD score = %g", r.Score)
	}
	r = prot.Global(nil, nil)
	if len(r.A) != 0 || r.Score != 0 {
		t.Fatalf("empty alignment: %+v", r)
	}
}

func randSeq(rng *rand.Rand, n int) []byte {
	letters := bio.AminoAcids.Letters()
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(len(letters))]
	}
	return out
}

func TestGlobalScoreMatchesTracebackScore(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		a := randSeq(rng, 1+rng.Intn(60))
		b := randSeq(rng, 1+rng.Intn(60))
		r := prot.Global(a, b)
		checkValidAlignment(t, r, a, b)
		if got := scoreAlignment(prot, r.A, r.B); got != r.Score {
			t.Fatalf("trial %d: alignment rescues to %g, reported %g", trial, got, r.Score)
		}
		if so := prot.GlobalScore(a, b); so != r.Score {
			t.Fatalf("trial %d: GlobalScore %g != Global %g", trial, so, r.Score)
		}
	}
}

func TestGlobalSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(x, y uint8) bool {
		a := randSeq(rng, 1+int(x)%50)
		b := randSeq(rng, 1+int(y)%50)
		return prot.GlobalScore(a, b) == prot.GlobalScore(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGlobalOptimalVsBruteForceSmall(t *testing.T) {
	// Exhaustive check on tiny alphabet-3 sequences: enumerate all
	// alignments via recursion and compare the optimum.
	al := Aligner{Sub: submat.DNASimple, Gap: submat.Gap{Open: 4, Extend: 1}}
	var brute func(a, b []byte, state byte) float64
	memo := map[[3]string]float64{}
	brute = func(a, b []byte, state byte) float64 {
		key := [3]string{string(a), string(b), string(state)}
		if v, ok := memo[key]; ok {
			return v
		}
		var best float64
		switch {
		case len(a) == 0 && len(b) == 0:
			best = 0
		case len(a) == 0:
			cost := al.Gap.Extend * float64(len(b))
			if state != 'Y' {
				cost += al.Gap.Open
			}
			best = -cost
		case len(b) == 0:
			cost := al.Gap.Extend * float64(len(a))
			if state != 'X' {
				cost += al.Gap.Open
			}
			best = -cost
		default:
			best = al.Sub.Score(a[0], b[0]) + brute(a[1:], b[1:], 'M')
			gx := -al.Gap.Extend + brute(a[1:], b, 'X')
			if state != 'X' {
				gx -= al.Gap.Open
			}
			if gx > best {
				best = gx
			}
			gy := -al.Gap.Extend + brute(a, b[1:], 'Y')
			if state != 'Y' {
				gy -= al.Gap.Open
			}
			if gy > best {
				best = gy
			}
		}
		memo[key] = best
		return best
	}
	rng := rand.New(rand.NewSource(17))
	dna := bio.DNA.Letters()
	for trial := 0; trial < 30; trial++ {
		a := make([]byte, 1+rng.Intn(8))
		b := make([]byte, 1+rng.Intn(8))
		for i := range a {
			a[i] = dna[rng.Intn(4)]
		}
		for i := range b {
			b[i] = dna[rng.Intn(4)]
		}
		want := brute(a, b, 'M')
		got := al.Global(a, b).Score
		if got != want {
			t.Fatalf("trial %d: %q vs %q: Global=%g brute=%g", trial, a, b, got, want)
		}
	}
}

func TestLocalFindsEmbeddedMotif(t *testing.T) {
	// Flanks score negatively against each other (P vs G = -2), so the
	// optimal local alignment is exactly the shared motif.
	motif := []byte("WWHHKKWW")
	a := append(append([]byte("PPPPPPPP"), motif...), []byte("PPPPPPPP")...)
	b := append(append([]byte("GGGG"), motif...), []byte("GGGG")...)
	r := prot.Local(a, b)
	if !bytes.Contains(a, bio.Ungap(r.A)) || !bytes.Contains(b, bio.Ungap(r.B)) {
		t.Fatalf("local alignment rows are not substrings: %q %q", r.A, r.B)
	}
	if !bytes.Equal(bio.Ungap(r.A), motif) {
		t.Fatalf("local alignment %q, want motif %q", bio.Ungap(r.A), motif)
	}
	if r.Score <= 0 {
		t.Fatalf("motif score %g", r.Score)
	}
}

func TestLocalUnrelatedSequences(t *testing.T) {
	// Sequences of residues with mutually negative scores: best local
	// alignment is at most a single residue pair or empty.
	r := prot.Local([]byte("WWWW"), []byte("PPPP"))
	if r.Score != 0 || len(r.A) != 0 {
		t.Fatalf("unrelated local alignment: %+v", r)
	}
}

func TestLocalScoreNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(x, y uint8) bool {
		a := randSeq(rng, int(x)%40)
		b := randSeq(rng, int(y)%40)
		r := prot.Local(a, b)
		return r.Score >= 0 && len(r.A) == len(r.B)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLocalNeverBeatenByGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		a := randSeq(rng, 5+rng.Intn(40))
		b := randSeq(rng, 5+rng.Intn(40))
		if l, g := prot.Local(a, b).Score, prot.Global(a, b).Score; l < g {
			t.Fatalf("local %g < global %g", l, g)
		}
	}
}

func TestBandedWideBandMatchesGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		a := randSeq(rng, 5+rng.Intn(50))
		b := randSeq(rng, 5+rng.Intn(50))
		full := prot.Global(a, b)
		banded := prot.GlobalBanded(a, b, 100) // band wider than both
		checkValidAlignment(t, banded, a, b)
		if banded.Score != full.Score {
			t.Fatalf("trial %d: banded %g != full %g", trial, banded.Score, full.Score)
		}
	}
}

func TestBandedNarrowBandStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 25; trial++ {
		a := randSeq(rng, 20+rng.Intn(30))
		b := randSeq(rng, 20+rng.Intn(30))
		r := prot.GlobalBanded(a, b, 2)
		checkValidAlignment(t, r, a, b)
		if full := prot.Global(a, b); r.Score > full.Score {
			t.Fatalf("banded score %g exceeds optimum %g", r.Score, full.Score)
		}
	}
}

func TestHirschbergMatchesLinearNW(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const gapSym = 4
	for trial := 0; trial < 30; trial++ {
		a := randSeq(rng, 1+rng.Intn(70))
		b := randSeq(rng, 1+rng.Intn(70))
		h := prot.Hirschberg(a, b, gapSym)
		checkValidAlignment(t, h, a, b)
		full := prot.nwLinear(a, b, gapSym)
		if h.Score != full.Score {
			t.Fatalf("trial %d: hirschberg %g != nw %g", trial, h.Score, full.Score)
		}
	}
}

func TestHirschbergEmpty(t *testing.T) {
	r := prot.Hirschberg(nil, []byte("ACD"), 2)
	checkValidAlignment(t, r, nil, []byte("ACD"))
	if r.Score != -6 {
		t.Fatalf("score = %g, want -6", r.Score)
	}
}

func TestIdentity(t *testing.T) {
	if id := Identity([]byte("ACDEF"), []byte("ACDEF")); id != 1 {
		t.Errorf("identical rows: %g", id)
	}
	if id := Identity([]byte("ACDEF"), []byte("ACDEW")); id != 0.8 {
		t.Errorf("4/5 identity: %g", id)
	}
	if id := Identity([]byte("AC-EF"), []byte("ACW-F")); id != 1 {
		t.Errorf("gap columns excluded: %g", id)
	}
	if id := Identity([]byte("--"), []byte("AC")); id != 0 {
		t.Errorf("no residue pairs: %g", id)
	}
	if id := Identity([]byte("AB"), []byte("A")); id != 0 {
		t.Errorf("length mismatch: %g", id)
	}
}
