package pairwise

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bio"
)

func randomSeq(rng *rand.Rand, n int) []byte {
	letters := bio.AminoAcids.Letters()
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(len(letters))]
	}
	return out
}

// TestKernelsDeterministicAcrossReuse runs every kernel twice over the
// same inputs with other work in between, proving recycled workspace
// memory never leaks into results.
func TestKernelsDeterministicAcrossReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	al := NewProtein()
	a := randomSeq(rng, 83)
	b := randomSeq(rng, 97)

	first := al.Global(a, b)
	firstLocal := al.Local(a, b)
	firstBanded := al.GlobalBanded(a, b, 16)
	firstScore := al.GlobalScore(a, b)
	firstH := al.Hirschberg(a, b, 4)

	// pollute the pool with differently-sized DPs
	for i := 0; i < 5; i++ {
		x := randomSeq(rng, 10+i*50)
		y := randomSeq(rng, 200-i*30)
		al.Global(x, y)
		al.Local(y, x)
		al.GlobalBanded(x, y, 4)
	}

	second := al.Global(a, b)
	if string(first.A) != string(second.A) || string(first.B) != string(second.B) || first.Score != second.Score {
		t.Fatal("Global result changed across workspace reuse")
	}
	if r := al.Local(a, b); string(firstLocal.A) != string(r.A) || firstLocal.Score != r.Score {
		t.Fatal("Local result changed across workspace reuse")
	}
	if r := al.GlobalBanded(a, b, 16); string(firstBanded.A) != string(r.A) || firstBanded.Score != r.Score {
		t.Fatal("GlobalBanded result changed across workspace reuse")
	}
	if s := al.GlobalScore(a, b); s != firstScore {
		t.Fatal("GlobalScore changed across workspace reuse")
	}
	if r := al.Hirschberg(a, b, 4); string(firstH.A) != string(r.A) || firstH.Score != r.Score {
		t.Fatal("Hirschberg result changed across workspace reuse")
	}
}

// TestGlobalConcurrent runs the kernel from many goroutines at once;
// with -race this proves pooled workspaces are never shared.
func TestGlobalConcurrent(t *testing.T) {
	al := NewProtein()
	rng := rand.New(rand.NewSource(11))
	type pair struct{ a, b []byte }
	pairs := make([]pair, 8)
	want := make([]Result, 8)
	for i := range pairs {
		pairs[i] = pair{randomSeq(rng, 60+i*13), randomSeq(rng, 70+i*7)}
		want[i] = al.Global(pairs[i].a, pairs[i].b)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				i := iter % len(pairs)
				r := al.Global(pairs[i].a, pairs[i].b)
				if r.Score != want[i].Score || string(r.A) != string(want[i].A) {
					t.Errorf("concurrent Global diverged on pair %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkGlobal measures the steady-state cost of the pooled Gotoh
// kernel; allocs/op should stay O(1) (just the result rows),
// independent of sequence length.
func BenchmarkGlobal(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	al := NewProtein()
	x := randomSeq(rng, 400)
	y := randomSeq(rng, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.Global(x, y)
	}
}

func BenchmarkGlobalBanded(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	al := NewProtein()
	x := randomSeq(rng, 400)
	y := randomSeq(rng, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.GlobalBanded(x, y, 32)
	}
}

func BenchmarkGlobalScore(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	al := NewProtein()
	x := randomSeq(rng, 400)
	y := randomSeq(rng, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.GlobalScore(x, y)
	}
}
